// Tests for the link-budget amplitude/phase model.
#include "rf/link_budget.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dwatch::rf {
namespace {

PropagationPath direct_path(double d) {
  PropagationPath p;
  p.kind = PathKind::kDirect;
  p.vertices = {{0, 0, 1}, {d, 0, 1}};
  p.length = d;
  p.aoa = kPi / 2;
  return p;
}

TEST(LinkBudget, FreeSpaceAmplitudeInverseDistance) {
  const LinkBudget lb;
  EXPECT_NEAR(lb.free_space_amplitude(2.0),
              lb.free_space_amplitude(1.0) / 2.0, 1e-15);
  EXPECT_NEAR(lb.free_space_amplitude(1.0), lb.lambda / (4.0 * kPi), 1e-15);
  EXPECT_THROW((void)lb.free_space_amplitude(0.0), std::invalid_argument);
  EXPECT_THROW((void)lb.free_space_amplitude(-1.0), std::invalid_argument);
}

TEST(LinkBudget, DirectGainPhaseMatchesPropagation) {
  const LinkBudget lb;
  const double d = 3.7;
  const linalg::Complex g = lb.direct_gain(d);
  EXPECT_NEAR(std::abs(g), lb.free_space_amplitude(d), 1e-15);
  EXPECT_NEAR(std::remainder(std::arg(g) + kTwoPi * d / lb.lambda, kTwoPi),
              0.0, 1e-9);
}

TEST(LinkBudget, OneWavelengthIsFullPhaseTurn) {
  const LinkBudget lb;
  const linalg::Complex g1 = lb.direct_gain(2.0);
  const linalg::Complex g2 = lb.direct_gain(2.0 + lb.lambda);
  EXPECT_NEAR(std::remainder(std::arg(g1) - std::arg(g2), kTwoPi), 0.0,
              1e-9);
}

TEST(LinkBudget, WallGainAppliesReflectionCoefficient) {
  const LinkBudget lb;
  const linalg::Complex g = lb.wall_gain(5.0, 0.4);
  EXPECT_NEAR(std::abs(g), 0.4 * lb.free_space_amplitude(5.0), 1e-15);
  EXPECT_THROW((void)lb.wall_gain(5.0, 1.5), std::invalid_argument);
  EXPECT_THROW((void)lb.wall_gain(5.0, -0.1), std::invalid_argument);
}

TEST(LinkBudget, WallBounceAddsReflectionPhase) {
  LinkBudget lb;
  lb.reflection_phase = kPi;
  const linalg::Complex direct = lb.direct_gain(5.0);
  const linalg::Complex wall = lb.wall_gain(5.0, 1.0);
  EXPECT_NEAR(std::remainder(std::arg(wall) - std::arg(direct) - kPi,
                             kTwoPi),
              0.0, 1e-9);
}

TEST(LinkBudget, ScatterGainBistaticSpreading) {
  const LinkBudget lb;
  const linalg::Complex g = lb.scatter_gain(2.0, 3.0, 2.0);
  const double expect =
      2.0 * lb.lambda / ((4.0 * kPi) * (4.0 * kPi) * 2.0 * 3.0);
  EXPECT_NEAR(std::abs(g), expect, 1e-15);
  EXPECT_THROW((void)lb.scatter_gain(0.0, 3.0, 2.0), std::invalid_argument);
  EXPECT_THROW((void)lb.scatter_gain(2.0, 3.0, 0.0), std::invalid_argument);
}

TEST(LinkBudget, ScatteredMuchWeakerThanDirectAtRoomScale) {
  const LinkBudget lb;
  const double direct = std::abs(lb.direct_gain(5.0));
  const double scattered = std::abs(lb.scatter_gain(3.0, 3.0, 2.2));
  EXPECT_LT(scattered, direct);
}

TEST(LinkBudget, PathGainDispatch) {
  const LinkBudget lb;
  PropagationPath p = direct_path(4.0);
  EXPECT_NEAR(std::abs(lb.path_gain(p)), lb.free_space_amplitude(4.0),
              1e-15);

  p.kind = PathKind::kWall;
  p.vertices = {{0, 0, 1}, {2, 2, 1}, {4, 0, 1}};
  p.length = 2.0 * std::sqrt(8.0);
  EXPECT_NEAR(std::abs(lb.path_gain(p)),
              lb.wall_reflection * lb.free_space_amplitude(p.length), 1e-15);

  p.kind = PathKind::kScatterer;
  EXPECT_NEAR(std::abs(lb.path_gain(p)),
              std::abs(lb.scatter_gain(std::sqrt(8.0), std::sqrt(8.0),
                                       lb.scatter_aperture)),
              1e-15);
}

TEST(LinkBudget, PathGainRejectsMalformedPaths) {
  const LinkBudget lb;
  PropagationPath empty;
  empty.vertices = {};
  EXPECT_THROW((void)lb.path_gain(empty), std::invalid_argument);

  PropagationPath bad_scatter;
  bad_scatter.kind = PathKind::kScatterer;
  bad_scatter.vertices = {{0, 0, 0}, {1, 1, 1}};  // needs 2 legs
  bad_scatter.length = 1.0;
  EXPECT_THROW((void)lb.path_gain(bad_scatter), std::invalid_argument);
}

TEST(PropagationPath, LegAccess) {
  PropagationPath p;
  p.vertices = {{0, 0, 0}, {1, 0, 0}, {1, 1, 0}};
  EXPECT_EQ(p.num_legs(), 2u);
  const auto [a, b] = p.leg(1);
  EXPECT_EQ(a, (Vec3{1, 0, 0}));
  EXPECT_EQ(b, (Vec3{1, 1, 0}));
  EXPECT_THROW((void)p.leg(2), std::out_of_range);
}

TEST(PropagationPath, BlockingGivesTrueAngleOnlyOnFinalLeg) {
  PropagationPath p;
  p.vertices = {{0, 0, 0}, {1, 0, 0}, {2, 0, 0}};
  EXPECT_FALSE(p.blocking_gives_true_angle(0));  // pre-reflection leg
  EXPECT_TRUE(p.blocking_gives_true_angle(1));   // final leg
}

TEST(PathKind, ToStringNames) {
  EXPECT_STREQ(to_string(PathKind::kDirect), "direct");
  EXPECT_STREQ(to_string(PathKind::kWall), "wall");
  EXPECT_STREQ(to_string(PathKind::kScatterer), "scatterer");
}

}  // namespace
}  // namespace dwatch::rf
