// Tests for the ULA model and steering vectors (paper Eq. 2/4
// conventions).
#include "rf/array.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dwatch::rf {
namespace {

TEST(SteeringPhase, ReferenceElementIsZero) {
  EXPECT_DOUBLE_EQ(steering_phase(1, 0.7, 0.16, 0.32), 0.0);
}

TEST(SteeringPhase, HalfWavelengthBroadside) {
  // Broadside (theta = pi/2): no phase progression.
  EXPECT_NEAR(steering_phase(5, kPi / 2, 0.16, 0.32), 0.0, 1e-12);
}

TEST(SteeringPhase, HalfWavelengthEndfire) {
  // Endfire (theta = 0), d = lambda/2: pi per element.
  EXPECT_NEAR(steering_phase(2, 0.0, 0.16, 0.32), kPi, 1e-12);
  EXPECT_NEAR(steering_phase(3, 0.0, 0.16, 0.32), 2 * kPi, 1e-12);
}

TEST(SteeringVector, UnitMagnitudeAndFirstElementOne) {
  const linalg::CVector a = steering_vector(8, 1.1, 0.1625, 0.325);
  ASSERT_EQ(a.size(), 8u);
  EXPECT_NEAR(std::abs(a[0] - linalg::Complex{1.0}), 0.0, 1e-12);
  for (std::size_t m = 0; m < 8; ++m) {
    EXPECT_NEAR(std::abs(a[m]), 1.0, 1e-12);
  }
}

TEST(SteeringVector, MatchesPaperFormula) {
  const double theta = deg2rad(40.0);
  const linalg::CVector a = steering_vector(4, theta, 0.1625, 0.325);
  for (std::size_t m = 1; m <= 4; ++m) {
    const double w = static_cast<double>(m - 1) * kTwoPi * 0.5 *
                     std::cos(theta);
    EXPECT_NEAR(std::abs(a[m - 1] - std::polar(1.0, -w)), 0.0, 1e-12);
  }
}

TEST(UniformLinearArray, ValidatesConstruction) {
  EXPECT_THROW(UniformLinearArray({0, 0, 1}, {1, 0}, 1),
               std::invalid_argument);
  EXPECT_THROW(UniformLinearArray({0, 0, 1}, {1, 0}, 8, -0.1),
               std::invalid_argument);
  EXPECT_THROW(UniformLinearArray({0, 0, 1}, {0, 0}, 8),
               std::invalid_argument);
  EXPECT_THROW(UniformLinearArray({0, 0, 1}, {1, 0}, 8,
                                  kDefaultElementSpacing, -1.0),
               std::invalid_argument);
}

TEST(UniformLinearArray, ElementPositionsCentredOnAxis) {
  const UniformLinearArray ula({0, 0, 1.25}, {1, 0}, 8);
  const Vec3 p1 = ula.element_position(1);
  const Vec3 p8 = ula.element_position(8);
  EXPECT_NEAR(p1.x, -3.5 * ula.spacing(), 1e-12);
  EXPECT_NEAR(p8.x, 3.5 * ula.spacing(), 1e-12);
  EXPECT_NEAR(p1.y, 0.0, 1e-12);
  EXPECT_NEAR(p1.z, 1.25, 1e-12);
  EXPECT_NEAR(ula.aperture(), 7 * ula.spacing(), 1e-12);
  EXPECT_THROW((void)ula.element_position(0), std::out_of_range);
  EXPECT_THROW((void)ula.element_position(9), std::out_of_range);
}

TEST(UniformLinearArray, AxisIsNormalized) {
  const UniformLinearArray ula({0, 0, 1}, {3, 4}, 4);
  EXPECT_NEAR(ula.axis().norm(), 1.0, 1e-12);
  EXPECT_NEAR(ula.axis().x, 0.6, 1e-12);
}

TEST(UniformLinearArray, BroadsideArrivalAngleIsNinety) {
  const UniformLinearArray ula({0, 0, 1.0}, {1, 0}, 8);
  EXPECT_NEAR(ula.arrival_angle({0.0, 5.0, 1.0}), kPi / 2, 1e-12);
}

TEST(UniformLinearArray, EndfireConventions) {
  const UniformLinearArray ula({0, 0, 1.0}, {1, 0}, 8);
  // Source along -axis => theta = 0 (reference direction is -axis).
  EXPECT_NEAR(ula.arrival_angle({-5.0, 0.0, 1.0}), 0.0, 1e-12);
  EXPECT_NEAR(ula.arrival_angle({5.0, 0.0, 1.0}), kPi, 1e-12);
}

TEST(UniformLinearArray, ElevationShrinksEffectiveAngleTowardBroadside) {
  const UniformLinearArray ula({0, 0, 1.0}, {1, 0}, 8);
  const double flat = ula.arrival_angle({-4.0, 3.0, 1.0});
  const double high = ula.arrival_angle({-4.0, 3.0, 3.0});
  // Elevated source: cos(theta) magnitude shrinks => closer to pi/2.
  EXPECT_GT(std::abs(flat - kPi / 2), std::abs(high - kPi / 2));
}

TEST(UniformLinearArray, PlanarAngleIgnoresHeight) {
  const UniformLinearArray ula({1, 2, 1.3}, {0, 1}, 8);
  const double a1 = ula.arrival_angle_planar({4.0, 6.0});
  const double a2 = ula.arrival_angle({4.0, 6.0, 1.3});
  EXPECT_NEAR(a1, a2, 1e-12);
}

TEST(UniformLinearArray, SteeringMatchesFreeFunction) {
  const UniformLinearArray ula({0, 0, 1}, {1, 0}, 6);
  const linalg::CVector a = ula.steering(0.8);
  const linalg::CVector b =
      steering_vector(6, 0.8, ula.spacing(), ula.lambda());
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-12);
  }
}

/// Consistency sweep: synthesizing a plane wave from angle theta and
/// correlating against the steering vector at theta must be maximal at
/// theta (the whole AoA stack rests on this convention agreeing).
class ConventionTest : public ::testing::TestWithParam<double> {};

TEST_P(ConventionTest, SteeringVectorMatchesGeometry) {
  const double theta_deg = GetParam();
  const UniformLinearArray ula({0, 0, 1.0}, {1, 0}, 8);
  // Pick a far-away source at that arrival angle (in-plane).
  const double theta = deg2rad(theta_deg);
  // Reference direction is -axis = (-1, 0); rotate by +theta.
  const Vec2 dir{-std::cos(theta), std::sin(theta)};
  const Vec3 source = lift(dir * 500.0, 1.0);
  EXPECT_NEAR(ula.arrival_angle(source), theta, 1e-3);

  // Phase at element m from exact distances ~ steering vector phase.
  const linalg::CVector a = ula.steering(theta);
  const double d1 = distance(source, ula.element_position(1));
  for (std::size_t m = 2; m <= 8; ++m) {
    const double dm = distance(source, ula.element_position(m));
    const double geo_phase = -kTwoPi * (dm - d1) / ula.lambda();
    const double steer_phase = std::arg(a[m - 1]);
    EXPECT_NEAR(std::remainder(geo_phase - steer_phase, kTwoPi), 0.0, 2e-2)
        << "element " << m << " at theta " << theta_deg;
  }
}

INSTANTIATE_TEST_SUITE_P(Angles, ConventionTest,
                         ::testing::Values(10.0, 30.0, 45.0, 60.0, 90.0,
                                           120.0, 150.0, 170.0));

}  // namespace
}  // namespace dwatch::rf
