// Tests for array snapshot synthesis — the simulator/algorithm contract.
#include "rf/snapshot.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rf/array.hpp"

namespace dwatch::rf {
namespace {

PropagationPath plane_path(double theta_deg, double amplitude) {
  PropagationPath p;
  p.kind = PathKind::kDirect;
  p.vertices = {{-10, 0, 1}, {0, 0, 1}};
  p.length = 10.0;
  p.aoa = deg2rad(theta_deg);
  p.gain = {amplitude, 0.0};
  return p;
}

UniformLinearArray test_array() {
  return UniformLinearArray({0, 0, 1.0}, {1, 0}, 8);
}

TEST(NoiseSigma, MatchesSnrDefinition) {
  const std::vector<PropagationPath> paths{plane_path(60, 0.02),
                                           plane_path(110, 0.005)};
  const double sigma = noise_sigma_for_snr(paths, 1.0, 20.0);
  EXPECT_NEAR(sigma, 0.02 / 10.0, 1e-12);
  EXPECT_THROW((void)noise_sigma_for_snr({}, 1.0, 20.0),
               std::invalid_argument);
}

TEST(Synthesize, ShapeAndDeterminism) {
  const auto ula = test_array();
  const std::vector<PropagationPath> paths{plane_path(75, 0.01)};
  SnapshotOptions opts;
  opts.num_snapshots = 7;
  opts.noise_sigma = 1e-5;
  Rng rng1(5);
  Rng rng2(5);
  const auto x1 = synthesize_snapshots(ula, paths, {}, opts, rng1);
  const auto x2 = synthesize_snapshots(ula, paths, {}, opts, rng2);
  EXPECT_EQ(x1.rows(), 8u);
  EXPECT_EQ(x1.cols(), 7u);
  EXPECT_NEAR(x1.max_abs_diff(x2), 0.0, 0.0);  // bit-identical
}

TEST(Synthesize, ValidatesArguments) {
  const auto ula = test_array();
  const std::vector<PropagationPath> paths{plane_path(75, 0.01)};
  SnapshotOptions opts;
  Rng rng(1);
  const std::vector<double> bad_scale{1.0, 1.0};
  EXPECT_THROW((void)synthesize_snapshots(ula, paths, bad_scale, opts, rng),
               std::invalid_argument);
  opts.port_phase_offsets = {0.0, 0.1};  // wrong size
  EXPECT_THROW((void)synthesize_snapshots(ula, paths, {}, opts, rng),
               std::invalid_argument);
  opts.port_phase_offsets.clear();
  opts.num_snapshots = 0;
  EXPECT_THROW((void)synthesize_snapshots(ula, paths, {}, opts, rng),
               std::invalid_argument);
}

TEST(Synthesize, SinglePathPhaseProgressionMatchesSteering) {
  const auto ula = test_array();
  const double theta = deg2rad(50.0);
  auto p = plane_path(50.0, 1.0);
  SnapshotOptions opts;
  opts.num_snapshots = 1;
  opts.noise_sigma = 0.0;
  Rng rng(3);
  const auto x = synthesize_snapshots(ula, {&p, 1}, {}, opts, rng);
  // x_m / x_1 should equal e^{-j omega(m, theta)}.
  for (std::size_t m = 2; m <= 8; ++m) {
    const double expected =
        -steering_phase(m, theta, ula.spacing(), ula.lambda());
    const double measured = std::arg(x(m - 1, 0) / x(0, 0));
    EXPECT_NEAR(std::remainder(measured - expected, kTwoPi), 0.0, 1e-9);
  }
}

TEST(Synthesize, PortOffsetsAppearInPhases) {
  const auto ula = test_array();
  auto p = plane_path(90.0, 1.0);  // broadside: no geometric progression
  SnapshotOptions opts;
  opts.num_snapshots = 1;
  opts.noise_sigma = 0.0;
  opts.port_phase_offsets = {0.0, 0.5, -0.7, 1.1, 0.2, -0.4, 0.9, -1.3};
  Rng rng(3);
  const auto x = synthesize_snapshots(ula, {&p, 1}, {}, opts, rng);
  for (std::size_t m = 1; m < 8; ++m) {
    const double measured = std::arg(x(m, 0) / x(0, 0));
    EXPECT_NEAR(std::remainder(measured - opts.port_phase_offsets[m], kTwoPi),
                0.0, 1e-9);
  }
}

TEST(Synthesize, PathScaleAttenuates) {
  const auto ula = test_array();
  auto p = plane_path(60.0, 1.0);
  SnapshotOptions opts;
  opts.num_snapshots = 4;
  opts.noise_sigma = 0.0;
  Rng rng1(9);
  Rng rng2(9);
  const auto full = synthesize_snapshots(ula, {&p, 1}, {}, opts, rng1);
  const std::vector<double> kHalf{0.5};
  const auto half = synthesize_snapshots(ula, {&p, 1}, kHalf, opts, rng2);
  EXPECT_NEAR(std::abs(half(0, 0)), 0.5 * std::abs(full(0, 0)), 1e-12);
}

TEST(Synthesize, CoherentPathsShareSymbol) {
  // Two paths, no noise: the per-snapshot ratio x(0,n)/symbol must be the
  // same complex constant for every snapshot (coherence), i.e. the ratio
  // between two snapshots of the same antenna has unit... amplitude
  // ratios are equal across antennas.
  const auto ula = test_array();
  const std::vector<PropagationPath> paths{plane_path(50, 1.0),
                                           plane_path(120, 0.6)};
  SnapshotOptions opts;
  opts.num_snapshots = 3;
  opts.noise_sigma = 0.0;
  Rng rng(11);
  const auto x = synthesize_snapshots(ula, paths, {}, opts, rng);
  // For coherent mixing, x(m, n) = h_m * s_n: the matrix is rank 1, so
  // all 2x2 minors vanish.
  for (std::size_t m = 0; m + 1 < 8; ++m) {
    for (std::size_t n = 0; n + 1 < 3; ++n) {
      const linalg::Complex minor =
          x(m, n) * x(m + 1, n + 1) - x(m, n + 1) * x(m + 1, n);
      EXPECT_NEAR(std::abs(minor), 0.0, 1e-12);
    }
  }
}

TEST(Synthesize, SphericalWavefrontDiffersFromPlanarNearby) {
  const auto ula = test_array();
  // Near-field source 2 m away: spherical and planar synthesis disagree.
  PropagationPath p;
  p.kind = PathKind::kDirect;
  p.vertices = {{0.0, 2.0, 1.0}, {0, 0, 1.0}};
  p.length = 2.0;
  p.aoa = ula.arrival_angle({0.0, 2.0, 1.0});
  p.gain = {1.0, 0.0};
  SnapshotOptions opts;
  opts.num_snapshots = 1;
  opts.noise_sigma = 0.0;
  Rng rng1(2);
  Rng rng2(2);
  opts.wavefront = WavefrontModel::kPlanar;
  const auto planar = synthesize_snapshots(ula, {&p, 1}, {}, opts, rng1);
  opts.wavefront = WavefrontModel::kSpherical;
  const auto spherical = synthesize_snapshots(ula, {&p, 1}, {}, opts, rng2);
  EXPECT_GT(planar.max_abs_diff(spherical), 1e-3);
}

TEST(Synthesize, SphericalApproachesPlanarFarAway) {
  const auto ula = test_array();
  PropagationPath p;
  p.kind = PathKind::kDirect;
  p.vertices = {{0.0, 4000.0, 1.0}, {0, 0, 1.0}};
  p.length = 4000.0;
  p.aoa = ula.arrival_angle({0.0, 4000.0, 1.0});
  p.gain = {1.0, 0.0};
  SnapshotOptions opts;
  opts.num_snapshots = 1;
  opts.noise_sigma = 0.0;
  Rng rng1(2);
  Rng rng2(2);
  opts.wavefront = WavefrontModel::kPlanar;
  const auto planar = synthesize_snapshots(ula, {&p, 1}, {}, opts, rng1);
  opts.wavefront = WavefrontModel::kSpherical;
  const auto spherical = synthesize_snapshots(ula, {&p, 1}, {}, opts, rng2);
  EXPECT_NEAR(planar.max_abs_diff(spherical), 0.0, 2e-3);
}

TEST(Rng, ForkDecorrelates) {
  Rng a(123);
  Rng b = a.fork();
  // Not a statistical test; just check the streams differ.
  bool differ = false;
  for (int i = 0; i < 8; ++i) {
    if (std::abs(a.uniform(0, 1) - b.uniform(0, 1)) > 1e-12) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(Rng, ComplexGaussianPower) {
  Rng rng(77);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += std::norm(rng.complex_gaussian(0.5));
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

}  // namespace
}  // namespace dwatch::rf
