// Tests for 2-D/3-D geometry primitives, including the path-blocking
// cylinder intersection that drives the device-free observable.
#include "rf/geometry.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rf/constants.hpp"

namespace dwatch::rf {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(b / 2.0, (Vec2{1.5, -0.5}));
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
  EXPECT_DOUBLE_EQ(a.cross(b), -7.0);
  EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).norm(), 5.0);
  EXPECT_EQ(a.perp(), (Vec2{-2.0, 1.0}));
}

TEST(Vec2, NormalizedThrowsOnZero) {
  EXPECT_THROW((void)Vec2{}.normalized(), std::domain_error);
  const Vec2 u = Vec2{0.0, 5.0}.normalized();
  EXPECT_DOUBLE_EQ(u.y, 1.0);
}

TEST(Vec3, ArithmeticAndXy) {
  const Vec3 a{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ((a - Vec3{1.0, 2.0, 3.0}).norm(), 0.0);
  EXPECT_EQ(a.xy(), (Vec2{1.0, 2.0}));
  EXPECT_EQ(lift(Vec2{4.0, 5.0}, 1.5), (Vec3{4.0, 5.0, 1.5}));
  EXPECT_THROW((void)Vec3{}.normalized(), std::domain_error);
}

TEST(PointSegmentDistance, EndpointsAndInterior) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{10.0, 0.0};
  EXPECT_DOUBLE_EQ(point_segment_distance({5.0, 3.0}, a, b), 3.0);
  EXPECT_DOUBLE_EQ(point_segment_distance({-4.0, 3.0}, a, b), 5.0);
  EXPECT_DOUBLE_EQ(point_segment_distance({13.0, 4.0}, a, b), 5.0);
  // Degenerate segment behaves like a point.
  EXPECT_DOUBLE_EQ(point_segment_distance({3.0, 4.0}, a, a), 5.0);
}

TEST(ClosestPointParameter, ClampsToUnitInterval) {
  const Vec2 a{0.0, 0.0};
  const Vec2 b{2.0, 0.0};
  EXPECT_DOUBLE_EQ(closest_point_parameter({1.0, 1.0}, a, b), 0.5);
  EXPECT_DOUBLE_EQ(closest_point_parameter({-9.0, 0.0}, a, b), 0.0);
  EXPECT_DOUBLE_EQ(closest_point_parameter({9.0, 0.0}, a, b), 1.0);
}

TEST(MirrorAcross, HorizontalWall) {
  const Segment2 wall{{0.0, 2.0}, {10.0, 2.0}};
  const Vec2 m = mirror_across({3.0, 5.0}, wall);
  EXPECT_NEAR(m.x, 3.0, 1e-12);
  EXPECT_NEAR(m.y, -1.0, 1e-12);
}

TEST(MirrorAcross, PointOnWallIsFixed) {
  const Segment2 wall{{0.0, 0.0}, {1.0, 1.0}};
  const Vec2 m = mirror_across({0.5, 0.5}, wall);
  EXPECT_NEAR(m.x, 0.5, 1e-12);
  EXPECT_NEAR(m.y, 0.5, 1e-12);
}

TEST(MirrorAcross, DegenerateWallThrows) {
  const Segment2 wall{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_THROW((void)mirror_across({0.0, 0.0}, wall), std::domain_error);
}

TEST(SegmentIntersection, CrossingAndMissing) {
  const auto hit =
      segment_intersection({0.0, 0.0}, {2.0, 2.0}, {0.0, 2.0}, {2.0, 0.0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->x, 1.0, 1e-12);
  EXPECT_NEAR(hit->y, 1.0, 1e-12);
  EXPECT_FALSE(segment_intersection({0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0},
                                    {1.0, 1.0})
                   .has_value());  // parallel
  EXPECT_FALSE(segment_intersection({0.0, 0.0}, {1.0, 1.0}, {3.0, 0.0},
                                    {3.0, 5.0})
                   .has_value());  // out of range
}

TEST(Bearing, QuadrantsAndWraps) {
  EXPECT_NEAR(bearing({0, 0}, {1, 0}), 0.0, 1e-12);
  EXPECT_NEAR(bearing({0, 0}, {0, 1}), kPi / 2, 1e-12);
  EXPECT_NEAR(bearing({0, 0}, {-1, 0}), kPi, 1e-12);
  EXPECT_NEAR(bearing({0, 0}, {0, -1}), 3 * kPi / 2, 1e-12);
}

TEST(WrapAngles, RangeInvariants) {
  EXPECT_NEAR(wrap_pi(3 * kPi), -kPi, 1e-12);
  EXPECT_NEAR(wrap_pi(-3 * kPi), -kPi, 1e-12);
  EXPECT_NEAR(wrap_pi(0.5), 0.5, 1e-12);
  EXPECT_NEAR(wrap_two_pi(-0.5), kTwoPi - 0.5, 1e-12);
  for (double a = -20.0; a < 20.0; a += 0.37) {
    EXPECT_GE(wrap_pi(a), -kPi);
    EXPECT_LT(wrap_pi(a), kPi);
    EXPECT_GE(wrap_two_pi(a), 0.0);
    EXPECT_LT(wrap_two_pi(a), kTwoPi);
    EXPECT_NEAR(std::sin(wrap_pi(a)), std::sin(a), 1e-9);
    EXPECT_NEAR(std::cos(wrap_two_pi(a)), std::cos(a), 1e-9);
  }
}

// --- segment_hits_vertical_cylinder ---------------------------------------

TEST(CylinderHit, HorizontalSegmentThroughCylinder) {
  EXPECT_TRUE(segment_hits_vertical_cylinder({-5, 0, 1}, {5, 0, 1}, {0, 0},
                                             0.5, 0.0, 2.0));
}

TEST(CylinderHit, SegmentMissesLaterally) {
  EXPECT_FALSE(segment_hits_vertical_cylinder({-5, 1, 1}, {5, 1, 1}, {0, 0},
                                              0.5, 0.0, 2.0));
}

TEST(CylinderHit, SegmentAboveCylinder) {
  EXPECT_FALSE(segment_hits_vertical_cylinder({-5, 0, 3}, {5, 0, 3}, {0, 0},
                                              0.5, 0.0, 2.0));
}

TEST(CylinderHit, SlantedSegmentCrossesTopBand) {
  // Rises from z=0 at x=-5 to z=4 at x=5; inside |x|<=0.5 the z range is
  // [1.8, 2.2], overlapping a cylinder capped at z=2.
  EXPECT_TRUE(segment_hits_vertical_cylinder({-5, 0, 0}, {5, 0, 4}, {0, 0},
                                             0.5, 0.0, 2.0));
  // Cylinder capped at z=1.5 is NOT touched inside the lateral overlap.
  EXPECT_FALSE(segment_hits_vertical_cylinder({-5, 0, 0}, {5, 0, 4}, {0, 0},
                                              0.5, 0.0, 1.5));
}

TEST(CylinderHit, VerticalSegment) {
  EXPECT_TRUE(segment_hits_vertical_cylinder({0.2, 0, 0}, {0.2, 0, 5},
                                             {0, 0}, 0.5, 1.0, 2.0));
  EXPECT_FALSE(segment_hits_vertical_cylinder({2.0, 0, 0}, {2.0, 0, 5},
                                              {0, 0}, 0.5, 1.0, 2.0));
  // Vertical but outside the z band.
  EXPECT_FALSE(segment_hits_vertical_cylinder({0.2, 0, 3}, {0.2, 0, 5},
                                              {0, 0}, 0.5, 1.0, 2.0));
}

TEST(CylinderHit, EndpointInside) {
  EXPECT_TRUE(segment_hits_vertical_cylinder({0.1, 0.1, 1.0}, {9, 9, 1.0},
                                             {0, 0}, 0.5, 0.0, 2.0));
}

TEST(CylinderHit, TangentCountsAsHit) {
  EXPECT_TRUE(segment_hits_vertical_cylinder({-5, 0.5, 1}, {5, 0.5, 1},
                                             {0, 0}, 0.5, 0.0, 2.0));
}

TEST(CylinderHit, NegativeRadiusThrows) {
  EXPECT_THROW((void)segment_hits_vertical_cylinder({0, 0, 0}, {1, 1, 1},
                                                    {0, 0}, -0.1, 0, 1),
               std::invalid_argument);
}

/// Parameterized sweep: a segment rotated around a cylinder hits iff its
/// lateral offset is below the radius.
class CylinderSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(CylinderSweepTest, OffsetControlsHit) {
  const double offset = GetParam();
  const double radius = 0.35;
  // Segment parallel to x at lateral offset `offset`.
  const bool hit = segment_hits_vertical_cylinder(
      {-10, offset, 1.0}, {10, offset, 1.0}, {0, 0}, radius, 0.0, 2.0);
  EXPECT_EQ(hit, std::abs(offset) <= radius);
}

INSTANTIATE_TEST_SUITE_P(Offsets, CylinderSweepTest,
                         ::testing::Values(0.0, 0.1, 0.2, 0.3, 0.34, 0.36,
                                           0.5, 1.0, -0.2, -0.4));

}  // namespace
}  // namespace dwatch::rf
