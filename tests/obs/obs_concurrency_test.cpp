// Concurrency suite for the obs layer, driven by the repo's own
// core::ThreadPool (the same pool that runs observe_batch, so the
// contention pattern matches production). Runs under the `tsan` ctest
// label: a ThreadSanitizer tree (cmake -DDWATCH_SANITIZE=thread)
// executes exactly these via the top-level tsan_check target.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/thread_pool.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace dwatch::obs {
namespace {

constexpr std::size_t kWorkers = 4;
constexpr std::size_t kTasks = 256;
constexpr std::size_t kPerTask = 64;

TEST(ObsConcurrency, CountersAccumulateAcrossThreads) {
  MetricsRegistry reg;
  Counter& shared = reg.counter("dwatch_shared_total");
  core::ThreadPool pool(kWorkers);
  pool.parallel_for(kTasks, [&](std::size_t i) {
    for (std::size_t k = 0; k < kPerTask; ++k) shared.inc();
    // Per-thread series exercise concurrent lookup of existing keys.
    reg.counter("dwatch_sharded_total",
                "shard=\"" + std::to_string(i % 8) + "\"")
        .inc();
  });
  EXPECT_EQ(shared.value(), kTasks * kPerTask);
  std::uint64_t sharded = 0;
  for (std::size_t s = 0; s < 8; ++s) {
    sharded += reg.counter("dwatch_sharded_total",
                           "shard=\"" + std::to_string(s) + "\"")
                   .value();
  }
  EXPECT_EQ(sharded, kTasks);
}

TEST(ObsConcurrency, ConcurrentSeriesRegistrationIsRaceFree) {
  // Every task insists on a distinct series name: the registry's
  // double-checked shared/unique-lock upgrade path is the target here.
  MetricsRegistry reg;
  core::ThreadPool pool(kWorkers);
  pool.parallel_for(kTasks, [&](std::size_t i) {
    reg.counter("dwatch_unique_" + std::to_string(i) + "_total").inc();
    reg.gauge("dwatch_unique_gauge_" + std::to_string(i))
        .set(static_cast<double>(i));
    reg.histogram("dwatch_unique_hist_" + std::to_string(i),
                  Histogram::default_latency_bounds_us())
        .observe(static_cast<double>(i));
  });
  EXPECT_EQ(reg.size(), 3 * kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(
        reg.counter("dwatch_unique_" + std::to_string(i) + "_total").value(),
        1u);
  }
  // Exporting while nothing else runs must see a consistent registry.
  EXPECT_FALSE(reg.prometheus_text().empty());
}

TEST(ObsConcurrency, HistogramObserveIsLockFreeAndLossless) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("dwatch_lat_us",
                               std::vector<double>{1.0, 2.0, 4.0, 8.0});
  core::ThreadPool pool(kWorkers);
  pool.parallel_for(kTasks, [&](std::size_t i) {
    for (std::size_t k = 0; k < kPerTask; ++k) {
      h.observe(static_cast<double>(i % 10));
    }
  });
  EXPECT_EQ(h.count(), kTasks * kPerTask);
  std::uint64_t bucket_total = 0;
  for (std::size_t b = 0; b < h.num_buckets(); ++b) {
    bucket_total += h.bucket_count(b);
  }
  EXPECT_EQ(bucket_total, h.count());
}

TEST(ObsConcurrency, EventLogEmitUnderContention) {
  EventLog log(kTasks / 2);  // force eviction under contention too
  core::ThreadPool pool(kWorkers);
  pool.parallel_for(kTasks, [&](std::size_t i) {
    log.emit(Event("concurrency.test").field("task", i));
  });
  EXPECT_EQ(log.size(), kTasks / 2);
  EXPECT_EQ(log.dropped(), kTasks - kTasks / 2);
  for (const std::string& line : log.snapshot()) {
    EXPECT_NE(line.find("\"type\":\"concurrency.test\""), std::string::npos);
    EXPECT_EQ(line.back(), '}');
  }
}

TEST(ObsConcurrency, TraceRecorderRecordUnderContention) {
  TraceRecorder rec(kTasks);  // half the records will be overwritten
  core::ThreadPool pool(kWorkers);
  pool.parallel_for(2 * kTasks, [&](std::size_t i) {
    SpanRecord s;
    s.name = "concurrency.span";
    s.start_us = i;
    s.duration_us = 1;
    s.thread_id = thread_ordinal();
    rec.record(s);
  });
  EXPECT_EQ(rec.size(), kTasks);
  EXPECT_EQ(rec.dropped(), kTasks);
  for (const SpanRecord& s : rec.snapshot()) {
    EXPECT_STREQ(s.name, "concurrency.span");
  }
}

#if DWATCH_OBS_ENABLED

TEST(ObsConcurrency, LiveSpansFromPoolWorkers) {
  set_enabled(true);
  TraceRecorder::global().clear();
  core::ThreadPool pool(kWorkers);
  pool.parallel_for(kTasks, [&](std::size_t) {
    DWATCH_SPAN("concurrency.live");
  });
  set_enabled(false);
  EXPECT_EQ(TraceRecorder::global().size(), kTasks);
}

#endif  // DWATCH_OBS_ENABLED

}  // namespace
}  // namespace dwatch::obs
