// TraceRecorder + Span tests: ring-buffer bounding, span nesting depth
// and completion ordering, and the Chrome trace-event JSON shape. The
// enabled-path tests are compiled out in a DWATCH_OBS=OFF tree, where
// DWATCH_SPAN must still expand to a valid (empty) statement.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace dwatch::obs {
namespace {

TEST(TraceRecorder, RingOverwritesOldestAndCountsDrops) {
  TraceRecorder rec(4);
  for (std::uint64_t i = 0; i < 7; ++i) {
    SpanRecord s;
    s.name = "x";
    s.start_us = i;
    rec.record(s);
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 3u);
  const std::vector<SpanRecord> snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // Oldest-to-newest: records 3,4,5,6 survive.
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].start_us, i + 3);
  }
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(TraceRecorder, SetCapacityDropsContents) {
  TraceRecorder rec(8);
  SpanRecord s;
  s.name = "x";
  rec.record(s);
  rec.set_capacity(2);
  EXPECT_EQ(rec.capacity(), 2u);
  EXPECT_EQ(rec.size(), 0u);
}

TEST(TraceRecorder, ChromeJsonShape) {
  TraceRecorder rec(8);
  SpanRecord s;
  s.name = "pipeline.observe";
  s.start_us = 10;
  s.duration_us = 5;
  s.thread_id = 2;
  s.depth = 1;
  rec.record(s);
  const std::string json = rec.chrome_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"pipeline.observe\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":10"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":5"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
}

TEST(Span, MacroCompilesAsStatement) {
  // Must compile as a plain statement in both DWATCH_OBS=ON and OFF
  // trees (ON: a Span declaration; OFF: a void expression).
  DWATCH_SPAN("trace_test.noop");
  SUCCEED();
}

#if DWATCH_OBS_ENABLED

TEST(Span, InactiveWhenRuntimeSwitchOff) {
  set_enabled(false);
  TraceRecorder::global().clear();
  {
    Span s("trace_test.disabled");
    EXPECT_FALSE(s.active());
  }
  EXPECT_EQ(TraceRecorder::global().size(), 0u);
}

TEST(Span, NestingDepthAndCompletionOrder) {
  set_enabled(true);
  TraceRecorder::global().clear();
  {
    Span outer("trace_test.outer");
    EXPECT_TRUE(outer.active());
    {
      Span inner("trace_test.inner");
      EXPECT_TRUE(inner.active());
    }
  }
  set_enabled(false);

  const std::vector<SpanRecord> snap = TraceRecorder::global().snapshot();
  ASSERT_EQ(snap.size(), 2u);
  // Spans are recorded on destruction: the inner one completes first.
  EXPECT_STREQ(snap[0].name, "trace_test.inner");
  EXPECT_STREQ(snap[1].name, "trace_test.outer");
  // Depth is zero-based: top-level spans record 0, nested spans 1.
  EXPECT_EQ(snap[0].depth, 1u);
  EXPECT_EQ(snap[1].depth, 0u);
  EXPECT_EQ(snap[0].thread_id, snap[1].thread_id);
  // Containment: the outer span starts no later and lasts no shorter.
  EXPECT_LE(snap[1].start_us, snap[0].start_us);
  EXPECT_GE(snap[1].start_us + snap[1].duration_us,
            snap[0].start_us + snap[0].duration_us);

  // Both appear, in order, in the Chrome export.
  const std::string json = TraceRecorder::global().chrome_json();
  const std::size_t inner_pos = json.find("trace_test.inner");
  const std::size_t outer_pos = json.find("trace_test.outer");
  ASSERT_NE(inner_pos, std::string::npos);
  ASSERT_NE(outer_pos, std::string::npos);
  EXPECT_LT(inner_pos, outer_pos);
}

TEST(Span, FeedsStageLatencyHistogram) {
  set_enabled(true);
  const Histogram& h = MetricsRegistry::global().histogram(
      "dwatch_stage_latency_us", Histogram::stage_latency_bounds_us(),
      "stage=\"trace_test.metered\"");
  const std::uint64_t before = h.count();
  { DWATCH_SPAN("trace_test.metered"); }
  set_enabled(false);
  EXPECT_EQ(h.count(), before + 1);
}

#endif  // DWATCH_OBS_ENABLED

}  // namespace
}  // namespace dwatch::obs
