// EventLog tests: the JSON Lines format is an interface for log
// shippers, so escaping is tested byte-for-byte — including the hostile
// case of ARBITRARY bytes in an EPC (wire garbage, truncated frames)
// which must never be able to break the one-object-per-line invariant.
#include "obs/event_log.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace dwatch::obs {
namespace {

/// Every event line opens with a timestamp from the shared obs clock;
/// strip it so tests can compare the deterministic remainder exactly.
std::string after_ts(const std::string& line) {
  EXPECT_EQ(line.rfind("{\"ts_us\":", 0), 0u) << line;
  const std::size_t comma = line.find(',');
  EXPECT_NE(comma, std::string::npos) << line;
  return line.substr(comma);
}

TEST(AppendJsonEscaped, PassesPlainAsciiThrough) {
  std::string out;
  append_json_escaped(out, "plain ASCII 09AZaz~ !");
  EXPECT_EQ(out, "plain ASCII 09AZaz~ !");
}

TEST(AppendJsonEscaped, EscapesQuotesBackslashesAndControls) {
  std::string out;
  append_json_escaped(out, "a\"b\\c\nd\te\rf\bg\fh");
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd\\te\\rf\\bg\\fh");
}

TEST(AppendJsonEscaped, ArbitraryBytesBecomeAsciiEscapes) {
  // A hostile EPC: NUL, an unnamed control byte, DEL, and high bytes.
  const std::array<char, 6> raw{'\x00', '\x1f', '\x7f',
                                static_cast<char>(0x80),
                                static_cast<char>(0xff), 'Z'};
  std::string out;
  append_json_escaped(out, std::string_view(raw.data(), raw.size()));
  EXPECT_EQ(out, "\\u0000\\u001f\\u007f\\u0080\\u00ffZ");
  // The output itself is pure printable ASCII with no raw newlines.
  for (const char c : out) {
    EXPECT_GE(c, 0x20);
    EXPECT_LT(static_cast<unsigned char>(c), 0x7f);
  }
}

TEST(Event, BuildsOneJsonObjectPerLine) {
  const Event e = Event("unit.test")
                      .field("name", "tag\n1")
                      .field("count", 42)
                      .field("delta", -7)
                      .field("ok", true)
                      .field("ratio", 0.5);
  EXPECT_EQ(after_ts(e.line()),
            ",\"type\":\"unit.test\",\"name\":\"tag\\n1\",\"count\":42,"
            "\"delta\":-7,\"ok\":true,\"ratio\":0.5}");
}

TEST(Event, FieldBytesRendersLowercaseHex) {
  const std::array<std::uint8_t, 4> epc{0x30, 0x00, 0xAB, 0xFF};
  const Event e = Event("unit.test").field_bytes("epc", epc);
  EXPECT_EQ(after_ts(e.line()),
            ",\"type\":\"unit.test\",\"epc\":\"3000abff\"}");
}

TEST(Event, NonFiniteDoublesStayValidJson) {
  const Event e =
      Event("unit.test")
          .field("a", std::numeric_limits<double>::quiet_NaN())
          .field("b", std::numeric_limits<double>::infinity())
          .field("c", -std::numeric_limits<double>::infinity());
  EXPECT_EQ(after_ts(e.line()),
            ",\"type\":\"unit.test\",\"a\":\"nan\",\"b\":\"inf\","
            "\"c\":\"-inf\"}");
}

TEST(Event, EscapesTypeAndKeys) {
  const Event e = Event("bad\"type").field("k\"ey", 1);
  EXPECT_EQ(after_ts(e.line()),
            ",\"type\":\"bad\\\"type\",\"k\\\"ey\":1}");
}

TEST(EventLog, BoundedDropsOldestLines) {
  EventLog log(3);
  for (int i = 0; i < 5; ++i) {
    log.emit_line("line" + std::to_string(i));
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.dropped(), 2u);
  EXPECT_EQ(log.snapshot(),
            (std::vector<std::string>{"line2", "line3", "line4"}));
  EXPECT_EQ(log.text(), "line2\nline3\nline4\n");
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(EventLog, ShrinkingCapacityEvicts) {
  EventLog log(8);
  for (int i = 0; i < 4; ++i) log.emit_line(std::to_string(i));
  log.set_capacity(2);
  EXPECT_EQ(log.capacity(), 2u);
  EXPECT_EQ(log.snapshot(), (std::vector<std::string>{"2", "3"}));
  EXPECT_EQ(log.dropped(), 2u);
}

}  // namespace
}  // namespace dwatch::obs
