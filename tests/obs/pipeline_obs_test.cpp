// Pipeline <-> obs integration:
//
//  1. Lifetime twins — every per-epoch ConfidenceReport counter has a
//     pipeline-lifetime twin in PipelineStats incremented at the same
//     site, so summing the per-epoch reports MUST reproduce the
//     lifetime totals exactly. This was previously impossible to check
//     from outside (the per-epoch counters reset on begin_epoch and the
//     cumulative view simply did not exist).
//  2. The registry mirrors — when the runtime switch is on, the same
//     increments land in the global dwatch_pipeline_*_total counters.
//  3. Observability observes, never participates — localization output
//     is bit-identical with the obs layer on and off.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "harness/experiment.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "sim/scene.hpp"

namespace dwatch {
namespace {

constexpr std::size_t kEpochs = 3;

sim::Scene make_scene() {
  rf::Rng deploy_rng(42);
  rf::Rng hardware_rng(7);
  sim::Deployment deployment = sim::make_room_deployment(
      sim::Environment::library(), sim::DeploymentOptions{}, deploy_rng);
  return sim::Scene(std::move(deployment), sim::CaptureOptions{},
                    hardware_rng);
}

harness::RunnerOptions runner_options() {
  harness::RunnerOptions opts;
  opts.calibrate = false;
  opts.through_wire = false;
  return opts;
}

void seed_calibration(harness::ExperimentRunner& runner,
                      const sim::Scene& scene) {
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    runner.pipeline().set_calibration(a, scene.reader(a).phase_offsets());
  }
}

/// ConfidenceReport counters summed over epochs, field by field.
struct ReportSums {
  std::size_t observations = 0;
  std::size_t observations_skipped = 0;
  std::size_t stale_observations = 0;
  std::size_t low_snapshot_observations = 0;
  std::size_t malformed_observations = 0;
  std::size_t drops_detected = 0;
  std::size_t reports_dropped = 0;
  std::size_t transport_retries = 0;
  std::size_t transport_timeouts = 0;

  void add(const core::ConfidenceReport& r) {
    observations += r.observations;
    observations_skipped += r.observations_skipped;
    stale_observations += r.stale_observations;
    low_snapshot_observations += r.low_snapshot_observations;
    malformed_observations += r.malformed_observations;
    drops_detected += r.drops_detected;
    reports_dropped += r.reports_dropped;
    transport_retries += r.transport_retries;
    transport_timeouts += r.transport_timeouts;
  }
};

TEST(PipelineObs, LifetimeTotalsEqualPerEpochSums) {
  const sim::Scene scene = make_scene();
  harness::ExperimentRunner runner(scene, runner_options());
  seed_calibration(runner, scene);
  rf::Rng rng(9);
  runner.collect_baselines(rng);

  const std::vector<sim::CylinderTarget> targets{
      sim::CylinderTarget::human({3.0, 4.0})};
  ReportSums sums;
  for (std::size_t e = 0; e < kEpochs; ++e) {
    runner.run_epoch(targets, rng);
    if (e == 1) {
      // Upstream loss accounting flows through the same twin scheme.
      runner.pipeline().note_transport(/*retries=*/2, /*timeouts=*/1);
      runner.pipeline().note_reports_dropped(3);
    }
    sums.add(runner.pipeline().localize_with_confidence(true).confidence);
  }

  const core::PipelineStats& stats = runner.pipeline().stats();
  EXPECT_EQ(stats.epochs, kEpochs);
  EXPECT_EQ(stats.observations, sums.observations);
  EXPECT_EQ(stats.observations_skipped, sums.observations_skipped);
  EXPECT_EQ(stats.stale_observations, sums.stale_observations);
  EXPECT_EQ(stats.low_snapshot_observations,
            sums.low_snapshot_observations);
  EXPECT_EQ(stats.malformed_observations, sums.malformed_observations);
  EXPECT_EQ(stats.drops_detected, sums.drops_detected);
  EXPECT_EQ(stats.reports_dropped, sums.reports_dropped);
  EXPECT_EQ(stats.transport_retries, sums.transport_retries);
  EXPECT_EQ(stats.transport_timeouts, sums.transport_timeouts);
  // The run actually exercised the interesting counters.
  EXPECT_GT(sums.observations, 0u);
  EXPECT_GT(sums.drops_detected, 0u);
  EXPECT_EQ(sums.reports_dropped, 3u);
  EXPECT_EQ(sums.transport_retries, 2u);
  EXPECT_EQ(sums.transport_timeouts, 1u);
}

#if DWATCH_OBS_ENABLED

TEST(PipelineObs, RegistryCountersMirrorLifetimeTotals) {
  // The registry is process-global and other tests may have touched the
  // pipeline counters: assert on DELTAS around this run.
  auto& reg = obs::MetricsRegistry::global();
  const auto value = [&reg](const char* name) {
    return reg.counter(name).value();
  };
  const std::uint64_t epochs0 = value("dwatch_pipeline_epochs_total");
  const std::uint64_t obs0 = value("dwatch_pipeline_observations_total");
  const std::uint64_t drops0 = value("dwatch_pipeline_drops_detected_total");
  const std::uint64_t rep0 = value("dwatch_pipeline_reports_dropped_total");
  const std::uint64_t retry0 =
      value("dwatch_pipeline_transport_retries_total");

  const sim::Scene scene = make_scene();
  harness::ExperimentRunner runner(scene, runner_options());
  seed_calibration(runner, scene);
  rf::Rng rng(9);
  runner.collect_baselines(rng);
  const std::vector<sim::CylinderTarget> targets{
      sim::CylinderTarget::human({3.0, 4.0})};

  obs::set_enabled(true);
  for (std::size_t e = 0; e < kEpochs; ++e) {
    runner.run_epoch(targets, rng);
  }
  runner.pipeline().note_transport(2, 1);
  runner.pipeline().note_reports_dropped(3);
  obs::set_enabled(false);

  const core::PipelineStats& stats = runner.pipeline().stats();
  EXPECT_EQ(value("dwatch_pipeline_epochs_total") - epochs0, stats.epochs);
  EXPECT_EQ(value("dwatch_pipeline_observations_total") - obs0,
            stats.observations);
  EXPECT_EQ(value("dwatch_pipeline_drops_detected_total") - drops0,
            stats.drops_detected);
  EXPECT_EQ(value("dwatch_pipeline_reports_dropped_total") - rep0,
            stats.reports_dropped);
  EXPECT_EQ(value("dwatch_pipeline_transport_retries_total") - retry0,
            stats.transport_retries);
}

TEST(PipelineObs, LocalizationBitIdenticalWithObsOnAndOff) {
  const std::vector<sim::CylinderTarget> targets{
      sim::CylinderTarget::human({3.0, 4.0})};

  const auto run_once = [&targets](bool obs_on) {
    const sim::Scene scene = make_scene();
    harness::ExperimentRunner runner(scene, runner_options());
    seed_calibration(runner, scene);
    rf::Rng rng(9);
    runner.collect_baselines(rng);
    obs::set_enabled(obs_on);
    core::ConfidentEstimate last{};
    for (std::size_t e = 0; e < kEpochs; ++e) {
      runner.run_epoch(targets, rng);
      last = runner.pipeline().localize_with_confidence(true);
    }
    obs::set_enabled(false);
    return last;
  };

  const core::ConfidentEstimate off = run_once(false);
  const core::ConfidentEstimate on = run_once(true);
  // Bitwise equality: the obs layer observes, it must not perturb.
  EXPECT_EQ(off.estimate.position.x, on.estimate.position.x);
  EXPECT_EQ(off.estimate.position.y, on.estimate.position.y);
  EXPECT_EQ(off.estimate.valid, on.estimate.valid);
  EXPECT_EQ(off.confidence, on.confidence);
}

TEST(PipelineObs, GhostRejectionEmitsOutlierEvent) {
  // Park the target on a tag's direct path: the pre-reflection-leg
  // blockage travels with that tag to every array, so Section 4.3
  // rejects the uncorroborated angle and must log WHICH angle it threw
  // away (the whole point of the event log: auditable rejections).
  const sim::Scene scene = make_scene();
  harness::ExperimentRunner runner(scene, runner_options());
  seed_calibration(runner, scene);
  rf::Rng rng(9);
  runner.collect_baselines(rng);
  const rf::Vec3 tag0 = scene.deployment().tags[0].position;
  const std::vector<sim::CylinderTarget> lurker{
      sim::CylinderTarget::human({tag0.x + 0.25, tag0.y})};

  obs::EventLog::global().clear();
  obs::set_enabled(true);
  runner.run_epoch(lurker, rng);
  (void)runner.pipeline().localize_with_confidence(true);
  obs::set_enabled(false);

  std::size_t ghost_events = 0;
  for (const std::string& line : obs::EventLog::global().snapshot()) {
    if (line.find("\"type\":\"pipeline.ghost_rejected\"") !=
        std::string::npos) {
      ++ghost_events;
      EXPECT_NE(line.find("\"theta_rad\":"), std::string::npos);
      EXPECT_NE(line.find("\"array\":"), std::string::npos);
    }
  }
  EXPECT_GT(ghost_events, 0u);
}

#endif  // DWATCH_OBS_ENABLED

}  // namespace
}  // namespace dwatch
