// MetricsRegistry unit tests: primitive semantics, the exact Prometheus
// `le` bucket boundary rules, percentile estimation, series identity,
// and a golden-format test over the text exposition (external scrapers
// parse this byte-for-byte; the format is an interface, not cosmetics).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

namespace dwatch::obs {
namespace {

TEST(Counter, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketBoundariesAreLeInclusive) {
  // Prometheus semantics: bucket `le=B` counts values <= B. A value
  // exactly on a bound must land in that bound's bucket, not the next.
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);  // le=1
  h.observe(1.0);  // le=1 (boundary: inclusive)
  h.observe(1.5);  // le=2
  h.observe(2.0);  // le=2 (boundary)
  h.observe(4.0);  // le=4 (boundary)
  h.observe(4.1);  // +Inf overflow
  ASSERT_EQ(h.num_buckets(), 4u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.1);
  EXPECT_DOUBLE_EQ(h.upper_bound(0), 1.0);
  EXPECT_TRUE(std::isinf(h.upper_bound(3)));
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  Histogram ok({1.0});
  EXPECT_THROW((void)ok.bucket_count(5), std::out_of_range);
  EXPECT_THROW((void)ok.upper_bound(5), std::out_of_range);
}

TEST(Histogram, PercentilesInterpolateWithinBuckets) {
  Histogram h({10.0, 20.0, 30.0});
  for (int i = 0; i < 100; ++i) h.observe(5.0);   // all in le=10
  EXPECT_GT(h.percentile(50.0), 0.0);
  EXPECT_LE(h.percentile(50.0), 10.0);
  EXPECT_LE(h.percentile(99.0), 10.0);

  Histogram u({10.0, 20.0});
  for (int i = 0; i < 50; ++i) u.observe(5.0);
  for (int i = 0; i < 50; ++i) u.observe(15.0);
  // p50 sits at the edge of the first bucket, p95 inside the second.
  EXPECT_LE(u.percentile(50.0), 10.0);
  EXPECT_GT(u.percentile(95.0), 10.0);
  EXPECT_LE(u.percentile(95.0), 20.0);

  Histogram empty({1.0});
  EXPECT_DOUBLE_EQ(empty.percentile(50.0), 0.0);
}

TEST(Histogram, ExponentialBounds) {
  const std::vector<double> b = Histogram::exponential_bounds(1.0, 2.0, 4);
  EXPECT_EQ(b, (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  EXPECT_THROW(Histogram::exponential_bounds(0.0, 2.0, 4),
               std::invalid_argument);
  EXPECT_THROW(Histogram::exponential_bounds(1.0, 1.0, 4),
               std::invalid_argument);
  EXPECT_EQ(Histogram::default_latency_bounds_us().size(), 24u);
}

TEST(Histogram, LogLinearBounds) {
  // One decade, 9 steps: the linear grid 1..9 plus the terminal bound.
  EXPECT_EQ(Histogram::log_linear_bounds(1.0, 10.0, 9),
            (std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0,
                                 10.0}));
  // Two decades, 3 steps each: 1,4,7 then 10,40,70, terminal 100.
  EXPECT_EQ(Histogram::log_linear_bounds(1.0, 100.0, 3),
            (std::vector<double>{1.0, 4.0, 7.0, 10.0, 40.0, 70.0, 100.0}));
  // `last` inside a decade truncates that decade's grid.
  EXPECT_EQ(Histogram::log_linear_bounds(1.0, 50.0, 3),
            (std::vector<double>{1.0, 4.0, 7.0, 10.0, 40.0, 50.0}));
  EXPECT_THROW(Histogram::log_linear_bounds(0.0, 10.0, 9),
               std::invalid_argument);
  EXPECT_THROW(Histogram::log_linear_bounds(10.0, 10.0, 9),
               std::invalid_argument);
  EXPECT_THROW(Histogram::log_linear_bounds(1.0, 10.0, 0),
               std::invalid_argument);

  const std::vector<double> stage = Histogram::stage_latency_bounds_us();
  ASSERT_EQ(stage.size(), 64u);
  EXPECT_DOUBLE_EQ(stage.front(), 1.0);
  EXPECT_DOUBLE_EQ(stage.back(), 1e7);
  // Strictly increasing (the Histogram constructor requires it; a
  // Release-built stage in the single-digit µs range must land across
  // several buckets, not one).
  for (std::size_t i = 1; i < stage.size(); ++i) {
    EXPECT_LT(stage[i - 1], stage[i]);
  }
  EXPECT_NO_THROW((void)Histogram{stage});
}

TEST(MetricsRegistry, SameSeriesReturnsSameObject) {
  MetricsRegistry reg;
  Counter& a = reg.counter("dwatch_x_total");
  Counter& b = reg.counter("dwatch_x_total");
  EXPECT_EQ(&a, &b);
  // Same name, different labels = different series.
  Counter& c = reg.counter("dwatch_x_total", "k=\"1\"");
  EXPECT_NE(&a, &c);
  Gauge& g1 = reg.gauge("dwatch_g");
  Gauge& g2 = reg.gauge("dwatch_g");
  EXPECT_EQ(&g1, &g2);
  const std::vector<double> bounds{1.0, 2.0};
  Histogram& h1 = reg.histogram("dwatch_h", bounds);
  Histogram& h2 = reg.histogram("dwatch_h", bounds);
  EXPECT_EQ(&h1, &h2);
  // Four distinct series: two counters (label sets differ), one gauge,
  // one histogram.
  EXPECT_EQ(reg.size(), 4u);
}

TEST(MetricsRegistry, ResetClearsValuesButKeepsSeries) {
  MetricsRegistry reg;
  reg.counter("dwatch_a_total").inc(7);
  reg.gauge("dwatch_b").set(3.0);
  const std::vector<double> bounds{1.0};
  reg.histogram("dwatch_c", bounds).observe(0.5);
  reg.reset();
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.counter("dwatch_a_total").value(), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("dwatch_b").value(), 0.0);
  EXPECT_EQ(reg.histogram("dwatch_c", bounds).count(), 0u);
}

TEST(MetricsRegistry, ForEachHistogramVisitsAll) {
  MetricsRegistry reg;
  const std::vector<double> bounds{1.0, 2.0};
  reg.histogram("dwatch_h", bounds, "stage=\"a\"").observe(0.5);
  reg.histogram("dwatch_h", bounds, "stage=\"b\"").observe(1.5);
  std::vector<std::string> labels;
  std::uint64_t total = 0;
  reg.for_each_histogram([&](const std::string& name,
                             const std::string& label,
                             const Histogram& h) {
    EXPECT_EQ(name, "dwatch_h");
    labels.push_back(label);
    total += h.count();
  });
  EXPECT_EQ(labels.size(), 2u);
  EXPECT_EQ(total, 2u);
}

// Golden exposition format: the exact bytes a Prometheus scraper sees.
// Cumulative buckets, # TYPE lines emitted once per metric name, label
// sets spliced into _bucket lines, integral values without decimals.
TEST(MetricsRegistry, PrometheusGoldenFormat) {
  MetricsRegistry reg;
  reg.counter("dwatch_fixes_total").inc(3);
  reg.counter("dwatch_obs_total", "array=\"0\"").inc(2);
  reg.counter("dwatch_obs_total", "array=\"1\"").inc(5);
  reg.gauge("dwatch_arrays_excluded").set(1.0);
  Histogram& h = reg.histogram("dwatch_lat_us", std::vector<double>{1.0, 2.0},
                               "stage=\"fix\"");
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);

  const std::string expected =
      "# TYPE dwatch_fixes_total counter\n"
      "dwatch_fixes_total 3\n"
      "# TYPE dwatch_obs_total counter\n"
      "dwatch_obs_total{array=\"0\"} 2\n"
      "dwatch_obs_total{array=\"1\"} 5\n"
      "# TYPE dwatch_arrays_excluded gauge\n"
      "dwatch_arrays_excluded 1\n"
      "# TYPE dwatch_lat_us histogram\n"
      "dwatch_lat_us_bucket{stage=\"fix\",le=\"1\"} 1\n"
      "dwatch_lat_us_bucket{stage=\"fix\",le=\"2\"} 2\n"
      "dwatch_lat_us_bucket{stage=\"fix\",le=\"+Inf\"} 3\n"
      "dwatch_lat_us_sum{stage=\"fix\"} 11\n"
      "dwatch_lat_us_count{stage=\"fix\"} 3\n";
  EXPECT_EQ(reg.prometheus_text(), expected);
}

TEST(MetricsRegistry, JsonExportCarriesPercentiles) {
  MetricsRegistry reg;
  reg.counter("dwatch_a_total").inc(1);
  Histogram& h =
      reg.histogram("dwatch_lat_us", std::vector<double>{1.0, 2.0});
  h.observe(0.5);
  const std::string json = reg.json_text();
  EXPECT_NE(json.find("\"counters\":{\"dwatch_a_total\":1}"),
            std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("{\"le\":\"+Inf\""), std::string::npos);
}

}  // namespace
}  // namespace dwatch::obs
