// Incremental-vs-batch parity over the WHOLE scenario registry: every
// registered scenario runs through the streaming spectral path
// (rank-1 covariance + tracked subspace + early sealing) AND the
// batch oracle, and the two must agree — same outcome, fix-RMSE
// deltas within 0.05 m. The per-spectrum 1e-6 bound lives in
// tests/core/streaming_test.cpp; this suite proves the end-to-end fix
// quality survives the swap on every room, motion, and RSS case.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace dwatch::scenario {
namespace {

constexpr double kRmseDeltaBudget = 0.05;  // metres

std::string describe(const char* tag, const ScenarioResult& r) {
  return std::string(tag) + " " + std::string(to_string(r.outcome)) + ": " +
         r.detail + " (rmse " + std::to_string(r.metrics.rmse) +
         " m, fix_rmse " + std::to_string(r.metrics.fix_rmse) +
         " m, early_seals " + std::to_string(r.metrics.early_seals) + ")";
}

class StreamingParity : public ::testing::TestWithParam<ScenarioSpec> {};

TEST_P(StreamingParity, MatchesBatchOracleWithinBudget) {
  const ScenarioSpec& spec = GetParam();

  RunnerConfig batch_config;
  const ScenarioResult batch = ScenarioRunner(batch_config).run(spec);

  RunnerConfig stream_config;
  stream_config.streaming.enabled = true;  // early_seal defaults on
  const ScenarioResult stream = ScenarioRunner(stream_config).run(spec);

  ASSERT_EQ(stream.outcome, batch.outcome)
      << describe("stream", stream) << "\n"
      << describe("batch", batch);
  if (batch.outcome != Outcome::kPass) return;  // both skipped the same way

  EXPECT_GT(stream.metrics.valid_fixes, 0u) << describe("stream", stream);
  EXPECT_LE(std::abs(stream.metrics.rmse - batch.metrics.rmse),
            kRmseDeltaBudget)
      << describe("stream", stream) << "\n"
      << describe("batch", batch);
  EXPECT_LE(std::abs(stream.metrics.fix_rmse - batch.metrics.fix_rmse),
            kRmseDeltaBudget)
      << describe("stream", stream) << "\n"
      << describe("batch", batch);
  // Batch mode cannot seal early, by construction.
  EXPECT_EQ(batch.metrics.early_seals, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, StreamingParity, ::testing::ValuesIn(all_scenarios()),
    [](const ::testing::TestParamInfo<ScenarioSpec>& info) {
      return info.param.name;
    });

// Streaming mode stays deterministic: two runs, byte-equal fixes.
TEST(StreamingRunner, DeterministicUnderAFixedSeed) {
  const ScenarioSpec* spec = find_scenario("hall_sparse_tags");
  ASSERT_NE(spec, nullptr);
  RunnerConfig config;
  config.streaming.enabled = true;
  const ScenarioResult a = ScenarioRunner(config).run(*spec);
  const ScenarioResult b = ScenarioRunner(config).run(*spec);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].fix.result.estimate.position.x,
              b.records[i].fix.result.estimate.position.x);
    EXPECT_EQ(a.records[i].fix.result.estimate.position.y,
              b.records[i].fix.result.estimate.position.y);
    EXPECT_EQ(a.records[i].fix.result.estimate.likelihood,
              b.records[i].fix.result.estimate.likelihood);
    EXPECT_EQ(a.records[i].fix.early, b.records[i].fix.early);
  }
  EXPECT_EQ(a.metrics.rmse, b.metrics.rmse);
  EXPECT_EQ(a.metrics.early_seals, b.metrics.early_seals);
}

// Early seals feed the TrackBank mid-epoch through the early-fix
// observer, and the scenario still scores a PASS: latency is the only
// thing early sealing is allowed to trade away.
TEST(StreamingRunner, EarlySealsStreamIntoTheTrackBank) {
  const ScenarioSpec* spec = find_scenario("library_static_human");
  ASSERT_NE(spec, nullptr);
  RunnerConfig config;
  config.streaming.enabled = true;
  config.streaming.min_reports = 4;
  config.streaming.convergence_window = 2;
  const ScenarioResult result = ScenarioRunner(config).run(*spec);
  EXPECT_EQ(result.outcome, Outcome::kPass)
      << describe("stream", result);
  EXPECT_GT(result.metrics.early_seals, 0u) << describe("stream", result);
  // Early epochs carry the early flag on their recorded fixes too.
  std::size_t flagged = 0;
  for (const EpochRecord& r : result.records) {
    if (r.fix.early) ++flagged;
  }
  EXPECT_EQ(flagged, result.metrics.early_seals);
}

// Multi-target specs force early sealing OFF (the backlog truncation
// would starve secondary peaks) but still run the incremental path.
TEST(StreamingRunner, MultiTargetNeverSealsEarly) {
  const ScenarioSpec* spec = find_scenario("library_two_humans");
  ASSERT_NE(spec, nullptr);
  RunnerConfig config;
  config.streaming.enabled = true;
  const ScenarioResult result = ScenarioRunner(config).run(*spec);
  EXPECT_EQ(result.outcome, Outcome::kPass) << describe("stream", result);
  EXPECT_EQ(result.metrics.early_seals, 0u);
  for (const EpochRecord& r : result.records) {
    EXPECT_FALSE(r.fix.early);
  }
}

}  // namespace
}  // namespace dwatch::scenario
