// Serving-layer contracts for the streaming spectral path: early
// sealing emits a fix BEFORE the report backlog is exhausted, the
// early-fix observer streams it out mid-epoch, the skip/TTFF
// accounting is exact, and the default-watermark carry works end to
// end through the service (the staleness gate is never silently off).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "rf/noise.hpp"
#include "rf/snapshot.hpp"
#include "serve/service.hpp"

namespace dwatch::serve {
namespace {

std::vector<rf::UniformLinearArray> zone_arrays() {
  return {
      rf::UniformLinearArray({3.5, 0.15, 1.25}, {1, 0}, 8),
      rf::UniformLinearArray({0.15, 5.0, 1.25}, {0, 1}, 8),
  };
}

core::SearchBounds zone_bounds() { return {{0.0, 0.0}, {7.0, 10.0}}; }

constexpr rf::Vec2 kTarget{2.0, 3.0};

linalg::CMatrix synth(const rf::UniformLinearArray& array, double angle_rad,
                      double scale, std::uint64_t seed) {
  rf::PropagationPath p;
  p.kind = rf::PathKind::kDirect;
  p.vertices = {{-10, 0, 1.25}, array.center()};
  p.length = 10.0;
  p.aoa = angle_rad;
  p.gain = {0.01, 0.0};
  const std::vector<rf::PropagationPath> paths{p};
  rf::SnapshotOptions opts;
  opts.num_snapshots = 16;
  opts.noise_sigma = rf::noise_sigma_for_snr(paths, 1.0, 35.0);
  rf::Rng rng(seed);
  const std::vector<double> path_scale{scale};
  return rf::synthesize_snapshots(array, paths, path_scale, opts, rng);
}

rfid::TagObservation wire_obs(const linalg::CMatrix& x, const rfid::Epc96& epc,
                              std::uint64_t first_seen_us = 0) {
  rfid::TagObservation obs;
  obs.epc = epc;
  obs.first_seen_us = first_seen_us;
  for (std::size_t n = 0; n < x.cols(); ++n) {
    for (std::size_t m = 0; m < x.rows(); ++m) {
      const auto [pq, rq] = rfid::quantize_sample(x(m, n));
      obs.samples.push_back(rfid::PhaseSample{
          static_cast<std::uint16_t>(m + 1), static_cast<std::uint32_t>(n),
          pq, rq});
    }
  }
  return obs;
}

ZoneConfig streaming_zone(bool streaming_enabled) {
  ZoneConfig cfg;
  cfg.name = "stream0";
  cfg.arrays = zone_arrays();
  cfg.bounds = zone_bounds();
  cfg.pipeline.streaming.enabled = streaming_enabled;
  cfg.pipeline.streaming.early_seal = true;
  cfg.pipeline.streaming.min_reports = 4;
  cfg.pipeline.streaming.convergence_window = 2;
  return cfg;
}

void install_baselines(core::DWatchPipeline& pipe) {
  const auto arrays = zone_arrays();
  for (std::size_t a = 0; a < arrays.size(); ++a) {
    const double angle = arrays[a].arrival_angle_planar(kTarget);
    pipe.add_baseline(
        a, rfid::Epc96::for_tag_index(static_cast<std::uint32_t>(a + 1)),
        synth(arrays[a], angle, 1.0, 500 + a));
  }
}

/// One single-observation report per (array, tag); interleaving arrays
/// gives the convergence gate evidence from BOTH arrays early, so the
/// seal lands while plenty of backlog remains.
std::size_t route_interleaved(LocalizationService& service,
                              std::size_t reports_per_array) {
  const auto arrays = zone_arrays();
  std::size_t routed = 0;
  for (std::size_t r = 0; r < reports_per_array; ++r) {
    for (std::size_t a = 0; a < arrays.size(); ++a) {
      const double angle = arrays[a].arrival_angle_planar(kTarget);
      rfid::RoAccessReport report;
      report.message_id = static_cast<std::uint32_t>(100 * r + a);
      report.observations.push_back(wire_obs(
          synth(arrays[a], angle, 0.2, 40 + 10 * r + a),
          rfid::Epc96::for_tag_index(static_cast<std::uint32_t>(a + 1))));
      service.add_report(0, a, report);
      ++routed;
    }
  }
  return routed;
}

TEST(StreamingServe, EarlySealEmitsFixBeforeBacklogExhausted) {
  LocalizationService service;
  const std::size_t z = service.add_zone(streaming_zone(true));
  install_baselines(service.zone(z).pipeline());

  std::vector<std::pair<std::size_t, ZoneFix>> observed;
  service.set_early_fix_observer(
      [&](std::size_t zone, const ZoneFix& fix) {
        observed.emplace_back(zone, fix);
      });

  service.begin_epoch(z);
  const std::size_t routed = route_interleaved(service, 8);
  ASSERT_EQ(service.run_pending(), 1u);

  const auto& fixes = service.fixes(z);
  ASSERT_EQ(fixes.size(), 1u);
  const ZoneFix& fix = fixes[0];
  EXPECT_TRUE(fix.early);
  EXPECT_GT(fix.reports_skipped, 0u);
  EXPECT_LT(fix.reports_skipped, routed);
  EXPECT_GT(fix.ttff_us, 0u);
  EXPECT_TRUE(fix.result.estimate.valid);
  EXPECT_NEAR(rf::distance(fix.result.estimate.position, kTarget), 0.0, 0.3);

  // The observer streamed the SAME fix out mid-run, before run_pending
  // returned control to the serving loop.
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_EQ(observed[0].first, z);
  EXPECT_EQ(observed[0].second.seq, fix.seq);
  EXPECT_EQ(observed[0].second.result.estimate.position.x,
            fix.result.estimate.position.x);
  EXPECT_TRUE(observed[0].second.early);

  const ZoneServingStats& stats = service.zone_stats(z);
  EXPECT_EQ(stats.epochs_early_sealed, 1u);
  EXPECT_EQ(stats.reports_skipped_early, fix.reports_skipped);

  const core::StreamingStats& ss =
      service.zone(z).pipeline().streaming_stats();
  EXPECT_GT(ss.early_seals, 0u);
  EXPECT_GT(ss.streamed_spectra, 0u);
  EXPECT_GT(ss.rank1_updates, 0u);
}

TEST(StreamingServe, BatchModeNeverSealsEarly) {
  LocalizationService service;
  const std::size_t z = service.add_zone(streaming_zone(false));
  install_baselines(service.zone(z).pipeline());

  bool observer_fired = false;
  service.set_early_fix_observer(
      [&](std::size_t, const ZoneFix&) { observer_fired = true; });

  service.begin_epoch(z);
  (void)route_interleaved(service, 8);
  ASSERT_EQ(service.run_pending(), 1u);

  const auto& fixes = service.fixes(z);
  ASSERT_EQ(fixes.size(), 1u);
  EXPECT_FALSE(fixes[0].early);
  EXPECT_EQ(fixes[0].reports_skipped, 0u);
  EXPECT_FALSE(observer_fired);
  EXPECT_EQ(service.zone_stats(z).epochs_early_sealed, 0u);
  EXPECT_EQ(service.zone_stats(z).reports_skipped_early, 0u);
  EXPECT_TRUE(fixes[0].result.estimate.valid);
}

TEST(StreamingServe, EarlySealedFixStaysNearTheFullBacklogFix) {
  // Sealing early must trade LATENCY, not accuracy: the early fix and
  // the full-backlog batch fix land within the convergence tolerance
  // of each other.
  LocalizationService batch_service;
  const std::size_t zb = batch_service.add_zone(streaming_zone(false));
  install_baselines(batch_service.zone(zb).pipeline());
  batch_service.begin_epoch(zb);
  (void)route_interleaved(batch_service, 8);
  ASSERT_EQ(batch_service.run_pending(), 1u);
  const ZoneFix& full = batch_service.fixes(zb)[0];

  LocalizationService stream_service;
  const std::size_t zs = stream_service.add_zone(streaming_zone(true));
  install_baselines(stream_service.zone(zs).pipeline());
  stream_service.begin_epoch(zs);
  (void)route_interleaved(stream_service, 8);
  ASSERT_EQ(stream_service.run_pending(), 1u);
  const ZoneFix& early = stream_service.fixes(zs)[0];

  ASSERT_TRUE(full.result.estimate.valid);
  ASSERT_TRUE(early.result.estimate.valid);
  EXPECT_NEAR(rf::distance(full.result.estimate.position,
                           early.result.estimate.position),
              0.0, 0.25);
}

TEST(StreamingServe, DefaultWatermarkCarriesAcrossServiceEpochs) {
  // Satellite regression, end to end: with reject_stale on and the
  // serving loop passing the DEFAULT watermark (0), the second epoch
  // inherits the first epoch's max-seen timestamp — a replayed stale
  // observation is rejected instead of sailing through a gate that
  // "watermark 0" used to disable.
  ZoneConfig cfg = streaming_zone(false);
  cfg.pipeline.degraded.reject_stale = true;
  LocalizationService service;
  const std::size_t z = service.add_zone(std::move(cfg));
  install_baselines(service.zone(z).pipeline());

  const auto arrays = zone_arrays();
  const double angle = arrays[0].arrival_angle_planar(kTarget);
  const rfid::Epc96 epc = rfid::Epc96::for_tag_index(1);

  service.begin_epoch(z);  // default watermark
  rfid::RoAccessReport fresh;
  fresh.observations.push_back(
      wire_obs(synth(arrays[0], angle, 0.2, 91), epc, 2000));
  service.add_report(z, 0, fresh);
  ASSERT_EQ(service.run_pending(), 1u);
  EXPECT_EQ(service.zone(z).pipeline().stats().stale_observations, 0u);

  service.begin_epoch(z);  // default watermark again: carries 2000
  rfid::RoAccessReport stale;
  stale.observations.push_back(
      wire_obs(synth(arrays[0], angle, 0.2, 92), epc, 5));
  service.add_report(z, 0, stale);
  rfid::RoAccessReport current;
  current.observations.push_back(
      wire_obs(synth(arrays[0], angle, 0.2, 93), epc, 2000));
  service.add_report(z, 0, current);
  ASSERT_EQ(service.run_pending(), 1u);

  const core::PipelineStats stats = service.zone(z).pipeline().stats();
  EXPECT_EQ(stats.stale_observations, 1u);  // the replay bounced
  EXPECT_EQ(stats.observations, 2u);        // epoch 1 + the current one
}

TEST(StreamingServe, ExplicitWatermarkStillBeatsTheCarry) {
  // Explicit serving-loop watermarks (including the widen-epoch path,
  // which re-submits the FIRST tick's watermark) always win over the
  // carried default.
  ZoneConfig cfg = streaming_zone(false);
  cfg.pipeline.degraded.reject_stale = true;
  LocalizationService service;
  const std::size_t z = service.add_zone(std::move(cfg));
  install_baselines(service.zone(z).pipeline());

  const auto arrays = zone_arrays();
  const double angle = arrays[0].arrival_angle_planar(kTarget);
  const rfid::Epc96 epc = rfid::Epc96::for_tag_index(1);

  service.begin_epoch(z);
  rfid::RoAccessReport first;
  first.observations.push_back(
      wire_obs(synth(arrays[0], angle, 0.2, 94), epc, 9000));
  service.add_report(z, 0, first);
  ASSERT_EQ(service.run_pending(), 1u);

  // An EXPLICIT lower watermark (an operator replay window) overrides
  // the 9000 the carry would have imposed.
  service.begin_epoch(z, 100);
  rfid::RoAccessReport replay;
  replay.observations.push_back(
      wire_obs(synth(arrays[0], angle, 0.2, 95), epc, 150));
  service.add_report(z, 0, replay);
  ASSERT_EQ(service.run_pending(), 1u);

  const core::PipelineStats stats = service.zone(z).pipeline().stats();
  EXPECT_EQ(stats.stale_observations, 0u);
  EXPECT_EQ(stats.observations, 2u);
}

}  // namespace
}  // namespace dwatch::serve
