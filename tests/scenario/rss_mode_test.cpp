// RSS-only degraded mode through the scenario engine: the phase-health
// gate, the forced path, and the unit behaviour of phase_coherence and
// the RTI-style RssLocalizer the fallback is built from.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/rss.hpp"
#include "linalg/complex_matrix.hpp"
#include "rf/noise.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

namespace dwatch::scenario {
namespace {

// ----------------------------------------------------- phase_coherence

linalg::CMatrix coherent_snapshots(std::size_t elements, std::size_t rounds) {
  linalg::CMatrix x(elements, rounds);
  for (std::size_t m = 0; m < elements; ++m) {
    for (std::size_t n = 0; n < rounds; ++n) {
      x(m, n) = std::polar(1.0, 0.3 * static_cast<double>(m));
    }
  }
  return x;
}

TEST(PhaseCoherenceTest, HealthyHardwareScoresNearOne) {
  const double score = core::phase_coherence(coherent_snapshots(8, 16));
  EXPECT_NEAR(score, 1.0, 1e-9);
}

TEST(PhaseCoherenceTest, ScrambledPhaseScoresLow) {
  rf::Rng rng(99);
  linalg::CMatrix x(8, 64);
  for (std::size_t m = 0; m < 8; ++m) {
    for (std::size_t n = 0; n < 64; ++n) {
      x(m, n) = std::polar(1.0, rng.uniform(0.0, 2.0 * 3.14159265358979));
    }
  }
  const double score = core::phase_coherence(x);
  // Random phase walks shrink the circular mean toward 1/sqrt(N).
  EXPECT_LT(score, 0.5);
}

TEST(PhaseCoherenceTest, SingleElementIsTriviallyCoherent) {
  EXPECT_DOUBLE_EQ(core::phase_coherence(coherent_snapshots(1, 16)), 1.0);
}

// -------------------------------------------------------- RssLocalizer

TEST(RssLocalizerTest, TwoCrossingShadowedLinksPinTheBody) {
  // Array 0 at (0,5) hears tag (10,5); array 1 at (5,0) hears tag
  // (5,10). A body at (5,5) stands on both links, so both report a
  // drop and the evidence product peaks at the crossing.
  const std::vector<rf::Vec2> centers{{0.0, 5.0}, {5.0, 0.0}};
  const core::SearchBounds bounds{{0.0, 0.0}, {10.0, 10.0}};
  core::RssLocalizer localizer(centers, bounds, 0.25);
  const std::vector<core::RssLink> links{
      {0, {10.0, 5.0}, 0.5},
      {1, {5.0, 10.0}, 0.5},
  };
  const std::vector<std::uint8_t> excluded(centers.size(), 0);
  const core::LocationEstimate estimate = localizer.localize(links, excluded);
  EXPECT_TRUE(estimate.valid);
  EXPECT_NEAR(estimate.position.x, 5.0, 0.5);
  EXPECT_NEAR(estimate.position.y, 5.0, 0.5);
}

TEST(RssLocalizerTest, ThrowsOnEmptyCentersOrDegenerateBounds) {
  const core::SearchBounds bounds{{0.0, 0.0}, {10.0, 10.0}};
  EXPECT_THROW(core::RssLocalizer({}, bounds, 0.25), std::invalid_argument);
  EXPECT_THROW(core::RssLocalizer({{1.0, 1.0}}, {{5.0, 5.0}, {5.0, 5.0}},
                                  0.25),
               std::invalid_argument);
}

// --------------------------------------------- the scenario-level gate

TEST(RssScenarioTest, ForcedModeTakesEveryFixOnTheRssPath) {
  const ScenarioSpec* spec = find_scenario("library_rss_forced");
  ASSERT_NE(spec, nullptr);
  ScenarioRunner runner;
  const ScenarioResult result = runner.run(*spec);
  EXPECT_EQ(result.outcome, Outcome::kPass) << result.detail;
  EXPECT_EQ(result.metrics.rss_epochs, result.metrics.epochs);
  for (const EpochRecord& rec : result.records) {
    EXPECT_TRUE(rec.fix.result.confidence.rss_mode);
  }
}

TEST(RssScenarioTest, ScrambledPhaseTripsTheAutoFallback) {
  const ScenarioSpec* spec = find_scenario("hall_rss_auto_scramble");
  ASSERT_NE(spec, nullptr);
  ScenarioRunner runner;
  const ScenarioResult result = runner.run(*spec);
  EXPECT_EQ(result.outcome, Outcome::kPass) << result.detail;
  // Every epoch's phases are scrambled, so every fix falls back.
  EXPECT_EQ(result.metrics.rss_epochs, result.metrics.epochs);
  for (const EpochRecord& rec : result.records) {
    EXPECT_TRUE(rec.fix.result.confidence.rss_mode);
    EXPECT_LT(rec.fix.result.confidence.phase_health,
              spec->rss.auto_health_threshold);
  }
}

TEST(RssScenarioTest, HealthyPhaseNeverFallsBack) {
  const ScenarioSpec* spec = find_scenario("library_static_human");
  ASSERT_NE(spec, nullptr);
  ScenarioRunner runner;
  const ScenarioResult result = runner.run(*spec);
  EXPECT_EQ(result.metrics.rss_epochs, 0u);
  for (const EpochRecord& rec : result.records) {
    EXPECT_FALSE(rec.fix.result.confidence.rss_mode);
    EXPECT_GT(rec.fix.result.confidence.phase_health, 0.8);
  }
}

TEST(RssScenarioTest, ScrambleWithoutFallbackStaysOnPhasePath) {
  // Negative control: the same scrambled hall, but with the RSS options
  // left inert. The pipeline must NOT silently switch paths.
  const ScenarioSpec* base = find_scenario("hall_rss_auto_scramble");
  ASSERT_NE(base, nullptr);
  ScenarioSpec spec = *base;
  spec.name = "hall_scramble_no_fallback";
  spec.rss = core::RssOnlyOptions{};
  spec.budget.rmse_m = 100.0;  // outcome is not the point here
  ScenarioRunner runner;
  const ScenarioResult result = runner.run(spec);
  EXPECT_EQ(result.metrics.rss_epochs, 0u);
  for (const EpochRecord& rec : result.records) {
    EXPECT_FALSE(rec.fix.result.confidence.rss_mode);
  }
}

}  // namespace
}  // namespace dwatch::scenario
