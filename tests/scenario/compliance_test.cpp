// The generic compliance suite: every registered scenario must come
// back PASS from the ScenarioRunner, deterministically, through the
// full sim -> wire -> service -> tracker stack. One parameterized test
// per scenario keeps ctest granular (a failing room shows up by name)
// and lets the suite run in parallel.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace dwatch::scenario {
namespace {

std::string describe(const ScenarioResult& r) {
  return std::string(to_string(r.outcome)) + ": " + r.detail +
         " (rmse " + std::to_string(r.metrics.rmse) + " m, match " +
         std::to_string(r.metrics.match_rate) + ", scored " +
         std::to_string(r.metrics.scored_epochs) + "/" +
         std::to_string(r.metrics.epochs) + ")";
}

class ScenarioCompliance : public ::testing::TestWithParam<ScenarioSpec> {};

TEST_P(ScenarioCompliance, PassesItsBudget) {
  ScenarioRunner runner;
  const ScenarioResult result = runner.run(GetParam());
  EXPECT_EQ(result.outcome, Outcome::kPass) << describe(result);
  EXPECT_GT(result.metrics.valid_fixes, 0u) << describe(result);
  EXPECT_EQ(result.metrics.epochs, result.records.size());
}

INSTANTIATE_TEST_SUITE_P(
    Registry, ScenarioCompliance, ::testing::ValuesIn(all_scenarios()),
    [](const ::testing::TestParamInfo<ScenarioSpec>& info) {
      return info.param.name;
    });

// Two runs of the same spec must produce byte-equal fix sequences:
// everything in the runner derives from ScenarioSpec::seed.
TEST(ComplianceRunner, DeterministicUnderAFixedSeed) {
  const ScenarioSpec* spec = find_scenario("hall_sparse_tags");
  ASSERT_NE(spec, nullptr);
  ScenarioRunner r1;
  ScenarioRunner r2;
  const ScenarioResult a = r1.run(*spec);
  const ScenarioResult b = r2.run(*spec);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const EpochRecord& ra = a.records[i];
    const EpochRecord& rb = b.records[i];
    EXPECT_EQ(ra.fix.watermark_us, rb.fix.watermark_us);
    EXPECT_EQ(ra.fix.result.estimate.valid, rb.fix.result.estimate.valid);
    EXPECT_EQ(ra.fix.result.estimate.position.x,
              rb.fix.result.estimate.position.x);
    EXPECT_EQ(ra.fix.result.estimate.position.y,
              rb.fix.result.estimate.position.y);
    EXPECT_EQ(ra.fix.result.estimate.likelihood,
              rb.fix.result.estimate.likelihood);
    ASSERT_EQ(ra.tracked.size(), rb.tracked.size());
    for (std::size_t t = 0; t < ra.tracked.size(); ++t) {
      EXPECT_EQ(ra.tracked[t].x, rb.tracked[t].x);
      EXPECT_EQ(ra.tracked[t].y, rb.tracked[t].y);
    }
  }
  EXPECT_EQ(a.metrics.rmse, b.metrics.rmse);
  EXPECT_EQ(a.metrics.match_rate, b.metrics.match_rate);
}

// The service worker pool must not change results: fixes are
// bit-identical whether the zone runs serially or on a pool.
TEST(ComplianceRunner, WorkerCountDoesNotChangeFixes) {
  const ScenarioSpec* spec = find_scenario("hall_sparse_tags");
  ASSERT_NE(spec, nullptr);
  RunnerConfig serial;
  serial.service_workers = 1;
  RunnerConfig pooled;
  pooled.service_workers = 4;
  const ScenarioResult a = ScenarioRunner(serial).run(*spec);
  const ScenarioResult b = ScenarioRunner(pooled).run(*spec);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].fix.result.estimate.position.x,
              b.records[i].fix.result.estimate.position.x);
    EXPECT_EQ(a.records[i].fix.result.estimate.position.y,
              b.records[i].fix.result.estimate.position.y);
    EXPECT_EQ(a.records[i].fix.result.estimate.likelihood,
              b.records[i].fix.result.estimate.likelihood);
  }
}

// ----------------------------------------------------- outcome plumbing

TEST(ComplianceRunner, SkipsRssScenarioWithoutSurveyedTags) {
  const ScenarioSpec* base = find_scenario("library_rss_forced");
  ASSERT_NE(base, nullptr);
  ScenarioSpec spec = *base;
  spec.survey_tags = false;
  ScenarioRunner runner;
  const ScenarioResult result = runner.run(spec);
  EXPECT_EQ(result.outcome, Outcome::kSkip);
  EXPECT_NE(result.detail.find("survey"), std::string::npos);
  EXPECT_TRUE(result.records.empty());
}

TEST(ComplianceRunner, SkipsUncompilableSpec) {
  ScenarioSpec spec;
  spec.name = "no_targets";
  ScenarioRunner runner;
  const ScenarioResult result = runner.run(spec);
  EXPECT_EQ(result.outcome, Outcome::kSkip);
  EXPECT_FALSE(result.detail.empty());
}

TEST(ComplianceRunner, FailsAnImpossibleBudget) {
  const ScenarioSpec* base = find_scenario("library_static_human");
  ASSERT_NE(base, nullptr);
  ScenarioSpec spec = *base;
  spec.budget.rmse_m = 1e-9;
  spec.budget.human_allowance = false;
  ScenarioRunner runner;
  const ScenarioResult result = runner.run(spec);
  EXPECT_EQ(result.outcome, Outcome::kFail);
}

TEST(ComplianceRunner, PerfBudgetDemotesACorrectRun) {
  const ScenarioSpec* spec = find_scenario("hall_sparse_tags");
  ASSERT_NE(spec, nullptr);
  RunnerConfig config;
  config.perf_budget_us = 1e-3;  // nothing real finishes in a nanosecond
  ScenarioRunner runner(config);
  const ScenarioResult result = runner.run(*spec);
  EXPECT_EQ(result.outcome, Outcome::kPerf) << describe(result);
}

TEST(ComplianceRunner, KeepRecordsOffDropsTheRecords) {
  const ScenarioSpec* spec = find_scenario("hall_sparse_tags");
  ASSERT_NE(spec, nullptr);
  RunnerConfig config;
  config.keep_records = false;
  ScenarioRunner runner(config);
  const ScenarioResult result = runner.run(*spec);
  EXPECT_EQ(result.outcome, Outcome::kPass) << describe(result);
  EXPECT_TRUE(result.records.empty());
  EXPECT_GT(result.metrics.epochs, 0u);
}

}  // namespace
}  // namespace dwatch::scenario
