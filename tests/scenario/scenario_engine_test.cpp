// Unit tests for the scenario DSL building blocks: waypoint
// trajectories, the Hungarian assignment used for multi-target scoring,
// the spec compiler, and the scenario registry's coverage guarantees.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "scenario/assignment.hpp"
#include "scenario/registry.hpp"
#include "scenario/spec.hpp"
#include "scenario/trajectory.hpp"

namespace dwatch::scenario {
namespace {

// ---------------------------------------------------------------- trajectory

TEST(TrajectoryTest, StationaryNeverMoves) {
  const Trajectory t = Trajectory::stationary({1.5, 2.5});
  EXPECT_DOUBLE_EQ(t.duration(), 0.0);
  for (const double time : {-3.0, 0.0, 0.7, 100.0}) {
    const rf::Vec2 p = t.position_at(time);
    EXPECT_DOUBLE_EQ(p.x, 1.5);
    EXPECT_DOUBLE_EQ(p.y, 2.5);
  }
}

TEST(TrajectoryTest, PiecewiseLinearWithPerSegmentSpeeds) {
  // 4 m at 1 m/s, then 3 m at 2 m/s: arrivals at t=4 and t=5.5.
  const Trajectory t({{{0.0, 0.0}, 1.0}, {{4.0, 0.0}, 2.0}, {{4.0, 3.0}, 1.0}});
  EXPECT_DOUBLE_EQ(t.duration(), 5.5);

  const rf::Vec2 mid0 = t.position_at(2.0);
  EXPECT_NEAR(mid0.x, 2.0, 1e-12);
  EXPECT_NEAR(mid0.y, 0.0, 1e-12);

  const rf::Vec2 corner = t.position_at(4.0);
  EXPECT_NEAR(corner.x, 4.0, 1e-12);
  EXPECT_NEAR(corner.y, 0.0, 1e-12);

  const rf::Vec2 mid1 = t.position_at(4.75);
  EXPECT_NEAR(mid1.x, 4.0, 1e-12);
  EXPECT_NEAR(mid1.y, 1.5, 1e-12);
}

TEST(TrajectoryTest, ClampsOutsideTheWalk) {
  const Trajectory t({{{1.0, 1.0}, 1.0}, {{2.0, 1.0}, 1.0}});
  const rf::Vec2 before = t.position_at(-1.0);
  EXPECT_DOUBLE_EQ(before.x, 1.0);
  const rf::Vec2 after = t.position_at(99.0);
  EXPECT_DOUBLE_EQ(after.x, 2.0);
}

TEST(TrajectoryTest, ThrowsOnEmptyWaypoints) {
  EXPECT_THROW(Trajectory({}), std::invalid_argument);
}

TEST(TrajectoryTest, ThrowsOnNonPositiveSpeedOverNonzeroSegment) {
  EXPECT_THROW(Trajectory({{{0.0, 0.0}, 0.0}, {{1.0, 0.0}, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(Trajectory({{{0.0, 0.0}, -2.0}, {{1.0, 0.0}, 1.0}}),
               std::invalid_argument);
}

// ---------------------------------------------------------------- assignment

TEST(AssignmentTest, BeatsGreedyMatching) {
  // Greedy row-by-row picks (0->0, 1->1, 2->2) = 1 + 4 + 1 = 6; the
  // optimum swaps the first two rows for a total of 4.
  const std::vector<std::vector<double>> cost{
      {1.0, 2.0, 3.0}, {1.0, 4.0, 5.0}, {9.0, 9.0, 1.0}};
  const auto assignment = min_cost_assignment(cost);
  ASSERT_EQ(assignment.size(), 3u);
  EXPECT_EQ(assignment[0], 1u);
  EXPECT_EQ(assignment[1], 0u);
  EXPECT_EQ(assignment[2], 2u);
  EXPECT_DOUBLE_EQ(assignment_cost(cost, assignment), 4.0);
}

TEST(AssignmentTest, RectangularRowsLessThanColumns) {
  const std::vector<std::vector<double>> cost{{5.0, 1.0, 7.0},
                                              {1.0, 6.0, 8.0}};
  const auto assignment = min_cost_assignment(cost);
  ASSERT_EQ(assignment.size(), 2u);
  EXPECT_EQ(assignment[0], 1u);
  EXPECT_EQ(assignment[1], 0u);
  // Columns must be distinct.
  EXPECT_NE(assignment[0], assignment[1]);
}

TEST(AssignmentTest, ThrowsOnMoreRowsThanColumns) {
  const std::vector<std::vector<double>> cost{{1.0}, {2.0}, {3.0}};
  EXPECT_THROW(min_cost_assignment(cost), std::invalid_argument);
}

TEST(AssignmentTest, ThrowsOnRaggedMatrix) {
  const std::vector<std::vector<double>> cost{{1.0, 2.0}, {3.0}};
  EXPECT_THROW(min_cost_assignment(cost), std::invalid_argument);
}

TEST(AssignmentTest, MatchedErrorsResolvesTheSwap) {
  // Greedy nearest-neighbour would double-count (0,0); the Hungarian
  // match pairs each estimate with its own truth for zero total error.
  const std::vector<rf::Vec2> estimates{{0.0, 0.0}, {5.0, 5.0}};
  const std::vector<rf::Vec2> truths{{5.0, 5.0}, {0.0, 0.0}};
  const auto errors = matched_errors(estimates, truths);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_NEAR(errors[0], 0.0, 1e-12);
  EXPECT_NEAR(errors[1], 0.0, 1e-12);
}

TEST(AssignmentTest, MatchedErrorsWithFewerEstimatesThanTruths) {
  const std::vector<rf::Vec2> estimates{{1.0, 0.0}};
  const std::vector<rf::Vec2> truths{{0.0, 0.0}, {10.0, 10.0}};
  const auto errors = matched_errors(estimates, truths);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NEAR(errors[0], 1.0, 1e-12);
}

// ------------------------------------------------------------------ compile

ScenarioSpec tiny_static_spec() {
  ScenarioSpec s;
  s.name = "unit_static";
  s.room = RoomPreset::kLibrary;
  s.seed = 7;
  TargetSpec t;
  t.kind = TargetKind::kHuman;
  t.trajectory = Trajectory::stationary({3.0, 4.0});
  s.targets = {t};
  return s;
}

TEST(CompileTest, RoomPresetsMatchThePaperDimensions) {
  const sim::Environment lib = make_environment(RoomPreset::kLibrary);
  EXPECT_DOUBLE_EQ(lib.width, 7.0);
  EXPECT_DOUBLE_EQ(lib.depth, 10.0);
  const sim::Environment lab = make_environment(RoomPreset::kLaboratory);
  EXPECT_DOUBLE_EQ(lab.width, 9.0);
  EXPECT_DOUBLE_EQ(lab.depth, 12.0);
  const sim::Environment hall = make_environment(RoomPreset::kHall);
  EXPECT_DOUBLE_EQ(hall.width, 7.2);
  EXPECT_DOUBLE_EQ(hall.depth, 10.4);
  const sim::Environment table = make_environment(RoomPreset::kTable);
  EXPECT_DOUBLE_EQ(table.width, 2.0);
  EXPECT_DOUBLE_EQ(table.depth, 2.0);
}

TEST(CompileTest, StaticScenarioStillGetsMinEpochs) {
  ScenarioSpec s = tiny_static_spec();
  s.min_epochs = 8;
  const CompiledScenario c = compile(s);
  EXPECT_GE(c.frames.size(), 8u);
  for (std::size_t i = 0; i < c.frames.size(); ++i) {
    EXPECT_NEAR(c.frames[i].t, static_cast<double>(i) * s.epoch_dt, 1e-12);
    ASSERT_EQ(c.frames[i].truth.size(), 1u);
    EXPECT_DOUBLE_EQ(c.frames[i].truth[0].x, 3.0);
    EXPECT_DOUBLE_EQ(c.frames[i].truth[0].y, 4.0);
  }
}

TEST(CompileTest, WatermarksAreMonotonicReaderClock) {
  const CompiledScenario c = compile(tiny_static_spec());
  std::uint64_t prev = 0;
  for (const Frame& f : c.frames) {
    EXPECT_GT(f.watermark_us, prev);
    prev = f.watermark_us;
  }
}

TEST(CompileTest, TruthFollowsTheTrajectory) {
  ScenarioSpec s = tiny_static_spec();
  s.name = "unit_walk";
  const Trajectory walk({{{1.0, 1.0}, 1.0}, {{5.0, 1.0}, 1.0}});
  s.targets[0].trajectory = walk;
  const CompiledScenario c = compile(s);
  // Horizon covers the 4 s walk at 0.4 s cadence.
  ASSERT_GE(c.frames.size(), 11u);
  for (const Frame& f : c.frames) {
    ASSERT_EQ(f.truth.size(), 1u);
    const rf::Vec2 want = walk.position_at(f.t);
    EXPECT_NEAR(f.truth[0].x, want.x, 1e-12);
    EXPECT_NEAR(f.truth[0].y, want.y, 1e-12);
    // The frame's sim target is placed at the same plan position.
    ASSERT_EQ(f.targets.size(), 1u);
    EXPECT_NEAR(f.targets[0].position.x, want.x, 1e-12);
  }
}

TEST(CompileTest, DeterministicForAFixedSeed) {
  const ScenarioSpec s = tiny_static_spec();
  const CompiledScenario a = compile(s);
  const CompiledScenario b = compile(s);
  ASSERT_EQ(a.frames.size(), b.frames.size());
  ASSERT_EQ(a.scene.num_tags(), b.scene.num_tags());
  for (std::size_t i = 0; i < a.scene.deployment().tags.size(); ++i) {
    const rf::Vec3& ta = a.scene.deployment().tags[i].position;
    const rf::Vec3& tb = b.scene.deployment().tags[i].position;
    EXPECT_DOUBLE_EQ(ta.x, tb.x);
    EXPECT_DOUBLE_EQ(ta.y, tb.y);
    EXPECT_DOUBLE_EQ(ta.z, tb.z);
  }
}

TEST(CompileTest, DifferentSeedsMoveTheTags) {
  ScenarioSpec s = tiny_static_spec();
  const CompiledScenario a = compile(s);
  s.seed = 8;
  const CompiledScenario b = compile(s);
  bool any_differ = false;
  for (std::size_t i = 0; i < a.scene.deployment().tags.size(); ++i) {
    if (a.scene.deployment().tags[i].position.x !=
        b.scene.deployment().tags[i].position.x) {
      any_differ = true;
      break;
    }
  }
  EXPECT_TRUE(any_differ);
}

TEST(CompileTest, ThrowsOnEmptyNameOrNoTargets) {
  ScenarioSpec unnamed = tiny_static_spec();
  unnamed.name.clear();
  EXPECT_THROW(compile(unnamed), std::invalid_argument);

  ScenarioSpec empty = tiny_static_spec();
  empty.targets.clear();
  EXPECT_THROW(compile(empty), std::invalid_argument);
}

// ----------------------------------------------------------------- registry

bool is_moving(const ScenarioSpec& s) {
  return std::any_of(s.targets.begin(), s.targets.end(),
                     [](const TargetSpec& t) {
                       return t.trajectory.duration() > 0.0;
                     });
}

bool wants_rss(const ScenarioSpec& s) {
  return s.rss.force || s.rss.auto_health_threshold > 0.0;
}

TEST(RegistryTest, CoversEveryRequiredFamily) {
  const auto& specs = all_scenarios();
  EXPECT_GE(specs.size(), 10u);

  std::size_t multi = 0;
  std::size_t moving = 0;
  std::size_t fist = 0;
  std::size_t rss = 0;
  for (const ScenarioSpec& s : specs) {
    if (s.targets.size() >= 2) ++multi;
    if (is_moving(s)) ++moving;
    if (std::any_of(s.targets.begin(), s.targets.end(),
                    [](const TargetSpec& t) {
                      return t.kind == TargetKind::kFist;
                    })) {
      ++fist;
    }
    if (wants_rss(s)) ++rss;
  }
  EXPECT_GE(multi, 2u);
  EXPECT_GE(moving, 2u);
  EXPECT_GE(fist, 1u);
  EXPECT_GE(rss, 1u);
  // The adversarial-geometry family is named, not structural.
  EXPECT_NE(find_scenario("laboratory_collinear"), nullptr);
  EXPECT_NE(find_scenario("library_wall_hugger"), nullptr);
}

TEST(RegistryTest, NamesAreUniqueAndCompilable) {
  std::set<std::string> names;
  for (const ScenarioSpec& s : all_scenarios()) {
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate name " << s.name;
    EXPECT_FALSE(s.description.empty()) << s.name;
    EXPECT_NO_THROW((void)compile(s)) << s.name;
  }
}

TEST(RegistryTest, EveryRssScenarioSurveysItsTags) {
  for (const ScenarioSpec& s : all_scenarios()) {
    if (wants_rss(s)) {
      EXPECT_TRUE(s.survey_tags) << s.name << " would be skipped";
    }
  }
}

TEST(RegistryTest, FindScenarioByName) {
  const ScenarioSpec* spec = find_scenario("library_static_human");
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->name, "library_static_human");
  EXPECT_EQ(find_scenario("no_such_scenario"), nullptr);
}

}  // namespace
}  // namespace dwatch::scenario
