// Regression suite for the cross-episode tracker leak: the compliance
// runner reuses ONE TrackBank across its whole case list, so reset()
// between episodes is load-bearing. Without it, Kalman state from the
// previous scenario leaks into the next one's first fixes.
#include <gtest/gtest.h>

#include <cstddef>

#include "core/kalman.hpp"
#include "rf/geometry.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "scenario/trajectory.hpp"

namespace dwatch::scenario {
namespace {

core::KalmanOptions unit_options() {
  core::KalmanOptions o;
  o.dt = 0.4;
  o.measurement_sigma = 0.25;
  o.gate_sigmas = 6.0;
  return o;
}

TEST(TrackBankTest, AdoptsMeasurementsAndTracks) {
  TrackBank bank;
  bank.configure(2, unit_options());
  bank.reset();
  const auto tracked = bank.step({{1.0, 1.0}, {5.0, 5.0}});
  ASSERT_EQ(tracked.size(), 2u);
  // First accepted measurement initializes each track exactly there.
  EXPECT_DOUBLE_EQ(tracked[0].x, 1.0);
  EXPECT_DOUBLE_EQ(tracked[1].x, 5.0);
}

TEST(TrackBankTest, ResetClearsEveryTrack) {
  TrackBank bank;
  bank.configure(1, unit_options());
  bank.reset();
  (void)bank.step({{2.0, 2.0}});
  ASSERT_TRUE(bank.track(0).initialized());
  bank.reset();
  EXPECT_FALSE(bank.track(0).initialized());
  EXPECT_EQ(bank.size(), 1u);
}

TEST(TrackBankTest, ConfigureWithSameShapeKeepsLiveState) {
  TrackBank bank;
  bank.configure(1, unit_options());
  bank.reset();
  (void)bank.step({{2.0, 3.0}});
  ASSERT_TRUE(bank.track(0).initialized());
  // Same shape + options: configure() is NOT the episode boundary.
  bank.configure(1, unit_options());
  EXPECT_TRUE(bank.track(0).initialized());
  EXPECT_DOUBLE_EQ(bank.track(0).position().x, 2.0);
  // Different tuning rebuilds the bank from scratch.
  core::KalmanOptions retuned = unit_options();
  retuned.measurement_sigma = 0.5;
  bank.configure(1, retuned);
  EXPECT_FALSE(bank.track(0).initialized());
}

TEST(TrackBankTest, StaleStateLeaksWithoutReset) {
  // Episode A parks a confident track at (1, 1). Episode B's target is
  // across the room at (8, 9). Without reset() the stale track eats the
  // first measurements through its innovation gate (or drags the
  // estimate), so the bank does NOT sit at (8, 9) after one epoch.
  TrackBank leaky;
  leaky.configure(1, unit_options());
  leaky.reset();
  for (int i = 0; i < 6; ++i) (void)leaky.step({{1.0, 1.0}});

  TrackBank fresh;
  fresh.configure(1, unit_options());
  fresh.reset();

  const auto leaked = leaky.step({{8.0, 9.0}});
  const auto clean = fresh.step({{8.0, 9.0}});
  ASSERT_EQ(clean.size(), 1u);
  EXPECT_DOUBLE_EQ(clean[0].x, 8.0);
  EXPECT_DOUBLE_EQ(clean[0].y, 9.0);
  ASSERT_EQ(leaked.size(), 1u);
  const double leak_error = rf::distance(leaked[0], {8.0, 9.0});
  EXPECT_GT(leak_error, 0.5) << "stale track should not snap to the new "
                                "episode's first measurement";
  // reset() is exactly the cure: afterwards the same bank matches the
  // fresh one bit for bit.
  leaky.reset();
  const auto cured = leaky.step({{8.0, 9.0}});
  ASSERT_EQ(cured.size(), 1u);
  EXPECT_DOUBLE_EQ(cured[0].x, clean[0].x);
  EXPECT_DOUBLE_EQ(cured[0].y, clean[0].y);
}

// The end-to-end regression: a runner that has already played one
// scenario must produce BIT-IDENTICAL results for the next scenario
// compared to a fresh runner. This is what bank_.reset() at the top of
// ScenarioRunner::run buys; remove it and this test fails on the first
// post-warmup epoch.
TEST(TrackerResetRegression, BackToBackEpisodesMatchFreshRuns) {
  ScenarioSpec first;
  first.name = "episode_a";
  first.room = RoomPreset::kTable;
  first.num_tags = 10;
  first.seed = 201;
  first.min_epochs = 5;
  TargetSpec bottle_a;
  bottle_a.kind = TargetKind::kBottle;
  bottle_a.trajectory = Trajectory::stationary({0.5, 0.5});
  first.targets = {bottle_a};
  first.budget.human_allowance = false;

  ScenarioSpec second = first;
  second.name = "episode_b";
  second.seed = 202;
  second.targets[0].trajectory = Trajectory::stationary({1.5, 1.4});

  // Shared runner: episode A then episode B on one TrackBank.
  ScenarioRunner shared;
  (void)shared.run(first);
  const ScenarioResult replay = shared.run(second);

  // Fresh runner: only episode B.
  ScenarioRunner isolated;
  const ScenarioResult clean = isolated.run(second);

  ASSERT_EQ(replay.records.size(), clean.records.size());
  ASSERT_FALSE(clean.records.empty());
  for (std::size_t i = 0; i < clean.records.size(); ++i) {
    EXPECT_EQ(replay.records[i].fix.result.estimate.position.x,
              clean.records[i].fix.result.estimate.position.x);
    EXPECT_EQ(replay.records[i].fix.result.estimate.position.y,
              clean.records[i].fix.result.estimate.position.y);
    ASSERT_EQ(replay.records[i].tracked.size(),
              clean.records[i].tracked.size());
    for (std::size_t t = 0; t < clean.records[i].tracked.size(); ++t) {
      EXPECT_EQ(replay.records[i].tracked[t].x,
                clean.records[i].tracked[t].x);
      EXPECT_EQ(replay.records[i].tracked[t].y,
                clean.records[i].tracked[t].y);
    }
  }
  EXPECT_EQ(replay.metrics.rmse, clean.metrics.rmse);
}

}  // namespace
}  // namespace dwatch::scenario
