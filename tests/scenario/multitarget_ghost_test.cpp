// Multi-target ghost-filter interaction (full simulation): two humans
// standing in one zone must not suppress EACH OTHER's true-bearing
// drops. The Section 4.3 filter rejects a drop only when it is
// uncorroborated at its array while the tag dropped at >= 2 arrays — a
// second real body corroborates its own bearing, so every
// pipeline.ghost_rejected event must point AWAY from both true
// bearings.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "obs/event_log.hpp"
#include "obs/obs.hpp"
#include "rfid/llrp.hpp"
#include "scenario/registry.hpp"
#include "scenario/spec.hpp"
#include "sim/scene.hpp"

namespace dwatch::scenario {
namespace {

/// Pull a numeric field out of one JSON event line.
double json_number(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return NAN;
  return std::stod(line.substr(at + needle.size()));
}

struct GhostRejection {
  std::size_t array = 0;
  double theta_rad = 0.0;
};

std::vector<GhostRejection> ghost_rejections(
    const std::vector<std::string>& lines) {
  std::vector<GhostRejection> out;
  for (const std::string& line : lines) {
    if (line.find("\"type\":\"pipeline.ghost_rejected\"") ==
        std::string::npos) {
      continue;
    }
    GhostRejection r;
    r.array = static_cast<std::size_t>(json_number(line, "array"));
    r.theta_rad = json_number(line, "theta_rad");
    out.push_back(r);
  }
  return out;
}

TEST(MultiTargetGhostTest, TwoHumansDoNotSuppressEachOthersTrueBearings) {
  const ScenarioSpec* spec = find_scenario("library_two_humans");
  ASSERT_NE(spec, nullptr);
  ASSERT_EQ(spec->targets.size(), 2u);
  const CompiledScenario compiled = compile(*spec);
  const sim::Scene& scene = compiled.scene;

  core::PipelineOptions popts;
  popts.localizer.grid_step = 0.05;
  core::DWatchPipeline pipeline(
      scene.deployment().arrays,
      core::SearchBounds{{0.0, 0.0},
                         {scene.deployment().env.width,
                          scene.deployment().env.depth}},
      popts);
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    pipeline.set_calibration(a, scene.reader(a).phase_offsets());
  }

  rf::Rng rng(spec->seed * 7919u + 17);
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    const rfid::RoAccessReport baseline = scene.capture_report(a, {}, rng);
    for (const rfid::TagObservation& obs : baseline.observations) {
      pipeline.add_baseline(a, obs);
    }
  }

  obs::set_enabled(true);
  obs::EventLog::global().clear();

  const Frame& frame = compiled.frames.back();
  pipeline.begin_epoch(frame.watermark_us);
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    const rfid::RoAccessReport report = scene.capture_report(
        a, frame.targets, rng, static_cast<std::uint32_t>(a + 100),
        frame.watermark_us);
    for (const rfid::TagObservation& obs : report.observations) {
      pipeline.observe(a, obs);
    }
  }

  // filtered_evidence() runs the Section 4.3 rejection and emits one
  // event per discarded drop.
  const auto filtered = pipeline.filtered_evidence();
  ASSERT_EQ(filtered.size(), scene.num_arrays());

  const double tol = 2.0 * popts.localizer.kernel_sigma;
  const auto& arrays = scene.deployment().arrays;

  // Both bodies must keep true-bearing evidence at >= 2 arrays each —
  // the filter may trim ghosts, never a corroborated real bearing.
  for (std::size_t target = 0; target < frame.truth.size(); ++target) {
    std::size_t arrays_with_true_bearing = 0;
    for (std::size_t a = 0; a < filtered.size(); ++a) {
      const double truth_theta =
          arrays[a].arrival_angle_planar(frame.truth[target]);
      for (const core::PathDrop& d : filtered[a].drops) {
        if (std::abs(d.theta - truth_theta) <= tol) {
          ++arrays_with_true_bearing;
          break;
        }
      }
    }
    EXPECT_GE(arrays_with_true_bearing, 2u)
        << "target " << target << " lost its true bearing to the filter";
  }

#if DWATCH_OBS_ENABLED
  // No rejection event may sit within the corroboration tolerance of
  // EITHER human's true bearing at its array: a second real target is
  // not a ghost.
  const auto rejections =
      ghost_rejections(obs::EventLog::global().snapshot());
  for (const GhostRejection& r : rejections) {
    ASSERT_LT(r.array, arrays.size());
    for (std::size_t target = 0; target < frame.truth.size(); ++target) {
      const double truth_theta =
          arrays[r.array].arrival_angle_planar(frame.truth[target]);
      EXPECT_GT(std::abs(r.theta_rad - truth_theta), tol)
          << "array " << r.array << " rejected target " << target
          << "'s true bearing as a ghost";
    }
  }
#endif

  // And the epoch still localizes: every reported hit is near SOME
  // true body (the repo's standing multi-target contract).
  const auto hits = pipeline.localize_multi(2, 0.25);
  ASSERT_GE(hits.size(), 1u);
  for (const core::LocationEstimate& hit : hits) {
    double best = 1e9;
    for (const rf::Vec2& t : frame.truth) {
      best = std::min(best, rf::distance(hit.position, t));
    }
    EXPECT_LT(best, 0.75);
  }

  obs::set_enabled(false);
}

}  // namespace
}  // namespace dwatch::scenario
