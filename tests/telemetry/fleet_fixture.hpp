// Shared mini-fleet fixture for the telemetry suites: a deterministic
// zone workload (same synthesis recipe as tests/serve/service_test.cpp,
// shrunk) so endpoint scrapes, SLO feeds and flight-recorder dumps all
// observe real serving traffic instead of hand-built observations.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "rf/constants.hpp"
#include "rf/noise.hpp"
#include "rf/snapshot.hpp"
#include "serve/service.hpp"

namespace dwatch::telemetry::testing {

inline std::vector<rf::UniformLinearArray> zone_arrays() {
  return {
      rf::UniformLinearArray({3.5, 0.15, 1.25}, {1, 0}, 8),
      rf::UniformLinearArray({0.15, 5.0, 1.25}, {0, 1}, 8),
  };
}

inline linalg::CMatrix synth(const rf::UniformLinearArray& array,
                             double angle_rad, double scale,
                             std::uint64_t seed) {
  rf::PropagationPath p;
  p.kind = rf::PathKind::kDirect;
  p.vertices = {{-10, 0, 1.25}, array.center()};
  p.length = 10.0;
  p.aoa = angle_rad;
  p.gain = {0.01, 0.0};
  const std::vector<rf::PropagationPath> paths{p};
  rf::SnapshotOptions opts;
  opts.num_snapshots = 16;
  opts.noise_sigma = rf::noise_sigma_for_snr(paths, 1.0, 35.0);
  rf::Rng rng(seed);
  const std::vector<double> path_scale{scale};
  return rf::synthesize_snapshots(array, paths, path_scale, opts, rng);
}

inline rfid::TagObservation wire_obs(const linalg::CMatrix& x,
                                     const rfid::Epc96& epc) {
  rfid::TagObservation obs;
  obs.epc = epc;
  for (std::size_t n = 0; n < x.cols(); ++n) {
    for (std::size_t m = 0; m < x.rows(); ++m) {
      const auto [pq, rq] = rfid::quantize_sample(x(m, n));
      obs.samples.push_back(rfid::PhaseSample{
          static_cast<std::uint16_t>(m + 1), static_cast<std::uint32_t>(n),
          pq, rq});
    }
  }
  return obs;
}

inline rf::Vec2 zone_target(std::size_t zone) {
  return {2.0 + 0.5 * static_cast<double>(zone),
          3.0 + 0.7 * static_cast<double>(zone)};
}

inline rfid::RoAccessReport epoch_report(std::size_t zone, std::size_t array,
                                         std::uint64_t epoch) {
  const auto arrays = zone_arrays();
  const double angle = arrays[array].arrival_angle_planar(zone_target(zone));
  const std::uint64_t seed = 1000 * zone + 10 * epoch + array + 1;
  rfid::RoAccessReport report;
  report.message_id = static_cast<std::uint32_t>(seed);
  report.observations.push_back(
      wire_obs(synth(arrays[array], angle, 0.2, seed),
               rfid::Epc96::for_tag_index(
                   static_cast<std::uint32_t>(10 * zone + array + 1))));
  return report;
}

inline void install_baselines(core::DWatchPipeline& pipe, std::size_t zone) {
  const auto arrays = zone_arrays();
  for (std::size_t a = 0; a < arrays.size(); ++a) {
    const double angle = arrays[a].arrival_angle_planar(zone_target(zone));
    pipe.add_baseline(a,
                      rfid::Epc96::for_tag_index(
                          static_cast<std::uint32_t>(10 * zone + a + 1)),
                      synth(arrays[a], angle, 1.0, 500 + 10 * zone + a));
  }
}

inline serve::ZoneConfig zone_config(std::size_t zone) {
  serve::ZoneConfig cfg;
  cfg.name = "zone" + std::to_string(zone);
  cfg.arrays = zone_arrays();
  cfg.bounds = {{0.0, 0.0}, {7.0, 10.0}};
  return cfg;
}

/// Build a `zones`-zone service with baselines installed. `num_workers`
/// = 1 keeps epoch processing fully serial (the determinism tests need
/// that: observer callbacks then arrive in one fixed global order).
/// Heap-allocated: the service owns mutexes (scheduler + admission)
/// and is therefore immovable.
inline std::unique_ptr<serve::LocalizationService> make_fleet(
    std::size_t zones, std::size_t num_workers,
    bool with_baselines = true) {
  serve::ServiceOptions opts;
  opts.num_workers = num_workers;
  auto service = std::make_unique<serve::LocalizationService>(opts);
  for (std::size_t z = 0; z < zones; ++z) {
    const std::size_t id = service->add_zone(zone_config(z));
    if (with_baselines) install_baselines(service->zone(id).pipeline(), z);
  }
  return service;
}

/// Drive `epochs` epochs of traffic into every zone via add_report.
inline void drive_epochs(serve::LocalizationService& service,
                         std::size_t zones, std::uint64_t epochs) {
  for (std::uint64_t e = 0; e < epochs; ++e) {
    for (std::size_t z = 0; z < zones; ++z) {
      service.begin_epoch(z);
      for (std::size_t a = 0; a < 2; ++a) {
        service.add_report(z, a, epoch_report(z, a, e));
      }
    }
    (void)service.run_pending();
  }
}

}  // namespace dwatch::telemetry::testing
