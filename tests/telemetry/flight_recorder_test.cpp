// Flight-recorder tests. The load-bearing property is DETERMINISM: two
// identical serial runs must produce byte-for-byte identical dump
// bundles, because a post-mortem that diffs cleanly against a
// known-good run is the whole point of recording deterministic facts
// (and why EpochObservation::fix_latency_us is explicitly excluded).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/json_check.hpp"
#include "tests/telemetry/fleet_fixture.hpp"

namespace dwatch::telemetry {
namespace {

serve::EpochObservation fake_observation(std::size_t zone,
                                         std::uint64_t seq) {
  serve::EpochObservation o;
  o.zone = zone;
  o.seq = seq;
  o.watermark_us = 10 * seq;
  o.fix_latency_us = 123456789;  // must never appear in a dump
  o.reports = 2;
  o.fix_valid = true;
  o.confidence.arrays_total = 2;
  o.confidence.arrays_with_evidence = 2;
  o.stats.epochs_processed = seq;
  o.drift_states = {1, 1};
  return o;
}

TEST(FlightRecorder, RejectsZeroRing) {
  EXPECT_THROW(FlightRecorder{0}, std::invalid_argument);
}

TEST(FlightRecorder, RingIsBoundedPerZone) {
  FlightRecorder recorder(4);
  for (std::uint64_t s = 1; s <= 10; ++s) {
    recorder.record(fake_observation(0, s));
  }
  recorder.record(fake_observation(1, 99));
  EXPECT_EQ(recorder.buffered(0), 4u);
  EXPECT_EQ(recorder.buffered(1), 1u);
  const std::string dump = recorder.dump("test");
  // Oldest epochs were overwritten: seq 7 survives, seq 6 does not.
  EXPECT_NE(dump.find("\"seq\":7"), std::string::npos);
  EXPECT_EQ(dump.find("\"seq\":6,"), std::string::npos);
  EXPECT_NE(dump.find("\"total_recorded\":10"), std::string::npos);
}

TEST(FlightRecorder, DumpExcludesWallClockLatency) {
  FlightRecorder recorder(8);
  recorder.record(fake_observation(0, 1));
  const std::string dump = recorder.dump("test");
  EXPECT_EQ(dump.find("123456789"), std::string::npos);
  EXPECT_EQ(dump.find("latency"), std::string::npos);
}

TEST(FlightRecorder, DumpIsStrictlyValidJson) {
  FlightRecorder recorder(8);
  recorder.record(fake_observation(0, 1));
  recorder.record_shed(0, 2);
  recorder.record_drift_transition(0, 1, 1, 2);
  recorder.record(fake_observation(3, 7));
  const std::string dump = recorder.dump("quote\"and\\backslash");
  std::string error;
  EXPECT_TRUE(json_valid(dump, &error)) << error << "\n" << dump;
  EXPECT_NE(dump.find("\"shed\":true"), std::string::npos);
  // Two snapshots (the fix and the shed) preceded the transition.
  EXPECT_NE(dump.find("\"drift_transitions\":[{\"at_epoch\":2"),
            std::string::npos);
  // Zones sorted by id.
  EXPECT_LT(dump.find("\"zone\":0"), dump.find("\"zone\":3"));
}

TEST(FlightRecorder, DumpSeqAdvancesButRingsAreNotDrained) {
  FlightRecorder recorder(8);
  recorder.record(fake_observation(0, 1));
  const std::string first = recorder.dump("t");
  const std::string second = recorder.dump("t");
  EXPECT_EQ(recorder.dumps(), 2u);
  EXPECT_NE(first.find("\"dump_seq\":1"), std::string::npos);
  EXPECT_NE(second.find("\"dump_seq\":2"), std::string::npos);
  EXPECT_EQ(recorder.buffered(0), 1u);  // a dump is a read, not a drain
}

/// Drive the shared fleet fixture serially and dump after every run.
std::string run_and_dump() {
  const auto fleet = testing::make_fleet(/*zones=*/2, /*num_workers=*/1);
  serve::LocalizationService& service = *fleet;
  FlightRecorder recorder(16);
  service.set_epoch_observer(
      [&](const serve::EpochObservation& o) { recorder.record(o); });
  service.set_shed_observer([&](std::size_t zone, std::uint64_t seq) {
    recorder.record_shed(zone, seq);
  });
  testing::drive_epochs(service, /*zones=*/2, /*epochs=*/4);
  return recorder.dump("determinism");
}

TEST(FlightRecorder, DumpIsByteIdenticalAcrossIdenticalRuns) {
  const std::string first = run_and_dump();
  const std::string second = run_and_dump();
  EXPECT_EQ(first, second);
  std::string error;
  EXPECT_TRUE(json_valid(first, &error)) << error;
  // The bundle really carries serving traffic, not empty rings.
  EXPECT_NE(first.find("\"fix_valid\":true"), std::string::npos);
  EXPECT_NE(first.find("\"epochs_processed\":"), std::string::npos);
}

}  // namespace
}  // namespace dwatch::telemetry
