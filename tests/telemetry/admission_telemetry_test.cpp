// The serve <-> telemetry feedback loop. TelemetryPlane is the
// BudgetProvider the admission controller reads, so burn observed HERE
// drives brownout tiers THERE — these tests close the loop end to end:
// SLO burn escalates the service tier, the tier shows up on /healthz
// and /slo, every escalation stores a flight-recorder bundle, and the
// bundles are byte-identical across identical runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "serve/admission.hpp"
#include "telemetry/http_client.hpp"
#include "telemetry/json_check.hpp"
#include "telemetry/plane.hpp"
#include "tests/telemetry/fleet_fixture.hpp"

namespace dwatch::telemetry {
namespace {

TEST(AdmissionTelemetry, ZoneBudgetIsTheWorstCaseAcrossObjectives) {
  TelemetryPlane plane;
  // Latency blown (budget 0.01 -> burn 100, latches), quality clean:
  // the rollup must carry the WORST objective, not an average.
  plane.slo().observe_fix(0, /*fix_latency_us=*/10'000'000,
                          /*quality_breach=*/false);
  const serve::BudgetSignal signal = plane.zone_budget(0);
  EXPECT_DOUBLE_EQ(signal.fast_burn,
                   plane.slo().fast_burn(0, SloObjective::kLatency));
  EXPECT_GT(signal.fast_burn, 2.0);
  EXPECT_DOUBLE_EQ(signal.slow_burn,
                   plane.slo().slow_burn(0, SloObjective::kLatency));
  EXPECT_DOUBLE_EQ(
      signal.budget_remaining,
      plane.slo().budget_remaining(0, SloObjective::kLatency));
  EXPECT_LT(signal.budget_remaining, 1.0);
  EXPECT_TRUE(signal.alert_latched);

  // A zone the tracker has never seen reports the neutral signal.
  const serve::BudgetSignal idle = plane.zone_budget(99);
  EXPECT_DOUBLE_EQ(idle.budget_remaining, 1.0);
  EXPECT_DOUBLE_EQ(idle.fast_burn, 0.0);
  EXPECT_FALSE(idle.alert_latched);
}

TEST(AdmissionTelemetry, SloBurnDrivesTheServiceTierThroughAttach) {
  obs::set_enabled(true);
  obs::MetricsRegistry::global().reset();
  obs::EventLog::global().clear();

  // No baselines -> every fix breaches quality -> burn (1/1)/0.05 = 20,
  // far above the whole {2,3,4,6} ladder.
  const auto fleet = testing::make_fleet(/*zones=*/1, /*num_workers=*/1,
                                         /*with_baselines=*/false);
  serve::LocalizationService& service = *fleet;
  TelemetryOptions options;
  options.dump_on_fast_burn = false;  // isolate the tier trigger
  TelemetryPlane plane(options);
  plane.attach(service);

  // run_pending evaluates BEFORE processing, so the first tick sees a
  // clean budget; each subsequent tick climbs exactly one tier.
  testing::drive_epochs(service, /*zones=*/1, /*epochs=*/3);
  EXPECT_EQ(service.admission().tier(), serve::BrownoutTier::kCoarsen);
  testing::drive_epochs(service, /*zones=*/1, /*epochs=*/2);
  EXPECT_EQ(service.admission().tier(), serve::BrownoutTier::kRejectBulk);

  // Every escalation stored a bundle, newest trigger names the move.
  EXPECT_EQ(plane.stored_dumps(), 4u);
  EXPECT_NE(plane.last_dump().find(
                "\"trigger\":\"admission.tier from=shed_bulk "
                "to=reject_bulk\""),
            std::string::npos);

  obs::set_enabled(false);
}

TEST(AdmissionTelemetry, EndpointsExposeTheBrownoutTier) {
  obs::set_enabled(true);
  obs::MetricsRegistry::global().reset();

  const auto fleet = testing::make_fleet(/*zones=*/1, /*num_workers=*/1,
                                         /*with_baselines=*/false);
  serve::LocalizationService& service = *fleet;
  TelemetryPlane plane;
  plane.attach(service);
  plane.start(0);
  testing::drive_epochs(service, /*zones=*/1, /*epochs=*/2);
  ASSERT_EQ(service.admission().tier(), serve::BrownoutTier::kWidenEpochs);

  std::string error;
  HttpResult r = http_fetch(plane.port(), "GET", "/healthz");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 503);  // quality latch
  EXPECT_TRUE(json_valid(r.body, &error)) << error;
  EXPECT_NE(r.body.find("\"brownout_tier\":1"), std::string::npos);
  EXPECT_NE(r.body.find("\"brownout_tier_name\":\"widen_epochs\""),
            std::string::npos);

  r = http_fetch(plane.port(), "GET", "/slo");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_TRUE(json_valid(r.body, &error)) << error;
  EXPECT_NE(r.body.find("\"brownout_tier\":1"), std::string::npos);

  // The obs gauge mirrors the controller.
  EXPECT_NE(http_fetch(plane.port(), "GET", "/metrics")
                .body.find("dwatch_admission_brownout_tier 1"),
            std::string::npos);

  plane.stop();
  obs::set_enabled(false);
}

/// One deterministic degraded run; returns the newest escalation dump.
std::string run_and_dump_escalations() {
  const auto fleet = testing::make_fleet(/*zones=*/1, /*num_workers=*/1,
                                         /*with_baselines=*/false);
  serve::LocalizationService& service = *fleet;
  TelemetryOptions options;
  options.dump_on_fast_burn = false;
  options.dump_on_drift = false;
  options.dump_on_shed = false;
  options.recorder_ring_epochs = 16;
  TelemetryPlane plane(options);
  plane.attach(service);
  testing::drive_epochs(service, /*zones=*/1, /*epochs=*/4);
  return plane.last_dump();
}

TEST(AdmissionTelemetry, TierEscalationDumpsAreByteIdentical) {
  const std::string first = run_and_dump_escalations();
  const std::string second = run_and_dump_escalations();
  EXPECT_EQ(first, second);
  std::string error;
  EXPECT_TRUE(json_valid(first, &error)) << error;
  // The bundle records the whole ladder so far, in order, with no
  // wall-clock anywhere near it.
  EXPECT_NE(first.find("\"tier_transitions\":[{\"ordinal\":0,\"from\":0,"
                       "\"to\":1},{\"ordinal\":1,\"from\":1,\"to\":2},"
                       "{\"ordinal\":2,\"from\":2,\"to\":3}"),
            std::string::npos);
  EXPECT_EQ(first.find("latency"), std::string::npos);
}

}  // namespace
}  // namespace dwatch::telemetry
