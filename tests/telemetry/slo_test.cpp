// SloTracker property tests. The tracker's clock is injectable by
// construction — every observe_fix/observe_shed IS one epoch tick — so
// these tests drive exact epoch sequences and assert exact burn rates,
// budget trajectories and latch behaviour with no wall time anywhere.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "telemetry/json_check.hpp"
#include "telemetry/slo.hpp"

namespace dwatch::telemetry {
namespace {

SloConfig tiny_config() {
  SloConfig cfg;
  cfg.fix_latency_budget_us = 1000;
  cfg.latency_error_budget = 0.1;
  cfg.shed_error_budget = 0.2;
  cfg.quality_error_budget = 0.5;
  cfg.fast_window_epochs = 4;
  cfg.slow_window_epochs = 8;
  cfg.budget_period_epochs = 20;
  cfg.fast_burn_alert = 2.0;
  return cfg;
}

TEST(SloConfig, Validation) {
  SloConfig cfg = tiny_config();
  cfg.fast_window_epochs = 0;
  EXPECT_THROW(SloTracker{cfg}, std::invalid_argument);
  cfg = tiny_config();
  cfg.slow_window_epochs = cfg.fast_window_epochs - 1;
  EXPECT_THROW(SloTracker{cfg}, std::invalid_argument);
  cfg = tiny_config();
  cfg.budget_period_epochs = 0;
  EXPECT_THROW(SloTracker{cfg}, std::invalid_argument);
  cfg = tiny_config();
  cfg.latency_error_budget = 0.0;
  EXPECT_THROW(SloTracker{cfg}, std::invalid_argument);
}

TEST(SloTracker, UnseenZoneIsClean) {
  SloTracker slo(tiny_config());
  EXPECT_DOUBLE_EQ(slo.fast_burn(7, SloObjective::kLatency), 0.0);
  EXPECT_DOUBLE_EQ(slo.budget_remaining(7, SloObjective::kShed), 1.0);
  EXPECT_EQ(slo.period_epochs(7, SloObjective::kQuality), 0u);
  EXPECT_FALSE(slo.alert_latched(7, SloObjective::kLatency));
  EXPECT_TRUE(slo.zones().empty());
}

TEST(SloTracker, BurnRateIsBadFractionOverErrorBudget) {
  SloTracker slo(tiny_config());
  // 3 good epochs then 1 over-budget: fast window (4) holds 1 bad.
  for (int i = 0; i < 3; ++i) slo.observe_fix(0, 10, false);
  slo.observe_fix(0, 5000, false);
  // latency: (1/4) / 0.1 = 2.5; quality untouched: 0.
  EXPECT_DOUBLE_EQ(slo.fast_burn(0, SloObjective::kLatency), 2.5);
  EXPECT_DOUBLE_EQ(slo.fast_burn(0, SloObjective::kQuality), 0.0);
  // shed: every fix is a good shed-epoch.
  EXPECT_DOUBLE_EQ(slo.fast_burn(0, SloObjective::kShed), 0.0);
  // slow window holds all 4 epochs so far: (1/4) / 0.1 = 2.5 as well.
  EXPECT_DOUBLE_EQ(slo.slow_burn(0, SloObjective::kLatency), 2.5);
  // 4 more good epochs push the bad one out of the fast window but it
  // stays in the slow one: fast 0, slow (1/8)/0.1 = 1.25.
  for (int i = 0; i < 4; ++i) slo.observe_fix(0, 10, false);
  EXPECT_DOUBLE_EQ(slo.fast_burn(0, SloObjective::kLatency), 0.0);
  EXPECT_DOUBLE_EQ(slo.slow_burn(0, SloObjective::kLatency), 1.25);
}

TEST(SloTracker, ShedEpochsBurnOnlyTheShedObjective) {
  SloTracker slo(tiny_config());
  slo.observe_shed(3);
  slo.observe_shed(3);
  // shed: (2/2) / 0.2 = 5; latency/quality saw no epochs at all.
  EXPECT_DOUBLE_EQ(slo.fast_burn(3, SloObjective::kShed), 5.0);
  EXPECT_EQ(slo.period_epochs(3, SloObjective::kLatency), 0u);
  EXPECT_EQ(slo.period_epochs(3, SloObjective::kShed), 2u);
}

TEST(SloTracker, BudgetMonotonicallyNonIncreasingWithinPeriod) {
  SloTracker slo(tiny_config());
  double prev = slo.budget_remaining(0, SloObjective::kLatency);
  EXPECT_DOUBLE_EQ(prev, 1.0);
  // A mixed good/bad sequence that stays inside one budget period.
  for (std::uint64_t e = 0; e < 20; ++e) {
    const bool bad = (e % 3) == 1;
    slo.observe_fix(0, bad ? 9999 : 1, false);
    const double now = slo.budget_remaining(0, SloObjective::kLatency);
    EXPECT_LE(now, prev);
    EXPECT_GE(now, 0.0);
    prev = now;
  }
  // 20 epochs, 7 bad, allowed = 0.1 * 20 = 2: overspent, clamped at 0.
  EXPECT_DOUBLE_EQ(prev, 0.0);
}

TEST(SloTracker, BudgetRefillsWhenThePeriodRollsOver) {
  SloTracker slo(tiny_config());
  // Burn the whole period (all 20 epochs bad).
  for (int e = 0; e < 20; ++e) slo.observe_fix(0, 9999, false);
  EXPECT_DOUBLE_EQ(slo.budget_remaining(0, SloObjective::kLatency), 0.0);
  EXPECT_EQ(slo.period_epochs(0, SloObjective::kLatency), 20u);
  // Epoch 21 starts a fresh period: one good epoch, full budget back.
  slo.observe_fix(0, 1, false);
  EXPECT_EQ(slo.period_epochs(0, SloObjective::kLatency), 1u);
  EXPECT_DOUBLE_EQ(slo.budget_remaining(0, SloObjective::kLatency), 1.0);
}

TEST(SloTracker, FastBurnAlertLatchesAndRecovers) {
  SloTracker slo(tiny_config());
  std::vector<std::pair<std::size_t, SloObjective>> alerts;
  slo.set_burn_alert_hook(
      [&](std::size_t zone, SloObjective objective, double burn) {
        EXPECT_GE(burn, 2.0);
        alerts.emplace_back(zone, objective);
      });
  // One bad epoch in an empty window: (1/1)/0.1 = 10 >= 2 -> alert.
  slo.observe_fix(5, 9999, false);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].first, 5u);
  EXPECT_EQ(alerts[0].second, SloObjective::kLatency);
  EXPECT_TRUE(slo.alert_latched(5, SloObjective::kLatency));
  // More bad epochs while latched: no re-fire.
  slo.observe_fix(5, 9999, false);
  EXPECT_EQ(alerts.size(), 1u);
  // Recovery: good epochs push the fast burn below 1.0 -> unlatch...
  for (int i = 0; i < 4; ++i) slo.observe_fix(5, 1, false);
  EXPECT_FALSE(slo.alert_latched(5, SloObjective::kLatency));
  // ...and the next breach fires again.
  slo.observe_fix(5, 9999, false);
  EXPECT_EQ(alerts.size(), 2u);
}

TEST(SloTracker, PeriodRolloverRefillsBudgetWithoutClearingTheLatch) {
  // Budget refill and alert recovery are DIFFERENT signals: the budget
  // answers "may we spend again", the latch answers "is the regression
  // over". A period boundary must refill the former without touching
  // the latter — otherwise every rollover masks an ongoing incident.
  SloTracker slo(tiny_config());
  for (int e = 0; e < 20; ++e) slo.observe_fix(0, 9999, false);
  ASSERT_TRUE(slo.alert_latched(0, SloObjective::kLatency));
  ASSERT_DOUBLE_EQ(slo.budget_remaining(0, SloObjective::kLatency), 0.0);

  // Epoch 21 is good and opens a fresh period: the budget snaps back
  // to 1.0 but the fast window still holds 3 bad epochs (burn 7.5), so
  // the latch MUST hold.
  slo.observe_fix(0, 1, false);
  EXPECT_DOUBLE_EQ(slo.budget_remaining(0, SloObjective::kLatency), 1.0);
  EXPECT_DOUBLE_EQ(slo.fast_burn(0, SloObjective::kLatency), 7.5);
  EXPECT_TRUE(slo.alert_latched(0, SloObjective::kLatency));

  // Two more good epochs: burn 2.5 is still >= 1.0 -> still latched.
  slo.observe_fix(0, 1, false);
  slo.observe_fix(0, 1, false);
  EXPECT_DOUBLE_EQ(slo.fast_burn(0, SloObjective::kLatency), 2.5);
  EXPECT_TRUE(slo.alert_latched(0, SloObjective::kLatency));

  // Only when the fast window itself drains below 1.0 does the latch
  // release — the burn recovery gates it, never the refill.
  slo.observe_fix(0, 1, false);
  EXPECT_DOUBLE_EQ(slo.fast_burn(0, SloObjective::kLatency), 0.0);
  EXPECT_FALSE(slo.alert_latched(0, SloObjective::kLatency));
}

TEST(SloTracker, QualityObjectiveTracksBreachFlag) {
  SloTracker slo(tiny_config());
  slo.observe_fix(0, 1, true);
  // (1/1) / 0.5 = 2.
  EXPECT_DOUBLE_EQ(slo.fast_burn(0, SloObjective::kQuality), 2.0);
  EXPECT_DOUBLE_EQ(slo.fast_burn(0, SloObjective::kLatency), 0.0);
}

TEST(SloTracker, ZonesAreIndependent) {
  SloTracker slo(tiny_config());
  slo.observe_fix(0, 9999, false);
  slo.observe_fix(1, 1, false);
  EXPECT_GT(slo.fast_burn(0, SloObjective::kLatency), 0.0);
  EXPECT_DOUBLE_EQ(slo.fast_burn(1, SloObjective::kLatency), 0.0);
  EXPECT_EQ(slo.zones(), (std::vector<std::size_t>{0, 1}));
}

TEST(SloTracker, JsonReportIsValidAndDeterministic) {
  SloTracker slo(tiny_config());
  slo.observe_fix(1, 9999, true);
  slo.observe_shed(0);
  const std::string json = slo.json_text();
  std::string error;
  EXPECT_TRUE(json_valid(json, &error)) << error << "\n" << json;
  // Same state, same bytes.
  EXPECT_EQ(json, slo.json_text());
  // Zones sorted ascending regardless of observation order.
  EXPECT_LT(json.find("\"zone\":0"), json.find("\"zone\":1"));
  EXPECT_NE(json.find("\"objective\":\"latency\""), std::string::npos);
  EXPECT_NE(json.find("\"budget_remaining\":"), std::string::npos);
}

}  // namespace
}  // namespace dwatch::telemetry
