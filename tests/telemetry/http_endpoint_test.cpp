// Telemetry endpoint tests: every scrape goes over a REAL loopback
// socket (http_fetch), not by calling handlers directly — the accept
// loop, request parsing, Content-Length framing and connection-close
// semantics are part of what is under test. The concurrency case runs
// under the `telemetry-stress-tsan` label, so the accept loop must be
// TSan-clean against live serving traffic.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "telemetry/http_client.hpp"
#include "telemetry/http_server.hpp"
#include "telemetry/json_check.hpp"
#include "telemetry/plane.hpp"
#include "tests/telemetry/fleet_fixture.hpp"

namespace dwatch::telemetry {
namespace {

TEST(JsonCheck, AcceptsValidRejectsInvalid) {
  EXPECT_TRUE(json_valid("{}"));
  EXPECT_TRUE(json_valid(" [1, -2.5e3, \"a\\u00ff\", true, null] "));
  EXPECT_TRUE(json_valid("{\"k\":{\"n\":[{},{}]}}"));
  std::string error;
  EXPECT_FALSE(json_valid("", &error));
  EXPECT_FALSE(json_valid("{", &error));
  EXPECT_FALSE(json_valid("{\"a\":1,}", &error));  // trailing comma
  EXPECT_FALSE(json_valid("[1] extra", &error));
  EXPECT_FALSE(json_valid("NaN", &error));
  EXPECT_FALSE(json_valid("{'a':1}", &error));  // single quotes
  EXPECT_FALSE(json_valid("01", &error));       // leading zero
  EXPECT_FALSE(json_valid("\"\x01\"", &error));  // raw control byte
  // Depth cap, not stack exhaustion.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(json_valid(deep, &error));
  EXPECT_NE(error.find("deep"), std::string::npos);

  EXPECT_TRUE(json_lines_valid("{\"a\":1}\n{\"b\":2}\n"));
  EXPECT_FALSE(json_lines_valid("{\"a\":1}\nnot json\n", &error));
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(HttpServer, QueryParam) {
  EXPECT_EQ(query_param("n=10&x=y", "n", "5"), "10");
  EXPECT_EQ(query_param("n=10&x=y", "x", ""), "y");
  EXPECT_EQ(query_param("n=10", "missing", "fallback"), "fallback");
  EXPECT_EQ(query_param("", "n", "7"), "7");
  EXPECT_EQ(query_param("n=", "n", "7"), "7");  // empty value -> fallback
}

TEST(HttpServer, RoutesFixedAfterStartAndRestartable) {
  HttpServer server;
  server.handle("GET", "/ping", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain; charset=utf-8", "pong\n"};
  });
  server.start(0);
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);
  EXPECT_THROW(
      server.handle("GET", "/late", [](const HttpRequest&) {
        return HttpResponse{};
      }),
      std::logic_error);
  EXPECT_THROW(server.start(0), std::logic_error);

  HttpResult r = http_fetch(server.port(), "GET", "/ping");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "pong\n");

  r = http_fetch(server.port(), "GET", "/nope");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 404);

  r = http_fetch(server.port(), "POST", "/ping");  // method is routed too
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 404);

  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent

  // A stopped server can be started again (new port is fine).
  server.start(0);
  r = http_fetch(server.port(), "GET", "/ping");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  server.stop();
}

TEST(HttpServer, EchoesPostBody) {
  HttpServer server;
  server.handle("POST", "/echo", [](const HttpRequest& request) {
    return HttpResponse{200, "text/plain; charset=utf-8", request.body};
  });
  server.start(0);
  const std::string payload(10000, 'x');
  const HttpResult r = http_fetch(server.port(), "POST", "/echo", payload);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, payload);
  server.stop();
}

/// Plane over a live 2-zone fleet: the golden scrape set.
TEST(TelemetryPlane, GoldenScrapes) {
  obs::set_enabled(true);
  obs::MetricsRegistry::global().reset();
  obs::EventLog::global().clear();

  const auto fleet = testing::make_fleet(/*zones=*/2, /*num_workers=*/1);
  serve::LocalizationService& service = *fleet;
  // A Debug-built fix can take arbitrarily long; this test asserts the
  // HEALTHY scrape shapes, so keep the latency objective out of play.
  TelemetryOptions options;
  options.slo.fix_latency_budget_us = 60'000'000;
  TelemetryPlane plane(options);
  plane.attach(service);
  plane.start(0);
  testing::drive_epochs(service, /*zones=*/2, /*epochs=*/3);

  // /metrics: Prometheus text with the serve + SLO series present.
  HttpResult r = http_fetch(plane.port(), "GET", "/metrics");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.content_type.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(r.body.find("# TYPE dwatch_serve_fix_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(r.body.find("dwatch_slo_budget_remaining{zone=\"0\","
                        "objective=\"latency\"}"),
            std::string::npos);
  EXPECT_NE(r.body.find("dwatch_slo_burn_rate{zone=\"1\","
                        "objective=\"shed\",window=\"fast\"}"),
            std::string::npos);

  // /metrics.json: strictly valid JSON.
  r = http_fetch(plane.port(), "GET", "/metrics.json");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  std::string error;
  EXPECT_TRUE(json_valid(r.body, &error)) << error;

  // /slo: valid JSON naming both zones.
  r = http_fetch(plane.port(), "GET", "/slo");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_TRUE(json_valid(r.body, &error)) << error;
  EXPECT_NE(r.body.find("\"zone\":0"), std::string::npos);
  EXPECT_NE(r.body.find("\"zone\":1"), std::string::npos);

  // /healthz: healthy fleet -> 200 ok.
  r = http_fetch(plane.port(), "GET", "/healthz");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_TRUE(json_valid(r.body, &error)) << error;
  EXPECT_NE(r.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(r.body.find("\"last_fix_valid\":true"), std::string::npos);

  // /events: JSON Lines, ?n= caps the tail.
  r = http_fetch(plane.port(), "GET", "/events?n=2");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_TRUE(json_lines_valid(r.body, &error)) << error;
  r = http_fetch(plane.port(), "GET", "/events?n=bogus");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 400);

  // /trace: valid JSON.
  r = http_fetch(plane.port(), "GET", "/trace");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_TRUE(json_valid(r.body, &error)) << error;

  // POST /dump returns the bundle; /dump/last replays the same bytes.
  r = http_fetch(plane.port(), "POST", "/dump?trigger=test");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_TRUE(json_valid(r.body, &error)) << error;
  EXPECT_NE(r.body.find("\"trigger\":\"test\""), std::string::npos);
  const HttpResult last = http_fetch(plane.port(), "GET", "/dump/last");
  ASSERT_TRUE(last.ok);
  EXPECT_EQ(last.status, 200);
  EXPECT_EQ(last.body, r.body);

  // The index names every endpoint.
  r = http_fetch(plane.port(), "GET", "/");
  ASSERT_TRUE(r.ok);
  EXPECT_NE(r.body.find("/healthz"), std::string::npos);

  plane.stop();
  obs::set_enabled(false);
}

TEST(TelemetryPlane, HealthzGoes503WhenSloAlertLatches) {
  obs::set_enabled(true);
  obs::MetricsRegistry::global().reset();

  // No baselines -> every fix is invalid -> quality objective burns at
  // (1/1)/0.05 = 20 >= 2 and latches from the first epoch on.
  const auto fleet = testing::make_fleet(/*zones=*/1, /*num_workers=*/1,
                                         /*with_baselines=*/false);
  serve::LocalizationService& service = *fleet;
  TelemetryPlane plane;
  plane.attach(service);
  plane.start(0);
  testing::drive_epochs(service, /*zones=*/1, /*epochs=*/2);

  EXPECT_TRUE(plane.slo().alert_latched(0, SloObjective::kQuality));
  const HttpResult r = http_fetch(plane.port(), "GET", "/healthz");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 503);
  EXPECT_NE(r.body.find("\"status\":\"degraded\""), std::string::npos);
  EXPECT_NE(r.body.find("\"slo_alert_latched\":true"), std::string::npos);

  // The fast-burn auto trigger stored a post-mortem bundle.
  EXPECT_GE(plane.stored_dumps(), 1u);
  std::string error;
  EXPECT_TRUE(json_valid(plane.last_dump(), &error)) << error;

  plane.stop();
  obs::set_enabled(false);
}

/// TSan target: concurrent scrapers against a live fleet. Zones run on
/// pool workers (observer called concurrently across zones) while four
/// client threads hammer every endpoint.
TEST(TelemetryConcurrency, ScrapesRaceFreeAgainstServingTraffic) {
  obs::set_enabled(true);
  obs::MetricsRegistry::global().reset();
  obs::EventLog::global().clear();

  const auto fleet = testing::make_fleet(/*zones=*/3, /*num_workers=*/4);
  serve::LocalizationService& service = *fleet;
  TelemetryPlane plane;
  plane.attach(service);
  plane.start(0);

  std::vector<std::thread> scrapers;
  for (int t = 0; t < 4; ++t) {
    scrapers.emplace_back([port = plane.port(), t] {
      const char* paths[] = {"/metrics", "/healthz", "/slo", "/events",
                             "/metrics.json"};
      for (int i = 0; i < 20; ++i) {
        const HttpResult r =
            http_fetch(port, "GET", paths[(t + i) % 5]);
        EXPECT_TRUE(r.ok);
        EXPECT_TRUE(r.status == 200 || r.status == 503);
      }
    });
  }
  testing::drive_epochs(service, /*zones=*/3, /*epochs=*/6);
  for (std::thread& s : scrapers) s.join();

  const HttpResult r = http_fetch(plane.port(), "GET", "/healthz");
  ASSERT_TRUE(r.ok);
  EXPECT_GE(plane.server().requests_served(), 81u);

  plane.stop();
  obs::set_enabled(false);
}

}  // namespace
}  // namespace dwatch::telemetry
