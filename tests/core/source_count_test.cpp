// Tests for model-order (source count) estimation.
#include "core/source_count.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dwatch::core {
namespace {

TEST(SourceCount, ValidatesInput) {
  SourceCountOptions opts;
  const std::vector<double> too_small{1.0};
  EXPECT_THROW((void)estimate_source_count(too_small, opts),
               std::invalid_argument);
  const std::vector<double> unsorted{1.0, 5.0, 0.1};
  EXPECT_THROW((void)estimate_source_count(unsorted, opts),
               std::invalid_argument);
}

TEST(SourceCount, ThresholdClearSeparation) {
  SourceCountOptions opts;  // threshold, factor 8, tail 2
  const std::vector<double> ev{100.0, 50.0, 0.11, 0.1, 0.1, 0.09};
  EXPECT_EQ(estimate_source_count(ev, opts), 2u);
}

TEST(SourceCount, ThresholdSingleSource) {
  SourceCountOptions opts;
  const std::vector<double> ev{42.0, 0.21, 0.2, 0.19};
  EXPECT_EQ(estimate_source_count(ev, opts), 1u);
}

TEST(SourceCount, AtLeastOneSourceReported) {
  SourceCountOptions opts;
  const std::vector<double> ev{1.0, 1.0, 1.0, 1.0};  // pure noise
  EXPECT_EQ(estimate_source_count(ev, opts), 1u);
}

TEST(SourceCount, MaxSourcesCapRespected) {
  SourceCountOptions opts;
  opts.max_sources = 2;
  const std::vector<double> ev{100.0, 90.0, 80.0, 0.1, 0.1, 0.1};
  EXPECT_EQ(estimate_source_count(ev, opts), 2u);
}

TEST(SourceCount, AlwaysLeavesOneNoiseVector) {
  SourceCountOptions opts;
  opts.threshold_factor = 0.0;  // everything is "signal"
  const std::vector<double> ev{5.0, 4.0, 3.0, 2.0};
  EXPECT_LE(estimate_source_count(ev, opts), 3u);
}

TEST(SourceCount, MdlFindsTwoSources) {
  SourceCountOptions opts;
  opts.method = SourceCountMethod::kMdl;
  opts.num_snapshots = 100;
  const std::vector<double> ev{50.0, 20.0, 1.05, 1.0, 1.0, 0.95};
  EXPECT_EQ(estimate_source_count(ev, opts), 2u);
}

TEST(SourceCount, AicFindsTwoSources) {
  SourceCountOptions opts;
  opts.method = SourceCountMethod::kAic;
  opts.num_snapshots = 100;
  const std::vector<double> ev{50.0, 20.0, 1.05, 1.0, 1.0, 0.95};
  EXPECT_EQ(estimate_source_count(ev, opts), 2u);
}

TEST(SourceCount, MdlPureNoiseReportsOne) {
  SourceCountOptions opts;
  opts.method = SourceCountMethod::kMdl;
  opts.num_snapshots = 200;
  const std::vector<double> ev{1.02, 1.01, 1.0, 0.99, 0.98, 0.97};
  EXPECT_EQ(estimate_source_count(ev, opts), 1u);
}

/// Parameterized: threshold method finds the planted source count for a
/// range of separations and counts.
class ThresholdSweepTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ThresholdSweepTest, FindsPlantedCount) {
  const auto [p, gap] = GetParam();
  SourceCountOptions opts;
  std::vector<double> ev;
  for (int i = 0; i < p; ++i) {
    ev.push_back(gap * (1.0 + 0.2 * i));
  }
  std::sort(ev.rbegin(), ev.rend());
  for (int i = 0; i < 8 - p; ++i) ev.push_back(1.0 - 0.01 * i);
  EXPECT_EQ(estimate_source_count(ev, opts), static_cast<std::size_t>(p));
}

INSTANTIATE_TEST_SUITE_P(
    Plants, ThresholdSweepTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5),
                       ::testing::Values(20.0, 100.0, 1000.0)));

}  // namespace
}  // namespace dwatch::core
