// Tests for the end-to-end pipeline plumbing (baselines, observation
// decoding, evidence accumulation, ghost filtering).
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "rf/noise.hpp"
#include "rf/snapshot.hpp"

namespace dwatch::core {
namespace {

std::vector<rf::UniformLinearArray> two_arrays() {
  return {
      rf::UniformLinearArray({3.5, 0.15, 1.25}, {1, 0}, 8),
      rf::UniformLinearArray({0.15, 5.0, 1.25}, {0, 1}, 8),
  };
}

SearchBounds bounds() { return {{0.0, 0.0}, {7.0, 10.0}}; }

/// Snapshots for one tag as seen by `array` with paths at given angles,
/// optional per-path scale, optional port offsets.
linalg::CMatrix synth(const rf::UniformLinearArray& array,
                      const std::vector<double>& angles_rad,
                      const std::vector<double>& amps,
                      const std::vector<double>& scale, std::uint64_t seed,
                      const std::vector<double>& offsets = {}) {
  std::vector<rf::PropagationPath> paths;
  for (std::size_t i = 0; i < angles_rad.size(); ++i) {
    rf::PropagationPath p;
    p.kind = rf::PathKind::kDirect;
    p.vertices = {{-10, 0, 1.25}, array.center()};
    p.length = 10.0;
    p.aoa = angles_rad[i];
    p.gain = {amps[i], 0.0};
    paths.push_back(p);
  }
  rf::SnapshotOptions opts;
  opts.num_snapshots = 16;
  opts.noise_sigma = rf::noise_sigma_for_snr(paths, 1.0, 35.0);
  opts.port_phase_offsets = offsets;
  rf::Rng rng(seed);
  return rf::synthesize_snapshots(array, paths, scale, opts, rng);
}

TEST(ObservationToSnapshots, RoundTrip) {
  rfid::TagObservation obs;
  obs.epc = rfid::Epc96::for_tag_index(1);
  for (std::uint32_t round = 0; round < 3; ++round) {
    for (std::uint16_t e = 1; e <= 4; ++e) {
      const auto [pq, rq] =
          rfid::quantize_sample(std::polar(0.01 * e, 0.3 * round));
      obs.samples.push_back(rfid::PhaseSample{e, round, pq, rq});
    }
  }
  const linalg::CMatrix x = observation_to_snapshots(obs, 4);
  EXPECT_EQ(x.rows(), 4u);
  EXPECT_EQ(x.cols(), 3u);
  EXPECT_NEAR(std::abs(x(1, 2)) / 0.02, 1.0, 1e-2);
}

TEST(ObservationToSnapshots, DropsIncompleteRounds) {
  rfid::TagObservation obs;
  obs.epc = rfid::Epc96::for_tag_index(1);
  for (std::uint16_t e = 1; e <= 4; ++e) {
    obs.samples.push_back(rfid::PhaseSample{e, 0, 100, -3000});
  }
  obs.samples.push_back(rfid::PhaseSample{1, 1, 100, -3000});  // partial
  const linalg::CMatrix x = observation_to_snapshots(obs, 4);
  EXPECT_EQ(x.cols(), 1u);
}

TEST(ObservationToSnapshots, Validation) {
  rfid::TagObservation obs;
  obs.samples.push_back(rfid::PhaseSample{9, 0, 0, 0});
  EXPECT_THROW((void)observation_to_snapshots(obs, 4),
               std::invalid_argument);
  rfid::TagObservation empty;
  EXPECT_THROW((void)observation_to_snapshots(empty, 4),
               std::invalid_argument);
  EXPECT_THROW((void)observation_to_snapshots(empty, 0),
               std::invalid_argument);
}

TEST(Pipeline, BaselineBookkeeping) {
  DWatchPipeline pipe(two_arrays(), bounds());
  const auto arrays = two_arrays();
  const auto epc = rfid::Epc96::for_tag_index(7);
  EXPECT_EQ(pipe.baseline_spectrum(0, epc), nullptr);
  pipe.add_baseline(0, epc,
                    synth(arrays[0], {rf::deg2rad(60)}, {0.01}, {}, 1));
  EXPECT_NE(pipe.baseline_spectrum(0, epc), nullptr);
  EXPECT_EQ(pipe.stats().baselines, 1u);
  // Re-adding overwrites, does not double count.
  pipe.add_baseline(0, epc,
                    synth(arrays[0], {rf::deg2rad(60)}, {0.01}, {}, 2));
  EXPECT_EQ(pipe.stats().baselines, 1u);
  EXPECT_THROW((void)pipe.baseline_spectrum(5, epc), std::out_of_range);
}

TEST(Pipeline, ObserveWithoutBaselineSkipped) {
  DWatchPipeline pipe(two_arrays(), bounds());
  const auto arrays = two_arrays();
  const auto n = pipe.observe(
      0, rfid::Epc96::for_tag_index(9),
      synth(arrays[0], {rf::deg2rad(60)}, {0.01}, {}, 3));
  EXPECT_EQ(n, 0u);
  EXPECT_EQ(pipe.stats().observations_skipped, 1u);
}

TEST(Pipeline, DetectsBlockedPathAndAccumulatesEvidence) {
  DWatchPipeline pipe(two_arrays(), bounds());
  const auto arrays = two_arrays();
  const auto epc = rfid::Epc96::for_tag_index(1);
  const std::vector<double> angles{rf::deg2rad(60), rf::deg2rad(120)};
  const std::vector<double> amps{0.02, 0.015};
  pipe.add_baseline(0, epc, synth(arrays[0], angles, amps, {}, 5));
  pipe.begin_epoch();
  const std::vector<double> blocked{0.2, 1.0};
  const auto drops =
      pipe.observe(0, epc, synth(arrays[0], angles, amps, blocked, 6));
  EXPECT_EQ(drops, 1u);
  ASSERT_EQ(pipe.evidence()[0].drops.size(), 1u);
  EXPECT_NEAR(rf::rad2deg(pipe.evidence()[0].drops[0].theta), 60.0, 2.0);
  EXPECT_EQ(pipe.evidence()[0].drops[0].source_id, 1u);
  pipe.begin_epoch();
  EXPECT_TRUE(pipe.evidence()[0].drops.empty());
}

TEST(Pipeline, CalibrationAppliedBeforeSpectra) {
  DWatchPipeline pipe(two_arrays(), bounds());
  const auto arrays = two_arrays();
  const auto epc = rfid::Epc96::for_tag_index(2);
  const std::vector<double> offsets{0.0, 0.9, -1.2, 2.1, 0.4,
                                    -0.8, 1.5, -2.0};
  pipe.set_calibration(0, offsets);
  const std::vector<double> angles{rf::deg2rad(70)};
  const std::vector<double> amps{0.02};
  // Baseline and online both corrupted by the same offsets; with the
  // calibration installed the detected drop angle must be the TRUE one.
  pipe.add_baseline(0, epc, synth(arrays[0], angles, amps, {}, 7, offsets));
  pipe.begin_epoch();
  (void)pipe.observe(0, epc,
                     synth(arrays[0], angles, amps, {0.2}, 8, offsets));
  ASSERT_EQ(pipe.evidence()[0].drops.size(), 1u);
  EXPECT_NEAR(rf::rad2deg(pipe.evidence()[0].drops[0].theta), 70.0, 2.0);
}

TEST(Pipeline, SetCalibrationValidation) {
  DWatchPipeline pipe(two_arrays(), bounds());
  EXPECT_THROW(pipe.set_calibration(0, std::vector<double>(3, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(pipe.set_calibration(7, std::vector<double>(8, 0.0)),
               std::out_of_range);
}

TEST(Pipeline, FilteredEvidenceDropsMultiArraySingleTagGhost) {
  DWatchPipeline pipe(two_arrays(), bounds());
  const auto arrays = two_arrays();
  const auto ghost_tag = rfid::Epc96::for_tag_index(5);
  const auto honest_a = rfid::Epc96::for_tag_index(6);
  const auto honest_b = rfid::Epc96::for_tag_index(7);

  // Ghost pattern: tag 5 drops at BOTH arrays, uncorroborated angles.
  const std::vector<double> g0{rf::deg2rad(30)};
  const std::vector<double> g1{rf::deg2rad(150)};
  const std::vector<double> amp{0.01};
  pipe.add_baseline(0, ghost_tag, synth(arrays[0], g0, amp, {}, 11));
  pipe.add_baseline(1, ghost_tag, synth(arrays[1], g1, amp, {}, 12));
  // Honest pattern: two tags drop at the SAME angle at array 0.
  const std::vector<double> h{rf::deg2rad(75)};
  pipe.add_baseline(0, honest_a, synth(arrays[0], h, amp, {}, 13));
  pipe.add_baseline(0, honest_b, synth(arrays[0], h, amp, {}, 14));

  pipe.begin_epoch();
  (void)pipe.observe(0, ghost_tag,
                     synth(arrays[0], g0, amp, {0.2}, 15));
  (void)pipe.observe(1, ghost_tag,
                     synth(arrays[1], g1, amp, {0.2}, 16));
  (void)pipe.observe(0, honest_a, synth(arrays[0], h, amp, {0.2}, 17));
  (void)pipe.observe(0, honest_b, synth(arrays[0], h, amp, {0.2}, 18));

  ASSERT_EQ(pipe.evidence()[0].drops.size(), 3u);
  ASSERT_EQ(pipe.evidence()[1].drops.size(), 1u);
  const auto filtered = pipe.filtered_evidence();
  // Ghost drops (tag 5) are gone; the corroborated honest pair stays.
  EXPECT_EQ(filtered[0].drops.size(), 2u);
  EXPECT_TRUE(filtered[1].drops.empty());
  for (const auto& d : filtered[0].drops) {
    EXPECT_NE(d.source_id, 5u);
  }
}

TEST(Pipeline, GhostFilterIgnoresExcludedArraysKOfN) {
  // Regression: filtered_evidence() counted tags seen on EXCLUDED
  // arrays in its per-tag array tally. A dead array's garbage drops
  // then flipped `multi_array` true for a tag whose only other drop —
  // at the one surviving healthy array, necessarily uncorroborated —
  // got rejected as a ghost, turning a valid K-of-N fix invalid.
  DWatchPipeline pipe(two_arrays(), bounds());
  const auto arrays = two_arrays();
  const auto tag = rfid::Epc96::for_tag_index(4);
  const std::vector<double> a0{rf::deg2rad(40)};
  const std::vector<double> a1{rf::deg2rad(110)};
  const std::vector<double> amp{0.01};
  pipe.add_baseline(0, tag, synth(arrays[0], a0, amp, {}, 31));
  pipe.add_baseline(1, tag, synth(arrays[1], a1, amp, {}, 32));

  pipe.set_array_health(0, false);  // reader 0 dead; reports still arrive
  pipe.begin_epoch();
  (void)pipe.observe(0, tag, synth(arrays[0], a0, amp, {0.2}, 33));
  (void)pipe.observe(1, tag, synth(arrays[1], a1, amp, {0.2}, 34));
  ASSERT_EQ(pipe.evidence()[1].drops.size(), 1u);

  // The healthy array's only drop must survive: the tag is multi-array
  // only if the excluded array is (wrongly) allowed to vote.
  const auto filtered = pipe.filtered_evidence();
  ASSERT_EQ(filtered[1].drops.size(), 1u);
  EXPECT_EQ(filtered[1].drops[0].source_id, 4u);

  // And the fix flips with it: 1 usable array, effective min_arrays 1
  // (K-of-N), so the epoch localizes iff that drop survived the filter.
  EXPECT_TRUE(pipe.localize().valid);
}

TEST(Pipeline, GhostFilterStillRejectsWhenBothArraysHealthy) {
  // Companion to the K-of-N regression: the SAME traffic with both
  // arrays healthy is the paper's Section 4.3 ghost pattern (one tag,
  // two arrays, no corroboration) and must still be rejected.
  DWatchPipeline pipe(two_arrays(), bounds());
  const auto arrays = two_arrays();
  const auto tag = rfid::Epc96::for_tag_index(4);
  const std::vector<double> a0{rf::deg2rad(40)};
  const std::vector<double> a1{rf::deg2rad(110)};
  const std::vector<double> amp{0.01};
  pipe.add_baseline(0, tag, synth(arrays[0], a0, amp, {}, 31));
  pipe.add_baseline(1, tag, synth(arrays[1], a1, amp, {}, 32));

  pipe.begin_epoch();
  (void)pipe.observe(0, tag, synth(arrays[0], a0, amp, {0.2}, 33));
  (void)pipe.observe(1, tag, synth(arrays[1], a1, amp, {0.2}, 34));

  const auto filtered = pipe.filtered_evidence();
  EXPECT_TRUE(filtered[0].drops.empty());
  EXPECT_TRUE(filtered[1].drops.empty());
  EXPECT_FALSE(pipe.localize().valid);
}

TEST(Pipeline, WireObservationPathWorks) {
  DWatchPipeline pipe(two_arrays(), bounds());
  const auto arrays = two_arrays();
  const auto epc = rfid::Epc96::for_tag_index(3);
  const std::vector<double> angles{rf::deg2rad(65)};
  const std::vector<double> amps{0.02};
  const linalg::CMatrix base = synth(arrays[0], angles, amps, {}, 21);
  // Wrap into a wire observation.
  rfid::TagObservation obs;
  obs.epc = epc;
  for (std::size_t n = 0; n < base.cols(); ++n) {
    for (std::size_t m = 0; m < base.rows(); ++m) {
      const auto [pq, rq] = rfid::quantize_sample(base(m, n));
      obs.samples.push_back(rfid::PhaseSample{
          static_cast<std::uint16_t>(m + 1), static_cast<std::uint32_t>(n),
          pq, rq});
    }
  }
  pipe.add_baseline(0, obs);
  EXPECT_EQ(pipe.stats().baselines, 1u);
  pipe.begin_epoch();
  const linalg::CMatrix online =
      synth(arrays[0], angles, amps, {0.2}, 22);
  rfid::TagObservation online_obs;
  online_obs.epc = epc;
  for (std::size_t n = 0; n < online.cols(); ++n) {
    for (std::size_t m = 0; m < online.rows(); ++m) {
      const auto [pq, rq] = rfid::quantize_sample(online(m, n));
      online_obs.samples.push_back(rfid::PhaseSample{
          static_cast<std::uint16_t>(m + 1), static_cast<std::uint32_t>(n),
          pq, rq});
    }
  }
  EXPECT_EQ(pipe.observe(0, online_obs), 1u);
}

TEST(Pipeline, TwoElementArraysRunEndToEnd) {
  // The smallest legal deployment: M = 2 per array. default_subarray(2)
  // returns L == M, the MUSIC path skips smoothing, and the whole
  // observe/localize recipe runs without tripping the smoother's
  // L >= 2 contract (the documented tiny-array edge).
  const std::vector<rf::UniformLinearArray> arrays{
      rf::UniformLinearArray({3.5, 0.15, 1.25}, {1, 0}, 2),
      rf::UniformLinearArray({0.15, 5.0, 1.25}, {0, 1}, 2),
  };
  DWatchPipeline pipe(arrays, bounds(), {});
  const auto epc = rfid::Epc96::for_tag_index(1);
  pipe.add_baseline(0, epc, synth(arrays[0], {1.0}, {1.0}, {}, 31));
  pipe.add_baseline(1, epc, synth(arrays[1], {1.6}, {1.0}, {}, 32));
  pipe.begin_epoch();
  (void)pipe.observe(0, epc, synth(arrays[0], {1.0}, {1.0}, {0.2}, 33));
  (void)pipe.observe(1, epc, synth(arrays[1], {1.6}, {1.0}, {0.2}, 34));
  EXPECT_EQ(pipe.stats().observations, 2u);
  (void)pipe.localize_best_effort();  // must not throw
}

}  // namespace
}  // namespace dwatch::core
