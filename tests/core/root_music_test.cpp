// Tests for polynomial rooting and the root-MUSIC estimator.
#include "core/root_music.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/music.hpp"
#include "core/polynomial.hpp"
#include "rf/array.hpp"
#include "rf/noise.hpp"
#include "rf/snapshot.hpp"

namespace dwatch::core {
namespace {

using linalg::Complex;

TEST(Polynomial, EvaluateHorner) {
  // p(z) = 1 + 2z + 3z^2 at z = 2 -> 1 + 4 + 12 = 17.
  const std::vector<Complex> p{Complex{1}, Complex{2}, Complex{3}};
  EXPECT_NEAR(std::abs(evaluate_polynomial(p, Complex{2}) - Complex{17.0}),
              0.0, 1e-12);
}

TEST(Polynomial, QuadraticRoots) {
  // z^2 - 3z + 2 = (z-1)(z-2).
  const std::vector<Complex> p{Complex{2}, Complex{-3}, Complex{1}};
  auto roots = find_roots(p);
  ASSERT_EQ(roots.size(), 2u);
  std::sort(roots.begin(), roots.end(),
            [](Complex a, Complex b) { return a.real() < b.real(); });
  EXPECT_NEAR(std::abs(roots[0] - Complex{1.0}), 0.0, 1e-8);
  EXPECT_NEAR(std::abs(roots[1] - Complex{2.0}), 0.0, 1e-8);
}

TEST(Polynomial, ComplexRootsOnUnitCircle) {
  // z^4 - 1: roots at 1, -1, i, -i.
  const std::vector<Complex> p{Complex{-1}, {}, {}, {}, Complex{1}};
  const auto roots = find_roots(p);
  ASSERT_EQ(roots.size(), 4u);
  for (const Complex z : roots) {
    EXPECT_NEAR(std::abs(z), 1.0, 1e-8);
    EXPECT_NEAR(std::abs(evaluate_polynomial(p, z)), 0.0, 1e-7);
  }
}

TEST(Polynomial, ConstantThrows) {
  EXPECT_THROW((void)find_roots({Complex{5}}), std::invalid_argument);
  EXPECT_THROW((void)find_roots({Complex{5}, Complex{0}}),
               std::invalid_argument);
}

TEST(Polynomial, LeadingZerosTrimmed) {
  // 2 - 3z + z^2 with two zero leading coefficients appended.
  const std::vector<Complex> p{Complex{2}, Complex{-3}, Complex{1}, {}, {}};
  EXPECT_EQ(find_roots(p).size(), 2u);
}

// --- root-MUSIC -----------------------------------------------------------

rf::PropagationPath plane_path(double theta_deg, double amp) {
  rf::PropagationPath p;
  p.kind = rf::PathKind::kDirect;
  p.vertices = {{-10, 0, 1}, {0, 0, 1}};
  p.length = 10.0;
  p.aoa = rf::deg2rad(theta_deg);
  p.gain = {amp, 0.0};
  return p;
}

linalg::CMatrix snapshots_for(const std::vector<rf::PropagationPath>& paths,
                              std::uint64_t seed = 3) {
  const rf::UniformLinearArray ula({0, 0, 1}, {1, 0}, 8);
  rf::SnapshotOptions opts;
  opts.num_snapshots = 48;
  opts.noise_sigma = rf::noise_sigma_for_snr(paths, 1.0, 35.0);
  rf::Rng rng(seed);
  return rf::synthesize_snapshots(ula, paths, {}, opts, rng);
}

RootMusicEstimator default_estimator() {
  return RootMusicEstimator(rf::kDefaultElementSpacing,
                            rf::kDefaultWavelength);
}

TEST(RootMusic, ValidatesInput) {
  EXPECT_THROW(RootMusicEstimator(0.0, 1.0), std::invalid_argument);
  const RootMusicEstimator est = default_estimator();
  EXPECT_THROW(
      (void)est.estimate_from_correlation(linalg::CMatrix(2, 3), 8),
      std::invalid_argument);
}

TEST(RootMusic, SingleSource) {
  const auto x = snapshots_for({plane_path(63.0, 1.0)});
  const RootMusicResult res = default_estimator().estimate(x);
  ASSERT_GE(res.angles.size(), 1u);
  EXPECT_NEAR(rf::rad2deg(res.angles[0]), 63.0, 1.0);
  EXPECT_LT(res.circle_distances[0], 0.05);
}

TEST(RootMusic, CoherentPairViaSmoothing) {
  const auto x =
      snapshots_for({plane_path(55.0, 1.0), plane_path(120.0, 0.8)});
  const RootMusicResult res = default_estimator().estimate(x);
  ASSERT_GE(res.angles.size(), 2u);
  std::vector<double> deg;
  for (std::size_t i = 0; i < 2; ++i) {
    deg.push_back(rf::rad2deg(res.angles[i]));
  }
  std::sort(deg.begin(), deg.end());
  EXPECT_NEAR(deg[0], 55.0, 2.5);
  EXPECT_NEAR(deg[1], 120.0, 2.5);
}

/// Cross-check: root-MUSIC agrees with grid MUSIC within the grid step.
class RootVsGridTest : public ::testing::TestWithParam<double> {};

TEST_P(RootVsGridTest, AgreesWithGridMusic) {
  const double truth = GetParam();
  const auto x = snapshots_for({plane_path(truth, 1.0)}, 17);
  const RootMusicResult root = default_estimator().estimate(x);
  ASSERT_FALSE(root.angles.empty());
  MusicEstimator grid(rf::kDefaultElementSpacing, rf::kDefaultWavelength);
  const auto peaks = find_peaks(grid.estimate(x).spectrum);
  ASSERT_FALSE(peaks.empty());
  EXPECT_NEAR(rf::rad2deg(root.angles[0]), rf::rad2deg(peaks[0].theta),
              1.0);
}

INSTANTIATE_TEST_SUITE_P(Angles, RootVsGridTest,
                         ::testing::Values(25.0, 50.0, 80.0, 90.0, 110.0,
                                           140.0, 160.0));

TEST(RootMusic, NoSmoothingOption) {
  RootMusicOptions opts;
  opts.subarray = 8;
  const RootMusicEstimator est(rf::kDefaultElementSpacing,
                               rf::kDefaultWavelength, opts);
  const auto x = snapshots_for({plane_path(75.0, 1.0)});
  const RootMusicResult res = est.estimate(x);
  ASSERT_GE(res.angles.size(), 1u);
  EXPECT_NEAR(rf::rad2deg(res.angles[0]), 75.0, 1.0);
}

}  // namespace
}  // namespace dwatch::core
