// Tests for correlation estimation and spatial smoothing.
#include "core/covariance.hpp"

#include <gtest/gtest.h>

#include "linalg/hermitian_eig.hpp"
#include "rf/array.hpp"
#include "rf/noise.hpp"
#include "rf/snapshot.hpp"

namespace dwatch::core {
namespace {

rf::PropagationPath plane_path(double theta_deg, double amp) {
  rf::PropagationPath p;
  p.kind = rf::PathKind::kDirect;
  p.vertices = {{-10, 0, 1}, {0, 0, 1}};
  p.length = 10.0;
  p.aoa = rf::deg2rad(theta_deg);
  p.gain = {amp, 0.0};
  return p;
}

linalg::CMatrix coherent_two_source_corr() {
  const rf::UniformLinearArray ula({0, 0, 1}, {1, 0}, 8);
  const std::vector<rf::PropagationPath> paths{plane_path(55, 1.0),
                                               plane_path(120, 0.8)};
  rf::SnapshotOptions opts;
  opts.num_snapshots = 64;
  opts.noise_sigma = 1e-4;
  rf::Rng rng(3);
  return sample_correlation(
      rf::synthesize_snapshots(ula, paths, {}, opts, rng));
}

std::size_t numeric_rank(const linalg::CMatrix& r, double rel_tol = 1e-3) {
  const auto eig = linalg::hermitian_eig(r);
  std::size_t rank = 0;
  for (const double v : eig.eigenvalues) {
    if (v > rel_tol * eig.eigenvalues.front()) ++rank;
  }
  return rank;
}

TEST(SampleCorrelation, HermitianAndPsd) {
  const linalg::CMatrix r = coherent_two_source_corr();
  EXPECT_TRUE(r.is_hermitian(1e-10));
  const auto eig = linalg::hermitian_eig(r);
  for (const double v : eig.eigenvalues) EXPECT_GE(v, -1e-12);
}

TEST(SampleCorrelation, EmptyThrows) {
  EXPECT_THROW((void)sample_correlation(linalg::CMatrix{}),
               std::invalid_argument);
}

TEST(SampleCorrelation, SingleSnapshotIsOuterProduct) {
  linalg::CMatrix x(3, 1);
  x(0, 0) = {1.0, 0.0};
  x(1, 0) = {0.0, 1.0};
  x(2, 0) = {1.0, 1.0};
  const linalg::CMatrix r = sample_correlation(x);
  EXPECT_NEAR(std::abs(r(0, 0) - linalg::Complex{1.0}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(r(2, 2) - linalg::Complex{2.0}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(r(0, 1) - linalg::Complex{0.0, -1.0}), 0.0, 1e-12);
}

TEST(CoherentSources, FullCorrelationIsRankOne) {
  // The motivating failure: coherent multipath collapses to rank 1.
  EXPECT_EQ(numeric_rank(coherent_two_source_corr()), 1u);
}

TEST(ForwardSmooth, RestoresRankTwo) {
  const linalg::CMatrix r = coherent_two_source_corr();
  const linalg::CMatrix smoothed = forward_smooth(r, 6);
  EXPECT_EQ(smoothed.rows(), 6u);
  EXPECT_GE(numeric_rank(smoothed), 2u);
}

TEST(ForwardBackwardSmooth, RestoresRankTwo) {
  const linalg::CMatrix r = coherent_two_source_corr();
  const linalg::CMatrix smoothed = forward_backward_smooth(r, 6);
  EXPECT_TRUE(smoothed.is_hermitian(1e-10));
  EXPECT_GE(numeric_rank(smoothed), 2u);
}

TEST(Smoothing, Validation) {
  const linalg::CMatrix r = coherent_two_source_corr();
  EXPECT_THROW((void)forward_smooth(r, 1), std::invalid_argument);
  EXPECT_THROW((void)forward_smooth(r, 9), std::invalid_argument);
  EXPECT_THROW((void)forward_smooth(linalg::CMatrix(2, 3), 2),
               std::invalid_argument);
}

TEST(Smoothing, FullSizeSubarrayIsIdentityOperation) {
  const linalg::CMatrix r = coherent_two_source_corr();
  const linalg::CMatrix smoothed = forward_smooth(r, 8);
  EXPECT_NEAR(smoothed.max_abs_diff(r), 0.0, 1e-12);
}

TEST(Smoothing, PreservesTraceScale) {
  const linalg::CMatrix r = coherent_two_source_corr();
  const linalg::CMatrix s6 = forward_backward_smooth(r, 6);
  // Average per-element power is preserved by smoothing (approximately,
  // since subarrays see the same stationary field).
  const double per_elem_r = r.trace().real() / 8.0;
  const double per_elem_s = s6.trace().real() / 6.0;
  EXPECT_NEAR(per_elem_s / per_elem_r, 1.0, 0.2);
}

TEST(DefaultSubarray, SensibleForCommonSizes) {
  EXPECT_EQ(default_subarray(8), 6u);
  EXPECT_EQ(default_subarray(6), 4u);
  EXPECT_EQ(default_subarray(4), 3u);
  EXPECT_EQ(default_subarray(2), 2u);
}

TEST(DefaultSubarray, TinyArrayEdgeContract) {
  // The documented M <= 3 edges: M == 3 still yields a smoothable L;
  // M == 2 yields L == M (the "skip smoothing" sentinel the MUSIC path
  // honours); M == 1 yields 1, which every smoother call REJECTS.
  EXPECT_EQ(default_subarray(3), 2u);
  EXPECT_EQ(default_subarray(2), 2u);
  EXPECT_EQ(default_subarray(1), 1u);
}

TEST(Smoothing, DefaultSubarrayEndToEndForTinyArrays) {
  rf::SnapshotOptions opts;
  opts.num_snapshots = 32;
  opts.noise_sigma = 1e-3;

  const std::vector<rf::PropagationPath> paths{plane_path(55, 1.0)};

  // M == 3: the default L = 2 goes through forward_backward_smooth.
  const rf::UniformLinearArray ula3({0, 0, 1}, {1, 0}, 3);
  rf::Rng rng3(7);
  const linalg::CMatrix r3 = sample_correlation(
      rf::synthesize_snapshots(ula3, paths, {}, opts, rng3));
  const linalg::CMatrix s3 =
      forward_backward_smooth(r3, default_subarray(3));
  EXPECT_EQ(s3.rows(), 2u);
  EXPECT_TRUE(s3.is_hermitian(1e-10));

  // M == 2: L == M == 2 is legal for the smoother too (one subarray;
  // forward averaging is the identity) — no throw either way.
  const rf::UniformLinearArray ula2({0, 0, 1}, {1, 0}, 2);
  rf::Rng rng2(8);
  const linalg::CMatrix r2 = sample_correlation(
      rf::synthesize_snapshots(ula2, paths, {}, opts, rng2));
  const linalg::CMatrix s2 =
      forward_backward_smooth(r2, default_subarray(2));
  EXPECT_EQ(s2.rows(), 2u);

  // M == 1: no angular aperture. default_subarray(1) == 1 sits BELOW
  // the smoother's L >= 2 floor, and the contract is to throw — this is
  // why DWatchPipeline (and UniformLinearArray itself) refuse M < 2.
  linalg::CMatrix r1(1, 1);
  r1(0, 0) = 1.0;
  EXPECT_THROW((void)forward_smooth(r1, default_subarray(1)),
               std::invalid_argument);
  EXPECT_THROW((void)forward_backward_smooth(r1, default_subarray(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace dwatch::core
