// Tests for correlation estimation and spatial smoothing.
#include "core/covariance.hpp"

#include <gtest/gtest.h>

#include "linalg/hermitian_eig.hpp"
#include "rf/array.hpp"
#include "rf/noise.hpp"
#include "rf/snapshot.hpp"

namespace dwatch::core {
namespace {

rf::PropagationPath plane_path(double theta_deg, double amp) {
  rf::PropagationPath p;
  p.kind = rf::PathKind::kDirect;
  p.vertices = {{-10, 0, 1}, {0, 0, 1}};
  p.length = 10.0;
  p.aoa = rf::deg2rad(theta_deg);
  p.gain = {amp, 0.0};
  return p;
}

linalg::CMatrix coherent_two_source_corr() {
  const rf::UniformLinearArray ula({0, 0, 1}, {1, 0}, 8);
  const std::vector<rf::PropagationPath> paths{plane_path(55, 1.0),
                                               plane_path(120, 0.8)};
  rf::SnapshotOptions opts;
  opts.num_snapshots = 64;
  opts.noise_sigma = 1e-4;
  rf::Rng rng(3);
  return sample_correlation(
      rf::synthesize_snapshots(ula, paths, {}, opts, rng));
}

std::size_t numeric_rank(const linalg::CMatrix& r, double rel_tol = 1e-3) {
  const auto eig = linalg::hermitian_eig(r);
  std::size_t rank = 0;
  for (const double v : eig.eigenvalues) {
    if (v > rel_tol * eig.eigenvalues.front()) ++rank;
  }
  return rank;
}

TEST(SampleCorrelation, HermitianAndPsd) {
  const linalg::CMatrix r = coherent_two_source_corr();
  EXPECT_TRUE(r.is_hermitian(1e-10));
  const auto eig = linalg::hermitian_eig(r);
  for (const double v : eig.eigenvalues) EXPECT_GE(v, -1e-12);
}

TEST(SampleCorrelation, EmptyThrows) {
  EXPECT_THROW((void)sample_correlation(linalg::CMatrix{}),
               std::invalid_argument);
}

TEST(SampleCorrelation, SingleSnapshotIsOuterProduct) {
  linalg::CMatrix x(3, 1);
  x(0, 0) = {1.0, 0.0};
  x(1, 0) = {0.0, 1.0};
  x(2, 0) = {1.0, 1.0};
  const linalg::CMatrix r = sample_correlation(x);
  EXPECT_NEAR(std::abs(r(0, 0) - linalg::Complex{1.0}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(r(2, 2) - linalg::Complex{2.0}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(r(0, 1) - linalg::Complex{0.0, -1.0}), 0.0, 1e-12);
}

TEST(CoherentSources, FullCorrelationIsRankOne) {
  // The motivating failure: coherent multipath collapses to rank 1.
  EXPECT_EQ(numeric_rank(coherent_two_source_corr()), 1u);
}

TEST(ForwardSmooth, RestoresRankTwo) {
  const linalg::CMatrix r = coherent_two_source_corr();
  const linalg::CMatrix smoothed = forward_smooth(r, 6);
  EXPECT_EQ(smoothed.rows(), 6u);
  EXPECT_GE(numeric_rank(smoothed), 2u);
}

TEST(ForwardBackwardSmooth, RestoresRankTwo) {
  const linalg::CMatrix r = coherent_two_source_corr();
  const linalg::CMatrix smoothed = forward_backward_smooth(r, 6);
  EXPECT_TRUE(smoothed.is_hermitian(1e-10));
  EXPECT_GE(numeric_rank(smoothed), 2u);
}

TEST(Smoothing, Validation) {
  const linalg::CMatrix r = coherent_two_source_corr();
  EXPECT_THROW((void)forward_smooth(r, 1), std::invalid_argument);
  EXPECT_THROW((void)forward_smooth(r, 9), std::invalid_argument);
  EXPECT_THROW((void)forward_smooth(linalg::CMatrix(2, 3), 2),
               std::invalid_argument);
}

TEST(Smoothing, FullSizeSubarrayIsIdentityOperation) {
  const linalg::CMatrix r = coherent_two_source_corr();
  const linalg::CMatrix smoothed = forward_smooth(r, 8);
  EXPECT_NEAR(smoothed.max_abs_diff(r), 0.0, 1e-12);
}

TEST(Smoothing, PreservesTraceScale) {
  const linalg::CMatrix r = coherent_two_source_corr();
  const linalg::CMatrix s6 = forward_backward_smooth(r, 6);
  // Average per-element power is preserved by smoothing (approximately,
  // since subarrays see the same stationary field).
  const double per_elem_r = r.trace().real() / 8.0;
  const double per_elem_s = s6.trace().real() / 6.0;
  EXPECT_NEAR(per_elem_s / per_elem_r, 1.0, 0.2);
}

TEST(DefaultSubarray, SensibleForCommonSizes) {
  EXPECT_EQ(default_subarray(8), 6u);
  EXPECT_EQ(default_subarray(6), 4u);
  EXPECT_EQ(default_subarray(4), 3u);
  EXPECT_EQ(default_subarray(2), 2u);
}

}  // namespace
}  // namespace dwatch::core
