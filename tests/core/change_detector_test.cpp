// Tests for baseline-vs-online spectrum change detection.
#include "core/change_detector.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dwatch::core {
namespace {

AngularSpectrum gaussians(std::vector<std::pair<double, double>> peaks,
                          std::size_t n = 361, double sigma = 0.05) {
  AngularSpectrum s(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double theta = s.theta_at(i);
    for (const auto& [mu, amp] : peaks) {
      s[i] += amp * std::exp(-(theta - mu) * (theta - mu) /
                             (2.0 * sigma * sigma));
    }
  }
  return s;
}

TEST(ChangeDetector, ValidatesOptions) {
  ChangeDetectorOptions bad;
  bad.min_drop_fraction = 1.5;
  EXPECT_THROW(SpectrumChangeDetector{bad}, std::invalid_argument);
}

TEST(ChangeDetector, SizeMismatchThrows) {
  const SpectrumChangeDetector det;
  EXPECT_THROW(
      (void)det.detect(AngularSpectrum(100), AngularSpectrum(101)),
      std::invalid_argument);
}

TEST(ChangeDetector, NoChangeNoDrops) {
  const SpectrumChangeDetector det;
  const AngularSpectrum s = gaussians({{1.0, 2.0}, {2.0, 1.0}});
  EXPECT_TRUE(det.detect(s, s).empty());
}

TEST(ChangeDetector, DetectsSingleBlockedPath) {
  const SpectrumChangeDetector det;
  const AngularSpectrum base = gaussians({{1.0, 2.0}, {2.0, 1.5}});
  const AngularSpectrum online = gaussians({{1.0, 2.0}, {2.0, 0.1}});
  const auto drops = det.detect(base, online);
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_NEAR(drops[0].theta, 2.0, 0.02);
  EXPECT_NEAR(drops[0].drop_fraction, 1.0 - 0.1 / 1.5, 0.05);
  EXPECT_NEAR(drops[0].baseline_power, 1.5, 0.05);
}

TEST(ChangeDetector, DetectsAllBlockedPaths) {
  const SpectrumChangeDetector det;
  const AngularSpectrum base =
      gaussians({{0.8, 2.0}, {1.6, 1.5}, {2.4, 1.0}});
  const AngularSpectrum online =
      gaussians({{0.8, 0.2}, {1.6, 0.15}, {2.4, 0.1}});
  EXPECT_EQ(det.detect(base, online).size(), 3u);
}

TEST(ChangeDetector, SmallDropBelowThresholdIgnored) {
  ChangeDetectorOptions opts;
  opts.min_drop_fraction = 0.5;
  const SpectrumChangeDetector det(opts);
  const AngularSpectrum base = gaussians({{1.5, 2.0}});
  const AngularSpectrum online = gaussians({{1.5, 1.4}});  // 30% drop
  EXPECT_TRUE(det.detect(base, online).empty());
}

TEST(ChangeDetector, RisesAreNotDrops) {
  const SpectrumChangeDetector det;
  const AngularSpectrum base = gaussians({{1.5, 1.0}});
  const AngularSpectrum online = gaussians({{1.5, 3.0}});
  EXPECT_TRUE(det.detect(base, online).empty());
}

TEST(ChangeDetector, WindowToleratesPeakWobble) {
  ChangeDetectorOptions opts;
  opts.angle_window = rf::deg2rad(2.0);
  const SpectrumChangeDetector det(opts);
  const AngularSpectrum base = gaussians({{1.5, 2.0}});
  // Online peak shifted by 1 degree, same height: windowed max finds it.
  const AngularSpectrum online =
      gaussians({{1.5 + rf::deg2rad(1.0), 2.0}});
  EXPECT_TRUE(det.detect(base, online).empty());
}

TEST(ChangeDetector, WindowedPowerIsLocalMax) {
  const SpectrumChangeDetector det;
  const AngularSpectrum s = gaussians({{1.0, 3.0}});
  EXPECT_NEAR(det.windowed_power(s, 1.0), 3.0, 0.01);
  EXPECT_LT(det.windowed_power(s, 2.5), 0.01);
}

TEST(ChangeDetector, DropFractionClampedToOne) {
  const SpectrumChangeDetector det;
  AngularSpectrum base = gaussians({{1.0, 1.0}});
  AngularSpectrum online(base.size());
  // Slightly negative floor could push fraction over 1; must clamp.
  const auto drops = det.detect(base, online);
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_LE(drops[0].drop_fraction, 1.0);
}

/// Sweep the residual amplitude: drop fraction tracks 1 - residual^2.
class DropFractionSweep : public ::testing::TestWithParam<double> {};

TEST_P(DropFractionSweep, FractionMatchesResidual) {
  const double residual = GetParam();
  ChangeDetectorOptions opts;
  opts.min_drop_fraction = 0.0;
  const SpectrumChangeDetector det(opts);
  const AngularSpectrum base = gaussians({{1.2, 2.0}});
  const AngularSpectrum online =
      gaussians({{1.2, 2.0 * residual * residual}});
  const auto drops = det.detect(base, online);
  ASSERT_FALSE(drops.empty());
  EXPECT_NEAR(drops[0].drop_fraction, 1.0 - residual * residual, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Residuals, DropFractionSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.7, 0.9));

TEST(ChangeDetector, NegativeAngleWindowThrows) {
  ChangeDetectorOptions bad;
  bad.angle_window = -0.01;
  EXPECT_THROW(SpectrumChangeDetector{bad}, std::invalid_argument);
  bad.angle_window = std::nan("");
  EXPECT_THROW(SpectrumChangeDetector{bad}, std::invalid_argument);
}

TEST(ChangeDetector, WindowedPowerAtGridStart) {
  // Regression: the window at theta = 0 extends below the grid; it must
  // clamp, not vanish — the first bin always participates.
  const SpectrumChangeDetector det;
  AngularSpectrum s(361);
  s[0] = 2.0;
  s[1] = 1.0;
  EXPECT_DOUBLE_EQ(det.windowed_power(s, 0.0), 2.0);
  // Off-grid angles clamp to the nearest bin instead of reading 0.
  EXPECT_DOUBLE_EQ(det.windowed_power(s, -0.5), 2.0);
}

TEST(ChangeDetector, WindowedPowerAtGridEnd) {
  const SpectrumChangeDetector det;
  AngularSpectrum s(361);
  s[360] = 3.0;
  s[359] = 1.0;
  EXPECT_DOUBLE_EQ(det.windowed_power(s, s.theta_at(360)), 3.0);
  EXPECT_DOUBLE_EQ(det.windowed_power(s, 4.0), 3.0);  // beyond pi clamps
}

TEST(ChangeDetector, ZeroWindowReadsTheNearestBin) {
  // angle_window = 0 degenerates to a single bin, never an empty range.
  ChangeDetectorOptions opts;
  opts.angle_window = 0.0;
  const SpectrumChangeDetector det(opts);
  AngularSpectrum s(361);
  s[0] = 2.0;
  s[360] = 3.0;
  EXPECT_DOUBLE_EQ(det.windowed_power(s, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(det.windowed_power(s, s.theta_at(360)), 3.0);
}

TEST(ChangeDetector, HealthyEdgeOfGridPeaksAreNotSpuriousDrops) {
  // Regression for the empty-window bug: an UNCHANGED baseline peak
  // hugging either end of the grid must not read an empty online
  // window (0.0) and masquerade as a full drop (drop_fraction = 1.0).
  const SpectrumChangeDetector det;
  const AngularSpectrum base = gaussians({{0.02, 2.0}, {3.12, 1.5}});
  EXPECT_TRUE(det.detect(base, base).empty());
}

TEST(ChangeDetector, EdgeOfGridDropsStillDetected) {
  // The clamp must not blind the detector to GENUINE edge drops.
  const SpectrumChangeDetector det;
  const AngularSpectrum base = gaussians({{0.02, 2.0}, {3.12, 1.5}});
  const AngularSpectrum online = gaussians({{0.02, 0.1}, {3.12, 0.1}});
  const auto drops = det.detect(base, online);
  EXPECT_EQ(drops.size(), 2u);
  for (const PathDrop& d : drops) {
    EXPECT_GE(d.drop_fraction, 0.9);
    EXPECT_GT(d.online_power, 0.0);  // read the clamped window, not 0
  }
}

}  // namespace
}  // namespace dwatch::core
