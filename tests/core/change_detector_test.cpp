// Tests for baseline-vs-online spectrum change detection.
#include "core/change_detector.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dwatch::core {
namespace {

AngularSpectrum gaussians(std::vector<std::pair<double, double>> peaks,
                          std::size_t n = 361, double sigma = 0.05) {
  AngularSpectrum s(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double theta = s.theta_at(i);
    for (const auto& [mu, amp] : peaks) {
      s[i] += amp * std::exp(-(theta - mu) * (theta - mu) /
                             (2.0 * sigma * sigma));
    }
  }
  return s;
}

TEST(ChangeDetector, ValidatesOptions) {
  ChangeDetectorOptions bad;
  bad.min_drop_fraction = 1.5;
  EXPECT_THROW(SpectrumChangeDetector{bad}, std::invalid_argument);
}

TEST(ChangeDetector, SizeMismatchThrows) {
  const SpectrumChangeDetector det;
  EXPECT_THROW(
      (void)det.detect(AngularSpectrum(100), AngularSpectrum(101)),
      std::invalid_argument);
}

TEST(ChangeDetector, NoChangeNoDrops) {
  const SpectrumChangeDetector det;
  const AngularSpectrum s = gaussians({{1.0, 2.0}, {2.0, 1.0}});
  EXPECT_TRUE(det.detect(s, s).empty());
}

TEST(ChangeDetector, DetectsSingleBlockedPath) {
  const SpectrumChangeDetector det;
  const AngularSpectrum base = gaussians({{1.0, 2.0}, {2.0, 1.5}});
  const AngularSpectrum online = gaussians({{1.0, 2.0}, {2.0, 0.1}});
  const auto drops = det.detect(base, online);
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_NEAR(drops[0].theta, 2.0, 0.02);
  EXPECT_NEAR(drops[0].drop_fraction, 1.0 - 0.1 / 1.5, 0.05);
  EXPECT_NEAR(drops[0].baseline_power, 1.5, 0.05);
}

TEST(ChangeDetector, DetectsAllBlockedPaths) {
  const SpectrumChangeDetector det;
  const AngularSpectrum base =
      gaussians({{0.8, 2.0}, {1.6, 1.5}, {2.4, 1.0}});
  const AngularSpectrum online =
      gaussians({{0.8, 0.2}, {1.6, 0.15}, {2.4, 0.1}});
  EXPECT_EQ(det.detect(base, online).size(), 3u);
}

TEST(ChangeDetector, SmallDropBelowThresholdIgnored) {
  ChangeDetectorOptions opts;
  opts.min_drop_fraction = 0.5;
  const SpectrumChangeDetector det(opts);
  const AngularSpectrum base = gaussians({{1.5, 2.0}});
  const AngularSpectrum online = gaussians({{1.5, 1.4}});  // 30% drop
  EXPECT_TRUE(det.detect(base, online).empty());
}

TEST(ChangeDetector, RisesAreNotDrops) {
  const SpectrumChangeDetector det;
  const AngularSpectrum base = gaussians({{1.5, 1.0}});
  const AngularSpectrum online = gaussians({{1.5, 3.0}});
  EXPECT_TRUE(det.detect(base, online).empty());
}

TEST(ChangeDetector, WindowToleratesPeakWobble) {
  ChangeDetectorOptions opts;
  opts.angle_window = rf::deg2rad(2.0);
  const SpectrumChangeDetector det(opts);
  const AngularSpectrum base = gaussians({{1.5, 2.0}});
  // Online peak shifted by 1 degree, same height: windowed max finds it.
  const AngularSpectrum online =
      gaussians({{1.5 + rf::deg2rad(1.0), 2.0}});
  EXPECT_TRUE(det.detect(base, online).empty());
}

TEST(ChangeDetector, WindowedPowerIsLocalMax) {
  const SpectrumChangeDetector det;
  const AngularSpectrum s = gaussians({{1.0, 3.0}});
  EXPECT_NEAR(det.windowed_power(s, 1.0), 3.0, 0.01);
  EXPECT_LT(det.windowed_power(s, 2.5), 0.01);
}

TEST(ChangeDetector, DropFractionClampedToOne) {
  const SpectrumChangeDetector det;
  AngularSpectrum base = gaussians({{1.0, 1.0}});
  AngularSpectrum online(base.size());
  // Slightly negative floor could push fraction over 1; must clamp.
  const auto drops = det.detect(base, online);
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_LE(drops[0].drop_fraction, 1.0);
}

/// Sweep the residual amplitude: drop fraction tracks 1 - residual^2.
class DropFractionSweep : public ::testing::TestWithParam<double> {};

TEST_P(DropFractionSweep, FractionMatchesResidual) {
  const double residual = GetParam();
  ChangeDetectorOptions opts;
  opts.min_drop_fraction = 0.0;
  const SpectrumChangeDetector det(opts);
  const AngularSpectrum base = gaussians({{1.2, 2.0}});
  const AngularSpectrum online =
      gaussians({{1.2, 2.0 * residual * residual}});
  const auto drops = det.detect(base, online);
  ASSERT_FALSE(drops.empty());
  EXPECT_NEAR(drops[0].drop_fraction, 1.0 - residual * residual, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Residuals, DropFractionSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.7, 0.9));

}  // namespace
}  // namespace dwatch::core
