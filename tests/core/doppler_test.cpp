// Tests for the Doppler speed estimator (paper Section 8 hook).
#include "core/doppler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rf/constants.hpp"
#include "rf/geometry.hpp"
#include "rf/noise.hpp"

namespace dwatch::core {
namespace {

std::vector<linalg::Complex> tone(double freq_hz, double dt, std::size_t n,
                                  double amp = 1.0, double noise = 0.0,
                                  std::uint64_t seed = 1) {
  rf::Rng rng(seed);
  std::vector<linalg::Complex> out;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * dt;
    linalg::Complex z = std::polar(amp, -rf::kTwoPi * freq_hz * t);
    if (noise > 0.0) z += rng.complex_gaussian(noise);
    out.push_back(z);
  }
  return out;
}

TEST(Unwrap, RemovesJumps) {
  const std::vector<double> wrapped{3.0, -3.0, 2.9, -2.9};
  const auto u = unwrap_phases(wrapped);
  for (std::size_t i = 1; i < u.size(); ++i) {
    EXPECT_LT(std::abs(u[i] - u[i - 1]), rf::kPi);
  }
}

TEST(Unwrap, MonotoneRampPreserved) {
  std::vector<double> wrapped;
  for (int i = 0; i < 40; ++i) {
    wrapped.push_back(rf::wrap_pi(0.4 * i));
  }
  const auto u = unwrap_phases(wrapped);
  for (std::size_t i = 1; i < u.size(); ++i) {
    EXPECT_NEAR(u[i] - u[i - 1], 0.4, 1e-9);
  }
}

TEST(Doppler, ValidatesOptions) {
  DopplerOptions bad;
  bad.dt = 0.0;
  const auto series = tone(1.0, 0.1, 8);
  EXPECT_THROW((void)estimate_doppler(series, bad), std::invalid_argument);
}

TEST(Doppler, TooFewSamplesInvalid) {
  DopplerOptions opts;
  const auto series = tone(1.0, 0.1, 2);
  EXPECT_FALSE(estimate_doppler(series, opts).valid);
}

TEST(Doppler, CleanToneFrequency) {
  DopplerOptions opts;
  opts.dt = 0.1;
  const auto series = tone(2.0, opts.dt, 20);
  const DopplerEstimate est = estimate_doppler(series, opts);
  ASSERT_TRUE(est.valid);
  EXPECT_NEAR(est.frequency_hz, 2.0, 0.01);
}

TEST(Doppler, SpeedConversionOneWay) {
  // Walking toward the array at 1 m/s shortens the path at 1 m/s:
  // f_d = v / lambda.
  DopplerOptions opts;
  opts.dt = 0.05;
  opts.lambda = 0.325;
  const double v = 1.2;
  const auto series = tone(v / opts.lambda, opts.dt, 24);
  const DopplerEstimate est = estimate_doppler(series, opts);
  ASSERT_TRUE(est.valid);
  EXPECT_NEAR(est.speed_mps, v, 0.02);
}

TEST(Doppler, TwoWayHalvesSpeed) {
  DopplerOptions one;
  one.dt = 0.05;
  DopplerOptions two = one;
  two.two_way = true;
  const auto series = tone(4.0, one.dt, 24);
  const auto e1 = estimate_doppler(series, one);
  const auto e2 = estimate_doppler(series, two);
  ASSERT_TRUE(e1.valid);
  ASSERT_TRUE(e2.valid);
  EXPECT_NEAR(e2.speed_mps, e1.speed_mps / 2.0, 1e-9);
}

TEST(Doppler, NoisyToneStillAccurate) {
  DopplerOptions opts;
  opts.dt = 0.1;
  const auto series = tone(1.5, opts.dt, 40, 1.0, 0.15, 7);
  const DopplerEstimate est = estimate_doppler(series, opts);
  ASSERT_TRUE(est.valid);
  EXPECT_NEAR(est.frequency_hz, 1.5, 0.1);
}

TEST(Doppler, FadedSamplesSkipped) {
  DopplerOptions opts;
  opts.dt = 0.1;
  auto series = tone(1.0, opts.dt, 20);
  series[5] = {1e-9, 0.0};   // deep fade: phase garbage
  series[12] = {0.0, 0.0};
  const DopplerEstimate est = estimate_doppler(series, opts);
  ASSERT_TRUE(est.valid);
  EXPECT_EQ(est.samples_used, 18u);
  EXPECT_NEAR(est.frequency_hz, 1.0, 0.02);
}

TEST(Doppler, StaticTargetZeroSpeed) {
  DopplerOptions opts;
  opts.dt = 0.1;
  const auto series = tone(0.0, opts.dt, 16, 1.0, 0.02, 3);
  const DopplerEstimate est = estimate_doppler(series, opts);
  ASSERT_TRUE(est.valid);
  EXPECT_NEAR(est.speed_mps, 0.0, 0.05);
}

/// The paper's walking-speed range at epoch rate 10 Hz: 1-2 m/s gives
/// |f_d| up to ~6 Hz — within the 5 Hz Nyquist only for one-way... sweep
/// the representable range.
class DopplerSweep : public ::testing::TestWithParam<double> {};

TEST_P(DopplerSweep, RecoversFrequency) {
  const double f = GetParam();
  DopplerOptions opts;
  opts.dt = 0.05;  // 20 Hz epochs: Nyquist 10 Hz
  const auto series = tone(f, opts.dt, 30);
  const DopplerEstimate est = estimate_doppler(series, opts);
  ASSERT_TRUE(est.valid);
  EXPECT_NEAR(est.frequency_hz, f, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Freqs, DopplerSweep,
                         ::testing::Values(-8.0, -3.0, -0.5, 0.5, 3.0,
                                           6.0, 9.0));

}  // namespace
}  // namespace dwatch::core
