// Tests for the incremental spectral path (core/streaming.hpp): the
// chunk-accumulated covariance must be BIT-IDENTICAL to the batch
// sample_correlation over the concatenated snapshots, and the tracked
// signal subspace must stay within the bounded-divergence contract of
// the dense batch EVD — within 1e-6 relative on golden fixtures, with
// an automatic dense reset restoring exact parity on divergence.
#include "core/streaming.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdint>
#include <vector>

#include "core/covariance.hpp"
#include "core/music.hpp"
#include "linalg/complex_matrix.hpp"
#include "rf/constants.hpp"

namespace dwatch::core {
namespace {

constexpr double kSpacing = 0.163;
constexpr double kLambda = 2.0 * kSpacing;

/// 64-bit LCG (MMIX constants) — the golden-fixture generator, identical
/// on every platform.
struct Lcg {
  std::uint64_t state;
  explicit Lcg(std::uint64_t seed) : state(seed) {}
  double uniform() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  }
};

/// Two coherent sources + weak noise; `gain2` lets a sequence of epochs
/// evolve slowly (an occluder gradually attenuating the second path).
linalg::CMatrix fixture_snapshots(std::size_t num_elements,
                                  std::size_t num_snapshots,
                                  std::uint64_t seed, double gain2 = 0.45) {
  const double thetas[2] = {0.7, 1.9};
  const double amplitudes[2] = {1.0, gain2};
  Lcg lcg(seed);
  linalg::CMatrix x(num_elements, num_snapshots);
  for (std::size_t n = 0; n < num_snapshots; ++n) {
    const double symbol_phase = rf::kTwoPi * lcg.uniform();
    for (std::size_t m = 0; m < num_elements; ++m) {
      std::complex<double> v{0.0, 0.0};
      for (int k = 0; k < 2; ++k) {
        const double steer = rf::kTwoPi * kSpacing *
                             static_cast<double>(m) * std::cos(thetas[k]) /
                             kLambda;
        v += amplitudes[k] *
             std::complex<double>(std::cos(steer + symbol_phase),
                                  std::sin(steer + symbol_phase));
      }
      v += std::complex<double>(1e-3 * (lcg.uniform() - 0.5),
                                1e-3 * (lcg.uniform() - 0.5));
      x(m, n) = v;
    }
  }
  return x;
}

/// Max per-bin deviation of `got` from `want`, relative to the bin.
double max_relative_error(const AngularSpectrum& got,
                          const AngularSpectrum& want) {
  EXPECT_EQ(got.size(), want.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double denom = std::max(std::abs(want[i]), 1e-300);
    worst = std::max(worst, std::abs(got[i] - want[i]) / denom);
  }
  return worst;
}

TEST(IncrementalCovariance, Validation) {
  EXPECT_THROW(IncrementalCovariance{0}, std::invalid_argument);
  IncrementalCovariance cov(4);
  EXPECT_EQ(cov.num_elements(), 4u);
  EXPECT_EQ(cov.num_snapshots(), 0u);
  EXPECT_THROW((void)cov.correlation(), std::logic_error);
  EXPECT_THROW(cov.accumulate(linalg::CMatrix(3, 5)),
               std::invalid_argument);
  EXPECT_THROW(cov.accumulate(linalg::CMatrix(4, 0)),
               std::invalid_argument);
}

TEST(IncrementalCovariance, ChunkedMatchesBatchBitForBit) {
  // The streaming contract: fold the epoch's snapshot chunks one by one
  // and the final correlation is BIT-identical to sample_correlation
  // over the concatenation — the raw sum continues the same addition
  // chain, division by N happens once at the read.
  const std::size_t m = 8;
  const std::size_t chunk_cols[] = {6, 1, 9, 16};
  std::size_t total = 0;
  for (const std::size_t c : chunk_cols) total += c;
  const linalg::CMatrix all = fixture_snapshots(m, total, 0xBEEF);

  IncrementalCovariance cov(m);
  std::size_t col = 0;
  for (const std::size_t c : chunk_cols) {
    linalg::CMatrix chunk(m, c);
    for (std::size_t j = 0; j < c; ++j) {
      for (std::size_t i = 0; i < m; ++i) chunk(i, j) = all(i, col + j);
    }
    col += c;
    cov.accumulate(chunk);
  }
  EXPECT_EQ(cov.num_snapshots(), total);

  const linalg::CMatrix batch = sample_correlation(all);
  const linalg::CMatrix streamed = cov.correlation();
  ASSERT_EQ(streamed.rows(), batch.rows());
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      EXPECT_EQ(streamed(i, j).real(), batch(i, j).real())
          << "(" << i << "," << j << ") re";
      EXPECT_EQ(streamed(i, j).imag(), batch(i, j).imag())
          << "(" << i << "," << j << ") im";
    }
  }
}

TEST(IncrementalCovariance, ResetStartsAFreshEpoch) {
  const linalg::CMatrix a = fixture_snapshots(4, 12, 1);
  const linalg::CMatrix b = fixture_snapshots(4, 12, 2);
  IncrementalCovariance cov(4);
  cov.accumulate(a);
  cov.reset();
  EXPECT_EQ(cov.num_snapshots(), 0u);
  cov.accumulate(b);
  const linalg::CMatrix direct = sample_correlation(b);
  EXPECT_NEAR(cov.correlation().max_abs_diff(direct), 0.0, 0.0);
}

TEST(SubspaceTracker, Validation) {
  SubspaceTrackerOptions bad;
  bad.rank = 0;
  EXPECT_THROW(SubspaceTracker{bad}, std::invalid_argument);
  bad = SubspaceTrackerOptions{};
  bad.divergence_tolerance = 0.0;
  EXPECT_THROW(SubspaceTracker{bad}, std::invalid_argument);

  SubspaceTracker tracker{SubspaceTrackerOptions{}};
  EXPECT_THROW((void)tracker.update(linalg::CMatrix(3, 4)),
               std::invalid_argument);
  EXPECT_THROW((void)tracker.update(linalg::CMatrix(1, 1)),
               std::invalid_argument);
}

TEST(SubspaceTracker, FirstUpdateIsADenseReset) {
  const linalg::CMatrix r =
      forward_backward_smooth(sample_correlation(fixture_snapshots(8, 16, 3)),
                              default_subarray(8));
  SubspaceTracker tracker{SubspaceTrackerOptions{}};
  const SubspaceUpdateResult upd = tracker.update(r);
  EXPECT_TRUE(upd.reset);
  EXPECT_EQ(tracker.resets(), 1u);
  EXPECT_EQ(tracker.rank(), 3u);
  ASSERT_EQ(tracker.eigenvalues().size(), 3u);
  EXPECT_GE(tracker.eigenvalues()[0], tracker.eigenvalues()[1]);
  EXPECT_GE(tracker.eigenvalues()[1], tracker.eigenvalues()[2]);
  // Columns orthonormal.
  const linalg::CMatrix& u = tracker.subspace();
  const linalg::CMatrix gram = u.hermitian() * u;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(std::abs(gram(i, j)), i == j ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(SubspaceTracker, StationarySequenceTracksWarm) {
  // Feeding the SAME matrix again and again: after the initial dense
  // reset the basis is exact, every warm refinement has ~machine-level
  // Ritz residual, and no further resets happen.
  const linalg::CMatrix r =
      forward_backward_smooth(sample_correlation(fixture_snapshots(8, 16, 4)),
                              default_subarray(8));
  SubspaceTracker tracker{SubspaceTrackerOptions{}};
  for (int t = 0; t < 10; ++t) (void)tracker.update(r);
  EXPECT_EQ(tracker.updates(), 10u);
  EXPECT_EQ(tracker.resets(), 1u);  // only the cold start
}

TEST(SubspaceTracker, GoldenTrackedSpectrumMatchesDenseBatch) {
  // The bounded-divergence contract on a slowly evolving golden scene:
  // the full tracked P-MUSIC spectrum stays within 1e-6 RELATIVE of the
  // dense batch spectrum at every grid point of every epoch — either
  // the warm refinement is that tight, or the tracker resets and IS the
  // dense result.
  const std::size_t m = 8;
  const std::size_t l = default_subarray(m);
  const MusicEstimator music(kSpacing, kLambda, MusicOptions{});
  SubspaceTracker tracker{SubspaceTrackerOptions{}};
  for (int t = 0; t < 8; ++t) {
    const double gain2 = 0.45 - 0.04 * static_cast<double>(t);
    const linalg::CMatrix x =
        fixture_snapshots(m, 16, 100 + static_cast<std::uint64_t>(t), gain2);
    const linalg::CMatrix r = sample_correlation(x);
    const linalg::CMatrix smoothed = forward_backward_smooth(r, l);
    (void)tracker.update(smoothed);

    const MusicResult dense = music.estimate_from_correlation(r, x.cols());
    const MusicResult tracked = music.estimate_from_subspace(
        tracker.subspace(), tracker.eigenvalues(), tracker.trace(), x.cols());
    ASSERT_EQ(tracked.num_sources, dense.num_sources) << "epoch " << t;
    EXPECT_LE(max_relative_error(tracked.spectrum, dense.spectrum), 1e-6)
        << "epoch " << t;
  }
}

TEST(SubspaceTracker, DivergenceInjectionResetsAndRestoresParity) {
  const std::size_t m = 8;
  const std::size_t l = default_subarray(m);
  const MusicEstimator music(kSpacing, kLambda, MusicOptions{});
  SubspaceTracker tracker{SubspaceTrackerOptions{}};
  const linalg::CMatrix r = sample_correlation(fixture_snapshots(m, 16, 7));
  const linalg::CMatrix smoothed = forward_backward_smooth(r, l);
  for (int t = 0; t < 3; ++t) (void)tracker.update(smoothed);
  const std::size_t resets_before = tracker.resets();

  // Seeded divergence: invalidate() models a corrupted basis (the same
  // hook restore() uses). The very next update must fall back to the
  // dense oracle and restore EXACT parity.
  tracker.invalidate();
  const SubspaceUpdateResult upd = tracker.update(smoothed);
  EXPECT_TRUE(upd.reset);
  EXPECT_EQ(tracker.resets(), resets_before + 1);

  const MusicResult dense = music.estimate_from_correlation(r, 16);
  const MusicResult tracked = music.estimate_from_subspace(
      tracker.subspace(), tracker.eigenvalues(), tracker.trace(), 16);
  ASSERT_EQ(tracked.num_sources, dense.num_sources);
  EXPECT_LE(max_relative_error(tracked.spectrum, dense.spectrum), 1e-6);

  // A hard scene change (different angles entirely) must ALSO stay
  // within contract: the stale basis either refines to tolerance or
  // triggers an automatic reset — never a silently wrong spectrum.
  Lcg lcg(99);
  linalg::CMatrix y(m, 16);
  for (std::size_t n = 0; n < 16; ++n) {
    const double phase = rf::kTwoPi * lcg.uniform();
    for (std::size_t i = 0; i < m; ++i) {
      const double steer = rf::kTwoPi * kSpacing * static_cast<double>(i) *
                           std::cos(2.6) / kLambda;
      y(i, n) = std::polar(1.0, steer + phase) +
                std::complex<double>(1e-3 * (lcg.uniform() - 0.5),
                                     1e-3 * (lcg.uniform() - 0.5));
    }
  }
  const linalg::CMatrix r2 = sample_correlation(y);
  (void)tracker.update(forward_backward_smooth(r2, l));
  const MusicResult dense2 = music.estimate_from_correlation(r2, 16);
  const MusicResult tracked2 = music.estimate_from_subspace(
      tracker.subspace(), tracker.eigenvalues(), tracker.trace(), 16);
  ASSERT_EQ(tracked2.num_sources, dense2.num_sources);
  EXPECT_LE(max_relative_error(tracked2.spectrum, dense2.spectrum), 1e-6);
}

}  // namespace
}  // namespace dwatch::core
