// Tests for explicit ray triangulation and outlier rejection.
#include "core/triangulate.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dwatch::core {
namespace {

std::vector<rf::UniformLinearArray> room_arrays() {
  return {
      rf::UniformLinearArray({3.5, 0.15, 1.25}, {1, 0}, 8),
      rf::UniformLinearArray({0.15, 5.0, 1.25}, {0, 1}, 8),
      rf::UniformLinearArray({3.5, 9.85, 1.25}, {1, 0}, 8),
  };
}

TriangulationOptions room_options() {
  TriangulationOptions opts;
  opts.bounds = {{0.0, 0.0}, {7.0, 10.0}};
  return opts;
}

PathDrop drop_toward(const rf::UniformLinearArray& array, rf::Vec2 target,
                     double power = 1.0) {
  PathDrop d;
  d.theta = array.arrival_angle_planar(target);
  d.drop_fraction = 0.9;
  d.baseline_power = power;
  d.online_power = 0.1 * power;
  return d;
}

TEST(RaysForAngle, BroadsideHasTwoMirrorRays) {
  const auto arrays = room_arrays();
  const auto rays = rays_for_angle(arrays[0], rf::kPi / 2);
  ASSERT_EQ(rays.size(), 2u);
  // Mirror pair across the array axis (x-axis): directions (0, +-1).
  EXPECT_NEAR(std::abs(rays[0].direction.y), 1.0, 1e-9);
  EXPECT_NEAR(rays[0].direction.y + rays[1].direction.y, 0.0, 1e-9);
}

TEST(RaysForAngle, EndfireHasSingleRay) {
  const auto arrays = room_arrays();
  EXPECT_EQ(rays_for_angle(arrays[0], 0.0).size(), 1u);
  EXPECT_EQ(rays_for_angle(arrays[0], rf::kPi).size(), 1u);
}

TEST(RaysForAngle, RayPassesThroughTarget) {
  const auto arrays = room_arrays();
  const rf::Vec2 target{2.0, 6.0};
  const double theta = arrays[0].arrival_angle_planar(target);
  const auto rays = rays_for_angle(arrays[0], theta);
  double best = 1e9;
  for (const auto& ray : rays) {
    // Distance from target to the ray.
    const rf::Vec2 w = target - ray.origin;
    const double t = w.dot(ray.direction);
    if (t > 0) {
      best = std::min(best,
                      rf::distance(ray.origin + ray.direction * t, target));
    }
  }
  EXPECT_NEAR(best, 0.0, 1e-9);
}

TEST(IntersectRays, BasicCrossing) {
  const BearingRay a{{0, 0}, {1, 0}};
  const BearingRay b{{2, -1}, {0, 1}};
  const auto hit = intersect_rays(a, b);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->x, 2.0, 1e-12);
  EXPECT_NEAR(hit->y, 0.0, 1e-12);
}

TEST(IntersectRays, ParallelAndBehind) {
  const BearingRay a{{0, 0}, {1, 0}};
  const BearingRay b{{0, 1}, {1, 0}};
  EXPECT_FALSE(intersect_rays(a, b).has_value());
  const BearingRay c{{2, 1}, {0, 1}};  // meets a's line at (2,0), behind c
  EXPECT_FALSE(intersect_rays(a, c).has_value());
}

TEST(Triangulate, EvidenceCountMismatchThrows) {
  const auto arrays = room_arrays();
  const std::vector<AngularEvidence> wrong(1);
  EXPECT_THROW((void)triangulate_with_outlier_rejection(arrays, wrong,
                                                        room_options()),
               std::invalid_argument);
}

TEST(Triangulate, CleanThreeArrayFix) {
  const auto arrays = room_arrays();
  const rf::Vec2 target{3.0, 4.0};
  std::vector<AngularEvidence> ev(3);
  for (std::size_t i = 0; i < 3; ++i) {
    ev[i].drops.push_back(drop_toward(arrays[i], target));
  }
  const TriangulationResult res =
      triangulate_with_outlier_rejection(arrays, ev, room_options());
  ASSERT_TRUE(res.valid);
  EXPECT_NEAR(rf::distance(res.position, target), 0.0, 0.05);
  EXPECT_GE(res.support, 3u);  // 3 pairs agree
}

TEST(Triangulate, WrongAngleRejectedAsOutlier) {
  const auto arrays = room_arrays();
  const rf::Vec2 target{3.0, 4.0};
  std::vector<AngularEvidence> ev(3);
  for (std::size_t i = 0; i < 3; ++i) {
    ev[i].drops.push_back(drop_toward(arrays[i], target));
  }
  // A wrong angle at array 0 pointing elsewhere.
  ev[0].drops.push_back(drop_toward(arrays[0], {6.0, 9.0}, 0.5));
  const TriangulationResult res =
      triangulate_with_outlier_rejection(arrays, ev, room_options());
  ASSERT_TRUE(res.valid);
  EXPECT_NEAR(rf::distance(res.position, target), 0.0, 0.1);
  EXPECT_GT(res.rejected, 0u);
}

TEST(Triangulate, OutOfBoundsCandidatesDiscarded) {
  const auto arrays = room_arrays();
  std::vector<AngularEvidence> ev(3);
  // Two drops whose rays cross far outside the room: bearing of a point
  // beyond the far wall.
  const rf::Vec2 outside{20.0, 30.0};
  ev[0].drops.push_back(drop_toward(arrays[0], outside));
  ev[1].drops.push_back(drop_toward(arrays[1], outside));
  const TriangulationResult res =
      triangulate_with_outlier_rejection(arrays, ev, room_options());
  EXPECT_FALSE(res.valid);
  EXPECT_GT(res.rejected, 0u);
}

TEST(Triangulate, NoEvidenceInvalid) {
  const auto arrays = room_arrays();
  const std::vector<AngularEvidence> ev(3);
  const TriangulationResult res =
      triangulate_with_outlier_rejection(arrays, ev, room_options());
  EXPECT_FALSE(res.valid);
  EXPECT_EQ(res.support, 0u);
}

TEST(Triangulate, WeightsFavourStrongDrops) {
  const auto arrays = room_arrays();
  const rf::Vec2 strong{2.0, 3.0};
  const rf::Vec2 weak{5.0, 8.0};
  std::vector<AngularEvidence> ev(3);
  // Both candidate locations are 2-ray intersections, but the strong one
  // carries much larger drop weights.
  ev[0].drops.push_back(drop_toward(arrays[0], strong, 1.0));
  ev[1].drops.push_back(drop_toward(arrays[1], strong, 1.0));
  ev[0].drops.push_back(drop_toward(arrays[0], weak, 0.05));
  ev[2].drops.push_back(drop_toward(arrays[2], weak, 0.05));
  const TriangulationResult res =
      triangulate_with_outlier_rejection(arrays, ev, room_options());
  ASSERT_TRUE(res.valid);
  EXPECT_NEAR(rf::distance(res.position, strong), 0.0, 0.2);
}

}  // namespace
}  // namespace dwatch::core
