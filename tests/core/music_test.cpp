// Tests for the MUSIC estimator: angle recovery, coherent-source
// handling via spatial smoothing, and option validation.
#include "core/music.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "rf/array.hpp"
#include "rf/noise.hpp"
#include "rf/snapshot.hpp"

namespace dwatch::core {
namespace {

rf::PropagationPath plane_path(double theta_deg, double amp) {
  rf::PropagationPath p;
  p.kind = rf::PathKind::kDirect;
  p.vertices = {{-10, 0, 1}, {0, 0, 1}};
  p.length = 10.0;
  p.aoa = rf::deg2rad(theta_deg);
  p.gain = {amp, 0.0};
  return p;
}

linalg::CMatrix snapshots_for(const std::vector<rf::PropagationPath>& paths,
                              std::uint64_t seed = 11, double snr_db = 35.0,
                              std::size_t n = 32, std::size_t m = 8) {
  const rf::UniformLinearArray ula({0, 0, 1}, {1, 0}, m);
  rf::SnapshotOptions opts;
  opts.num_snapshots = n;
  opts.noise_sigma = rf::noise_sigma_for_snr(paths, 1.0, snr_db);
  rf::Rng rng(seed);
  return rf::synthesize_snapshots(ula, paths, {}, opts, rng);
}

MusicEstimator default_music(MusicOptions opts = {}) {
  return MusicEstimator(rf::kDefaultElementSpacing, rf::kDefaultWavelength,
                        opts);
}

TEST(Music, ValidatesConstruction) {
  EXPECT_THROW(MusicEstimator(0.0, 0.3), std::invalid_argument);
  EXPECT_THROW(MusicEstimator(0.16, -1.0), std::invalid_argument);
}

TEST(Music, ValidatesInputs) {
  const MusicEstimator music = default_music();
  EXPECT_THROW((void)music.estimate_from_correlation(linalg::CMatrix(2, 3),
                                                     8),
               std::invalid_argument);
  MusicOptions bad;
  bad.subarray = 12;  // > M
  const MusicEstimator music2 = default_music(bad);
  const auto x = snapshots_for({plane_path(90, 1.0)});
  EXPECT_THROW((void)music2.estimate(x), std::invalid_argument);
}

TEST(Music, SingleSourceExactAngle) {
  const double truth = 72.0;
  const auto x = snapshots_for({plane_path(truth, 1.0)});
  const MusicResult res = default_music().estimate(x);
  EXPECT_EQ(res.num_sources, 1u);
  const auto peaks = find_peaks(res.spectrum);
  ASSERT_FALSE(peaks.empty());
  EXPECT_NEAR(rf::rad2deg(peaks[0].theta), truth, 1.0);
}

TEST(Music, CoherentPairResolvedViaSmoothing) {
  const auto x =
      snapshots_for({plane_path(50, 1.0), plane_path(115, 0.8)});
  const MusicResult res = default_music().estimate(x);
  PeakOptions po;
  po.max_peaks = 2;
  const auto peaks = find_peaks(res.spectrum, po);
  ASSERT_EQ(peaks.size(), 2u);
  std::vector<double> angles{rf::rad2deg(peaks[0].theta),
                             rf::rad2deg(peaks[1].theta)};
  std::sort(angles.begin(), angles.end());
  EXPECT_NEAR(angles[0], 50.0, 2.0);
  EXPECT_NEAR(angles[1], 115.0, 2.0);
}

TEST(Music, WithoutSmoothingCoherentPairMerges) {
  MusicOptions opts;
  opts.subarray = 8;  // no smoothing
  const auto x =
      snapshots_for({plane_path(50, 1.0), plane_path(115, 0.9)});
  const MusicResult res = default_music(opts).estimate(x);
  // Coherent sources: rank-1 signal subspace — MUSIC sees one source.
  EXPECT_EQ(res.num_sources, 1u);
}

TEST(Music, SubspaceDimensionsConsistent) {
  const auto x = snapshots_for({plane_path(60, 1.0)});
  const MusicResult res = default_music().estimate(x);
  EXPECT_EQ(res.subarray, 6u);  // default for M=8
  EXPECT_EQ(res.noise_subspace.rows(), 6u);
  EXPECT_EQ(res.signal_subspace.cols(), res.num_sources);
  EXPECT_EQ(res.noise_subspace.cols() + res.signal_subspace.cols(), 6u);
  EXPECT_EQ(res.eigenvalues.size(), 6u);
}

TEST(Music, SpectrumPeakDominatesFloor) {
  const auto x = snapshots_for({plane_path(85, 1.0)});
  const MusicResult res = default_music().estimate(x);
  const double peak = res.spectrum.value_at(rf::deg2rad(85));
  const double floor = res.spectrum.value_at(rf::deg2rad(30));
  EXPECT_GT(peak, 50.0 * floor);
}

TEST(Music, ForwardOnlySmoothingAlsoWorks) {
  MusicOptions opts;
  opts.forward_backward = false;
  opts.subarray = 5;
  const auto x =
      snapshots_for({plane_path(45, 1.0), plane_path(130, 0.8)});
  const MusicResult res = default_music(opts).estimate(x);
  PeakOptions po;
  po.max_peaks = 2;
  const auto peaks = find_peaks(res.spectrum, po);
  ASSERT_EQ(peaks.size(), 2u);
}

/// Angle sweep: single source recovered across the usable field of view.
class MusicAngleSweep : public ::testing::TestWithParam<double> {};

TEST_P(MusicAngleSweep, RecoversAngle) {
  const double truth = GetParam();
  const auto x = snapshots_for({plane_path(truth, 1.0)}, 17);
  const MusicResult res = default_music().estimate(x);
  const auto peaks = find_peaks(res.spectrum);
  ASSERT_FALSE(peaks.empty());
  EXPECT_NEAR(rf::rad2deg(peaks[0].theta), truth, 1.5);
}

INSTANTIATE_TEST_SUITE_P(Angles, MusicAngleSweep,
                         ::testing::Values(20.0, 40.0, 60.0, 75.0, 90.0,
                                           105.0, 125.0, 150.0, 165.0));

/// SNR sweep: angle error grows as SNR falls but stays bounded above
/// 10 dB.
class MusicSnrSweep : public ::testing::TestWithParam<double> {};

TEST_P(MusicSnrSweep, BoundedErrorDownToModerateSnr) {
  const double snr = GetParam();
  const auto x = snapshots_for({plane_path(70, 1.0)}, 23, snr);
  const MusicResult res = default_music().estimate(x);
  const auto peaks = find_peaks(res.spectrum);
  ASSERT_FALSE(peaks.empty());
  EXPECT_NEAR(rf::rad2deg(peaks[0].theta), 70.0, snr >= 20.0 ? 1.5 : 4.0);
}

INSTANTIATE_TEST_SUITE_P(Snrs, MusicSnrSweep,
                         ::testing::Values(10.0, 15.0, 20.0, 30.0, 40.0));

TEST(Music, ThreeCoherentSourcesResolved) {
  const auto x = snapshots_for(
      {plane_path(40, 1.0), plane_path(90, 0.9), plane_path(140, 0.8)}, 31,
      35.0, 48);
  const MusicResult res = default_music().estimate(x);
  PeakOptions po;
  po.max_peaks = 3;
  po.min_relative_height = 0.01;
  const auto peaks = find_peaks(res.spectrum, po);
  ASSERT_EQ(peaks.size(), 3u);
  std::vector<double> angles;
  for (const auto& p : peaks) angles.push_back(rf::rad2deg(p.theta));
  std::sort(angles.begin(), angles.end());
  EXPECT_NEAR(angles[0], 40.0, 3.0);
  EXPECT_NEAR(angles[1], 90.0, 3.0);
  EXPECT_NEAR(angles[2], 140.0, 3.0);
}

}  // namespace
}  // namespace dwatch::core
