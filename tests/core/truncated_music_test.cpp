// Truncated-vs-dense agreement on the golden-spectrum fixtures: with
// MusicOptions::max_signal_rank set, the truncated eigensolver path
// must reproduce the dense estimate — same source count, spectra equal
// to a tight relative tolerance — on the exact scenes the goldens pin.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdint>
#include <vector>

#include "core/music.hpp"
#include "core/pmusic.hpp"
#include "linalg/complex_matrix.hpp"
#include "rf/constants.hpp"

namespace dwatch::core {
namespace {

constexpr double kSpacing = 0.163;
constexpr double kLambda = 2.0 * kSpacing;

/// Same generator as golden_spectrum_test.cpp (kept in sync by the
/// shared-seed spot check below producing identical estimates).
struct Lcg {
  std::uint64_t state;
  explicit Lcg(std::uint64_t seed) : state(seed) {}
  double uniform() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  }
};

linalg::CMatrix golden_snapshots(std::size_t num_elements,
                                 std::uint64_t seed) {
  const double thetas[2] = {0.7, 1.9};
  const double amplitudes[2] = {1.0, 0.45};
  const std::size_t num_snapshots = 16;
  Lcg lcg(seed);
  linalg::CMatrix x(num_elements, num_snapshots);
  for (std::size_t n = 0; n < num_snapshots; ++n) {
    const double symbol_phase = rf::kTwoPi * lcg.uniform();
    for (std::size_t m = 0; m < num_elements; ++m) {
      std::complex<double> v{0.0, 0.0};
      for (int k = 0; k < 2; ++k) {
        const double steer = rf::kTwoPi * kSpacing *
                             static_cast<double>(m) * std::cos(thetas[k]) /
                             kLambda;
        v += amplitudes[k] *
             std::complex<double>(std::cos(steer + symbol_phase),
                                  std::sin(steer + symbol_phase));
      }
      v += std::complex<double>(1e-3 * (lcg.uniform() - 0.5),
                                1e-3 * (lcg.uniform() - 0.5));
      x(m, n) = v;
    }
  }
  return x;
}

double worst_relative_drift(const AngularSpectrum& a,
                            const AngularSpectrum& b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst,
                     std::abs(a[i] - b[i]) / std::max(std::abs(b[i]), 1.0));
  }
  return worst;
}

TEST(TruncatedMusic, SmallArrayFallsBackToDense) {
  // m = 4 -> subarray l = 3; with K = 2 the truncated path bails
  // (k + 1 >= l) and the result must be the dense one, bit for bit.
  MusicOptions truncated_opts;
  truncated_opts.max_signal_rank = 2;
  const MusicEstimator dense(kSpacing, kLambda);
  const MusicEstimator capped(kSpacing, kLambda, truncated_opts);
  const linalg::CMatrix x = golden_snapshots(4, 0xD0A0 + 4);

  const MusicResult d = dense.estimate(x);
  const MusicResult t = capped.estimate(x);
  EXPECT_FALSE(t.truncated);
  EXPECT_EQ(t.num_sources, d.num_sources);
  ASSERT_EQ(t.spectrum.size(), d.spectrum.size());
  for (std::size_t i = 0; i < t.spectrum.size(); ++i) {
    EXPECT_EQ(t.spectrum[i], d.spectrum[i]) << "i=" << i;
  }
}

TEST(TruncatedMusic, EightElementGoldenSceneAgreesWithDense) {
  // m = 8 -> subarray l = 6, K = 2: genuinely truncated.
  MusicOptions truncated_opts;
  truncated_opts.max_signal_rank = 2;
  const MusicEstimator dense(kSpacing, kLambda);
  const MusicEstimator capped(kSpacing, kLambda, truncated_opts);
  const linalg::CMatrix x = golden_snapshots(8, 0xD0A0 + 8);

  const MusicResult d = dense.estimate(x);
  const MusicResult t = capped.estimate(x);
  ASSERT_TRUE(t.truncated);
  EXPECT_EQ(t.num_sources, d.num_sources);
  EXPECT_EQ(t.subarray, d.subarray);

  // The top-K eigenvalues are the dense ones (to solver tolerance) and
  // the synthetic tail conserves the trace.
  ASSERT_EQ(t.eigenvalues.size(), d.eigenvalues.size());
  for (std::size_t j = 0; j < t.num_sources; ++j) {
    EXPECT_NEAR(t.eigenvalues[j], d.eigenvalues[j],
                1e-7 * std::abs(d.eigenvalues[0]))
        << "j=" << j;
  }
  double t_sum = 0.0;
  double d_sum = 0.0;
  for (std::size_t j = 0; j < t.eigenvalues.size(); ++j) {
    t_sum += t.eigenvalues[j];
    d_sum += d.eigenvalues[j];
  }
  EXPECT_NEAR(t_sum, d_sum, 1e-6 * std::abs(d_sum));

  // The truncated path never forms the noise subspace...
  EXPECT_EQ(t.noise_subspace.rows(), 0u);
  // ...yet the complement-identity spectrum matches the dense one.
  EXPECT_LE(worst_relative_drift(t.spectrum, d.spectrum), 1e-6);
}

TEST(TruncatedMusic, PMusicOmegaAgreesUnderTruncation) {
  PMusicOptions truncated_opts;
  truncated_opts.music.max_signal_rank = 2;
  const PMusicEstimator dense(kSpacing, kLambda);
  const PMusicEstimator capped(kSpacing, kLambda, truncated_opts);
  const linalg::CMatrix x = golden_snapshots(8, 0xD0A0 + 8);

  const PMusicResult d = dense.estimate(x);
  const PMusicResult t = capped.estimate(x);
  ASSERT_TRUE(t.music.truncated);
  EXPECT_LE(worst_relative_drift(t.omega, d.omega), 1e-6);
  EXPECT_LE(worst_relative_drift(t.power, d.power), 1e-12);  // same PB path
}

TEST(TruncatedMusic, RankOneCapLimitsSourceCount) {
  MusicOptions opts;
  opts.max_signal_rank = 1;
  const MusicEstimator capped(kSpacing, kLambda, opts);
  const MusicResult t = capped.estimate(golden_snapshots(8, 0xD0A0 + 8));
  ASSERT_TRUE(t.truncated);
  EXPECT_LE(t.num_sources, 1u);
  EXPECT_EQ(t.signal_subspace.cols(), t.num_sources);
}

TEST(TruncatedMusic, EigenvalueListStaysDescending) {
  MusicOptions opts;
  opts.max_signal_rank = 2;
  const MusicEstimator capped(kSpacing, kLambda, opts);
  const MusicResult t = capped.estimate(golden_snapshots(8, 0xD0A0 + 8));
  ASSERT_TRUE(t.truncated);
  for (std::size_t j = 1; j < t.eigenvalues.size(); ++j) {
    EXPECT_GE(t.eigenvalues[j - 1], t.eigenvalues[j]) << "j=" << j;
  }
}

}  // namespace
}  // namespace dwatch::core
