// Golden-spectrum regression: fixed-seed MUSIC and P-MUSIC spectra for
// 4- and 8-element arrays, compared sample-by-sample against checked-in
// reference data with a 1e-9 drift budget.
//
// The point is to pin the NUMERICS: an eigensolver tweak, a correlation
// refactor, or an optimization pass that silently shifts spectra by more
// than noise shows up here before it shows up as a localization
// regression. Inputs are synthesized with pure arithmetic and a local
// LCG — no std:: distributions, whose sequences are
// implementation-defined and would make the goldens non-portable.
//
// Regenerating after an INTENDED numeric change:
//   DWATCH_REGEN_GOLDEN=1 ./core_tests --gtest_filter='GoldenSpectrum*'
// then commit the rewritten files under tests/core/golden/.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/music.hpp"
#include "core/pmusic.hpp"
#include "linalg/complex_matrix.hpp"
#include "rf/constants.hpp"

namespace dwatch::core {
namespace {

constexpr double kSpacing = 0.163;        // m, the repo's default ULA pitch
constexpr double kLambda = 2.0 * kSpacing;  // half-wavelength array
constexpr double kDriftBudget = 1e-9;

/// Minimal deterministic generator: 64-bit LCG (MMIX constants), top 53
/// bits as a uniform double in [0, 1). Identical on every platform.
struct Lcg {
  std::uint64_t state;
  explicit Lcg(std::uint64_t seed) : state(seed) {}
  double uniform() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  }
};

/// Two coherent sources + weak noise, all arithmetic deterministic.
linalg::CMatrix golden_snapshots(std::size_t num_elements,
                                 std::uint64_t seed) {
  const double thetas[2] = {0.7, 1.9};     // rad
  const double amplitudes[2] = {1.0, 0.45};
  const std::size_t num_snapshots = 16;
  Lcg lcg(seed);
  linalg::CMatrix x(num_elements, num_snapshots);
  for (std::size_t n = 0; n < num_snapshots; ++n) {
    // One tag symbol per snapshot, shared by both paths (coherent
    // backscatter, the case spatial smoothing exists for).
    const double symbol_phase = rf::kTwoPi * lcg.uniform();
    for (std::size_t m = 0; m < num_elements; ++m) {
      std::complex<double> v{0.0, 0.0};
      for (int k = 0; k < 2; ++k) {
        const double steer = rf::kTwoPi * kSpacing *
                             static_cast<double>(m) * std::cos(thetas[k]) /
                             kLambda;
        v += amplitudes[k] *
             std::complex<double>(std::cos(steer + symbol_phase),
                                  std::sin(steer + symbol_phase));
      }
      v += std::complex<double>(1e-3 * (lcg.uniform() - 0.5),
                                1e-3 * (lcg.uniform() - 0.5));
      x(m, n) = v;
    }
  }
  return x;
}

std::string golden_path(const std::string& name) {
  return std::string(DWATCH_GOLDEN_DIR) + "/" + name + ".txt";
}

std::vector<double> load_golden(const std::string& name) {
  std::ifstream in(golden_path(name));
  std::vector<double> values;
  double v = 0.0;
  while (in >> v) values.push_back(v);
  return values;
}

void store_golden(const std::string& name, const std::vector<double>& values) {
  std::ofstream out(golden_path(name));
  out.precision(17);
  for (const double v : values) out << v << "\n";
}

void check_against_golden(const std::string& name,
                          const AngularSpectrum& spectrum) {
  if (std::getenv("DWATCH_REGEN_GOLDEN") != nullptr) {
    store_golden(name, spectrum.values());
    GTEST_SKIP() << "regenerated " << golden_path(name);
  }
  const std::vector<double> golden = load_golden(name);
  ASSERT_EQ(golden.size(), spectrum.size())
      << "missing or stale golden file " << golden_path(name)
      << " (regenerate with DWATCH_REGEN_GOLDEN=1)";
  double worst = 0.0;
  std::size_t worst_idx = 0;
  for (std::size_t i = 0; i < golden.size(); ++i) {
    const double drift = std::abs(spectrum[i] - golden[i]);
    if (drift > worst) {
      worst = drift;
      worst_idx = i;
    }
  }
  EXPECT_LE(worst, kDriftBudget)
      << name << " drifted at sample " << worst_idx << " (theta = "
      << spectrum.theta_at(worst_idx) << " rad): golden "
      << golden[worst_idx] << " vs computed " << spectrum[worst_idx];
}

class GoldenSpectrum : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GoldenSpectrum, MusicSpectrumIsStable) {
  const std::size_t m = GetParam();
  const MusicEstimator music(kSpacing, kLambda);
  const MusicResult result =
      music.estimate(golden_snapshots(m, 0xD0A0 + m));
  check_against_golden("music" + std::to_string(m), result.spectrum);
}

TEST_P(GoldenSpectrum, PMusicSpectrumIsStable) {
  const std::size_t m = GetParam();
  const PMusicEstimator pmusic(kSpacing, kLambda);
  const PMusicResult result =
      pmusic.estimate(golden_snapshots(m, 0xD0A0 + m));
  check_against_golden("pmusic" + std::to_string(m), result.omega);
}

INSTANTIATE_TEST_SUITE_P(Arrays, GoldenSpectrum, ::testing::Values(4, 8),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return std::to_string(i.param) + "elements";
                         });

TEST(GoldenSpectrum, InputSynthesisIsSelfConsistent) {
  // The generator itself must be reproducible, or golden comparisons
  // would chase noise: two independent syntheses are bit-identical.
  const linalg::CMatrix a = golden_snapshots(8, 0xD0A8);
  const linalg::CMatrix b = golden_snapshots(8, 0xD0A8);
  for (std::size_t m = 0; m < a.rows(); ++m) {
    for (std::size_t n = 0; n < a.cols(); ++n) {
      EXPECT_EQ(a(m, n), b(m, n));
    }
  }
}

}  // namespace
}  // namespace dwatch::core
