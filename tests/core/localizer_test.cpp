// Tests for likelihood localization with consensus outlier rejection.
#include "core/localizer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "rf/constants.hpp"

namespace dwatch::core {
namespace {

/// Four arrays on the edges of a 7 x 10 room, like the room deployments.
std::vector<rf::UniformLinearArray> room_arrays() {
  return {
      rf::UniformLinearArray({3.5, 0.15, 1.25}, {1, 0}, 8),
      rf::UniformLinearArray({3.5, 9.85, 1.25}, {1, 0}, 8),
      rf::UniformLinearArray({0.15, 5.0, 1.25}, {0, 1}, 8),
      rf::UniformLinearArray({6.85, 5.0, 1.25}, {0, 1}, 8),
  };
}

SearchBounds room_bounds() { return {{0.0, 0.0}, {7.0, 10.0}}; }

PathDrop drop_at(double theta, double power = 1.0,
                 std::uint32_t source = 0) {
  PathDrop d;
  d.theta = theta;
  d.drop_fraction = 0.9;
  d.baseline_power = power;
  d.online_power = 0.05 * power;
  d.source_id = source;
  return d;
}

/// Evidence pointing exactly at `target` from every array.
std::vector<AngularEvidence> evidence_for(
    const std::vector<rf::UniformLinearArray>& arrays, rf::Vec2 target,
    std::size_t num_arrays = 4) {
  std::vector<AngularEvidence> ev(arrays.size());
  for (std::size_t i = 0; i < num_arrays && i < arrays.size(); ++i) {
    ev[i].drops.push_back(
        drop_at(arrays[i].arrival_angle_planar(target), 1.0,
                static_cast<std::uint32_t>(100 + i)));
  }
  return ev;
}

Localizer default_localizer(LocalizerOptions opts = {}) {
  return Localizer(room_arrays(), room_bounds(), opts);
}

TEST(Localizer, ValidatesConstruction) {
  EXPECT_THROW(Localizer({}, room_bounds()), std::invalid_argument);
  EXPECT_THROW(Localizer(room_arrays(), {{1, 1}, {1, 2}}),
               std::invalid_argument);
  LocalizerOptions bad;
  bad.grid_step = 0.0;
  EXPECT_THROW(Localizer(room_arrays(), room_bounds(), bad),
               std::invalid_argument);
}

TEST(Localizer, EvidenceCountMismatchThrows) {
  const Localizer loc = default_localizer();
  const std::vector<AngularEvidence> wrong(2);
  EXPECT_THROW((void)loc.localize(wrong), std::invalid_argument);
  EXPECT_THROW((void)loc.likelihood_at({1, 1}, wrong),
               std::invalid_argument);
}

TEST(Localizer, FourArrayConsensusPinpointsTarget) {
  const Localizer loc = default_localizer();
  const rf::Vec2 target{3.0, 4.0};
  const auto ev = evidence_for(room_arrays(), target);
  const LocationEstimate est = loc.localize(ev);
  ASSERT_TRUE(est.valid);
  EXPECT_EQ(est.consensus, 4u);
  EXPECT_NEAR(rf::distance(est.position, target), 0.0, 0.1);
}

TEST(Localizer, TwoArraysSuffice) {
  const Localizer loc = default_localizer();
  const rf::Vec2 target{2.0, 7.0};
  const auto ev = evidence_for(room_arrays(), target, 2);
  const LocationEstimate est = loc.localize(ev);
  ASSERT_TRUE(est.valid);
  EXPECT_NEAR(rf::distance(est.position, target), 0.0, 0.15);
}

TEST(Localizer, OneArrayIsNotCovered) {
  const Localizer loc = default_localizer();
  const auto ev = evidence_for(room_arrays(), {3.0, 4.0}, 1);
  EXPECT_FALSE(loc.localize(ev).valid);
}

TEST(Localizer, NoEvidenceInvalid) {
  const Localizer loc = default_localizer();
  const std::vector<AngularEvidence> ev(4);
  EXPECT_FALSE(loc.localize(ev).valid);
  EXPECT_FALSE(loc.localize_best_effort(ev).valid);
}

TEST(Localizer, WrongAngleOutvotedByConsensus) {
  const Localizer loc = default_localizer();
  const auto arrays = room_arrays();
  const rf::Vec2 target{3.0, 4.0};
  auto ev = evidence_for(arrays, target);  // 4 true drops
  // Add a strong wrong-angle drop at one array (a ghost).
  ev[0].drops.push_back(drop_at(
      arrays[0].arrival_angle_planar({6.0, 8.0}), 1.2, 100));
  const LocationEstimate est = loc.localize(ev);
  ASSERT_TRUE(est.valid);
  EXPECT_NEAR(rf::distance(est.position, target), 0.0, 0.15);
}

TEST(Localizer, PowerWeightingPrefersStrongDrop) {
  // Two 2-array candidate intersections; the stronger pair must win.
  const Localizer loc = default_localizer();
  const auto arrays = room_arrays();
  const rf::Vec2 strong{2.0, 3.0};
  const rf::Vec2 weak{5.0, 7.0};
  std::vector<AngularEvidence> ev(4);
  ev[0].drops.push_back(
      drop_at(arrays[0].arrival_angle_planar(strong), 1.0, 1));
  ev[2].drops.push_back(
      drop_at(arrays[2].arrival_angle_planar(strong), 1.0, 2));
  ev[1].drops.push_back(
      drop_at(arrays[1].arrival_angle_planar(weak), 0.05, 3));
  ev[3].drops.push_back(
      drop_at(arrays[3].arrival_angle_planar(weak), 0.05, 4));
  const LocationEstimate est = loc.localize(ev);
  ASSERT_TRUE(est.valid);
  EXPECT_NEAR(rf::distance(est.position, strong), 0.0, 0.2);
}

TEST(Localizer, BestEffortFallsBackWithoutConsensus) {
  LocalizerOptions opts;
  opts.min_arrays = 3;  // strict: 2-array candidates won't reach consensus
  const Localizer loc = default_localizer(opts);
  const rf::Vec2 target{3.0, 4.0};
  const auto ev = evidence_for(room_arrays(), target, 2);
  EXPECT_FALSE(loc.localize(ev).valid);
  const LocationEstimate be = loc.localize_best_effort(ev);
  EXPECT_FALSE(be.valid);
  EXPECT_GT(be.likelihood, 0.0);
  EXPECT_NEAR(rf::distance(be.position, target), 0.0, 0.3);
}

TEST(Localizer, HillClimbingMatchesExhaustive) {
  LocalizerOptions grid_opts;
  LocalizerOptions hill_opts;
  hill_opts.hill_climbing = true;
  hill_opts.hill_climb_starts = 25;
  const Localizer grid_loc = default_localizer(grid_opts);
  const Localizer hill_loc = default_localizer(hill_opts);
  const rf::Vec2 target{4.2, 6.3};
  const auto ev = evidence_for(room_arrays(), target);
  const auto g = grid_loc.localize(ev);
  const auto h = hill_loc.localize(ev);
  ASSERT_TRUE(g.valid);
  ASSERT_TRUE(h.valid);
  EXPECT_NEAR(rf::distance(g.position, h.position), 0.0, 0.12);
}

TEST(Localizer, GridShapeAndContent) {
  LocalizerOptions opts;
  opts.grid_step = 0.5;
  const Localizer loc = default_localizer(opts);
  const auto ev = evidence_for(room_arrays(), {3.0, 4.0});
  const LikelihoodGrid grid = loc.likelihood_grid(ev);
  EXPECT_EQ(grid.nx, 15u);  // 7.0 / 0.5 + 1
  EXPECT_EQ(grid.ny, 21u);
  EXPECT_EQ(grid.values.size(), grid.nx * grid.ny);
  // Max near the target.
  double best = 0.0;
  rf::Vec2 best_p;
  for (std::size_t iy = 0; iy < grid.ny; ++iy) {
    for (std::size_t ix = 0; ix < grid.nx; ++ix) {
      if (grid.at(ix, iy) > best) {
        best = grid.at(ix, iy);
        best_p = grid.point(ix, iy);
      }
    }
  }
  EXPECT_NEAR(rf::distance(best_p, {3.0, 4.0}), 0.0, 0.5);
}

TEST(Localizer, NearArrayPointsExcluded) {
  const Localizer loc = default_localizer();
  const auto ev = evidence_for(room_arrays(), {3.0, 4.0});
  EXPECT_DOUBLE_EQ(loc.likelihood_at({3.5, 0.15}, ev), 0.0);
}

TEST(LocalizerMulti, SeparatesTwoTargets) {
  const Localizer loc = default_localizer();
  const auto arrays = room_arrays();
  const rf::Vec2 t1{2.0, 3.0};
  const rf::Vec2 t2{5.0, 7.5};
  std::vector<AngularEvidence> ev(4);
  for (std::size_t i = 0; i < 4; ++i) {
    ev[i].drops.push_back(drop_at(arrays[i].arrival_angle_planar(t1), 1.0,
                                  static_cast<std::uint32_t>(10 + i)));
    ev[i].drops.push_back(drop_at(arrays[i].arrival_angle_planar(t2), 0.9,
                                  static_cast<std::uint32_t>(20 + i)));
  }
  const auto hits = loc.localize_multi(ev, 3, 0.5);
  ASSERT_GE(hits.size(), 2u);
  const double d11 = rf::distance(hits[0].position, t1);
  const double d12 = rf::distance(hits[0].position, t2);
  EXPECT_LT(std::min(d11, d12), 0.25);
  const double d21 = rf::distance(hits[1].position, t1);
  const double d22 = rf::distance(hits[1].position, t2);
  EXPECT_LT(std::min(d21, d22), 0.25);
  // The two hits are not the same target.
  EXPECT_GT(rf::distance(hits[0].position, hits[1].position), 0.5);
}

TEST(LocalizerMulti, MinSeparationMergesCloseTargets) {
  const Localizer loc = default_localizer();
  const auto arrays = room_arrays();
  const rf::Vec2 t1{3.0, 5.0};
  const rf::Vec2 t2{3.15, 5.1};  // closer than min separation
  std::vector<AngularEvidence> ev(4);
  for (std::size_t i = 0; i < 4; ++i) {
    ev[i].drops.push_back(drop_at(arrays[i].arrival_angle_planar(t1), 1.0,
                                  static_cast<std::uint32_t>(10 + i)));
    ev[i].drops.push_back(drop_at(arrays[i].arrival_angle_planar(t2), 1.0,
                                  static_cast<std::uint32_t>(20 + i)));
  }
  const auto hits = loc.localize_multi(ev, 3, 0.5);
  EXPECT_EQ(hits.size(), 1u);
}

TEST(LocalizerMulti, ZeroTargetsRequested) {
  const Localizer loc = default_localizer();
  const auto ev = evidence_for(room_arrays(), {3.0, 4.0});
  EXPECT_TRUE(loc.localize_multi(ev, 0).empty());
}

TEST(Localizer, SelectMaxLikelihoodScansUnsortedCandidates) {
  // Regression: the best-effort fallback used to read candidates.front()
  // on the assumption the producer returned a sorted list. Feed an
  // UNSORTED list with the true maximum buried at the back and assert
  // the explicit max scan finds it anyway.
  std::vector<LocationEstimate> candidates{
      {{1.0, 1.0}, 0.4, 0, false},
      {{2.0, 2.0}, 0.1, 0, false},
      {{5.0, 9.0}, 0.7, 0, false},  // front() would have returned 0.4
  };
  const LocationEstimate top = Localizer::select_max_likelihood(candidates);
  EXPECT_DOUBLE_EQ(top.likelihood, 0.7);
  EXPECT_DOUBLE_EQ(top.position.x, 5.0);
  EXPECT_DOUBLE_EQ(top.position.y, 9.0);
  EXPECT_DOUBLE_EQ(Localizer::select_max_likelihood({}).likelihood, 0.0);
}

TEST(Localizer, CandidateOrderBreaksLikelihoodTiesByPosition) {
  // The total order must rank strictly through likelihood ties (grid
  // scan order: y, then x) — otherwise the kMaxCandidates cap would be
  // permutation-dependent again.
  const LocationEstimate a{{2.0, 3.0}, 0.5, 0, false};
  const LocationEstimate b{{1.0, 4.0}, 0.5, 0, false};
  const LocationEstimate c{{3.0, 3.0}, 0.5, 0, false};
  EXPECT_TRUE(Localizer::candidate_order(a, b));   // y 3 < 4
  EXPECT_FALSE(Localizer::candidate_order(b, a));
  EXPECT_TRUE(Localizer::candidate_order(a, c));   // tie y, x 2 < 3
  EXPECT_FALSE(Localizer::candidate_order(a, a));  // irreflexive
}

TEST(Localizer, BestEffortHonorsHillClimbingMode) {
  // Regression: the no-consensus fallback always re-searched with the
  // exhaustive grid even when the localizer was configured for hill
  // climbing. Mode is detectable from the answer itself: grid
  // candidates sit exactly on the 0.05 lattice, while hill-climb
  // positions step by whole grid_steps from the seed lattice. In this
  // room the x seeds (7 * (s + 0.5) / 4 = 0.875, 2.625, ...) are half a
  // step off the grid, so a hill-climb answer can NEVER have an
  // on-lattice x. (The y seeds happen to be grid multiples — 10 doesn't
  // have that property — so only x discriminates the mode.)
  LocalizerOptions opts;
  opts.min_arrays = 3;  // 2-array evidence cannot reach consensus
  opts.hill_climbing = true;
  const Localizer loc = default_localizer(opts);
  const rf::Vec2 target{3.0, 4.0};
  const auto ev = evidence_for(room_arrays(), target, 2);
  EXPECT_FALSE(loc.localize(ev).valid);

  const LocationEstimate be = loc.localize_best_effort(ev);
  EXPECT_FALSE(be.valid);
  ASSERT_GT(be.likelihood, 0.0);
  EXPECT_NEAR(rf::distance(be.position, target), 0.0, 0.3);
  const auto off_lattice = [](double v) {
    const double r = std::fmod(v, 0.05);
    return std::min(r, 0.05 - r) > 0.01;
  };
  EXPECT_TRUE(off_lattice(be.position.x));
}

TEST(Localizer, ConsensusSelectionIsOrderIndependent) {
  // Regression: the kMaxCandidates cap used to keep the FIRST 24
  // candidates in production order, so a permutation of the same list
  // could change which candidates were even scored. Bury the true
  // (highest-likelihood, consensus-backed) candidate behind 30 decoys
  // and check every rotation of the list selects the same fix.
  const Localizer loc = default_localizer();
  const rf::Vec2 target{3.0, 4.0};
  const auto ev = evidence_for(room_arrays(), target);
  const double norm = Localizer::global_drop_norm(ev);

  std::vector<LocationEstimate> candidates;
  for (std::size_t i = 0; i < 30; ++i) {  // > kMaxCandidates decoys
    const rf::Vec2 p{0.5 + 0.1 * static_cast<double>(i), 9.5};
    candidates.push_back(
        {p, loc.likelihood_at(p, ev, norm), 0, false});
  }
  candidates.push_back(
      {target, loc.likelihood_at(target, ev, norm), 0, false});

  const LocationEstimate ref =
      loc.consensus_select(candidates, ev, norm, loc.options().min_arrays);
  ASSERT_TRUE(ref.valid);
  EXPECT_NEAR(rf::distance(ref.position, target), 0.0, 1e-12);

  for (std::size_t shift = 1; shift < candidates.size(); shift += 7) {
    std::vector<LocationEstimate> rotated = candidates;
    std::rotate(rotated.begin(),
                rotated.begin() + static_cast<std::ptrdiff_t>(shift),
                rotated.end());
    const LocationEstimate got =
        loc.consensus_select(rotated, ev, norm, loc.options().min_arrays);
    EXPECT_DOUBLE_EQ(got.position.x, ref.position.x);
    EXPECT_DOUBLE_EQ(got.position.y, ref.position.y);
    EXPECT_DOUBLE_EQ(got.likelihood, ref.likelihood);
    EXPECT_EQ(got.consensus, ref.consensus);
    EXPECT_EQ(got.valid, ref.valid);
  }
}

TEST(Localizer, GlobalDropNormIsMaxAbsoluteDrop) {
  std::vector<AngularEvidence> ev(2);
  ev[0].drops.push_back(drop_at(1.0, 2.0));   // drop = 2 - 0.1 = 1.9
  ev[1].drops.push_back(drop_at(1.5, 0.5));   // drop = 0.475
  EXPECT_NEAR(Localizer::global_drop_norm(ev), 1.9, 1e-12);
  EXPECT_DOUBLE_EQ(Localizer::global_drop_norm({}), 0.0);
}

}  // namespace
}  // namespace dwatch::core
