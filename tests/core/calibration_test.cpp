// Tests for the wireless phase calibration (paper Section 4.1).
#include "core/calibration.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/covariance.hpp"
#include "linalg/hermitian_eig.hpp"
#include "rf/array.hpp"
#include "rf/noise.hpp"
#include "rf/snapshot.hpp"

namespace dwatch::core {
namespace {

constexpr std::size_t kM = 8;

std::vector<double> test_offsets() {
  return {0.0, 0.7, -1.1, 2.0, 0.3, -0.6, 1.4, -2.2};
}

rf::PropagationPath plane_path(double theta_deg, double amp) {
  rf::PropagationPath p;
  p.kind = rf::PathKind::kDirect;
  p.vertices = {{-10, 0, 1}, {0, 0, 1}};
  p.length = 10.0;
  p.aoa = rf::deg2rad(theta_deg);
  p.gain = {amp, 0.0};
  return p;
}

/// K calibration measurements with known LoS angles and a given
/// multipath amplitude ratio.
std::vector<CalibrationMeasurement> make_measurements(
    std::size_t k, double multipath_ratio, std::uint64_t seed) {
  const rf::UniformLinearArray ula({0, 0, 1}, {1, 0}, kM);
  rf::Rng rng(seed);
  std::vector<CalibrationMeasurement> out;
  for (std::size_t i = 0; i < k; ++i) {
    const double los_deg = 25.0 + 130.0 * static_cast<double>(i) /
                                      std::max<std::size_t>(k - 1, 1);
    std::vector<rf::PropagationPath> paths{plane_path(los_deg, 0.02)};
    if (multipath_ratio > 0.0) {
      paths.push_back(plane_path(
          std::fmod(los_deg + 70.0, 170.0) + 5.0, 0.02 * multipath_ratio));
    }
    rf::SnapshotOptions opts;
    opts.num_snapshots = 24;
    opts.noise_sigma = rf::noise_sigma_for_snr(paths, 1.0, 30.0);
    opts.port_phase_offsets = test_offsets();
    CalibrationMeasurement m;
    m.snapshots = rf::synthesize_snapshots(ula, paths, {}, opts, rng);
    m.los_angle = rf::deg2rad(los_deg);
    out.push_back(std::move(m));
  }
  return out;
}

WirelessCalibrator default_calibrator() {
  return WirelessCalibrator(rf::kDefaultElementSpacing,
                            rf::kDefaultWavelength);
}

TEST(Calibration, ValidatesConstructionAndInput) {
  EXPECT_THROW(WirelessCalibrator(0.0, 0.3), std::invalid_argument);
  rf::Rng rng(1);
  const WirelessCalibrator cal = default_calibrator();
  EXPECT_THROW((void)cal.calibrate({}, rng), std::invalid_argument);
}

TEST(Calibration, CleanLosRecoversOffsets) {
  rf::Rng rng(2);
  const auto meas = make_measurements(6, 0.0, 11);
  const CalibrationResult res = default_calibrator().calibrate(meas, rng);
  ASSERT_EQ(res.offsets.size(), kM);
  EXPECT_DOUBLE_EQ(res.offsets[0], 0.0);
  EXPECT_LT(mean_phase_error(res.offsets, test_offsets()), 0.03);
}

TEST(Calibration, ToleratesModerateMultipath) {
  rf::Rng rng(3);
  const auto meas = make_measurements(8, 0.2, 13);
  const CalibrationResult res = default_calibrator().calibrate(meas, rng);
  // Paper Fig. 9: < 0.05 rad with >= 4 tags. Allow a little slack for a
  // single seed.
  EXPECT_LT(mean_phase_error(res.offsets, test_offsets()), 0.08);
}

TEST(Calibration, MoreTagsImproveAccuracy) {
  rf::Rng rng1(5);
  rf::Rng rng2(5);
  const auto few = make_measurements(1, 0.25, 17);
  const auto many = make_measurements(10, 0.25, 17);
  const double err_few = mean_phase_error(
      default_calibrator().calibrate(few, rng1).offsets, test_offsets());
  const double err_many = mean_phase_error(
      default_calibrator().calibrate(many, rng2).offsets, test_offsets());
  EXPECT_LT(err_many, err_few + 0.02);
}

TEST(Calibration, InconsistentAntennaCountThrows) {
  rf::Rng rng(1);
  auto meas = make_measurements(2, 0.0, 19);
  meas[1].snapshots = linalg::CMatrix(4, 8);
  EXPECT_THROW((void)default_calibrator().calibrate(meas, rng),
               std::invalid_argument);
}

TEST(Calibration, ObjectiveValidation) {
  const WirelessCalibrator cal = default_calibrator();
  const std::vector<linalg::CMatrix> empty;
  const std::vector<double> angles;
  const std::vector<double> tail(kM - 1, 0.0);
  EXPECT_THROW((void)cal.objective(empty, angles, tail),
               std::invalid_argument);
}

TEST(Calibration, ObjectiveMinimalAtTruth) {
  // Build noise subspaces from clean single-path captures and check the
  // objective is (much) smaller at the true offsets than at zero.
  rf::Rng rng(7);
  const auto meas = make_measurements(4, 0.0, 23);
  std::vector<linalg::CMatrix> noise_subspaces;
  std::vector<double> angles;
  for (const auto& m : meas) {
    const auto r = sample_correlation(m.snapshots);
    const auto eig = linalg::hermitian_eig(r);
    noise_subspaces.push_back(eig.eigenvectors.block(0, 1, kM, kM - 1));
    angles.push_back(m.los_angle);
  }
  const WirelessCalibrator cal = default_calibrator();
  const auto truth = test_offsets();
  const std::vector<double> truth_tail(truth.begin() + 1, truth.end());
  const std::vector<double> zero_tail(kM - 1, 0.0);
  const double at_truth = cal.objective(noise_subspaces, angles, truth_tail);
  const double at_zero = cal.objective(noise_subspaces, angles, zero_tail);
  EXPECT_LT(at_truth, 0.05 * at_zero);
}

TEST(ApplyPhaseCorrection, RemovesInjectedOffsets) {
  const rf::UniformLinearArray ula({0, 0, 1}, {1, 0}, kM);
  const std::vector<rf::PropagationPath> paths{plane_path(70, 1.0)};
  rf::SnapshotOptions clean_opts;
  clean_opts.num_snapshots = 4;
  clean_opts.noise_sigma = 0.0;
  rf::Rng rng1(5);
  const auto clean =
      rf::synthesize_snapshots(ula, paths, {}, clean_opts, rng1);

  rf::SnapshotOptions offset_opts = clean_opts;
  offset_opts.port_phase_offsets = test_offsets();
  rf::Rng rng2(5);
  auto corrupted =
      rf::synthesize_snapshots(ula, paths, {}, offset_opts, rng2);
  apply_phase_correction(corrupted, test_offsets());
  EXPECT_NEAR(corrupted.max_abs_diff(clean), 0.0, 1e-10);
}

TEST(ApplyPhaseCorrection, SizeMismatchThrows) {
  linalg::CMatrix x(4, 2);
  const std::vector<double> wrong(3, 0.0);
  EXPECT_THROW(apply_phase_correction(x, wrong), std::invalid_argument);
}

TEST(MeanPhaseError, WrapsAndIgnoresReference) {
  const std::vector<double> a{0.0, 3.0, -3.0};
  const std::vector<double> b{99.0, -3.0, 3.0};  // ref element ignored
  // Each tail error is |wrap(6.0)| = 2*pi - 6 ~ 0.2832.
  EXPECT_NEAR(mean_phase_error(a, b), rf::kTwoPi - 6.0, 1e-9);
  EXPECT_THROW((void)mean_phase_error(a, std::vector<double>{0.0, 1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace dwatch::core
