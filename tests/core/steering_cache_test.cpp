// Steering manifold cache: keying, sharing, and exact equivalence of the
// cached (batched) spectrum paths against the per-angle reference.
#include "core/steering_cache.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/covariance.hpp"
#include "core/music.hpp"
#include "core/pmusic.hpp"
#include "rf/array.hpp"
#include "rf/noise.hpp"
#include "rf/snapshot.hpp"

namespace dwatch::core {
namespace {

constexpr double kSpacing = 0.1625;
constexpr double kLambda = 0.325;

linalg::CMatrix synth_snapshots(std::size_t elements,
                                const std::vector<double>& angles,
                                std::uint64_t seed) {
  const rf::UniformLinearArray array({0, 0, 1.0}, {1, 0}, elements, kSpacing);
  std::vector<rf::PropagationPath> paths;
  std::vector<double> scale;
  for (const double a : angles) {
    rf::PropagationPath p;
    p.kind = rf::PathKind::kDirect;
    p.vertices = {{-10, 0, 1.0}, array.center()};
    p.length = 10.0;
    p.aoa = a;
    p.gain = {1.0, 0.0};
    paths.push_back(p);
    scale.push_back(1.0);
  }
  rf::SnapshotOptions opts;
  opts.num_snapshots = 32;
  opts.noise_sigma = rf::noise_sigma_for_snr(paths, 1.0, 30.0);
  rf::Rng rng(seed);
  return rf::synthesize_snapshots(array, paths, scale, opts, rng);
}

TEST(SteeringManifold, MatchesSteeringVectorExactly) {
  const SteeringManifold manifold(8, kSpacing, kLambda, 181);
  ASSERT_EQ(manifold.elements(), 8u);
  ASSERT_EQ(manifold.grid_points(), 181u);
  for (std::size_t i = 0; i < manifold.grid_points(); i += 17) {
    const linalg::CVector a =
        rf::steering_vector(8, manifold.theta_at(i), kSpacing, kLambda);
    for (std::size_t m = 0; m < 8; ++m) {
      EXPECT_EQ(manifold.matrix()(m, i), a[m])
          << "element " << m << " grid " << i;
    }
  }
}

TEST(SteeringManifold, GridMatchesAngularSpectrum) {
  const SteeringManifold manifold(4, kSpacing, kLambda, 361);
  const AngularSpectrum reference(361);
  for (std::size_t i = 0; i < 361; i += 31) {
    EXPECT_DOUBLE_EQ(manifold.theta_at(i), reference.theta_at(i));
  }
}

TEST(SteeringManifold, RejectsBadArguments) {
  EXPECT_THROW(SteeringManifold(0, kSpacing, kLambda, 10),
               std::invalid_argument);
  EXPECT_THROW(SteeringManifold(4, kSpacing, kLambda, 1),
               std::invalid_argument);
  EXPECT_THROW(SteeringManifold(4, -1.0, kLambda, 10),
               std::invalid_argument);
  EXPECT_THROW(SteeringManifold(4, kSpacing, 0.0, 10),
               std::invalid_argument);
}

TEST(SteeringCache, SharesOneManifoldPerKey) {
  SteeringCache cache;
  const auto a = cache.get(8, kSpacing, kLambda, 361);
  const auto b = cache.get(8, kSpacing, kLambda, 361);
  EXPECT_EQ(a.get(), b.get());  // identical object, not a rebuild
  EXPECT_EQ(cache.size(), 1u);

  // Any key component change is a different manifold.
  EXPECT_NE(cache.get(6, kSpacing, kLambda, 361).get(), a.get());
  EXPECT_NE(cache.get(8, kSpacing * 1.5, kLambda, 361).get(), a.get());
  EXPECT_NE(cache.get(8, kSpacing, kLambda * 1.5, 361).get(), a.get());
  EXPECT_NE(cache.get(8, kSpacing, kLambda, 181).get(), a.get());
  EXPECT_EQ(cache.size(), 5u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(a->elements(), 8u);  // outstanding handle survives clear()
}

/// The tentpole equivalence guarantee: MUSIC spectra computed through
/// the cached manifold (noise_spectrum) match the per-angle
/// spectrum_value reference to 1e-12.
TEST(SteeringCache, MusicSpectrumMatchesUncachedPath) {
  const linalg::CMatrix x =
      synth_snapshots(8, {rf::deg2rad(60.0), rf::deg2rad(115.0)}, 7);
  const MusicEstimator music(kSpacing, kLambda);
  const MusicResult result = music.estimate(x);

  for (std::size_t i = 0; i < result.spectrum.size(); ++i) {
    const double reference =
        music.spectrum_value(result.noise_subspace, result.spectrum.theta_at(i));
    EXPECT_NEAR(result.spectrum[i], reference,
                1e-12 * std::max(1.0, std::abs(reference)))
        << "grid point " << i;
  }
}

/// Same guarantee for the P-MUSIC beamforming power spectrum (Eq. 13):
/// batched quadratic form vs per-angle steering_vector + matvec.
TEST(SteeringCache, PowerSpectrumMatchesUncachedPath) {
  const linalg::CMatrix x =
      synth_snapshots(8, {rf::deg2rad(45.0), rf::deg2rad(100.0)}, 11);
  const linalg::CMatrix r = sample_correlation(x);
  const PMusicEstimator pmusic(kSpacing, kLambda);
  const AngularSpectrum pb = pmusic.power_spectrum(r);

  for (std::size_t i = 0; i < pb.size(); ++i) {
    const linalg::CVector a =
        rf::steering_vector(r.rows(), pb.theta_at(i), kSpacing, kLambda);
    const linalg::CVector ra = linalg::matvec(r, a);
    const double reference =
        std::max(linalg::inner_product(a, ra).real(), 0.0) /
        static_cast<double>(r.rows() * r.rows());
    EXPECT_NEAR(pb[i], reference, 1e-12 * std::max(1.0, reference))
        << "grid point " << i;
  }
}

}  // namespace
}  // namespace dwatch::core
