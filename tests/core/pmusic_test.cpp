// Tests for P-MUSIC: honest per-path power + MUSIC angular resolution
// (paper Section 4.2).
#include "core/pmusic.hpp"

#include <gtest/gtest.h>

#include "core/covariance.hpp"
#include "rf/array.hpp"
#include "rf/noise.hpp"
#include "rf/snapshot.hpp"

namespace dwatch::core {
namespace {

rf::PropagationPath plane_path(double theta_deg, double amp) {
  rf::PropagationPath p;
  p.kind = rf::PathKind::kDirect;
  p.vertices = {{-10, 0, 1}, {0, 0, 1}};
  p.length = 10.0;
  p.aoa = rf::deg2rad(theta_deg);
  p.gain = {amp, 0.0};
  return p;
}

linalg::CMatrix snapshots_for(const std::vector<rf::PropagationPath>& paths,
                              std::uint64_t seed = 4, double snr_db = 35.0) {
  const rf::UniformLinearArray ula({0, 0, 1}, {1, 0}, 8);
  rf::SnapshotOptions opts;
  opts.num_snapshots = 32;
  opts.noise_sigma = rf::noise_sigma_for_snr(paths, 1.0, snr_db);
  rf::Rng rng(seed);
  return rf::synthesize_snapshots(ula, paths, {}, opts, rng);
}

PMusicEstimator default_pmusic() {
  return PMusicEstimator(rf::kDefaultElementSpacing, rf::kDefaultWavelength);
}

TEST(PMusic, ValidatesConstruction) {
  EXPECT_THROW(PMusicEstimator(-1.0, 0.3), std::invalid_argument);
}

TEST(PMusic, PowerSpectrumValidatesInput) {
  const PMusicEstimator pm = default_pmusic();
  EXPECT_THROW((void)pm.power_spectrum(linalg::CMatrix(3, 4)),
               std::invalid_argument);
}

TEST(PMusic, SinglePathPowerEqualsGainSquared) {
  // The headline property: Omega at the peak estimates |s_p|^2.
  const double amp = 0.037;
  const auto x = snapshots_for({plane_path(64, amp)});
  const PMusicResult res = default_pmusic().estimate(x);
  EXPECT_NEAR(res.omega.value_at(rf::deg2rad(64)), amp * amp,
              0.1 * amp * amp);
}

TEST(PMusic, TwoPathPowersBothHonest) {
  const double a1 = 0.02;
  const double a2 = 0.008;
  const auto x =
      snapshots_for({plane_path(55, a1), plane_path(125, a2)});
  const PMusicResult res = default_pmusic().estimate(x);
  EXPECT_NEAR(res.omega.value_at(rf::deg2rad(55)), a1 * a1, 0.25 * a1 * a1);
  // The weak path's estimate also collects Bartlett sidelobe leakage from
  // the strong path (~ -13 dB of a1^2), so bound it from both sides
  // rather than demanding exactness.
  const double weak = res.omega.value_at(rf::deg2rad(125));
  EXPECT_GT(weak, 0.5 * a2 * a2);
  EXPECT_LT(weak, a2 * a2 + 0.2 * a1 * a1);
}

TEST(PMusic, PowerRatioPreserved) {
  // MUSIC peak heights do NOT preserve the power ratio; Omega must.
  const auto x =
      snapshots_for({plane_path(50, 1.0), plane_path(120, 0.5)});
  const PMusicResult res = default_pmusic().estimate(x);
  const double r_omega = res.omega.value_at(rf::deg2rad(50)) /
                         res.omega.value_at(rf::deg2rad(120));
  EXPECT_NEAR(r_omega, 4.0, 1.2);  // power ratio (1.0/0.5)^2
}

TEST(PMusic, NormalizedMusicPeaksAreUnit) {
  const auto x =
      snapshots_for({plane_path(60, 1.0), plane_path(110, 0.6)});
  const PMusicResult res = default_pmusic().estimate(x);
  PeakOptions po;
  po.max_peaks = 2;
  for (const Peak& p : find_peaks(res.music_nor, po)) {
    EXPECT_NEAR(p.value, 1.0, 0.05);
  }
}

TEST(PMusic, OmegaIsProductOfComponents) {
  const auto x = snapshots_for({plane_path(75, 1.0)});
  const PMusicResult res = default_pmusic().estimate(x);
  for (std::size_t i = 0; i < res.omega.size(); i += 17) {
    EXPECT_NEAR(res.omega[i], res.power[i] * res.music_nor[i], 1e-12);
  }
}

TEST(PMusic, PowerSpectrumEqualsBeamformerQuadraticForm) {
  const auto x = snapshots_for({plane_path(80, 0.5)});
  const linalg::CMatrix r = sample_correlation(x);
  const PMusicEstimator pm = default_pmusic();
  const AngularSpectrum pb = pm.power_spectrum(r);
  // Hand-computed Bartlett at one angle.
  const double theta = rf::deg2rad(80);
  const linalg::CVector a = rf::steering_vector(
      8, theta, rf::kDefaultElementSpacing, rf::kDefaultWavelength);
  const linalg::Complex quad =
      linalg::inner_product(a, linalg::matvec(r, a));
  EXPECT_NEAR(pb.value_at(theta), quad.real() / 64.0,
              1e-6 * std::abs(quad.real()));
}

TEST(PMusic, BlockedPathPowerDropsOnlyAtItsAngle) {
  // The Fig. 12 behaviour: attenuate one of two paths and compare.
  const std::vector<rf::PropagationPath> paths{plane_path(55, 0.02),
                                               plane_path(125, 0.02)};
  const rf::UniformLinearArray ula({0, 0, 1}, {1, 0}, 8);
  rf::SnapshotOptions opts;
  opts.num_snapshots = 32;
  opts.noise_sigma = rf::noise_sigma_for_snr(paths, 1.0, 35.0);
  rf::Rng rng1(5);
  rf::Rng rng2(5);
  const auto base = rf::synthesize_snapshots(ula, paths, {}, opts, rng1);
  const std::vector<double> blocked_scale{1.0, 0.25};
  const auto blocked =
      rf::synthesize_snapshots(ula, paths, blocked_scale, opts, rng2);

  const PMusicEstimator pm = default_pmusic();
  const auto omega_base = pm.estimate(base).omega;
  const auto power_online =
      pm.power_spectrum(sample_correlation(blocked));

  const double unblocked_ratio = power_online.value_at(rf::deg2rad(55)) /
                                 omega_base.value_at(rf::deg2rad(55));
  const double blocked_ratio = power_online.value_at(rf::deg2rad(125)) /
                               omega_base.value_at(rf::deg2rad(125));
  EXPECT_GT(unblocked_ratio, 0.7);   // unchanged peak stays put
  EXPECT_LT(blocked_ratio, 0.3);     // blocked peak clearly drops
}

/// Amplitude sweep: power estimation stays within 20% across a dynamic
/// range of path amplitudes.
class PMusicAmplitudeSweep : public ::testing::TestWithParam<double> {};

TEST_P(PMusicAmplitudeSweep, HonestPower) {
  const double amp = GetParam();
  const auto x = snapshots_for({plane_path(72, amp)}, 29);
  const PMusicResult res = default_pmusic().estimate(x);
  EXPECT_NEAR(res.omega.value_at(rf::deg2rad(72)) / (amp * amp), 1.0, 0.2);
}

INSTANTIATE_TEST_SUITE_P(Amps, PMusicAmplitudeSweep,
                         ::testing::Values(1e-3, 1e-2, 0.1, 1.0, 10.0));

}  // namespace
}  // namespace dwatch::core
