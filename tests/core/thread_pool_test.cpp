// Thread pool: task execution, exception propagation, and the
// parallel_for determinism contract.
#include "core/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace dwatch::core {
namespace {

TEST(ThreadPool, ResolvesWorkerCount) {
  ThreadPool fixed(3);
  EXPECT_EQ(fixed.num_workers(), 3u);
  ThreadPool automatic(0);
  EXPECT_GE(automatic.num_workers(), 1u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  std::future<void> ok = pool.submit([] {});
  std::future<void> bad =
      pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  for (const std::size_t workers : {1u, 2u, 5u}) {
    ThreadPool pool(workers);
    std::vector<int> hits(1000, 0);
    pool.parallel_for(hits.size(), [&hits](std::size_t i) { ++hits[i]; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000)
        << workers << " workers";
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i], 1) << "index " << i << ", " << workers
                            << " workers";
    }
  }
}

TEST(ThreadPool, ParallelForHandlesSmallAndEmptyRanges) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.parallel_for(0, [&counter](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 0);
  pool.parallel_for(3, [&counter](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 3);  // fewer items than workers
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&completed](std::size_t i) {
                          if (i == 57) throw std::runtime_error("boom");
                          ++completed;
                        }),
      std::runtime_error);
  // The throwing chunk stops at the throw, but every other chunk still
  // runs to completion (no cross-chunk cancellation): at least the
  // other three 25-index chunks finished.
  EXPECT_GE(completed.load(), 75);
  EXPECT_LE(completed.load(), 99);
}

TEST(ThreadPool, ResultsAreDeterministicAcrossWorkerCounts) {
  // The contract the pipeline relies on: each index writes its own slot,
  // so the output is identical for any worker count.
  const auto run = [](std::size_t workers) {
    ThreadPool pool(workers);
    std::vector<double> out(512);
    pool.parallel_for(out.size(), [&out](std::size_t i) {
      out[i] = static_cast<double>(i * i) / 3.0;
    });
    return out;
  };
  const std::vector<double> serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(7), serial);
}

}  // namespace
}  // namespace dwatch::core
