// Tests for angular spectra, peak finding and the P-MUSIC normalization.
#include "core/spectrum.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dwatch::core {
namespace {

AngularSpectrum gaussians(std::vector<std::pair<double, double>> peaks,
                          std::size_t n = 361, double sigma = 0.05) {
  AngularSpectrum s(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double theta = s.theta_at(i);
    for (const auto& [mu, amp] : peaks) {
      s[i] += amp * std::exp(-(theta - mu) * (theta - mu) /
                             (2.0 * sigma * sigma));
    }
  }
  return s;
}

TEST(AngularSpectrum, Validation) {
  EXPECT_THROW(AngularSpectrum(1), std::invalid_argument);
  EXPECT_THROW(AngularSpectrum(std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(AngularSpectrum, ThetaGridSpansZeroToPi) {
  const AngularSpectrum s(181);
  EXPECT_DOUBLE_EQ(s.theta_at(0), 0.0);
  EXPECT_DOUBLE_EQ(s.theta_at(180), rf::kPi);
  EXPECT_NEAR(s.theta_at(90), rf::kPi / 2, 1e-12);
}

TEST(AngularSpectrum, ValueAtInterpolates) {
  AngularSpectrum s(3);  // thetas: 0, pi/2, pi
  s[0] = 0.0;
  s[1] = 2.0;
  s[2] = 4.0;
  EXPECT_DOUBLE_EQ(s.value_at(rf::kPi / 4), 1.0);
  EXPECT_DOUBLE_EQ(s.value_at(3 * rf::kPi / 4), 3.0);
  EXPECT_DOUBLE_EQ(s.value_at(-1.0), 0.0);      // clamped low
  EXPECT_DOUBLE_EQ(s.value_at(10.0), 4.0);      // clamped high
}

TEST(AngularSpectrum, IndexOfRoundsToNearest) {
  const AngularSpectrum s(181);  // 1-degree grid
  EXPECT_EQ(s.index_of(rf::deg2rad(45.4)), 45u);
  EXPECT_EQ(s.index_of(rf::deg2rad(45.6)), 46u);
  EXPECT_EQ(s.index_of(-5.0), 0u);
  EXPECT_EQ(s.index_of(100.0), 180u);
}

TEST(AngularSpectrum, MinMaxAndScale) {
  AngularSpectrum s = gaussians({{1.0, 5.0}});
  EXPECT_NEAR(s.max_value(), 5.0, 0.05);
  EXPECT_GE(s.min_value(), 0.0);
  s *= 2.0;
  EXPECT_NEAR(s.max_value(), 10.0, 0.1);
}

TEST(FindPeaks, SinglePeakRefined) {
  const double mu = rf::deg2rad(62.3);  // off-grid
  const AngularSpectrum s = gaussians({{mu, 3.0}});
  const auto peaks = find_peaks(s);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_NEAR(peaks[0].theta, mu, rf::deg2rad(0.2));  // sub-bin accuracy
  EXPECT_NEAR(peaks[0].value, 3.0, 0.01);
}

TEST(FindPeaks, SortedStrongestFirst) {
  const AngularSpectrum s =
      gaussians({{0.6, 1.0}, {1.4, 3.0}, {2.4, 2.0}});
  const auto peaks = find_peaks(s);
  ASSERT_EQ(peaks.size(), 3u);
  EXPECT_GT(peaks[0].value, peaks[1].value);
  EXPECT_GT(peaks[1].value, peaks[2].value);
  EXPECT_NEAR(peaks[0].theta, 1.4, 0.01);
}

TEST(FindPeaks, RelativeHeightFloor) {
  const AngularSpectrum s = gaussians({{0.6, 1.0}, {2.0, 100.0}});
  PeakOptions opts;
  opts.min_relative_height = 0.05;
  const auto peaks = find_peaks(s, opts);
  EXPECT_EQ(peaks.size(), 1u);  // the 1.0 peak is 1% of max: dropped
}

TEST(FindPeaks, MaxPeaksCap) {
  const AngularSpectrum s =
      gaussians({{0.5, 3.0}, {1.2, 2.5}, {1.9, 2.0}, {2.6, 1.5}});
  PeakOptions opts;
  opts.max_peaks = 2;
  const auto peaks = find_peaks(s, opts);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_NEAR(peaks[0].theta, 0.5, 0.02);
  EXPECT_NEAR(peaks[1].theta, 1.2, 0.02);
}

TEST(FindPeaks, MinSeparationSuppressesShoulder) {
  // Two overlapping Gaussians 1 degree apart blur into one detection.
  const double mu = rf::deg2rad(90.0);
  const AngularSpectrum s =
      gaussians({{mu, 3.0}, {mu + rf::deg2rad(1.0), 2.9}});
  const auto peaks = find_peaks(s);
  EXPECT_EQ(peaks.size(), 1u);
}

TEST(FindPeaks, PlateauYieldsOnePeak) {
  AngularSpectrum s(101);
  for (std::size_t i = 40; i <= 60; ++i) s[i] = 1.0;
  const auto peaks = find_peaks(s);
  EXPECT_EQ(peaks.size(), 1u);
}

TEST(FindPeaks, EndpointPeaks) {
  AngularSpectrum s(101);
  s[0] = 5.0;
  s[100] = 3.0;
  const auto peaks = find_peaks(s);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_DOUBLE_EQ(peaks[0].theta, 0.0);
  EXPECT_DOUBLE_EQ(peaks[1].theta, rf::kPi);
}

TEST(NormalizePeaks, AllPeaksBecomeUnit) {
  const AngularSpectrum s =
      gaussians({{0.6, 1.0}, {1.5, 5.0}, {2.5, 0.4}});
  PeakOptions opts;
  opts.min_relative_height = 0.05;
  const AngularSpectrum nor = normalize_peaks(s, opts);
  const auto peaks = find_peaks(nor, opts);
  ASSERT_EQ(peaks.size(), 3u);
  for (const Peak& p : peaks) {
    EXPECT_NEAR(p.value, 1.0, 0.02) << "at " << p.theta;
  }
}

TEST(NormalizePeaks, PreservesPeakLocations) {
  const AngularSpectrum s = gaussians({{0.7, 2.0}, {2.2, 6.0}});
  const AngularSpectrum nor = normalize_peaks(s);
  const auto orig = find_peaks(s);
  const auto after = find_peaks(nor);
  ASSERT_EQ(orig.size(), after.size());
  // Compare as sets sorted by angle.
  auto by_theta = [](const Peak& a, const Peak& b) {
    return a.theta < b.theta;
  };
  auto o = orig;
  auto n = after;
  std::sort(o.begin(), o.end(), by_theta);
  std::sort(n.begin(), n.end(), by_theta);
  for (std::size_t i = 0; i < o.size(); ++i) {
    EXPECT_NEAR(o[i].theta, n[i].theta, rf::deg2rad(0.5));
  }
}

TEST(NormalizePeaks, PeaklessSpectrumScaledByMax) {
  AngularSpectrum s(11);
  for (std::size_t i = 0; i < 11; ++i) {
    s[i] = static_cast<double>(i);  // monotone: single endpoint peak
  }
  const AngularSpectrum nor = normalize_peaks(s);
  EXPECT_LE(nor.max_value(), 1.0 + 1e-12);
}

TEST(NormalizePeaks, ZeroSpectrumStaysZero) {
  const AngularSpectrum s(51);
  const AngularSpectrum nor = normalize_peaks(s);
  EXPECT_DOUBLE_EQ(nor.max_value(), 0.0);
}

/// Property: normalization never produces values above ~1 within peak
/// regions for well-separated peaks of any relative amplitude.
class NormalizeSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(NormalizeSweepTest, BoundedByOne) {
  const double amp = GetParam();
  const AngularSpectrum s = gaussians({{0.8, amp}, {2.2, 1.0}});
  const AngularSpectrum nor = normalize_peaks(s);
  EXPECT_LE(nor.max_value(), 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Amplitudes, NormalizeSweepTest,
                         ::testing::Values(0.1, 0.5, 1.0, 3.0, 10.0, 100.0));

}  // namespace
}  // namespace dwatch::core
