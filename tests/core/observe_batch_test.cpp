// observe_batch determinism: the parallel per-tag pipeline must produce
// results bit-identical to serial observe() loops for every worker
// count and any input order.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "rf/noise.hpp"
#include "rf/snapshot.hpp"

namespace dwatch::core {
namespace {

std::vector<rf::UniformLinearArray> two_arrays() {
  return {
      rf::UniformLinearArray({3.5, 0.15, 1.25}, {1, 0}, 8),
      rf::UniformLinearArray({0.15, 5.0, 1.25}, {0, 1}, 8),
  };
}

SearchBounds bounds() { return {{0.0, 0.0}, {7.0, 10.0}}; }

linalg::CMatrix synth(const rf::UniformLinearArray& array,
                      const std::vector<double>& angles_rad,
                      const std::vector<double>& amps,
                      const std::vector<double>& scale, std::uint64_t seed) {
  std::vector<rf::PropagationPath> paths;
  for (std::size_t i = 0; i < angles_rad.size(); ++i) {
    rf::PropagationPath p;
    p.kind = rf::PathKind::kDirect;
    p.vertices = {{-10, 0, 1.25}, array.center()};
    p.length = 10.0;
    p.aoa = angles_rad[i];
    p.gain = {amps[i], 0.0};
    paths.push_back(p);
  }
  rf::SnapshotOptions opts;
  opts.num_snapshots = 16;
  opts.noise_sigma = rf::noise_sigma_for_snr(paths, 1.0, 35.0);
  rf::Rng rng(seed);
  return rf::synthesize_snapshots(array, paths, scale, opts, rng);
}

constexpr std::size_t kTags = 6;

std::vector<double> tag_angles(std::size_t array_idx, std::size_t tag) {
  return {rf::deg2rad(40.0 + 6.0 * static_cast<double>(tag) +
                      10.0 * static_cast<double>(array_idx)),
          rf::deg2rad(130.0 - 4.0 * static_cast<double>(tag))};
}

std::uint64_t seed_of(std::size_t array_idx, std::size_t tag, bool online) {
  return 1000 + 100 * array_idx + 10 * tag + (online ? 1 : 0);
}

DWatchPipeline make_pipeline(std::size_t workers) {
  PipelineOptions options;
  options.num_workers = workers;
  DWatchPipeline pipe(two_arrays(), bounds(), options);
  const auto arrays = two_arrays();
  const std::vector<double> amps{0.02, 0.012};
  for (std::size_t a = 0; a < arrays.size(); ++a) {
    for (std::size_t t = 0; t < kTags; ++t) {
      pipe.add_baseline(a, rfid::Epc96::for_tag_index(
                               static_cast<std::uint32_t>(t)),
                        synth(arrays[a], tag_angles(a, t), amps, {},
                              seed_of(a, t, false)));
    }
  }
  return pipe;
}

/// The online batch: the first path of every even tag is blocked at
/// array 0, odd tags at array 1, so both arrays accumulate real drops.
/// One extra item has no baseline (exercises the skip path).
std::vector<BatchObservation> make_batch() {
  const auto arrays = two_arrays();
  const std::vector<double> amps{0.02, 0.012};
  std::vector<BatchObservation> batch;
  for (std::size_t a = 0; a < arrays.size(); ++a) {
    for (std::size_t t = 0; t < kTags; ++t) {
      const bool blocked = (t % 2) == (a % 2);
      BatchObservation item;
      item.array_idx = a;
      item.epc = rfid::Epc96::for_tag_index(static_cast<std::uint32_t>(t));
      item.snapshots =
          synth(arrays[a], tag_angles(a, t), amps,
                blocked ? std::vector<double>{0.15, 1.0}
                        : std::vector<double>{},
                seed_of(a, t, true));
      batch.push_back(std::move(item));
    }
  }
  BatchObservation unknown;
  unknown.array_idx = 0;
  unknown.epc = rfid::Epc96::for_tag_index(999);
  unknown.snapshots = synth(arrays[0], tag_angles(0, 0), amps, {}, 4242);
  batch.push_back(std::move(unknown));
  return batch;
}

void expect_identical_evidence(const std::vector<AngularEvidence>& got,
                               const std::vector<AngularEvidence>& want,
                               const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t a = 0; a < got.size(); ++a) {
    ASSERT_EQ(got[a].drops.size(), want[a].drops.size())
        << label << " array " << a;
    for (std::size_t d = 0; d < got[a].drops.size(); ++d) {
      const PathDrop& g = got[a].drops[d];
      const PathDrop& w = want[a].drops[d];
      // Bit-identical, not approximately equal.
      EXPECT_EQ(g.theta, w.theta) << label << " a" << a << " d" << d;
      EXPECT_EQ(g.drop_fraction, w.drop_fraction)
          << label << " a" << a << " d" << d;
      EXPECT_EQ(g.baseline_power, w.baseline_power)
          << label << " a" << a << " d" << d;
      EXPECT_EQ(g.online_power, w.online_power)
          << label << " a" << a << " d" << d;
      EXPECT_EQ(g.source_id, w.source_id) << label << " a" << a << " d" << d;
    }
  }
}

TEST(ObserveBatch, MatchesSerialObserveLoopForEveryWorkerCount) {
  const std::vector<BatchObservation> batch = make_batch();

  // Serial reference: observe() one by one in the batch's deterministic
  // merge order (array index, then EPC, then input position).
  std::vector<std::size_t> order(batch.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&batch](std::size_t x, std::size_t y) {
                     return std::tie(batch[x].array_idx, batch[x].epc) <
                            std::tie(batch[y].array_idx, batch[y].epc);
                   });
  DWatchPipeline reference = make_pipeline(1);
  reference.begin_epoch();
  std::size_t reference_drops = 0;
  for (const std::size_t i : order) {
    reference_drops += reference.observe(batch[i].array_idx, batch[i].epc,
                                         batch[i].snapshots);
  }
  ASSERT_GT(reference_drops, 0u) << "fixture produced no drops";
  const auto ref_evidence = reference.evidence();
  const auto ref_filtered = reference.filtered_evidence();
  const LocationEstimate ref_fix = reference.localize_best_effort();

  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, hw}) {
    DWatchPipeline pipe = make_pipeline(workers);
    pipe.begin_epoch();
    const std::size_t drops = pipe.observe_batch(batch);
    const std::string label = "workers=" + std::to_string(workers);
    EXPECT_EQ(drops, reference_drops) << label;
    expect_identical_evidence(pipe.evidence(), ref_evidence, label);
    expect_identical_evidence(pipe.filtered_evidence(), ref_filtered,
                              label + " filtered");
    const LocationEstimate fix = pipe.localize_best_effort();
    EXPECT_EQ(fix.position.x, ref_fix.position.x) << label;
    EXPECT_EQ(fix.position.y, ref_fix.position.y) << label;
    EXPECT_EQ(fix.likelihood, ref_fix.likelihood) << label;
    EXPECT_EQ(fix.consensus, ref_fix.consensus) << label;
    EXPECT_EQ(fix.valid, ref_fix.valid) << label;
    EXPECT_EQ(pipe.stats().observations, reference.stats().observations)
        << label;
    EXPECT_EQ(pipe.stats().observations_skipped,
              reference.stats().observations_skipped)
        << label;
    EXPECT_EQ(pipe.stats().drops_detected, reference.stats().drops_detected)
        << label;
  }
}

TEST(ObserveBatch, InputOrderDoesNotAffectResults) {
  std::vector<BatchObservation> batch = make_batch();
  DWatchPipeline forward = make_pipeline(2);
  forward.begin_epoch();
  (void)forward.observe_batch(batch);

  std::reverse(batch.begin(), batch.end());
  DWatchPipeline reversed = make_pipeline(2);
  reversed.begin_epoch();
  (void)reversed.observe_batch(batch);

  expect_identical_evidence(reversed.evidence(), forward.evidence(),
                            "reversed input");
}

TEST(ObserveBatch, ValidatesArrayIndexUpFront) {
  DWatchPipeline pipe = make_pipeline(2);
  std::vector<BatchObservation> batch = make_batch();
  batch.front().array_idx = 99;
  pipe.begin_epoch();
  EXPECT_THROW((void)pipe.observe_batch(batch), std::out_of_range);
  // Nothing was merged: the epoch is still clean.
  for (const auto& e : pipe.evidence()) EXPECT_TRUE(e.drops.empty());
}

TEST(ObserveBatch, RepeatedEpochsAreReproducible) {
  const std::vector<BatchObservation> batch = make_batch();
  DWatchPipeline pipe = make_pipeline(2);
  pipe.begin_epoch();
  (void)pipe.observe_batch(batch);
  const auto first = pipe.evidence();
  pipe.begin_epoch();
  (void)pipe.observe_batch(batch);
  expect_identical_evidence(pipe.evidence(), first, "second epoch");
}

}  // namespace
}  // namespace dwatch::core
