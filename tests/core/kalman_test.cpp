// Tests for the constant-velocity Kalman tracker.
#include "core/kalman.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rf/noise.hpp"

namespace dwatch::core {
namespace {

TEST(Kalman, ValidatesOptions) {
  KalmanOptions bad;
  bad.dt = 0.0;
  EXPECT_THROW(KalmanTracker{bad}, std::invalid_argument);
  bad = KalmanOptions{};
  bad.measurement_sigma = 0.0;
  EXPECT_THROW(KalmanTracker{bad}, std::invalid_argument);
}

TEST(Kalman, FirstMeasurementInitializes) {
  KalmanTracker kf;
  EXPECT_FALSE(kf.initialized());
  const rf::Vec2 p = kf.update({2.0, 3.0});
  EXPECT_TRUE(kf.initialized());
  EXPECT_EQ(p, (rf::Vec2{2.0, 3.0}));
}

TEST(Kalman, ConvergesToConstantVelocity) {
  KalmanOptions opts;
  opts.dt = 0.1;
  KalmanTracker kf(opts);
  for (int k = 0; k < 60; ++k) {
    (void)kf.update({0.08 * k, 1.0 - 0.03 * k});
  }
  EXPECT_NEAR(kf.velocity().x, 0.8, 0.05);
  EXPECT_NEAR(kf.velocity().y, -0.3, 0.05);
}

TEST(Kalman, SmoothsNoiseBelowMeasurementSigma) {
  KalmanOptions opts;
  opts.dt = 0.1;
  opts.measurement_sigma = 0.15;
  opts.process_accel = 0.5;
  KalmanTracker kf(opts);
  rf::Rng rng(9);
  double err_sum = 0.0;
  int count = 0;
  for (int k = 0; k < 200; ++k) {
    const rf::Vec2 truth{1.0 + 0.05 * k, 2.0};
    const rf::Vec2 meas{truth.x + rng.normal(0.0, 0.15),
                        truth.y + rng.normal(0.0, 0.15)};
    const rf::Vec2 est = kf.update(meas);
    if (k > 30) {
      err_sum += rf::distance(est, truth);
      ++count;
    }
  }
  // Mean filtered error comfortably below the raw measurement noise
  // (raw mean error of 2-D N(0, 0.15 I) is ~0.19 m).
  EXPECT_LT(err_sum / count, 0.13);
}

TEST(Kalman, CoastingGrowsUncertainty) {
  KalmanOptions opts;
  opts.dt = 0.1;
  KalmanTracker kf(opts);
  for (int k = 0; k < 20; ++k) (void)kf.update({0.05 * k, 0.0});
  const double sigma_before = kf.position_sigma();
  ASSERT_TRUE(kf.coast().has_value());
  ASSERT_TRUE(kf.coast().has_value());
  EXPECT_GT(kf.position_sigma(), sigma_before);
  // And an update shrinks it again.
  (void)kf.update({0.05 * 22, 0.0});
  EXPECT_LT(kf.position_sigma(), kf.position_sigma() + 1.0);
  EXPECT_EQ(kf.consecutive_misses(), 0u);
}

TEST(Kalman, CoastPredictsAlongVelocity) {
  KalmanOptions opts;
  opts.dt = 0.1;
  KalmanTracker kf(opts);
  for (int k = 0; k < 40; ++k) (void)kf.update({0.1 * k, 1.0});
  const double x_before = kf.position().x;
  const auto coasted = kf.coast();
  ASSERT_TRUE(coasted.has_value());
  EXPECT_NEAR(coasted->x - x_before, 0.1, 0.03);
}

TEST(Kalman, GateRejectsOutlierButTrackSurvives) {
  KalmanOptions opts;
  opts.dt = 0.1;
  opts.gate_sigmas = 3.0;
  KalmanTracker kf(opts);
  for (int k = 0; k < 30; ++k) (void)kf.update({1.0, 1.0});
  const rf::Vec2 est = kf.update({9.0, 9.0});
  EXPECT_NEAR(est.x, 1.0, 0.2);
  EXPECT_EQ(kf.consecutive_misses(), 1u);
  // Subsequent good measurement re-locks.
  (void)kf.update({1.0, 1.0});
  EXPECT_EQ(kf.consecutive_misses(), 0u);
}

TEST(Kalman, TooManyMissesResets) {
  KalmanOptions opts;
  opts.max_coast = 2;
  KalmanTracker kf(opts);
  (void)kf.update({1.0, 1.0});
  EXPECT_TRUE(kf.coast().has_value());
  EXPECT_TRUE(kf.coast().has_value());
  EXPECT_FALSE(kf.coast().has_value());
  EXPECT_FALSE(kf.initialized());
}

TEST(Kalman, UncertaintyAwareGateAcceptsAfterLongCoast) {
  // After coasting, the grown covariance must widen the gate so the
  // track can re-acquire a target that kept moving.
  KalmanOptions opts;
  opts.dt = 0.1;
  opts.gate_sigmas = 3.0;
  KalmanTracker kf(opts);
  for (int k = 0; k < 30; ++k) (void)kf.update({0.1 * k, 0.0});
  for (int k = 0; k < 6; ++k) (void)kf.coast();
  // Re-acquire 0.5 m from the prediction: inside the widened gate.
  const rf::Vec2 pred = kf.position();
  (void)kf.update({pred.x + 0.5, 0.2});
  EXPECT_EQ(kf.consecutive_misses(), 0u);
}

}  // namespace
}  // namespace dwatch::core
