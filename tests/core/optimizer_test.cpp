// Tests for the GA / gradient-descent / hybrid optimizers.
#include "core/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dwatch::core {
namespace {

double sphere(std::span<const double> x) {
  double s = 0.0;
  for (const double v : x) s += (v - 0.3) * (v - 0.3);
  return s;
}

/// Multimodal 1-D-ish function with global minimum at 0.7 in each dim.
double wavy(std::span<const double> x) {
  double s = 0.0;
  for (const double v : x) {
    s += (v - 0.7) * (v - 0.7) + 0.1 * (1.0 - std::cos(8.0 * (v - 0.7)));
  }
  return s;
}

TEST(GradientDescent, QuadraticConverges) {
  GdOptions opts;
  const OptResult res =
      gradient_descent_minimize(sphere, {5.0, -3.0, 2.0}, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.value, 0.0, 1e-8);
  for (const double v : res.x) EXPECT_NEAR(v, 0.3, 1e-4);
}

TEST(GradientDescent, EmptyStartThrows) {
  EXPECT_THROW((void)gradient_descent_minimize(sphere, {}, GdOptions{}),
               std::invalid_argument);
}

TEST(GradientDescent, AlreadyAtMinimumStaysPut) {
  const OptResult res =
      gradient_descent_minimize(sphere, {0.3, 0.3}, GdOptions{});
  EXPECT_NEAR(res.value, 0.0, 1e-12);
  EXPECT_TRUE(res.converged);
}

TEST(GradientDescent, CountsEvaluations) {
  const OptResult res =
      gradient_descent_minimize(sphere, {2.0}, GdOptions{});
  EXPECT_GT(res.evaluations, 2u);
}

TEST(Genetic, ValidatesBounds) {
  rf::Rng rng(1);
  GaOptions opts;
  const std::vector<double> lo{0.0};
  const std::vector<double> hi_bad{0.0};
  EXPECT_THROW((void)genetic_minimize(sphere, lo, hi_bad, opts, rng),
               std::invalid_argument);
  EXPECT_THROW((void)genetic_minimize(sphere, {}, {}, opts, rng),
               std::invalid_argument);
  GaOptions tiny;
  tiny.population = 2;
  const std::vector<double> hi{1.0};
  EXPECT_THROW((void)genetic_minimize(sphere, lo, hi, tiny, rng),
               std::invalid_argument);
}

TEST(Genetic, FindsSphereMinimumApproximately) {
  rf::Rng rng(7);
  GaOptions opts;
  const std::vector<double> lo(3, -2.0);
  const std::vector<double> hi(3, 2.0);
  const OptResult res = genetic_minimize(sphere, lo, hi, opts, rng);
  EXPECT_LT(res.value, 0.05);
}

TEST(Genetic, RespectsBounds) {
  rf::Rng rng(9);
  GaOptions opts;
  opts.generations = 10;
  const std::vector<double> lo(2, -1.0);
  const std::vector<double> hi(2, 1.0);
  // Minimum of sphere is at 0.3, inside bounds; just check outputs are in
  // range even with aggressive mutation.
  opts.mutation_sigma = 0.5;
  opts.periodic = false;
  const OptResult res = genetic_minimize(sphere, lo, hi, opts, rng);
  for (const double v : res.x) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Genetic, DeterministicGivenSeed) {
  GaOptions opts;
  const std::vector<double> lo(2, -2.0);
  const std::vector<double> hi(2, 2.0);
  rf::Rng a(55);
  rf::Rng b(55);
  const OptResult ra = genetic_minimize(sphere, lo, hi, opts, a);
  const OptResult rb = genetic_minimize(sphere, lo, hi, opts, b);
  EXPECT_DOUBLE_EQ(ra.value, rb.value);
  EXPECT_EQ(ra.x, rb.x);
}

TEST(Hybrid, RefinementBeatsGaAlone) {
  const std::vector<double> lo(4, -2.0);
  const std::vector<double> hi(4, 2.0);
  GaOptions ga;
  ga.generations = 25;
  rf::Rng rng1(3);
  const OptResult ga_only = genetic_minimize(wavy, lo, hi, ga, rng1);
  HybridOptions hybrid;
  hybrid.ga = ga;
  rf::Rng rng2(3);
  const OptResult refined = hybrid_minimize(wavy, lo, hi, hybrid, rng2);
  EXPECT_LE(refined.value, ga_only.value + 1e-12);
  EXPECT_LT(refined.value, 0.01);
  for (const double v : refined.x) EXPECT_NEAR(v, 0.7, 0.05);
}

TEST(Hybrid, WorksOnOneDimension) {
  HybridOptions opts;
  const std::vector<double> lo{-3.0};
  const std::vector<double> hi{3.0};
  rf::Rng rng(21);
  const OptResult res = hybrid_minimize(sphere, lo, hi, opts, rng);
  EXPECT_NEAR(res.x[0], 0.3, 1e-3);
}

/// Dimension sweep for the hybrid solver (the calibration problem size is
/// M-1 = 3..15).
class HybridDimSweep : public ::testing::TestWithParam<int> {};

TEST_P(HybridDimSweep, SolvesAcrossDimensions) {
  const int dim = GetParam();
  HybridOptions opts;
  const std::vector<double> lo(dim, -2.0);
  const std::vector<double> hi(dim, 2.0);
  rf::Rng rng(100 + dim);
  const OptResult res = hybrid_minimize(sphere, lo, hi, opts, rng);
  EXPECT_LT(res.value, 1e-4) << "dim " << dim;
}

INSTANTIATE_TEST_SUITE_P(Dims, HybridDimSweep,
                         ::testing::Values(1, 3, 5, 7, 15));

TEST(Genetic, PeriodicWrapKeepsValuesInBox) {
  // Periodic phases: mutations near the boundary must wrap, not clamp.
  rf::Rng rng(5);
  GaOptions opts;
  opts.periodic = true;
  opts.mutation_sigma = 0.4;
  opts.generations = 15;
  const std::vector<double> lo(3, -3.14159);
  const std::vector<double> hi(3, 3.14159);
  const OptResult res = genetic_minimize(
      [](std::span<const double> x) {
        double s = 0.0;
        // Periodic objective: minimum at +-pi (the seam).
        for (const double v : x) s += 1.0 + std::cos(v);
        return s;
      },
      lo, hi, opts, rng);
  EXPECT_LT(res.value, 0.05);
  for (const double v : res.x) {
    EXPECT_GE(v, -3.1416);
    EXPECT_LE(v, 3.1416);
  }
}

}  // namespace
}  // namespace dwatch::core
