// Tests for the alpha-beta trajectory tracker.
#include "core/tracker.hpp"

#include <gtest/gtest.h>

namespace dwatch::core {
namespace {

TEST(Tracker, ValidatesOptions) {
  TrackerOptions bad;
  bad.alpha = 0.0;
  EXPECT_THROW(AlphaBetaTracker{bad}, std::invalid_argument);
  bad = TrackerOptions{};
  bad.dt = 0.0;
  EXPECT_THROW(AlphaBetaTracker{bad}, std::invalid_argument);
}

TEST(Tracker, FirstMeasurementInitializes) {
  AlphaBetaTracker tracker;
  EXPECT_FALSE(tracker.initialized());
  const rf::Vec2 p = tracker.update({1.0, 2.0});
  EXPECT_TRUE(tracker.initialized());
  EXPECT_EQ(p, (rf::Vec2{1.0, 2.0}));
  EXPECT_EQ(tracker.velocity(), (rf::Vec2{0.0, 0.0}));
}

TEST(Tracker, ConvergesToConstantVelocity) {
  TrackerOptions opts;
  opts.dt = 0.1;
  AlphaBetaTracker tracker(opts);
  // Target moving at 0.5 m/s in x (the paper's fist speed).
  for (int k = 0; k < 50; ++k) {
    (void)tracker.update({0.05 * k, 1.0});
  }
  EXPECT_NEAR(tracker.velocity().x, 0.5, 0.05);
  EXPECT_NEAR(tracker.velocity().y, 0.0, 0.05);
  EXPECT_NEAR(tracker.position().x, 0.05 * 49, 0.05);
}

TEST(Tracker, SmoothsNoisyMeasurements) {
  TrackerOptions opts;
  opts.alpha = 0.3;
  opts.beta = 0.05;
  AlphaBetaTracker tracker(opts);
  // Static target with alternating +-5 cm measurement noise.
  double max_dev = 0.0;
  for (int k = 0; k < 60; ++k) {
    const double noise = (k % 2 == 0) ? 0.05 : -0.05;
    const rf::Vec2 smoothed = tracker.update({1.0 + noise, 1.0});
    if (k > 10) max_dev = std::max(max_dev, std::abs(smoothed.x - 1.0));
  }
  EXPECT_LT(max_dev, 0.03);  // smoother than the raw noise
}

TEST(Tracker, CoastsThroughMisses) {
  TrackerOptions opts;
  opts.dt = 0.1;
  AlphaBetaTracker tracker(opts);
  for (int k = 0; k < 30; ++k) (void)tracker.update({0.05 * k, 0.0});
  const double x_before = tracker.position().x;
  const auto coasted = tracker.coast();
  ASSERT_TRUE(coasted.has_value());
  EXPECT_GT(coasted->x, x_before);  // kept moving on velocity
  EXPECT_EQ(tracker.consecutive_misses(), 1u);
}

TEST(Tracker, CoastWithoutInitIsEmpty) {
  AlphaBetaTracker tracker;
  EXPECT_FALSE(tracker.coast().has_value());
}

TEST(Tracker, TooManyMissesResets) {
  TrackerOptions opts;
  opts.max_coast = 2;
  AlphaBetaTracker tracker(opts);
  (void)tracker.update({1.0, 1.0});
  EXPECT_TRUE(tracker.coast().has_value());
  EXPECT_TRUE(tracker.coast().has_value());
  EXPECT_FALSE(tracker.coast().has_value());  // exceeded: reset
  EXPECT_FALSE(tracker.initialized());
}

TEST(Tracker, GatingRejectsWildOutlier) {
  TrackerOptions opts;
  opts.gate_distance = 0.5;
  AlphaBetaTracker tracker(opts);
  for (int k = 0; k < 10; ++k) (void)tracker.update({1.0, 1.0});
  const rf::Vec2 out = tracker.update({5.0, 5.0});  // outlier
  EXPECT_NEAR(out.x, 1.0, 0.1);  // prediction, not the outlier
  EXPECT_EQ(tracker.consecutive_misses(), 1u);
}

TEST(Tracker, GatingDisabledAcceptsEverything) {
  TrackerOptions opts;
  opts.gate_distance = 0.0;
  AlphaBetaTracker tracker(opts);
  (void)tracker.update({1.0, 1.0});
  const rf::Vec2 out = tracker.update({5.0, 5.0});
  EXPECT_GT(out.x, 2.0);
}

TEST(Tracker, ResetClearsState) {
  AlphaBetaTracker tracker;
  (void)tracker.update({1.0, 1.0});
  tracker.reset();
  EXPECT_FALSE(tracker.initialized());
  EXPECT_EQ(tracker.position(), (rf::Vec2{0.0, 0.0}));
}

TEST(SmoothTrajectory, FillsGapsAndMatchesLength) {
  std::vector<std::optional<rf::Vec2>> fixes;
  for (int k = 0; k < 20; ++k) {
    if (k == 7 || k == 8) {
      fixes.emplace_back(std::nullopt);  // deadzone
    } else {
      fixes.emplace_back(rf::Vec2{0.05 * k, 2.0});
    }
  }
  const auto smoothed = smooth_trajectory(fixes);
  ASSERT_EQ(smoothed.size(), fixes.size());
  ASSERT_TRUE(smoothed[7].has_value());  // coasted through the gap
  ASSERT_TRUE(smoothed[8].has_value());
  EXPECT_NEAR(smoothed[8]->y, 2.0, 0.1);
}

TEST(SmoothTrajectory, LeadingGapsStayEmpty) {
  std::vector<std::optional<rf::Vec2>> fixes{std::nullopt, std::nullopt,
                                             rf::Vec2{1.0, 1.0}};
  const auto smoothed = smooth_trajectory(fixes);
  EXPECT_FALSE(smoothed[0].has_value());
  EXPECT_FALSE(smoothed[1].has_value());
  EXPECT_TRUE(smoothed[2].has_value());
}

}  // namespace
}  // namespace dwatch::core
