// Unit tests for the dense complex matrix/vector primitives.
#include "linalg/complex_matrix.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace dwatch::linalg {
namespace {

using namespace std::complex_literals;

TEST(CMatrix, DefaultConstructedIsEmpty) {
  const CMatrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(CMatrix, SizedConstructionZeroInitializes) {
  const CMatrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(m(r, c), Complex{});
    }
  }
}

TEST(CMatrix, FillConstruction) {
  const CMatrix m(2, 2, Complex{1.0, -2.0});
  EXPECT_EQ(m(1, 1), (Complex{1.0, -2.0}));
}

TEST(CMatrix, InitializerListLayout) {
  const CMatrix m{{1.0 + 2.0i, 3.0}, {4.0, 5.0 - 1.0i}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m(0, 0), 1.0 + 2.0i);
  EXPECT_EQ(m(0, 1), Complex{3.0});
  EXPECT_EQ(m(1, 1), 5.0 - 1.0i);
}

TEST(CMatrix, RaggedInitializerThrows) {
  EXPECT_THROW((CMatrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(CMatrix, AtBoundsChecked) {
  CMatrix m(2, 2);
  EXPECT_NO_THROW((void)m.at(1, 1));
  EXPECT_THROW((void)m.at(2, 0), std::out_of_range);
  EXPECT_THROW((void)m.at(0, 2), std::out_of_range);
  const CMatrix& cm = m;
  EXPECT_THROW((void)cm.at(2, 2), std::out_of_range);
}

TEST(CMatrix, IdentityAndDiagonal) {
  const CMatrix i3 = CMatrix::identity(3);
  EXPECT_EQ(i3(0, 0), Complex{1.0});
  EXPECT_EQ(i3(1, 0), Complex{});
  const CMatrix d = CMatrix::diagonal({1.0 + 1.0i, 2.0});
  EXPECT_EQ(d.rows(), 2u);
  EXPECT_EQ(d(0, 0), 1.0 + 1.0i);
  EXPECT_EQ(d(0, 1), Complex{});
}

TEST(CMatrix, AdditionSubtraction) {
  const CMatrix a{{1.0, 2.0}, {3.0, 4.0}};
  const CMatrix b{{0.5, 0.5}, {0.5, 0.5}};
  const CMatrix sum = a + b;
  EXPECT_EQ(sum(0, 0), Complex{1.5});
  const CMatrix diff = sum - b;
  EXPECT_NEAR(diff.max_abs_diff(a), 0.0, 1e-15);
}

TEST(CMatrix, ShapeMismatchThrows) {
  CMatrix a(2, 2);
  const CMatrix b(2, 3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
  EXPECT_THROW((void)a.max_abs_diff(b), std::invalid_argument);
}

TEST(CMatrix, ScalarOps) {
  CMatrix a{{1.0, 2.0}};
  a *= 2.0i;
  EXPECT_EQ(a(0, 0), 2.0i);
  a /= 2.0i;
  EXPECT_NEAR(std::abs(a(0, 0) - Complex{1.0}), 0.0, 1e-15);
  EXPECT_THROW(a /= Complex{}, std::invalid_argument);
}

TEST(CMatrix, MatrixProduct) {
  const CMatrix a{{1.0, 2.0}, {3.0, 4.0}};
  const CMatrix b{{0.0, 1.0}, {1.0, 0.0}};
  const CMatrix ab = a * b;
  EXPECT_EQ(ab(0, 0), Complex{2.0});
  EXPECT_EQ(ab(0, 1), Complex{1.0});
  EXPECT_EQ(ab(1, 0), Complex{4.0});
  EXPECT_EQ(ab(1, 1), Complex{3.0});
}

TEST(CMatrix, ProductDimensionMismatchThrows) {
  const CMatrix a(2, 3);
  const CMatrix b(2, 2);
  EXPECT_THROW((void)(a * b), std::invalid_argument);
}

TEST(CMatrix, ProductWithIdentityIsNoop) {
  const CMatrix a{{1.0 + 1.0i, 2.0}, {3.0, 4.0 - 2.0i}};
  EXPECT_NEAR((a * CMatrix::identity(2)).max_abs_diff(a), 0.0, 1e-15);
  EXPECT_NEAR((CMatrix::identity(2) * a).max_abs_diff(a), 0.0, 1e-15);
}

TEST(CMatrix, TransposeAndHermitian) {
  const CMatrix a{{1.0 + 1.0i, 2.0}, {3.0, 4.0}};
  const CMatrix t = a.transpose();
  EXPECT_EQ(t(0, 0), 1.0 + 1.0i);
  EXPECT_EQ(t(1, 0), Complex{2.0});
  const CMatrix h = a.hermitian();
  EXPECT_EQ(h(0, 0), 1.0 - 1.0i);
  EXPECT_EQ(h(0, 1), Complex{3.0});
}

TEST(CMatrix, ConjugateElementwise) {
  const CMatrix a{{1.0 + 2.0i}};
  EXPECT_EQ(a.conjugate()(0, 0), 1.0 - 2.0i);
}

TEST(CMatrix, BlockRowCol) {
  const CMatrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}, {7.0, 8.0, 9.0}};
  const CMatrix b = a.block(1, 1, 2, 2);
  EXPECT_EQ(b(0, 0), Complex{5.0});
  EXPECT_EQ(b(1, 1), Complex{9.0});
  EXPECT_EQ(a.col(2)(1, 0), Complex{6.0});
  EXPECT_EQ(a.row(2)(0, 0), Complex{7.0});
  EXPECT_THROW((void)a.block(2, 2, 2, 2), std::out_of_range);
  EXPECT_THROW((void)a.col(3), std::out_of_range);
  EXPECT_THROW((void)a.row(3), std::out_of_range);
}

TEST(CMatrix, FrobeniusNormAndTrace) {
  const CMatrix a{{3.0, 0.0}, {0.0, 4.0i}};
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
  EXPECT_EQ(a.trace(), 3.0 + 4.0i);
  const CMatrix rect(2, 3);
  EXPECT_THROW((void)rect.trace(), std::logic_error);
}

TEST(CMatrix, IsHermitianDetection) {
  const CMatrix h{{2.0, 1.0 - 1.0i}, {1.0 + 1.0i, 3.0}};
  EXPECT_TRUE(h.is_hermitian());
  const CMatrix nh{{2.0, 1.0}, {2.0, 3.0}};
  EXPECT_FALSE(nh.is_hermitian());
  EXPECT_FALSE(CMatrix(2, 3).is_hermitian());
}

TEST(CMatrix, StreamOutputContainsDims) {
  std::ostringstream os;
  os << CMatrix(2, 2);
  EXPECT_NE(os.str().find("2x2"), std::string::npos);
}

TEST(CVector, BasicOps) {
  CVector v{1.0, 2.0i};
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[1], 2.0i);
  EXPECT_THROW((void)v.at(2), std::out_of_range);
  v *= 2.0;
  EXPECT_EQ(v[0], Complex{2.0});
  const CVector w = v + v;
  EXPECT_EQ(w[0], Complex{4.0});
  const CVector z = w - v;
  EXPECT_EQ(z[1], 4.0i);
  EXPECT_THROW(v += CVector(3), std::invalid_argument);
}

TEST(CVector, NormAndConjugate) {
  const CVector v{3.0, 4.0i};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_EQ(v.conjugate()[1], -4.0i);
}

TEST(CVector, AsColumn) {
  const CVector v{1.0, 2.0};
  const CMatrix m = v.as_column();
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 1u);
  EXPECT_EQ(m(1, 0), Complex{2.0});
}

TEST(InnerProduct, ConjugatesFirstArgument) {
  const CVector x{1.0i};
  const CVector y{1.0};
  // <x, y> = conj(i) * 1 = -i.
  EXPECT_EQ(inner_product(x, y), -1.0i);
  EXPECT_THROW((void)inner_product(x, CVector(2)), std::invalid_argument);
}

TEST(InnerProduct, NormConsistency) {
  const CVector x{1.0 + 1.0i, 2.0 - 3.0i};
  const Complex xx = inner_product(x, x);
  EXPECT_NEAR(xx.real(), x.norm() * x.norm(), 1e-12);
  EXPECT_NEAR(xx.imag(), 0.0, 1e-12);
}

TEST(OuterProduct, Rank1Structure) {
  const CVector x{1.0, 2.0i};
  const CMatrix m = outer_product(x, x);
  EXPECT_TRUE(m.is_hermitian());
  EXPECT_EQ(m(0, 0), Complex{1.0});
  EXPECT_EQ(m(1, 1), Complex{4.0});
  EXPECT_EQ(m(1, 0), 2.0i);
  EXPECT_THROW((void)outer_product(x, CVector(3)), std::invalid_argument);
}

TEST(Matvec, MultipliesCorrectly) {
  const CMatrix a{{1.0, 2.0}, {3.0, 4.0}};
  const CVector x{1.0, 1.0};
  const CVector y = matvec(a, x);
  EXPECT_EQ(y[0], Complex{3.0});
  EXPECT_EQ(y[1], Complex{7.0});
  EXPECT_THROW((void)matvec(a, CVector(3)), std::invalid_argument);
}

TEST(MatvecHermitian, EqualsExplicitHermitianProduct) {
  const CMatrix a{{1.0 + 1.0i, 2.0}, {0.0, 3.0i}};
  const CVector x{1.0, 2.0};
  const CVector lhs = matvec_hermitian(a, x);
  const CVector rhs = matvec(a.hermitian(), x);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(std::abs(lhs[i] - rhs[i]), 0.0, 1e-14);
  }
  EXPECT_THROW((void)matvec_hermitian(a, CVector(3)), std::invalid_argument);
}

namespace {
/// Deterministic pseudo-random fill shared by the batched-kernel tests.
CMatrix pseudo_random(std::size_t rows, std::size_t cols, double seed) {
  CMatrix m(rows, cols);
  double v = seed;
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      v = std::fmod(v * 37.7 + 0.1, 2.0) - 1.0;
      m(i, j) = Complex{v, -v * 0.5};
    }
  }
  return m;
}
}  // namespace

TEST(MatmulHermitianLeft, EqualsExplicitHermitianProduct) {
  const CMatrix a = pseudo_random(8, 5, 0.3);   // M x P
  const CMatrix c = pseudo_random(8, 11, 0.7);  // M x G
  const CMatrix fast = matmul_hermitian_left(a, c);
  const CMatrix reference = a.hermitian() * c;
  ASSERT_EQ(fast.rows(), 5u);
  ASSERT_EQ(fast.cols(), 11u);
  EXPECT_NEAR(fast.max_abs_diff(reference), 0.0, 1e-13);
  EXPECT_THROW((void)matmul_hermitian_left(a, pseudo_random(7, 3, 0.1)),
               std::invalid_argument);
}

TEST(BatchedQuadraticForm, EqualsPerColumnMatvecInnerProduct) {
  // Hermitian R as in a sample correlation, and a steering-like A.
  const CMatrix x = pseudo_random(6, 6, 0.45);
  const CMatrix r = x * x.hermitian();
  const CMatrix a = pseudo_random(6, 9, 0.85);
  const std::vector<double> quad = batched_quadratic_form(r, a);
  ASSERT_EQ(quad.size(), 9u);
  for (std::size_t i = 0; i < quad.size(); ++i) {
    CVector col(r.rows());
    for (std::size_t m = 0; m < r.rows(); ++m) col[m] = a(m, i);
    const double reference = inner_product(col, matvec(r, col)).real();
    EXPECT_NEAR(quad[i], reference, 1e-12 * std::max(1.0, reference))
        << "column " << i;
  }
  EXPECT_THROW((void)batched_quadratic_form(r, pseudo_random(5, 2, 0.2)),
               std::invalid_argument);
  EXPECT_THROW((void)batched_quadratic_form(pseudo_random(2, 3, 0.2), a),
               std::invalid_argument);
}

TEST(ColumnSquaredNorms, MatchesColumnNorms) {
  const CMatrix a = pseudo_random(7, 4, 0.6);
  const std::vector<double> norms = column_squared_norms(a);
  ASSERT_EQ(norms.size(), 4u);
  for (std::size_t i = 0; i < norms.size(); ++i) {
    double reference = 0.0;
    for (std::size_t m = 0; m < a.rows(); ++m) reference += std::norm(a(m, i));
    EXPECT_NEAR(norms[i], reference, 1e-13);
  }
  EXPECT_TRUE(column_squared_norms(CMatrix()).empty());
}

/// Property sweep: (A B)^H == B^H A^H across shapes.
class MatrixShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatrixShapeTest, HermitianOfProductReversesOrder) {
  const auto [m, k, n] = GetParam();
  CMatrix a(m, k);
  CMatrix b(k, n);
  // Deterministic pseudo-random fill.
  double v = 0.3;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      v = std::fmod(v * 37.7 + 0.1, 2.0) - 1.0;
      a(i, j) = Complex{v, -v * 0.5};
    }
  }
  for (std::size_t i = 0; i < b.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      v = std::fmod(v * 17.3 + 0.7, 2.0) - 1.0;
      b(i, j) = Complex{-v, v * 0.25};
    }
  }
  const CMatrix lhs = (a * b).hermitian();
  const CMatrix rhs = b.hermitian() * a.hermitian();
  EXPECT_NEAR(lhs.max_abs_diff(rhs), 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatrixShapeTest,
                         ::testing::Values(std::tuple{1, 1, 1},
                                           std::tuple{2, 3, 4},
                                           std::tuple{4, 4, 4},
                                           std::tuple{8, 2, 5},
                                           std::tuple{5, 8, 1}));

}  // namespace
}  // namespace dwatch::linalg
