// Kernel-parity suite: the SIMD kernels promise BIT-IDENTICAL results
// to the scalar oracles (simd_kernels.hpp) for finite inputs, on every
// backend. The sweep covers M in {1..9, 16, 33} crossed with grid
// widths that exercise every tail shape (G mod 4 in {0,1,2,3}, G
// smaller than one vector, and the production G = 361), and asserts
// 0-ULP equality by comparing raw bit patterns — EXPECT_EQ on doubles
// would already conflate +0/-0.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "linalg/complex_matrix.hpp"
#include "linalg/simd_detail.hpp"
#include "linalg/simd_kernels.hpp"
#include "linalg/soa_complex.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace dwatch::linalg::simd {
namespace {

/// 64-bit LCG (MMIX constants) — same generator as the golden-spectrum
/// fixtures, so inputs are identical on every platform.
struct Lcg {
  std::uint64_t state;
  explicit Lcg(std::uint64_t seed) : state(seed) {}
  double uniform() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  }
  double centered() { return 2.0 * uniform() - 1.0; }
};

CMatrix random_matrix(std::size_t rows, std::size_t cols,
                      std::uint64_t seed) {
  Lcg lcg(seed);
  CMatrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(r, c) = Complex{lcg.centered(), lcg.centered()};
    }
  }
  return m;
}

[[nodiscard]] std::uint64_t bits_of(double v) {
  std::uint64_t out = 0;
  std::memcpy(&out, &v, sizeof(out));
  return out;
}

::testing::AssertionResult same_bits(double a, double b) {
  if (bits_of(a) == bits_of(b)) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " vs " << b << " (bits differ: 0x" << std::hex << bits_of(a)
         << " vs 0x" << bits_of(b) << ")";
}

/// Forces a backend for one scope, restoring the unforced state after.
struct ScopedBackend {
  explicit ScopedBackend(Backend b) { set_backend_override(b); }
  ~ScopedBackend() { clear_backend_override(); }
};

/// Backends worth testing on this machine: always scalar, plus the
/// detected vector backend when there is one.
std::vector<Backend> backends_under_test() {
  std::vector<Backend> out{Backend::kScalar};
  if (detected_backend() != Backend::kScalar) {
    out.push_back(detected_backend());
  }
  return out;
}

constexpr std::size_t kElementCounts[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 16, 33};
constexpr std::size_t kGridWidths[] = {1, 2, 3, 4, 5, 7, 8, 31, 361};

TEST(SimdKernels, BatchedQuadraticFormMatchesOracleBitForBit) {
  for (const std::size_t m : kElementCounts) {
    for (const std::size_t g : kGridWidths) {
      const CMatrix r = random_matrix(m, m, 0xB0 + m * 1000 + g);
      const CMatrix a = random_matrix(m, g, 0xA0 + m * 1000 + g);
      const SplitComplexMatrix soa = SplitComplexMatrix::from_matrix(a);
      const std::vector<double> oracle = linalg::batched_quadratic_form(r, a);
      for (const Backend backend : backends_under_test()) {
        const ScopedBackend scope(backend);
        const std::vector<double> got = batched_quadratic_form(r, soa);
        ASSERT_EQ(got.size(), oracle.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
          EXPECT_TRUE(same_bits(got[i], oracle[i]))
              << "backend=" << backend_name(backend) << " m=" << m
              << " g=" << g << " i=" << i;
        }
      }
    }
  }
}

TEST(SimdKernels, MatmulHermitianLeftMatchesOracleBitForBit) {
  for (const std::size_t m : kElementCounts) {
    for (const std::size_t g : kGridWidths) {
      const std::size_t q = m / 2 + 1;  // subspace width
      CMatrix u = random_matrix(m, q, 0xC0 + m * 1000 + g);
      // Exercise the oracle's zero-skip: zero out a diagonal stripe.
      for (std::size_t k = 0; k < m; ++k) u(k, k % q) = Complex{};
      const CMatrix c = random_matrix(m, g, 0xD0 + m * 1000 + g);
      const SplitComplexMatrix soa = SplitComplexMatrix::from_matrix(c);
      const CMatrix oracle = linalg::matmul_hermitian_left(u, c);
      for (const Backend backend : backends_under_test()) {
        const ScopedBackend scope(backend);
        const SplitComplexMatrix got = matmul_hermitian_left(u, soa);
        ASSERT_EQ(got.rows(), oracle.rows());
        ASSERT_EQ(got.cols(), oracle.cols());
        for (std::size_t p = 0; p < got.rows(); ++p) {
          for (std::size_t i = 0; i < got.cols(); ++i) {
            EXPECT_TRUE(same_bits(got.at(p, i).real(), oracle(p, i).real()))
                << "backend=" << backend_name(backend) << " m=" << m
                << " g=" << g << " (" << p << "," << i << ") re";
            EXPECT_TRUE(same_bits(got.at(p, i).imag(), oracle(p, i).imag()))
                << "backend=" << backend_name(backend) << " m=" << m
                << " g=" << g << " (" << p << "," << i << ") im";
          }
        }
      }
    }
  }
}

TEST(SimdKernels, ColumnSquaredNormsMatchesOracleBitForBit) {
  for (const std::size_t m : kElementCounts) {
    for (const std::size_t g : kGridWidths) {
      const CMatrix a = random_matrix(m, g, 0xE0 + m * 1000 + g);
      const SplitComplexMatrix soa = SplitComplexMatrix::from_matrix(a);
      const std::vector<double> oracle = linalg::column_squared_norms(a);
      for (const Backend backend : backends_under_test()) {
        const ScopedBackend scope(backend);
        const std::vector<double> got = column_squared_norms(soa);
        ASSERT_EQ(got.size(), oracle.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
          EXPECT_TRUE(same_bits(got[i], oracle[i]))
              << "backend=" << backend_name(backend) << " m=" << m
              << " g=" << g << " i=" << i;
        }
      }
    }
  }
}

/// Test-local oracle: the exact legacy core::sample_correlation loop
/// (kept inline here so the oracle cannot silently change when core
/// re-routes through the SIMD layer).
CMatrix sample_correlation_oracle(const CMatrix& x) {
  const std::size_t m = x.rows();
  const std::size_t n = x.cols();
  CMatrix r(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      Complex sum{};
      for (std::size_t k = 0; k < n; ++k) {
        sum += x(i, k) * std::conj(x(j, k));
      }
      r(i, j) = sum / static_cast<double>(n);
    }
  }
  return r;
}

TEST(SimdKernels, SampleCorrelationMatchesOracleBitForBit) {
  for (const std::size_t m : kElementCounts) {
    for (const std::size_t n : {1u, 3u, 16u, 33u}) {
      const CMatrix x = random_matrix(m, n, 0xF0 + m * 1000 + n);
      const SplitComplexMatrix xt =
          SplitComplexMatrix::from_matrix_transposed(x);
      const CMatrix oracle = sample_correlation_oracle(x);
      for (const Backend backend : backends_under_test()) {
        const ScopedBackend scope(backend);
        const CMatrix got = sample_correlation(xt);
        ASSERT_EQ(got.rows(), oracle.rows());
        ASSERT_EQ(got.cols(), oracle.cols());
        for (std::size_t i = 0; i < m; ++i) {
          for (std::size_t j = 0; j < m; ++j) {
            EXPECT_TRUE(same_bits(got(i, j).real(), oracle(i, j).real()))
                << "backend=" << backend_name(backend) << " m=" << m
                << " n=" << n << " (" << i << "," << j << ") re";
            EXPECT_TRUE(same_bits(got(i, j).imag(), oracle(i, j).imag()))
                << "backend=" << backend_name(backend) << " m=" << m
                << " n=" << n << " (" << i << "," << j << ") im";
          }
        }
      }
    }
  }
}

TEST(SimdKernels, AccumulateOuterProductsMatchesLanesOracleBitForBit) {
  for (const std::size_t m : kElementCounts) {
    for (const std::size_t n : {1u, 3u, 16u, 33u}) {
      const CMatrix x = random_matrix(m, n, 0x5A0 + m * 1000 + n);
      const SplitComplexMatrix xt =
          SplitComplexMatrix::from_matrix_transposed(x);
      // Oracle: the shared scalar lanes kernel, resumed from a non-zero
      // accumulator (the chaining case the incremental covariance uses).
      SplitComplexMatrix oracle(m, m);
      detail::accumulate_outer_products_lanes(xt, 0, m, oracle);
      detail::accumulate_outer_products_lanes(xt, 0, m, oracle);
      for (const Backend backend : backends_under_test()) {
        const ScopedBackend scope(backend);
        SplitComplexMatrix acc(m, m);
        accumulate_outer_products(xt, acc);
        accumulate_outer_products(xt, acc);
        for (std::size_t i = 0; i < m; ++i) {
          for (std::size_t j = 0; j < m; ++j) {
            EXPECT_TRUE(same_bits(acc.at(i, j).real(), oracle.at(i, j).real()))
                << "backend=" << backend_name(backend) << " m=" << m
                << " n=" << n << " (" << i << "," << j << ") re";
            EXPECT_TRUE(same_bits(acc.at(i, j).imag(), oracle.at(i, j).imag()))
                << "backend=" << backend_name(backend) << " m=" << m
                << " n=" << n << " (" << i << "," << j << ") im";
          }
        }
      }
    }
  }
}

TEST(SimdKernels, ChunkedAccumulationMatchesBatchSampleCorrelation) {
  // The streaming contract: accumulating a snapshot stream chunk by
  // chunk and dividing at the end is BIT-IDENTICAL to the batch
  // sample_correlation over the concatenated matrix — the inner
  // k-ascending addition chain is simply resumed across chunks.
  for (const std::size_t m : {2u, 4u, 7u, 8u}) {
    const std::size_t chunks[] = {5, 1, 8, 3};
    std::size_t total = 0;
    for (const std::size_t c : chunks) total += c;
    const CMatrix all = random_matrix(m, total, 0xC0FFEE + m);
    for (const Backend backend : backends_under_test()) {
      const ScopedBackend scope(backend);
      const CMatrix batch =
          sample_correlation(SplitComplexMatrix::from_matrix_transposed(all));
      SplitComplexMatrix acc(m, m);
      std::size_t col = 0;
      for (const std::size_t c : chunks) {
        CMatrix chunk(m, c);
        for (std::size_t j = 0; j < c; ++j) {
          for (std::size_t i = 0; i < m; ++i) chunk(i, j) = all(i, col + j);
        }
        col += c;
        accumulate_outer_products(
            SplitComplexMatrix::from_matrix_transposed(chunk), acc);
      }
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < m; ++j) {
          const Complex streamed =
              acc.at(i, j) / static_cast<double>(total);
          EXPECT_TRUE(same_bits(streamed.real(), batch(i, j).real()))
              << "backend=" << backend_name(backend) << " m=" << m << " ("
              << i << "," << j << ") re";
          EXPECT_TRUE(same_bits(streamed.imag(), batch(i, j).imag()))
              << "backend=" << backend_name(backend) << " m=" << m << " ("
              << i << "," << j << ") im";
        }
      }
    }
  }
}

TEST(SimdKernels, DimensionMismatchesThrowLikeTheOracle) {
  const CMatrix r = random_matrix(4, 4, 1);
  const CMatrix bad = random_matrix(3, 5, 2);
  const SplitComplexMatrix bad_soa = SplitComplexMatrix::from_matrix(bad);
  EXPECT_THROW((void)batched_quadratic_form(r, bad_soa),
               std::invalid_argument);
  EXPECT_THROW((void)matmul_hermitian_left(r, bad_soa),
               std::invalid_argument);
  EXPECT_THROW((void)sample_correlation(SplitComplexMatrix{}),
               std::invalid_argument);
  SplitComplexMatrix acc(4, 4);
  EXPECT_THROW((void)accumulate_outer_products(SplitComplexMatrix{}, acc),
               std::invalid_argument);
  SplitComplexMatrix wrong(3, 3);
  const CMatrix x4 = random_matrix(4, 6, 9);
  EXPECT_THROW((void)accumulate_outer_products(
                   SplitComplexMatrix::from_matrix_transposed(x4), wrong),
               std::invalid_argument);
}

// ---- dispatch machinery ----

TEST(SimdDispatch, EnvParsingTable) {
  EXPECT_FALSE(detail::parse_env(nullptr).forced_scalar);
  EXPECT_FALSE(detail::parse_env(nullptr).has_request);
  EXPECT_TRUE(detail::parse_env("off").forced_scalar);
  EXPECT_TRUE(detail::parse_env("OFF").forced_scalar);
  EXPECT_TRUE(detail::parse_env("scalar").forced_scalar);
  EXPECT_TRUE(detail::parse_env("0").forced_scalar);
  EXPECT_TRUE(detail::parse_env("avx2").has_request);
  EXPECT_EQ(detail::parse_env("avx2").requested, Backend::kAvx2);
  EXPECT_TRUE(detail::parse_env("neon").has_request);
  EXPECT_EQ(detail::parse_env("neon").requested, Backend::kNeon);
  // Unknown values and "auto" fall through to detection, not failure.
  EXPECT_FALSE(detail::parse_env("auto").forced_scalar);
  EXPECT_FALSE(detail::parse_env("auto").has_request);
  EXPECT_FALSE(detail::parse_env("warp-drive").has_request);
  EXPECT_FALSE(detail::parse_env("").has_request);
}

TEST(SimdDispatch, BackendNamesAreStable) {
  EXPECT_STREQ(backend_name(Backend::kScalar), "scalar");
  EXPECT_STREQ(backend_name(Backend::kAvx2), "avx2");
  EXPECT_STREQ(backend_name(Backend::kNeon), "neon");
}

TEST(SimdDispatch, OverrideClampsToSupported) {
  {
    const ScopedBackend scope(Backend::kScalar);
    EXPECT_EQ(active_backend(), Backend::kScalar);
  }
  // Requesting the detected backend always sticks...
  {
    const ScopedBackend scope(detected_backend());
    EXPECT_EQ(active_backend(), detected_backend());
  }
  // ...and requesting a foreign-architecture backend clamps to scalar.
#if defined(__x86_64__) || defined(__i386__)
  {
    const ScopedBackend scope(Backend::kNeon);
    EXPECT_EQ(active_backend(), Backend::kScalar);
  }
#elif defined(__aarch64__)
  {
    const ScopedBackend scope(Backend::kAvx2);
    EXPECT_EQ(active_backend(), Backend::kScalar);
  }
#endif
}

TEST(SimdDispatch, CompiledFlagConsistentWithDetection) {
  if (!compiled_with_simd()) {
    EXPECT_EQ(detected_backend(), Backend::kScalar);
  }
}

TEST(SimdDispatch, PublishRecordsGaugeAndEvent) {
  obs::set_enabled(true);
  obs::MetricsRegistry::global().reset();
  obs::EventLog::global().clear();
  publish_backend();
  obs::set_enabled(false);
  if (!DWATCH_OBS_ENABLED) {
    GTEST_SKIP() << "obs compiled out";
  }
  const Backend backend = active_backend();
  std::string labels = "backend=\"";
  labels += backend_name(backend);
  labels += '"';
  EXPECT_EQ(obs::MetricsRegistry::global()
                .gauge("dwatch_simd_backend", labels)
                .value(),
            static_cast<double>(static_cast<int>(backend)));
  bool saw_event = false;
  for (const std::string& line : obs::EventLog::global().snapshot()) {
    if (line.find("\"simd.dispatch\"") != std::string::npos &&
        line.find(backend_name(backend)) != std::string::npos) {
      saw_event = true;
    }
  }
  EXPECT_TRUE(saw_event);
}

TEST(SimdDispatch, PublishIsSilentWhileDisabled) {
  obs::set_enabled(false);
  obs::EventLog::global().clear();
  publish_backend();
  for (const std::string& line : obs::EventLog::global().snapshot()) {
    EXPECT_EQ(line.find("\"simd.dispatch\""), std::string::npos);
  }
}

/// Concurrency shake-out for the TSan tree: hammer first-call backend
/// resolution, kernels and publication from many threads at once. The
/// assertions are weak on purpose — the value is the data-race-free
/// execution under -fsanitize=thread.
TEST(SimdDispatch, ConcurrentDispatchAndKernelsAreRaceFree) {
  clear_backend_override();
  const CMatrix r = random_matrix(6, 6, 77);
  const CMatrix a = random_matrix(6, 101, 78);
  const SplitComplexMatrix soa = SplitComplexMatrix::from_matrix(a);
  const std::vector<double> expected = batched_quadratic_form(r, soa);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int iter = 0; iter < 25; ++iter) {
        (void)active_backend();
        publish_backend();
        const std::vector<double> got = batched_quadratic_form(r, soa);
        if (got != expected) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace dwatch::linalg::simd
