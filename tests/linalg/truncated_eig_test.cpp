#include "linalg/truncated_eig.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "linalg/complex_matrix.hpp"
#include "linalg/hermitian_eig.hpp"

namespace dwatch::linalg {
namespace {

constexpr double kTol = 1e-8;

/// Dense Hermitian PSD matrix with a known, well-separated spectrum:
/// A = V diag(values) V^H for a deterministic unitary-ish V obtained by
/// orthonormalizing a fixed complex matrix.
CMatrix spectrum_matrix(const std::vector<double>& values) {
  const std::size_t n = values.size();
  // Deterministic basis seed, then Gram-Schmidt.
  CMatrix v(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      const double phase = 0.7548776662466927 * static_cast<double>(
                               (i + 2) * (j + 3)) +
                           0.01 * static_cast<double>(i);
      v(i, j) = Complex{std::cos(phase), std::sin(phase)};
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t prev = 0; prev < j; ++prev) {
      Complex dot{};
      for (std::size_t i = 0; i < n; ++i) dot += std::conj(v(i, prev)) * v(i, j);
      for (std::size_t i = 0; i < n; ++i) v(i, j) -= dot * v(i, prev);
    }
    double norm_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) norm_sq += std::norm(v(i, j));
    const double inv = 1.0 / std::sqrt(norm_sq);
    for (std::size_t i = 0; i < n; ++i) v(i, j) *= inv;
  }
  CMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      Complex sum{};
      for (std::size_t k = 0; k < n; ++k) {
        sum += v(i, k) * values[k] * std::conj(v(j, k));
      }
      a(i, j) = sum;
    }
  }
  // Exact Hermitian symmetrization kills rounding asymmetry.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const Complex mean = 0.5 * (a(i, j) + std::conj(a(j, i)));
      a(i, j) = mean;
      a(j, i) = std::conj(mean);
    }
  }
  return a;
}

/// |<u, w>| for unit vectors — 1 means same direction up to phase.
double alignment(const CMatrix& u, std::size_t uc, const CMatrix& w,
                 std::size_t wc) {
  Complex dot{};
  for (std::size_t i = 0; i < u.rows(); ++i) {
    dot += std::conj(u(i, uc)) * w(i, wc);
  }
  return std::abs(dot);
}

TEST(TruncatedEig, DiagonalTopKExact) {
  CMatrix a(6, 6);
  const double diag[] = {9.0, 4.0, 1.0, 0.5, 0.2, 0.1};
  for (std::size_t i = 0; i < 6; ++i) a(i, i) = Complex{diag[i], 0.0};

  TruncatedEigOptions opt;
  opt.rank = 2;
  const TruncatedEigResult r = truncated_hermitian_eig(a, opt);
  ASSERT_TRUE(r.converged);
  EXPECT_FALSE(r.used_dense_fallback);
  ASSERT_EQ(r.eigenvalues.size(), 2u);
  EXPECT_NEAR(r.eigenvalues[0], 9.0, kTol);
  EXPECT_NEAR(r.eigenvalues[1], 4.0, kTol);
  EXPECT_NEAR(r.trace, 14.8, 1e-12);
  // Eigenvectors align with e0 / e1.
  EXPECT_NEAR(std::abs(r.eigenvectors(0, 0)), 1.0, 1e-6);
  EXPECT_NEAR(std::abs(r.eigenvectors(1, 1)), 1.0, 1e-6);
}

TEST(TruncatedEig, AgreesWithDenseOnSeparatedSpectrum) {
  const std::vector<double> values = {9.0, 4.0, 1.0, 0.5, 0.2, 0.1};
  const CMatrix a = spectrum_matrix(values);
  const EigenDecomposition dense = hermitian_eig(a);

  for (const std::size_t k : {1u, 2u, 3u}) {
    TruncatedEigOptions opt;
    opt.rank = k;
    const TruncatedEigResult r = truncated_hermitian_eig(a, opt);
    ASSERT_TRUE(r.converged) << "k=" << k;
    EXPECT_FALSE(r.used_dense_fallback) << "k=" << k;
    ASSERT_EQ(r.eigenvalues.size(), k);
    for (std::size_t j = 0; j < k; ++j) {
      EXPECT_NEAR(r.eigenvalues[j], dense.eigenvalues[j], 1e-7)
          << "k=" << k << " j=" << j;
      EXPECT_NEAR(alignment(r.eigenvectors, j, dense.eigenvectors, j), 1.0,
                  1e-6)
          << "k=" << k << " j=" << j;
    }
  }
}

TEST(TruncatedEig, RitzVectorsAreOrthonormal) {
  const CMatrix a = spectrum_matrix({9.0, 4.0, 1.0, 0.5, 0.2, 0.1});
  TruncatedEigOptions opt;
  opt.rank = 3;
  const TruncatedEigResult r = truncated_hermitian_eig(a, opt);
  ASSERT_TRUE(r.converged);
  for (std::size_t p = 0; p < 3; ++p) {
    for (std::size_t q = 0; q < 3; ++q) {
      Complex dot{};
      for (std::size_t i = 0; i < a.rows(); ++i) {
        dot += std::conj(r.eigenvectors(i, p)) * r.eigenvectors(i, q);
      }
      EXPECT_NEAR(std::abs(dot), p == q ? 1.0 : 0.0, 1e-8)
          << "(" << p << "," << q << ")";
    }
  }
}

TEST(TruncatedEig, RankNearDimensionUsesDenseFallback) {
  const CMatrix a = spectrum_matrix({5.0, 3.0, 2.0, 1.0});
  for (const std::size_t k : {3u, 4u}) {  // k + 1 >= n = 4
    TruncatedEigOptions opt;
    opt.rank = k;
    const TruncatedEigResult r = truncated_hermitian_eig(a, opt);
    ASSERT_TRUE(r.converged);
    EXPECT_TRUE(r.used_dense_fallback) << "k=" << k;
    ASSERT_EQ(r.eigenvalues.size(), k);
    EXPECT_NEAR(r.eigenvalues[0], 5.0, 1e-8);
  }
}

TEST(TruncatedEig, RankLargerThanDimensionIsClamped) {
  const CMatrix a = spectrum_matrix({5.0, 3.0, 2.0});
  TruncatedEigOptions opt;
  opt.rank = 64;
  const TruncatedEigResult r = truncated_hermitian_eig(a, opt);
  ASSERT_TRUE(r.converged);
  EXPECT_TRUE(r.used_dense_fallback);
  EXPECT_EQ(r.eigenvalues.size(), 3u);
}

TEST(TruncatedEig, IdentityConvergesImmediately) {
  CMatrix a(8, 8);
  for (std::size_t i = 0; i < 8; ++i) a(i, i) = Complex{1.0, 0.0};
  TruncatedEigOptions opt;
  opt.rank = 2;
  const TruncatedEigResult r = truncated_hermitian_eig(a, opt);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 1u);
  EXPECT_NEAR(r.eigenvalues[0], 1.0, kTol);
  EXPECT_NEAR(r.eigenvalues[1], 1.0, kTol);
}

TEST(TruncatedEig, ZeroMatrixConverges) {
  const CMatrix a(5, 5);
  TruncatedEigOptions opt;
  opt.rank = 2;
  const TruncatedEigResult r = truncated_hermitian_eig(a, opt);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.eigenvalues, (std::vector<double>{0.0, 0.0}));
  EXPECT_EQ(r.trace, 0.0);
}

TEST(TruncatedEig, StallReportsUnconverged) {
  const CMatrix a = spectrum_matrix({9.0, 8.999, 1.0, 0.5, 0.2, 0.1});
  TruncatedEigOptions opt;
  opt.rank = 1;
  opt.tolerance = 0.0;     // unreachable residual budget
  opt.max_iterations = 1;  // no room to iterate either
  const TruncatedEigResult r = truncated_hermitian_eig(a, opt);
  EXPECT_FALSE(r.converged);
  EXPECT_FALSE(r.used_dense_fallback);
  ASSERT_EQ(r.eigenvalues.size(), 1u);
  // Even the stalled estimate is a Rayleigh quotient of A: bounded by
  // the extreme eigenvalues.
  EXPECT_GE(r.eigenvalues[0], 0.1 - kTol);
  EXPECT_LE(r.eigenvalues[0], 9.0 + kTol);
}

TEST(TruncatedEig, InvalidInputsThrow) {
  EXPECT_THROW((void)truncated_hermitian_eig(CMatrix(2, 3)),
               std::invalid_argument);
  EXPECT_THROW((void)truncated_hermitian_eig(CMatrix(0, 0)),
               std::invalid_argument);

  CMatrix not_hermitian(3, 3);
  not_hermitian(0, 1) = Complex{1.0, 0.0};
  not_hermitian(1, 0) = Complex{5.0, 0.0};
  EXPECT_THROW((void)truncated_hermitian_eig(not_hermitian),
               std::invalid_argument);

  CMatrix ok(3, 3);
  ok(0, 0) = Complex{1.0, 0.0};
  TruncatedEigOptions zero_rank;
  zero_rank.rank = 0;
  EXPECT_THROW((void)truncated_hermitian_eig(ok, zero_rank),
               std::invalid_argument);
}

TEST(TruncatedEig, TraceMatchesInput) {
  const CMatrix a = spectrum_matrix({6.0, 2.0, 1.0, 0.5, 0.25});
  TruncatedEigOptions opt;
  opt.rank = 2;
  const TruncatedEigResult r = truncated_hermitian_eig(a, opt);
  EXPECT_NEAR(r.trace, 9.75, 1e-9);
}

}  // namespace
}  // namespace dwatch::linalg
