#include <gtest/gtest.h>

#include <cstdint>

#include "linalg/complex_matrix.hpp"
#include "linalg/soa_complex.hpp"

namespace dwatch::linalg {
namespace {

/// Deterministic fill so round-trip comparisons are exact.
CMatrix pattern(std::size_t rows, std::size_t cols) {
  CMatrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(r, c) = Complex{static_cast<double>(r * 1000 + c) + 0.25,
                        -static_cast<double>(c * 1000 + r) - 0.5};
    }
  }
  return m;
}

TEST(SplitComplexMatrix, DefaultIsEmpty) {
  const SplitComplexMatrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_EQ(m.stride(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(SplitComplexMatrix, StrideIsPaddedMultiple) {
  for (const std::size_t cols : {1u, 2u, 7u, 8u, 9u, 361u}) {
    const SplitComplexMatrix m(3, cols);
    EXPECT_GE(m.stride(), cols);
    EXPECT_EQ(m.stride() % SplitComplexMatrix::kPadDoubles, 0u);
    EXPECT_LT(m.stride() - cols, SplitComplexMatrix::kPadDoubles);
  }
}

TEST(SplitComplexMatrix, EveryRowIsAligned) {
  const SplitComplexMatrix m(9, 361);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto re_addr = reinterpret_cast<std::uintptr_t>(m.re_row(r));
    const auto im_addr = reinterpret_cast<std::uintptr_t>(m.im_row(r));
    EXPECT_EQ(re_addr % SplitComplexMatrix::kAlignment, 0u) << "row " << r;
    EXPECT_EQ(im_addr % SplitComplexMatrix::kAlignment, 0u) << "row " << r;
  }
}

TEST(SplitComplexMatrix, PaddingIsZero) {
  const CMatrix src = pattern(4, 5);
  const SplitComplexMatrix m = SplitComplexMatrix::from_matrix(src);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = m.cols(); c < m.stride(); ++c) {
      EXPECT_EQ(m.re_row(r)[c], 0.0) << r << "," << c;
      EXPECT_EQ(m.im_row(r)[c], 0.0) << r << "," << c;
    }
  }
}

TEST(SplitComplexMatrix, RoundTripIsExact) {
  for (const auto& [rows, cols] :
       {std::pair<std::size_t, std::size_t>{1, 1},
        {3, 7},
        {8, 361},
        {16, 4},
        {33, 31}}) {
    const CMatrix src = pattern(rows, cols);
    const SplitComplexMatrix soa = SplitComplexMatrix::from_matrix(src);
    ASSERT_EQ(soa.rows(), rows);
    ASSERT_EQ(soa.cols(), cols);
    const CMatrix back = soa.to_matrix();
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        EXPECT_EQ(back(r, c), src(r, c));
        EXPECT_EQ(soa.at(r, c), src(r, c));
      }
    }
  }
}

TEST(SplitComplexMatrix, TransposedAdapterFlipsIndices) {
  const CMatrix src = pattern(5, 9);  // e.g. M x N snapshots
  const SplitComplexMatrix t = SplitComplexMatrix::from_matrix_transposed(src);
  ASSERT_EQ(t.rows(), src.cols());
  ASSERT_EQ(t.cols(), src.rows());
  for (std::size_t r = 0; r < src.rows(); ++r) {
    for (std::size_t c = 0; c < src.cols(); ++c) {
      EXPECT_EQ(t.at(c, r), src(r, c));
    }
  }
}

TEST(SplitComplexMatrix, SetWritesBothPlanes) {
  SplitComplexMatrix m(2, 3);
  m.set(1, 2, Complex{3.5, -4.5});
  EXPECT_EQ(m.at(1, 2), (Complex{3.5, -4.5}));
  EXPECT_EQ(m.re_row(1)[2], 3.5);
  EXPECT_EQ(m.im_row(1)[2], -4.5);
}

}  // namespace
}  // namespace dwatch::linalg
