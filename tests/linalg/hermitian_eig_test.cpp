// Tests for the complex Jacobi Hermitian eigendecomposition.
#include "linalg/hermitian_eig.hpp"

#include <gtest/gtest.h>

#include <random>

#include "linalg/complex_matrix.hpp"

namespace dwatch::linalg {
namespace {

using namespace std::complex_literals;

CMatrix random_hermitian(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  CMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = Complex{dist(rng), 0.0};
    for (std::size_t j = i + 1; j < n; ++j) {
      a(i, j) = Complex{dist(rng), dist(rng)};
      a(j, i) = std::conj(a(i, j));
    }
  }
  return a;
}

TEST(HermitianEig, DiagonalMatrix) {
  const CMatrix d = CMatrix::diagonal({Complex{3.0}, Complex{1.0},
                                       Complex{2.0}});
  const EigenDecomposition eig = hermitian_eig(d);
  ASSERT_EQ(eig.eigenvalues.size(), 3u);
  EXPECT_DOUBLE_EQ(eig.eigenvalues[0], 3.0);
  EXPECT_DOUBLE_EQ(eig.eigenvalues[1], 2.0);
  EXPECT_DOUBLE_EQ(eig.eigenvalues[2], 1.0);
}

TEST(HermitianEig, KnownTwoByTwo) {
  // [[2, i], [-i, 2]] has eigenvalues 3 and 1.
  const CMatrix a{{2.0, 1.0i}, {-1.0i, 2.0}};
  const EigenDecomposition eig = hermitian_eig(a);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0, 1e-10);
}

TEST(HermitianEig, ThrowsOnNonSquare) {
  EXPECT_THROW((void)hermitian_eig(CMatrix(2, 3)), std::invalid_argument);
}

TEST(HermitianEig, ThrowsOnNonHermitian) {
  const CMatrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_THROW((void)hermitian_eig(a), std::invalid_argument);
}

TEST(HermitianEig, OneByOne) {
  const CMatrix a{{5.0}};
  const EigenDecomposition eig = hermitian_eig(a);
  EXPECT_DOUBLE_EQ(eig.eigenvalues[0], 5.0);
  EXPECT_EQ(eig.eigenvectors(0, 0), Complex{1.0});
}

TEST(HermitianEig, Rank1OuterProduct) {
  // x x^H has eigenvalues {|x|^2, 0, 0}.
  const CVector x{1.0, 1.0i, 1.0 - 1.0i};
  const CMatrix a = outer_product(x, x);
  const EigenDecomposition eig = hermitian_eig(a);
  EXPECT_NEAR(eig.eigenvalues[0], x.norm() * x.norm(), 1e-10);
  EXPECT_NEAR(eig.eigenvalues[1], 0.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[2], 0.0, 1e-10);
}

/// Property sweep over sizes and seeds: reconstruction, orthonormality,
/// descending order, trace preservation.
class EigPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(EigPropertyTest, ReconstructionRoundTrip) {
  const auto [n, seed] = GetParam();
  const CMatrix a = random_hermitian(n, seed);
  const EigenDecomposition eig = hermitian_eig(a);
  EXPECT_NEAR(reconstruct(eig).max_abs_diff(a), 0.0, 1e-9);
}

TEST_P(EigPropertyTest, EigenvectorsOrthonormal) {
  const auto [n, seed] = GetParam();
  const CMatrix a = random_hermitian(n, seed);
  const EigenDecomposition eig = hermitian_eig(a);
  const CMatrix gram = eig.eigenvectors.hermitian() * eig.eigenvectors;
  EXPECT_NEAR(gram.max_abs_diff(CMatrix::identity(n)), 0.0, 1e-9);
}

TEST_P(EigPropertyTest, EigenvaluesSortedDescending) {
  const auto [n, seed] = GetParam();
  const EigenDecomposition eig = hermitian_eig(random_hermitian(n, seed));
  for (std::size_t i = 0; i + 1 < eig.eigenvalues.size(); ++i) {
    EXPECT_GE(eig.eigenvalues[i], eig.eigenvalues[i + 1] - 1e-12);
  }
}

TEST_P(EigPropertyTest, TracePreserved) {
  const auto [n, seed] = GetParam();
  const CMatrix a = random_hermitian(n, seed);
  const EigenDecomposition eig = hermitian_eig(a);
  double sum = 0.0;
  for (const double v : eig.eigenvalues) sum += v;
  EXPECT_NEAR(sum, a.trace().real(), 1e-9);
}

TEST_P(EigPropertyTest, EigenvaluePairsSatisfyDefinition) {
  const auto [n, seed] = GetParam();
  const CMatrix a = random_hermitian(n, seed);
  const EigenDecomposition eig = hermitian_eig(a);
  for (std::size_t j = 0; j < static_cast<std::size_t>(n); ++j) {
    CVector v(n);
    for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
      v[i] = eig.eigenvectors(i, j);
    }
    const CVector av = matvec(a, v);
    for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
      EXPECT_NEAR(std::abs(av[i] - eig.eigenvalues[j] * v[i]), 0.0, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, EigPropertyTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 6, 8, 12),
                       ::testing::Values(1u, 7u, 42u)));

TEST(HermitianEig, PsdCorrelationMatrixHasNonNegativeEigenvalues) {
  // Correlation-like matrix: A = B B^H is PSD by construction.
  const CMatrix b = random_hermitian(6, 99);
  const CMatrix a = b * b.hermitian();
  const EigenDecomposition eig = hermitian_eig(a);
  for (const double v : eig.eigenvalues) {
    EXPECT_GE(v, -1e-9);
  }
}

}  // namespace
}  // namespace dwatch::linalg
