// Tests for Cholesky factorization and solves.
#include "linalg/cholesky.hpp"

#include <gtest/gtest.h>

#include <random>

namespace dwatch::linalg {
namespace {

CMatrix random_spd(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  CMatrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      b(i, j) = Complex{dist(rng), dist(rng)};
    }
  }
  CMatrix a = b * b.hermitian();
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) += Complex{static_cast<double>(n), 0.0};  // well conditioned
  }
  return a;
}

TEST(Cholesky, FactorReconstructs) {
  const CMatrix a = random_spd(5, 3);
  const CMatrix l = cholesky(a);
  EXPECT_NEAR((l * l.hermitian()).max_abs_diff(a), 0.0, 1e-10);
}

TEST(Cholesky, FactorIsLowerTriangular) {
  const CMatrix l = cholesky(random_spd(4, 5));
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      EXPECT_EQ(l(i, j), Complex{});
    }
  }
}

TEST(Cholesky, ThrowsOnNonSquare) {
  EXPECT_THROW((void)cholesky(CMatrix(2, 3)), std::invalid_argument);
}

TEST(Cholesky, ThrowsOnIndefinite) {
  const CMatrix a{{1.0, 0.0}, {0.0, -1.0}};
  EXPECT_THROW((void)cholesky(a), std::runtime_error);
}

TEST(Cholesky, ThrowsOnNonHermitian) {
  const CMatrix a{{1.0, 2.0}, {0.0, 1.0}};
  EXPECT_THROW((void)cholesky(a), std::invalid_argument);
}

class CholeskySolveTest : public ::testing::TestWithParam<int> {};

TEST_P(CholeskySolveTest, SolveRoundTrip) {
  const auto n = static_cast<std::size_t>(GetParam());
  const CMatrix a = random_spd(n, 17 + n);
  CVector x_true(n);
  for (std::size_t i = 0; i < n; ++i) {
    x_true[i] = Complex{static_cast<double>(i) + 0.5,
                        -static_cast<double>(i)};
  }
  const CVector b = matvec(a, x_true);
  const CVector x = cholesky_solve(a, b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(x[i] - x_true[i]), 0.0, 1e-9);
  }
}

TEST_P(CholeskySolveTest, InverseIsTwoSided) {
  const auto n = static_cast<std::size_t>(GetParam());
  const CMatrix a = random_spd(n, 29 + n);
  const CMatrix inv = cholesky_inverse(a);
  EXPECT_NEAR((a * inv).max_abs_diff(CMatrix::identity(n)), 0.0, 1e-9);
  EXPECT_NEAR((inv * a).max_abs_diff(CMatrix::identity(n)), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySolveTest,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(Substitution, ForwardThenBackwardSolves) {
  const CMatrix a = random_spd(4, 91);
  const CMatrix l = cholesky(a);
  CVector b(4);
  for (std::size_t i = 0; i < 4; ++i) b[i] = Complex{1.0, -0.5};
  const CVector y = forward_substitute(l, b);
  const CVector ly = matvec(l, y);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(std::abs(ly[i] - b[i]), 0.0, 1e-10);
  }
  const CVector x = backward_substitute_hermitian(l, y);
  const CVector ax = matvec(a, x);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(std::abs(ax[i] - b[i]), 0.0, 1e-9);
  }
}

TEST(Substitution, DimensionMismatchThrows) {
  const CMatrix l = cholesky(random_spd(3, 1));
  EXPECT_THROW((void)forward_substitute(l, CVector(4)),
               std::invalid_argument);
  EXPECT_THROW((void)backward_substitute_hermitian(l, CVector(2)),
               std::invalid_argument);
}

}  // namespace
}  // namespace dwatch::linalg
