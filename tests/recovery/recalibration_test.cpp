// RecalibrationManager tests: residual-based acceptance, rollback of
// worse candidates, background execution, and launch serialization.
#include "recovery/recalibration.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rf/array.hpp"
#include "rf/noise.hpp"
#include "rf/snapshot.hpp"

namespace dwatch::recovery {
namespace {

constexpr std::size_t kM = 8;

std::vector<double> true_offsets() {
  return {0.0, 0.7, -1.1, 2.0, 0.3, -0.6, 1.4, -2.2};
}

rf::PropagationPath plane_path(double theta_deg, double amp) {
  rf::PropagationPath p;
  p.kind = rf::PathKind::kDirect;
  p.vertices = {{-10, 0, 1}, {0, 0, 1}};
  p.length = 10.0;
  p.aoa = rf::deg2rad(theta_deg);
  p.gain = {amp, 0.0};
  return p;
}

std::vector<core::CalibrationMeasurement> make_measurements(
    std::size_t k, std::uint64_t seed) {
  const rf::UniformLinearArray ula({0, 0, 1}, {1, 0}, kM);
  rf::Rng rng(seed);
  std::vector<core::CalibrationMeasurement> out;
  for (std::size_t i = 0; i < k; ++i) {
    const double los_deg = 25.0 + 130.0 * static_cast<double>(i) /
                                      std::max<std::size_t>(k - 1, 1);
    const std::vector<rf::PropagationPath> paths{plane_path(los_deg, 0.02)};
    rf::SnapshotOptions opts;
    opts.num_snapshots = 24;
    opts.noise_sigma = rf::noise_sigma_for_snr(paths, 1.0, 30.0);
    opts.port_phase_offsets = true_offsets();
    core::CalibrationMeasurement m;
    m.snapshots = rf::synthesize_snapshots(ula, paths, {}, opts, rng);
    m.los_angle = rf::deg2rad(los_deg);
    out.push_back(std::move(m));
  }
  return out;
}

core::WirelessCalibrator default_calibrator() {
  return core::WirelessCalibrator(rf::kDefaultElementSpacing,
                                  rf::kDefaultWavelength);
}

TEST(Recalibration, AcceptsWhenIncumbentHasDrifted) {
  const core::WirelessCalibrator cal = default_calibrator();
  const auto meas = make_measurements(6, 101);

  // Incumbent = truth + a large per-element drift: its residual on
  // fresh anchors is bad, so a clean re-solve must win and be accepted.
  std::vector<double> drifted = true_offsets();
  for (std::size_t i = 1; i < drifted.size(); ++i) {
    drifted[i] += 0.8 * static_cast<double>(i);
  }

  RecalibrationManager mgr(nullptr);  // synchronous
  ASSERT_TRUE(mgr.launch(0, cal, meas, drifted));
  const auto outcome = mgr.poll();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->array_idx, 0u);
  EXPECT_TRUE(outcome->accepted);
  EXPECT_LT(outcome->candidate_residual, outcome->incumbent_residual);
  ASSERT_EQ(outcome->offsets.size(), kM);
  EXPECT_LT(core::mean_phase_error(outcome->offsets, true_offsets()), 0.1);
  // Future consumed: nothing further to collect.
  EXPECT_FALSE(mgr.busy());
  EXPECT_FALSE(mgr.poll().has_value());
}

TEST(Recalibration, RollsBackWhenIncumbentIsAlreadyOptimal) {
  const core::WirelessCalibrator cal = default_calibrator();
  const auto meas = make_measurements(6, 103);

  // Starve the optimizer so the candidate cannot beat a near-perfect
  // incumbent: tiny GA population, no refinement.
  core::CalibrationOptions starved;
  starved.optimizer.ga.population = 4;
  starved.optimizer.ga.generations = 1;
  starved.optimizer.gd.max_iterations = 0;
  const core::WirelessCalibrator weak(rf::kDefaultElementSpacing,
                                      rf::kDefaultWavelength, starved);

  RecalibrationManager mgr(nullptr);
  ASSERT_TRUE(mgr.launch(0, weak, meas, true_offsets()));
  const auto outcome = mgr.poll();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->accepted);
  EXPECT_TRUE(outcome->offsets.empty());
  EXPECT_GE(outcome->candidate_residual,
            outcome->incumbent_residual);  // why it was rolled back
}

TEST(Recalibration, MalformedAnchorsRollBackInsteadOfThrowing) {
  const core::WirelessCalibrator cal = default_calibrator();
  RecalibrationManager mgr(nullptr);
  // Empty measurement set: make_probe throws inside the task; the
  // manager must surface a rollback, not an exception.
  ASSERT_TRUE(mgr.launch(2, cal, {}, true_offsets()));
  const auto outcome = mgr.poll();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->array_idx, 2u);
  EXPECT_FALSE(outcome->accepted);
}

TEST(Recalibration, SerializesLaunches) {
  const core::WirelessCalibrator cal = default_calibrator();
  const auto meas = make_measurements(4, 107);
  RecalibrationManager mgr(nullptr);
  ASSERT_TRUE(mgr.launch(0, cal, meas, true_offsets()));
  // Synchronous mode completes inside launch(), but the outcome is
  // still pending collection — a second launch must be refused.
  EXPECT_TRUE(mgr.busy());
  EXPECT_FALSE(mgr.launch(1, cal, meas, true_offsets()));
  EXPECT_TRUE(mgr.poll().has_value());
  // Collected: relaunching is allowed again.
  EXPECT_TRUE(mgr.launch(1, cal, meas, true_offsets()));
  EXPECT_TRUE(mgr.wait().has_value());
}

TEST(Recalibration, BackgroundPoolMatchesSynchronousDecision) {
  const core::WirelessCalibrator cal = default_calibrator();
  const auto meas = make_measurements(6, 109);
  std::vector<double> drifted = true_offsets();
  for (std::size_t i = 1; i < drifted.size(); ++i) drifted[i] += 1.0;

  RecalibrationManager sync_mgr(nullptr);
  ASSERT_TRUE(sync_mgr.launch(0, cal, meas, drifted));
  const auto sync_outcome = sync_mgr.poll();
  ASSERT_TRUE(sync_outcome.has_value());

  auto pool = std::make_shared<core::ThreadPool>(2);
  RecalibrationManager bg_mgr(pool);
  ASSERT_TRUE(bg_mgr.launch(0, cal, meas, drifted));
  const auto bg_outcome = bg_mgr.wait();
  ASSERT_TRUE(bg_outcome.has_value());

  // Same seed derivation (array 0, generation 1) => identical solve.
  EXPECT_EQ(bg_outcome->accepted, sync_outcome->accepted);
  EXPECT_EQ(bg_outcome->offsets, sync_outcome->offsets);
  EXPECT_EQ(bg_outcome->candidate_residual, sync_outcome->candidate_residual);
  EXPECT_EQ(bg_outcome->incumbent_residual, sync_outcome->incumbent_residual);
}

TEST(Recalibration, PollWithoutLaunchIsEmpty) {
  RecalibrationManager mgr(nullptr);
  EXPECT_FALSE(mgr.busy());
  EXPECT_FALSE(mgr.poll().has_value());
  EXPECT_FALSE(mgr.wait().has_value());
}

}  // namespace
}  // namespace dwatch::recovery
