// EpochSupervisor tests: cooperative deadline accounting with a fake
// clock, preemptive run_guarded() with real hung stages, and stats.
#include "recovery/supervisor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace dwatch::recovery {
namespace {

/// Manually advanced microsecond clock.
struct FakeClock {
  std::uint64_t now = 0;
  EpochSupervisor::Clock fn() {
    return [this] { return now; };
  }
};

TEST(EpochSupervisor, DefaultBudgetsCoverTheStageTaxonomy) {
  const auto budgets = default_stage_budgets();
  for (const char* stage :
       {"llrp.decode_report", "report_stream.ingest", "pmusic.spectrum",
        "pipeline.observe", "pipeline.observe_batch", "localize.fix",
        "calibration.solve"}) {
    EXPECT_TRUE(budgets.contains(stage)) << stage;
  }
  // Sanity ordering: a full fix may take longer than any single stage
  // below it, and calibration dwarfs everything.
  EXPECT_GT(budgets.at("localize.fix"), budgets.at("localize.hill_climb"));
  EXPECT_GT(budgets.at("calibration.solve"), budgets.at("localize.fix"));
}

TEST(EpochSupervisor, WithinBudgetStaysLive) {
  FakeClock clock;
  EpochSupervisor sup(default_stage_budgets(), clock.fn());
  sup.begin_epoch(1);
  sup.begin_stage("pipeline.observe");
  clock.now += 19'000;  // budget is 20 ms
  EXPECT_TRUE(sup.end_stage("pipeline.observe"));
  EXPECT_FALSE(sup.aborted());
  EXPECT_EQ(sup.stats().stage_overruns, 0u);
}

TEST(EpochSupervisor, OverrunAbortsTheEpoch) {
  FakeClock clock;
  EpochSupervisor sup(default_stage_budgets(), clock.fn());
  sup.begin_epoch(1);
  sup.begin_stage("pipeline.observe");
  clock.now += 21'000;  // 1 ms over the 20 ms budget
  EXPECT_FALSE(sup.end_stage("pipeline.observe"));
  EXPECT_TRUE(sup.aborted());
  EXPECT_EQ(sup.stats().stage_overruns, 1u);
  EXPECT_EQ(sup.stats().epochs_aborted, 1u);

  // A second overrun in the SAME epoch counts a new overrun but not a
  // new aborted epoch.
  sup.begin_stage("change.detect");
  clock.now += 10'000;
  EXPECT_FALSE(sup.end_stage("change.detect"));
  EXPECT_EQ(sup.stats().stage_overruns, 2u);
  EXPECT_EQ(sup.stats().epochs_aborted, 1u);

  // The next epoch starts clean.
  sup.begin_epoch(2);
  EXPECT_FALSE(sup.aborted());
  sup.begin_stage("pipeline.observe");
  clock.now += 1'000;
  EXPECT_TRUE(sup.end_stage("pipeline.observe"));
  EXPECT_EQ(sup.stats().epochs_supervised, 2u);
}

TEST(EpochSupervisor, UnbudgetedStagesAreUnconstrained) {
  FakeClock clock;
  EpochSupervisor sup(default_stage_budgets(), clock.fn());
  sup.begin_epoch(1);
  sup.begin_stage("experiment.some_custom_stage");
  clock.now += 60'000'000;  // a minute
  EXPECT_TRUE(sup.end_stage("experiment.some_custom_stage"));
  EXPECT_FALSE(sup.aborted());
}

TEST(EpochSupervisor, RunGuardedCompletesFastStages) {
  EpochSupervisor sup;
  sup.begin_epoch(1);
  std::atomic<bool> ran{false};
  EXPECT_TRUE(sup.run_guarded("pipeline.observe", 5'000'000,
                              [&ran] { ran = true; }));
  EXPECT_TRUE(ran.load());
  EXPECT_FALSE(sup.aborted());
  EXPECT_FALSE(sup.pending());
}

TEST(EpochSupervisor, RunGuardedAbandonsHungStageAndStaysLive) {
  EpochSupervisor sup;
  sup.begin_epoch(7);
  std::atomic<bool> finished{false};
  // The "hung" stage sleeps 200 ms against a 5 ms budget: the
  // supervisor must give up at the deadline, flag the epoch, and leave
  // the zombie running.
  EXPECT_FALSE(sup.run_guarded("llrp.decode_report", 5'000, [&finished] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    finished = true;
  }));
  EXPECT_TRUE(sup.aborted());
  EXPECT_EQ(sup.stats().epochs_aborted, 1u);
  EXPECT_TRUE(sup.pending());
  // The zombie had NOT finished when the supervisor returned.
  // (It may finish any moment now; what matters is the supervisor did
  // not block the 200 ms.)

  // The pipeline stays live: the next epoch runs normally, and starting
  // its first guarded stage reaps the zombie.
  sup.begin_epoch(8);
  EXPECT_TRUE(sup.run_guarded("llrp.decode_report", 5'000'000, [] {}));
  EXPECT_TRUE(finished.load());  // zombie completed before reuse
  EXPECT_FALSE(sup.pending());
  EXPECT_FALSE(sup.aborted());
}

TEST(EpochSupervisor, DestructorReapsZombie) {
  std::atomic<bool> finished{false};
  {
    EpochSupervisor sup;
    sup.begin_epoch(1);
    EXPECT_FALSE(sup.run_guarded("change.detect", 1'000, [&finished] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      finished = true;
    }));
  }  // destructor joins
  EXPECT_TRUE(finished.load());
}

}  // namespace
}  // namespace dwatch::recovery
