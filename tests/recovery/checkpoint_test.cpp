// Checkpoint codec + store tests: round-trip fidelity, atomicity under
// mid-write crashes, fuzz-style rejection of truncated and bit-flipped
// images, and binary format stability against a checked-in golden.
//
// Regenerating the golden after an INTENDED format change (bump
// kCheckpointVersion first!):
//   DWATCH_REGEN_GOLDEN=1 ./recovery_tests --gtest_filter='*Golden*'
// then commit tests/recovery/golden/checkpoint_v1.bin.
#include "recovery/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

namespace dwatch::recovery {
namespace {

/// A representative snapshot exercising every optional branch: two
/// arrays (one uncalibrated, one excluded), baselines, both trackers,
/// quarantine entries, non-zero stats. Pure literals — reproducible
/// bit-for-bit on every platform, which the golden test depends on.
Snapshot make_snapshot() {
  Snapshot snap;
  snap.epoch = 41;

  core::PipelineState& p = snap.pipeline;
  p.watermark_us = 123456789;
  p.calibration = {std::vector<double>{0.0, 0.25, -1.5, 3.0}, std::nullopt};
  p.baselines.resize(2);
  p.baselines[0].insert_or_assign(
      rfid::Epc96::for_tag_index(7),
      core::AngularSpectrum(std::vector<double>{0.1, 0.9, 0.4, 0.2, 0.05}));
  p.baselines[0].insert_or_assign(
      rfid::Epc96::for_tag_index(9),
      core::AngularSpectrum(std::vector<double>{1.0, 0.5, 0.25}));
  p.baselines[1].insert_or_assign(
      rfid::Epc96::for_tag_index(3),
      core::AngularSpectrum(std::vector<double>{0.0, -2.5, 7.75}));
  p.excluded = {0, 1};
  p.stats.baselines = 3;
  p.stats.epochs = 42;
  p.stats.observations = 840;
  p.stats.observations_skipped = 4;
  p.stats.drops_detected = 77;
  p.stats.stale_observations = 2;
  p.stats.low_snapshot_observations = 5;
  p.stats.malformed_observations = 1;
  p.stats.reports_dropped = 11;
  p.stats.transport_retries = 9;
  p.stats.transport_timeouts = 3;

  core::KalmanState k;
  k.x = {1.5, -0.25, 0.04, 0.01, 0.09};
  k.y = {3.75, 0.5, 0.05, -0.02, 0.08};
  k.initialized = true;
  k.misses = 2;
  snap.kalman = k;

  core::AlphaBetaState ab;
  ab.position = {2.5, 3.5};
  ab.velocity = {-0.125, 0.0625};
  ab.initialized = true;
  ab.misses = 1;
  snap.alpha_beta = ab;

  snap.quarantine = {
      {rfid::Epc96::for_tag_index(7), {0x1111222233334444ULL, 0xAAAAULL}},
      {rfid::Epc96::for_tag_index(9), {0xDEADBEEFCAFEF00DULL}},
  };

  snap.stats.checkpoints_written = 40;
  snap.stats.checkpoint_crashes = 2;
  snap.stats.restores = 1;
  snap.stats.recalibrations_triggered = 3;
  snap.stats.recalibrations_accepted = 2;
  snap.stats.recalibrations_rolled_back = 1;
  snap.stats.baselines_invalidated = 2;
  snap.stats.drift_epochs = 6;
  snap.stats.epochs_aborted = 1;
  return snap;
}

void expect_equal(const Snapshot& a, const Snapshot& b) {
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.pipeline.watermark_us, b.pipeline.watermark_us);
  EXPECT_EQ(a.pipeline.stats, b.pipeline.stats);
  EXPECT_EQ(a.pipeline.calibration, b.pipeline.calibration);
  EXPECT_EQ(a.pipeline.excluded, b.pipeline.excluded);
  ASSERT_EQ(a.pipeline.baselines.size(), b.pipeline.baselines.size());
  for (std::size_t i = 0; i < a.pipeline.baselines.size(); ++i) {
    const auto& ma = a.pipeline.baselines[i];
    const auto& mb = b.pipeline.baselines[i];
    ASSERT_EQ(ma.size(), mb.size());
    for (const auto& [epc, spectrum] : ma) {
      const auto it = mb.find(epc);
      ASSERT_NE(it, mb.end());
      EXPECT_EQ(spectrum.values(), it->second.values());
    }
  }
  ASSERT_EQ(a.kalman.has_value(), b.kalman.has_value());
  if (a.kalman) {
    EXPECT_EQ(a.kalman->x.pos, b.kalman->x.pos);
    EXPECT_EQ(a.kalman->x.vel, b.kalman->x.vel);
    EXPECT_EQ(a.kalman->x.p_pp, b.kalman->x.p_pp);
    EXPECT_EQ(a.kalman->x.p_pv, b.kalman->x.p_pv);
    EXPECT_EQ(a.kalman->x.p_vv, b.kalman->x.p_vv);
    EXPECT_EQ(a.kalman->y.pos, b.kalman->y.pos);
    EXPECT_EQ(a.kalman->initialized, b.kalman->initialized);
    EXPECT_EQ(a.kalman->misses, b.kalman->misses);
  }
  ASSERT_EQ(a.alpha_beta.has_value(), b.alpha_beta.has_value());
  if (a.alpha_beta) {
    EXPECT_EQ(a.alpha_beta->position, b.alpha_beta->position);
    EXPECT_EQ(a.alpha_beta->velocity, b.alpha_beta->velocity);
    EXPECT_EQ(a.alpha_beta->initialized, b.alpha_beta->initialized);
    EXPECT_EQ(a.alpha_beta->misses, b.alpha_beta->misses);
  }
  ASSERT_EQ(a.quarantine.size(), b.quarantine.size());
  for (std::size_t i = 0; i < a.quarantine.size(); ++i) {
    EXPECT_EQ(a.quarantine[i].epc, b.quarantine[i].epc);
    EXPECT_EQ(a.quarantine[i].fingerprints, b.quarantine[i].fingerprints);
  }
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CheckpointCodec, RoundTripsEverything) {
  const Snapshot original = make_snapshot();
  const std::vector<std::uint8_t> image = encode_snapshot(original);
  Snapshot decoded;
  ASSERT_EQ(decode_snapshot(image, decoded), RestoreError::kNone);
  expect_equal(original, decoded);
}

TEST(CheckpointCodec, RoundTripsEmptySnapshot) {
  Snapshot empty;  // no arrays, no trackers, nothing
  const std::vector<std::uint8_t> image = encode_snapshot(empty);
  Snapshot decoded;
  ASSERT_EQ(decode_snapshot(image, decoded), RestoreError::kNone);
  EXPECT_EQ(decoded.epoch, 0u);
  EXPECT_FALSE(decoded.kalman.has_value());
  EXPECT_FALSE(decoded.alpha_beta.has_value());
  EXPECT_TRUE(decoded.quarantine.empty());
  EXPECT_TRUE(decoded.pipeline.calibration.empty());
}

TEST(CheckpointCodec, EncodingIsDeterministic) {
  EXPECT_EQ(encode_snapshot(make_snapshot()), encode_snapshot(make_snapshot()));
}

TEST(CheckpointCodec, RejectsBadMagic) {
  std::vector<std::uint8_t> image = encode_snapshot(make_snapshot());
  image[0] = 'X';
  Snapshot out;
  EXPECT_EQ(decode_snapshot(image, out), RestoreError::kBadMagic);
}

TEST(CheckpointCodec, RejectsVersionSkew) {
  std::vector<std::uint8_t> image = encode_snapshot(make_snapshot());
  image[4] = static_cast<std::uint8_t>(kCheckpointVersion + 1);
  Snapshot out;
  EXPECT_EQ(decode_snapshot(image, out), RestoreError::kBadVersion);
}

TEST(CheckpointCodec, RejectsTruncationAtEveryLength) {
  // EVERY proper prefix must be rejected — the crash can land on any
  // byte boundary, including inside the header, a section length field,
  // or one byte before the end marker's CRC. The error must be
  // kTruncated or kBadCrc (a cut inside a section makes its trailing
  // "CRC" bytes garbage), never a successful decode.
  const std::vector<std::uint8_t> image = encode_snapshot(make_snapshot());
  for (std::size_t len = 0; len < image.size(); ++len) {
    Snapshot out;
    const RestoreError err = decode_snapshot(
        std::span<const std::uint8_t>(image.data(), len), out);
    EXPECT_NE(err, RestoreError::kNone) << "prefix of " << len << " decoded";
    if (len >= 8) {
      EXPECT_TRUE(err == RestoreError::kTruncated ||
                  err == RestoreError::kBadCrc)
          << "prefix " << len << ": " << to_string(err);
    }
  }
}

TEST(CheckpointCodec, RejectsEverySingleBitFlip) {
  // Flip each bit of the image in turn: no flipped image may decode to
  // a DIFFERENT snapshot without an error. (Flips in the magic/version
  // give kBadMagic/kBadVersion; anywhere else the section CRC or the
  // structural validation catches it. CRC16 guarantees detection of
  // every single-bit error.)
  const Snapshot original = make_snapshot();
  std::vector<std::uint8_t> image = encode_snapshot(original);
  for (std::size_t byte = 0; byte < image.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      image[byte] ^= static_cast<std::uint8_t>(1 << bit);
      Snapshot out;
      EXPECT_NE(decode_snapshot(image, out), RestoreError::kNone)
          << "bit " << bit << " of byte " << byte << " flipped undetected";
      image[byte] ^= static_cast<std::uint8_t>(1 << bit);
    }
  }
}

TEST(CheckpointCodec, RejectsTrailingJunk) {
  std::vector<std::uint8_t> image = encode_snapshot(make_snapshot());
  image.push_back(0x00);
  Snapshot out;
  EXPECT_NE(decode_snapshot(image, out), RestoreError::kNone);
}

TEST(CheckpointStore, MissingFileReportsMissing) {
  const CheckpointStore store(temp_path("no_such_checkpoint.bin"));
  Snapshot out;
  EXPECT_EQ(store.load(out), RestoreError::kMissing);
}

TEST(CheckpointStore, WriteThenLoadRoundTrips) {
  const std::string path = temp_path("checkpoint_roundtrip.bin");
  std::remove(path.c_str());
  CheckpointStore store(path);
  const Snapshot original = make_snapshot();
  ASSERT_TRUE(store.write(original));
  Snapshot loaded;
  ASSERT_EQ(store.load(loaded), RestoreError::kNone);
  expect_equal(original, loaded);
}

TEST(CheckpointStore, MidWriteCrashLeavesPreviousSnapshotIntact) {
  const std::string path = temp_path("checkpoint_atomic.bin");
  std::remove(path.c_str());
  CheckpointStore store(path);

  Snapshot first = make_snapshot();
  first.epoch = 10;
  ASSERT_TRUE(store.write(first));

  // Crash at every possible cut point of the second write: the
  // committed snapshot must still load as `first` each time.
  Snapshot second = make_snapshot();
  second.epoch = 11;
  const std::size_t image_size = encode_snapshot(second).size();
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{1}, std::size_t{7}, image_size / 2,
        image_size - 1}) {
    EXPECT_FALSE(store.write(
        second, [cut](std::size_t) { return std::optional<std::size_t>(cut); }));
    Snapshot loaded;
    ASSERT_EQ(store.load(loaded), RestoreError::kNone);
    EXPECT_EQ(loaded.epoch, 10u) << "crash at byte " << cut
                                 << " clobbered the committed snapshot";
  }

  // The temp wreckage from the torn write must itself be rejected.
  Snapshot wreck;
  const CheckpointStore wreck_store(path + ".tmp");
  EXPECT_NE(wreck_store.load(wreck), RestoreError::kNone);

  // A clean retry commits normally.
  ASSERT_TRUE(store.write(second));
  Snapshot loaded;
  ASSERT_EQ(store.load(loaded), RestoreError::kNone);
  EXPECT_EQ(loaded.epoch, 11u);
}

TEST(CheckpointStore, CrashFilterSeesImageSize) {
  const std::string path = temp_path("checkpoint_filter.bin");
  std::remove(path.c_str());
  CheckpointStore store(path);
  const Snapshot snap = make_snapshot();
  const std::size_t expected = encode_snapshot(snap).size();
  std::size_t seen = 0;
  ASSERT_TRUE(store.write(snap, [&seen](std::size_t bytes) {
    seen = bytes;
    return std::nullopt;  // don't actually crash
  }));
  EXPECT_EQ(seen, expected);
}

std::string golden_path() {
  return std::string(DWATCH_RECOVERY_GOLDEN_DIR) + "/checkpoint_v1.bin";
}

TEST(CheckpointGolden, BinaryFormatIsStable) {
  // The on-disk format is a compatibility promise: a snapshot written
  // by an older build must restore in a newer one (within one format
  // version). Byte-compare a freshly encoded canonical snapshot with
  // the checked-in image; any codec change that alters the bytes must
  // bump kCheckpointVersion and regenerate.
  const std::vector<std::uint8_t> image = encode_snapshot(make_snapshot());
  if (std::getenv("DWATCH_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary);
    out.write(reinterpret_cast<const char*>(image.data()),
              static_cast<std::streamsize>(image.size()));
    GTEST_SKIP() << "regenerated " << golden_path();
  }
  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << golden_path()
                         << " (regenerate with DWATCH_REGEN_GOLDEN=1)";
  std::vector<std::uint8_t> golden(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  ASSERT_EQ(golden.size(), image.size()) << "image size changed";
  for (std::size_t i = 0; i < golden.size(); ++i) {
    ASSERT_EQ(golden[i], image[i]) << "byte " << i << " diverged";
  }
  // And the golden image itself still decodes to the canonical content.
  Snapshot decoded;
  ASSERT_EQ(decode_snapshot(golden, decoded), RestoreError::kNone);
  expect_equal(make_snapshot(), decoded);
}

TEST(RestoreErrorNames, AllDistinct) {
  const RestoreError all[] = {
      RestoreError::kNone,      RestoreError::kMissing,
      RestoreError::kBadMagic,  RestoreError::kBadVersion,
      RestoreError::kTruncated, RestoreError::kBadCrc,
      RestoreError::kMalformed};
  for (std::size_t a = 0; a < std::size(all); ++a) {
    EXPECT_FALSE(to_string(all[a]).empty());
    for (std::size_t b = a + 1; b < std::size(all); ++b) {
      EXPECT_NE(to_string(all[a]), to_string(all[b]));
    }
  }
}

}  // namespace
}  // namespace dwatch::recovery
