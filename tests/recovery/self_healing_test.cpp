// RecoveryCoordinator tests.
//
// Part 1 drives the coordinator on a small synthetic pipeline with
// hand-made anchor measurements: trigger/accept, rollback + cooldown,
// and checkpoint/restore of every attached component.
//
// Part 2 runs the acceptance criteria of the self-healing design on
// the full sim chain:
//   * under a 0.1 rad/epoch injected calibration creep, the median
//     localization error WITH the watchdog stays within 2x the
//     no-drift baseline, while the watchdog-disabled run degrades
//     beyond it;
//   * a run killed after epoch E (including a simulated mid-write
//     checkpoint crash) restores from the latest valid snapshot and
//     produces bit-identical fixes from there on.
#include "recovery/self_healing.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/kalman.hpp"
#include "core/pipeline.hpp"
#include "core/tracker.hpp"
#include "faults/fault_injector.hpp"
#include "harness/experiment.hpp"
#include "rf/array.hpp"
#include "rf/noise.hpp"
#include "rf/snapshot.hpp"
#include "sim/scene.hpp"

namespace dwatch::recovery {
namespace {

// ---------------------------------------------------------------------------
// Part 1: synthetic-anchor coordinator unit tests.
// ---------------------------------------------------------------------------

constexpr std::size_t kM = 8;

std::vector<double> true_offsets() {
  return {0.0, 0.7, -1.1, 2.0, 0.3, -0.6, 1.4, -2.2};
}

rf::PropagationPath plane_path(double theta_deg, double amp) {
  rf::PropagationPath p;
  p.kind = rf::PathKind::kDirect;
  p.vertices = {{-10, 0, 1}, {0, 0, 1}};
  p.length = 10.0;
  p.aoa = rf::deg2rad(theta_deg);
  p.gain = {amp, 0.0};
  return p;
}

/// Anchor measurements whose element phases carry `offsets` — the
/// "installed hardware state" the watchdog probes against.
std::vector<core::CalibrationMeasurement> make_anchors(
    std::size_t k, std::uint64_t seed, const std::vector<double>& offsets) {
  const rf::UniformLinearArray ula({0, 0, 1}, {1, 0}, kM);
  rf::Rng rng(seed);
  std::vector<core::CalibrationMeasurement> out;
  for (std::size_t i = 0; i < k; ++i) {
    const double los_deg = 25.0 + 130.0 * static_cast<double>(i) /
                                      std::max<std::size_t>(k - 1, 1);
    const std::vector<rf::PropagationPath> paths{plane_path(los_deg, 0.02)};
    rf::SnapshotOptions opts;
    opts.num_snapshots = 24;
    opts.noise_sigma = rf::noise_sigma_for_snr(paths, 1.0, 30.0);
    opts.port_phase_offsets = offsets;
    core::CalibrationMeasurement m;
    m.snapshots = rf::synthesize_snapshots(ula, paths, {}, opts, rng);
    m.los_angle = rf::deg2rad(los_deg);
    out.push_back(std::move(m));
  }
  return out;
}

/// Truth plus a per-element creep of `rad` radians (alternating sign,
/// element 0 pinned — offsets are relative to the reference port).
std::vector<double> drifted_offsets(double rad) {
  std::vector<double> off = true_offsets();
  for (std::size_t i = 1; i < off.size(); ++i) {
    off[i] += (i % 2 == 0 ? rad : -rad);
  }
  return off;
}

core::DWatchPipeline make_unit_pipeline() {
  std::vector<rf::UniformLinearArray> arrays{
      rf::UniformLinearArray({3, 0, 1}, {1, 0}, kM)};
  return core::DWatchPipeline(std::move(arrays),
                              core::SearchBounds{{0, 0}, {6, 6}});
}

std::vector<core::WirelessCalibrator> make_unit_calibrators(
    const core::DWatchPipeline&) {
  return {core::WirelessCalibrator(rf::kDefaultElementSpacing,
                                   rf::kDefaultWavelength)};
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

TEST(RecoveryCoordinator, RejectsCalibratorCountMismatch) {
  core::DWatchPipeline pipe = make_unit_pipeline();
  EXPECT_THROW(RecoveryCoordinator(pipe, {}, CheckpointStore(temp_path("x"))),
               std::invalid_argument);
}

TEST(RecoveryCoordinator, DriftTriggersRecalibrationAndHotSwap) {
  core::DWatchPipeline pipe = make_unit_pipeline();
  pipe.set_calibration(0, true_offsets());
  // A baseline that must be invalidated by the swap.
  pipe.add_baseline(0, rfid::Epc96::for_tag_index(3),
                    make_anchors(1, 77, true_offsets())[0].snapshots);

  RecoveryOptions opt;
  opt.watchdog.warmup_epochs = 2;
  opt.background = false;    // swap lands inside end_epoch()
  opt.checkpoint_every = 0;  // no disk in this test
  RecoveryCoordinator coord(pipe, make_unit_calibrators(pipe),
                            CheckpointStore(temp_path("unused.bin")), opt);

  // Healthy epochs: anchors match the installed offsets.
  std::vector<std::vector<core::CalibrationMeasurement>> anchors(1);
  for (std::uint64_t e = 0; e < 4; ++e) {
    anchors[0] = make_anchors(5, 100 + e, true_offsets());
    EXPECT_TRUE(coord.end_epoch(e, anchors).empty());
  }
  EXPECT_EQ(coord.watchdog().state(0), DriftState::kHealthy);
  EXPECT_EQ(coord.stats().recalibrations_triggered, 0u);

  // The hardware drifts: anchors now carry a large per-element creep
  // the installed offsets no longer match. The residual jumps, the
  // CUSUM trips, and the synchronous recalibration hot-swaps.
  std::vector<std::size_t> invalidated;
  std::uint64_t epoch = 4;
  while (invalidated.empty() && epoch < 20) {
    anchors[0] = make_anchors(5, 100 + epoch, drifted_offsets(0.9));
    invalidated = coord.end_epoch(epoch, anchors);
    ++epoch;
  }
  ASSERT_EQ(invalidated.size(), 1u);
  EXPECT_EQ(invalidated[0], 0u);
  EXPECT_EQ(coord.stats().recalibrations_triggered, 1u);
  EXPECT_EQ(coord.stats().recalibrations_accepted, 1u);
  EXPECT_EQ(coord.stats().recalibrations_rolled_back, 0u);
  EXPECT_GT(coord.stats().drift_epochs, 0u);

  // The swap installed offsets close to the drifted truth...
  ASSERT_TRUE(pipe.calibration(0).has_value());
  EXPECT_LT(core::mean_phase_error(*pipe.calibration(0), drifted_offsets(0.9)),
            0.1);
  // ...and dropped the superseded baselines.
  EXPECT_TRUE(pipe.export_state().baselines[0].empty());
  // The watchdog re-learns under the new calibration and reports
  // healthy again on matching anchors.
  for (std::uint64_t e = epoch; e < epoch + 4; ++e) {
    anchors[0] = make_anchors(5, 100 + e, drifted_offsets(0.9));
    EXPECT_TRUE(coord.end_epoch(e, anchors).empty());
  }
  EXPECT_EQ(coord.watchdog().state(0), DriftState::kHealthy);
}

TEST(RecoveryCoordinator, WorseCandidateRollsBackAndCoolsDown) {
  core::DWatchPipeline pipe = make_unit_pipeline();
  pipe.set_calibration(0, true_offsets());

  RecoveryOptions opt;
  opt.watchdog.warmup_epochs = 2;
  opt.background = false;
  opt.checkpoint_every = 0;
  opt.recalibration_cooldown = 3;
  // An impossible acceptance bar: every candidate rolls back.
  opt.recalibration.acceptance_margin = 0.0;
  RecoveryCoordinator coord(pipe, make_unit_calibrators(pipe),
                            CheckpointStore(temp_path("unused2.bin")), opt);

  std::vector<std::vector<core::CalibrationMeasurement>> anchors(1);
  std::uint64_t epoch = 0;
  for (; epoch < 3; ++epoch) {
    anchors[0] = make_anchors(5, 300 + epoch, true_offsets());
    (void)coord.end_epoch(epoch, anchors);
  }
  // Drift until the (rejected) recalibration fires.
  while (coord.stats().recalibrations_triggered == 0 && epoch < 20) {
    anchors[0] = make_anchors(5, 300 + epoch, drifted_offsets(0.9));
    EXPECT_TRUE(coord.end_epoch(epoch, anchors).empty());
    ++epoch;
  }
  EXPECT_EQ(coord.stats().recalibrations_triggered, 1u);
  EXPECT_EQ(coord.stats().recalibrations_rolled_back, 1u);
  EXPECT_EQ(coord.stats().recalibrations_accepted, 0u);
  // The incumbent survived untouched.
  ASSERT_TRUE(pipe.calibration(0).has_value());
  EXPECT_EQ(*pipe.calibration(0), true_offsets());

  // Cooldown: the drift is still there, the watchdog re-trips, but no
  // new solve may launch before the cooldown expires. Re-learning takes
  // warmup_epochs, so probe the epochs inside the cooldown window.
  const std::uint64_t rollback_epoch = epoch - 1;
  for (; epoch < rollback_epoch + opt.recalibration_cooldown; ++epoch) {
    anchors[0] = make_anchors(5, 300 + epoch, drifted_offsets(0.9));
    (void)coord.end_epoch(epoch, anchors);
    EXPECT_EQ(coord.stats().recalibrations_triggered, 1u)
        << "triggered during cooldown at epoch " << epoch;
  }
}

TEST(RecoveryCoordinator, CheckpointsAndRestoresEveryAttachedComponent) {
  const std::string path = temp_path("coordinator_roundtrip.bin");

  core::DWatchPipeline pipe = make_unit_pipeline();
  pipe.set_calibration(0, true_offsets());
  pipe.add_baseline(0, rfid::Epc96::for_tag_index(7),
                    make_anchors(1, 78, true_offsets())[0].snapshots);
  pipe.begin_epoch(4242);

  core::KalmanTracker kalman;
  (void)kalman.update({1.0, 2.0});
  (void)kalman.update({1.2, 2.3});
  core::AlphaBetaTracker ab;
  (void)ab.update({3.0, 4.0});

  RecoveryOptions opt;
  opt.background = false;
  opt.checkpoint_every = 2;  // epochs 1, 3, ... (cadence on completion)
  RecoveryCoordinator coord(pipe, make_unit_calibrators(pipe),
                            CheckpointStore(path), opt);
  coord.attach_kalman(&kalman);
  coord.attach_tracker(&ab);

  std::vector<std::vector<core::CalibrationMeasurement>> no_anchors(1);
  (void)coord.end_epoch(0, no_anchors);
  EXPECT_EQ(coord.stats().checkpoints_written, 0u);  // cadence: not yet
  (void)coord.end_epoch(1, no_anchors);
  EXPECT_EQ(coord.stats().checkpoints_written, 1u);
  EXPECT_EQ(coord.last_checkpoint_epoch(), 1u);

  // A different process comes up cold and restores.
  core::DWatchPipeline fresh = make_unit_pipeline();
  core::KalmanTracker kalman2;
  core::AlphaBetaTracker ab2;
  RecoveryCoordinator coord2(fresh, make_unit_calibrators(fresh),
                             CheckpointStore(path), opt);
  coord2.attach_kalman(&kalman2);
  coord2.attach_tracker(&ab2);
  ASSERT_EQ(coord2.restore(), RestoreError::kNone);

  EXPECT_EQ(coord2.last_checkpoint_epoch(), 1u);
  // A snapshot is serialized before its own write succeeds, so the
  // restored counter is one behind the writer's view.
  EXPECT_EQ(coord2.stats().checkpoints_written, 0u);
  EXPECT_EQ(coord2.stats().restores, 1u);
  ASSERT_TRUE(fresh.calibration(0).has_value());
  EXPECT_EQ(*fresh.calibration(0), true_offsets());
  const core::PipelineState state = fresh.export_state();
  ASSERT_EQ(state.baselines[0].size(), 1u);
  EXPECT_EQ(state.watermark_us, 4242u);
  EXPECT_EQ(kalman2.state().x.pos, kalman.state().x.pos);
  EXPECT_EQ(kalman2.state().y.vel, kalman.state().y.vel);
  EXPECT_EQ(kalman2.initialized(), kalman.initialized());
  EXPECT_EQ(ab2.state().position.x, ab.state().position.x);

  // No snapshot on disk => kMissing, and the pipeline is untouched.
  core::DWatchPipeline cold = make_unit_pipeline();
  RecoveryCoordinator coord3(cold, make_unit_calibrators(cold),
                             CheckpointStore(temp_path("nope.bin")), opt);
  EXPECT_EQ(coord3.restore(), RestoreError::kMissing);
  EXPECT_FALSE(cold.calibration(0).has_value());
}

// ---------------------------------------------------------------------------
// Part 2: acceptance criteria on the full sim chain.
// ---------------------------------------------------------------------------

using faults::FaultInjector;
using faults::FaultPlan;
using faults::FaultRates;

constexpr std::uint64_t kSceneSeed = 20160901;  // CoNEXT'16

sim::Scene make_scene() {
  rf::Rng rng(kSceneSeed);
  sim::Deployment dep = sim::make_room_deployment(
      sim::Environment::library(), sim::DeploymentOptions{}, rng);
  return sim::Scene(std::move(dep), sim::CaptureOptions{}, rng);
}

core::DWatchPipeline make_chain_pipeline(const sim::Scene& scene) {
  core::PipelineOptions opts;
  opts.localizer.grid_step = 0.1;
  const auto& env = scene.deployment().env;
  return core::DWatchPipeline(
      scene.deployment().arrays,
      core::SearchBounds{{0.0, 0.0}, {env.width, env.depth}}, opts);
}

std::vector<core::WirelessCalibrator> make_chain_calibrators(
    const sim::Scene& scene) {
  std::vector<core::WirelessCalibrator> out;
  for (const rf::UniformLinearArray& a : scene.deployment().arrays) {
    out.emplace_back(a.spacing(), a.lambda());
  }
  return out;
}

rf::Vec2 target_at(std::size_t epoch) {
  return {2.6 + 0.2 * static_cast<double>(epoch),
          3.6 + 0.25 * static_cast<double>(epoch)};
}

struct ChainResult {
  std::vector<double> errors;
  std::vector<core::ConfidentEstimate> fixes;
  RecoveryStats stats;

  [[nodiscard]] double median_error() const {
    std::vector<double> e = errors;
    std::sort(e.begin(), e.end());
    return e[e.size() / 2];
  }

  [[nodiscard]] std::string describe() const {
    std::string s = "errors=[";
    for (const double e : errors) s += std::to_string(e) + " ";
    s += "] triggered=" + std::to_string(stats.recalibrations_triggered) +
         " accepted=" + std::to_string(stats.recalibrations_accepted) +
         " rolled_back=" + std::to_string(stats.recalibrations_rolled_back) +
         " drift_epochs=" + std::to_string(stats.drift_epochs);
    return s;
  }
};

/// Capture an empty-scene report through the (drifting) injector and
/// install it as array `a`'s reference spectra — what a deployment does
/// after a calibration swap invalidates the old baselines.
void recapture_baselines(const sim::Scene& scene, core::DWatchPipeline& pipe,
                         FaultInjector& injector, std::size_t a,
                         std::size_t epoch) {
  rf::Rng rng(kSceneSeed + 900'000 + 1000 * (epoch + 1) + a);
  rfid::RoAccessReport report =
      scene.capture_report(a, {}, rng, static_cast<std::uint32_t>(epoch),
                           /*first_seen_us=*/1000 * (epoch + 1) + 5);
  injector.corrupt_report(report, epoch, a);
  for (const rfid::TagObservation& obs : report.observations) {
    pipe.add_baseline(a, obs);
  }
}

/// The full self-healing chain: per epoch, capture -> inject drift ->
/// observe -> fix -> (optionally) coordinator end_epoch with this
/// epoch's anchor probes, re-capturing baselines for any array whose
/// calibration was hot-swapped.
ChainResult run_drift_chain(double drift_rate, bool with_watchdog,
                            std::size_t num_epochs,
                            const std::string& checkpoint_path) {
  const sim::Scene scene = make_scene();
  core::DWatchPipeline pipe = make_chain_pipeline(scene);
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    pipe.set_calibration(a, scene.reader(a).phase_offsets());
  }

  FaultRates rates;
  rates.slow_phase_drift = drift_rate;
  FaultInjector injector(FaultPlan(7, rates));

  // Clean baselines before the drift sets in (epoch 0 is drift-free).
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    rf::Rng rng(kSceneSeed + 100 + a);
    const rfid::RoAccessReport report =
        scene.capture_report(a, {}, rng, 0, /*first_seen_us=*/1);
    for (const rfid::TagObservation& obs : report.observations) {
      pipe.add_baseline(a, obs);
    }
  }

  RecoveryOptions opt;
  // Sensitive detection: a 0.1 rad/epoch creep only raises the anchor
  // residual a few percent per epoch at first, and with four arrays
  // sharing one recalibration slot the last array heals several epochs
  // after the first trip — so trip early.
  opt.watchdog.warmup_epochs = 2;
  opt.watchdog.cusum_slack = 0.1;
  opt.watchdog.cusum_threshold = 1.0;
  opt.background = false;  // deterministic swap timing
  opt.checkpoint_every = with_watchdog ? 4 : 0;
  opt.recalibration_cooldown = 1;
  RecoveryCoordinator coord(pipe, make_chain_calibrators(scene),
                            CheckpointStore(checkpoint_path), opt);

  // Each array probes its 4 nearest tags as known-LoS anchors.
  std::vector<std::vector<std::size_t>> anchor_tags;
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    anchor_tags.push_back(harness::nearest_tags(scene, a, 4));
  }

  ChainResult result;
  for (std::size_t epoch = 0; epoch < num_epochs; ++epoch) {
    const rf::Vec2 truth = target_at(epoch);
    const sim::CylinderTarget targets[] = {sim::CylinderTarget::human(truth)};
    const std::uint64_t watermark = 1000 * (epoch + 1);
    pipe.begin_epoch(watermark);

    std::vector<std::vector<core::CalibrationMeasurement>> anchors(
        scene.num_arrays());
    for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
      rf::Rng rng(kSceneSeed + 1000 * (epoch + 1) + a);
      rfid::RoAccessReport report = scene.capture_report(
          a, targets, rng, static_cast<std::uint32_t>(epoch),
          /*first_seen_us=*/watermark + 10);
      injector.corrupt_report(report, epoch, a);
      for (const rfid::TagObservation& obs : report.observations) {
        (void)pipe.observe(a, obs);
      }
      anchors[a] =
          harness::anchor_measurements(scene, a, report, anchor_tags[a]);
    }

    const core::ConfidentEstimate fix =
        pipe.localize_with_confidence(/*best_effort=*/true);
    result.errors.push_back(rf::distance(fix.estimate.position, truth));
    result.fixes.push_back(fix);

    if (with_watchdog) {
      for (const std::size_t a : coord.end_epoch(epoch, anchors)) {
        recapture_baselines(scene, pipe, injector, a, epoch);
      }
    }
  }
  result.stats = coord.stats();
  return result;
}

TEST(SelfHealing, WatchdogBoundsDriftErrorWhileDisabledDegrades) {
  constexpr std::size_t kEpochs = 12;
  constexpr double kDriftRate = 0.1;  // rad/epoch, the design point

  const ChainResult clean = run_drift_chain(
      0.0, false, kEpochs, temp_path("drift_clean.bin"));
  const ChainResult healed = run_drift_chain(
      kDriftRate, true, kEpochs, temp_path("drift_healed.bin"));
  const ChainResult sick = run_drift_chain(
      kDriftRate, false, kEpochs, temp_path("drift_sick.bin"));

  // The watchdog actually did something: detections fired and at least
  // one recalibration was accepted and swapped in.
  EXPECT_GT(healed.stats.drift_epochs, 0u);
  EXPECT_GT(healed.stats.recalibrations_triggered, 0u);
  EXPECT_GT(healed.stats.recalibrations_accepted, 0u);
  EXPECT_GT(healed.stats.checkpoints_written, 0u);

  // Acceptance bound: healed stays within 2x of no-drift (plus the
  // stress suite's quantization floor); disabled drifts past it.
  const double bound = std::max(2.0 * clean.median_error(), 0.5);
  EXPECT_LE(healed.median_error(), bound)
      << "clean=" << clean.median_error() << "\nhealed: " << healed.describe()
      << "\nsick:   " << sick.describe();
  EXPECT_GT(sick.median_error(), bound)
      << "clean=" << clean.median_error() << "\nhealed: " << healed.describe()
      << "\nsick:   " << sick.describe();
}

/// Restore-equivalence fixture: the drift-free chain with a checkpoint
/// every epoch, instrumented so a run can be killed at an epoch and a
/// fresh process resumed from disk.
struct ResumableChain {
  sim::Scene scene = make_scene();
  core::DWatchPipeline pipe = make_chain_pipeline(scene);
  core::KalmanTracker kalman;
  RecoveryCoordinator coord;

  explicit ResumableChain(const std::string& path)
      : coord(pipe, make_chain_calibrators(scene), CheckpointStore(path),
              [] {
                RecoveryOptions o;
                o.background = false;
                o.checkpoint_every = 1;
                return o;
              }()) {
    coord.attach_kalman(&kalman);
    for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
      pipe.set_calibration(a, scene.reader(a).phase_offsets());
      rf::Rng rng(kSceneSeed + 100 + a);
      const rfid::RoAccessReport report =
          scene.capture_report(a, {}, rng, 0, 1);
      for (const rfid::TagObservation& obs : report.observations) {
        pipe.add_baseline(a, obs);
      }
    }
  }

  /// Runs one epoch; `crash` (if set) is forwarded to this epoch's
  /// checkpoint write. Returns the fix and the smoothed track point.
  std::pair<core::ConfidentEstimate, rf::Vec2> step(
      std::size_t epoch, const CheckpointStore::CrashFilter& crash = nullptr) {
    const rf::Vec2 truth = target_at(epoch);
    const sim::CylinderTarget targets[] = {sim::CylinderTarget::human(truth)};
    pipe.begin_epoch(1000 * (epoch + 1));
    for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
      rf::Rng rng(kSceneSeed + 1000 * (epoch + 1) + a);
      const rfid::RoAccessReport report = scene.capture_report(
          a, targets, rng, static_cast<std::uint32_t>(epoch),
          1000 * (epoch + 1) + 10);
      for (const rfid::TagObservation& obs : report.observations) {
        (void)pipe.observe(a, obs);
      }
    }
    const core::ConfidentEstimate fix = pipe.localize_with_confidence(true);
    const rf::Vec2 smoothed = kalman.update(fix.estimate.position);
    std::vector<std::vector<core::CalibrationMeasurement>> no_anchors(
        scene.num_arrays());
    (void)coord.end_epoch(epoch, no_anchors, crash);
    return {fix, smoothed};
  }
};

TEST(SelfHealing, RestoreResumesBitIdenticalAfterMidWriteCrash) {
  constexpr std::size_t kEpochs = 7;
  constexpr std::size_t kCrashEpoch = 4;

  // Reference: the run that never dies.
  std::vector<core::ConfidentEstimate> ref_fixes;
  std::vector<rf::Vec2> ref_track;
  {
    ResumableChain chain(temp_path("restore_ref.bin"));
    for (std::size_t e = 0; e < kEpochs; ++e) {
      auto [fix, smoothed] = chain.step(e);
      ref_fixes.push_back(fix);
      ref_track.push_back(smoothed);
    }
  }

  // Victim: same chain, but epoch kCrashEpoch's checkpoint dies halfway
  // through the write (half the image reaches disk, no rename), and the
  // process is killed right after.
  const std::string path = temp_path("restore_victim.bin");
  {
    ResumableChain chain(path);
    for (std::size_t e = 0; e <= kCrashEpoch; ++e) {
      CheckpointStore::CrashFilter crash;
      if (e == kCrashEpoch) {
        crash = [](std::size_t bytes) {
          return std::optional<std::size_t>(bytes / 2);
        };
      }
      (void)chain.step(e, crash);
    }
    EXPECT_EQ(chain.coord.stats().checkpoint_crashes, 1u);
    // The latest VALID snapshot is the one before the crash.
    EXPECT_EQ(chain.coord.last_checkpoint_epoch(), kCrashEpoch - 1);
  }  // process dies here

  // Reborn process: cold construction + restore, then resume the epoch
  // after the last committed snapshot.
  ResumableChain reborn(path);
  // Wipe the warm-start state the constructor installed, proving the
  // snapshot alone carries it. (A real cold start has neither.)
  for (std::size_t a = 0; a < reborn.scene.num_arrays(); ++a) {
    reborn.pipe.clear_baselines(a);
  }
  ASSERT_EQ(reborn.coord.restore(), RestoreError::kNone);
  ASSERT_EQ(reborn.coord.last_checkpoint_epoch(), kCrashEpoch - 1);
  EXPECT_EQ(reborn.coord.stats().restores, 1u);

  for (std::size_t e = kCrashEpoch; e < kEpochs; ++e) {
    auto [fix, smoothed] = reborn.step(e);
    // Bit-identical to the run that never died.
    EXPECT_EQ(fix.confidence, ref_fixes[e].confidence) << "epoch " << e;
    EXPECT_EQ(fix.estimate.position.x, ref_fixes[e].estimate.position.x)
        << "epoch " << e;
    EXPECT_EQ(fix.estimate.position.y, ref_fixes[e].estimate.position.y)
        << "epoch " << e;
    EXPECT_EQ(fix.estimate.likelihood, ref_fixes[e].estimate.likelihood)
        << "epoch " << e;
    EXPECT_EQ(smoothed.x, ref_track[e].x) << "epoch " << e;
    EXPECT_EQ(smoothed.y, ref_track[e].y) << "epoch " << e;
  }
}

}  // namespace
}  // namespace dwatch::recovery
