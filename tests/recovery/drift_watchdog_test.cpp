// EWMA + CUSUM drift detector unit tests.
#include "recovery/drift_watchdog.hpp"

#include <gtest/gtest.h>

namespace dwatch::recovery {
namespace {

TEST(DriftWatchdog, RejectsZeroArraysAndBadAlpha) {
  EXPECT_THROW(DriftWatchdog(0), std::invalid_argument);
  DriftWatchdogOptions bad;
  bad.ewma_alpha = 0.0;
  EXPECT_THROW(DriftWatchdog(1, bad), std::invalid_argument);
  bad.ewma_alpha = 1.5;
  EXPECT_THROW(DriftWatchdog(1, bad), std::invalid_argument);
}

TEST(DriftWatchdog, LearnsThenStaysHealthyOnStableResidual) {
  DriftWatchdogOptions opt;
  opt.warmup_epochs = 3;
  DriftWatchdog dog(2, opt);
  EXPECT_EQ(dog.observe(0, 0.010), DriftState::kLearning);
  EXPECT_EQ(dog.observe(0, 0.012), DriftState::kLearning);
  EXPECT_EQ(dog.observe(0, 0.011), DriftState::kHealthy);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(dog.observe(0, 0.010 + 0.002 * (i % 2)), DriftState::kHealthy);
  }
  EXPECT_NEAR(dog.healthy_level(0), 0.011, 0.002);
  // Array 1 never fed: still learning.
  EXPECT_EQ(dog.state(1), DriftState::kLearning);
}

TEST(DriftWatchdog, DetectsSustainedGrowth) {
  DriftWatchdogOptions opt;
  opt.warmup_epochs = 2;
  opt.cusum_threshold = 3.0;
  DriftWatchdog dog(1, opt);
  (void)dog.observe(0, 0.010);
  (void)dog.observe(0, 0.010);
  // Residual grows ~50% per epoch (a 0.1 rad/epoch creep does worse):
  // exceedances accumulate and trip within a handful of epochs.
  double r = 0.015;
  DriftState state = DriftState::kHealthy;
  std::size_t epochs = 0;
  while (state != DriftState::kDrifting && epochs < 20) {
    state = dog.observe(0, r);
    r *= 1.5;
    ++epochs;
  }
  EXPECT_EQ(state, DriftState::kDrifting);
  EXPECT_LT(epochs, 10u);
  // Latches until reset.
  EXPECT_EQ(dog.observe(0, 0.010), DriftState::kDrifting);
  dog.reset(0);
  EXPECT_EQ(dog.state(0), DriftState::kLearning);
  EXPECT_EQ(dog.cusum(0), 0.0);
}

TEST(DriftWatchdog, SingleSpikeDoesNotTrip) {
  DriftWatchdogOptions opt;
  opt.warmup_epochs = 2;
  opt.cusum_threshold = 3.0;
  DriftWatchdog dog(1, opt);
  (void)dog.observe(0, 0.010);
  (void)dog.observe(0, 0.010);
  // One 2.5x outlier epoch, then back to normal: the CUSUM absorbs it.
  EXPECT_NE(dog.observe(0, 0.025), DriftState::kDrifting);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(dog.observe(0, 0.010), DriftState::kHealthy);
  }
}

TEST(DriftWatchdog, DriftingResidualDoesNotPoisonHealthyLevel) {
  DriftWatchdogOptions opt;
  opt.warmup_epochs = 2;
  opt.cusum_threshold = 100.0;  // effectively never trips
  DriftWatchdog dog(1, opt);
  (void)dog.observe(0, 0.010);
  (void)dog.observe(0, 0.010);
  // Feed a steadily growing residual: the EWMA must NOT follow it up
  // (only near-healthy samples update the reference).
  double r = 0.02;
  for (int i = 0; i < 20; ++i) {
    (void)dog.observe(0, r);
    r *= 1.3;
  }
  EXPECT_LT(dog.healthy_level(0), 0.012);
  EXPECT_GT(dog.cusum(0), 0.0);
}

TEST(DriftWatchdog, PerArrayIndependence) {
  DriftWatchdogOptions opt;
  opt.warmup_epochs = 1;
  DriftWatchdog dog(2, opt);
  (void)dog.observe(0, 0.010);
  (void)dog.observe(1, 0.010);
  double r = 0.02;
  while (dog.state(0) != DriftState::kDrifting) {
    (void)dog.observe(0, r);
    (void)dog.observe(1, 0.010);
    r *= 1.5;
  }
  EXPECT_EQ(dog.state(0), DriftState::kDrifting);
  EXPECT_EQ(dog.state(1), DriftState::kHealthy);
}

}  // namespace
}  // namespace dwatch::recovery
