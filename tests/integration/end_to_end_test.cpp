// End-to-end integration: simulator -> calibration -> baselines ->
// online captures -> localization, in room and table deployments.
#include <gtest/gtest.h>

#include "core/tracker.hpp"
#include "harness/experiment.hpp"
#include "harness/stats.hpp"
#include "sim/scene.hpp"

namespace dwatch {
namespace {

sim::Scene room_scene(sim::Environment env, std::uint64_t hw_seed = 7) {
  rf::Rng rng(42);
  rf::Rng hw(hw_seed);
  sim::DeploymentOptions dopt;
  auto dep = sim::make_room_deployment(std::move(env), dopt, rng);
  return sim::Scene(std::move(dep), sim::CaptureOptions{}, hw);
}

TEST(EndToEnd, LibrarySingleTargetDecimeterAccuracy) {
  const sim::Scene scene = room_scene(sim::Environment::library());
  harness::RunnerOptions opts;
  harness::ExperimentRunner runner(scene, opts);
  rf::Rng rng(5);
  runner.calibrate(rng);
  runner.collect_baselines(rng);

  // A handful of positions; median must be decimeter-level (the paper's
  // central claim) even if individual fixes vary.
  std::vector<double> errors;
  const std::vector<rf::Vec2> positions{
      {3.0, 4.0}, {2.0, 6.5}, {4.5, 3.0}, {5.0, 7.0}};
  for (const rf::Vec2 p : positions) {
    const sim::CylinderTarget t = sim::CylinderTarget::human(p);
    const std::vector<sim::CylinderTarget> targets{t};
    const auto est = runner.run_fix(targets, rng);
    if (est.valid) {
      errors.push_back(harness::human_error(est.position, p));
    }
  }
  ASSERT_GE(errors.size(), 2u);
  EXPECT_LT(harness::median(errors), 0.45);
}

TEST(EndToEnd, CalibrationQualityBeatsHalfRadian) {
  const sim::Scene scene = room_scene(sim::Environment::laboratory());
  harness::RunnerOptions opts;
  harness::ExperimentRunner runner(scene, opts);
  rf::Rng rng(5);
  runner.calibrate(rng);
  for (const auto& report : runner.calibration_reports()) {
    EXPECT_LT(report.mean_error_rad, 0.35);
  }
}

TEST(EndToEnd, EmptySceneProducesNoDetection) {
  const sim::Scene scene = room_scene(sim::Environment::library());
  harness::RunnerOptions opts;
  harness::ExperimentRunner runner(scene, opts);
  rf::Rng rng(6);
  runner.calibrate(rng);
  runner.collect_baselines(rng);
  // Observe an epoch with NO target: drops must be (near) zero and no
  // valid fix produced.
  const auto est = runner.run_fix({}, rng);
  EXPECT_FALSE(est.valid);
}

TEST(EndToEnd, TableMultiTargetSeparation) {
  rf::Rng rng(42);
  rf::Rng hw(9);
  auto dep = sim::make_table_deployment(26, 8, rng);
  sim::CaptureOptions copt;
  sim::Scene scene(std::move(dep), copt, hw);
  harness::RunnerOptions opts;
  opts.pipeline.localizer.grid_step = 0.02;  // paper's table grid
  harness::ExperimentRunner runner(scene, opts);
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    runner.pipeline().set_calibration(a, scene.reader(a).phase_offsets());
  }
  runner.collect_baselines(rng);

  // Two bottles 1 m apart on the table.
  const double z = sim::Environment::kTableHeight;
  const std::vector<sim::CylinderTarget> bottles{
      sim::CylinderTarget::bottle({0.5, 1.0}, z),
      sim::CylinderTarget::bottle({1.5, 1.0}, z)};
  const auto hits = runner.run_fix_multi(bottles, 3, 0.2, rng);
  ASSERT_GE(hits.size(), 1u);
  // Every reported hit is near SOME true bottle.
  for (const auto& hit : hits) {
    const double d = std::min(
        harness::point_error(hit.position, bottles[0].position),
        harness::point_error(hit.position, bottles[1].position));
    EXPECT_LT(d, 0.30);
  }
}

TEST(EndToEnd, TrackerFollowsMovingTarget) {
  const sim::Scene scene = room_scene(sim::Environment::library());
  harness::RunnerOptions opts;
  harness::ExperimentRunner runner(scene, opts);
  rf::Rng rng(8);
  runner.calibrate(rng);
  runner.collect_baselines(rng);

  core::TrackerOptions topt;
  topt.dt = 0.1;
  topt.gate_distance = 1.5;
  core::AlphaBetaTracker tracker(topt);
  // Walk a straight line at ~1 m/s; fixes every 0.1 s.
  std::vector<double> errors;
  for (int k = 0; k < 10; ++k) {
    const rf::Vec2 truth{2.6 + 0.1 * k, 3.8 + 0.05 * k};
    const sim::CylinderTarget t = sim::CylinderTarget::human(truth);
    const std::vector<sim::CylinderTarget> targets{t};
    const auto est = runner.run_fix_best_effort(targets, rng);
    rf::Vec2 smoothed;
    // Feed the tracker only high-confidence fixes (3+ arrays agreeing);
    // low-consensus fixes coast instead of poisoning the track.
    if (est.valid && est.consensus >= 3) {
      smoothed = tracker.update(est.position);
    } else if (auto coasted = tracker.coast()) {
      smoothed = *coasted;
    } else {
      continue;
    }
    errors.push_back(harness::human_error(smoothed, truth));
  }
  ASSERT_GE(errors.size(), 5u);
  EXPECT_LT(harness::median(errors), 0.6);
}

}  // namespace
}  // namespace dwatch
