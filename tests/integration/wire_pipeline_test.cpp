// Integration across the WIRE: captures are LLRP-encoded to bytes,
// streamed in chunks, decoded on the server side and fed to the
// pipeline — exactly the paper's reader -> Ethernet -> server split.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "harness/experiment.hpp"
#include "rfid/llrp.hpp"
#include "rfid/report_stream.hpp"
#include "sim/scene.hpp"

namespace dwatch {
namespace {

sim::Scene make_scene() {
  rf::Rng rng(42);
  rf::Rng hw(7);
  sim::DeploymentOptions dopt;
  dopt.num_tags = 21;
  auto dep =
      sim::make_room_deployment(sim::Environment::library(), dopt, rng);
  return sim::Scene(std::move(dep), sim::CaptureOptions{}, hw);
}

/// Encode per-(array,tag) observations as one RO_ACCESS_REPORT per array
/// and return the framed byte streams.
std::vector<std::vector<std::uint8_t>> capture_epoch_bytes(
    const sim::Scene& scene, std::span<const sim::CylinderTarget> targets,
    rf::Rng& rng) {
  std::vector<std::vector<std::uint8_t>> streams;
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    rfid::RoAccessReport report;
    report.message_id = static_cast<std::uint32_t>(a + 1);
    for (std::size_t t = 0; t < scene.num_tags(); ++t) {
      if (!scene.tag_readable(a, t)) continue;
      report.observations.push_back(
          scene.capture_observation(a, t, targets, rng));
    }
    streams.push_back(encode(report));
  }
  return streams;
}

TEST(WirePipeline, BytesInFixOut) {
  const sim::Scene scene = make_scene();
  core::PipelineOptions popt;
  core::DWatchPipeline pipeline(
      scene.deployment().arrays,
      core::SearchBounds{{0, 0},
                         {scene.deployment().env.width,
                          scene.deployment().env.depth}},
      popt);
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    pipeline.set_calibration(a, scene.reader(a).phase_offsets());
  }

  rf::Rng rng(3);
  // Baseline epoch over the wire.
  for (std::size_t a = 0;
       const auto& bytes : capture_epoch_bytes(scene, {}, rng)) {
    rfid::LlrpStreamDecoder decoder;
    // Chunked feed, 11 bytes at a time.
    for (std::size_t pos = 0; pos < bytes.size(); pos += 11) {
      decoder.feed(std::span(bytes).subspan(
          pos, std::min<std::size_t>(11, bytes.size() - pos)));
    }
    const auto report = decoder.next_report();
    ASSERT_TRUE(report.has_value());
    for (const auto& obs : report->observations) {
      pipeline.add_baseline(a, obs);
    }
    ++a;
  }
  EXPECT_GT(pipeline.stats().baselines, 0u);

  // Online epoch with a human target.
  const sim::CylinderTarget target = sim::CylinderTarget::human({3.5, 5.0});
  const std::vector<sim::CylinderTarget> targets{target};
  pipeline.begin_epoch();
  for (std::size_t a = 0;
       const auto& bytes : capture_epoch_bytes(scene, targets, rng)) {
    rfid::LlrpStreamDecoder decoder;
    decoder.feed(bytes);
    const auto report = decoder.next_report();
    ASSERT_TRUE(report.has_value());
    for (const auto& obs : report->observations) {
      (void)pipeline.observe(a, obs);
    }
    ++a;
  }
  const auto est = pipeline.localize_best_effort();
  ASSERT_GT(est.likelihood, 0.0);
  EXPECT_LT(harness::human_error(est.position, target.position), 0.8);
}

TEST(WirePipeline, SnapshotAssemblerInterop) {
  // The SnapshotAssembler path: stream observations into the assembler
  // and verify matrices match direct observation conversion.
  const sim::Scene scene = make_scene();
  rf::Rng rng1(4);
  rf::Rng rng2(4);
  const auto obs = scene.capture_observation(0, 0, {}, rng1);

  rfid::SnapshotAssembler assembler(8, scene.options().num_snapshots);
  assembler.ingest(obs);
  const auto ready = assembler.ready_tags();
  ASSERT_EQ(ready.size(), 1u);
  const auto snap = assembler.take(ready[0]);
  ASSERT_TRUE(snap.has_value());

  const auto direct = core::observation_to_snapshots(
      scene.capture_observation(0, 0, {}, rng2), 8);
  EXPECT_EQ(snap->x.rows(), direct.rows());
  EXPECT_EQ(snap->x.cols(), direct.cols());
  EXPECT_NEAR(snap->x.max_abs_diff(direct), 0.0, 1e-12);
}

TEST(WirePipeline, QuantizationDoesNotBreakDetection) {
  // Compare drops detected via the raw path vs the wire path.
  const sim::Scene scene = make_scene();
  harness::RunnerOptions raw_opts;
  raw_opts.through_wire = false;
  raw_opts.calibrate = false;
  harness::RunnerOptions wire_opts;
  wire_opts.through_wire = true;
  wire_opts.calibrate = false;

  harness::ExperimentRunner raw(scene, raw_opts);
  harness::ExperimentRunner wire(scene, wire_opts);
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    raw.pipeline().set_calibration(a, scene.reader(a).phase_offsets());
    wire.pipeline().set_calibration(a, scene.reader(a).phase_offsets());
  }
  rf::Rng rng1(9);
  rf::Rng rng2(9);
  raw.collect_baselines(rng1);
  wire.collect_baselines(rng2);
  const sim::CylinderTarget t = sim::CylinderTarget::human({3.0, 4.0});
  const std::vector<sim::CylinderTarget> targets{t};
  raw.run_epoch(targets, rng1);
  wire.run_epoch(targets, rng2);
  std::size_t raw_drops = 0;
  std::size_t wire_drops = 0;
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    raw_drops += raw.pipeline().evidence()[a].drops.size();
    wire_drops += wire.pipeline().evidence()[a].drops.size();
  }
  // 16-bit quantization may flip a borderline drop, not wipe them out.
  EXPECT_NEAR(static_cast<double>(wire_drops),
              static_cast<double>(raw_drops), 2.0);
}

}  // namespace
}  // namespace dwatch
