// Tests for deployments and scene capture.
#include "sim/scene.hpp"

#include <gtest/gtest.h>

namespace dwatch::sim {
namespace {

Scene make_scene(Environment env = Environment::library(),
                 std::uint64_t seed = 7) {
  rf::Rng rng(42);
  rf::Rng hw(seed);
  DeploymentOptions dopt;
  auto dep = make_room_deployment(std::move(env), dopt, rng);
  return Scene(std::move(dep), CaptureOptions{}, hw);
}

TEST(Deployment, RoomDefaults) {
  rf::Rng rng(1);
  DeploymentOptions opts;
  const Deployment dep =
      make_room_deployment(Environment::library(), opts, rng);
  EXPECT_EQ(dep.arrays.size(), 4u);
  EXPECT_EQ(dep.tags.size(), 21u);
  for (const auto& arr : dep.arrays) {
    EXPECT_EQ(arr.num_elements(), 8u);
    EXPECT_NEAR(arr.center().z, 1.25, 1e-12);
  }
  for (const auto& tag : dep.tags) {
    EXPECT_TRUE(dep.env.contains(tag.position.xy()));
    EXPECT_GE(tag.position.z, 1.0);
    EXPECT_LE(tag.position.z, 1.5);
  }
}

TEST(Deployment, Validation) {
  rf::Rng rng(1);
  DeploymentOptions opts;
  opts.num_arrays = 5;
  EXPECT_THROW(
      (void)make_room_deployment(Environment::hall(), opts, rng),
      std::invalid_argument);
  opts.num_arrays = 2;
  opts.num_tags = 0;
  EXPECT_THROW(
      (void)make_room_deployment(Environment::hall(), opts, rng),
      std::invalid_argument);
}

TEST(Deployment, TableLayout) {
  rf::Rng rng(2);
  const Deployment dep = make_table_deployment(26, 8, rng);
  EXPECT_EQ(dep.arrays.size(), 2u);
  EXPECT_EQ(dep.tags.size(), 26u);
  EXPECT_EQ(dep.env.name, "table");
  EXPECT_THROW((void)make_table_deployment(0, 8, rng),
               std::invalid_argument);
}

TEST(Scene, ReadersMatchArrays) {
  const Scene scene = make_scene();
  EXPECT_EQ(scene.num_arrays(), 4u);
  EXPECT_EQ(scene.reader(0).config().hub_elements, 8u);
  EXPECT_THROW((void)scene.reader(9), std::out_of_range);
}

TEST(Scene, PathsCachedAndBounded) {
  const Scene scene = make_scene();
  const auto& p1 = scene.paths(0, 0);
  const auto& p2 = scene.paths(0, 0);
  EXPECT_EQ(&p1, &p2);  // cached
  EXPECT_LE(p1.size(), scene.options().max_paths);
  EXPECT_THROW((void)scene.paths(5, 0), std::out_of_range);
  EXPECT_THROW((void)scene.paths(0, 99), std::out_of_range);
}

TEST(Scene, CaptureShape) {
  const Scene scene = make_scene();
  rf::Rng rng(5);
  const auto x = scene.capture(0, 0, {}, rng);
  EXPECT_EQ(x.rows(), 8u);
  EXPECT_EQ(x.cols(), scene.options().num_snapshots);
}

TEST(Scene, BlockedCaptureLosesPower) {
  const Scene scene = make_scene();
  rf::Rng rng1(5);
  rf::Rng rng2(5);
  // Find a (array, tag) pair whose direct path crosses a target we place.
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    for (std::size_t t = 0; t < scene.num_tags(); ++t) {
      const auto& direct = scene.paths(a, t).front();
      const rf::Vec3 mid = (direct.vertices[0] + direct.vertices[1]) * 0.5;
      const std::vector<CylinderTarget> targets{
          CylinderTarget::human(mid.xy())};
      const auto base = scene.capture(a, t, {}, rng1);
      const auto blocked = scene.capture(a, t, targets, rng2);
      EXPECT_LT(blocked.frobenius_norm(), base.frobenius_norm());
      return;  // one pair suffices
    }
  }
  FAIL() << "no pair found";
}

TEST(Scene, ObservationRoundTripApproximatesCapture) {
  const Scene scene = make_scene();
  rf::Rng rng1(5);
  rf::Rng rng2(5);
  const auto x = scene.capture(0, 0, {}, rng1);
  const auto obs = scene.capture_observation(0, 0, {}, rng2, 42);
  EXPECT_EQ(obs.epc, scene.deployment().tags[0].epc);
  EXPECT_EQ(obs.first_seen_us, 42u);
  ASSERT_EQ(obs.samples.size(), x.rows() * x.cols());
  // Wire quantization is 16-bit: reconstruction error < 0.2%.
  for (const auto& s : obs.samples) {
    const linalg::Complex truth = x(s.element_id - 1, s.round);
    EXPECT_NEAR(std::abs(s.as_complex() - truth), 0.0,
                2e-3 * std::abs(truth) + 1e-12);
  }
}

TEST(Scene, TagReadabilityDependsOnDistanceAndPower) {
  // With a weak reader, far tags must drop out.
  rf::Rng rng(42);
  rf::Rng hw(7);
  DeploymentOptions dopt;
  auto dep = make_room_deployment(Environment::library(), dopt, rng);
  rfid::ReaderConfig weak;
  weak.tx_power_dbm = 10.0;
  weak.antenna_gain_dbi = 0.0;
  const Scene weak_scene(std::move(dep), CaptureOptions{}, weak, hw);
  std::size_t readable = 0;
  for (std::size_t t = 0; t < weak_scene.num_tags(); ++t) {
    if (weak_scene.tag_readable(0, t)) ++readable;
  }
  EXPECT_LT(readable, weak_scene.num_tags());

  const Scene strong_scene = make_scene();
  std::size_t strong_readable = 0;
  for (std::size_t t = 0; t < strong_scene.num_tags(); ++t) {
    if (strong_scene.tag_readable(0, t)) ++strong_readable;
  }
  EXPECT_EQ(strong_readable, strong_scene.num_tags());
}

TEST(Scene, PowerCycleChangesOffsets) {
  Scene scene = make_scene();
  const auto before = scene.reader(0).phase_offsets();
  rf::Rng rng(11);
  scene.power_cycle(rng);
  const auto after = scene.reader(0).phase_offsets();
  bool changed = false;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (std::abs(before[i] - after[i]) > 1e-12) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(Scene, DifferentHardwareSeedsDifferentOffsets) {
  const Scene s1 = make_scene(Environment::library(), 1);
  const Scene s2 = make_scene(Environment::library(), 2);
  bool differ = false;
  for (std::size_t i = 0; i < 8; ++i) {
    if (std::abs(s1.reader(0).phase_offsets()[i] -
                 s2.reader(0).phase_offsets()[i]) > 1e-12) {
      differ = true;
    }
  }
  EXPECT_TRUE(differ);
}

}  // namespace
}  // namespace dwatch::sim
