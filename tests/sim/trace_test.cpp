// Tests for capture trace record/replay.
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/scene.hpp"

namespace dwatch::sim {
namespace {

rfid::RoAccessReport sample_report(std::uint32_t tag) {
  rfid::RoAccessReport report;
  report.message_id = tag;
  rfid::TagObservation obs;
  obs.epc = rfid::Epc96::for_tag_index(tag);
  for (std::uint16_t e = 1; e <= 4; ++e) {
    obs.samples.push_back(rfid::PhaseSample{e, 0, 500, -2500});
  }
  report.observations.push_back(obs);
  return report;
}

TEST(Trace, EmptyRoundTrip) {
  Trace trace;
  std::stringstream ss;
  trace.save(ss);
  const Trace loaded = Trace::load(ss);
  EXPECT_TRUE(loaded.empty());
}

TEST(Trace, RecordAndRoundTrip) {
  Trace trace;
  trace.record_report(EpochKind::kBaseline, "baseline", 0,
                      sample_report(1));
  trace.record_report(EpochKind::kOnline, "fix-0001", 2, sample_report(9));
  std::stringstream ss;
  trace.save(ss);
  const Trace loaded = Trace::load(ss);
  ASSERT_EQ(loaded.epochs().size(), 2u);
  EXPECT_EQ(loaded.epochs()[0].kind, EpochKind::kBaseline);
  EXPECT_EQ(loaded.epochs()[0].label, "baseline");
  EXPECT_EQ(loaded.epochs()[0].array_index, 0u);
  EXPECT_EQ(loaded.epochs()[1].kind, EpochKind::kOnline);
  EXPECT_EQ(loaded.epochs()[1].array_index, 2u);
  EXPECT_EQ(loaded.epochs()[1].messages.size(), 1u);
}

TEST(Trace, DecodeEpochRecoversObservations) {
  Trace trace;
  trace.record_report(EpochKind::kOnline, "x", 1, sample_report(7));
  const auto obs = Trace::decode_epoch(trace.epochs()[0]);
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_EQ(obs[0].epc, rfid::Epc96::for_tag_index(7));
  EXPECT_EQ(obs[0].samples.size(), 4u);
}

TEST(Trace, BadMagicRejected) {
  std::stringstream ss;
  ss << "NOTATRACE!!!";
  EXPECT_THROW((void)Trace::load(ss), rfid::DecodeError);
}

TEST(Trace, TruncatedFileRejected) {
  Trace trace;
  trace.record_report(EpochKind::kBaseline, "b", 0, sample_report(1));
  std::stringstream ss;
  trace.save(ss);
  std::string bytes = ss.str();
  bytes.resize(bytes.size() - 5);
  std::stringstream cut(bytes);
  EXPECT_THROW((void)Trace::load(cut), rfid::DecodeError);
}

TEST(Trace, SimulatedCampaignRoundTrip) {
  // Record a small scene capture campaign, replay into observations.
  rf::Rng rng(42);
  rf::Rng hw(7);
  DeploymentOptions dopt;
  dopt.num_tags = 4;
  dopt.num_arrays = 2;
  auto dep = make_room_deployment(Environment::hall(), dopt, rng);
  const Scene scene(std::move(dep), CaptureOptions{}, hw);

  Trace trace;
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    rfid::RoAccessReport report;
    report.message_id = static_cast<std::uint32_t>(a);
    for (std::size_t t = 0; t < scene.num_tags(); ++t) {
      report.observations.push_back(
          scene.capture_observation(a, t, {}, rng));
    }
    trace.record_report(EpochKind::kBaseline, "baseline",
                        static_cast<std::uint32_t>(a), report);
  }
  std::stringstream ss;
  trace.save(ss);
  const Trace loaded = Trace::load(ss);
  ASSERT_EQ(loaded.epochs().size(), 2u);
  for (const auto& epoch : loaded.epochs()) {
    const auto obs = Trace::decode_epoch(epoch);
    EXPECT_EQ(obs.size(), scene.num_tags());
    for (const auto& o : obs) {
      EXPECT_EQ(o.samples.size(),
                8u * scene.options().num_snapshots);
    }
  }
}

}  // namespace
}  // namespace dwatch::sim
