// Tests for target blocking semantics — including the paper's
// wrong-angle condition (Fig. 1(b) path 3).
#include "sim/target.hpp"

#include <gtest/gtest.h>

namespace dwatch::sim {
namespace {

rf::PropagationPath direct_path() {
  rf::PropagationPath p;
  p.kind = rf::PathKind::kDirect;
  p.vertices = {{-5, 0, 1.2}, {5, 0, 1.2}};
  p.length = 10.0;
  return p;
}

rf::PropagationPath reflected_path() {
  // tag (-5,0) -> reflector (0,4) -> array (5,0)
  rf::PropagationPath p;
  p.kind = rf::PathKind::kScatterer;
  p.vertices = {{-5, 0, 1.2}, {0, 4, 1.2}, {5, 0, 1.2}};
  p.length = 2.0 * std::hypot(5.0, 4.0);
  return p;
}

TEST(CylinderTarget, FactoryDimensions) {
  const CylinderTarget human = CylinderTarget::human({1, 2});
  EXPECT_DOUBLE_EQ(human.radius, 0.18);  // 36 cm wide
  EXPECT_DOUBLE_EQ(human.z_hi, 1.7);
  const CylinderTarget bottle = CylinderTarget::bottle({1, 2});
  EXPECT_NEAR(bottle.radius, 0.039, 1e-12);  // 7.8 cm diameter
  EXPECT_NEAR(bottle.z_hi - bottle.z_lo, 0.22, 1e-12);
  const CylinderTarget fist = CylinderTarget::fist({1, 2});
  EXPECT_LT(fist.radius, 0.1);
}

TEST(EvaluateBlocking, UnblockedPath) {
  const auto path = direct_path();
  const std::vector<CylinderTarget> targets{
      CylinderTarget::human({0.0, 3.0})};
  const BlockingResult r = evaluate_blocking(path, targets);
  EXPECT_FALSE(r.blocked);
  EXPECT_DOUBLE_EQ(r.amplitude_scale, 1.0);
}

TEST(EvaluateBlocking, DirectPathBlockGivesTrueAngle) {
  const auto path = direct_path();
  const std::vector<CylinderTarget> targets{
      CylinderTarget::human({0.0, 0.0})};
  const BlockingResult r = evaluate_blocking(path, targets, 0.25);
  EXPECT_TRUE(r.blocked);
  EXPECT_TRUE(r.gives_true_angle);
  EXPECT_EQ(r.first_blocked_leg, 0u);
  EXPECT_DOUBLE_EQ(r.amplitude_scale, 0.25);
}

TEST(EvaluateBlocking, PreReflectionLegGivesWrongAngle) {
  const auto path = reflected_path();
  // Block the tag->reflector leg (midpoint (-2.5, 2)).
  const std::vector<CylinderTarget> targets{
      CylinderTarget::human({-2.5, 2.0})};
  const BlockingResult r = evaluate_blocking(path, targets);
  EXPECT_TRUE(r.blocked);
  EXPECT_EQ(r.first_blocked_leg, 0u);
  EXPECT_FALSE(r.gives_true_angle);  // the paper's "wrong angle" case
}

TEST(EvaluateBlocking, FinalLegGivesTrueAngle) {
  const auto path = reflected_path();
  const std::vector<CylinderTarget> targets{
      CylinderTarget::human({2.5, 2.0})};
  const BlockingResult r = evaluate_blocking(path, targets);
  EXPECT_TRUE(r.blocked);
  EXPECT_EQ(r.first_blocked_leg, 1u);
  EXPECT_TRUE(r.gives_true_angle);
}

TEST(EvaluateBlocking, BothLegsDoubleAttenuation) {
  const auto path = reflected_path();
  // Two targets: one per leg.
  const std::vector<CylinderTarget> targets{
      CylinderTarget::human({-2.5, 2.0}), CylinderTarget::human({2.5, 2.0})};
  const BlockingResult r = evaluate_blocking(path, targets, 0.25);
  EXPECT_TRUE(r.blocked);
  EXPECT_DOUBLE_EQ(r.amplitude_scale, 0.25 * 0.25);
}

TEST(EvaluateBlocking, TargetIndexReportsFirstBlocker) {
  const auto path = direct_path();
  const std::vector<CylinderTarget> targets{
      CylinderTarget::human({9.0, 9.0}),  // misses
      CylinderTarget::human({0.0, 0.0})};
  const BlockingResult r = evaluate_blocking(path, targets);
  EXPECT_TRUE(r.blocked);
  EXPECT_EQ(r.target_index, 1u);
}

TEST(EvaluateBlocking, BottleAboveOrBelowPathHeight) {
  // Bottle on a table at 0.75 m: a path at 1.2 m height passes over it...
  rf::PropagationPath p = direct_path();  // height 1.2
  const std::vector<CylinderTarget> on_table{
      CylinderTarget::bottle({0.0, 0.0}, 0.75)};  // z: 0.75..0.97
  EXPECT_FALSE(evaluate_blocking(p, on_table).blocked);
  // ...but a path at table height is blocked.
  p.vertices = {{-5, 0, 0.85}, {5, 0, 0.85}};
  EXPECT_TRUE(evaluate_blocking(p, on_table).blocked);
}

TEST(EvaluateBlocking, ValidatesResidual) {
  const auto path = direct_path();
  const std::vector<CylinderTarget> targets{
      CylinderTarget::human({0.0, 0.0})};
  EXPECT_THROW((void)evaluate_blocking(path, targets, -0.1),
               std::invalid_argument);
  EXPECT_THROW((void)evaluate_blocking(path, targets, 1.5),
               std::invalid_argument);
}

TEST(BlockingScales, VectorisedConsistency) {
  const std::vector<rf::PropagationPath> paths{direct_path(),
                                               reflected_path()};
  const std::vector<CylinderTarget> targets{
      CylinderTarget::human({0.0, 0.0})};  // blocks only the direct path
  const std::vector<double> scales = blocking_scales(paths, targets, 0.3);
  ASSERT_EQ(scales.size(), 2u);
  EXPECT_DOUBLE_EQ(scales[0], 0.3);
  EXPECT_DOUBLE_EQ(scales[1], 1.0);
}

/// Sweep the target along the direct path: blocked iff |y| <= radius.
class BlockSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(BlockSweepTest, LateralOffset) {
  const double y = GetParam();
  const auto path = direct_path();
  const std::vector<CylinderTarget> targets{CylinderTarget::human({0.0, y})};
  const BlockingResult r = evaluate_blocking(path, targets);
  EXPECT_EQ(r.blocked, std::abs(y) <= 0.18);
}

INSTANTIATE_TEST_SUITE_P(Lateral, BlockSweepTest,
                         ::testing::Values(0.0, 0.1, 0.17, 0.19, 0.5, -0.15,
                                           -0.25));

}  // namespace
}  // namespace dwatch::sim
