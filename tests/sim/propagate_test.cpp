// Tests for path tracing over environments.
#include "sim/propagate.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dwatch::sim {
namespace {

rf::UniformLinearArray test_array(rf::Vec3 center = {3.6, 0.15, 1.25}) {
  return rf::UniformLinearArray(center, {1, 0}, 8);
}

TEST(TracePaths, DirectPathAlwaysFirst) {
  const Environment hall = Environment::hall();
  const auto ula = test_array();
  const auto paths = trace_paths({2.0, 5.0, 1.2}, ula, hall);
  ASSERT_FALSE(paths.empty());
  EXPECT_EQ(paths.front().kind, rf::PathKind::kDirect);
  EXPECT_NEAR(paths.front().length,
              rf::distance({2.0, 5.0, 1.2}, ula.center()), 1e-12);
}

TEST(TracePaths, ThrowsWhenTagAtArray) {
  const auto ula = test_array();
  EXPECT_THROW(
      (void)trace_paths(ula.center(), ula, Environment::hall()),
      std::invalid_argument);
}

TEST(TracePaths, ReflectedPathsAreLongerAndWeaker) {
  const Environment lib = Environment::library();
  const auto ula = test_array();
  const auto paths = trace_paths({3.0, 6.0, 1.2}, ula, lib);
  ASSERT_GT(paths.size(), 1u);
  const double direct_len = paths.front().length;
  const double direct_amp = std::abs(paths.front().gain);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GT(paths[i].length, direct_len);
    EXPECT_LT(std::abs(paths[i].gain), direct_amp);
  }
}

TEST(TracePaths, RicherEnvironmentMorePaths) {
  const auto ula = test_array();
  const rf::Vec3 tag{3.0, 6.0, 1.2};
  TraceOptions keep_all;  // no pruning
  const auto lib = trace_paths(tag, ula, Environment::library(), keep_all);
  const auto hall = trace_paths(tag, ula, Environment::hall(), keep_all);
  EXPECT_GT(lib.size(), hall.size());
}

TEST(TracePaths, ScattererPathGeometry) {
  Environment env;
  env.name = "unit";
  env.width = 10.0;
  env.depth = 10.0;
  env.scatterers = {PointScatterer{{5.0, 5.0}, 1.0, 2.0}};
  const auto ula = test_array({0.0, 0.0, 1.0});
  const rf::Vec3 tag{10.0, 0.0, 1.0};
  const auto paths = trace_paths(tag, ula, env);
  ASSERT_EQ(paths.size(), 2u);
  const auto& sc = paths[1];
  EXPECT_EQ(sc.kind, rf::PathKind::kScatterer);
  ASSERT_EQ(sc.vertices.size(), 3u);
  EXPECT_NEAR(sc.vertices[1].x, 5.0, 1e-12);
  // AoA points at the scatterer, not the tag.
  EXPECT_NEAR(sc.aoa, ula.arrival_angle({5.0, 5.0, 1.0}), 1e-12);
  EXPECT_NEAR(sc.length,
              rf::distance(tag, {5.0, 5.0, 1.0}) +
                  rf::distance({5.0, 5.0, 1.0}, ula.center()),
              1e-12);
}

TEST(TracePaths, WallPathUsesSpecularBounce) {
  Environment env;
  env.name = "unit";
  env.width = 10.0;
  env.depth = 10.0;
  env.walls = {WallReflector{{{0.0, 8.0}, {10.0, 8.0}}, 0.0, 3.0, 0.6}};
  const auto ula = test_array({2.0, 2.0, 1.0});
  const rf::Vec3 tag{8.0, 2.0, 1.0};
  const auto paths = trace_paths(tag, ula, env);
  ASSERT_EQ(paths.size(), 2u);
  const auto& wall = paths[1];
  EXPECT_EQ(wall.kind, rf::PathKind::kWall);
  EXPECT_NEAR(wall.vertices[1].y, 8.0, 1e-9);  // bounce on the wall
  // Image method: unfolded length equals distance to mirrored tag.
  EXPECT_NEAR(wall.length, rf::distance({8.0, 14.0, 1.0}, ula.center()),
              1e-9);
}

TEST(TracePaths, MinRelativeAmplitudePrunes) {
  const auto ula = test_array();
  const rf::Vec3 tag{3.0, 6.0, 1.2};
  TraceOptions strict;
  strict.min_relative_amplitude = 0.9;  // keep (almost) only the direct
  const auto paths =
      trace_paths(tag, ula, Environment::library(), strict);
  EXPECT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths.front().kind, rf::PathKind::kDirect);
}

TEST(TracePaths, MaxPathsKeepsStrongest) {
  const auto ula = test_array();
  const rf::Vec3 tag{3.0, 6.0, 1.2};
  TraceOptions capped;
  capped.max_paths = 3;
  const auto paths = trace_paths(tag, ula, Environment::library(), capped);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths.front().kind, rf::PathKind::kDirect);
  TraceOptions all;
  const auto full = trace_paths(tag, ula, Environment::library(), all);
  // The two kept reflections are the strongest reflections overall.
  double kept_min = std::min(std::abs(paths[1].gain),
                             std::abs(paths[2].gain));
  std::size_t stronger = 0;
  for (std::size_t i = 1; i < full.size(); ++i) {
    if (std::abs(full[i].gain) > kept_min + 1e-15) ++stronger;
  }
  EXPECT_LE(stronger, 1u);
}

TEST(TracePaths, GainsMatchLinkBudget) {
  const auto ula = test_array();
  const rf::Vec3 tag{3.0, 6.0, 1.2};
  TraceOptions opts;
  const auto paths = trace_paths(tag, ula, Environment::hall(), opts);
  EXPECT_NEAR(std::abs(paths.front().gain),
              opts.link.free_space_amplitude(paths.front().length), 1e-12);
}

}  // namespace
}  // namespace dwatch::sim
