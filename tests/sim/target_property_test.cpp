// Property/edge-case suite for the path-blocking geometry and the two
// attenuation models: tangent rays, zero-length segments, z-slab
// boundaries, grazing radii, true-angle bookkeeping on multi-leg
// paths, and the Fresnel knife-edge profile's invariants (with the
// legacy binary model as a bit-identical oracle).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "rf/constants.hpp"
#include "rf/path.hpp"
#include "sim/target.hpp"

namespace dwatch::sim {
namespace {

CylinderTarget cylinder(rf::Vec2 at, double radius, double z_lo,
                        double z_hi) {
  CylinderTarget t;
  t.position = at;
  t.radius = radius;
  t.z_lo = z_lo;
  t.z_hi = z_hi;
  return t;
}

// ------------------------------------------------------ blocks_segment

TEST(BlocksSegmentTest, TangentRayCounts) {
  // Horizontal ray grazing the cylinder exactly at its radius: the
  // discriminant is zero, which the geometry counts as a hit.
  const CylinderTarget t = cylinder({0.0, 0.0}, 0.5, 0.0, 2.0);
  EXPECT_TRUE(t.blocks_segment({-5.0, 0.5, 1.0}, {5.0, 0.5, 1.0}));
  // Nudged just outside the radius: clear.
  EXPECT_FALSE(t.blocks_segment({-5.0, 0.5 + 1e-6, 1.0},
                                {5.0, 0.5 + 1e-6, 1.0}));
  // Through the centre, unambiguous.
  EXPECT_TRUE(t.blocks_segment({-5.0, 0.0, 1.0}, {5.0, 0.0, 1.0}));
}

TEST(BlocksSegmentTest, SegmentEndingAtTheSurfaceHits) {
  const CylinderTarget t = cylinder({0.0, 0.0}, 0.5, 0.0, 2.0);
  // The segment stops exactly on the cylinder wall.
  EXPECT_TRUE(t.blocks_segment({-5.0, 0.0, 1.0}, {-0.5, 0.0, 1.0}));
  // Stops 1 mm short: clear.
  EXPECT_FALSE(t.blocks_segment({-5.0, 0.0, 1.0}, {-0.501, 0.0, 1.0}));
}

TEST(BlocksSegmentTest, ZeroLengthSegmentIsAPointTest) {
  const CylinderTarget t = cylinder({0.0, 0.0}, 0.5, 0.0, 2.0);
  EXPECT_TRUE(t.blocks_segment({0.1, 0.1, 1.0}, {0.1, 0.1, 1.0}));
  // Exactly on the wall counts as inside.
  EXPECT_TRUE(t.blocks_segment({0.5, 0.0, 1.0}, {0.5, 0.0, 1.0}));
  EXPECT_FALSE(t.blocks_segment({0.6, 0.0, 1.0}, {0.6, 0.0, 1.0}));
  // A point above the slab is clear even inside the plan-view disc.
  EXPECT_FALSE(t.blocks_segment({0.0, 0.0, 3.0}, {0.0, 0.0, 3.0}));
}

TEST(BlocksSegmentTest, ZSlabBoundariesAreInclusive) {
  const CylinderTarget t = cylinder({0.0, 0.0}, 0.5, 0.0, 1.7);
  // Grazing the top face exactly.
  EXPECT_TRUE(t.blocks_segment({-5.0, 0.0, 1.7}, {5.0, 0.0, 1.7}));
  // Just above the top face.
  EXPECT_FALSE(t.blocks_segment({-5.0, 0.0, 1.700001}, {5.0, 0.0, 1.700001}));
  // Sloped segment that only dips into the slab near one end.
  EXPECT_TRUE(t.blocks_segment({-1.0, 0.0, 2.5}, {1.0, 0.0, 1.0}));
  // Entirely below a table-mounted target's slab.
  const CylinderTarget bottle = cylinder({0.0, 0.0}, 0.04, 0.75, 0.97);
  EXPECT_FALSE(bottle.blocks_segment({-5.0, 0.0, 0.2}, {5.0, 0.0, 0.2}));
}

TEST(BlocksSegmentTest, MissesOutsideThePlanFootprint) {
  const CylinderTarget t = CylinderTarget::human({2.0, 2.0});
  // Passes well clear in plan view at body height.
  EXPECT_FALSE(t.blocks_segment({0.0, 0.0, 1.0}, {4.0, 0.0, 1.0}));
  EXPECT_TRUE(t.blocks_segment({0.0, 2.0, 1.0}, {4.0, 2.0, 1.0}));
}

// ----------------------------------------------- true-angle bookkeeping

rf::PropagationPath two_leg_path() {
  rf::PropagationPath p;
  p.kind = rf::PathKind::kWall;
  // tag -> wall bounce -> array.
  p.vertices = {{0.0, 0.0, 1.0}, {4.0, 4.0, 1.0}, {8.0, 0.0, 1.0}};
  p.length = 2.0 * std::sqrt(32.0);
  p.aoa = 1.0;
  p.gain = {0.02, 0.0};
  return p;
}

TEST(TrueAngleTest, OnlyTheFinalLegGivesTheTrueAngle) {
  const rf::PropagationPath p = two_leg_path();
  ASSERT_EQ(p.num_legs(), 2u);
  EXPECT_FALSE(p.blocking_gives_true_angle(0));
  EXPECT_TRUE(p.blocking_gives_true_angle(1));

  rf::PropagationPath direct;
  direct.vertices = {{0.0, 0.0, 1.0}, {8.0, 0.0, 1.0}};
  EXPECT_TRUE(direct.blocking_gives_true_angle(0));
}

TEST(TrueAngleTest, EvaluateBlockingReportsTheBlockedLeg) {
  const rf::PropagationPath p = two_leg_path();
  // Body on the FIRST leg only (midpoint of tag->wall).
  const std::vector<CylinderTarget> on_first{
      CylinderTarget::human({2.0, 2.0})};
  const BlockingResult r1 = evaluate_blocking(p, on_first, 0.25);
  ASSERT_TRUE(r1.blocked);
  EXPECT_EQ(r1.first_blocked_leg, 0u);
  EXPECT_FALSE(r1.gives_true_angle);
  EXPECT_DOUBLE_EQ(r1.amplitude_scale, 0.25);

  // Body on the FINAL leg only (midpoint of wall->array).
  const std::vector<CylinderTarget> on_final{
      CylinderTarget::human({6.0, 2.0})};
  const BlockingResult r2 = evaluate_blocking(p, on_final, 0.25);
  ASSERT_TRUE(r2.blocked);
  EXPECT_EQ(r2.first_blocked_leg, 1u);
  EXPECT_TRUE(r2.gives_true_angle);

  // Bodies on both legs: residual applies once per blocked leg.
  std::vector<CylinderTarget> both = on_first;
  both.push_back(on_final[0]);
  const BlockingResult r3 = evaluate_blocking(p, both, 0.25);
  ASSERT_TRUE(r3.blocked);
  EXPECT_EQ(r3.first_blocked_leg, 0u);
  EXPECT_FALSE(r3.gives_true_angle);
  EXPECT_DOUBLE_EQ(r3.amplitude_scale, 0.25 * 0.25);
}

TEST(TrueAngleTest, LegacyRejectsResidualOutsideUnitInterval) {
  const rf::PropagationPath p = two_leg_path();
  const std::vector<CylinderTarget> targets{CylinderTarget::human({2.0, 2.0})};
  EXPECT_THROW((void)evaluate_blocking(p, targets, -0.1),
               std::invalid_argument);
  EXPECT_THROW((void)evaluate_blocking(p, targets, 1.5),
               std::invalid_argument);
}

// --------------------------------------------------------- Fresnel model

TEST(FresnelTest, BinaryOptionsReproduceTheLegacyOracleBitForBit) {
  const rf::PropagationPath p = two_leg_path();
  const std::vector<CylinderTarget> targets{
      CylinderTarget::human({2.0, 2.0}), CylinderTarget::human({6.0, 2.0})};
  for (const double residual : {0.1, 0.25, 0.7}) {
    const BlockingResult legacy = evaluate_blocking(p, targets, residual);
    BlockageOptions opts;
    opts.model = BlockageModel::kBinary;
    opts.residual_amplitude = residual;
    const BlockingResult routed = evaluate_blocking(p, targets, opts);
    EXPECT_EQ(legacy.blocked, routed.blocked);
    EXPECT_EQ(legacy.first_blocked_leg, routed.first_blocked_leg);
    EXPECT_EQ(legacy.target_index, routed.target_index);
    EXPECT_EQ(legacy.amplitude_scale, routed.amplitude_scale);
    EXPECT_EQ(legacy.gives_true_angle, routed.gives_true_angle);
  }
}

TEST(FresnelTest, ClearPathKeepsUnitAmplitude) {
  const CylinderTarget t = CylinderTarget::human({2.0, 5.0});
  const double amp = fresnel_leg_amplitude(t, {0.0, 0.0, 1.0},
                                           {4.0, 0.0, 1.0},
                                           rf::kDefaultWavelength);
  EXPECT_DOUBLE_EQ(amp, 1.0);
}

TEST(FresnelTest, AmplitudeIsMonotoneInMissDistance) {
  // Slide the body away from the line of sight: the shadow must only
  // get shallower, with no jump at the geometric edge.
  const rf::Vec3 a{0.0, 0.0, 1.0};
  const rf::Vec3 b{8.0, 0.0, 1.0};
  double prev = 0.0;
  for (const double miss : {0.0, 0.1, 0.2, 0.3, 0.5, 0.8, 1.2}) {
    const CylinderTarget t = CylinderTarget::human({4.0, miss});
    const double amp =
        fresnel_leg_amplitude(t, a, b, rf::kDefaultWavelength);
    EXPECT_GT(amp, 0.0);
    EXPECT_LE(amp, 1.0);
    EXPECT_GE(amp, prev);
    prev = amp;
  }
  // Far enough out the leg clears the first Fresnel zone entirely.
  const CylinderTarget far_body = CylinderTarget::human({4.0, 3.0});
  EXPECT_DOUBLE_EQ(
      fresnel_leg_amplitude(far_body, a, b, rf::kDefaultWavelength), 1.0);
}

TEST(FresnelTest, LossIsCappedAtMaxLossDb) {
  const rf::Vec3 a{0.0, 0.0, 1.0};
  const rf::Vec3 b{8.0, 0.0, 1.0};
  // A grossly oversized blocker saturates the knife-edge formula.
  const CylinderTarget wall = cylinder({4.0, 0.0}, 1.5, 0.0, 2.0);
  const double amp =
      fresnel_leg_amplitude(wall, a, b, rf::kDefaultWavelength, 30.0);
  EXPECT_GE(amp, std::pow(10.0, -30.0 / 20.0) - 1e-12);
  const double relaxed =
      fresnel_leg_amplitude(wall, a, b, rf::kDefaultWavelength, 40.0);
  EXPECT_LE(relaxed, amp);
}

TEST(FresnelTest, WiderBodiesShadowDeeper) {
  const rf::Vec3 a{0.0, 0.0, 1.0};
  const rf::Vec3 b{8.0, 0.0, 1.0};
  const double human = fresnel_leg_amplitude(
      CylinderTarget::human({4.0, 0.0}), a, b, rf::kDefaultWavelength);
  const double fist = fresnel_leg_amplitude(
      CylinderTarget::fist({4.0, 0.0}, 1.0), a, b, rf::kDefaultWavelength);
  EXPECT_LT(human, fist);
}

TEST(FresnelTest, ShorterWavelengthsShadowDeeper) {
  // A smaller Fresnel zone makes the same body a relatively larger
  // obstacle, so the loss grows as the wavelength shrinks.
  const rf::Vec3 a{0.0, 0.0, 1.0};
  const rf::Vec3 b{8.0, 0.0, 1.0};
  const CylinderTarget t = CylinderTarget::human({4.0, 0.1});
  const double uhf = fresnel_leg_amplitude(t, a, b, 0.327);
  const double microwave = fresnel_leg_amplitude(t, a, b, 0.06);
  EXPECT_LT(microwave, uhf);
}

TEST(FresnelTest, ThrowsOnNonPositiveWavelength) {
  const CylinderTarget t = CylinderTarget::human({1.0, 0.0});
  EXPECT_THROW(
      (void)fresnel_leg_amplitude(t, {0.0, 0.0, 1.0}, {2.0, 0.0, 1.0}, 0.0),
      std::invalid_argument);
  EXPECT_THROW(
      (void)fresnel_leg_amplitude(t, {0.0, 0.0, 1.0}, {2.0, 0.0, 1.0}, -0.3),
      std::invalid_argument);
}

TEST(FresnelTest, LegAboveTheBodyIsClear) {
  const CylinderTarget t = CylinderTarget::human({4.0, 0.0});
  const double amp = fresnel_leg_amplitude(t, {0.0, 0.0, 2.5},
                                           {8.0, 0.0, 2.5},
                                           rf::kDefaultWavelength);
  EXPECT_DOUBLE_EQ(amp, 1.0);
}

TEST(FresnelTest, CompoundsAcrossTargetsAndMatchesThePerLegProduct) {
  // Unlike kBinary (break at the first blocker), kFresnel multiplies
  // every target's per-leg amplitude, so two bodies shade deeper than
  // either alone.
  rf::PropagationPath direct;
  direct.kind = rf::PathKind::kDirect;
  direct.vertices = {{0.0, 0.0, 1.0}, {8.0, 0.0, 1.0}};
  direct.length = 8.0;

  const CylinderTarget near_body = CylinderTarget::human({2.5, 0.0});
  const CylinderTarget far_body = CylinderTarget::human({5.5, 0.0});

  BlockageOptions opts;
  opts.model = BlockageModel::kFresnel;

  const BlockingResult solo =
      evaluate_blocking(direct, std::vector<CylinderTarget>{near_body}, opts);
  const BlockingResult pair = evaluate_blocking(
      direct, std::vector<CylinderTarget>{near_body, far_body}, opts);
  ASSERT_TRUE(solo.blocked);
  ASSERT_TRUE(pair.blocked);
  EXPECT_LT(pair.amplitude_scale, solo.amplitude_scale);

  const double a1 = fresnel_leg_amplitude(
      near_body, direct.vertices[0], direct.vertices[1],
      rf::kDefaultWavelength);
  const double a2 = fresnel_leg_amplitude(
      far_body, direct.vertices[0], direct.vertices[1],
      rf::kDefaultWavelength);
  EXPECT_NEAR(pair.amplitude_scale, a1 * a2, 1e-12);
  EXPECT_TRUE(pair.gives_true_angle);  // direct path
}

TEST(FresnelTest, GrazingBodyAttenuatesWithoutCountingAsBlocked) {
  // A body hovering at the edge of the first Fresnel zone shaves a
  // fraction of a dB: the amplitude moves but the drop-bookkeeping
  // threshold (~1 dB) keeps `blocked` false.
  rf::PropagationPath direct;
  direct.kind = rf::PathKind::kDirect;
  direct.vertices = {{0.0, 0.0, 1.0}, {8.0, 0.0, 1.0}};
  direct.length = 8.0;

  BlockageOptions opts;
  opts.model = BlockageModel::kFresnel;

  // Find a miss distance whose amplitude lands in (0.89, 1).
  double graze_miss = -1.0;
  for (double miss = 0.3; miss < 1.5; miss += 0.01) {
    const double amp = fresnel_leg_amplitude(
        CylinderTarget::human({4.0, miss}), direct.vertices[0],
        direct.vertices[1], rf::kDefaultWavelength);
    if (amp > 0.9 && amp < 0.999) {
      graze_miss = miss;
      break;
    }
  }
  ASSERT_GT(graze_miss, 0.0) << "no grazing geometry found";
  const BlockingResult grazing = evaluate_blocking(
      direct,
      std::vector<CylinderTarget>{CylinderTarget::human({4.0, graze_miss})},
      opts);
  EXPECT_FALSE(grazing.blocked);
  EXPECT_LT(grazing.amplitude_scale, 1.0);
  EXPECT_GT(grazing.amplitude_scale, 0.89);
}

}  // namespace
}  // namespace dwatch::sim
