// Tests for specular bounce geometry (image method).
#include "sim/reflector.hpp"

#include <gtest/gtest.h>

#include "rf/array.hpp"
#include "sim/propagate.hpp"

#include <cmath>

namespace dwatch::sim {
namespace {

WallReflector horizontal_wall(double y, double x0 = -10.0, double x1 = 10.0,
                              double z_hi = 3.0) {
  return WallReflector{{{x0, y}, {x1, y}}, 0.0, z_hi, 0.5};
}

TEST(SpecularBounce, SymmetricGeometry) {
  const WallReflector wall = horizontal_wall(0.0);
  const auto b = specular_bounce(wall, {-2, 2, 1}, {2, 2, 1});
  ASSERT_TRUE(b.has_value());
  EXPECT_NEAR(b->x, 0.0, 1e-12);
  EXPECT_NEAR(b->y, 0.0, 1e-12);
  EXPECT_NEAR(b->z, 1.0, 1e-12);
}

TEST(SpecularBounce, AngleOfIncidenceEqualsReflection) {
  const WallReflector wall = horizontal_wall(0.0);
  const rf::Vec3 from{-3, 2, 1};
  const rf::Vec3 to{5, 4, 1};
  const auto b = specular_bounce(wall, from, to);
  ASSERT_TRUE(b.has_value());
  const double ang_in = std::atan2(from.y - b->y, std::abs(from.x - b->x));
  const double ang_out = std::atan2(to.y - b->y, std::abs(to.x - b->x));
  EXPECT_NEAR(ang_in, ang_out, 1e-9);
}

TEST(SpecularBounce, UnfoldedLengthMatchesImageDistance) {
  const WallReflector wall = horizontal_wall(0.0);
  const rf::Vec3 from{-3, 2, 1};
  const rf::Vec3 to{5, 4, 1};
  const auto b = specular_bounce(wall, from, to);
  ASSERT_TRUE(b.has_value());
  const double via =
      rf::distance(from, *b) + rf::distance(*b, to);
  // Image of `from` across y=0 is (-3,-2,1); straight distance to `to`
  // must equal the folded length (in the plane; z equal here).
  const double image = rf::distance(rf::Vec3{-3, -2, 1}, to);
  EXPECT_NEAR(via, image, 1e-9);
}

TEST(SpecularBounce, MissesFiniteFootprint) {
  const WallReflector wall = horizontal_wall(0.0, 5.0, 10.0);
  EXPECT_FALSE(specular_bounce(wall, {-2, 2, 1}, {2, 2, 1}).has_value());
}

TEST(SpecularBounce, OppositeSidesNoBounce) {
  const WallReflector wall = horizontal_wall(0.0);
  EXPECT_FALSE(specular_bounce(wall, {-2, 2, 1}, {2, -2, 1}).has_value());
}

TEST(SpecularBounce, EndpointOnWallLineNoBounce) {
  const WallReflector wall = horizontal_wall(0.0);
  EXPECT_FALSE(specular_bounce(wall, {-2, 0, 1}, {2, 2, 1}).has_value());
}

TEST(SpecularBounce, VerticalExtentLimits) {
  // Wall only 1.2 m tall; endpoints at 2 m: bounce z would be 2 m.
  const WallReflector wall = horizontal_wall(0.0, -10, 10, 1.2);
  EXPECT_FALSE(specular_bounce(wall, {-2, 2, 2.0}, {2, 2, 2.0}).has_value());
  // Low endpoints are fine.
  EXPECT_TRUE(specular_bounce(wall, {-2, 2, 1.0}, {2, 2, 1.0}).has_value());
}

TEST(SpecularBounce, SlantedBounceHeightInterpolates) {
  const WallReflector wall = horizontal_wall(0.0);
  const auto b = specular_bounce(wall, {-2, 2, 0.5}, {2, 2, 1.5});
  ASSERT_TRUE(b.has_value());
  EXPECT_NEAR(b->z, 1.0, 1e-9);  // symmetric geometry: midpoint height
}

TEST(SpecularBounce, ObliqueWall) {
  // 45-degree wall through origin.
  const WallReflector wall{{{-5.0, -5.0}, {5.0, 5.0}}, 0.0, 3.0, 0.5};
  const rf::Vec3 from{2, 0, 1};
  const rf::Vec3 to{0, 3, 1};  // wait: same side? from is below line y=x,
                               // to is above. Use another point.
  const rf::Vec3 to_same{3, 1, 1};
  const auto b = specular_bounce(wall, from, to_same);
  ASSERT_TRUE(b.has_value());
  // Bounce point must be on the wall line y = x.
  EXPECT_NEAR(b->x, b->y, 1e-9);
  (void)to;
}

}  // namespace
}  // namespace dwatch::sim

namespace dwatch::sim {
namespace {

// --- directional point scatterers ------------------------------------------

TEST(PointScatterer, OmnidirectionalByDefault) {
  const PointScatterer sc{{0.0, 0.0}, 1.2, 2.0};
  EXPECT_TRUE(sc.reflects({-3, 0}, {3, 0}));
  EXPECT_TRUE(sc.reflects({-3, 0}, {0, 5}));
  EXPECT_TRUE(sc.reflects({1, 1}, {1, 1}));
}

TEST(PointScatterer, SpecularDirectionAccepted) {
  // Plate facing +y: a ray coming in from upper-left reflects to
  // upper-right (mirror across the horizontal plane through the plate).
  PointScatterer sc{{0.0, 0.0}, 1.2, 2.0};
  sc.facing = {0.0, 1.0};
  sc.cone_half_angle = 0.2;
  EXPECT_TRUE(sc.reflects({-3, 3}, {3, 3}));    // perfect specular
  EXPECT_FALSE(sc.reflects({-3, 3}, {3, -3}));  // transmission direction
  EXPECT_FALSE(sc.reflects({-3, 3}, {-3, 3}));  // backscatter
}

TEST(PointScatterer, ConeWidthControlsAcceptance) {
  PointScatterer narrow{{0.0, 0.0}, 1.2, 2.0};
  narrow.facing = {0.0, 1.0};
  narrow.cone_half_angle = 0.1;
  PointScatterer wide = narrow;
  wide.cone_half_angle = 1.2;
  // Outgoing 30 degrees off the specular direction.
  const rf::Vec2 from{-3, 3};
  const rf::Vec2 off{3, 1.0};
  EXPECT_FALSE(narrow.reflects(from, off));
  EXPECT_TRUE(wide.reflects(from, off));
}

TEST(PointScatterer, DegenerateEndpointsRejected) {
  PointScatterer sc{{0.0, 0.0}, 1.2, 2.0};
  sc.cone_half_angle = 0.5;
  EXPECT_FALSE(sc.reflects({0, 0}, {3, 3}));  // source at scatterer
  EXPECT_FALSE(sc.reflects({3, 3}, {0, 0}));  // sink at scatterer
}

TEST(PointScatterer, FacingNeedNotBeUnit) {
  PointScatterer sc{{0.0, 0.0}, 1.2, 2.0};
  sc.facing = {0.0, 10.0};  // not normalized
  sc.cone_half_angle = 0.2;
  EXPECT_TRUE(sc.reflects({-3, 3}, {3, 3}));
}

TEST(DirectionalScatterer, TracePathsRespectsCone) {
  Environment env;
  env.name = "unit";
  env.width = 10.0;
  env.depth = 10.0;
  PointScatterer plate{{5.0, 5.0}, 1.0, 2.0};
  plate.facing = {0.0, -1.0};  // faces the bottom edge
  plate.cone_half_angle = 0.3;
  env.scatterers = {plate};
  const rf::UniformLinearArray served({7.0, 3.0, 1.0}, {1, 0}, 8);
  const rf::UniformLinearArray unserved({5.0, 9.0, 1.0}, {1, 0}, 8);
  const rf::Vec3 tag{3.0, 3.0, 1.0};
  // Specular for the served link (mirror geometry across the plate);
  // the link to an array BEHIND the plate gets no scatterer path.
  const auto p1 = trace_paths(tag, served, env);
  const auto p2 = trace_paths(tag, unserved, env);
  EXPECT_EQ(p1.size(), 2u);
  EXPECT_EQ(p2.size(), 1u);
}

}  // namespace
}  // namespace dwatch::sim
