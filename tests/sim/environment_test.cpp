// Tests for environment presets (paper room geometries & multipath
// richness ordering).
#include "sim/environment.hpp"

#include <gtest/gtest.h>

namespace dwatch::sim {
namespace {

TEST(Environment, PaperRoomDimensions) {
  const Environment lib = Environment::library();
  EXPECT_DOUBLE_EQ(lib.width, 7.0);
  EXPECT_DOUBLE_EQ(lib.depth, 10.0);
  const Environment lab = Environment::laboratory();
  EXPECT_DOUBLE_EQ(lab.width, 9.0);
  EXPECT_DOUBLE_EQ(lab.depth, 12.0);
  const Environment hall = Environment::hall();
  EXPECT_DOUBLE_EQ(hall.width, 7.2);
  EXPECT_DOUBLE_EQ(hall.depth, 10.4);
  const Environment table = Environment::table_area();
  EXPECT_DOUBLE_EQ(table.width, 2.0);
  EXPECT_DOUBLE_EQ(table.depth, 2.0);
}

TEST(Environment, MultipathRichnessOrdering) {
  // library > laboratory > hall, as in the paper's Fig. 6 description.
  EXPECT_GT(Environment::library().scatterers.size(),
            Environment::laboratory().scatterers.size());
  EXPECT_GT(Environment::laboratory().scatterers.size(),
            Environment::hall().scatterers.size());
}

TEST(Environment, HallIsBare) {
  const Environment hall = Environment::hall();
  EXPECT_TRUE(hall.scatterers.empty());
  EXPECT_EQ(hall.walls.size(), 4u);  // perimeter only
  for (const auto& wall : hall.walls) {
    EXPECT_LE(wall.reflection, 0.2);  // weak bare walls
  }
}

TEST(Environment, ScatterersInsideRooms) {
  for (const Environment& env :
       {Environment::library(), Environment::laboratory()}) {
    for (const auto& sc : env.scatterers) {
      EXPECT_TRUE(env.contains(sc.position)) << env.name;
    }
  }
}

TEST(Environment, ContainsBoundary) {
  const Environment hall = Environment::hall();
  EXPECT_TRUE(hall.contains({0.0, 0.0}));
  EXPECT_TRUE(hall.contains({7.2, 10.4}));
  EXPECT_FALSE(hall.contains({-0.1, 5.0}));
  EXPECT_FALSE(hall.contains({3.0, 10.5}));
}

TEST(Environment, AddScatterersStaysInside) {
  Environment hall = Environment::hall();
  rf::Rng rng(3);
  const std::size_t before = hall.reflector_count();
  hall.add_scatterers(12, rng);
  EXPECT_EQ(hall.reflector_count(), before + 12);
  for (const auto& sc : hall.scatterers) {
    EXPECT_TRUE(hall.contains(sc.position));
  }
}

TEST(Environment, TableAreaHasOffTableScatterers) {
  // The table preset's scatterers model nearby furniture — outside the
  // table footprint by design.
  const Environment table = Environment::table_area();
  EXPECT_FALSE(table.scatterers.empty());
  for (const auto& sc : table.scatterers) {
    EXPECT_FALSE(table.contains(sc.position));
  }
}

}  // namespace
}  // namespace dwatch::sim
