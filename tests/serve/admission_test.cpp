// Admission-control + brownout suite. The contracts that make overload
// protection safe to deploy:
//
//  1. Anchor traffic is NEVER shed — not by backpressure, not by any
//     brownout tier. Calibration cadence survives every storm.
//  2. The tier ladder moves monotonically: escalation one tier per
//     evaluation, de-escalation damped by a hold-down so the fleet
//     doesn't flap around the threshold.
//  3. Below capacity the controller is inert: every fix is
//     BIT-IDENTICAL to an admission_control=false service fed the same
//     reports — including after a coarsen tier has been applied and
//     released.
//  4. Degradation is typed and ordered: widen -> coarsen -> shed bulk
//     -> reject bulk, each observable in the decision, the stats, and
//     the metrics.
//
// Plus the reentrancy regressions: every scheduler/controller hook
// fires OUTSIDE the lock, so a hook may scrape or resubmit without
// deadlocking (these tests would hang, not fail, on regression).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "rf/noise.hpp"
#include "rf/snapshot.hpp"
#include "serve/admission.hpp"
#include "serve/service.hpp"

namespace dwatch::serve {
namespace {

/// Scriptable budget source: every zone reports the same signal.
struct FakeProvider final : BudgetProvider {
  BudgetSignal signal;
  [[nodiscard]] BudgetSignal zone_budget(std::size_t) const override {
    return signal;
  }
};

// ---------------------------------------------------------------------------
// Controller unit tests
// ---------------------------------------------------------------------------

TEST(AdmissionController, OptionValidation) {
  AdmissionOptions bad;
  bad.escalate_pressure = {2.0, 1.0, 4.0, 6.0};  // decreasing
  EXPECT_THROW(AdmissionController{bad}, std::invalid_argument);
  bad = {};
  bad.escalate_pressure[0] = 0.0;  // non-positive
  EXPECT_THROW(AdmissionController{bad}, std::invalid_argument);
  bad = {};
  bad.deescalate_ratio = 1.0;
  EXPECT_THROW(AdmissionController{bad}, std::invalid_argument);
  bad = {};
  bad.hold_down_evals = 0;
  EXPECT_THROW(AdmissionController{bad}, std::invalid_argument);
}

TEST(AdmissionController, NoProviderMeansNoPressure) {
  AdmissionController ctl;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ctl.evaluate(4), BrownoutTier::kNormal);
  }
  EXPECT_DOUBLE_EQ(ctl.last_pressure(), 0.0);
}

TEST(AdmissionController, EscalatesExactlyOneTierPerEvaluate) {
  AdmissionController ctl;
  FakeProvider provider;
  provider.signal.fast_burn = 100.0;  // above every threshold at once
  ctl.set_budget_provider(&provider);

  EXPECT_EQ(ctl.evaluate(1), BrownoutTier::kWidenEpochs);
  EXPECT_EQ(ctl.evaluate(1), BrownoutTier::kCoarsen);
  EXPECT_EQ(ctl.evaluate(1), BrownoutTier::kShedBulk);
  EXPECT_EQ(ctl.evaluate(1), BrownoutTier::kRejectBulk);
  // Top of the ladder: stays put, never wraps.
  EXPECT_EQ(ctl.evaluate(1), BrownoutTier::kRejectBulk);
  EXPECT_EQ(ctl.evaluations(), 5u);
}

TEST(AdmissionController, PressureStopsAtItsTier) {
  AdmissionController ctl;
  FakeProvider provider;
  // Default ladder {2, 3, 4, 6}: 3.5 clears tier 1's threshold and
  // tier 2's release band but not tier 2's escalation.
  provider.signal.fast_burn = 3.5;
  ctl.set_budget_provider(&provider);
  EXPECT_EQ(ctl.evaluate(1), BrownoutTier::kWidenEpochs);
  EXPECT_EQ(ctl.evaluate(1), BrownoutTier::kCoarsen);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ctl.evaluate(1), BrownoutTier::kCoarsen);
  }
}

TEST(AdmissionController, DeescalationNeedsHoldDownAndIsDamped) {
  AdmissionOptions opts;
  opts.hold_down_evals = 3;
  AdmissionController ctl(opts);
  FakeProvider provider;
  provider.signal.fast_burn = 3.5;
  ctl.set_budget_provider(&provider);
  (void)ctl.evaluate(1);
  (void)ctl.evaluate(1);
  ASSERT_EQ(ctl.tier(), BrownoutTier::kCoarsen);

  // Calm: tier 2's release threshold is escalate[1] * ratio = 1.5.
  provider.signal.fast_burn = 0.0;
  EXPECT_EQ(ctl.evaluate(1), BrownoutTier::kCoarsen);  // calm 1
  EXPECT_EQ(ctl.evaluate(1), BrownoutTier::kCoarsen);  // calm 2
  EXPECT_EQ(ctl.evaluate(1), BrownoutTier::kWidenEpochs);  // calm 3: down 1

  // A pressure spike inside the hold-down resets the calm counter.
  EXPECT_EQ(ctl.evaluate(1), BrownoutTier::kWidenEpochs);  // calm 1
  provider.signal.fast_burn = 1.5;  // in-band for tier 1 (release 1.0)
  EXPECT_EQ(ctl.evaluate(1), BrownoutTier::kWidenEpochs);  // resets
  provider.signal.fast_burn = 0.0;
  EXPECT_EQ(ctl.evaluate(1), BrownoutTier::kWidenEpochs);  // calm 1
  EXPECT_EQ(ctl.evaluate(1), BrownoutTier::kWidenEpochs);  // calm 2
  EXPECT_EQ(ctl.evaluate(1), BrownoutTier::kNormal);       // calm 3
}

TEST(AdmissionController, LatchAndExhaustedBudgetRaisePressure) {
  AdmissionController ctl;
  FakeProvider provider;
  // Fast window drained but the alert is latched: the slow burn keeps
  // the pressure up.
  provider.signal.fast_burn = 0.5;
  provider.signal.slow_burn = 2.5;
  provider.signal.alert_latched = true;
  ctl.set_budget_provider(&provider);
  EXPECT_EQ(ctl.evaluate(1), BrownoutTier::kWidenEpochs);
  EXPECT_DOUBLE_EQ(ctl.last_pressure(), 2.5);

  // Exhausted budget doubles the effective pressure (default boost 2).
  provider.signal = {};
  provider.signal.fast_burn = 1.5;
  provider.signal.budget_remaining = 0.0;
  EXPECT_EQ(ctl.evaluate(1), BrownoutTier::kCoarsen);
  EXPECT_DOUBLE_EQ(ctl.last_pressure(), 3.0);
}

TEST(AdmissionController, DecideRejectsOnlyBulkAtTopTier) {
  AdmissionController ctl;
  FakeProvider provider;
  provider.signal.fast_burn = 100.0;
  ctl.set_budget_provider(&provider);
  for (int i = 0; i < 4; ++i) (void)ctl.evaluate(1);
  ASSERT_EQ(ctl.tier(), BrownoutTier::kRejectBulk);

  const AdmissionDecision bulk = ctl.decide(TrafficClass::kBulk);
  EXPECT_FALSE(bulk.admitted);
  EXPECT_EQ(bulk.traffic_class, TrafficClass::kBulk);
  EXPECT_EQ(bulk.tier, BrownoutTier::kRejectBulk);

  EXPECT_TRUE(ctl.decide(TrafficClass::kTracking).admitted);
  EXPECT_TRUE(ctl.decide(TrafficClass::kAnchor).admitted);
  EXPECT_EQ(ctl.rejected_total(TrafficClass::kBulk), 1u);
  EXPECT_EQ(ctl.admitted_total(TrafficClass::kTracking), 1u);
  EXPECT_EQ(ctl.admitted_total(TrafficClass::kAnchor), 1u);
  EXPECT_EQ(ctl.rejected_total(TrafficClass::kAnchor), 0u);
}

TEST(AdmissionController, ClassifyAnchorPresenceWinsOverZoneClass) {
  AdmissionController ctl;
  ctl.set_zone_class(3, TrafficClass::kBulk);
  EXPECT_EQ(ctl.classify(3, false), TrafficClass::kBulk);
  EXPECT_EQ(ctl.classify(3, true), TrafficClass::kAnchor);
  // Unregistered zones default to tracking.
  EXPECT_EQ(ctl.classify(99, false), TrafficClass::kTracking);
}

TEST(AdmissionController, TierChangeHookFiresOutsideTheLock) {
  AdmissionController ctl;
  FakeProvider provider;
  provider.signal.fast_burn = 100.0;
  ctl.set_budget_provider(&provider);
  std::vector<std::pair<BrownoutTier, BrownoutTier>> moves;
  // Re-entering the controller from the hook deadlocks if evaluate()
  // still holds the mutex when it fires — this test would hang.
  ctl.set_tier_change_hook(
      [&](BrownoutTier from, BrownoutTier to, double pressure) {
        EXPECT_EQ(ctl.tier(), to);
        EXPECT_GT(pressure, 0.0);
        (void)ctl.decide(TrafficClass::kTracking);
        moves.emplace_back(from, to);
      });
  (void)ctl.evaluate(1);
  (void)ctl.evaluate(1);
  ASSERT_EQ(moves.size(), 2u);
  EXPECT_EQ(moves[0].first, BrownoutTier::kNormal);
  EXPECT_EQ(moves[0].second, BrownoutTier::kWidenEpochs);
  EXPECT_EQ(moves[1].second, BrownoutTier::kCoarsen);
}

// ---------------------------------------------------------------------------
// Class-aware scheduler
// ---------------------------------------------------------------------------

PendingEpoch classed(std::size_t zone, TrafficClass cls) {
  PendingEpoch e;
  e.zone = zone;
  e.traffic_class = cls;
  return e;
}

TEST(ServeScheduler, VictimIsLowestClassThenOldest) {
  EpochScheduler sched(1, 2);
  std::vector<std::pair<TrafficClass, std::uint64_t>> shed;
  sched.set_shed_hook([&](const PendingEpoch& e) {
    shed.emplace_back(e.traffic_class, e.seq);
  });

  // Queue: [anchor(0), bulk(1)]. Incoming tracking displaces the bulk
  // even though bulk is not the oldest.
  (void)sched.submit(classed(0, TrafficClass::kAnchor));
  (void)sched.submit(classed(0, TrafficClass::kBulk));
  EXPECT_EQ(sched.submit(classed(0, TrafficClass::kTracking)), 1u);
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0].first, TrafficClass::kBulk);
  EXPECT_EQ(shed[0].second, 1u);

  // Queue: [anchor(0), tracking(2)]. An incoming BULK epoch is itself
  // the strictly lowest class — it is the victim, never queued.
  EXPECT_EQ(sched.submit(classed(0, TrafficClass::kBulk)), 1u);
  ASSERT_EQ(shed.size(), 2u);
  EXPECT_EQ(shed[1].first, TrafficClass::kBulk);
  EXPECT_EQ(shed[1].second, 3u);
  EXPECT_EQ(sched.pending(0), 2u);

  // Same class throughout -> oldest-first (the historical policy).
  EXPECT_EQ(sched.submit(classed(0, TrafficClass::kTracking)), 1u);
  EXPECT_EQ(shed[2].first, TrafficClass::kTracking);
  EXPECT_EQ(shed[2].second, 2u);

  EXPECT_EQ(sched.shed_by_class(TrafficClass::kBulk), 2u);
  EXPECT_EQ(sched.shed_by_class(TrafficClass::kTracking), 1u);
  EXPECT_EQ(sched.shed_by_class(TrafficClass::kAnchor), 0u);
}

TEST(ServeScheduler, AllAnchorQueueAdmitsOverCapInsteadOfShedding) {
  EpochScheduler sched(1, 2);
  std::uint64_t sheds = 0;
  sched.set_shed_hook([&](const PendingEpoch&) { ++sheds; });
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sched.submit(classed(0, TrafficClass::kAnchor)), 0u);
  }
  EXPECT_EQ(sheds, 0u);
  EXPECT_EQ(sched.pending(0), 4u);  // over the cap of 2, deliberately
  EXPECT_EQ(sched.shed_by_class(TrafficClass::kAnchor), 0u);
}

TEST(ServeScheduler, ShedHookMayScrapeAndResubmitWithoutDeadlock) {
  EpochScheduler sched(2, 1);
  std::uint64_t hook_calls = 0;
  sched.set_shed_hook([&](const PendingEpoch& e) {
    ++hook_calls;
    // Scrape from inside the hook (regression: hook under the lock
    // would deadlock right here)...
    EXPECT_EQ(sched.pending(e.zone), 1u);
    (void)sched.total_pending();
    (void)sched.shed_total();
    // ...and even resubmit to another zone, once.
    if (hook_calls == 1) {
      (void)sched.submit(classed(1, TrafficClass::kTracking));
    }
  });
  (void)sched.submit(classed(0, TrafficClass::kTracking));
  (void)sched.submit(classed(0, TrafficClass::kTracking));  // sheds seq 0
  EXPECT_EQ(hook_calls, 1u);
  EXPECT_EQ(sched.pending(1), 1u);
}

TEST(ServeScheduler, PurgeClassDropsOnlyThatClassAndFiresHooksUnlocked) {
  EpochScheduler sched(2, 4);
  (void)sched.submit(classed(0, TrafficClass::kBulk));
  (void)sched.submit(classed(0, TrafficClass::kTracking));
  (void)sched.submit(classed(0, TrafficClass::kBulk));
  (void)sched.submit(classed(1, TrafficClass::kBulk));
  (void)sched.submit(classed(1, TrafficClass::kAnchor));

  std::vector<std::uint64_t> purged_seqs;
  sched.set_shed_hook([&](const PendingEpoch& e) {
    EXPECT_EQ(e.traffic_class, TrafficClass::kBulk);
    (void)sched.total_pending();  // reentrancy: must not deadlock
    purged_seqs.push_back(e.seq);
  });
  EXPECT_EQ(sched.purge_class(TrafficClass::kBulk), 3u);
  EXPECT_EQ(purged_seqs, (std::vector<std::uint64_t>{0, 2, 3}));
  EXPECT_EQ(sched.pending(0), 1u);  // the tracking epoch
  EXPECT_EQ(sched.pending(1), 1u);  // the anchor epoch
  EXPECT_EQ(sched.shed_by_class(TrafficClass::kBulk), 3u);
  EXPECT_EQ(sched.purge_class(TrafficClass::kBulk), 0u);  // idempotent
}

// ---------------------------------------------------------------------------
// Service-level: the full brownout ladder
// ---------------------------------------------------------------------------

std::vector<rf::UniformLinearArray> zone_arrays() {
  return {
      rf::UniformLinearArray({3.5, 0.15, 1.25}, {1, 0}, 8),
      rf::UniformLinearArray({0.15, 5.0, 1.25}, {0, 1}, 8),
  };
}

linalg::CMatrix synth(const rf::UniformLinearArray& array, double angle_rad,
                      double scale, std::uint64_t seed) {
  rf::PropagationPath p;
  p.kind = rf::PathKind::kDirect;
  p.vertices = {{-10, 0, 1.25}, array.center()};
  p.length = 10.0;
  p.aoa = angle_rad;
  p.gain = {0.01, 0.0};
  const std::vector<rf::PropagationPath> paths{p};
  rf::SnapshotOptions opts;
  opts.num_snapshots = 16;
  opts.noise_sigma = rf::noise_sigma_for_snr(paths, 1.0, 35.0);
  rf::Rng rng(seed);
  const std::vector<double> path_scale{scale};
  return rf::synthesize_snapshots(array, paths, path_scale, opts, rng);
}

rfid::TagObservation wire_obs(const linalg::CMatrix& x,
                              const rfid::Epc96& epc) {
  rfid::TagObservation obs;
  obs.epc = epc;
  for (std::size_t n = 0; n < x.cols(); ++n) {
    for (std::size_t m = 0; m < x.rows(); ++m) {
      const auto [pq, rq] = rfid::quantize_sample(x(m, n));
      obs.samples.push_back(rfid::PhaseSample{
          static_cast<std::uint16_t>(m + 1), static_cast<std::uint32_t>(n),
          pq, rq});
    }
  }
  return obs;
}

constexpr rf::Vec2 kTarget{2.0, 3.0};

rfid::RoAccessReport epoch_report(std::size_t array, std::uint64_t epoch) {
  const auto arrays = zone_arrays();
  const double angle = arrays[array].arrival_angle_planar(kTarget);
  const std::uint64_t seed = 10 * epoch + array + 1;
  rfid::RoAccessReport report;
  report.message_id = static_cast<std::uint32_t>(seed);
  report.observations.push_back(wire_obs(
      synth(arrays[array], angle, 0.2, seed),
      rfid::Epc96::for_tag_index(static_cast<std::uint32_t>(array + 1))));
  return report;
}

void install_baselines(core::DWatchPipeline& pipe) {
  const auto arrays = zone_arrays();
  for (std::size_t a = 0; a < arrays.size(); ++a) {
    const double angle = arrays[a].arrival_angle_planar(kTarget);
    pipe.add_baseline(
        a, rfid::Epc96::for_tag_index(static_cast<std::uint32_t>(a + 1)),
        synth(arrays[a], angle, 1.0, 500 + a));
  }
}

ZoneConfig zone_config(TrafficClass cls = TrafficClass::kTracking) {
  ZoneConfig cfg;
  cfg.name = "zone0";
  cfg.arrays = zone_arrays();
  cfg.bounds = {{0.0, 0.0}, {7.0, 10.0}};
  cfg.traffic_class = cls;
  return cfg;
}

void drive_one_epoch(LocalizationService& service, std::uint64_t epoch) {
  // Watermark 0: the synthesized observations carry no first_seen_us,
  // so a nonzero watermark would stale-reject every report.
  service.begin_epoch(0);
  (void)epoch;
  for (std::size_t a = 0; a < 2; ++a) {
    service.add_report(0, a, epoch_report(a, epoch));
  }
  (void)service.run_pending();
}

void expect_bit_identical(const ZoneFix& got, const ZoneFix& want) {
  EXPECT_EQ(got.result.estimate.position.x, want.result.estimate.position.x);
  EXPECT_EQ(got.result.estimate.position.y, want.result.estimate.position.y);
  EXPECT_EQ(got.result.estimate.likelihood, want.result.estimate.likelihood);
  EXPECT_EQ(got.result.estimate.valid, want.result.estimate.valid);
  EXPECT_EQ(got.result.confidence, want.result.confidence);
}

TEST(ServeAdmission, InertBelowCapacityAndBitIdenticalAfterCoarsenRelease) {
  // Reference: the pre-admission serving loop, byte for byte.
  ServiceOptions plain_opts;
  plain_opts.num_workers = 1;
  plain_opts.admission_control = false;
  LocalizationService plain(plain_opts);
  (void)plain.add_zone(zone_config());
  install_baselines(plain.zone(0).pipeline());
  drive_one_epoch(plain, 0);
  drive_one_epoch(plain, 1);
  ASSERT_EQ(plain.fixes(0).size(), 2u);
  ASSERT_TRUE(plain.fixes(0)[0].result.estimate.valid);

  // Admission ON with a calm provider: identical fix, tier stays 0.
  ServiceOptions opts;
  opts.num_workers = 1;
  LocalizationService service(opts);
  (void)service.add_zone(zone_config());
  install_baselines(service.zone(0).pipeline());
  FakeProvider provider;
  service.set_budget_provider(&provider);
  drive_one_epoch(service, 0);
  EXPECT_EQ(service.admission().tier(), BrownoutTier::kNormal);
  ASSERT_EQ(service.fixes(0).size(), 1u);
  expect_bit_identical(service.fixes(0)[0], plain.fixes(0)[0]);

  // Storm: climb to kCoarsen; the coarsening profile lands on the
  // zone pipeline.
  provider.signal.fast_burn = 3.5;
  (void)service.run_pending();
  (void)service.run_pending();
  ASSERT_EQ(service.admission().tier(), BrownoutTier::kCoarsen);
  EXPECT_EQ(service.zone(0).pipeline().brownout().grid_stride,
            opts.admission.coarse_grid_stride);
  EXPECT_EQ(service.zone(0).pipeline().brownout().max_signal_rank,
            opts.admission.coarse_max_signal_rank);

  // Calm again: hold-down (3) per step, two steps back to normal. The
  // profile must clear and the NEXT fix must be bit-identical to the
  // reference run's — coarsening leaves no residue.
  provider.signal.fast_burn = 0.0;
  for (int i = 0; i < 6; ++i) (void)service.run_pending();
  ASSERT_EQ(service.admission().tier(), BrownoutTier::kNormal);
  EXPECT_EQ(service.zone(0).pipeline().brownout(), core::BrownoutProfile{});
  drive_one_epoch(service, 1);
  ASSERT_EQ(service.fixes(0).size(), 2u);
  expect_bit_identical(service.fixes(0)[1], plain.fixes(0)[1]);
}

TEST(ServeAdmission, WidenTierAbsorbsTicksAndKeepsFirstWatermark) {
  ServiceOptions opts;
  opts.num_workers = 1;
  LocalizationService service(opts);
  (void)service.add_zone(zone_config());
  FakeProvider provider;
  service.set_budget_provider(&provider);

  // Pressure 2.5: exactly tier 1 (widen), default widen_factor 2.
  provider.signal.fast_burn = 2.5;
  (void)service.run_pending();
  ASSERT_EQ(service.admission().tier(), BrownoutTier::kWidenEpochs);

  service.begin_epoch(0, 1);  // fresh epoch, watermark 1
  service.begin_epoch(0, 2);  // absorbed: widened, watermark stays 1
  service.begin_epoch(0, 3);  // widen limit reached: seals, reopens
  const ServiceStats mid = service.stats();
  EXPECT_EQ(mid.epochs_widened, 1u);
  EXPECT_EQ(mid.epochs_submitted, 1u);

  (void)service.run_pending();  // seals the watermark-3 epoch too
  ASSERT_EQ(service.fixes(0).size(), 2u);
  // The widened epoch kept its FIRST tick's watermark: a later one
  // would have turned the first tick's reports stale in their own
  // epoch.
  EXPECT_EQ(service.fixes(0)[0].watermark_us, 1u);
  EXPECT_EQ(service.fixes(0)[1].watermark_us, 3u);

  // An epoch that carries anchors seals on schedule — widening never
  // delays the calibration cadence.
  service.begin_epoch(0, 4);
  service.add_anchors(
      0, std::vector<std::vector<core::CalibrationMeasurement>>(2));
  service.begin_epoch(0, 5);  // would widen; anchors force the seal
  const ServiceStats after = service.stats();
  EXPECT_EQ(after.epochs_widened, 1u);  // unchanged
  EXPECT_EQ(after.submitted_by_class[static_cast<std::size_t>(
                TrafficClass::kAnchor)],
            1u);
}

TEST(ServeAdmission, BulkIsPurgedAtShedBulkAndRefusedAtRejectBulk) {
  ServiceOptions opts;
  opts.num_workers = 1;
  opts.max_queue_per_zone = 4;
  LocalizationService service(opts);
  (void)service.add_zone(zone_config(TrafficClass::kBulk));
  FakeProvider provider;
  service.set_budget_provider(&provider);

  // Pressure 5 saturates at tier 3 (shed bulk) on the default ladder.
  provider.signal.fast_burn = 5.0;
  for (int i = 0; i < 3; ++i) (void)service.run_pending();
  ASSERT_EQ(service.admission().tier(), BrownoutTier::kShedBulk);

  // Queue two bulk epochs, then tick: run_pending purges the bulk
  // backlog BEFORE draining, so neither reaches the pipeline.
  service.begin_epoch(0, 1);
  AdmissionDecision d = service.seal_epoch(0);
  EXPECT_TRUE(d.admitted);
  EXPECT_EQ(d.traffic_class, TrafficClass::kBulk);
  service.begin_epoch(0, 2);
  (void)service.seal_epoch(0);
  (void)service.run_pending();
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.epochs_processed, 0u);
  EXPECT_EQ(
      stats.shed_by_class[static_cast<std::size_t>(TrafficClass::kBulk)],
      2u);

  // Pressure 10 clears tier 4: bulk is now refused at ingest — typed,
  // counted, and the shed observer does NOT fire (the reports were
  // never eligible for a fix).
  provider.signal.fast_burn = 10.0;
  (void)service.run_pending();
  ASSERT_EQ(service.admission().tier(), BrownoutTier::kRejectBulk);
  std::uint64_t shed_observed = 0;
  service.set_shed_observer(
      [&](std::size_t, std::uint64_t) { ++shed_observed; });
  service.begin_epoch(0, 3);
  d = service.seal_epoch(0);
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.tier, BrownoutTier::kRejectBulk);
  EXPECT_EQ(d.sheds, 0u);
  stats = service.stats();
  EXPECT_EQ(stats.epochs_rejected, 1u);
  EXPECT_EQ(shed_observed, 0u);

  // Anchor-carrying epochs from the SAME bulk zone still go through.
  service.begin_epoch(0, 4);
  service.add_anchors(
      0, std::vector<std::vector<core::CalibrationMeasurement>>(2));
  d = service.seal_epoch(0);
  EXPECT_TRUE(d.admitted);
  EXPECT_EQ(d.traffic_class, TrafficClass::kAnchor);
}

TEST(ServeAdmission, AnchorsSurviveOverloadEndToEnd) {
  ServiceOptions opts;
  opts.num_workers = 1;
  opts.max_queue_per_zone = 2;
  LocalizationService service(opts);
  (void)service.add_zone(zone_config());

  // 2 anchor + 4 tracking epochs into a queue of 2: every shed victim
  // must be tracking-class.
  for (std::uint64_t e = 0; e < 6; ++e) {
    service.begin_epoch(0, e + 1);
    if (e % 3 == 0) {
      service.add_anchors(
          0, std::vector<std::vector<core::CalibrationMeasurement>>(2));
    }
    (void)service.seal_epoch(0);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(
      stats.shed_by_class[static_cast<std::size_t>(TrafficClass::kAnchor)],
      0u);
  EXPECT_EQ(stats.shed_by_class[static_cast<std::size_t>(
                TrafficClass::kTracking)],
            4u);
  // Both anchor epochs are still pending (watermarks 1 and 4).
  EXPECT_EQ(service.run_pending(), 2u);
  ASSERT_EQ(service.fixes(0).size(), 2u);
  EXPECT_EQ(service.fixes(0)[0].watermark_us, 1u);
  EXPECT_EQ(service.fixes(0)[1].watermark_us, 4u);
}

// ---------------------------------------------------------------------------
// Router draining (zone teardown vs mis-configuration)
// ---------------------------------------------------------------------------

TEST(ServeRouter, DrainingReasonSeparatesTeardownFromUnknown) {
  obs::set_enabled(true);
  obs::MetricsRegistry::global().reset();

  SessionRouter router;
  router.set_sink([](RouteTarget, const rfid::RoAccessReport&) {});
  rfid::RoAccessReport report;

  // The teardown interleaving a fleet actually hits: a reader is
  // provisioned, serves traffic, is deregistered, and its in-flight
  // reports keep arriving for a beat.
  router.bind(42, {0, 0});
  EXPECT_TRUE(router.route(42, report).has_value());
  router.unbind(42);
  EXPECT_FALSE(router.route(42, report).has_value());
  EXPECT_FALSE(router.route(42, report).has_value());
  // A reader nobody ever bound is a different failure: mis-cabling.
  EXPECT_FALSE(router.route(7, report).has_value());

  EXPECT_EQ(router.reports_unroutable(), 3u);
  EXPECT_EQ(router.reports_unroutable_draining(), 2u);
  EXPECT_EQ(obs::MetricsRegistry::global()
                .counter("dwatch_serve_unroutable_total",
                         "reason=\"draining\"")
                .value(),
            2u);
  EXPECT_EQ(obs::MetricsRegistry::global()
                .counter("dwatch_serve_unroutable_total",
                         "reason=\"unknown\"")
                .value(),
            1u);

  // Re-registration clears the draining mark both ways: routes again,
  // and a LATER unbind still counts as draining.
  router.bind(42, {0, 1});
  EXPECT_TRUE(router.route(42, report).has_value());
  router.unbind(42);
  EXPECT_FALSE(router.route(42, report).has_value());
  EXPECT_EQ(router.reports_unroutable_draining(), 3u);

  obs::set_enabled(false);
}

}  // namespace
}  // namespace dwatch::serve
