// Serving-layer tests. The two contracts that make zone sharding safe
// to deploy:
//
//  1. Determinism — every zone's fixes are BIT-IDENTICAL to a
//     standalone DWatchPipeline fed the same reports in the same
//     order, for every shared-pool worker count (1 / 2 / 4). Sharing
//     a process must not change a single bit of any answer.
//  2. Bounded backpressure — under overload the per-zone queues never
//     grow past their cap; the oldest epochs are shed, counted, and
//     the surviving fixes are the NEWEST epochs.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "rf/constants.hpp"
#include "rf/noise.hpp"
#include "rf/snapshot.hpp"
#include "serve/service.hpp"

namespace dwatch::serve {
namespace {

std::vector<rf::UniformLinearArray> zone_arrays() {
  return {
      rf::UniformLinearArray({3.5, 0.15, 1.25}, {1, 0}, 8),
      rf::UniformLinearArray({0.15, 5.0, 1.25}, {0, 1}, 8),
  };
}

core::SearchBounds zone_bounds() { return {{0.0, 0.0}, {7.0, 10.0}}; }

linalg::CMatrix synth(const rf::UniformLinearArray& array, double angle_rad,
                      double scale, std::uint64_t seed) {
  rf::PropagationPath p;
  p.kind = rf::PathKind::kDirect;
  p.vertices = {{-10, 0, 1.25}, array.center()};
  p.length = 10.0;
  p.aoa = angle_rad;
  p.gain = {0.01, 0.0};
  const std::vector<rf::PropagationPath> paths{p};
  rf::SnapshotOptions opts;
  opts.num_snapshots = 16;
  opts.noise_sigma = rf::noise_sigma_for_snr(paths, 1.0, 35.0);
  rf::Rng rng(seed);
  const std::vector<double> path_scale{scale};
  return rf::synthesize_snapshots(array, paths, path_scale, opts, rng);
}

rfid::TagObservation wire_obs(const linalg::CMatrix& x,
                              const rfid::Epc96& epc) {
  rfid::TagObservation obs;
  obs.epc = epc;
  for (std::size_t n = 0; n < x.cols(); ++n) {
    for (std::size_t m = 0; m < x.rows(); ++m) {
      const auto [pq, rq] = rfid::quantize_sample(x(m, n));
      obs.samples.push_back(rfid::PhaseSample{
          static_cast<std::uint16_t>(m + 1), static_cast<std::uint32_t>(n),
          pq, rq});
    }
  }
  return obs;
}

/// Per-zone targets differ so cross-zone leakage would change answers.
rf::Vec2 zone_target(std::size_t zone) {
  return {2.0 + 0.5 * static_cast<double>(zone),
          3.0 + 0.7 * static_cast<double>(zone)};
}

/// One tag per array, dropping toward the zone's target. Seeds are a
/// function of (zone, epoch, array) so every run is reproducible.
rfid::RoAccessReport epoch_report(std::size_t zone, std::size_t array,
                                  std::uint64_t epoch) {
  const auto arrays = zone_arrays();
  const double angle = arrays[array].arrival_angle_planar(zone_target(zone));
  const std::uint64_t seed = 1000 * zone + 10 * epoch + array + 1;
  rfid::RoAccessReport report;
  report.message_id = static_cast<std::uint32_t>(seed);
  report.observations.push_back(
      wire_obs(synth(arrays[array], angle, 0.2, seed),
               rfid::Epc96::for_tag_index(static_cast<std::uint32_t>(
                   10 * zone + array + 1))));
  return report;
}

void install_baselines(core::DWatchPipeline& pipe, std::size_t zone) {
  const auto arrays = zone_arrays();
  for (std::size_t a = 0; a < arrays.size(); ++a) {
    const double angle = arrays[a].arrival_angle_planar(zone_target(zone));
    pipe.add_baseline(
        a,
        rfid::Epc96::for_tag_index(
            static_cast<std::uint32_t>(10 * zone + a + 1)),
        synth(arrays[a], angle, 1.0, 500 + 10 * zone + a));
  }
}

ZoneConfig zone_config(std::size_t zone) {
  ZoneConfig cfg;
  cfg.name = "zone" + std::to_string(zone);
  cfg.arrays = zone_arrays();
  cfg.bounds = zone_bounds();
  return cfg;
}

constexpr std::size_t kZones = 3;
constexpr std::uint64_t kEpochs = 4;

/// Drive the whole fleet through the ROUTER for `kEpochs` epochs and
/// return every zone's fixes.
std::vector<std::vector<ZoneFix>> run_fleet(std::size_t num_workers) {
  ServiceOptions opts;
  opts.num_workers = num_workers;
  LocalizationService service(opts);
  for (std::size_t z = 0; z < kZones; ++z) {
    const std::size_t id = service.add_zone(zone_config(z));
    install_baselines(service.zone(id).pipeline(), z);
    for (std::size_t a = 0; a < 2; ++a) {
      service.bind_reader(100 * (z + 1) + a, z, a);
    }
  }
  for (std::uint64_t e = 0; e < kEpochs; ++e) {
    for (std::size_t z = 0; z < kZones; ++z) service.begin_epoch(z);
    for (std::size_t z = 0; z < kZones; ++z) {
      for (std::size_t a = 0; a < 2; ++a) {
        (void)service.router().route(100 * (z + 1) + a, epoch_report(z, a, e));
      }
    }
    (void)service.run_pending();
  }
  std::vector<std::vector<ZoneFix>> out;
  for (std::size_t z = 0; z < kZones; ++z) out.push_back(service.fixes(z));
  return out;
}

/// The standalone reference: one pipeline per zone, same traffic.
std::vector<core::ConfidentEstimate> run_standalone(std::size_t zone) {
  ZoneConfig cfg = zone_config(zone);
  cfg.pipeline.num_workers = 1;
  core::DWatchPipeline pipe(cfg.arrays, cfg.bounds, cfg.pipeline);
  install_baselines(pipe, zone);
  std::vector<core::ConfidentEstimate> fixes;
  for (std::uint64_t e = 0; e < kEpochs; ++e) {
    pipe.begin_epoch(0);
    for (std::size_t a = 0; a < 2; ++a) {
      const rfid::RoAccessReport report = epoch_report(zone, a, e);
      for (const rfid::TagObservation& obs : report.observations) {
        (void)pipe.observe(a, obs);
      }
    }
    fixes.push_back(pipe.localize_with_confidence(cfg.best_effort));
  }
  return fixes;
}

void expect_bit_identical(const ZoneFix& got,
                          const core::ConfidentEstimate& want) {
  // EXPECT_EQ on doubles is exact comparison — bit-identical, not
  // "close enough".
  EXPECT_EQ(got.result.estimate.position.x, want.estimate.position.x);
  EXPECT_EQ(got.result.estimate.position.y, want.estimate.position.y);
  EXPECT_EQ(got.result.estimate.likelihood, want.estimate.likelihood);
  EXPECT_EQ(got.result.estimate.consensus, want.estimate.consensus);
  EXPECT_EQ(got.result.estimate.valid, want.estimate.valid);
  EXPECT_EQ(got.result.confidence, want.confidence);
}

TEST(ServeDeterminism, ZoneFixesBitIdenticalToStandaloneAtEveryWorkerCount) {
  std::vector<std::vector<core::ConfidentEstimate>> standalone;
  for (std::size_t z = 0; z < kZones; ++z) {
    standalone.push_back(run_standalone(z));
  }
  // The fixes must be real fixes, or the test proves nothing.
  for (std::size_t z = 0; z < kZones; ++z) {
    for (const auto& fix : standalone[z]) {
      ASSERT_TRUE(fix.estimate.valid);
      ASSERT_NEAR(rf::distance(fix.estimate.position, zone_target(z)), 0.0,
                  0.3);
    }
  }
  for (const std::size_t workers : {1u, 2u, 4u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const auto fleet = run_fleet(workers);
    for (std::size_t z = 0; z < kZones; ++z) {
      SCOPED_TRACE("zone=" + std::to_string(z));
      ASSERT_EQ(fleet[z].size(), kEpochs);
      for (std::uint64_t e = 0; e < kEpochs; ++e) {
        expect_bit_identical(fleet[z][e], standalone[z][e]);
      }
    }
  }
}

TEST(ServeBackpressure, SixteenZoneOverloadShedsOldestBounded) {
  obs::set_enabled(true);
  obs::MetricsRegistry::global().reset();
  obs::EventLog::global().clear();

  constexpr std::size_t kFleet = 16;
  constexpr std::size_t kCap = 2;
  constexpr std::uint64_t kSubmitted = 5;
  ServiceOptions opts;
  opts.num_workers = 4;
  opts.max_queue_per_zone = kCap;
  LocalizationService service(opts);
  for (std::size_t z = 0; z < kFleet; ++z) {
    (void)service.add_zone(zone_config(z));
  }

  // Overload: every zone seals 5 epochs (watermarks 1..5) before the
  // serving loop gets one run_pending in.
  for (std::uint64_t e = 0; e < kSubmitted; ++e) {
    for (std::size_t z = 0; z < kFleet; ++z) {
      service.begin_epoch(z, e + 1);  // auto-seals the previous epoch
    }
  }
  // Queues are bounded the whole way — never past cap * zones.
  EXPECT_LE(service.scheduler().total_pending(), kCap * kFleet);

  const std::size_t processed = service.run_pending();
  EXPECT_EQ(processed, kCap * kFleet);
  EXPECT_EQ(service.scheduler().total_pending(), 0u);

  constexpr std::uint64_t kShedPerZone = kSubmitted - kCap;
  EXPECT_EQ(service.scheduler().shed_total(), kShedPerZone * kFleet);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.epochs_shed, kShedPerZone * kFleet);
  EXPECT_EQ(stats.epochs_submitted, kSubmitted * kFleet);
  EXPECT_EQ(stats.epochs_processed, kCap * kFleet);

  for (std::size_t z = 0; z < kFleet; ++z) {
    EXPECT_EQ(service.zone_stats(z).epochs_shed, kShedPerZone);
    // The survivors are the NEWEST epochs (watermarks 4 and 5), in
    // submission order — oldest-first shedding, FIFO processing.
    const auto& fixes = service.fixes(z);
    ASSERT_EQ(fixes.size(), kCap);
    EXPECT_EQ(fixes[0].watermark_us, kSubmitted - 1);
    EXPECT_EQ(fixes[1].watermark_us, kSubmitted);
  }

  // The shed counter is per-zone labelled and the events carry the
  // zone name — the ISSUE's "counted, never silent" requirement. In a
  // DWATCH_OBS=OFF tree the counter and events are compiled out, so
  // only check them when obs is compiled in; the scheduler-level shed
  // accounting above covers both configurations.
#if DWATCH_OBS_ENABLED
  EXPECT_EQ(obs::MetricsRegistry::global()
                .counter("dwatch_serve_shed_total", "zone=\"zone3\"")
                .value(),
            kShedPerZone);
  std::size_t shed_events = 0;
  for (const std::string& line : obs::EventLog::global().snapshot()) {
    if (line.find("serve.epoch_shed") != std::string::npos) ++shed_events;
  }
  EXPECT_EQ(shed_events, kShedPerZone * kFleet);

  // Ring overwrites surface as a scrapeable counter
  // (dwatch_obs_events_dropped_total), not only via the in-process
  // dropped() accessor: shrink the global ring so further emits must
  // overwrite, then count the overflow.
  obs::Counter& dropped =
      obs::MetricsRegistry::global().counter("dwatch_obs_events_dropped_total");
  const std::uint64_t dropped_before = dropped.value();
  obs::EventLog::global().clear();
  obs::EventLog::global().set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    obs::EventLog::global().emit(
        obs::Event("serve.test_overflow").field("i", i));
  }
  EXPECT_EQ(dropped.value(), dropped_before + 6);
  EXPECT_EQ(obs::EventLog::global().size(), 4u);
  obs::EventLog::global().set_capacity(65536);
#endif

  obs::set_enabled(false);
}

TEST(ServeScheduler, FifoWithinZoneAndOldestShedFirst) {
  EpochScheduler sched(2, 2);
  std::vector<std::uint64_t> shed_seqs;
  sched.set_shed_hook(
      [&](const PendingEpoch& e) { shed_seqs.push_back(e.seq); });

  for (int i = 0; i < 4; ++i) {
    PendingEpoch e;
    e.zone = 0;
    EXPECT_EQ(sched.submit(std::move(e)), i < 2 ? 0u : 1u);
  }
  PendingEpoch other;
  other.zone = 1;
  (void)sched.submit(std::move(other));

  // seqs 0..3 went to zone 0; 0 and 1 were shed oldest-first.
  EXPECT_EQ(shed_seqs, (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(sched.pending(0), 2u);
  EXPECT_EQ(sched.pending(1), 1u);

  std::vector<std::pair<std::size_t, std::uint64_t>> order;
  EXPECT_EQ(sched.run_pending(nullptr,
                              [&](PendingEpoch&& e) {
                                order.emplace_back(e.zone, e.seq);
                              }),
            3u);
  // Serial drain: zone order, FIFO inside each zone.
  EXPECT_EQ(order,
            (std::vector<std::pair<std::size_t, std::uint64_t>>{
                {0, 2}, {0, 3}, {1, 4}}));
  EXPECT_EQ(sched.processed_total(), 3u);
  EXPECT_EQ(sched.total_pending(), 0u);

  PendingEpoch bad;
  bad.zone = 9;
  EXPECT_THROW((void)sched.submit(std::move(bad)), std::out_of_range);
  EXPECT_THROW((void)sched.pending(9), std::out_of_range);
}

TEST(ServeRouter, BindingRulesAndUnroutableCounting) {
  SessionRouter router;
  EXPECT_THROW(router.bind(0, {0, 0}), std::invalid_argument);
  EXPECT_FALSE(router.resolve(42).has_value());

  router.bind(42, {1, 0});
  ASSERT_TRUE(router.resolve(42).has_value());
  EXPECT_EQ(router.resolve(42)->zone, 1u);

  std::vector<RouteTarget> seen;
  router.set_sink(
      [&](RouteTarget t, const rfid::RoAccessReport&) { seen.push_back(t); });

  rfid::RoAccessReport report;
  EXPECT_TRUE(router.route(42, report).has_value());
  EXPECT_FALSE(router.route(7, report).has_value());  // unbound
  router.unbind(42);
  EXPECT_FALSE(router.route(42, report).has_value());

  EXPECT_EQ(seen.size(), 1u);
  EXPECT_EQ(router.reports_routed(), 1u);
  EXPECT_EQ(router.reports_unroutable(), 2u);
}

TEST(ServeRouter, AttachedClientStreamsIntoZoneEpoch) {
  LocalizationService service;
  const std::size_t z = service.add_zone(zone_config(0));
  install_baselines(service.zone(z).pipeline(), 0);

  // A client whose transport always times out still delivers decoded
  // reports (the data plane is a different path than the control plane).
  rfid::RobustSessionClient client(
      [](std::span<const std::uint8_t>) { return std::nullopt; });
  service.attach_client(client, 500, z, 0);
  EXPECT_EQ(client.reader_id(), 500u);

  service.begin_epoch(z);
  client.deliver_report(epoch_report(0, 0, 0));
  EXPECT_EQ(client.reports_delivered(), 1u);
  EXPECT_EQ(service.zone_stats(z).reports_routed, 1u);
  EXPECT_EQ(service.router().reports_routed(), 1u);

  EXPECT_EQ(service.run_pending(), 1u);
  ASSERT_EQ(service.fixes(z).size(), 1u);
  // One array of evidence: no consensus fix, but the epoch ran.
  EXPECT_EQ(service.zone_stats(z).epochs_processed, 1u);
}

TEST(ServeZone, ConfigValidationAndRecoveryWiring) {
  LocalizationService service;
  ZoneConfig bad = zone_config(0);
  bad.name.clear();
  EXPECT_THROW((void)service.add_zone(std::move(bad)), std::invalid_argument);

  ZoneConfig mismatched = zone_config(0);
  mismatched.calibration.resize(1);  // 2 arrays, 1 calibration
  EXPECT_THROW((void)service.add_zone(std::move(mismatched)),
               std::invalid_argument);

  ZoneConfig plain = zone_config(0);
  const std::size_t z0 = service.add_zone(std::move(plain));
  EXPECT_EQ(service.zone(z0).coordinator(), nullptr);

  // A zone with calibrators gets its own coordinator; checkpoint_every
  // is forced off when no path is configured.
  ZoneConfig healing = zone_config(1);
  healing.calibrators = {
      core::WirelessCalibrator(rf::kDefaultElementSpacing,
                               rf::kDefaultWavelength),
      core::WirelessCalibrator(rf::kDefaultElementSpacing,
                               rf::kDefaultWavelength)};
  healing.recovery.background = false;
  const std::size_t z1 = service.add_zone(std::move(healing));
  ASSERT_NE(service.zone(z1).coordinator(), nullptr);

  // Driving an epoch through the service also drives the coordinator's
  // end_epoch (no anchors: watchdog skips, no checkpoint configured).
  service.begin_epoch(z1);
  service.add_anchors(z1, std::vector<std::vector<core::CalibrationMeasurement>>(2));
  EXPECT_EQ(service.run_pending(), 1u);
  EXPECT_EQ(service.zone(z1).coordinator()->stats().checkpoints_written, 0u);

  EXPECT_THROW((void)service.zone(99), std::out_of_range);
  EXPECT_THROW(service.bind_reader(1, z0, 9), std::out_of_range);
  EXPECT_THROW(service.add_report(z0, 0, {}), std::logic_error);
}

}  // namespace
}  // namespace dwatch::serve
