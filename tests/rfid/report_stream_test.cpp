// Tests for server-side snapshot assembly from wire observations.
#include "rfid/report_stream.hpp"

#include <gtest/gtest.h>

namespace dwatch::rfid {
namespace {

PhaseSample sample(std::uint16_t element, std::uint32_t round,
                   std::uint16_t phase = 100, std::int16_t rssi = -3000) {
  return PhaseSample{element, round, phase, rssi};
}

TagObservation full_observation(std::uint32_t tag, std::size_t elements,
                                std::uint32_t rounds,
                                std::uint32_t round0 = 0) {
  TagObservation obs;
  obs.epc = Epc96::for_tag_index(tag);
  for (std::uint32_t r = round0; r < round0 + rounds; ++r) {
    for (std::uint16_t e = 1; e <= elements; ++e) {
      obs.samples.push_back(sample(e, r, static_cast<std::uint16_t>(e * r)));
    }
  }
  return obs;
}

TEST(SnapshotAssembler, ValidatesConstruction) {
  EXPECT_THROW(SnapshotAssembler(0, 4), std::invalid_argument);
  EXPECT_THROW(SnapshotAssembler(8, 0), std::invalid_argument);
}

TEST(SnapshotAssembler, NotReadyUntilEnoughRounds) {
  SnapshotAssembler asm8(8, 4);
  asm8.ingest(full_observation(1, 8, 3));
  EXPECT_TRUE(asm8.ready_tags().empty());
  EXPECT_FALSE(asm8.take(Epc96::for_tag_index(1)).has_value());
  asm8.ingest(full_observation(1, 8, 1, 3));
  ASSERT_EQ(asm8.ready_tags().size(), 1u);
  const auto snap = asm8.take(Epc96::for_tag_index(1));
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->x.rows(), 8u);
  EXPECT_EQ(snap->x.cols(), 4u);
  EXPECT_EQ(snap->rounds_used, 4u);
}

TEST(SnapshotAssembler, IncompleteRoundsAreNotUsed) {
  SnapshotAssembler asm8(4, 2);
  TagObservation obs;
  obs.epc = Epc96::for_tag_index(2);
  // Round 0 complete; round 1 missing element 3.
  for (std::uint16_t e = 1; e <= 4; ++e) obs.samples.push_back(sample(e, 0));
  for (std::uint16_t e = 1; e <= 4; ++e) {
    if (e != 3) obs.samples.push_back(sample(e, 1));
  }
  asm8.ingest(obs);
  EXPECT_TRUE(asm8.ready_tags().empty());
}

TEST(SnapshotAssembler, DuplicatesDroppedFirstWins) {
  SnapshotAssembler asm4(2, 1);
  TagObservation obs;
  obs.epc = Epc96::for_tag_index(3);
  obs.samples.push_back(sample(1, 0, 111));
  obs.samples.push_back(sample(1, 0, 222));  // duplicate
  obs.samples.push_back(sample(2, 0, 333));
  asm4.ingest(obs);
  const auto snap = asm4.take(Epc96::for_tag_index(3));
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->samples_dropped, 1u);
  EXPECT_NEAR(std::arg(snap->x(0, 0)), dequantize_phase(111), 1e-9);
}

TEST(SnapshotAssembler, OutOfRangeElementDropped) {
  SnapshotAssembler asm4(4, 1);
  TagObservation obs;
  obs.epc = Epc96::for_tag_index(4);
  obs.samples.push_back(sample(0, 0));  // invalid
  obs.samples.push_back(sample(5, 0));  // invalid
  for (std::uint16_t e = 1; e <= 4; ++e) obs.samples.push_back(sample(e, 0));
  asm4.ingest(obs);
  const auto snap = asm4.take(Epc96::for_tag_index(4));
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->samples_dropped, 2u);
}

TEST(SnapshotAssembler, MultipleTagsIndependent) {
  SnapshotAssembler asm4(4, 2);
  asm4.ingest(full_observation(10, 4, 2));
  asm4.ingest(full_observation(11, 4, 1));
  const auto ready = asm4.ready_tags();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], Epc96::for_tag_index(10));
  const auto all = asm4.take_all_ready();
  EXPECT_EQ(all.size(), 1u);
  // Tag 10 consumed; tag 11 still pending.
  EXPECT_TRUE(asm4.ready_tags().empty());
  asm4.ingest(full_observation(11, 4, 1, 1));
  EXPECT_EQ(asm4.ready_tags().size(), 1u);
}

TEST(SnapshotAssembler, TakeConsumesRounds) {
  SnapshotAssembler asm4(2, 2);
  asm4.ingest(full_observation(7, 2, 4));  // 4 complete rounds buffered
  const auto first = asm4.take(Epc96::for_tag_index(7));
  ASSERT_TRUE(first.has_value());
  // Two rounds consumed; two remain => still ready once more.
  const auto second = asm4.take(Epc96::for_tag_index(7));
  ASSERT_TRUE(second.has_value());
  EXPECT_FALSE(asm4.take(Epc96::for_tag_index(7)).has_value());
}

TEST(SnapshotAssembler, ClearForgetsEverything) {
  SnapshotAssembler asm4(2, 1);
  asm4.ingest(full_observation(8, 2, 1));
  EXPECT_EQ(asm4.ready_tags().size(), 1u);
  asm4.clear();
  EXPECT_TRUE(asm4.ready_tags().empty());
}

TEST(SnapshotAssembler, UnknownTagTakeReturnsNullopt) {
  SnapshotAssembler asm4(2, 1);
  EXPECT_FALSE(asm4.take(Epc96::for_tag_index(99)).has_value());
}

TEST(SnapshotAssembler, DuplicateReportQuarantinedNotDoubleCounted) {
  // Regression: a retransmitted report — same (EPC, antenna, timestamp)
  // AND byte-identical samples — used to re-populate rounds and count
  // the same physical measurement as fresh snapshots.
  SnapshotAssembler asm4(4, 4);
  TagObservation obs = full_observation(1, 4, 2);
  obs.first_seen_us = 777;
  EXPECT_TRUE(asm4.ingest(obs));
  EXPECT_FALSE(asm4.ingest(obs));  // verbatim retransmission
  EXPECT_FALSE(asm4.ingest(obs));
  EXPECT_EQ(asm4.stats().reports_accepted, 1u);
  EXPECT_EQ(asm4.stats().duplicate_reports_quarantined, 2u);
  // Only the first copy's 2 rounds are buffered: tag is NOT ready.
  EXPECT_TRUE(asm4.ready_tags().empty());
}

TEST(SnapshotAssembler, DuplicateAfterTakeStillQuarantined) {
  // The trap: duplicate arrives AFTER its rounds were consumed by
  // take(). Without a fingerprint that survives take(), the stale copy
  // would rebuild the matrix from already-counted measurements.
  SnapshotAssembler asm4(2, 2);
  TagObservation obs = full_observation(5, 2, 2);
  obs.first_seen_us = 1234;
  EXPECT_TRUE(asm4.ingest(obs));
  ASSERT_TRUE(asm4.take(Epc96::for_tag_index(5)).has_value());
  EXPECT_FALSE(asm4.ingest(obs));
  EXPECT_TRUE(asm4.ready_tags().empty());
  EXPECT_EQ(asm4.stats().duplicate_reports_quarantined, 1u);
}

TEST(SnapshotAssembler, DistinctObservationsWithEqualTimestampsAccepted) {
  // NOT duplicates: same EPC, antenna and timestamp but different
  // measurements (readers commonly report first_seen once per tag).
  // Content must disambiguate, or legitimate traffic gets quarantined.
  SnapshotAssembler asm4(4, 2);
  EXPECT_TRUE(asm4.ingest(full_observation(1, 4, 1, 0)));
  EXPECT_TRUE(asm4.ingest(full_observation(1, 4, 1, 1)));  // next round
  EXPECT_EQ(asm4.stats().reports_accepted, 2u);
  EXPECT_EQ(asm4.stats().duplicate_reports_quarantined, 0u);
  EXPECT_EQ(asm4.ready_tags().size(), 1u);
}

TEST(SnapshotAssembler, ReportOverloadCountsAccepted) {
  SnapshotAssembler asm4(4, 2);
  RoAccessReport report;
  report.observations.push_back(full_observation(1, 4, 2));
  report.observations.push_back(full_observation(1, 4, 2));  // duplicate
  report.observations.push_back(full_observation(2, 4, 2));
  EXPECT_EQ(asm4.ingest(report), 2u);
  EXPECT_EQ(asm4.stats().duplicate_reports_quarantined, 1u);
  EXPECT_EQ(asm4.ready_tags().size(), 2u);
}

TEST(SnapshotAssembler, QuarantineCountersTrackRejectedSamples) {
  SnapshotAssembler asm4(4, 1);
  TagObservation obs;
  obs.epc = Epc96::for_tag_index(4);
  obs.samples.push_back(sample(0, 0));  // invalid element id
  obs.samples.push_back(sample(5, 0));  // out of range
  for (std::uint16_t e = 1; e <= 4; ++e) obs.samples.push_back(sample(e, 0));
  EXPECT_TRUE(asm4.ingest(obs));
  EXPECT_EQ(asm4.stats().samples_quarantined, 2u);
}

TEST(SnapshotAssembler, ReaderResetAcceptsReplayedSequenceNumbers) {
  // Regression: a rebooted reader restarts its round/timestamp counters
  // and resends byte-identical observations. Before the reconnect path
  // cleared the quarantine, those fresh reads were mass-rejected as
  // duplicates of the previous connection and the tag starved forever.
  SnapshotAssembler asm4(2, 2);
  TagObservation obs = full_observation(3, 2, 2);
  obs.first_seen_us = 50;
  EXPECT_TRUE(asm4.ingest(obs));
  ASSERT_TRUE(asm4.take(Epc96::for_tag_index(3)).has_value());
  // Same wire bytes again on the SAME connection: retransmission.
  EXPECT_FALSE(asm4.ingest(obs));

  asm4.on_reader_reset();

  // Same wire bytes after the reboot: a genuinely new measurement.
  EXPECT_TRUE(asm4.ingest(obs));
  EXPECT_TRUE(asm4.take(Epc96::for_tag_index(3)).has_value());
  // Lifetime stats survive the reset (2 accepted + 1 quarantined).
  EXPECT_EQ(asm4.stats().reports_accepted, 2u);
  EXPECT_EQ(asm4.stats().duplicate_reports_quarantined, 1u);
}

TEST(SnapshotAssembler, ReaderResetDropsPartialRounds) {
  // Buffered incomplete rounds from before the reboot must go too: the
  // restarted reader reuses their round numbers, and stitching its
  // samples into pre-reboot columns would fabricate snapshots.
  SnapshotAssembler asm4(2, 1);
  TagObservation half;
  half.epc = Epc96::for_tag_index(9);
  half.samples.push_back(sample(1, 0));  // element 2 of round 0 missing
  EXPECT_TRUE(asm4.ingest(half));

  asm4.on_reader_reset();

  TagObservation other_half;
  other_half.epc = Epc96::for_tag_index(9);
  other_half.samples.push_back(sample(2, 0));
  EXPECT_TRUE(asm4.ingest(other_half));
  // Round 0 holds only the post-reboot sample: still incomplete.
  EXPECT_TRUE(asm4.ready_tags().empty());
}

TEST(SnapshotAssembler, QuarantineExportRestoreRoundTrips) {
  SnapshotAssembler asm4(2, 2);
  TagObservation obs = full_observation(6, 2, 2);
  obs.first_seen_us = 99;
  EXPECT_TRUE(asm4.ingest(obs));
  TagObservation obs2 = full_observation(7, 2, 1);
  obs2.first_seen_us = 100;
  EXPECT_TRUE(asm4.ingest(obs2));

  const std::vector<QuarantineEntry> exported =
      asm4.quarantine_fingerprints();
  ASSERT_EQ(exported.size(), 2u);

  // A restarted server restores the fingerprints and still recognizes
  // pre-crash retransmissions, without inheriting buffered rounds.
  SnapshotAssembler fresh(2, 2);
  fresh.restore_quarantine(exported);
  EXPECT_FALSE(fresh.ingest(obs));
  EXPECT_FALSE(fresh.ingest(obs2));
  EXPECT_EQ(fresh.stats().duplicate_reports_quarantined, 2u);
  EXPECT_TRUE(fresh.ready_tags().empty());
  // And the restored quarantine exports identically.
  const auto reexported = fresh.quarantine_fingerprints();
  ASSERT_EQ(reexported.size(), exported.size());
  for (std::size_t i = 0; i < exported.size(); ++i) {
    EXPECT_EQ(reexported[i].epc, exported[i].epc);
    EXPECT_EQ(reexported[i].fingerprints, exported[i].fingerprints);
  }
}

}  // namespace
}  // namespace dwatch::rfid
