// Tests for the Gen2-lite slotted-ALOHA inventory.
#include "rfid/gen2.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace dwatch::rfid {
namespace {

TEST(Gen2, RejectsBadArguments) {
  Gen2Config cfg;
  rf::Rng rng(1);
  EXPECT_THROW((void)run_inventory(0, cfg, rng), std::invalid_argument);
  cfg.min_q = 5;
  cfg.max_q = 3;
  EXPECT_THROW((void)run_inventory(4, cfg, rng), std::invalid_argument);
}

TEST(Gen2, SingleTagSingulatesQuickly) {
  Gen2Config cfg;
  rf::Rng rng(2);
  const InventoryResult res = run_inventory(1, cfg, rng);
  ASSERT_EQ(res.reads.size(), 1u);
  EXPECT_EQ(res.reads[0].tag_index, 0u);
  EXPECT_EQ(res.collision_slots, 0u);
  EXPECT_GT(res.duration_us, 0.0);
}

TEST(Gen2, Deterministic) {
  Gen2Config cfg;
  rf::Rng a(77);
  rf::Rng b(77);
  const InventoryResult ra = run_inventory(21, cfg, a);
  const InventoryResult rb = run_inventory(21, cfg, b);
  ASSERT_EQ(ra.reads.size(), rb.reads.size());
  for (std::size_t i = 0; i < ra.reads.size(); ++i) {
    EXPECT_EQ(ra.reads[i].tag_index, rb.reads[i].tag_index);
    EXPECT_DOUBLE_EQ(ra.reads[i].timestamp_us, rb.reads[i].timestamp_us);
  }
}

TEST(Gen2, TimestampsMonotone) {
  Gen2Config cfg;
  rf::Rng rng(5);
  const InventoryResult res = run_inventory(30, cfg, rng);
  for (std::size_t i = 1; i < res.reads.size(); ++i) {
    EXPECT_GT(res.reads[i].timestamp_us, res.reads[i - 1].timestamp_us);
  }
  EXPECT_GE(res.duration_us, res.reads.back().timestamp_us);
}

TEST(Gen2, SlotAccountingConsistent) {
  Gen2Config cfg;
  rf::Rng rng(6);
  const InventoryResult res = run_inventory(21, cfg, rng);
  EXPECT_EQ(res.total_slots,
            res.empty_slots + res.collision_slots + res.reads.size());
}

/// Every tag is read exactly once, for a range of population sizes.
class InventoryPopulationTest : public ::testing::TestWithParam<int> {};

TEST_P(InventoryPopulationTest, AllTagsReadExactlyOnce) {
  const auto n = static_cast<std::size_t>(GetParam());
  Gen2Config cfg;
  rf::Rng rng(1000 + n);
  const InventoryResult res = run_inventory(n, cfg, rng);
  ASSERT_EQ(res.reads.size(), n);
  std::set<std::uint32_t> seen;
  for (const auto& read : res.reads) {
    EXPECT_TRUE(seen.insert(read.tag_index).second);
    EXPECT_LT(read.tag_index, n);
  }
}

INSTANTIATE_TEST_SUITE_P(Populations, InventoryPopulationTest,
                         ::testing::Values(1, 2, 7, 21, 47, 100, 331));

TEST(Gen2, LargerPopulationTakesLonger) {
  Gen2Config cfg;
  rf::Rng rng(9);
  double d_small = 0.0;
  double d_large = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    d_small += run_inventory(5, cfg, rng).duration_us;
    d_large += run_inventory(50, cfg, rng).duration_us;
  }
  EXPECT_GT(d_large, d_small);
}

TEST(Gen2, ReadRateEstimatePlausible) {
  // Commodity readers singulate on the order of a few hundred tags/s.
  Gen2Config cfg;
  rf::Rng rng(10);
  const double rate = estimate_read_rate(21, cfg, 10, rng);
  EXPECT_GT(rate, 100.0);
  EXPECT_LT(rate, 3000.0);
  EXPECT_THROW((void)estimate_read_rate(21, cfg, 0, rng),
               std::invalid_argument);
}

TEST(Gen2, BadInitialQStillCompletes) {
  // Tiny Q with a big population: the Q algorithm must adapt upward.
  Gen2Config cfg;
  cfg.initial_q = 0;
  rf::Rng rng(3);
  const InventoryResult res = run_inventory(40, cfg, rng);
  EXPECT_EQ(res.reads.size(), 40u);
  EXPECT_GT(res.collision_slots, 0u);
}

}  // namespace
}  // namespace dwatch::rfid
