// Tests for the LLRP-lite wire codec: quantization, framing, stream
// reassembly, and malformed-input rejection.
#include "rfid/llrp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rf/constants.hpp"

namespace dwatch::rfid {
namespace {

TEST(Quantize, PhaseRoundTripResolution) {
  for (double phase = 0.0; phase < rf::kTwoPi; phase += 0.013) {
    const std::uint16_t q = quantize_phase(phase);
    EXPECT_NEAR(dequantize_phase(q), phase, rf::kTwoPi / 65536.0 + 1e-12);
  }
}

TEST(Quantize, PhaseWrapsNegative) {
  const std::uint16_t q = quantize_phase(-rf::kPi / 2);
  EXPECT_NEAR(dequantize_phase(q), 3.0 * rf::kPi / 2, 1e-3);
}

TEST(Quantize, RssiRoundTrip) {
  for (double amp : {1.0, 0.5, 1e-3, 1e-6, 42.0}) {
    const std::int16_t q = quantize_rssi(amp);
    EXPECT_NEAR(dequantize_rssi(q) / amp, 1.0, 1e-3);
  }
}

TEST(Quantize, ZeroAmplitudeSentinel) {
  EXPECT_EQ(dequantize_rssi(quantize_rssi(0.0)), 0.0);
  EXPECT_EQ(dequantize_rssi(quantize_rssi(-1.0)), 0.0);
}

class SampleQuantizeTest : public ::testing::TestWithParam<double> {};

TEST_P(SampleQuantizeTest, ComplexSampleRoundTrip) {
  const double angle = GetParam();
  const linalg::Complex x = std::polar(0.0123, angle);
  const auto [pq, rq] = quantize_sample(x);
  const linalg::Complex y = dequantize_sample(pq, rq);
  EXPECT_NEAR(std::abs(y - x) / std::abs(x), 0.0, 2e-3);
}

INSTANTIATE_TEST_SUITE_P(Angles, SampleQuantizeTest,
                         ::testing::Values(0.0, 0.5, 1.5, 3.1, -2.0, 6.2));

RoAccessReport sample_report() {
  RoAccessReport msg;
  msg.message_id = 1234;
  TagObservation obs;
  obs.epc = Epc96::for_tag_index(5);
  obs.antenna_port = 2;
  obs.first_seen_us = 999888777ULL;
  for (std::uint16_t e = 1; e <= 8; ++e) {
    for (std::uint32_t round = 0; round < 3; ++round) {
      obs.samples.push_back(PhaseSample{
          .element_id = e,
          .round = round,
          .phase_q = static_cast<std::uint16_t>(e * 1000 + round),
          .rssi_q = static_cast<std::int16_t>(-4000 - e),
      });
    }
  }
  msg.observations.push_back(obs);
  TagObservation obs2;
  obs2.epc = Epc96::for_tag_index(9);
  obs2.antenna_port = 1;
  msg.observations.push_back(obs2);
  return msg;
}

TEST(Llrp, ReportRoundTrip) {
  const RoAccessReport msg = sample_report();
  const auto bytes = encode(msg);
  const RoAccessReport decoded = decode_ro_access_report(bytes);
  EXPECT_EQ(decoded.message_id, 1234u);
  ASSERT_EQ(decoded.observations.size(), 2u);
  const TagObservation& obs = decoded.observations[0];
  EXPECT_EQ(obs.epc, Epc96::for_tag_index(5));
  EXPECT_EQ(obs.antenna_port, 2);
  EXPECT_EQ(obs.first_seen_us, 999888777ULL);
  ASSERT_EQ(obs.samples.size(), 24u);
  EXPECT_EQ(obs.samples[0].element_id, 1);
  EXPECT_EQ(obs.samples[23].phase_q, 8002);
  EXPECT_EQ(obs.samples[23].rssi_q, -4008);
  EXPECT_TRUE(decoded.observations[1].samples.empty());
}

TEST(Llrp, HeaderPeek) {
  const auto bytes = encode(Keepalive{77});
  const auto header = peek_header(bytes);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->type, MessageType::kKeepalive);
  EXPECT_EQ(header->message_id, 77u);
  EXPECT_EQ(header->length, bytes.size());
  // Too-short buffer: no header yet.
  EXPECT_FALSE(
      peek_header(std::span(bytes).subspan(0, 5)).has_value());
}

TEST(Llrp, HeaderRejectsBadVersion) {
  auto bytes = encode(Keepalive{1});
  bytes[0] = static_cast<std::uint8_t>(bytes[0] ^ 0x1C);  // clobber version
  EXPECT_THROW((void)peek_header(bytes), DecodeError);
}

TEST(Llrp, DecodeRejectsWrongType) {
  const auto bytes = encode(Keepalive{1});
  EXPECT_THROW((void)decode_ro_access_report(bytes), DecodeError);
}

TEST(Llrp, DecodeRejectsTruncation) {
  auto bytes = encode(sample_report());
  bytes.pop_back();
  EXPECT_THROW((void)decode_ro_access_report(bytes), DecodeError);
}

TEST(Llrp, EventNotificationRoundTrip) {
  ReaderEventNotification ev;
  ev.message_id = 42;
  ev.timestamp_us = 123456;
  ev.event_code = 0;
  const auto bytes = encode(ev);
  const auto decoded = decode_reader_event_notification(bytes);
  EXPECT_EQ(decoded.message_id, 42u);
  EXPECT_EQ(decoded.timestamp_us, 123456u);
}

TEST(LlrpStream, ReassemblesChunkedMessages) {
  const auto r1 = encode(sample_report());
  const auto ka = encode(Keepalive{5});
  const auto r2 = encode(sample_report());
  std::vector<std::uint8_t> stream;
  stream.insert(stream.end(), r1.begin(), r1.end());
  stream.insert(stream.end(), ka.begin(), ka.end());
  stream.insert(stream.end(), r2.begin(), r2.end());

  LlrpStreamDecoder decoder;
  std::size_t reports = 0;
  // Feed in awkward 7-byte chunks, as TCP might deliver.
  for (std::size_t pos = 0; pos < stream.size(); pos += 7) {
    const std::size_t n = std::min<std::size_t>(7, stream.size() - pos);
    decoder.feed(std::span(stream).subspan(pos, n));
    while (decoder.next_report()) ++reports;
  }
  EXPECT_EQ(reports, 2u);
  EXPECT_EQ(decoder.keepalives_seen(), 1u);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(LlrpStream, PartialMessageStaysBuffered) {
  const auto r1 = encode(sample_report());
  LlrpStreamDecoder decoder;
  decoder.feed(std::span(r1).subspan(0, r1.size() - 3));
  EXPECT_FALSE(decoder.next_report().has_value());
  EXPECT_EQ(decoder.buffered_bytes(), r1.size() - 3);
  decoder.feed(std::span(r1).subspan(r1.size() - 3));
  EXPECT_TRUE(decoder.next_report().has_value());
}

TEST(Llrp, DecodeRejectsTruncationAtEveryPrefix) {
  // No prefix of a valid report may decode: shorter than the header it
  // is "truncated header", longer it is a length mismatch or a
  // mid-parameter cut. Every cut point must throw, never crash or
  // return a partial report.
  const auto bytes = encode(sample_report());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW(
        (void)decode_ro_access_report(std::span(bytes).subspan(0, cut)),
        DecodeError)
        << "prefix of " << cut << " bytes";
  }
}

TEST(Llrp, TruncatedAuxMessagesThrow) {
  const auto ka = encode(Keepalive{3});
  EXPECT_THROW(
      (void)decode_keepalive(std::span(ka).subspan(0, ka.size() - 1)),
      DecodeError);
  ReaderEventNotification ev;
  ev.message_id = 4;
  const auto evb = encode(ev);
  EXPECT_THROW((void)decode_reader_event_notification(
                   std::span(evb).subspan(0, evb.size() - 2)),
               DecodeError);
}

TEST(LlrpStream, PartialFrameSwallowingTheNextThrows) {
  // A reader dies mid-frame and reconnects: the stream holds half a
  // report followed by a complete one. The strict decoder frames by the
  // stale length field, swallows the start of the next message, and
  // must throw rather than emit garbage.
  const auto r1 = encode(sample_report());
  const auto r2 = encode(sample_report());
  LlrpStreamDecoder decoder;
  decoder.feed(std::span(r1).subspan(0, r1.size() / 2));
  decoder.feed(r2);
  EXPECT_THROW((void)decoder.next_report(), DecodeError);
}

TEST(LlrpStream, TolerantDecoderResyncsAfterPartialFrame) {
  // Same stream as above, tolerant path: the corrupt frame is
  // quarantined, the decoder resynchronizes on the second report's
  // header, and delivery continues.
  RoAccessReport second = sample_report();
  second.message_id = 4321;
  const auto r1 = encode(sample_report());
  const auto r2 = encode(second);
  LlrpStreamDecoder decoder;
  decoder.feed(std::span(r1).subspan(0, r1.size() / 2));
  decoder.feed(r2);
  const auto report = decoder.next_report_tolerant();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->message_id, 4321u);
  EXPECT_GE(decoder.frames_quarantined(), 1u);
  EXPECT_FALSE(decoder.next_report_tolerant().has_value());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(LlrpStream, TolerantDecoderRecoversFromEveryCutPoint) {
  // Exhaustive: whatever prefix of the first report survives, exactly
  // the second report comes out the other side. Some cut points leave a
  // misaligned head whose bogus length field claims bytes that will
  // never arrive — only the end-of-stream flush can resolve those, so
  // the receive loop alternates draining with flushing, as a server
  // does at a read timeout.
  RoAccessReport second = sample_report();
  second.message_id = 99;
  const auto r1 = encode(sample_report());
  const auto r2 = encode(second);
  for (std::size_t cut = 1; cut < r1.size(); ++cut) {
    LlrpStreamDecoder decoder;
    decoder.feed(std::span(r1).subspan(0, cut));
    decoder.feed(r2);
    std::vector<RoAccessReport> out;
    while (true) {
      while (auto report = decoder.next_report_tolerant()) {
        out.push_back(std::move(*report));
      }
      if (decoder.buffered_bytes() == 0) break;
      decoder.flush_incomplete();
    }
    ASSERT_EQ(out.size(), 1u) << "cut at " << cut;
    const std::size_t missing = r1.size() - cut;
    if (missing >= 10) {  // at least a full header's worth of bytes lost
      EXPECT_EQ(out[0].message_id, 99u) << "cut at " << cut;
    } else {
      // Fewer than a header's worth of bytes vanished: the stale length
      // field frames a chimera of r1's prefix and r2's head. When the
      // splice lands inside opaque sample payload the chimera decodes
      // cleanly — a length-framed protocol without checksums cannot
      // tell (real LLRP leans on TCP for integrity). Either the second
      // report survives or the chimera is delivered in its place;
      // silence (no report at all) is the only wrong answer.
      EXPECT_TRUE(out[0].message_id == 99u || out[0].message_id == 1234u)
          << "cut at " << cut << " got id " << out[0].message_id;
    }
  }
}

TEST(LlrpStream, TolerantDecoderSkipsInterFrameGarbage) {
  const auto r1 = encode(sample_report());
  const std::vector<std::uint8_t> garbage(23, 0xFF);  // bad version bits
  LlrpStreamDecoder decoder;
  decoder.feed(garbage);
  decoder.feed(r1);
  const auto report = decoder.next_report_tolerant();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->message_id, 1234u);
  EXPECT_GE(decoder.frames_quarantined(), 1u);
}

TEST(LlrpStream, FlushIncompleteDiscardsAndCounts) {
  const auto r1 = encode(sample_report());
  LlrpStreamDecoder decoder;
  decoder.flush_incomplete();  // empty buffer: nothing to quarantine
  EXPECT_EQ(decoder.frames_quarantined(), 0u);
  decoder.feed(std::span(r1).subspan(0, r1.size() - 3));
  EXPECT_FALSE(decoder.next_report().has_value());
  decoder.flush_incomplete();
  EXPECT_EQ(decoder.frames_quarantined(), 1u);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  // A fresh, complete frame still decodes afterwards.
  decoder.feed(r1);
  EXPECT_TRUE(decoder.next_report().has_value());
}

TEST(ByteReader, TruncationThrows) {
  const std::vector<std::uint8_t> buf{1, 2, 3};
  ByteReader r(buf);
  EXPECT_EQ(r.u16(), 0x0102);
  EXPECT_THROW((void)r.u16(), DecodeError);
  EXPECT_EQ(r.remaining(), 1u);
  EXPECT_THROW(r.skip(2), DecodeError);
}

TEST(ByteWriter, BigEndianLayoutAndPatch) {
  ByteWriter w;
  w.u32(0xA1B2C3D4);
  w.u64(0x1122334455667788ULL);
  EXPECT_EQ(w.data()[0], 0xA1);
  EXPECT_EQ(w.data()[3], 0xD4);
  EXPECT_EQ(w.data()[4], 0x11);
  EXPECT_EQ(w.data()[11], 0x88);
  w.patch_u32(0, 0xDEADBEEF);
  EXPECT_EQ(w.data()[0], 0xDE);
  EXPECT_THROW(w.patch_u32(9, 0), std::out_of_range);
  EXPECT_THROW(w.patch_u16(11, 0), std::out_of_range);
}

}  // namespace
}  // namespace dwatch::rfid
