// Tests for the reader model: phase offsets, power cycles, link budget.
#include "rfid/reader.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rf/constants.hpp"
#include "rfid/tag.hpp"

namespace dwatch::rfid {
namespace {

TEST(Reader, ValidatesConfig) {
  rf::Rng rng(1);
  ReaderConfig bad;
  bad.hub_elements = 1;
  EXPECT_THROW(Reader(bad, rng), std::invalid_argument);
  bad = ReaderConfig{};
  bad.num_rf_ports = 0;
  EXPECT_THROW(Reader(bad, rng), std::invalid_argument);
  bad = ReaderConfig{};
  bad.element_slot_us = 0.0;
  EXPECT_THROW(Reader(bad, rng), std::invalid_argument);
}

TEST(Reader, OffsetsWithinPlusMinusPi) {
  rf::Rng rng(42);
  const Reader reader(ReaderConfig{}, rng);
  ASSERT_EQ(reader.phase_offsets().size(), 8u);
  for (const double beta : reader.phase_offsets()) {
    EXPECT_GE(beta, -rf::kPi);
    EXPECT_LT(beta, rf::kPi);
  }
}

TEST(Reader, RelativeOffsetsReferenceFirstElement) {
  rf::Rng rng(42);
  const Reader reader(ReaderConfig{}, rng);
  const auto rel = reader.relative_phase_offsets();
  EXPECT_DOUBLE_EQ(rel[0], 0.0);
  for (std::size_t m = 1; m < rel.size(); ++m) {
    const double expect = rf::wrap_pi(reader.phase_offsets()[m] -
                                      reader.phase_offsets()[0]);
    EXPECT_NEAR(rel[m], expect, 1e-12);
  }
}

TEST(Reader, PowerCycleRedrawsOffsets) {
  rf::Rng rng(42);
  Reader reader(ReaderConfig{}, rng);
  const auto before = reader.phase_offsets();
  reader.power_cycle(rng);
  const auto after = reader.phase_offsets();
  bool changed = false;
  for (std::size_t m = 0; m < before.size(); ++m) {
    if (std::abs(before[m] - after[m]) > 1e-9) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(Reader, OffsetsSpreadAcrossManyReaders) {
  // Paper Fig. 3: offsets across 16 ports span nearly the whole circle.
  rf::Rng rng(7);
  double lo = rf::kPi;
  double hi = -rf::kPi;
  for (int r = 0; r < 4; ++r) {
    const Reader reader(ReaderConfig{}, rng);
    for (const double beta : reader.relative_phase_offsets()) {
      lo = std::min(lo, beta);
      hi = std::max(hi, beta);
    }
  }
  EXPECT_LT(lo, -1.0);
  EXPECT_GT(hi, 1.0);
}

TEST(Reader, ForwardPowerDecaysWithDistance) {
  rf::Rng rng(1);
  const Reader reader(ReaderConfig{}, rng);
  EXPECT_GT(reader.forward_power_dbm(1.0), reader.forward_power_dbm(2.0));
  // 6 dB per distance doubling.
  EXPECT_NEAR(reader.forward_power_dbm(1.0) - reader.forward_power_dbm(2.0),
              6.0206, 1e-3);
  EXPECT_THROW((void)reader.forward_power_dbm(0.0), std::invalid_argument);
}

TEST(Reader, ReadRangeMatchesForwardPower) {
  rf::Rng rng(1);
  const Reader reader(ReaderConfig{}, rng);
  const double range = reader.read_range_m(-18.0);
  EXPECT_NEAR(reader.forward_power_dbm(range), -18.0, 1e-9);
  // Large Q900F-style deployment: range beyond 10 m (paper Section 2.1).
  EXPECT_GT(range, 10.0);
}

TEST(Reader, HubSweepTime) {
  rf::Rng rng(1);
  ReaderConfig cfg;
  cfg.hub_elements = 8;
  cfg.element_slot_us = 200.0;
  const Reader reader(cfg, rng);
  EXPECT_DOUBLE_EQ(reader.hub_sweep_us(), 1600.0);
}

TEST(Tag, EnergizationThreshold) {
  const Tag tag = Tag::at(3, {1.0, 2.0, 1.2});
  EXPECT_TRUE(tag.energized(-17.9));
  EXPECT_TRUE(tag.energized(-18.0));
  EXPECT_FALSE(tag.energized(-18.1));
  EXPECT_EQ(tag.epc.serial(), 3u);
}

TEST(ReaderTag, SmallAntennaShortRange) {
  // ANS-900-style small antenna: low gain/power => ~3 m range.
  rf::Rng rng(1);
  ReaderConfig small;
  small.tx_power_dbm = 24.0;
  small.antenna_gain_dbi = 0.0;
  const Reader reader(small, rng);
  const double range = reader.read_range_m(-18.0);
  EXPECT_GT(range, 1.5);
  EXPECT_LT(range, 6.0);
}

}  // namespace
}  // namespace dwatch::rfid
