// Tests for the LLRP control-plane session state machine.
#include "rfid/llrp_session.hpp"

#include <gtest/gtest.h>

namespace dwatch::rfid {
namespace {

RoSpec default_rospec() {
  RoSpec r;
  r.rospec_id = 7;
  r.antenna_port = 1;
  r.report_every_n_rounds = 1;
  return r;
}

TEST(ControlCodec, RequestRoundTrip) {
  const RoSpec rospec = default_rospec();
  const auto bytes =
      encode_control_request(ControlType::kAddRospec, 42, rospec);
  const ControlRequest req = decode_control_request(bytes);
  EXPECT_EQ(req.type, ControlType::kAddRospec);
  EXPECT_EQ(req.message_id, 42u);
  EXPECT_EQ(req.rospec.rospec_id, 7u);
  EXPECT_EQ(req.rospec.antenna_port, 1);
}

TEST(ControlCodec, ResponseRoundTrip) {
  const auto bytes = encode_control_response(
      ControlType::kStartRospecResponse, 9, LlrpStatus::kWrongState);
  const ControlResponse resp = decode_control_response(bytes);
  EXPECT_EQ(resp.type, ControlType::kStartRospecResponse);
  EXPECT_EQ(resp.message_id, 9u);
  EXPECT_EQ(resp.status, LlrpStatus::kWrongState);
}

TEST(ControlCodec, ResponseIsNotARequest) {
  const auto bytes = encode_control_response(
      ControlType::kAddRospecResponse, 1, LlrpStatus::kSuccess);
  EXPECT_THROW((void)decode_control_request(bytes), DecodeError);
}

TEST(ControlCodec, CapabilitiesRoundTrip) {
  ReaderCapabilities caps;
  caps.max_antennas = 16;
  caps.model_code = 0x0999;
  const auto bytes = encode_capabilities_response(3, caps);
  const ReaderCapabilities decoded = decode_capabilities_response(bytes);
  EXPECT_EQ(decoded.max_antennas, 16);
  EXPECT_EQ(decoded.model_code, 0x0999);
}

TEST(ReaderSession, HappyPathHandshake) {
  ReaderSession session;
  EXPECT_EQ(session.state(), ReaderSession::State::kIdle);
  EXPECT_TRUE(perform_handshake(session, default_rospec()));
  EXPECT_EQ(session.state(), ReaderSession::State::kRunning);
  ASSERT_TRUE(session.rospec().has_value());
  EXPECT_EQ(session.rospec()->rospec_id, 7u);
}

TEST(ReaderSession, PublishOnlyWhileRunning) {
  ReaderSession session;
  RoAccessReport report;
  report.message_id = 1;
  EXPECT_THROW((void)session.publish(report), std::logic_error);
  ASSERT_TRUE(perform_handshake(session, default_rospec()));
  const auto bytes = session.publish(report);
  EXPECT_EQ(decode_ro_access_report(bytes).message_id, 1u);
}

TEST(ReaderSession, OutOfOrderStartRejected) {
  ReaderSession session;
  const auto resp = session.handle(
      encode_control_request(ControlType::kStartRospec, 1, default_rospec()));
  EXPECT_EQ(decode_control_response(resp).status, LlrpStatus::kWrongState);
  EXPECT_EQ(session.state(), ReaderSession::State::kIdle);
}

TEST(ReaderSession, EnableRequiresMatchingRospecId) {
  ReaderSession session;
  (void)session.handle(
      encode_control_request(ControlType::kAddRospec, 1, default_rospec()));
  RoSpec wrong = default_rospec();
  wrong.rospec_id = 99;
  const auto resp = session.handle(
      encode_control_request(ControlType::kEnableRospec, 2, wrong));
  EXPECT_EQ(decode_control_response(resp).status, LlrpStatus::kWrongState);
}

TEST(ReaderSession, InvalidRospecRejected) {
  ReaderSession session;
  RoSpec bad = default_rospec();
  bad.antenna_port = 99;  // beyond capabilities
  const auto resp = session.handle(
      encode_control_request(ControlType::kAddRospec, 1, bad));
  EXPECT_EQ(decode_control_response(resp).status,
            LlrpStatus::kInvalidRospec);
  bad = default_rospec();
  bad.rospec_id = 0;
  const auto resp2 = session.handle(
      encode_control_request(ControlType::kAddRospec, 2, bad));
  EXPECT_EQ(decode_control_response(resp2).status,
            LlrpStatus::kInvalidRospec);
}

TEST(ReaderSession, StopAndDeleteCycle) {
  ReaderSession session;
  ASSERT_TRUE(perform_handshake(session, default_rospec()));
  // Delete while running: refused.
  auto resp = session.handle(
      encode_control_request(ControlType::kDeleteRospec, 10,
                             default_rospec()));
  EXPECT_EQ(decode_control_response(resp).status, LlrpStatus::kWrongState);
  // Stop, then delete: allowed; back to idle.
  resp = session.handle(encode_control_request(ControlType::kStopRospec, 11,
                                               default_rospec()));
  EXPECT_EQ(decode_control_response(resp).status, LlrpStatus::kSuccess);
  resp = session.handle(encode_control_request(ControlType::kDeleteRospec,
                                               12, default_rospec()));
  EXPECT_EQ(decode_control_response(resp).status, LlrpStatus::kSuccess);
  EXPECT_EQ(session.state(), ReaderSession::State::kIdle);
  EXPECT_FALSE(session.rospec().has_value());
}

TEST(ReaderSession, CloseIsTerminal) {
  ReaderSession session;
  auto resp = session.handle(
      encode_control_request(ControlType::kCloseConnection, 1));
  EXPECT_EQ(decode_control_response(resp).status, LlrpStatus::kSuccess);
  EXPECT_EQ(session.state(), ReaderSession::State::kClosed);
  resp = session.handle(
      encode_control_request(ControlType::kAddRospec, 2, default_rospec()));
  EXPECT_EQ(decode_control_response(resp).status, LlrpStatus::kWrongState);
  EXPECT_THROW((void)session.keepalive(), std::logic_error);
}

TEST(ReaderSession, KeepalivesIncrementIds) {
  ReaderSession session;
  const auto k1 = session.keepalive();
  const auto k2 = session.keepalive();
  EXPECT_NE(decode_keepalive(k1).message_id,
            decode_keepalive(k2).message_id);
}

class LlrpStatusCodec : public ::testing::TestWithParam<LlrpStatus> {};

TEST_P(LlrpStatusCodec, EveryErrorStatusRoundTrips) {
  // Every non-success status must survive the wire unchanged for every
  // response type — a client distinguishes "retry" (kWrongState after a
  // lost response) from "fix your config" (kInvalidRospec) on exactly
  // this field.
  const LlrpStatus status = GetParam();
  for (const ControlType type :
       {ControlType::kGetReaderCapabilitiesResponse,
        ControlType::kAddRospecResponse, ControlType::kEnableRospecResponse,
        ControlType::kStartRospecResponse, ControlType::kStopRospecResponse,
        ControlType::kDeleteRospecResponse,
        ControlType::kCloseConnectionResponse}) {
    const auto bytes = encode_control_response(type, 77, status);
    const ControlResponse resp = decode_control_response(bytes);
    EXPECT_EQ(resp.type, type);
    EXPECT_EQ(resp.message_id, 77u);
    EXPECT_EQ(resp.status, status);
  }
}

INSTANTIATE_TEST_SUITE_P(NonSuccess, LlrpStatusCodec,
                         ::testing::Values(LlrpStatus::kInvalidRospec,
                                           LlrpStatus::kWrongState,
                                           LlrpStatus::kUnsupported),
                         [](const ::testing::TestParamInfo<LlrpStatus>& i) {
                           switch (i.param) {
                             case LlrpStatus::kInvalidRospec:
                               return std::string("InvalidRospec");
                             case LlrpStatus::kWrongState:
                               return std::string("WrongState");
                             default:
                               return std::string("Unsupported");
                           }
                         });

TEST(ReaderSession, EveryOutOfOrderRequestGetsWrongState) {
  // From idle, every state-dependent request except ADD must refuse
  // with kWrongState and leave the session idle.
  for (const ControlType type :
       {ControlType::kEnableRospec, ControlType::kStartRospec,
        ControlType::kStopRospec, ControlType::kDeleteRospec}) {
    ReaderSession session;
    const auto resp = session.handle(
        encode_control_request(type, 1, default_rospec()));
    EXPECT_EQ(decode_control_response(resp).status, LlrpStatus::kWrongState)
        << static_cast<int>(type);
    EXPECT_EQ(session.state(), ReaderSession::State::kIdle);
  }
}

TEST(ReaderSession, DoubleAddIsWrongStateNotOverwrite) {
  // The lost-response trap from the reader's side: a retried ADD after
  // the first one already applied gets kWrongState, and the original
  // ROSpec stays installed.
  ReaderSession session;
  auto resp = session.handle(
      encode_control_request(ControlType::kAddRospec, 1, default_rospec()));
  EXPECT_EQ(decode_control_response(resp).status, LlrpStatus::kSuccess);
  RoSpec second = default_rospec();
  second.rospec_id = 42;
  resp = session.handle(
      encode_control_request(ControlType::kAddRospec, 2, second));
  EXPECT_EQ(decode_control_response(resp).status, LlrpStatus::kWrongState);
  ASSERT_TRUE(session.rospec().has_value());
  EXPECT_EQ(session.rospec()->rospec_id, 7u);
}

TEST(ReaderSession, ErrorResponsesEchoTheRequestMessageId) {
  ReaderSession session;
  const auto resp = session.handle(encode_control_request(
      ControlType::kStartRospec, 31337, default_rospec()));
  const ControlResponse decoded = decode_control_response(resp);
  EXPECT_EQ(decoded.message_id, 31337u);
  EXPECT_EQ(decoded.type, ControlType::kStartRospecResponse);
  EXPECT_EQ(decoded.status, LlrpStatus::kWrongState);
}

TEST(ReaderSession, ResetReopensAClosedOrRunningSession) {
  // reset() models the client's reconnect (new TCP dial): any state —
  // including closed — returns to a clean idle session that can
  // handshake again.
  ReaderSession session;
  ASSERT_TRUE(perform_handshake(session, default_rospec()));
  session.reset();
  EXPECT_EQ(session.state(), ReaderSession::State::kIdle);
  EXPECT_FALSE(session.rospec().has_value());
  ASSERT_TRUE(perform_handshake(session, default_rospec()));

  (void)session.handle(
      encode_control_request(ControlType::kCloseConnection, 99));
  EXPECT_EQ(session.state(), ReaderSession::State::kClosed);
  session.reset();
  EXPECT_TRUE(perform_handshake(session, default_rospec()));
}

TEST(ReaderSession, MalformedControlFrameThrowsNotCorrupts) {
  ReaderSession session;
  auto bytes =
      encode_control_request(ControlType::kAddRospec, 1, default_rospec());
  bytes.pop_back();  // truncate: length field no longer matches
  EXPECT_THROW((void)session.handle(bytes), DecodeError);
  // The session survives and still accepts a well-formed handshake.
  EXPECT_EQ(session.state(), ReaderSession::State::kIdle);
  EXPECT_TRUE(perform_handshake(session, default_rospec()));
}

TEST(ReaderSession, HandshakeThenStreamDecodes) {
  // Full loop: handshake, publish a report, client-side stream decode.
  ReaderSession session;
  ASSERT_TRUE(perform_handshake(session, default_rospec()));
  RoAccessReport report;
  report.message_id = 5;
  TagObservation obs;
  obs.epc = Epc96::for_tag_index(3);
  obs.samples.push_back(PhaseSample{1, 0, 100, -2000});
  report.observations.push_back(obs);

  LlrpStreamDecoder decoder;
  decoder.feed(session.keepalive());
  decoder.feed(session.publish(report));
  const auto decoded = decoder.next_report();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->observations[0].epc, Epc96::for_tag_index(3));
  EXPECT_EQ(decoder.keepalives_seen(), 1u);
}

}  // namespace
}  // namespace dwatch::rfid
