// Tests for EPC-96 identifiers and air-frame encoding.
#include "rfid/epc.hpp"

#include "rfid/crc16.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

namespace dwatch::rfid {
namespace {

TEST(Epc96, HexRoundTrip) {
  const Epc96 epc = Epc96::from_hex("3014d057a7c4000000000007");
  EXPECT_EQ(epc.to_hex(), "3014d057a7c4000000000007");
  EXPECT_EQ(epc.serial(), 7u);
}

TEST(Epc96, HexIsCaseInsensitive) {
  EXPECT_EQ(Epc96::from_hex("3014D057A7C400000000002A").serial(), 42u);
}

TEST(Epc96, FromHexValidates) {
  EXPECT_THROW((void)Epc96::from_hex("1234"), std::invalid_argument);
  EXPECT_THROW((void)Epc96::from_hex("zz14d057a7c4000000000007"),
               std::invalid_argument);
}

TEST(Epc96, ForTagIndexDistinctAndOrdered) {
  std::set<Epc96> seen;
  for (std::uint32_t i = 0; i < 100; ++i) {
    const Epc96 epc = Epc96::for_tag_index(i);
    EXPECT_EQ(epc.serial(), i);
    EXPECT_TRUE(seen.insert(epc).second) << "duplicate EPC for " << i;
  }
}

TEST(Epc96, ComparisonOperators) {
  const Epc96 a = Epc96::for_tag_index(1);
  const Epc96 b = Epc96::for_tag_index(2);
  EXPECT_LT(a, b);
  EXPECT_EQ(a, Epc96::for_tag_index(1));
  EXPECT_NE(a, b);
}

TEST(Epc96, StreamOutputIsHex) {
  std::ostringstream os;
  os << Epc96::for_tag_index(0xAB);
  EXPECT_EQ(os.str(), "3014d057a7c40000000000ab");
  EXPECT_EQ(os.str().size(), 24u);
}

TEST(EpcReply, RoundTrip) {
  const Epc96 epc = Epc96::for_tag_index(99);
  const auto frame = make_epc_reply(epc);
  EXPECT_EQ(frame.size(), 16u);  // PC(2) + EPC(12) + CRC(2)
  EXPECT_EQ(parse_epc_reply(frame), epc);
}

TEST(EpcReply, RejectsBadLength) {
  auto frame = make_epc_reply(Epc96::for_tag_index(1));
  frame.pop_back();
  EXPECT_THROW((void)parse_epc_reply(frame), std::invalid_argument);
}

TEST(EpcReply, RejectsCorruptCrc) {
  auto frame = make_epc_reply(Epc96::for_tag_index(1));
  frame[5] ^= 0x01;
  EXPECT_THROW((void)parse_epc_reply(frame), std::invalid_argument);
}

TEST(EpcReply, RejectsWrongPcWord) {
  auto frame = make_epc_reply(Epc96::for_tag_index(1));
  // Change PC word and fix up the CRC so only the PC check fires.
  frame[0] = 0x00;
  std::vector<std::uint8_t> payload(frame.begin(), frame.end() - 2);
  const std::uint16_t crc = crc16_gen2(payload);
  frame[14] = static_cast<std::uint8_t>(crc >> 8);
  frame[15] = static_cast<std::uint8_t>(crc);
  EXPECT_THROW((void)parse_epc_reply(frame), std::invalid_argument);
}

}  // namespace
}  // namespace dwatch::rfid
