// Tests for CRC-16/Gen2.
#include "rfid/crc16.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dwatch::rfid {
namespace {

TEST(Crc16, KnownVector) {
  // CRC-16/GENIBUS ("123456789") = 0xD64E; Gen2 uses the same algorithm.
  const std::vector<std::uint8_t> data{'1', '2', '3', '4', '5',
                                       '6', '7', '8', '9'};
  EXPECT_EQ(crc16_gen2(data), 0xD64E);
}

TEST(Crc16, EmptyInput) {
  // Preset 0xFFFF, complemented: ~0xFFFF = 0x0000.
  EXPECT_EQ(crc16_gen2({}), 0x0000);
}

TEST(Crc16, AppendedCrcVerifies) {
  std::vector<std::uint8_t> data{0x30, 0x00, 0xDE, 0xAD, 0xBE, 0xEF};
  const std::uint16_t crc = crc16_gen2(data);
  data.push_back(static_cast<std::uint8_t>(crc >> 8));
  data.push_back(static_cast<std::uint8_t>(crc));
  EXPECT_TRUE(crc16_gen2_check(data));
}

TEST(Crc16, TooShortFails) {
  const std::vector<std::uint8_t> one{0x42};
  EXPECT_FALSE(crc16_gen2_check(one));
  EXPECT_FALSE(crc16_gen2_check({}));
}

/// Every single-bit corruption must be detected.
class CrcCorruptionTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrcCorruptionTest, SingleBitFlipDetected) {
  std::vector<std::uint8_t> data{0x11, 0x22, 0x33, 0x44, 0x55, 0x66};
  const std::uint16_t crc = crc16_gen2(data);
  data.push_back(static_cast<std::uint8_t>(crc >> 8));
  data.push_back(static_cast<std::uint8_t>(crc));
  const std::size_t bit = GetParam();
  data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  EXPECT_FALSE(crc16_gen2_check(data));
}

INSTANTIATE_TEST_SUITE_P(AllBits, CrcCorruptionTest,
                         ::testing::Range<std::size_t>(0, 64));

TEST(Crc16, DifferentInputsDifferentCrc) {
  const std::vector<std::uint8_t> a{1, 2, 3};
  const std::vector<std::uint8_t> b{1, 2, 4};
  EXPECT_NE(crc16_gen2(a), crc16_gen2(b));
}

}  // namespace
}  // namespace dwatch::rfid
