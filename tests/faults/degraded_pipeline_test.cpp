// Tests for the pipeline's graceful-degradation features: K-of-N array
// localization, staleness rejection, low-snapshot kernel widening, and
// the per-fix ConfidenceReport.
#include <gtest/gtest.h>

#include <complex>
#include <cstdint>
#include <vector>

#include "core/localizer.hpp"
#include "core/pipeline.hpp"
#include "rf/constants.hpp"
#include "rf/noise.hpp"
#include "rf/snapshot.hpp"

namespace dwatch::core {
namespace {

std::vector<rf::UniformLinearArray> room_arrays() {
  return {
      rf::UniformLinearArray({3.5, 0.15, 1.25}, {1, 0}, 8),
      rf::UniformLinearArray({3.5, 9.85, 1.25}, {1, 0}, 8),
      rf::UniformLinearArray({0.15, 5.0, 1.25}, {0, 1}, 8),
      rf::UniformLinearArray({6.85, 5.0, 1.25}, {0, 1}, 8),
  };
}

SearchBounds room_bounds() { return {{0.0, 0.0}, {7.0, 10.0}}; }

PathDrop drop_at(double theta, double power = 1.0, std::uint32_t source = 0) {
  PathDrop d;
  d.theta = theta;
  d.drop_fraction = 0.9;
  d.baseline_power = power;
  d.online_power = 0.05 * power;
  d.source_id = source;
  return d;
}

std::vector<AngularEvidence> evidence_for(
    const std::vector<rf::UniformLinearArray>& arrays, rf::Vec2 target,
    std::size_t num_arrays = 4) {
  std::vector<AngularEvidence> ev(arrays.size());
  for (std::size_t i = 0; i < num_arrays && i < arrays.size(); ++i) {
    ev[i].drops.push_back(
        drop_at(arrays[i].arrival_angle_planar(target), 1.0,
                static_cast<std::uint32_t>(100 + i)));
  }
  return ev;
}

/// Synthesize snapshots for one (array, tag-position) link: one direct
/// path, deterministic for a fixed rng seed.
linalg::CMatrix link_snapshots(const rf::UniformLinearArray& array,
                               rf::Vec3 tag_pos, double amplitude,
                               std::size_t num_snapshots, std::uint64_t seed) {
  rf::PropagationPath path;
  path.aoa = array.arrival_angle_planar({tag_pos.x, tag_pos.y});
  path.gain = std::polar(amplitude, 0.3);
  rf::SnapshotOptions snap;
  snap.num_snapshots = num_snapshots;
  snap.noise_sigma = 1e-4;
  rf::Rng rng(seed);
  const std::vector<rf::PropagationPath> paths{path};
  const std::vector<double> path_scale{1.0};
  return rf::synthesize_snapshots(array, paths, path_scale, snap, rng);
}

// ---------------------------------------------------------------------------
// K-of-N at the localizer layer.

TEST(KOfN, ExcludedArrayRelaxesMinArrays) {
  // min_arrays = 2, but 3 of 4 arrays are excluded: the single survivor
  // must still produce a fix (K-of-N), where the same evidence with
  // merely-silent arrays would abstain.
  const auto arrays = room_arrays();
  const Localizer loc(arrays, room_bounds());
  const rf::Vec2 target{3.0, 4.0};

  auto silent = evidence_for(arrays, target, 1);
  EXPECT_FALSE(loc.localize(silent).valid);  // 1 of 4, nothing excluded

  auto excluded = evidence_for(arrays, target, 1);
  excluded[1].excluded = excluded[2].excluded = excluded[3].excluded = true;
  const LocationEstimate est = loc.localize(excluded);
  ASSERT_TRUE(est.valid);
  EXPECT_NEAR(rf::distance(est.position, target), 0.0, 0.5);
}

TEST(KOfN, ExcludedEvidenceContributesNothing) {
  // A poisoned array (wrong-angle evidence) flagged excluded must not
  // pull the fix: result matches the 3-healthy-array localization.
  const auto arrays = room_arrays();
  const Localizer loc(arrays, room_bounds());
  const rf::Vec2 target{2.5, 6.0};

  auto three = evidence_for(arrays, target, 4);
  three[3].drops.clear();

  auto poisoned = evidence_for(arrays, target, 4);
  poisoned[3].drops[0] =
      drop_at(arrays[3].arrival_angle_planar({6.0, 1.0}), 2.0, 103);
  poisoned[3].excluded = true;

  const LocationEstimate clean = loc.localize(three);
  const LocationEstimate deg = loc.localize(poisoned);
  ASSERT_TRUE(clean.valid);
  ASSERT_TRUE(deg.valid);
  EXPECT_DOUBLE_EQ(deg.position.x, clean.position.x);
  EXPECT_DOUBLE_EQ(deg.position.y, clean.position.y);
  EXPECT_DOUBLE_EQ(deg.likelihood, clean.likelihood);
}

TEST(KOfN, AllExcludedAbstains) {
  const auto arrays = room_arrays();
  const Localizer loc(arrays, room_bounds());
  auto ev = evidence_for(arrays, {3.0, 4.0}, 4);
  for (auto& e : ev) e.excluded = true;
  EXPECT_FALSE(loc.localize(ev).valid);
}

TEST(KOfN, SigmaScaleWidensTheKernel) {
  // A widened drop spreads the same evidence over more angle: lower at
  // the exact peak, higher off-peak.
  const auto arrays = room_arrays();
  const Localizer loc(arrays, room_bounds());
  AngularEvidence sharp;
  sharp.drops.push_back(drop_at(1.0));
  AngularEvidence wide = sharp;
  wide.drops[0].sigma_scale = 2.0;
  const double norm = 0.95;
  EXPECT_GT(loc.evidence_at(sharp, 1.0, norm),
            0.0);  // sanity: peak responds
  EXPECT_DOUBLE_EQ(loc.evidence_at(sharp, 1.0, norm),
                   loc.evidence_at(wide, 1.0, norm));  // same center value
  const double off = 1.0 + 3.0 * loc.options().kernel_sigma;
  EXPECT_GT(loc.evidence_at(wide, off, norm),
            loc.evidence_at(sharp, off, norm));
}

// ---------------------------------------------------------------------------
// Pipeline-level degraded modes.

PipelineOptions tight_options() {
  PipelineOptions opts;
  opts.change.min_drop_fraction = 0.25;
  return opts;
}

TEST(DegradedPipeline, ArrayHealthExcludesAndReports) {
  DWatchPipeline pipe(room_arrays(), room_bounds(), tight_options());
  pipe.set_array_health(2, false);
  EXPECT_FALSE(pipe.array_healthy(2));
  EXPECT_TRUE(pipe.array_healthy(0));
  const ConfidenceReport r = pipe.confidence_report();
  EXPECT_EQ(r.arrays_total, 4u);
  EXPECT_EQ(r.arrays_excluded, 1u);
  EXPECT_TRUE(r.degraded());

  // Health persists across epochs until restored.
  pipe.begin_epoch();
  EXPECT_FALSE(pipe.array_healthy(2));
  pipe.set_array_health(2, true);
  EXPECT_FALSE(pipe.confidence_report().degraded());
}

TEST(DegradedPipeline, StaleObservationsRejectedByWatermark) {
  DWatchPipeline pipe(room_arrays(), room_bounds(), tight_options());
  const auto arrays = room_arrays();
  const rf::Vec3 tag_pos{3.0, 4.0, 1.2};
  pipe.add_baseline(0, rfid::Epc96::for_tag_index(1),
                    link_snapshots(arrays[0], tag_pos, 1.0, 12, 42));

  // Wire observation timestamped BEFORE the epoch watermark: rejected.
  // Build a TagObservation via quantization of fresh snapshots.
  const linalg::CMatrix x = link_snapshots(arrays[0], tag_pos, 0.4, 12, 43);
  rfid::TagObservation obs;
  obs.epc = rfid::Epc96::for_tag_index(1);
  obs.first_seen_us = 500;  // stale
  for (std::size_t n = 0; n < x.cols(); ++n) {
    for (std::size_t m = 0; m < x.rows(); ++m) {
      const auto [pq, rq] = rfid::quantize_sample(x(m, n));
      obs.samples.push_back(rfid::PhaseSample{
          static_cast<std::uint16_t>(m + 1), static_cast<std::uint32_t>(n),
          pq, rq});
    }
  }

  pipe.begin_epoch(/*watermark_us=*/1000);
  EXPECT_EQ(pipe.observe(0, obs), 0u);
  EXPECT_EQ(pipe.stats().stale_observations, 1u);
  EXPECT_TRUE(pipe.evidence()[0].drops.empty());
  const ConfidenceReport r = pipe.confidence_report();
  EXPECT_EQ(r.stale_observations, 1u);
  EXPECT_EQ(r.observations, 0u);
  EXPECT_TRUE(r.degraded());

  // The same observation with a fresh timestamp is processed.
  obs.first_seen_us = 1500;
  (void)pipe.observe(0, obs);
  EXPECT_EQ(pipe.confidence_report().observations, 1u);

  // begin_epoch(0) no longer disables the gate: the previous epoch's
  // max accepted timestamp (1500) carries forward as the default
  // watermark, so a replay of a pre-epoch report is still rejected.
  pipe.begin_epoch(0);
  obs.first_seen_us = 1;
  (void)pipe.observe(0, obs);
  EXPECT_EQ(pipe.confidence_report().stale_observations, 1u);
  // At or past the carried watermark is fresh again.
  obs.first_seen_us = 1500;
  (void)pipe.observe(0, obs);
  EXPECT_EQ(pipe.confidence_report().observations, 1u);
}

TEST(DegradedPipeline, DefaultWatermarkCarryRespectsOptOut) {
  // reject_stale = false keeps BOTH the gate and the carry off: a
  // pipeline explicitly opted out never quarantines, whatever history.
  PipelineOptions opts = tight_options();
  opts.degraded.reject_stale = false;
  DWatchPipeline pipe(room_arrays(), room_bounds(), opts);
  const auto arrays = room_arrays();
  const rf::Vec3 tag_pos{3.0, 4.0, 1.2};
  const auto epc = rfid::Epc96::for_tag_index(1);
  pipe.add_baseline(0, epc, link_snapshots(arrays[0], tag_pos, 1.0, 12, 42));

  const linalg::CMatrix x = link_snapshots(arrays[0], tag_pos, 0.4, 12, 43);
  rfid::TagObservation obs;
  obs.epc = epc;
  for (std::size_t n = 0; n < x.cols(); ++n) {
    for (std::size_t m = 0; m < x.rows(); ++m) {
      const auto [pq, rq] = rfid::quantize_sample(x(m, n));
      obs.samples.push_back(rfid::PhaseSample{
          static_cast<std::uint16_t>(m + 1), static_cast<std::uint32_t>(n),
          pq, rq});
    }
  }
  pipe.begin_epoch(0);
  obs.first_seen_us = 1500;
  (void)pipe.observe(0, obs);
  pipe.begin_epoch(0);
  obs.first_seen_us = 1;  // would be stale under the carried watermark
  (void)pipe.observe(0, obs);
  EXPECT_EQ(pipe.stats().stale_observations, 0u);
  EXPECT_EQ(pipe.confidence_report().observations, 1u);
}

TEST(DegradedPipeline, LowSnapshotObservationsWidenTheKernel) {
  PipelineOptions opts = tight_options();
  opts.degraded.min_snapshots = 6;
  opts.degraded.sigma_widen = 2.0;
  DWatchPipeline pipe(room_arrays(), room_bounds(), opts);
  const auto arrays = room_arrays();
  const rf::Vec3 tag_pos{3.0, 4.0, 1.2};
  const auto epc = rfid::Epc96::for_tag_index(1);
  pipe.add_baseline(0, epc, link_snapshots(arrays[0], tag_pos, 1.0, 12, 42));

  // Starved epoch: 3 snapshot columns (below min 6).
  pipe.begin_epoch();
  (void)pipe.observe(0, epc, link_snapshots(arrays[0], tag_pos, 0.3, 3, 43));
  EXPECT_EQ(pipe.stats().low_snapshot_observations, 1u);
  const ConfidenceReport starved = pipe.confidence_report();
  EXPECT_EQ(starved.low_snapshot_observations, 1u);
  EXPECT_TRUE(starved.degraded());
  ASSERT_FALSE(pipe.evidence()[0].drops.empty());
  for (const PathDrop& d : pipe.evidence()[0].drops) {
    EXPECT_DOUBLE_EQ(d.sigma_scale, 2.0);
  }

  // Healthy epoch: full snapshot count, scale stays exactly 1.
  pipe.begin_epoch();
  (void)pipe.observe(0, epc, link_snapshots(arrays[0], tag_pos, 0.3, 12, 44));
  EXPECT_EQ(pipe.confidence_report().low_snapshot_observations, 0u);
  for (const PathDrop& d : pipe.evidence()[0].drops) {
    EXPECT_DOUBLE_EQ(d.sigma_scale, 1.0);
  }
}

TEST(DegradedPipeline, TransportNotesFlowIntoTheReport) {
  DWatchPipeline pipe(room_arrays(), room_bounds(), tight_options());
  pipe.begin_epoch();
  pipe.note_transport(/*retries=*/3, /*timeouts=*/2);
  pipe.note_transport(1, 0);
  pipe.note_reports_dropped(4);
  const ConfidenceReport r = pipe.confidence_report();
  EXPECT_EQ(r.transport_retries, 4u);
  EXPECT_EQ(r.transport_timeouts, 2u);
  EXPECT_EQ(r.reports_dropped, 4u);
  EXPECT_TRUE(r.degraded());
  // begin_epoch clears the per-epoch transport counters.
  pipe.begin_epoch();
  EXPECT_FALSE(pipe.confidence_report().degraded());
}

TEST(DegradedPipeline, CleanRunReportsNoDegradation) {
  DWatchPipeline pipe(room_arrays(), room_bounds(), tight_options());
  const auto arrays = room_arrays();
  const rf::Vec3 tag_pos{3.0, 4.0, 1.2};
  const auto epc = rfid::Epc96::for_tag_index(1);
  pipe.add_baseline(0, epc, link_snapshots(arrays[0], tag_pos, 1.0, 12, 42));
  pipe.begin_epoch();
  (void)pipe.observe(0, epc, link_snapshots(arrays[0], tag_pos, 0.3, 12, 43));
  const ConfidenceReport r = pipe.confidence_report();
  EXPECT_EQ(r.observations, 1u);
  EXPECT_FALSE(r.degraded());
}

TEST(DegradedPipeline, LocalizeWithConfidenceMatchesLocalize) {
  DWatchPipeline pipe(room_arrays(), room_bounds(), tight_options());
  const auto arrays = room_arrays();
  const rf::Vec3 tag_pos{3.0, 4.0, 1.2};
  const auto epc = rfid::Epc96::for_tag_index(1);
  for (std::size_t a = 0; a < arrays.size(); ++a) {
    pipe.add_baseline(a, epc,
                      link_snapshots(arrays[a], tag_pos, 1.0, 12, 42 + a));
  }
  pipe.begin_epoch();
  for (std::size_t a = 0; a < arrays.size(); ++a) {
    (void)pipe.observe(a, epc,
                       link_snapshots(arrays[a], tag_pos, 0.25, 12, 92 + a));
  }
  const LocationEstimate direct = pipe.localize();
  const ConfidentEstimate with = pipe.localize_with_confidence();
  EXPECT_DOUBLE_EQ(with.estimate.position.x, direct.position.x);
  EXPECT_DOUBLE_EQ(with.estimate.position.y, direct.position.y);
  EXPECT_EQ(with.estimate.valid, direct.valid);
  EXPECT_EQ(with.confidence.observations, 4u);
  EXPECT_EQ(with.confidence, pipe.confidence_report());

  const ConfidentEstimate be = pipe.localize_with_confidence(true);
  const LocationEstimate be_direct = pipe.localize_best_effort();
  EXPECT_DOUBLE_EQ(be.estimate.position.x, be_direct.position.x);
}

TEST(DegradedPipeline, ExcludedArraySurvivesGhostFiltering) {
  // filtered_evidence() must carry the exclusion flag through, or a
  // quarantined array would silently rejoin the likelihood product.
  PipelineOptions opts = tight_options();
  opts.ghost_filtering = true;
  DWatchPipeline pipe(room_arrays(), room_bounds(), opts);
  pipe.set_array_health(1, false);
  const auto filtered = pipe.filtered_evidence();
  ASSERT_EQ(filtered.size(), 4u);
  EXPECT_TRUE(filtered[1].excluded);
  EXPECT_FALSE(filtered[0].excluded);
}

}  // namespace
}  // namespace dwatch::core
