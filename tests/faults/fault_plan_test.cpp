// Tests for the deterministic fault schedule: purity, order
// independence, rate calibration, and seed sensitivity.
#include "faults/fault_plan.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace dwatch::faults {
namespace {

FaultSite site(std::uint64_t epoch, std::uint64_t array = 0,
               std::uint64_t tag = 0, std::uint64_t extra = 0) {
  return FaultSite{epoch, array, tag, extra};
}

TEST(FaultRates, UniformSetsEveryTransportKind) {
  const FaultRates r = FaultRates::uniform(0.25);
  for (std::size_t k = 0; k < kNumTransportFaultKinds; ++k) {
    EXPECT_DOUBLE_EQ(r.rate(static_cast<FaultKind>(k)), 0.25);
  }
  // State faults are deliberately NOT swept by uniform():
  // slow_phase_drift is a rad/epoch rate, not a probability, so
  // including it would change its meaning mid-sweep. They default to 0.
  for (std::size_t k = kNumTransportFaultKinds; k < kNumFaultKinds; ++k) {
    EXPECT_DOUBLE_EQ(r.rate(static_cast<FaultKind>(k)), 0.0);
  }
}

TEST(FaultRates, OnlyIsolatesOneKind) {
  const FaultRates r = FaultRates::only(FaultKind::kPhaseJump, 0.5);
  for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    EXPECT_DOUBLE_EQ(r.rate(kind), kind == FaultKind::kPhaseJump ? 0.5 : 0.0);
  }
}

TEST(FaultPlan, ZeroRateNeverFires) {
  const FaultPlan plan(12345, FaultRates{});
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_FALSE(plan.fires(FaultKind::kFrameTimeout, site(i, i % 4)));
  }
}

TEST(FaultPlan, UnitRateAlwaysFires) {
  const FaultPlan plan(12345, FaultRates::uniform(1.0));
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(plan.fires(FaultKind::kObservationDrop, site(i, i % 4, i)));
  }
}

TEST(FaultPlan, DecisionsArePure) {
  const FaultPlan plan(777, FaultRates::uniform(0.5));
  const FaultSite s = site(3, 1, 9, 2);
  const bool first = plan.fires(FaultKind::kElementDeath, s);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(plan.fires(FaultKind::kElementDeath, s), first);
  }
}

TEST(FaultPlan, OrderIndependent) {
  // The same set of queries, issued forward and backward, answers
  // identically — the property the bit-identical stress assertion
  // rests on.
  const FaultPlan a(42, FaultRates::uniform(0.3));
  const FaultPlan b(42, FaultRates::uniform(0.3));
  std::vector<bool> forward;
  for (std::uint64_t i = 0; i < 500; ++i) {
    forward.push_back(a.fires(FaultKind::kStaleReport, site(i, i % 3, i * 7)));
  }
  for (std::uint64_t i = 500; i-- > 0;) {
    EXPECT_EQ(b.fires(FaultKind::kStaleReport, site(i, i % 3, i * 7)),
              forward[i]);
  }
}

TEST(FaultPlan, EmpiricalRateTracksNominal) {
  const double rate = 0.1;
  const FaultPlan plan(999, FaultRates::uniform(rate));
  std::size_t hits = 0;
  const std::size_t n = 20000;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (plan.fires(FaultKind::kFrameTruncation, site(i / 100, i % 4, 0, i))) {
      ++hits;
    }
  }
  const double empirical = static_cast<double>(hits) / n;
  EXPECT_NEAR(empirical, rate, 0.02);
}

TEST(FaultPlan, KindsAreDecorrelated) {
  // At the SAME site, different kinds must decide independently —
  // otherwise a truncated frame would always also time out.
  const FaultPlan plan(31337, FaultRates::uniform(0.5));
  std::size_t agree = 0;
  const std::size_t n = 4000;
  for (std::uint64_t i = 0; i < n; ++i) {
    const FaultSite s = site(i, i % 4, i % 21);
    if (plan.fires(FaultKind::kFrameTimeout, s) ==
        plan.fires(FaultKind::kDuplicateReport, s)) {
      ++agree;
    }
  }
  // Independent fair coins agree ~50% of the time.
  EXPECT_NEAR(static_cast<double>(agree) / n, 0.5, 0.05);
}

TEST(FaultPlan, SeedsChangeTheSchedule) {
  const FaultPlan a(1, FaultRates::uniform(0.5));
  const FaultPlan b(2, FaultRates::uniform(0.5));
  std::size_t differ = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const FaultSite s = site(i, i % 4);
    if (a.fires(FaultKind::kPhaseJump, s) != b.fires(FaultKind::kPhaseJump, s))
      ++differ;
  }
  EXPECT_GT(differ, 300u);
}

TEST(FaultPlan, MagnitudeIsUnitIntervalAndPure) {
  const FaultPlan plan(5, FaultRates::uniform(1.0));
  for (std::uint64_t i = 0; i < 500; ++i) {
    const FaultSite s = site(i, 0, i);
    const double m = plan.magnitude(FaultKind::kPhaseJump, s);
    EXPECT_GE(m, 0.0);
    EXPECT_LT(m, 1.0);
    EXPECT_DOUBLE_EQ(plan.magnitude(FaultKind::kPhaseJump, s), m);
  }
}

TEST(FaultPlan, PickStaysInRange) {
  const FaultPlan plan(5, FaultRates::uniform(1.0));
  EXPECT_EQ(plan.pick(FaultKind::kElementDeath, site(0), 0), 0u);
  std::vector<std::size_t> counts(8, 0);
  for (std::uint64_t i = 0; i < 8000; ++i) {
    const std::uint64_t p = plan.pick(FaultKind::kElementDeath, site(i), 8);
    ASSERT_LT(p, 8u);
    ++counts[p];
  }
  // Roughly uniform over the range: every bucket hit.
  for (const std::size_t c : counts) EXPECT_GT(c, 500u);
}

TEST(FaultKindNames, AllDistinct) {
  for (std::size_t a = 0; a < kNumFaultKinds; ++a) {
    EXPECT_FALSE(to_string(static_cast<FaultKind>(a)).empty());
    for (std::size_t b = a + 1; b < kNumFaultKinds; ++b) {
      EXPECT_NE(to_string(static_cast<FaultKind>(a)),
                to_string(static_cast<FaultKind>(b)));
    }
  }
}

}  // namespace
}  // namespace dwatch::faults
