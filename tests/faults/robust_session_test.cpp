// Tests for the resilient LLRP control-plane client: retries with
// exponential backoff on a deterministic virtual clock, and the
// reconnect state machine that recovers from lost-response desyncs.
#include "rfid/robust_client.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <vector>

#include "faults/fault_plan.hpp"

namespace dwatch::rfid {
namespace {

RoSpec default_rospec() {
  RoSpec r;
  r.rospec_id = 7;
  return r;
}

/// Transport that drives a ReaderSession, losing exchanges on demand.
/// `lose` is consulted once per wire attempt with the attempt ordinal;
/// when it returns kRequestLost the reader never sees the request, when
/// kResponseLost the reader PROCESSES it but the response vanishes —
/// the distributed-systems trap the reconnect machinery exists for.
enum class Loss { kNone, kRequestLost, kResponseLost };

RobustSessionClient::Transport lossy_transport(
    ReaderSession& session, std::function<Loss(std::size_t)> lose) {
  auto counter = std::make_shared<std::size_t>(0);
  return [&session, lose = std::move(lose),
          counter](std::span<const std::uint8_t> request)
             -> std::optional<std::vector<std::uint8_t>> {
    const Loss loss = lose((*counter)++);
    if (loss == Loss::kRequestLost) return std::nullopt;
    auto response = session.handle(request);
    if (loss == Loss::kResponseLost) return std::nullopt;
    return response;
  };
}

TEST(RobustSession, CleanLinkConnectsFirstTry) {
  ReaderSession session;
  RobustSessionClient client(
      lossy_transport(session, [](std::size_t) { return Loss::kNone; }));
  EXPECT_TRUE(client.connect(default_rospec()));
  EXPECT_EQ(session.state(), ReaderSession::State::kRunning);
  const TransportStats& s = client.stats();
  EXPECT_EQ(s.requests, 4u);  // caps + add + enable + start
  EXPECT_EQ(s.attempts, 4u);
  EXPECT_EQ(s.retries, 0u);
  EXPECT_EQ(s.timeouts, 0u);
  EXPECT_EQ(s.reconnects, 0u);
  EXPECT_EQ(s.virtual_time_us, 4 * client.policy().nominal_rtt_us);
}

TEST(RobustSession, LostRequestIsRetriedTransparently) {
  // The first two wire attempts vanish before reaching the reader; the
  // retried attempt succeeds and the session state never desyncs.
  ReaderSession session;
  RobustSessionClient client(lossy_transport(session, [](std::size_t i) {
    return i < 2 ? Loss::kRequestLost : Loss::kNone;
  }));
  EXPECT_TRUE(client.connect(default_rospec()));
  EXPECT_EQ(session.state(), ReaderSession::State::kRunning);
  EXPECT_EQ(client.stats().retries, 2u);
  EXPECT_EQ(client.stats().timeouts, 2u);
  EXPECT_EQ(client.stats().reconnects, 0u);
}

TEST(RobustSession, BackoffScheduleIsExactAndExponential) {
  ReaderSession session;
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_backoff_us = 500;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_us = 64'000;
  policy.request_timeout_us = 2'000;
  policy.nominal_rtt_us = 150;
  // Lose the first three attempts of the first request.
  RobustSessionClient client(lossy_transport(session, [](std::size_t i) {
    return i < 3 ? Loss::kRequestLost : Loss::kNone;
  }), policy);
  const auto resp =
      client.request(ControlType::kGetReaderCapabilities);
  // 4th attempt answered (capabilities bytes don't decode as a control
  // response header mismatch — request() returns nullopt on DecodeError
  // — so probe the clock, which is the point of this test).
  (void)resp;
  // 3 timeouts + backoffs 500, 1000, 2000 + one successful RTT.
  EXPECT_EQ(client.stats().timeouts, 3u);
  EXPECT_EQ(client.now_us(), 3 * 2'000u + 500u + 1'000u + 2'000u + 150u);
}

TEST(RobustSession, DeadLinkGivesUpBoundedly) {
  ReaderSession session;
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.max_reconnects = 2;
  RobustSessionClient client(
      lossy_transport(session, [](std::size_t) { return Loss::kRequestLost; }),
      policy, [&session] { session.reset(); });
  EXPECT_FALSE(client.connect(default_rospec()));
  const TransportStats& s = client.stats();
  EXPECT_EQ(s.reconnects, 2u);
  // 3 connect cycles, each dying on the first (capabilities) request.
  EXPECT_EQ(s.giveups, 3u);
  EXPECT_EQ(s.attempts, 9u);
  EXPECT_EQ(s.timeouts, 9u);
}

TEST(RobustSession, LostAddResponseDesyncHealsViaReconnect) {
  // Attempt ordinals on a clean link: 0 caps, 1 add, 2 enable, 3 start.
  // Losing the RESPONSE to ADD_ROSPEC leaves the reader configured while
  // the client believes the add never happened; the retried ADD gets
  // kWrongState and only a full reconnect (reader session reset) heals.
  ReaderSession session;
  RobustSessionClient client(lossy_transport(session, [](std::size_t i) {
    return i == 1 ? Loss::kResponseLost : Loss::kNone;
  }), RetryPolicy{}, [&session] { session.reset(); });
  EXPECT_TRUE(client.connect(default_rospec()));
  EXPECT_EQ(session.state(), ReaderSession::State::kRunning);
  EXPECT_EQ(client.stats().reconnects, 1u);
  EXPECT_GE(client.stats().retries, 1u);
}

TEST(RobustSession, NoReconnectHookMeansNoReconnects) {
  ReaderSession session;
  RobustSessionClient client(lossy_transport(session, [](std::size_t i) {
    return i == 1 ? Loss::kResponseLost : Loss::kNone;
  }));
  EXPECT_FALSE(client.connect(default_rospec()));
  EXPECT_EQ(client.stats().reconnects, 0u);
}

TEST(RobustSession, BackoffCapHolds) {
  RetryPolicy policy;
  policy.base_backoff_us = 1'000;
  policy.backoff_multiplier = 10.0;
  policy.max_backoff_us = 5'000;
  policy.max_attempts = 4;
  ReaderSession session;
  RobustSessionClient client(
      lossy_transport(session, [](std::size_t) { return Loss::kRequestLost; }),
      policy);
  EXPECT_FALSE(client.request(ControlType::kGetReaderCapabilities)
                   .has_value());
  // Backoffs: 1000, then 10000 -> capped 5000, then capped 5000.
  EXPECT_EQ(client.now_us(), 4 * policy.request_timeout_us + 1'000u +
                                 5'000u + 5'000u);
}

TEST(RobustSession, FaultPlanDrivenLinkIsDeterministic) {
  // Drive the transport's losses from a FaultPlan and check two
  // independent runs produce bit-identical TransportStats — the
  // control-plane half of the stress suite's determinism criterion.
  const faults::FaultPlan plan(
      99, faults::FaultRates::only(faults::FaultKind::kFrameTimeout, 0.35));
  const auto run = [&plan] {
    ReaderSession session;
    auto attempt = std::make_shared<std::uint64_t>(0);
    RobustSessionClient client(
        [&session, &plan, attempt](std::span<const std::uint8_t> request)
            -> std::optional<std::vector<std::uint8_t>> {
          const faults::FaultSite site{0, 0, 0, (*attempt)++};
          if (plan.fires(faults::FaultKind::kFrameTimeout, site)) {
            return std::nullopt;
          }
          return session.handle(request);
        },
        RetryPolicy{}, [&session] { session.reset(); });
    const bool ok = client.connect(RoSpec{});
    return std::make_pair(ok, client.stats());
  };
  const auto [ok_a, stats_a] = run();
  const auto [ok_b, stats_b] = run();
  EXPECT_EQ(ok_a, ok_b);
  EXPECT_EQ(stats_a, stats_b);
}

TEST(RobustSession, ReconnectClearsAssemblerQuarantine) {
  // Regression for the reboot-replay starvation: a reader that reboots
  // restarts its sequence numbers, so after the control plane
  // reconnects, byte-identical reports are legitimate fresh traffic.
  // The reconnect path must clear the bound assembler's dedupe
  // quarantine (alongside ReaderSession::reset()), or every replayed
  // report is silently rejected as a duplicate.
  SnapshotAssembler assembler(2, 2);
  TagObservation obs;
  obs.epc = Epc96::for_tag_index(1);
  obs.first_seen_us = 42;
  for (std::uint32_t r = 0; r < 2; ++r) {
    for (std::uint16_t e = 1; e <= 2; ++e) {
      obs.samples.push_back(
          PhaseSample{e, r, static_cast<std::uint16_t>(e + r), -3000});
    }
  }
  ASSERT_TRUE(assembler.ingest(obs));
  ASSERT_FALSE(assembler.ingest(obs));  // pre-reboot retransmission

  // Lost ADD_ROSPEC response => desync => the client heals with one
  // full reconnect cycle (the same scenario a reader reboot produces).
  ReaderSession session;
  RobustSessionClient client(lossy_transport(session, [](std::size_t i) {
    return i == 1 ? Loss::kResponseLost : Loss::kNone;
  }), RetryPolicy{}, [&session] { session.reset(); });
  client.attach_assembler(&assembler);
  EXPECT_TRUE(client.connect(default_rospec()));
  ASSERT_EQ(client.stats().reconnects, 1u);

  // The rebooted reader replays the same bytes: accepted now.
  EXPECT_TRUE(assembler.ingest(obs));
  EXPECT_EQ(assembler.stats().reports_accepted, 2u);
  EXPECT_EQ(assembler.stats().duplicate_reports_quarantined, 1u);
}

}  // namespace
}  // namespace dwatch::rfid
