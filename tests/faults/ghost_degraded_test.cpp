// Ghost filtering under degraded modes — the interplay the individual
// suites don't cover: one epoch where a dead reader's array is excluded
// (K-of-N), a stale retransmission is rejected by the epoch watermark,
// and the Section 4.3 ghost filter still rejects a genuine wrong-angle
// ghost — each path counted in the same ConfidenceReport and visible in
// the structured event log.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "obs/event_log.hpp"
#include "obs/obs.hpp"
#include "rf/noise.hpp"
#include "rf/snapshot.hpp"

namespace dwatch::core {
namespace {

std::vector<rf::UniformLinearArray> three_arrays() {
  return {
      rf::UniformLinearArray({3.5, 0.15, 1.25}, {1, 0}, 8),
      rf::UniformLinearArray({0.15, 5.0, 1.25}, {0, 1}, 8),
      rf::UniformLinearArray({6.85, 5.0, 1.25}, {0, 1}, 8),
  };
}

SearchBounds room_bounds() { return {{0.0, 0.0}, {7.0, 10.0}}; }

linalg::CMatrix synth(const rf::UniformLinearArray& array,
                      const std::vector<double>& angles_rad,
                      const std::vector<double>& amps,
                      const std::vector<double>& scale, std::uint64_t seed) {
  std::vector<rf::PropagationPath> paths;
  for (std::size_t i = 0; i < angles_rad.size(); ++i) {
    rf::PropagationPath p;
    p.kind = rf::PathKind::kDirect;
    p.vertices = {{-10, 0, 1.25}, array.center()};
    p.length = 10.0;
    p.aoa = angles_rad[i];
    p.gain = {amps[i], 0.0};
    paths.push_back(p);
  }
  rf::SnapshotOptions opts;
  opts.num_snapshots = 16;
  opts.noise_sigma = rf::noise_sigma_for_snr(paths, 1.0, 35.0);
  rf::Rng rng(seed);
  return rf::synthesize_snapshots(array, paths, scale, opts, rng);
}

/// Wrap a snapshot matrix into a wire observation stamped with
/// `first_seen_us` (the staleness gate keys on the timestamp).
rfid::TagObservation wire_obs(const linalg::CMatrix& x,
                              const rfid::Epc96& epc,
                              std::uint64_t first_seen_us) {
  rfid::TagObservation obs;
  obs.epc = epc;
  obs.first_seen_us = first_seen_us;
  for (std::size_t n = 0; n < x.cols(); ++n) {
    for (std::size_t m = 0; m < x.rows(); ++m) {
      const auto [pq, rq] = rfid::quantize_sample(x(m, n));
      obs.samples.push_back(rfid::PhaseSample{
          static_cast<std::uint16_t>(m + 1), static_cast<std::uint32_t>(n),
          pq, rq});
    }
  }
  return obs;
}

std::size_t count_events(const std::vector<std::string>& lines,
                         std::string_view type) {
  return static_cast<std::size_t>(std::count_if(
      lines.begin(), lines.end(), [&](const std::string& l) {
        return l.find(type) != std::string::npos;
      }));
}

TEST(GhostDegraded, ExclusionStalenessAndGhostFilterInOneEpoch) {
  obs::set_enabled(true);
  obs::EventLog::global().clear();

  const auto arrays = three_arrays();
  DWatchPipeline pipe(arrays, room_bounds());
  const rf::Vec2 target{3.0, 4.0};

  // Honest traffic: two corroborating tags per healthy array, pointing
  // at the target.
  const auto h0a = rfid::Epc96::for_tag_index(1);
  const auto h0b = rfid::Epc96::for_tag_index(2);
  const auto h1a = rfid::Epc96::for_tag_index(3);
  const auto h1b = rfid::Epc96::for_tag_index(4);
  // Ghost traffic: ONE tag dropping at both healthy arrays at angles
  // nothing corroborates (a pre-reflection-leg blockage).
  const auto ghost = rfid::Epc96::for_tag_index(7);
  // Stale traffic: a healthy tag whose report is a retransmission from
  // before the epoch watermark.
  const auto stale = rfid::Epc96::for_tag_index(9);

  const std::vector<double> t0{arrays[0].arrival_angle_planar(target)};
  const std::vector<double> t1{arrays[1].arrival_angle_planar(target)};
  const std::vector<double> g0{rf::deg2rad(150)};
  const std::vector<double> g1{rf::deg2rad(30)};
  const std::vector<double> amp{0.01};

  pipe.add_baseline(0, h0a, synth(arrays[0], t0, amp, {}, 41));
  pipe.add_baseline(0, h0b, synth(arrays[0], t0, amp, {}, 42));
  pipe.add_baseline(1, h1a, synth(arrays[1], t1, amp, {}, 43));
  pipe.add_baseline(1, h1b, synth(arrays[1], t1, amp, {}, 44));
  pipe.add_baseline(0, ghost, synth(arrays[0], g0, amp, {}, 45));
  pipe.add_baseline(1, ghost, synth(arrays[1], g1, amp, {}, 46));
  pipe.add_baseline(1, stale, synth(arrays[1], t1, amp, {}, 47));

  // Array 2's reader is gone: excluded, K-of-N shrinks to the survivors.
  pipe.set_array_health(2, false);

  constexpr std::uint64_t kWatermarkUs = 1'000'000;
  pipe.begin_epoch(kWatermarkUs);

  (void)pipe.observe(0, h0a, synth(arrays[0], t0, amp, {0.2}, 51));
  (void)pipe.observe(0, h0b, synth(arrays[0], t0, amp, {0.2}, 52));
  (void)pipe.observe(1, h1a, synth(arrays[1], t1, amp, {0.2}, 53));
  (void)pipe.observe(1, h1b, synth(arrays[1], t1, amp, {0.2}, 54));
  (void)pipe.observe(0, ghost, synth(arrays[0], g0, amp, {0.2}, 55));
  (void)pipe.observe(1, ghost, synth(arrays[1], g1, amp, {0.2}, 56));
  // The stale retransmission: timestamped BEFORE the watermark, it must
  // be quarantined without contributing evidence.
  EXPECT_EQ(pipe.observe(1, wire_obs(synth(arrays[1], t1, amp, {0.2}, 57),
                                     stale, kWatermarkUs - 500)),
            0u);

  // Raw evidence: honest pair + ghost at each healthy array, stale gone.
  ASSERT_EQ(pipe.evidence()[0].drops.size(), 3u);
  ASSERT_EQ(pipe.evidence()[1].drops.size(), 3u);
  EXPECT_TRUE(pipe.evidence()[2].drops.empty());

  // Filtered: the ghost's uncorroborated drops are rejected at BOTH
  // arrays, the corroborated honest pairs survive.
  const auto filtered = pipe.filtered_evidence();
  EXPECT_EQ(filtered[0].drops.size(), 2u);
  EXPECT_EQ(filtered[1].drops.size(), 2u);
  for (std::size_t a = 0; a < 2; ++a) {
    for (const auto& d : filtered[a].drops) EXPECT_NE(d.source_id, 7u);
  }

  // The fix survives the compound degradation and its provenance
  // records every path that fired.
  const ConfidentEstimate fix = pipe.localize_with_confidence();
  ASSERT_TRUE(fix.estimate.valid);
  EXPECT_NEAR(rf::distance(fix.estimate.position, target), 0.0, 0.3);
  EXPECT_EQ(fix.confidence.arrays_excluded, 1u);
  EXPECT_EQ(fix.confidence.arrays_with_evidence, 2u);
  EXPECT_EQ(fix.confidence.stale_observations, 1u);
  EXPECT_TRUE(fix.confidence.degraded());

  // Event log: each degradation path left its discrete record. The
  // ghost filter ran twice — the explicit filtered_evidence() above and
  // again inside localize_with_confidence() — and every run re-emits
  // its rejections (each fix really did reject them): 2 runs x 1 drop
  // per healthy array. Emission sites are compiled out in a
  // DWATCH_OBS=OFF tree, so only check them when obs is compiled in;
  // the pipeline-level assertions above cover both configurations.
#if DWATCH_OBS_ENABLED
  const auto lines = obs::EventLog::global().snapshot();
  EXPECT_EQ(count_events(lines, "pipeline.ghost_rejected"), 4u);
  EXPECT_EQ(count_events(lines, "pipeline.stale_observation"), 1u);
  EXPECT_EQ(count_events(lines, "pipeline.array_excluded"), 1u);
#endif

  obs::set_enabled(false);
}

TEST(GhostDegraded, StaleGateOffAdmitsOldObservations) {
  // Control: with reject_stale disabled the same retransmission IS
  // evidence — proving the rejection above came from the gate, not
  // from a decoding failure.
  const auto arrays = three_arrays();
  PipelineOptions opts;
  opts.degraded.reject_stale = false;
  DWatchPipeline pipe(arrays, room_bounds(), opts);
  const rf::Vec2 target{3.0, 4.0};
  const auto stale = rfid::Epc96::for_tag_index(9);
  const std::vector<double> t1{arrays[1].arrival_angle_planar(target)};
  const std::vector<double> amp{0.01};
  pipe.add_baseline(1, stale, synth(arrays[1], t1, amp, {}, 47));

  pipe.begin_epoch(1'000'000);
  EXPECT_EQ(pipe.observe(1, wire_obs(synth(arrays[1], t1, amp, {0.2}, 57),
                                     stale, 999'500)),
            1u);
  EXPECT_EQ(pipe.stats().stale_observations, 0u);
  EXPECT_EQ(pipe.evidence()[1].drops.size(), 1u);
}

}  // namespace
}  // namespace dwatch::core
