// Tests for the fault injector: each fault class mutates traffic the
// way real hardware fails, counters account for every strike, and the
// whole process is deterministic.
#include "faults/fault_injector.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "rfid/llrp.hpp"

namespace dwatch::faults {
namespace {

using rfid::Epc96;
using rfid::PhaseSample;
using rfid::RoAccessReport;
using rfid::TagObservation;

TagObservation make_observation(std::uint32_t tag, std::size_t elements = 4,
                                std::uint32_t rounds = 3,
                                std::uint64_t ts = 1000) {
  TagObservation obs;
  obs.epc = Epc96::for_tag_index(tag);
  obs.first_seen_us = ts;
  for (std::uint32_t r = 0; r < rounds; ++r) {
    for (std::uint16_t e = 1; e <= elements; ++e) {
      obs.samples.push_back(PhaseSample{
          .element_id = e,
          .round = r,
          .phase_q = static_cast<std::uint16_t>(e * 100 + r),
          .rssi_q = -3000,
      });
    }
  }
  return obs;
}

RoAccessReport make_report(std::size_t num_tags, std::uint64_t ts = 1000) {
  RoAccessReport report;
  for (std::uint32_t t = 0; t < num_tags; ++t) {
    report.observations.push_back(make_observation(t, 4, 3, ts));
  }
  return report;
}

TEST(FaultInjectorWire, CleanPlanPassesFramesVerbatim) {
  FaultInjector inj{FaultPlan(1, FaultRates{})};
  const std::vector<std::uint8_t> frame{1, 2, 3, 4, 5, 6, 7, 8};
  const auto out = inj.filter_frame(frame, 0, 0, 0);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, frame);
  EXPECT_EQ(inj.counters().total(), 0u);
}

TEST(FaultInjectorWire, TimeoutSwallowsTheFrame) {
  FaultInjector inj{
      FaultPlan(1, FaultRates::only(FaultKind::kFrameTimeout, 1.0))};
  EXPECT_FALSE(inj.filter_frame({1, 2, 3}, 0, 0, 0).has_value());
  EXPECT_EQ(inj.counters().frames_timed_out, 1u);
}

TEST(FaultInjectorWire, TruncationKeepsAStrictPrefix) {
  FaultInjector inj{
      FaultPlan(7, FaultRates::only(FaultKind::kFrameTruncation, 1.0))};
  const std::vector<std::uint8_t> frame{10, 20, 30, 40, 50, 60, 70, 80};
  for (std::uint64_t idx = 0; idx < 50; ++idx) {
    const auto out = inj.filter_frame(frame, 0, 0, idx);
    ASSERT_TRUE(out.has_value());
    ASSERT_GE(out->size(), 1u);
    ASSERT_LT(out->size(), frame.size());
    // Prefix, not arbitrary bytes.
    EXPECT_TRUE(std::equal(out->begin(), out->end(), frame.begin()));
  }
  EXPECT_EQ(inj.counters().frames_truncated, 50u);
}

TEST(FaultInjectorWire, ReorderSwapsOneAdjacentPair) {
  FaultInjector inj{
      FaultPlan(3, FaultRates::only(FaultKind::kFrameReorder, 1.0))};
  std::vector<std::vector<std::uint8_t>> frames{{0}, {1}, {2}, {3}};
  const auto original = frames;
  inj.maybe_reorder(frames, 0, 0);
  EXPECT_EQ(inj.counters().frames_reordered, 1u);
  // Same multiset of frames, exactly two positions changed.
  std::size_t moved = 0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (frames[i] != original[i]) ++moved;
  }
  EXPECT_EQ(moved, 2u);

  // A single frame cannot be reordered.
  std::vector<std::vector<std::uint8_t>> one{{9}};
  inj.maybe_reorder(one, 0, 1);
  EXPECT_EQ(one.size(), 1u);
}

TEST(FaultInjectorObs, DropRemovesTheObservation) {
  FaultInjector inj{
      FaultPlan(1, FaultRates::only(FaultKind::kObservationDrop, 1.0))};
  RoAccessReport report = make_report(5);
  inj.corrupt_report(report, 0, 0);
  EXPECT_TRUE(report.observations.empty());
  EXPECT_EQ(inj.counters().observations_dropped, 5u);
}

TEST(FaultInjectorObs, ElementDeathRemovesExactlyOneElement) {
  FaultInjector inj{
      FaultPlan(11, FaultRates::only(FaultKind::kElementDeath, 1.0))};
  RoAccessReport report = make_report(1);
  const std::size_t before = report.observations[0].samples.size();
  inj.corrupt_report(report, 0, 0);
  ASSERT_EQ(report.observations.size(), 1u);
  const auto& samples = report.observations[0].samples;
  // 3 rounds x 1 dead element gone.
  EXPECT_EQ(samples.size(), before - 3);
  std::set<std::uint16_t> alive;
  for (const PhaseSample& s : samples) alive.insert(s.element_id);
  EXPECT_EQ(alive.size(), 3u);
  EXPECT_EQ(inj.counters().elements_killed, 1u);
}

TEST(FaultInjectorObs, PhaseJumpShiftsASuffixOfRounds) {
  FaultInjector inj{
      FaultPlan(13, FaultRates::only(FaultKind::kPhaseJump, 1.0))};
  RoAccessReport report = make_report(1);
  const auto original = report.observations[0];
  inj.corrupt_report(report, 0, 0);
  ASSERT_EQ(report.observations.size(), 1u);
  const auto& obs = report.observations[0];
  ASSERT_EQ(obs.samples.size(), original.samples.size());
  EXPECT_EQ(inj.counters().phase_jumps, 1u);

  // Per round: either every element shifted by the same constant, or
  // none — and at least one round IS shifted.
  std::size_t shifted_rounds = 0;
  for (std::uint32_t r = 0; r < 3; ++r) {
    std::set<std::uint16_t> deltas;
    for (std::size_t i = 0; i < obs.samples.size(); ++i) {
      if (obs.samples[i].round != r) continue;
      deltas.insert(static_cast<std::uint16_t>(
          obs.samples[i].phase_q - original.samples[i].phase_q));
    }
    ASSERT_EQ(deltas.size(), 1u);
    if (*deltas.begin() != 0) ++shifted_rounds;
  }
  EXPECT_GE(shifted_rounds, 1u);
  // RSSI untouched: it's a PHASE glitch.
  for (std::size_t i = 0; i < obs.samples.size(); ++i) {
    EXPECT_EQ(obs.samples[i].rssi_q, original.samples[i].rssi_q);
  }
}

TEST(FaultInjectorObs, DuplicateEmitsVerbatimCopy) {
  FaultInjector inj{
      FaultPlan(17, FaultRates::only(FaultKind::kDuplicateReport, 1.0))};
  RoAccessReport report = make_report(2);
  inj.corrupt_report(report, 0, 0);
  ASSERT_EQ(report.observations.size(), 4u);
  EXPECT_EQ(report.observations[0].epc, report.observations[1].epc);
  EXPECT_EQ(report.observations[0].samples.size(),
            report.observations[1].samples.size());
  EXPECT_EQ(inj.counters().duplicate_reports, 2u);
}

TEST(FaultInjectorObs, StaleReplaysThePreviousEpochVerbatim) {
  FaultInjector inj{
      FaultPlan(19, FaultRates::only(FaultKind::kStaleReport, 1.0))};
  // Epoch 0: nothing in history yet, so the stale fault cannot strike.
  RoAccessReport epoch0 = make_report(1, /*ts=*/1000);
  inj.corrupt_report(epoch0, 0, 0);
  ASSERT_EQ(epoch0.observations.size(), 1u);
  EXPECT_EQ(epoch0.observations[0].first_seen_us, 1000u);
  EXPECT_EQ(inj.counters().stale_reports, 0u);

  // Epoch 1: fresh data (new timestamp) replaced by the epoch-0 replay.
  RoAccessReport epoch1 = make_report(1, /*ts=*/2000);
  epoch1.observations[0].samples[0].phase_q = 60000;  // fresh measurement
  inj.corrupt_report(epoch1, 1, 0);
  ASSERT_EQ(epoch1.observations.size(), 1u);
  EXPECT_EQ(epoch1.observations[0].first_seen_us, 1000u);  // old timestamp
  EXPECT_NE(epoch1.observations[0].samples[0].phase_q, 60000);
  EXPECT_EQ(inj.counters().stale_reports, 1u);
}

TEST(FaultInjector, DeterministicAcrossRuns) {
  const FaultPlan plan(555, FaultRates::uniform(0.3));
  FaultInjector a{plan};
  FaultInjector b{plan};
  for (std::uint64_t epoch = 0; epoch < 6; ++epoch) {
    for (std::uint64_t array = 0; array < 3; ++array) {
      RoAccessReport ra = make_report(8, 1000 * (epoch + 1));
      RoAccessReport rb = make_report(8, 1000 * (epoch + 1));
      a.corrupt_report(ra, epoch, array);
      b.corrupt_report(rb, epoch, array);
      ASSERT_EQ(ra.observations.size(), rb.observations.size());
      for (std::size_t i = 0; i < ra.observations.size(); ++i) {
        EXPECT_EQ(ra.observations[i].epc, rb.observations[i].epc);
        EXPECT_EQ(ra.observations[i].first_seen_us,
                  rb.observations[i].first_seen_us);
        ASSERT_EQ(ra.observations[i].samples.size(),
                  rb.observations[i].samples.size());
        for (std::size_t s = 0; s < ra.observations[i].samples.size(); ++s) {
          EXPECT_EQ(ra.observations[i].samples[s].phase_q,
                    rb.observations[i].samples[s].phase_q);
        }
      }
    }
  }
  EXPECT_EQ(a.counters(), b.counters());
  EXPECT_GT(a.counters().total(), 0u);
}

TEST(FaultInjector, TruncatedFramesQuarantinedByTolerantDecoder) {
  // Wire faults + the tolerant decoder: truncation must never abort the
  // stream, and intact messages around the damage still decode.
  FaultInjector inj{
      FaultPlan(23, FaultRates::only(FaultKind::kFrameTruncation, 0.5))};
  rfid::LlrpStreamDecoder decoder;
  std::size_t sent = 0, delivered_whole = 0;
  for (std::uint64_t idx = 0; idx < 40; ++idx) {
    RoAccessReport msg;
    msg.message_id = static_cast<std::uint32_t>(idx);
    msg.observations.push_back(make_observation(static_cast<std::uint32_t>(idx)));
    auto frame = rfid::encode(msg);
    const std::size_t whole = frame.size();
    const auto out = inj.filter_frame(std::move(frame), 0, 0, idx);
    ASSERT_TRUE(out.has_value());  // truncation never times out
    ++sent;
    if (out->size() == whole) ++delivered_whole;
    decoder.feed(*out);
  }
  std::size_t decoded = 0;
  while (true) {
    while (decoder.next_report_tolerant()) ++decoded;
    if (decoder.buffered_bytes() == 0) break;
    decoder.flush_incomplete();
  }
  EXPECT_EQ(sent, 40u);
  EXPECT_GT(inj.counters().frames_truncated, 0u);
  // Every intact frame either decodes or was consumed as collateral of
  // a preceding truncated frame (resync can only skip forward); at
  // minimum SOME intact traffic survives and nothing throws.
  EXPECT_GT(decoded, 0u);
  EXPECT_LE(decoded, delivered_whole);
  EXPECT_GT(decoder.frames_quarantined(), 0u);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

}  // namespace
}  // namespace dwatch::faults
