// Deterministic stress suite: the full sim -> wire -> pipeline chain
// under every fault class.
//
// For each fault kind at 10% injection the suite asserts the
// acceptance criteria of the failure-model design:
//   * nothing crashes or hangs anywhere in the chain;
//   * the median localization error degrades by at most 2x the clean
//     run's median (plus a small absolute floor absorbing grid
//     quantization when the clean error is near zero);
//   * two runs with the same FaultPlan seed produce bit-identical
//     ConfidenceReports and estimates.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/pipeline.hpp"
#include "faults/fault_injector.hpp"
#include "harness/experiment.hpp"
#include "recovery/self_healing.hpp"
#include "rf/noise.hpp"
#include "sim/scene.hpp"

namespace dwatch {
namespace {

using core::ConfidenceReport;
using core::ConfidentEstimate;
using faults::FaultInjector;
using faults::FaultKind;
using faults::FaultPlan;
using faults::FaultRates;

constexpr std::uint64_t kSceneSeed = 20160901;  // CoNEXT'16
constexpr std::size_t kNumEpochs = 5;

/// One localization epoch's outcome.
struct EpochResult {
  ConfidentEstimate fix;
  rf::Vec2 truth;

  [[nodiscard]] double error() const {
    return rf::distance(fix.estimate.position, truth);
  }
};

struct RunResult {
  std::vector<EpochResult> epochs;

  [[nodiscard]] double median_error() const {
    std::vector<double> errs;
    for (const EpochResult& e : epochs) errs.push_back(e.error());
    std::sort(errs.begin(), errs.end());
    return errs[errs.size() / 2];
  }
};

/// The fixed scenario shared by every run: the library room with the
/// default 4-array, 21-tag deployment. Rebuilt from the same seed each time so runs only
/// differ in the injected faults.
sim::Scene make_scene() {
  rf::Rng rng(kSceneSeed);
  sim::Deployment dep = sim::make_room_deployment(
      sim::Environment::library(), sim::DeploymentOptions{}, rng);
  return sim::Scene(std::move(dep), sim::CaptureOptions{}, rng);
}

core::DWatchPipeline make_pipeline(const sim::Scene& scene) {
  core::PipelineOptions opts;
  opts.localizer.grid_step = 0.1;
  const auto& env = scene.deployment().env;
  core::DWatchPipeline pipe(
      scene.deployment().arrays,
      core::SearchBounds{{0.0, 0.0}, {env.width, env.depth}}, opts);
  // Perfect calibration (the reader's own per-port offsets): this suite
  // stresses the transport and degradation paths, not the calibrator.
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    pipe.set_calibration(a, scene.reader(a).phase_offsets());
  }
  return pipe;
}

/// The ground-truth target track: one position per epoch, through the
/// well-covered center of the room.
rf::Vec2 target_at(std::size_t epoch) {
  return {2.6 + 0.2 * static_cast<double>(epoch),
          3.6 + 0.25 * static_cast<double>(epoch)};
}

/// Run the full chain: per epoch, each array's report passes the
/// observation-layer faults, is encoded into one frame per tag, passes
/// the wire-layer faults, is decoded by the tolerant stream decoder,
/// and the surviving observations feed the pipeline.
RunResult run_chain(const FaultPlan& plan) {
  const sim::Scene scene = make_scene();
  core::DWatchPipeline pipe = make_pipeline(scene);
  FaultInjector injector(plan);

  // Clean baselines (empty scene), captured before the link degrades.
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    rf::Rng rng(kSceneSeed + 100 + a);
    const rfid::RoAccessReport report =
        scene.capture_report(a, {}, rng, 0, /*first_seen_us=*/1);
    for (const rfid::TagObservation& obs : report.observations) {
      pipe.add_baseline(a, obs);
    }
  }

  RunResult result;
  for (std::size_t epoch = 0; epoch < kNumEpochs; ++epoch) {
    const rf::Vec2 truth = target_at(epoch);
    const sim::CylinderTarget targets[] = {sim::CylinderTarget::human(truth)};
    const std::uint64_t watermark = 1000 * (epoch + 1);
    pipe.begin_epoch(watermark);

    for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
      rf::Rng rng(kSceneSeed + 1000 * (epoch + 1) + a);
      rfid::RoAccessReport report = scene.capture_report(
          a, targets, rng, static_cast<std::uint32_t>(epoch),
          /*first_seen_us=*/watermark + 10);

      // Observation-layer faults strike at the reader.
      injector.corrupt_report(report, epoch, a);

      // One wire frame per observation, as a streaming reader emits.
      std::vector<std::vector<std::uint8_t>> frames;
      for (const rfid::TagObservation& obs : report.observations) {
        rfid::RoAccessReport single;
        single.message_id = static_cast<std::uint32_t>(epoch * 100 + a);
        single.observations.push_back(obs);
        frames.push_back(rfid::encode(single));
      }
      const std::size_t encoded = frames.size();

      // Wire-layer faults strike in flight.
      injector.maybe_reorder(frames, epoch, a);
      rfid::LlrpStreamDecoder decoder;
      for (std::size_t f = 0; f < frames.size(); ++f) {
        const auto delivered =
            injector.filter_frame(std::move(frames[f]), epoch, a, f);
        if (delivered) decoder.feed(*delivered);
      }

      // Server side: tolerant decode (alternating with the epoch-end
      // flush until the buffer drains), then the degraded pipeline.
      std::size_t decoded = 0;
      while (true) {
        while (const auto msg = decoder.next_report_tolerant()) {
          for (const rfid::TagObservation& obs : msg->observations) {
            (void)pipe.observe(a, obs);
            ++decoded;
          }
        }
        if (decoder.buffered_bytes() == 0) break;
        decoder.flush_incomplete();
      }
      pipe.note_reports_dropped(encoded - decoded +
                                decoder.frames_quarantined());
    }

    EpochResult er;
    er.fix = pipe.localize_with_confidence(/*best_effort=*/true);
    er.truth = truth;
    result.epochs.push_back(er);
  }
  return result;
}

/// Clean-run median, computed once and shared by every fault case.
double clean_median() {
  static const double median = [] {
    const RunResult clean = run_chain(FaultPlan(1, FaultRates{}));
    return clean.median_error();
  }();
  return median;
}

TEST(Stress, CleanRunLocalizesAndReportsHealthy) {
  const RunResult clean = run_chain(FaultPlan(1, FaultRates{}));
  ASSERT_EQ(clean.epochs.size(), kNumEpochs);
  for (const EpochResult& e : clean.epochs) {
    EXPECT_TRUE(e.fix.estimate.valid);
    EXPECT_FALSE(e.fix.confidence.degraded());
    EXPECT_EQ(e.fix.confidence.arrays_total, 4u);
    EXPECT_GE(e.fix.confidence.arrays_with_evidence, 2u);
  }
  EXPECT_LT(clean.median_error(), 0.6);
}

class StressPerFault : public ::testing::TestWithParam<FaultKind> {};

TEST_P(StressPerFault, BoundedDegradationAtTenPercent) {
  const FaultKind kind = GetParam();
  const FaultPlan plan(7777, FaultRates::only(kind, 0.10));
  const RunResult faulty = run_chain(plan);  // completing IS no-crash
  ASSERT_EQ(faulty.epochs.size(), kNumEpochs);

  // Every epoch still produced a positioned fix (best-effort never
  // abstains while any evidence exists).
  for (const EpochResult& e : faulty.epochs) {
    EXPECT_GT(e.fix.confidence.observations +
                  e.fix.confidence.observations_skipped +
                  e.fix.confidence.stale_observations +
                  e.fix.confidence.malformed_observations,
              0u)
        << to_string(kind);
  }

  // Bounded error degradation: median <= 2x clean median, with a small
  // absolute floor so a near-zero clean error cannot make the bound
  // vacuous-tight against grid quantization.
  const double bound = std::max(2.0 * clean_median(), 0.5);
  EXPECT_LE(faulty.median_error(), bound) << to_string(kind);
}

TEST_P(StressPerFault, SameSeedIsBitIdentical) {
  const FaultKind kind = GetParam();
  const FaultPlan plan(4242, FaultRates::only(kind, 0.10));
  const RunResult a = run_chain(plan);
  const RunResult b = run_chain(plan);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t e = 0; e < a.epochs.size(); ++e) {
    EXPECT_EQ(a.epochs[e].fix.confidence, b.epochs[e].fix.confidence);
    EXPECT_EQ(a.epochs[e].fix.estimate.position.x,
              b.epochs[e].fix.estimate.position.x);
    EXPECT_EQ(a.epochs[e].fix.estimate.position.y,
              b.epochs[e].fix.estimate.position.y);
    EXPECT_EQ(a.epochs[e].fix.estimate.likelihood,
              b.epochs[e].fix.estimate.likelihood);
    EXPECT_EQ(a.epochs[e].fix.estimate.valid, b.epochs[e].fix.estimate.valid);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFaultKinds, StressPerFault,
    ::testing::Values(FaultKind::kFrameTruncation, FaultKind::kFrameReorder,
                      FaultKind::kFrameTimeout, FaultKind::kObservationDrop,
                      FaultKind::kElementDeath, FaultKind::kPhaseJump,
                      FaultKind::kStaleReport, FaultKind::kDuplicateReport),
    [](const ::testing::TestParamInfo<FaultKind>& info) {
      return std::string(to_string(info.param));
    });

TEST(Stress, AllFaultsTogetherStillBounded) {
  // Every class at once at 10% — the "bad day" run. Determinism and
  // bounded degradation must hold jointly, and the ConfidenceReport
  // must admit the damage.
  const FaultPlan plan(31415, FaultRates::uniform(0.10));
  const RunResult a = run_chain(plan);
  const RunResult b = run_chain(plan);
  std::size_t degraded_epochs = 0;
  for (std::size_t e = 0; e < a.epochs.size(); ++e) {
    EXPECT_EQ(a.epochs[e].fix.confidence, b.epochs[e].fix.confidence);
    EXPECT_EQ(a.epochs[e].fix.estimate.position.x,
              b.epochs[e].fix.estimate.position.x);
    EXPECT_EQ(a.epochs[e].fix.estimate.position.y,
              b.epochs[e].fix.estimate.position.y);
    if (a.epochs[e].fix.confidence.degraded()) ++degraded_epochs;
  }
  EXPECT_GT(degraded_epochs, 0u);
  EXPECT_LE(a.median_error(), std::max(3.0 * clean_median(), 0.75));
}

/// The self-healing "worst day": every transport fault at 10% PLUS the
/// three state faults — slow calibration creep, reader reboots with a
/// phase step, and mid-write checkpoint crashes — with a synchronous
/// RecoveryCoordinator running the watchdog -> recalibration ->
/// checkpoint loop on top of the degraded chain.
struct HealingRunResult {
  RunResult run;
  dwatch::recovery::RecoveryStats stats;
  faults::FaultCounters injected;
};

HealingRunResult run_healing_chain(const FaultPlan& plan,
                                   const std::string& checkpoint_path,
                                   std::size_t num_epochs) {
  namespace recovery = dwatch::recovery;
  const sim::Scene scene = make_scene();
  core::DWatchPipeline pipe = make_pipeline(scene);
  FaultInjector injector(plan);

  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    rf::Rng rng(kSceneSeed + 100 + a);
    const rfid::RoAccessReport report =
        scene.capture_report(a, {}, rng, 0, /*first_seen_us=*/1);
    for (const rfid::TagObservation& obs : report.observations) {
      pipe.add_baseline(a, obs);
    }
  }

  recovery::RecoveryOptions ropt;
  ropt.watchdog.warmup_epochs = 2;
  ropt.watchdog.cusum_slack = 0.1;
  ropt.watchdog.cusum_threshold = 1.0;
  ropt.background = false;  // deterministic swap timing
  ropt.checkpoint_every = 1;
  ropt.recalibration_cooldown = 1;
  std::vector<core::WirelessCalibrator> calibrators;
  for (const rf::UniformLinearArray& arr : scene.deployment().arrays) {
    calibrators.emplace_back(arr.spacing(), arr.lambda());
  }
  recovery::RecoveryCoordinator coord(
      pipe, std::move(calibrators),
      recovery::CheckpointStore(checkpoint_path), ropt);

  std::vector<std::vector<std::size_t>> anchor_tags;
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    anchor_tags.push_back(harness::nearest_tags(scene, a, 4));
  }

  HealingRunResult result;
  for (std::size_t epoch = 0; epoch < num_epochs; ++epoch) {
    const rf::Vec2 truth = target_at(epoch);
    const sim::CylinderTarget targets[] = {sim::CylinderTarget::human(truth)};
    const std::uint64_t watermark = 1000 * (epoch + 1);
    pipe.begin_epoch(watermark);

    std::vector<std::vector<core::CalibrationMeasurement>> anchors(
        scene.num_arrays());
    for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
      rf::Rng rng(kSceneSeed + 1000 * (epoch + 1) + a);
      rfid::RoAccessReport report = scene.capture_report(
          a, targets, rng, static_cast<std::uint32_t>(epoch),
          /*first_seen_us=*/watermark + 10);
      injector.corrupt_report(report, epoch, a);
      anchors[a] =
          harness::anchor_measurements(scene, a, report, anchor_tags[a]);

      std::vector<std::vector<std::uint8_t>> frames;
      for (const rfid::TagObservation& obs : report.observations) {
        rfid::RoAccessReport single;
        single.message_id = static_cast<std::uint32_t>(epoch * 100 + a);
        single.observations.push_back(obs);
        frames.push_back(rfid::encode(single));
      }
      const std::size_t encoded = frames.size();
      injector.maybe_reorder(frames, epoch, a);
      rfid::LlrpStreamDecoder decoder;
      for (std::size_t f = 0; f < frames.size(); ++f) {
        const auto delivered =
            injector.filter_frame(std::move(frames[f]), epoch, a, f);
        if (delivered) decoder.feed(*delivered);
      }
      std::size_t decoded = 0;
      while (true) {
        while (const auto msg = decoder.next_report_tolerant()) {
          for (const rfid::TagObservation& obs : msg->observations) {
            (void)pipe.observe(a, obs);
            ++decoded;
          }
        }
        if (decoder.buffered_bytes() == 0) break;
        decoder.flush_incomplete();
      }
      pipe.note_reports_dropped(encoded - decoded +
                                decoder.frames_quarantined());
    }

    EpochResult er;
    er.fix = pipe.localize_with_confidence(/*best_effort=*/true);
    er.truth = truth;
    result.run.epochs.push_back(er);

    // The healing pass, with the epoch's checkpoint write subject to
    // the injector's crash fault.
    const auto crash = [&injector, epoch](std::size_t bytes)
        -> std::optional<std::size_t> {
      const auto fraction = injector.checkpoint_crash(epoch);
      if (!fraction) return std::nullopt;
      return static_cast<std::size_t>(*fraction *
                                      static_cast<double>(bytes));
    };
    for (const std::size_t a : coord.end_epoch(epoch, anchors, crash)) {
      // Re-capture the invalidated array's baselines through the same
      // degraded link (the drift/reboot state applies to them too).
      rf::Rng rng(kSceneSeed + 900'000 + 1000 * (epoch + 1) + a);
      rfid::RoAccessReport report =
          scene.capture_report(a, {}, rng, static_cast<std::uint32_t>(epoch),
                               /*first_seen_us=*/watermark + 5);
      injector.corrupt_report(report, epoch, a);
      for (const rfid::TagObservation& obs : report.observations) {
        try {
          pipe.add_baseline(a, obs);
        } catch (const std::invalid_argument&) {
          // This tag's reference read lost its complete round to the
          // faults; it re-baselines on a later recapture.
        }
      }
    }
  }
  result.stats = coord.stats();
  result.injected = injector.counters();
  return result;
}

TEST(Stress, StateFaultsWithRecoveryStillBoundedAndDeterministic) {
  FaultRates rates = FaultRates::uniform(0.10);
  rates.slow_phase_drift = 0.1;    // rad/epoch creep on every array
  rates.reboot_phase_step = 0.05;  // per (epoch, array) reboot chance
  rates.checkpoint_crash = 0.5;    // half the checkpoint writes die
  const FaultPlan plan(1234, rates);
  constexpr std::size_t kHealEpochs = 12;

  const std::string path_a = ::testing::TempDir() + "stress_heal_a.bin";
  const HealingRunResult a = run_healing_chain(plan, path_a, kHealEpochs);

  // The state faults actually happened.
  EXPECT_GT(a.injected.phase_drifts, 0u);
  EXPECT_GT(a.injected.reader_reboots, 0u);
  EXPECT_GT(a.injected.checkpoint_crashes, 0u);
  EXPECT_EQ(a.stats.checkpoint_crashes, a.injected.checkpoint_crashes);
  // ...and some checkpoints still committed between the crashes.
  EXPECT_GT(a.stats.checkpoints_written, 0u);

  // Every epoch still produced a fix, and the error stays bounded.
  // The bound is wider than the transport-only "bad day" (3x clean):
  // here the faults corrupt the RECOVERY inputs too — a reboot phase
  // step scrambles one array's manifold until the watchdog re-solves
  // it, the anchor probes and re-captured baselines pass through the
  // same 10% transport loss, and the drift keeps creeping between
  // swaps. A 2 m median in a 6x9 m room is degraded-but-functional;
  // the unhealed run (see SelfHealing.WatchdogBounds...) sits at 3-5 m.
  ASSERT_EQ(a.run.epochs.size(), kHealEpochs);
  std::string detail = "errors=[";
  for (const EpochResult& e : a.run.epochs) {
    detail += std::to_string(e.error()) + " ";
  }
  detail += "] triggered=" + std::to_string(a.stats.recalibrations_triggered) +
            " accepted=" + std::to_string(a.stats.recalibrations_accepted) +
            " reboots=" + std::to_string(a.injected.reader_reboots) +
            " drifts=" + std::to_string(a.injected.phase_drifts);
  EXPECT_LE(a.run.median_error(), std::max(4.0 * clean_median(), 2.0))
      << detail;

  // Bit-identical rerun: fixes AND recovery decisions.
  const std::string path_b = ::testing::TempDir() + "stress_heal_b.bin";
  const HealingRunResult b = run_healing_chain(plan, path_b, kHealEpochs);
  for (std::size_t e = 0; e < kHealEpochs; ++e) {
    EXPECT_EQ(a.run.epochs[e].fix.confidence, b.run.epochs[e].fix.confidence);
    EXPECT_EQ(a.run.epochs[e].fix.estimate.position.x,
              b.run.epochs[e].fix.estimate.position.x);
    EXPECT_EQ(a.run.epochs[e].fix.estimate.position.y,
              b.run.epochs[e].fix.estimate.position.y);
    EXPECT_EQ(a.run.epochs[e].fix.estimate.likelihood,
              b.run.epochs[e].fix.estimate.likelihood);
  }
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.injected.total(), b.injected.total());
}

TEST(Stress, DeadArrayStillLocalizesKOfN) {
  // Kill one array's link outright (health flag + no traffic): the two
  // survivors must still produce valid fixes, with the exclusion on the
  // record.
  const sim::Scene scene = make_scene();
  core::DWatchPipeline pipe = make_pipeline(scene);
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    rf::Rng rng(kSceneSeed + 100 + a);
    const auto report = scene.capture_report(a, {}, rng, 0, 1);
    for (const auto& obs : report.observations) pipe.add_baseline(a, obs);
  }
  pipe.set_array_health(2, false);

  const rf::Vec2 truth = target_at(1);
  const sim::CylinderTarget targets[] = {sim::CylinderTarget::human(truth)};
  pipe.begin_epoch(1000);
  for (std::size_t a = 0; a + 1 < scene.num_arrays(); ++a) {
    rf::Rng rng(kSceneSeed + 2000 + a);
    const auto report = scene.capture_report(a, targets, rng, 0, 1010);
    for (const auto& obs : report.observations) (void)pipe.observe(a, obs);
  }

  const ConfidentEstimate fix = pipe.localize_with_confidence(true);
  EXPECT_EQ(fix.confidence.arrays_excluded, 1u);
  EXPECT_TRUE(fix.confidence.degraded());
  EXPECT_LT(rf::distance(fix.estimate.position, truth), 1.5);
}

}  // namespace
}  // namespace dwatch
