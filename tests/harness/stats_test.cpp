// Tests for the experiment statistics helpers.
#include "harness/stats.hpp"

#include <gtest/gtest.h>

namespace dwatch::harness {
namespace {

TEST(Percentile, BasicQuantiles) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(v, 12.5), 1.5);  // interpolated
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 3.0}, 50.0), 3.0);
}

TEST(Percentile, Validation) {
  EXPECT_THROW((void)percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(Median, EvenCountInterpolates) {
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 4.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
}

TEST(MeanStddev, KnownValues) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_NEAR(stddev(v), 2.13809, 1e-4);  // sample stddev
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{1.0}), 0.0);
  EXPECT_THROW((void)mean(std::vector<double>{}), std::invalid_argument);
}

TEST(CdfAt, FractionBelowLevels) {
  const std::vector<double> sample{0.1, 0.2, 0.3, 0.4};
  const std::vector<double> levels{0.0, 0.2, 0.35, 1.0};
  const auto cdf = cdf_at(sample, levels);
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf[0], 0.0);
  EXPECT_DOUBLE_EQ(cdf[1], 0.5);
  EXPECT_DOUBLE_EQ(cdf[2], 0.75);
  EXPECT_DOUBLE_EQ(cdf[3], 1.0);
  EXPECT_THROW((void)cdf_at({}, levels), std::invalid_argument);
}

TEST(CdfAt, MonotoneInLevels) {
  const std::vector<double> sample{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0};
  std::vector<double> levels;
  for (double l = 0.0; l <= 10.0; l += 0.5) levels.push_back(l);
  const auto cdf = cdf_at(sample, levels);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i], cdf[i - 1]);
  }
}

}  // namespace
}  // namespace dwatch::harness
