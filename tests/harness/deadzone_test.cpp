// Tests for the deadzone/coverage-ceiling map.
#include "harness/deadzone.hpp"

#include <gtest/gtest.h>

namespace dwatch::harness {
namespace {

sim::Scene library_scene(std::size_t num_tags = 21) {
  rf::Rng rng(42);
  rf::Rng hw(7);
  sim::DeploymentOptions dopt;
  dopt.num_tags = num_tags;
  auto dep =
      sim::make_room_deployment(sim::Environment::library(), dopt, rng);
  return sim::Scene(std::move(dep), sim::CaptureOptions{}, hw);
}

TEST(Deadzone, ValidatesStep) {
  const sim::Scene scene = library_scene(5);
  EXPECT_THROW((void)compute_deadzone_map(scene, 0.0),
               std::invalid_argument);
}

TEST(Deadzone, MapDimensionsMatchRoom) {
  const sim::Scene scene = library_scene(5);
  const DeadzoneMap map = compute_deadzone_map(scene, 0.5);
  EXPECT_EQ(map.nx, 15u);  // 7.0 / 0.5 + 1
  EXPECT_EQ(map.ny, 21u);  // 10.0 / 0.5 + 1
  EXPECT_EQ(map.arrays_observing.size(), map.nx * map.ny);
  for (const auto n : map.arrays_observing) {
    EXPECT_LE(n, scene.num_arrays());
  }
}

TEST(Deadzone, CoverageFractionMonotoneInThreshold) {
  const sim::Scene scene = library_scene();
  const DeadzoneMap map = compute_deadzone_map(scene, 0.5);
  double prev = 1.0;
  for (std::size_t k = 0; k <= 4; ++k) {
    const double f = map.coverage_fraction(k);
    EXPECT_LE(f, prev + 1e-12);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(map.coverage_fraction(0), 1.0);
}

TEST(Deadzone, MoreTagsShrinkDeadzones) {
  // The paper's mitigation: cheap tags reduce the deadzone area.
  const sim::Scene sparse = library_scene(6);
  const sim::Scene dense = library_scene(40);
  const double f_sparse =
      compute_deadzone_map(sparse, 0.5).coverage_fraction(2);
  const double f_dense =
      compute_deadzone_map(dense, 0.5).coverage_fraction(2);
  EXPECT_GT(f_dense, f_sparse);
}

TEST(Deadzone, WiderTargetEasierToObserve) {
  const sim::Scene scene = library_scene(10);
  const double narrow =
      compute_deadzone_map(scene, 0.5, 0.05).coverage_fraction(2);
  const double wide =
      compute_deadzone_map(scene, 0.5, 0.30).coverage_fraction(2);
  EXPECT_GE(wide, narrow);
}

}  // namespace
}  // namespace dwatch::harness
