// Tests for the experiment runner (scene <-> pipeline glue).
#include "harness/experiment.hpp"

#include <gtest/gtest.h>

namespace dwatch::harness {
namespace {

sim::Scene small_scene() {
  rf::Rng rng(42);
  rf::Rng hw(7);
  sim::DeploymentOptions dopt;
  dopt.num_tags = 15;
  auto dep =
      sim::make_room_deployment(sim::Environment::library(), dopt, rng);
  return sim::Scene(std::move(dep), sim::CaptureOptions{}, hw);
}

TEST(ErrorMetrics, HumanAllowance) {
  EXPECT_DOUBLE_EQ(human_error({1.0, 1.0}, {1.1, 1.0}), 0.0);
  EXPECT_NEAR(human_error({1.0, 1.0}, {1.5, 1.0}), 0.32, 1e-12);
  EXPECT_DOUBLE_EQ(point_error({0.0, 0.0}, {3.0, 4.0}), 5.0);
}

TEST(NearestTags, SortedByDistance) {
  const sim::Scene scene = small_scene();
  const auto idx = nearest_tags(scene, 0, 5);
  ASSERT_EQ(idx.size(), 5u);
  const auto& dep = scene.deployment();
  double prev = 0.0;
  for (const std::size_t t : idx) {
    const double d =
        rf::distance(dep.tags[t].position, dep.arrays[0].center());
    EXPECT_GE(d, prev);
    prev = d;
  }
  // Requesting more than exist clamps.
  EXPECT_EQ(nearest_tags(scene, 0, 99).size(), dep.tags.size());
}

TEST(ExperimentRunner, CalibrationImprovesOverNothing) {
  const sim::Scene scene = small_scene();
  RunnerOptions opts;
  ExperimentRunner runner(scene, opts);
  rf::Rng rng(5);
  runner.calibrate(rng);
  ASSERT_EQ(runner.calibration_reports().size(), scene.num_arrays());
  for (const auto& report : runner.calibration_reports()) {
    // Uncalibrated offsets are uniform in [-pi, pi): mean |error| ~ pi/2.
    // The wireless calibration must do far better.
    EXPECT_LT(report.mean_error_rad, 0.5);
    EXPECT_EQ(report.estimated.size(), 8u);
    EXPECT_DOUBLE_EQ(report.estimated[0], 0.0);
  }
}

TEST(ExperimentRunner, CalibrateDisabled) {
  const sim::Scene scene = small_scene();
  RunnerOptions opts;
  opts.calibrate = false;
  ExperimentRunner runner(scene, opts);
  rf::Rng rng(5);
  runner.calibrate(rng);
  EXPECT_TRUE(runner.calibration_reports().empty());
}

TEST(ExperimentRunner, BaselinesCoverReadablePairs) {
  const sim::Scene scene = small_scene();
  RunnerOptions opts;
  ExperimentRunner runner(scene, opts);
  rf::Rng rng(6);
  const std::size_t stored = runner.collect_baselines(rng);
  std::size_t readable = 0;
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    for (std::size_t t = 0; t < scene.num_tags(); ++t) {
      if (scene.tag_readable(a, t)) ++readable;
    }
  }
  EXPECT_EQ(stored, readable);
  EXPECT_EQ(runner.pipeline().stats().baselines, stored);
}

TEST(ExperimentRunner, EndToEndFixLandsNearTarget) {
  const sim::Scene scene = small_scene();
  RunnerOptions opts;
  ExperimentRunner runner(scene, opts);
  rf::Rng rng(7);
  // Perfect calibration keeps this test about the runner plumbing.
  for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
    runner.pipeline().set_calibration(a,
                                      scene.reader(a).phase_offsets());
  }
  runner.collect_baselines(rng);
  const sim::CylinderTarget target = sim::CylinderTarget::human({3.0, 4.0});
  const std::vector<sim::CylinderTarget> targets{target};
  const auto est = runner.run_fix_best_effort(targets, rng);
  EXPECT_GT(runner.pipeline().stats().observations, 0u);
  ASSERT_GT(est.likelihood, 0.0);
  EXPECT_LT(human_error(est.position, target.position), 0.6);
}

}  // namespace
}  // namespace dwatch::harness
