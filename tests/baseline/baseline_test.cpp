// Tests for the baseline comparators: traditional-MUSIC power detection
// (the paper's straw man) and Phaser-style calibration.
#include <gtest/gtest.h>

#include "baseline/music_power_detector.hpp"
#include "baseline/phaser_calibration.hpp"
#include "core/calibration.hpp"
#include "rf/array.hpp"
#include "rf/noise.hpp"
#include "rf/snapshot.hpp"

namespace dwatch::baseline {
namespace {

rf::PropagationPath plane_path(double theta_deg, double amp) {
  rf::PropagationPath p;
  p.kind = rf::PathKind::kDirect;
  p.vertices = {{-10, 0, 1}, {0, 0, 1}};
  p.length = 10.0;
  p.aoa = rf::deg2rad(theta_deg);
  p.gain = {amp, 0.0};
  return p;
}

linalg::CMatrix synth(const std::vector<rf::PropagationPath>& paths,
                      const std::vector<double>& scale, std::uint64_t seed,
                      const std::vector<double>& offsets = {}) {
  const rf::UniformLinearArray ula({0, 0, 1}, {1, 0}, 8);
  rf::SnapshotOptions opts;
  opts.num_snapshots = 24;
  opts.noise_sigma = rf::noise_sigma_for_snr(paths, 1.0, 35.0);
  opts.port_phase_offsets = offsets;
  rf::Rng rng(seed);
  return rf::synthesize_snapshots(ula, paths, scale, opts, rng);
}

TEST(MusicPowerDetector, SpectrumHasPeaksAtPathAngles) {
  const MusicPowerDetector det(rf::kDefaultElementSpacing,
                               rf::kDefaultWavelength);
  const std::vector<rf::PropagationPath> paths{plane_path(55, 0.02),
                                               plane_path(125, 0.01)};
  const auto spectrum = det.spectrum(synth(paths, {}, 1));
  core::PeakOptions po;
  po.max_peaks = 2;
  const auto peaks = core::find_peaks(spectrum, po);
  ASSERT_EQ(peaks.size(), 2u);
}

TEST(MusicPowerDetector, MusicPeakHeightIsNotPower) {
  // The motivating defect (paper Fig. 4): MUSIC's peak amplitude does not
  // track signal power. Scale every path amplitude by 10 (power x100,
  // same noise floor): an honest power spectrum's peak would grow ~100x;
  // the normalized MUSIC spectrum barely moves.
  const MusicPowerDetector det(rf::kDefaultElementSpacing,
                               rf::kDefaultWavelength);
  const std::vector<rf::PropagationPath> weak{plane_path(55, 0.02),
                                              plane_path(125, 0.01)};
  const std::vector<rf::PropagationPath> strong{plane_path(55, 0.2),
                                                plane_path(125, 0.1)};
  // Same absolute noise for both captures.
  const rf::UniformLinearArray ula({0, 0, 1}, {1, 0}, 8);
  rf::SnapshotOptions opts;
  opts.num_snapshots = 24;
  opts.noise_sigma = 1e-4;
  rf::Rng rng1(2);
  rf::Rng rng2(2);
  const auto s_weak = det.spectrum(
      rf::synthesize_snapshots(ula, weak, {}, opts, rng1));
  const auto s_strong = det.spectrum(
      rf::synthesize_snapshots(ula, strong, {}, opts, rng2));
  const double growth = s_strong.value_at(rf::deg2rad(55)) /
                        s_weak.value_at(rf::deg2rad(55));
  EXPECT_LT(growth, 10.0);  // nowhere near the true power growth of 100x
}

TEST(MusicPowerDetector, MissesBlockageWhenAllPathsDrop) {
  // Blocking ALL paths rescales X globally; MUSIC's normalized spectrum
  // is (nearly) scale invariant, so it cannot report all three blocked
  // paths — it misses most of them (paper Fig. 4 right / Section 3.2).
  // Residual noise-driven jitter may fake out a stray drop, which is
  // itself part of the paper's complaint.
  MusicPowerOptions mopts;
  mopts.change.min_drop_fraction = 0.5;  // the paper-era operating point
  const MusicPowerDetector det(rf::kDefaultElementSpacing,
                               rf::kDefaultWavelength, mopts);
  const std::vector<rf::PropagationPath> paths{plane_path(50, 0.02),
                                               plane_path(95, 0.015),
                                               plane_path(140, 0.01)};
  std::size_t total_drops = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto base = synth(paths, {}, 100 + seed);
    const auto online = synth(paths, {0.2, 0.2, 0.2}, 200 + seed);
    total_drops += det.detect(base, online).size();
  }
  // 5 trials x 3 blocked paths = 15 true events; MUSIC sees a fraction.
  EXPECT_LT(total_drops, 8u);
}

TEST(PhaserCalibration, SinglePathIsAccurate) {
  const std::vector<double> offsets{0.0, 0.7, -1.1, 2.0,
                                    0.3, -0.6, 1.4, -2.2};
  std::vector<core::CalibrationMeasurement> meas;
  for (int k = 0; k < 4; ++k) {
    const double ang = 40.0 + 25.0 * k;
    core::CalibrationMeasurement m;
    m.snapshots = synth({plane_path(ang, 0.02)}, {}, 10 + k, offsets);
    m.los_angle = rf::deg2rad(ang);
    meas.push_back(std::move(m));
  }
  const auto est = phaser_calibrate(meas, rf::kDefaultElementSpacing,
                                    rf::kDefaultWavelength);
  EXPECT_LT(core::mean_phase_error(est, offsets), 0.03);
}

TEST(PhaserCalibration, MultipathMakesItCoarse) {
  const std::vector<double> offsets{0.0, 0.7, -1.1, 2.0,
                                    0.3, -0.6, 1.4, -2.2};
  std::vector<core::CalibrationMeasurement> meas;
  for (int k = 0; k < 6; ++k) {
    const double ang = 35.0 + 20.0 * k;
    core::CalibrationMeasurement m;
    m.snapshots = synth({plane_path(ang, 0.02),
                         plane_path(170.0 - 15.0 * k, 0.008)},
                        {}, 20 + k, offsets);
    m.los_angle = rf::deg2rad(ang);
    meas.push_back(std::move(m));
  }
  const auto est = phaser_calibrate(meas, rf::kDefaultElementSpacing,
                                    rf::kDefaultWavelength);
  // Phaser's single-path assumption breaks: error clearly above the
  // clean-LoS case (paper Fig. 9 shows ~0.1 rad for Phaser).
  EXPECT_GT(core::mean_phase_error(est, offsets), 0.04);
}

TEST(PhaserCalibration, Validation) {
  EXPECT_THROW((void)phaser_calibrate({}, 0.16, 0.32),
               std::invalid_argument);
  std::vector<core::CalibrationMeasurement> meas(2);
  meas[0].snapshots = linalg::CMatrix(8, 4);
  meas[1].snapshots = linalg::CMatrix(6, 4);
  EXPECT_THROW((void)phaser_calibrate(meas, 0.16, 0.32),
               std::invalid_argument);
}

}  // namespace
}  // namespace dwatch::baseline
