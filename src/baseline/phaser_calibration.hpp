// Phaser-style wireless phase calibration baseline (Gjengset et al.,
// MobiCom'14), adapted to the RFID setting.
//
// Phaser calibrates from over-the-air measurements assuming the direct
// path DOMINATES: the per-antenna phase of the received signal relative
// to the reference antenna is then the hardware offset plus the known
// geometric LoS phase ramp. Indoors multipath violates the assumption,
// which is exactly why this method is coarse (paper Fig. 9) — the error
// barely improves with more tags because the bias is per-tag multipath,
// not noise.
#pragma once

#include <span>
#include <vector>

#include "core/calibration.hpp"
#include "linalg/complex_matrix.hpp"

namespace dwatch::baseline {

/// Estimate offsets the Phaser way: per tag, beta_m ~ arg(mean_n x_m(n)
/// conj(x_1(n))) + omega(m, theta_LoS); tags are combined by a circular
/// mean. Offsets[0] == 0.
[[nodiscard]] std::vector<double> phaser_calibrate(
    std::span<const core::CalibrationMeasurement> measurements,
    double spacing, double lambda);

}  // namespace dwatch::baseline
