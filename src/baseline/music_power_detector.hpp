// Baseline detector: treat the traditional MUSIC spectrum's peak
// amplitude as if it were signal power.
//
// This is the straw man the paper dismantles in Section 3.2 / Fig. 4:
// the MUSIC peak height is a pseudo-probability (inverse subspace
// leakage), so blocking one path perturbs OTHER peaks (false positives)
// and blocking all paths barely moves any peak (misses). The Fig. 13
// benchmark compares this detector's detection rate against P-MUSIC's.
#pragma once

#include <vector>

#include "core/change_detector.hpp"
#include "core/music.hpp"
#include "linalg/complex_matrix.hpp"

namespace dwatch::baseline {

struct MusicPowerOptions {
  core::MusicOptions music;
  core::ChangeDetectorOptions change;
};

/// Detects "power" drops directly on B(theta).
class MusicPowerDetector {
 public:
  MusicPowerDetector(double spacing, double lambda,
                     MusicPowerOptions options = {});

  /// The baseline-vs-online MUSIC spectra comparison.
  [[nodiscard]] std::vector<core::PathDrop> detect(
      const linalg::CMatrix& baseline_snapshots,
      const linalg::CMatrix& online_snapshots) const;

  /// MUSIC spectrum normalized to unit maximum — the way the paper's
  /// Fig. 4 polar plots present it (MUSIC's absolute level is an
  /// arbitrary inverse-leakage scale, so comparisons only make sense on
  /// the normalized shape).
  [[nodiscard]] core::AngularSpectrum spectrum(
      const linalg::CMatrix& snapshots) const;

 private:
  core::MusicEstimator music_;
  core::SpectrumChangeDetector detector_;
};

}  // namespace dwatch::baseline
