#include "baseline/phaser_calibration.hpp"

#include <cmath>
#include <stdexcept>

#include "rf/array.hpp"
#include "rf/geometry.hpp"

namespace dwatch::baseline {

std::vector<double> phaser_calibrate(
    std::span<const core::CalibrationMeasurement> measurements,
    double spacing, double lambda) {
  if (measurements.empty()) {
    throw std::invalid_argument("phaser_calibrate: no measurements");
  }
  const std::size_t m = measurements.front().snapshots.rows();
  if (m < 2) {
    throw std::invalid_argument("phaser_calibrate: need >= 2 antennas");
  }

  // Circular accumulation across tags.
  std::vector<linalg::Complex> acc(m, linalg::Complex{});
  for (const auto& meas : measurements) {
    const linalg::CMatrix& x = meas.snapshots;
    if (x.rows() != m) {
      throw std::invalid_argument("phaser_calibrate: antenna mismatch");
    }
    for (std::size_t ant = 1; ant < m; ++ant) {
      // mean_n x_m(n) conj(x_1(n)) — relative phase vs reference antenna.
      linalg::Complex cross{};
      for (std::size_t n = 0; n < x.cols(); ++n) {
        cross += x(ant, n) * std::conj(x(0, n));
      }
      // Remove the geometric LoS ramp (the one Phaser assumes dominates):
      // the direct path contributes e^{-j omega(ant+1, theta_LoS)}.
      const double geo = rf::steering_phase(ant + 1, meas.los_angle, spacing,
                                            lambda);
      acc[ant] += cross * std::polar(1.0, geo);
    }
  }

  std::vector<double> offsets(m, 0.0);
  for (std::size_t ant = 1; ant < m; ++ant) {
    offsets[ant] = std::arg(acc[ant]);
  }
  return offsets;
}

}  // namespace dwatch::baseline
