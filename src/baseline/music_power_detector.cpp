#include "baseline/music_power_detector.hpp"

namespace dwatch::baseline {

MusicPowerDetector::MusicPowerDetector(double spacing, double lambda,
                                       MusicPowerOptions options)
    : music_(spacing, lambda, options.music), detector_(options.change) {}

core::AngularSpectrum MusicPowerDetector::spectrum(
    const linalg::CMatrix& snapshots) const {
  core::AngularSpectrum b = music_.estimate(snapshots).spectrum;
  const double peak = b.max_value();
  if (peak > 0.0) b *= 1.0 / peak;
  return b;
}

std::vector<core::PathDrop> MusicPowerDetector::detect(
    const linalg::CMatrix& baseline_snapshots,
    const linalg::CMatrix& online_snapshots) const {
  return detector_.detect(spectrum(baseline_snapshots),
                          spectrum(online_snapshots));
}

}  // namespace dwatch::baseline
