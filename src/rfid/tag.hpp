// Passive UHF tag model (Alien ALN-9634-class).
//
// A passive tag has no battery; it backscatters only when the reader's
// forward link delivers at least its turn-on sensitivity. The forward
// link budget therefore determines read range (paper: ~3 m with the small
// ANS-900 antennas, ~12 m with the Q900F-900).
#pragma once

#include <cstdint>

#include "rf/geometry.hpp"
#include "rfid/epc.hpp"

namespace dwatch::rfid {

/// Electrical parameters of a passive tag.
struct TagProfile {
  /// Minimum incident power to energize the chip [dBm]. Monza-4-class
  /// chips sit near -17..-20 dBm.
  double sensitivity_dbm = -18.0;
  /// Backscatter modulation loss [dB]: how much weaker the reflected
  /// signal is than the incident one.
  double backscatter_loss_db = 6.0;
};

/// One deployed tag: identity + pose + electrical profile.
struct Tag {
  Epc96 epc;
  rf::Vec3 position;
  TagProfile profile;

  /// Convenience constructor used by deployments.
  [[nodiscard]] static Tag at(std::uint32_t index, rf::Vec3 position,
                              TagProfile profile = {}) {
    return Tag{Epc96::for_tag_index(index), position, profile};
  }

  /// True iff `incident_dbm` forward power turns the chip on.
  [[nodiscard]] bool energized(double incident_dbm) const noexcept {
    return incident_dbm >= profile.sensitivity_dbm;
  }
};

}  // namespace dwatch::rfid
