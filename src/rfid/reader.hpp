// COTS RFID reader model (Impinj Speedway R420-class).
//
// What the algorithms care about:
//  * each RF chain applies a RANDOM PHASE OFFSET to its measurements,
//    redrawn at every power cycle (paper Fig. 3: -85.9deg..176deg across
//    16 ports) — this is the impairment the wireless calibration removes;
//  * an antenna hub time-multiplexes one port across the 8 ULA elements
//    (~200 us per element), so one "snapshot" column is really 8
//    sequential narrowband phase measurements;
//  * the forward link budget (tx power + antenna gain) decides which tags
//    energize at all.
#pragma once

#include <cstdint>
#include <vector>

#include "rf/constants.hpp"
#include "rf/noise.hpp"

namespace dwatch::rfid {

/// Reader + antenna configuration.
struct ReaderConfig {
  std::uint32_t reader_id = 0;
  std::size_t num_rf_ports = 4;     ///< R420 has 4 ports
  std::size_t hub_elements = 8;     ///< ULA elements behind the hub
  double element_slot_us = 200.0;   ///< hub TDM dwell per element
  double report_interval_s = 0.1;   ///< paper uses 0.1 s transmissions
  double tx_power_dbm = 31.5;       ///< conducted power + cable losses
  double antenna_gain_dbi = 6.0;    ///< per-element gain
  double carrier_hz = rf::kDefaultCarrierHz;
};

/// One reader with per-element random phase offsets.
class Reader {
 public:
  /// Draws the initial per-element offsets from `rng` (uniform [-pi,pi)).
  Reader(ReaderConfig config, rf::Rng& rng);

  [[nodiscard]] const ReaderConfig& config() const noexcept { return config_; }

  /// Current per-element phase offsets beta_m [rad]. beta_1 is NOT forced
  /// to zero — the paper's Gamma is expressed relative to antenna 1, so
  /// use relative_phase_offsets() when comparing to a calibration result.
  [[nodiscard]] const std::vector<double>& phase_offsets() const noexcept {
    return phase_offsets_;
  }

  /// Offsets relative to element 1 (Delta beta_{m,1} = beta_m - beta_1,
  /// wrapped to [-pi, pi)); element 0 of the result is always 0.
  [[nodiscard]] std::vector<double> relative_phase_offsets() const;

  /// Simulate a power cycle: redraw all offsets (the reason calibration
  /// is a once-per-power-cycle step in the paper's workflow).
  void power_cycle(rf::Rng& rng);

  /// Forward-link incident power [dBm] at free-space distance d [m].
  /// Throws std::invalid_argument for d <= 0.
  [[nodiscard]] double forward_power_dbm(double distance_m) const;

  /// Max free-space distance at which a tag of given sensitivity turns on.
  [[nodiscard]] double read_range_m(double tag_sensitivity_dbm) const;

  /// Time to sweep all hub elements once [us].
  [[nodiscard]] double hub_sweep_us() const noexcept {
    return config_.element_slot_us *
           static_cast<double>(config_.hub_elements);
  }

 private:
  ReaderConfig config_;
  std::vector<double> phase_offsets_;
};

}  // namespace dwatch::rfid
