#include "rfid/crc16.hpp"

namespace dwatch::rfid {

std::uint16_t crc16_gen2(std::span<const std::uint8_t> data) {
  std::uint16_t crc = 0xFFFF;
  for (const std::uint8_t byte : data) {
    crc ^= static_cast<std::uint16_t>(byte) << 8;
    for (int bit = 0; bit < 8; ++bit) {
      if (crc & 0x8000) {
        crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
      } else {
        crc = static_cast<std::uint16_t>(crc << 1);
      }
    }
  }
  return static_cast<std::uint16_t>(~crc);
}

bool crc16_gen2_check(std::span<const std::uint8_t> data_with_crc) {
  if (data_with_crc.size() < 2) return false;
  // Recompute over payload and compare against the trailing CRC; this is
  // equivalent to the residue check but clearer.
  const std::size_t n = data_with_crc.size() - 2;
  const std::uint16_t expect = crc16_gen2(data_with_crc.subspan(0, n));
  const std::uint16_t got =
      static_cast<std::uint16_t>((data_with_crc[n] << 8) | data_with_crc[n + 1]);
  return expect == got;
}

}  // namespace dwatch::rfid
