// Bounds-checked big-endian byte stream primitives for the LLRP-lite
// codec. Network byte order throughout (LLRP is a big-endian TLV
// protocol). A short or corrupt buffer raises DecodeError rather than
// reading out of bounds.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace dwatch::rfid {

/// Raised by ByteReader on truncated/invalid input.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only big-endian byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void i16(std::int16_t v) { u16(static_cast<std::uint16_t>(v)); }
  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Overwrite a previously written u32 at `offset` (for back-patching
  /// message/parameter lengths). Throws std::out_of_range.
  void patch_u32(std::size_t offset, std::uint32_t v);
  /// Overwrite a previously written u16 at `offset`.
  void patch_u16(std::size_t offset, std::uint16_t v);

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Sequential big-endian reader over a borrowed buffer.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int16_t i16() { return static_cast<std::int16_t>(u16()); }

  /// Read exactly n bytes; throws DecodeError if fewer remain.
  [[nodiscard]] std::span<const std::uint8_t> bytes(std::size_t n);

  /// Skip n bytes; throws DecodeError if fewer remain.
  void skip(std::size_t n);

 private:
  void require(std::size_t n) const;
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace dwatch::rfid
