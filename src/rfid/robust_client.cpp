#include "rfid/robust_client.hpp"

#include <cmath>
#include <utility>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "rfid/bytes.hpp"

namespace dwatch::rfid {

namespace {

/// Process-wide transport counters (one set shared by every client —
/// Prometheus counters aggregate across connections by design; per-fix
/// attribution flows through TransportStats -> note_transport instead).
struct TransportCounters {
  obs::Counter& requests;
  obs::Counter& retries;
  obs::Counter& timeouts;
  obs::Counter& reconnects;
  obs::Counter& giveups;

  static TransportCounters& get() {
    auto& reg = obs::MetricsRegistry::global();
    static TransportCounters counters{
        reg.counter("dwatch_transport_requests_total"),
        reg.counter("dwatch_transport_retries_total"),
        reg.counter("dwatch_transport_timeouts_total"),
        reg.counter("dwatch_transport_reconnects_total"),
        reg.counter("dwatch_transport_giveups_total")};
    return counters;
  }
};

}  // namespace

RobustSessionClient::RobustSessionClient(Transport transport,
                                         RetryPolicy policy,
                                         ReconnectHook reconnect)
    : transport_(std::move(transport)),
      policy_(policy),
      reconnect_(std::move(reconnect)) {}

std::uint64_t RobustSessionClient::backoff_us(std::size_t retry_index) const {
  double b = static_cast<double>(policy_.base_backoff_us);
  for (std::size_t i = 0; i < retry_index; ++i) {
    b *= policy_.backoff_multiplier;
  }
  const auto capped = std::min(b, static_cast<double>(policy_.max_backoff_us));
  return static_cast<std::uint64_t>(capped);
}

std::optional<std::vector<std::uint8_t>> RobustSessionClient::send_with_retry(
    const std::vector<std::uint8_t>& request_bytes) {
  ++stats_.requests;
  if (obs::enabled()) TransportCounters::get().requests.inc();
  for (std::size_t attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      stats_.virtual_time_us += backoff_us(attempt - 1);
      if (obs::enabled()) {
        TransportCounters::get().retries.inc();
        obs::EventLog::global().emit(
            obs::Event("transport.retry")
                .field("attempt", attempt + 1)
                .field("backoff_us", backoff_us(attempt - 1)));
      }
    }
    ++stats_.attempts;
    auto response = transport_(request_bytes);
    if (response.has_value()) {
      stats_.virtual_time_us += policy_.nominal_rtt_us;
      return response;
    }
    ++stats_.timeouts;
    stats_.virtual_time_us += policy_.request_timeout_us;
    if (obs::enabled()) {
      TransportCounters::get().timeouts.inc();
      obs::EventLog::global().emit(
          obs::Event("transport.timeout")
              .field("attempt", attempt + 1)
              .field("timeout_us", policy_.request_timeout_us));
    }
  }
  ++stats_.giveups;
  if (obs::enabled()) {
    TransportCounters::get().giveups.inc();
    obs::EventLog::global().emit(
        obs::Event("transport.giveup")
            .field("attempts", policy_.max_attempts));
  }
  return std::nullopt;
}

std::optional<ControlResponse> RobustSessionClient::request(
    ControlType type, const RoSpec& rospec) {
  const auto bytes =
      encode_control_request(type, next_message_id_++, rospec);
  const auto response = send_with_retry(bytes);
  if (!response) return std::nullopt;
  try {
    return decode_control_response(*response);
  } catch (const DecodeError&) {
    // Truncated/garbled response: indistinguishable from a loss at the
    // protocol level; the caller treats it like a timeout.
    return std::nullopt;
  }
}

bool RobustSessionClient::try_handshake(const RoSpec& rospec) {
  // Capabilities: the response is its own shape, not a ControlResponse.
  const auto caps_bytes = send_with_retry(encode_control_request(
      ControlType::kGetReaderCapabilities, next_message_id_++));
  if (!caps_bytes) return false;
  try {
    (void)decode_capabilities_response(*caps_bytes);
  } catch (const DecodeError&) {
    return false;
  }

  for (const ControlType step :
       {ControlType::kAddRospec, ControlType::kEnableRospec,
        ControlType::kStartRospec}) {
    const auto resp = request(step, rospec);
    if (!resp || resp->status != LlrpStatus::kSuccess) {
      // Either the link ate every attempt, or the session state has
      // desynchronized (e.g. the reader applied an ADD whose response
      // was lost, so our retry got kWrongState). Both mean this
      // connection attempt is unsalvageable.
      return false;
    }
  }
  return true;
}

bool RobustSessionClient::connect(const RoSpec& rospec) {
  if (try_handshake(rospec)) return true;
  if (!reconnect_) return false;
  for (std::size_t cycle = 0; cycle < policy_.max_reconnects; ++cycle) {
    ++stats_.reconnects;
    // Reconnect backoff mirrors the per-request schedule, one notch up.
    stats_.virtual_time_us += backoff_us(cycle + 1);
    if (obs::enabled()) {
      TransportCounters::get().reconnects.inc();
      obs::EventLog::global().emit(obs::Event("transport.reconnect")
                                       .field("cycle", cycle + 1)
                                       .field("max", policy_.max_reconnects));
    }
    reconnect_();
    // The new connection's reader restarts its sequence counters; the
    // old connection's dedupe quarantine would mass-reject its replayed
    // reports as duplicates (see SnapshotAssembler::on_reader_reset).
    if (assembler_ != nullptr) assembler_->on_reader_reset();
    if (try_handshake(rospec)) return true;
  }
  return false;
}

void RobustSessionClient::deliver_report(const RoAccessReport& report) {
  ++reports_delivered_;
  if (report_sink_) report_sink_(reader_id_, report);
}

}  // namespace dwatch::rfid
