#include "rfid/report_stream.hpp"

#include <stdexcept>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dwatch::rfid {

SnapshotAssembler::SnapshotAssembler(std::size_t num_elements,
                                     std::size_t rounds_needed)
    : num_elements_(num_elements), rounds_needed_(rounds_needed) {
  if (num_elements_ == 0 || rounds_needed_ == 0) {
    throw std::invalid_argument("SnapshotAssembler: zero dimension");
  }
}

namespace {

/// FNV-1a over the fields that identify a report on the wire: a
/// retransmitted duplicate matches in ALL of them. Content is included
/// alongside (antenna, timestamp) so distinct captures that share a
/// zero timestamp are not falsely quarantined.
std::uint64_t report_fingerprint(const TagObservation& obs) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  };
  mix(obs.antenna_port);
  mix(obs.first_seen_us);
  for (const PhaseSample& s : obs.samples) {
    mix((static_cast<std::uint64_t>(s.element_id) << 48) |
        (static_cast<std::uint64_t>(s.round) << 16) | s.phase_q);
    mix(static_cast<std::uint16_t>(s.rssi_q));
  }
  return h;
}

}  // namespace

bool SnapshotAssembler::ingest(const TagObservation& obs) {
  PerTag& tag = tags_[obs.epc];
  if (!tag.seen_reports.insert(report_fingerprint(obs)).second) {
    ++stats_.duplicate_reports_quarantined;
    if (dwatch::obs::enabled()) {
      dwatch::obs::MetricsRegistry::global()
          .counter("dwatch_reports_duplicate_quarantined_total")
          .inc();
      dwatch::obs::EventLog::global().emit(
          dwatch::obs::Event("report_stream.duplicate_quarantined")
              .field_bytes("epc", obs.epc.bytes())
              .field("antenna", obs.antenna_port)
              .field("first_seen_us", obs.first_seen_us)
              .field("samples", obs.samples.size()));
    }
    return false;
  }
  ++stats_.reports_accepted;
  for (const PhaseSample& s : obs.samples) {
    if (s.element_id == 0 || s.element_id > num_elements_) {
      ++tag.dropped;
      ++stats_.samples_quarantined;
      continue;
    }
    RoundBuffer& rb = tag.rounds[s.round];
    if (rb.values.empty()) {
      rb.values.resize(num_elements_);
      rb.present.assign(num_elements_, false);
    }
    const std::size_t idx = s.element_id - 1;
    if (rb.present[idx]) {
      ++tag.dropped;  // duplicate (retransmission); keep first
      ++stats_.samples_quarantined;
      continue;
    }
    rb.values[idx] = s.as_complex();
    rb.present[idx] = true;
    ++rb.count;
  }
  return true;
}

std::size_t SnapshotAssembler::ingest(const RoAccessReport& report) {
  DWATCH_SPAN("report_stream.ingest");
  std::size_t accepted = 0;
  for (const TagObservation& obs : report.observations) {
    if (ingest(obs)) ++accepted;
  }
  return accepted;
}

std::size_t SnapshotAssembler::complete_rounds(const PerTag& t) const {
  std::size_t n = 0;
  for (const auto& [round, rb] : t.rounds) {
    if (rb.count == num_elements_) ++n;
  }
  return n;
}

std::vector<Epc96> SnapshotAssembler::ready_tags() const {
  std::vector<Epc96> out;
  for (const auto& [epc, tag] : tags_) {
    if (complete_rounds(tag) >= rounds_needed_) out.push_back(epc);
  }
  return out;
}

std::optional<TagSnapshots> SnapshotAssembler::take(const Epc96& epc) {
  const auto it = tags_.find(epc);
  if (it == tags_.end()) return std::nullopt;
  PerTag& tag = it->second;
  if (complete_rounds(tag) < rounds_needed_) return std::nullopt;

  TagSnapshots out;
  out.epc = epc;
  out.x = linalg::CMatrix(num_elements_, rounds_needed_);
  std::size_t col = 0;
  auto rit = tag.rounds.begin();
  while (rit != tag.rounds.end() && col < rounds_needed_) {
    if (rit->second.count == num_elements_) {
      for (std::size_t m = 0; m < num_elements_; ++m) {
        out.x(m, col) = rit->second.values[m];
      }
      ++col;
      rit = tag.rounds.erase(rit);
    } else {
      out.samples_dropped += rit->second.count;
      rit = tag.rounds.erase(rit);  // stale incomplete round
    }
  }
  out.rounds_used = col;
  out.samples_dropped += tag.dropped;
  tag.dropped = 0;
  return out;
}

std::vector<TagSnapshots> SnapshotAssembler::take_all_ready() {
  std::vector<TagSnapshots> out;
  for (const Epc96& epc : ready_tags()) {
    if (auto snap = take(epc)) out.push_back(std::move(*snap));
  }
  return out;
}

void SnapshotAssembler::clear() { tags_.clear(); }

void SnapshotAssembler::on_reader_reset() {
  // Everything per-tag is keyed to the dead connection: the dedupe
  // fingerprints reference timestamps/rounds the rebooted reader will
  // reuse, and the partial rounds would merge with unrelated same-
  // numbered rounds from the new session. Lifetime stats survive.
  tags_.clear();
  if (dwatch::obs::enabled()) {
    dwatch::obs::MetricsRegistry::global()
        .counter("dwatch_reports_quarantine_resets_total")
        .inc();
    dwatch::obs::EventLog::global().emit(
        dwatch::obs::Event("report_stream.quarantine_reset"));
  }
}

std::vector<QuarantineEntry> SnapshotAssembler::quarantine_fingerprints()
    const {
  std::vector<QuarantineEntry> out;
  for (const auto& [epc, tag] : tags_) {
    if (tag.seen_reports.empty()) continue;
    QuarantineEntry entry;
    entry.epc = epc;
    entry.fingerprints.assign(tag.seen_reports.begin(),
                              tag.seen_reports.end());
    out.push_back(std::move(entry));
  }
  return out;
}

void SnapshotAssembler::restore_quarantine(
    std::span<const QuarantineEntry> entries) {
  for (auto& [epc, tag] : tags_) tag.seen_reports.clear();
  for (const QuarantineEntry& entry : entries) {
    tags_[entry.epc].seen_reports.insert(entry.fingerprints.begin(),
                                         entry.fingerprints.end());
  }
}

}  // namespace dwatch::rfid
