#include "rfid/gen2.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dwatch::rfid {

InventoryResult run_inventory(std::size_t num_tags, const Gen2Config& config,
                              rf::Rng& rng) {
  if (num_tags == 0) {
    throw std::invalid_argument("run_inventory: num_tags == 0");
  }
  if (config.min_q > config.max_q || config.max_q > 15) {
    throw std::invalid_argument("run_inventory: bad Q bounds");
  }

  InventoryResult result;
  std::vector<std::uint32_t> pending(num_tags);
  for (std::uint32_t i = 0; i < num_tags; ++i) pending[i] = i;

  double qfp = static_cast<double>(config.initial_q);
  double clock_us = 0.0;

  while (!pending.empty()) {
    if (result.rounds >= config.max_rounds) {
      throw std::runtime_error("run_inventory: exceeded max_rounds");
    }
    const auto q = static_cast<std::uint8_t>(std::clamp(
        std::lround(qfp), static_cast<long>(config.min_q),
        static_cast<long>(config.max_q)));
    const std::size_t num_slots = std::size_t{1} << q;
    clock_us += config.timing.query_us;

    // Each pending tag picks a slot uniformly in [0, 2^Q).
    std::vector<std::vector<std::uint32_t>> slots(num_slots);
    for (const std::uint32_t tag : pending) {
      const auto s = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(num_slots) - 1));
      slots[s].push_back(tag);
    }

    std::vector<std::uint32_t> next_pending;
    for (std::size_t s = 0; s < num_slots; ++s) {
      ++result.total_slots;
      if (slots[s].empty()) {
        ++result.empty_slots;
        clock_us += config.timing.empty_slot_us;
        qfp = std::max(qfp - config.c, static_cast<double>(config.min_q));
      } else if (slots[s].size() == 1) {
        clock_us += config.timing.singulation_us;
        result.reads.push_back(SingulationEvent{
            .tag_index = slots[s][0],
            .round = result.rounds,
            .slot = s,
            .timestamp_us = clock_us,
        });
      } else {
        ++result.collision_slots;
        clock_us += config.timing.collision_slot_us;
        qfp = std::min(qfp + config.c, static_cast<double>(config.max_q));
        next_pending.insert(next_pending.end(), slots[s].begin(),
                            slots[s].end());
      }
    }
    pending = std::move(next_pending);
    ++result.rounds;
  }

  result.duration_us = clock_us;
  return result;
}

double estimate_read_rate(std::size_t num_tags, const Gen2Config& config,
                          std::size_t trials, rf::Rng& rng) {
  if (trials == 0) {
    throw std::invalid_argument("estimate_read_rate: trials == 0");
  }
  double total_us = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    total_us += run_inventory(num_tags, config, rng).duration_us;
  }
  const double mean_s = total_us / static_cast<double>(trials) / 1e6;
  return static_cast<double>(num_tags) / mean_s;
}

}  // namespace dwatch::rfid
