#include "rfid/llrp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/trace.hpp"
#include "rf/constants.hpp"
#include "rf/geometry.hpp"

namespace dwatch::rfid {

namespace {

constexpr std::size_t kHeaderBytes = 10;  // ver/type u16, length u32, id u32

void write_header(ByteWriter& w, MessageType type, std::uint32_t message_id) {
  // 3 reserved bits, 3 version bits, 10 type bits.
  const auto type_val = static_cast<std::uint16_t>(type);
  const std::uint16_t first =
      static_cast<std::uint16_t>((kLlrpVersion & 0x7) << 10) |
      (type_val & 0x3FF);
  w.u16(first);
  w.u32(0);  // length, patched later
  w.u32(message_id);
}

void finish_message(ByteWriter& w) {
  w.patch_u32(2, static_cast<std::uint32_t>(w.size()));
}

/// Begin a TLV parameter; returns the offset of its length field.
std::size_t begin_param(ByteWriter& w, ParameterType type) {
  w.u16(static_cast<std::uint16_t>(type));
  const std::size_t len_at = w.size();
  w.u16(0);
  return len_at;
}

void end_param(ByteWriter& w, std::size_t len_at) {
  // Length counts from the type field (len_at - 2).
  w.patch_u16(len_at, static_cast<std::uint16_t>(w.size() - (len_at - 2)));
}

struct ParamView {
  ParameterType type;
  std::span<const std::uint8_t> body;
};

/// Read one TLV parameter from `r`.
ParamView read_param(ByteReader& r) {
  const std::uint16_t type = r.u16();
  const std::uint16_t len = r.u16();
  if (len < 4) throw DecodeError("llrp: parameter length < 4");
  auto body = r.bytes(len - 4);
  return {static_cast<ParameterType>(type), body};
}

}  // namespace

std::uint16_t quantize_phase(double phase_rad) noexcept {
  const double wrapped = rf::wrap_two_pi(phase_rad);
  const double scaled = wrapped / rf::kTwoPi * 65536.0;
  const auto q = static_cast<std::uint32_t>(std::lround(scaled)) & 0xFFFF;
  return static_cast<std::uint16_t>(q);
}

double dequantize_phase(std::uint16_t q) noexcept {
  return static_cast<double>(q) / 65536.0 * rf::kTwoPi;
}

std::int16_t quantize_rssi(double amplitude) noexcept {
  if (!(amplitude > 0.0)) return std::numeric_limits<std::int16_t>::min();
  const double centi_db = 100.0 * 20.0 * std::log10(amplitude);
  const double clamped =
      std::clamp(centi_db, -32767.0, 32767.0);
  return static_cast<std::int16_t>(std::lround(clamped));
}

double dequantize_rssi(std::int16_t centi_db) noexcept {
  if (centi_db == std::numeric_limits<std::int16_t>::min()) return 0.0;
  return std::pow(10.0, static_cast<double>(centi_db) / 100.0 / 20.0);
}

std::pair<std::uint16_t, std::int16_t> quantize_sample(
    linalg::Complex x) noexcept {
  return {quantize_phase(std::arg(x)), quantize_rssi(std::abs(x))};
}

linalg::Complex dequantize_sample(std::uint16_t phase_q,
                                  std::int16_t rssi_q) noexcept {
  return std::polar(dequantize_rssi(rssi_q), dequantize_phase(phase_q));
}

std::vector<std::uint8_t> encode(const RoAccessReport& msg) {
  ByteWriter w;
  write_header(w, MessageType::kRoAccessReport, msg.message_id);
  for (const auto& obs : msg.observations) {
    const std::size_t trd = begin_param(w, ParameterType::kTagReportData);

    const std::size_t epc = begin_param(w, ParameterType::kEpcData);
    w.bytes(obs.epc.bytes());
    end_param(w, epc);

    const std::size_t ant = begin_param(w, ParameterType::kAntennaId);
    w.u16(obs.antenna_port);
    end_param(w, ant);

    const std::size_t ts =
        begin_param(w, ParameterType::kFirstSeenTimestampUtc);
    w.u64(obs.first_seen_us);
    end_param(w, ts);

    for (const auto& s : obs.samples) {
      const std::size_t ph = begin_param(w, ParameterType::kCustomPhaseReport);
      w.u16(s.element_id);
      w.u32(s.round);
      w.u16(s.phase_q);
      w.i16(s.rssi_q);
      end_param(w, ph);
    }

    end_param(w, trd);
  }
  finish_message(w);
  return std::move(w).take();
}

std::vector<std::uint8_t> encode(const Keepalive& msg) {
  ByteWriter w;
  write_header(w, MessageType::kKeepalive, msg.message_id);
  finish_message(w);
  return std::move(w).take();
}

std::vector<std::uint8_t> encode(const ReaderEventNotification& msg) {
  ByteWriter w;
  write_header(w, MessageType::kReaderEventNotification, msg.message_id);
  w.u64(msg.timestamp_us);
  w.u16(msg.event_code);
  finish_message(w);
  return std::move(w).take();
}

std::optional<MessageHeader> peek_header(
    std::span<const std::uint8_t> buffer) {
  if (buffer.size() < kHeaderBytes) return std::nullopt;
  ByteReader r(buffer);
  const std::uint16_t first = r.u16();
  const std::uint8_t version = (first >> 10) & 0x7;
  if (version != kLlrpVersion) {
    throw DecodeError("llrp: unsupported protocol version");
  }
  MessageHeader h;
  h.type = static_cast<MessageType>(first & 0x3FF);
  h.length = r.u32();
  h.message_id = r.u32();
  if (h.length < kHeaderBytes) {
    throw DecodeError("llrp: message length smaller than header");
  }
  return h;
}

namespace {

TagObservation decode_tag_report_data(std::span<const std::uint8_t> body) {
  TagObservation obs;
  ByteReader r(body);
  bool have_epc = false;
  while (!r.done()) {
    const ParamView p = read_param(r);
    ByteReader pr(p.body);
    switch (p.type) {
      case ParameterType::kEpcData: {
        if (p.body.size() != Epc96::kBytes) {
          throw DecodeError("llrp: bad EPCData length");
        }
        std::array<std::uint8_t, Epc96::kBytes> raw{};
        const auto span = pr.bytes(Epc96::kBytes);
        std::copy(span.begin(), span.end(), raw.begin());
        obs.epc = Epc96(raw);
        have_epc = true;
        break;
      }
      case ParameterType::kAntennaId:
        obs.antenna_port = pr.u16();
        break;
      case ParameterType::kFirstSeenTimestampUtc:
        obs.first_seen_us = pr.u64();
        break;
      case ParameterType::kCustomPhaseReport: {
        PhaseSample s;
        s.element_id = pr.u16();
        s.round = pr.u32();
        s.phase_q = pr.u16();
        s.rssi_q = pr.i16();
        obs.samples.push_back(s);
        break;
      }
      default:
        // Unknown parameter: skip (forward compatibility).
        break;
    }
  }
  if (!have_epc) throw DecodeError("llrp: TagReportData without EPCData");
  return obs;
}

void check_type(const MessageHeader& h, MessageType expect,
                std::size_t buffer_size) {
  if (h.type != expect) throw DecodeError("llrp: unexpected message type");
  if (h.length != buffer_size) {
    throw DecodeError("llrp: message length mismatch");
  }
}

}  // namespace

RoAccessReport decode_ro_access_report(std::span<const std::uint8_t> buffer) {
  DWATCH_SPAN("llrp.decode_report");
  const auto h = peek_header(buffer);
  if (!h) throw DecodeError("llrp: truncated header");
  check_type(*h, MessageType::kRoAccessReport, buffer.size());
  RoAccessReport msg;
  msg.message_id = h->message_id;
  ByteReader r(buffer.subspan(kHeaderBytes));
  while (!r.done()) {
    const ParamView p = read_param(r);
    if (p.type == ParameterType::kTagReportData) {
      msg.observations.push_back(decode_tag_report_data(p.body));
    }
  }
  return msg;
}

Keepalive decode_keepalive(std::span<const std::uint8_t> buffer) {
  const auto h = peek_header(buffer);
  if (!h) throw DecodeError("llrp: truncated header");
  check_type(*h, MessageType::kKeepalive, buffer.size());
  return Keepalive{h->message_id};
}

ReaderEventNotification decode_reader_event_notification(
    std::span<const std::uint8_t> buffer) {
  const auto h = peek_header(buffer);
  if (!h) throw DecodeError("llrp: truncated header");
  check_type(*h, MessageType::kReaderEventNotification, buffer.size());
  ReaderEventNotification msg;
  msg.message_id = h->message_id;
  ByteReader r(buffer.subspan(kHeaderBytes));
  msg.timestamp_us = r.u64();
  msg.event_code = r.u16();
  return msg;
}

void LlrpStreamDecoder::feed(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<RoAccessReport> LlrpStreamDecoder::next_report() {
  while (true) {
    const auto h = peek_header(buffer_);
    if (!h || buffer_.size() < h->length) return std::nullopt;
    const std::span<const std::uint8_t> frame(buffer_.data(), h->length);
    std::optional<RoAccessReport> out;
    switch (h->type) {
      case MessageType::kRoAccessReport:
        out = decode_ro_access_report(frame);
        break;
      case MessageType::kKeepalive:
        ++keepalives_;
        break;
      case MessageType::kReaderEventNotification:
        ++events_;
        break;
    }
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(h->length));
    if (out) return out;
    if (buffer_.empty()) return std::nullopt;
  }
}

std::optional<RoAccessReport> LlrpStreamDecoder::next_report_tolerant() {
  // Largest frame a reader could plausibly emit. A misaligned stream can
  // read a stale length field as gigabytes; without this bound the
  // decoder would wait forever for a tail that never arrives instead of
  // quarantining and resynchronizing.
  constexpr std::uint32_t kMaxFrameBytes = 1 << 20;
  while (true) {
    try {
      const auto h = peek_header(buffer_);  // throws on a bad version
      if (h) {
        const bool known_type = h->type == MessageType::kRoAccessReport ||
                                h->type == MessageType::kKeepalive ||
                                h->type == MessageType::kReaderEventNotification;
        if (!known_type || h->length > kMaxFrameBytes) {
          throw DecodeError("llrp: implausible frame header");
        }
      }
      return next_report();
    } catch (const DecodeError&) {
      // The frame at the head of the buffer is corrupt (truncated, or
      // its declared length swallowed the start of the next message).
      // Quarantine it: skip one byte, then scan forward to the next
      // plausible header and try again.
      ++quarantined_;
      if (!buffer_.empty()) buffer_.erase(buffer_.begin());
      resync();
      if (buffer_.empty()) return std::nullopt;
    }
  }
}

void LlrpStreamDecoder::resync() {
  while (buffer_.size() >= 2) {
    const auto first = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(buffer_[0]) << 8) | buffer_[1]);
    const std::uint8_t version = (first >> 10) & 0x7;
    const std::uint16_t type = first & 0x3FF;
    const bool known_type =
        type == static_cast<std::uint16_t>(MessageType::kRoAccessReport) ||
        type == static_cast<std::uint16_t>(MessageType::kKeepalive) ||
        type == static_cast<std::uint16_t>(
                    MessageType::kReaderEventNotification);
    if (version == kLlrpVersion && known_type) return;
    buffer_.erase(buffer_.begin());
  }
  buffer_.clear();
}

void LlrpStreamDecoder::flush_incomplete() {
  if (buffer_.empty()) return;
  // The frame at the head is dead — the caller knows its tail will
  // never arrive. A misaligned head can masquerade as a plausible
  // header whose bogus length swallows real messages behind it, so do
  // not just clear: drop the head and salvage the next COMPLETE frame
  // if the remaining bytes hold one. Heads that stay incomplete under
  // the no-more-bytes assumption are dead too.
  ++quarantined_;
  while (!buffer_.empty()) {
    buffer_.erase(buffer_.begin());
    resync();  // leaves an empty buffer or a plausible 2-byte header
    if (buffer_.empty()) return;
    const auto h = peek_header(buffer_);
    if (!h) {
      // Fewer than header-size bytes: can never complete. Discard.
      buffer_.clear();
      return;
    }
    if (buffer_.size() >= h->length) return;  // complete frame salvaged
  }
}

}  // namespace dwatch::rfid
