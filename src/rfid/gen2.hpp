// EPC Class-1 Gen-2 (ISO 18000-6C) inventory, simplified to the parts
// that matter for D-Watch: slotted-ALOHA singulation with the Q
// algorithm, per-slot timing, and per-round read ordering.
//
// Why this matters to localization: each tag is read in its own
// singulated slot, so the server receives per-tag snapshots that are
// never mixed across tags; and the inventory duration bounds how fast
// D-Watch can refresh a fix (paper Section 8 latency discussion).
#pragma once

#include <cstdint>
#include <vector>

#include "rf/noise.hpp"

namespace dwatch::rfid {

/// Air-interface timing in microseconds (order-of-magnitude Gen2 values
/// at typical Miller-4 link rates).
struct Gen2Timing {
  double query_us = 400.0;           ///< Query / QueryAdjust command
  double empty_slot_us = 150.0;      ///< QueryRep + no reply timeout
  double collision_slot_us = 350.0;  ///< QueryRep + garbled RN16
  double singulation_us = 1200.0;    ///< RN16 + ACK + {PC,EPC,CRC}
};

/// Q-algorithm parameters (Gen2 annex). Q starts at `initial_q` and the
/// floating-point Qfp is nudged by `c` on collisions/empties.
struct Gen2Config {
  std::uint8_t initial_q = 4;
  double c = 0.3;
  std::uint8_t min_q = 0;
  std::uint8_t max_q = 15;
  std::size_t max_rounds = 64;  ///< give-up bound; throws if exceeded
  Gen2Timing timing;
};

/// One successful singulation.
struct SingulationEvent {
  std::uint32_t tag_index = 0;  ///< caller's tag identifier
  std::size_t round = 0;        ///< inventory round (0-based)
  std::size_t slot = 0;         ///< slot within the round
  double timestamp_us = 0.0;    ///< air time when the EPC finished
};

/// Outcome of inventorying a tag population once (every tag read once).
struct InventoryResult {
  std::vector<SingulationEvent> reads;  ///< in singulation order
  std::size_t rounds = 0;
  std::size_t total_slots = 0;
  std::size_t collision_slots = 0;
  std::size_t empty_slots = 0;
  double duration_us = 0.0;
};

/// Run Gen2 inventory over `num_tags` energized tags until all are read.
///
/// Tags draw fresh slot counters each round; collided tags retry next
/// round (session flag semantics: read tags stay quiet). Throws
/// std::runtime_error if `max_rounds` is exceeded (never expected for
/// sane configs) and std::invalid_argument for num_tags == 0.
[[nodiscard]] InventoryResult run_inventory(std::size_t num_tags,
                                            const Gen2Config& config,
                                            rf::Rng& rng);

/// Expected tags read per second for a population under this config,
/// estimated by simulation (`trials` inventories).
[[nodiscard]] double estimate_read_rate(std::size_t num_tags,
                                        const Gen2Config& config,
                                        std::size_t trials, rf::Rng& rng);

}  // namespace dwatch::rfid
