// CRC-16 as used by EPCglobal Class-1 Gen-2 (ISO 18000-6C).
//
// Polynomial x^16 + x^12 + x^5 + 1 (0x1021), preset 0xFFFF, and the final
// remainder is ones-complemented. A receiver verifies a block by checking
// that recomputing over payload+CRC yields the residue 0x1D0F.
#pragma once

#include <cstdint>
#include <span>

namespace dwatch::rfid {

/// CRC-16/Gen2 over `data`.
[[nodiscard]] std::uint16_t crc16_gen2(std::span<const std::uint8_t> data);

/// Residue value a correct payload+CRC block recomputes to.
inline constexpr std::uint16_t kCrc16Gen2Residue = 0x1D0F;

/// Verify a buffer whose last two bytes are the big-endian CRC.
[[nodiscard]] bool crc16_gen2_check(std::span<const std::uint8_t> data_with_crc);

}  // namespace dwatch::rfid
