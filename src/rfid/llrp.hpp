// LLRP-lite: the wire protocol between readers and the localization
// server.
//
// The paper's server talks to the Impinj readers over the Low Level
// Reader Protocol (LLRP, EPCglobal) and consumes per-read phase/RSSI
// measurements from the reader's custom extensions. We reproduce that
// decoupling: the simulator produces TagObservation values, the reader
// side ENCODES them into big-endian LLRP-style RO_ACCESS_REPORT messages,
// and the server side DECODES bytes back before any algorithm runs — so
// the D-Watch pipeline genuinely operates on what crossed the wire
// (including phase/RSSI quantization).
//
// Deviations from full LLRP v1.1, documented here on purpose:
//  * all parameters are TLV-encoded (no TV shorthand);
//  * only the message/parameter types below are implemented;
//  * the Impinj-style phase report is folded into one custom parameter
//    carrying {element id, round, phase u16, rssi i16}.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "linalg/complex_matrix.hpp"
#include "rfid/bytes.hpp"
#include "rfid/epc.hpp"

namespace dwatch::rfid {

/// LLRP message types (subset; values follow LLRP v1.1 where they exist).
enum class MessageType : std::uint16_t {
  kRoAccessReport = 61,
  kKeepalive = 62,
  kReaderEventNotification = 63,
};

/// LLRP parameter types used inside RO_ACCESS_REPORT.
enum class ParameterType : std::uint16_t {
  kTagReportData = 240,
  kEpcData = 241,
  kAntennaId = 222,
  kFirstSeenTimestampUtc = 2,
  kCustomPhaseReport = 1023,  ///< Custom: per-element phase/RSSI sample
};

/// LLRP protocol version we emit (LLRP v1.1 wire value).
inline constexpr std::uint8_t kLlrpVersion = 2;

/// Phase quantization: u16 full-scale maps [0, 2*pi). Impinj readers
/// report 12-bit phase; we keep 16 bits and note the difference.
[[nodiscard]] std::uint16_t quantize_phase(double phase_rad) noexcept;
[[nodiscard]] double dequantize_phase(std::uint16_t q) noexcept;

/// RSSI quantization: signed centi-dB of amplitude^2 relative to unit
/// amplitude, i.e. round(100 * 20*log10(|x|)). Clamped to i16 range;
/// |x| = 0 encodes as INT16_MIN.
[[nodiscard]] std::int16_t quantize_rssi(double amplitude) noexcept;
[[nodiscard]] double dequantize_rssi(std::int16_t centi_db) noexcept;

/// Quantize a complex sample to (phase, rssi) and back — the round trip
/// the wire imposes on every measurement.
[[nodiscard]] std::pair<std::uint16_t, std::int16_t> quantize_sample(
    linalg::Complex x) noexcept;
[[nodiscard]] linalg::Complex dequantize_sample(std::uint16_t phase_q,
                                                std::int16_t rssi_q) noexcept;

/// One per-element measurement of one tag read.
struct PhaseSample {
  std::uint16_t element_id = 0;  ///< 1-based ULA element index
  std::uint32_t round = 0;       ///< inventory round (snapshot column)
  std::uint16_t phase_q = 0;
  std::int16_t rssi_q = 0;

  [[nodiscard]] linalg::Complex as_complex() const noexcept {
    return dequantize_sample(phase_q, rssi_q);
  }
};

/// One TagReportData parameter: a tag read plus its per-element samples.
struct TagObservation {
  Epc96 epc;
  std::uint16_t antenna_port = 1;   ///< reader RF port the hub hangs off
  std::uint64_t first_seen_us = 0;  ///< reader clock
  std::vector<PhaseSample> samples;
};

/// A decoded LLRP message.
struct RoAccessReport {
  std::uint32_t message_id = 0;
  std::vector<TagObservation> observations;
};

struct Keepalive {
  std::uint32_t message_id = 0;
};

struct ReaderEventNotification {
  std::uint32_t message_id = 0;
  std::uint64_t timestamp_us = 0;
  std::uint16_t event_code = 0;  ///< 0 = connection attempt accepted
};

/// Encoders. Message length fields are back-patched; output is a complete
/// framed message ready for a TCP stream.
[[nodiscard]] std::vector<std::uint8_t> encode(const RoAccessReport& msg);
[[nodiscard]] std::vector<std::uint8_t> encode(const Keepalive& msg);
[[nodiscard]] std::vector<std::uint8_t> encode(
    const ReaderEventNotification& msg);

/// Peek at a buffer's message header. Returns nullopt if fewer than 10
/// bytes are available; throws DecodeError on a bad version.
struct MessageHeader {
  MessageType type;
  std::uint32_t length = 0;  ///< total message length incl. header
  std::uint32_t message_id = 0;
};
[[nodiscard]] std::optional<MessageHeader> peek_header(
    std::span<const std::uint8_t> buffer);

/// Decode one complete message of the corresponding type; throws
/// DecodeError on malformed input (wrong type/length/truncation).
[[nodiscard]] RoAccessReport decode_ro_access_report(
    std::span<const std::uint8_t> buffer);
[[nodiscard]] Keepalive decode_keepalive(std::span<const std::uint8_t> buffer);
[[nodiscard]] ReaderEventNotification decode_reader_event_notification(
    std::span<const std::uint8_t> buffer);

/// Incremental stream decoder: feed arbitrary byte chunks (as a TCP
/// receive loop would), pop complete RO_ACCESS_REPORTs. Non-report
/// messages are counted and skipped.
class LlrpStreamDecoder {
 public:
  /// Append received bytes.
  void feed(std::span<const std::uint8_t> bytes);

  /// Pop the next complete report, if any. Throws DecodeError on corrupt
  /// framing (the connection would be torn down in a real deployment).
  [[nodiscard]] std::optional<RoAccessReport> next_report();

  /// Quarantining variant: corrupt framing (truncated frames, garbage
  /// between messages) is counted and skipped instead of thrown — the
  /// decoder resynchronizes on the next plausible message header and
  /// keeps going, as a production server must when a reader misbehaves.
  [[nodiscard]] std::optional<RoAccessReport> next_report_tolerant();

  /// Discard the dead frame at the head of the buffer (a truncated or
  /// misframed message whose tail will never arrive), salvaging any
  /// complete frame buffered behind it — pop that with next_report().
  /// Call at an epoch boundary / read timeout, alternating with the
  /// drain loop until buffered_bytes() reaches 0; counts into
  /// frames_quarantined().
  void flush_incomplete();

  [[nodiscard]] std::size_t keepalives_seen() const noexcept {
    return keepalives_;
  }
  [[nodiscard]] std::size_t events_seen() const noexcept { return events_; }
  [[nodiscard]] std::size_t frames_quarantined() const noexcept {
    return quarantined_;
  }
  [[nodiscard]] std::size_t buffered_bytes() const noexcept {
    return buffer_.size();
  }

 private:
  /// Drop bytes until the buffer starts at a plausible message header.
  void resync();

  std::vector<std::uint8_t> buffer_;
  std::size_t keepalives_ = 0;
  std::size_t events_ = 0;
  std::size_t quarantined_ = 0;
};

}  // namespace dwatch::rfid
