// LLRP-lite session layer: the control-plane handshake a client performs
// against a reader before tag reports flow, and the reader-side state
// machine that answers it.
//
// Real deployments (including the paper's) drive Impinj readers through
// this sequence over TCP:
//
//   client                         reader
//     GET_READER_CAPABILITIES  ->
//                              <-  GET_READER_CAPABILITIES_RESPONSE
//     ADD_ROSPEC               ->
//                              <-  ADD_ROSPEC_RESPONSE (status)
//     ENABLE_ROSPEC            ->
//                              <-  ENABLE_ROSPEC_RESPONSE
//     START_ROSPEC             ->
//                              <-  START_ROSPEC_RESPONSE
//                              <-  RO_ACCESS_REPORT (stream) ...
//     CLOSE_CONNECTION         ->
//                              <-  CLOSE_CONNECTION_RESPONSE
//
// Message type numbers follow LLRP v1.1 where they exist; payloads are
// simplified (see llrp.hpp's deviations note).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "rfid/llrp.hpp"

namespace dwatch::rfid {

/// Control-plane message types (LLRP v1.1 numbering).
enum class ControlType : std::uint16_t {
  kGetReaderCapabilities = 1,
  kGetReaderCapabilitiesResponse = 11,
  kAddRospec = 20,
  kDeleteRospec = 21,
  kStartRospec = 22,
  kStopRospec = 23,
  kEnableRospec = 24,
  kAddRospecResponse = 30,
  kDeleteRospecResponse = 31,
  kStartRospecResponse = 32,
  kStopRospecResponse = 33,
  kEnableRospecResponse = 34,
  kCloseConnection = 14,
  kCloseConnectionResponse = 4,
};

/// Status codes carried in every response.
enum class LlrpStatus : std::uint16_t {
  kSuccess = 0,
  kInvalidRospec = 100,
  kWrongState = 101,
  kUnsupported = 102,
};

/// A (simplified) reader operation spec: which antennas to inventory and
/// how often to report.
struct RoSpec {
  std::uint32_t rospec_id = 1;
  std::uint16_t antenna_port = 1;
  std::uint32_t report_every_n_rounds = 1;
};

/// Encoders for the control plane. Requests carry the RoSpec id (0 for
/// capabilities/close); responses carry a status.
[[nodiscard]] std::vector<std::uint8_t> encode_control_request(
    ControlType type, std::uint32_t message_id, const RoSpec& rospec = {});
[[nodiscard]] std::vector<std::uint8_t> encode_control_response(
    ControlType type, std::uint32_t message_id, LlrpStatus status);

/// Reader capabilities payload (response to GET_READER_CAPABILITIES).
struct ReaderCapabilities {
  std::uint16_t max_antennas = 8;
  std::uint16_t model_code = 0x0420;  ///< "R420"-ish
  std::uint32_t firmware = 0x00050000;
};
[[nodiscard]] std::vector<std::uint8_t> encode_capabilities_response(
    std::uint32_t message_id, const ReaderCapabilities& caps);
[[nodiscard]] ReaderCapabilities decode_capabilities_response(
    std::span<const std::uint8_t> buffer);

/// Decoded control request/response views.
struct ControlRequest {
  ControlType type;
  std::uint32_t message_id = 0;
  RoSpec rospec;
};
struct ControlResponse {
  ControlType type;
  std::uint32_t message_id = 0;
  LlrpStatus status = LlrpStatus::kSuccess;
};
[[nodiscard]] ControlRequest decode_control_request(
    std::span<const std::uint8_t> buffer);
[[nodiscard]] ControlResponse decode_control_response(
    std::span<const std::uint8_t> buffer);

/// Reader-side session state machine.
///
/// Feed it complete client messages; it returns the wire response and
/// tracks the protocol state. Once running, `publish()` wraps tag
/// observations into RO_ACCESS_REPORT bytes for the data plane.
class ReaderSession {
 public:
  enum class State {
    kIdle,        ///< connected, no ROSpec
    kConfigured,  ///< ROSpec added (disabled)
    kEnabled,     ///< ROSpec enabled, not started
    kRunning,     ///< reports flowing
    kClosed,
  };

  explicit ReaderSession(ReaderCapabilities caps = {}) : caps_(caps) {}

  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] const std::optional<RoSpec>& rospec() const noexcept {
    return rospec_;
  }

  /// Handle one complete client control message; returns the framed
  /// response. Throws DecodeError on malformed input. Out-of-order
  /// requests get an error status, not an exception (the connection
  /// survives, as with real readers).
  [[nodiscard]] std::vector<std::uint8_t> handle(
      std::span<const std::uint8_t> request);

  /// Data plane: only legal while running; throws std::logic_error
  /// otherwise.
  [[nodiscard]] std::vector<std::uint8_t> publish(
      const RoAccessReport& report) const;

  /// Periodic keepalive (legal in any non-closed state).
  [[nodiscard]] std::vector<std::uint8_t> keepalive();

  /// Tear down and re-accept the connection: back to kIdle with no
  /// ROSpec, from ANY state including kClosed. This is what a client's
  /// reconnect (new TCP dial) looks like from the reader's side.
  void reset() noexcept {
    state_ = State::kIdle;
    rospec_.reset();
  }

 private:
  ReaderCapabilities caps_;
  State state_ = State::kIdle;
  std::optional<RoSpec> rospec_;
  std::uint32_t keepalive_id_ = 1000;
};

/// Client-side convenience: run the whole handshake against a session
/// and return true if every step succeeded (used by tests/examples; a
/// real client would interleave this over TCP).
[[nodiscard]] bool perform_handshake(ReaderSession& session,
                                     const RoSpec& rospec);

}  // namespace dwatch::rfid
