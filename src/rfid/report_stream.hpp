// Server-side assembly of LLRP tag observations into per-tag snapshot
// matrices.
//
// A reader's antenna hub sweeps the M ULA elements once per inventory
// round; each round contributes one snapshot column per tag. The
// assembler groups PhaseSamples by (EPC, round) and emits an M x N
// complex matrix once N complete rounds are available — the exact input
// MUSIC/P-MUSIC expect, reconstructed from wire-quantized measurements.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "linalg/complex_matrix.hpp"
#include "rfid/epc.hpp"
#include "rfid/llrp.hpp"

namespace dwatch::rfid {

/// Snapshot matrix for one tag plus bookkeeping.
struct TagSnapshots {
  Epc96 epc;
  linalg::CMatrix x;  ///< M x N snapshot matrix
  std::size_t rounds_used = 0;
  std::size_t samples_dropped = 0;  ///< duplicate/incomplete-round samples
};

/// Quarantine counters: what the assembler refused instead of aborting
/// on (or worse, silently double-counting).
struct AssemblerStats {
  std::size_t reports_accepted = 0;
  /// Re-ingested duplicates of an already-seen report — same (EPC,
  /// antenna, timestamp) AND identical samples, i.e. a reader
  /// retransmission. Without this gate a duplicate arriving after
  /// take() re-populates consumed rounds and the same physical
  /// measurement is counted as fresh snapshots.
  std::size_t duplicate_reports_quarantined = 0;
  /// Samples rejected inside accepted reports (bad element id,
  /// per-round duplicates).
  std::size_t samples_quarantined = 0;

  bool operator==(const AssemblerStats&) const = default;
};

/// One tag's dedupe-quarantine fingerprints, exported for
/// checkpoint/restore so a restarted server still recognizes reader
/// retransmissions of reports it ingested before the crash.
struct QuarantineEntry {
  Epc96 epc;
  std::vector<std::uint64_t> fingerprints;  ///< sorted (set order)
};

/// Groups observations per EPC and builds snapshot matrices.
class SnapshotAssembler {
 public:
  /// `num_elements` is M; `rounds_needed` is the snapshot count N the
  /// caller wants per matrix. Throws std::invalid_argument on zeros.
  SnapshotAssembler(std::size_t num_elements, std::size_t rounds_needed);

  /// Ingest one decoded observation (all its per-element samples).
  /// Returns false when the whole observation was quarantined as a
  /// duplicate report (identical EPC, antenna, timestamp and samples as
  /// one already ingested).
  bool ingest(const TagObservation& obs);

  /// Ingest every observation of a report; returns how many were
  /// accepted (the rest were quarantined as duplicates).
  std::size_t ingest(const RoAccessReport& report);

  [[nodiscard]] const AssemblerStats& stats() const noexcept {
    return stats_;
  }

  /// All tags that currently have >= rounds_needed COMPLETE rounds.
  [[nodiscard]] std::vector<Epc96> ready_tags() const;

  /// Build the snapshot matrix for a tag if ready; consumes the buffered
  /// rounds used. Returns nullopt if not enough complete rounds yet.
  [[nodiscard]] std::optional<TagSnapshots> take(const Epc96& epc);

  /// Build matrices for every ready tag (in EPC order).
  [[nodiscard]] std::vector<TagSnapshots> take_all_ready();

  /// Forget everything buffered for all tags.
  void clear();

  /// Reconnect-after-reboot fix: a rebooted reader restarts its round
  /// and timestamp counters and legitimately replays sequence numbers,
  /// so the dedupe fingerprints of the PREVIOUS connection would
  /// mass-quarantine its fresh reports as duplicates. Called from the
  /// reconnect path (RobustSessionClient, alongside
  /// ReaderSession::reset()): drops the quarantine watermark AND the
  /// buffered partial rounds (their round numbers are about to be
  /// reused), keeping the lifetime stats.
  void on_reader_reset();

  /// Export/reinstall the dedupe quarantine (checkpoint/restore). The
  /// restore replaces all fingerprints but leaves buffered rounds
  /// untouched.
  [[nodiscard]] std::vector<QuarantineEntry> quarantine_fingerprints() const;
  void restore_quarantine(std::span<const QuarantineEntry> entries);

  [[nodiscard]] std::size_t num_elements() const noexcept {
    return num_elements_;
  }
  [[nodiscard]] std::size_t rounds_needed() const noexcept {
    return rounds_needed_;
  }

 private:
  struct RoundBuffer {
    std::vector<linalg::Complex> values;  ///< size M
    std::vector<bool> present;            ///< which elements arrived
    std::size_t count = 0;
  };
  struct PerTag {
    std::map<std::uint32_t, RoundBuffer> rounds;
    std::size_t dropped = 0;
    /// Fingerprints of every report ingested for this tag — (antenna,
    /// timestamp, samples) hashes. Survives take() so a retransmission
    /// arriving after its rounds were consumed is still recognized.
    std::set<std::uint64_t> seen_reports;
  };

  [[nodiscard]] std::size_t complete_rounds(const PerTag& t) const;

  std::size_t num_elements_;
  std::size_t rounds_needed_;
  std::map<Epc96, PerTag> tags_;
  AssemblerStats stats_;
};

}  // namespace dwatch::rfid
