#include "rfid/bytes.hpp"

namespace dwatch::rfid {

void ByteWriter::patch_u32(std::size_t offset, std::uint32_t v) {
  if (offset + 4 > buf_.size()) {
    throw std::out_of_range("ByteWriter::patch_u32: offset out of range");
  }
  buf_[offset] = static_cast<std::uint8_t>(v >> 24);
  buf_[offset + 1] = static_cast<std::uint8_t>(v >> 16);
  buf_[offset + 2] = static_cast<std::uint8_t>(v >> 8);
  buf_[offset + 3] = static_cast<std::uint8_t>(v);
}

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > buf_.size()) {
    throw std::out_of_range("ByteWriter::patch_u16: offset out of range");
  }
  buf_[offset] = static_cast<std::uint8_t>(v >> 8);
  buf_[offset + 1] = static_cast<std::uint8_t>(v);
}

void ByteReader::require(std::size_t n) const {
  if (remaining() < n) {
    throw DecodeError("ByteReader: truncated input (need " +
                      std::to_string(n) + " bytes, have " +
                      std::to_string(remaining()) + ")");
  }
}

std::uint8_t ByteReader::u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  require(2);
  const std::uint16_t v =
      static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 8;
  return v;
}

std::span<const std::uint8_t> ByteReader::bytes(std::size_t n) {
  require(n);
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

void ByteReader::skip(std::size_t n) {
  require(n);
  pos_ += n;
}

}  // namespace dwatch::rfid
