#include "rfid/llrp_session.hpp"

#include <stdexcept>

#include "rfid/bytes.hpp"

namespace dwatch::rfid {

namespace {

/// Shared framing with llrp.cpp: 3 reserved bits, 3 version bits, 10 type
/// bits; u32 length; u32 message id.
void write_header(ByteWriter& w, std::uint16_t type,
                  std::uint32_t message_id) {
  const std::uint16_t first =
      static_cast<std::uint16_t>((kLlrpVersion & 0x7) << 10) |
      (type & 0x3FF);
  w.u16(first);
  w.u32(0);
  w.u32(message_id);
}

void finish_message(ByteWriter& w) {
  w.patch_u32(2, static_cast<std::uint32_t>(w.size()));
}

MessageHeader require_header(std::span<const std::uint8_t> buffer) {
  const auto h = peek_header(buffer);
  if (!h) throw DecodeError("llrp_session: truncated header");
  if (h->length != buffer.size()) {
    throw DecodeError("llrp_session: length mismatch");
  }
  return *h;
}

bool is_request(ControlType t) {
  switch (t) {
    case ControlType::kGetReaderCapabilities:
    case ControlType::kAddRospec:
    case ControlType::kDeleteRospec:
    case ControlType::kStartRospec:
    case ControlType::kStopRospec:
    case ControlType::kEnableRospec:
    case ControlType::kCloseConnection:
      return true;
    default:
      return false;
  }
}

ControlType response_for(ControlType request) {
  switch (request) {
    case ControlType::kGetReaderCapabilities:
      return ControlType::kGetReaderCapabilitiesResponse;
    case ControlType::kAddRospec:
      return ControlType::kAddRospecResponse;
    case ControlType::kDeleteRospec:
      return ControlType::kDeleteRospecResponse;
    case ControlType::kStartRospec:
      return ControlType::kStartRospecResponse;
    case ControlType::kStopRospec:
      return ControlType::kStopRospecResponse;
    case ControlType::kEnableRospec:
      return ControlType::kEnableRospecResponse;
    case ControlType::kCloseConnection:
      return ControlType::kCloseConnectionResponse;
    default:
      throw std::logic_error("response_for: not a request type");
  }
}

}  // namespace

std::vector<std::uint8_t> encode_control_request(ControlType type,
                                                 std::uint32_t message_id,
                                                 const RoSpec& rospec) {
  ByteWriter w;
  write_header(w, static_cast<std::uint16_t>(type), message_id);
  w.u32(rospec.rospec_id);
  w.u16(rospec.antenna_port);
  w.u32(rospec.report_every_n_rounds);
  finish_message(w);
  return std::move(w).take();
}

std::vector<std::uint8_t> encode_control_response(ControlType type,
                                                  std::uint32_t message_id,
                                                  LlrpStatus status) {
  ByteWriter w;
  write_header(w, static_cast<std::uint16_t>(type), message_id);
  w.u16(static_cast<std::uint16_t>(status));
  finish_message(w);
  return std::move(w).take();
}

std::vector<std::uint8_t> encode_capabilities_response(
    std::uint32_t message_id, const ReaderCapabilities& caps) {
  ByteWriter w;
  write_header(
      w,
      static_cast<std::uint16_t>(ControlType::kGetReaderCapabilitiesResponse),
      message_id);
  w.u16(static_cast<std::uint16_t>(LlrpStatus::kSuccess));
  w.u16(caps.max_antennas);
  w.u16(caps.model_code);
  w.u32(caps.firmware);
  finish_message(w);
  return std::move(w).take();
}

ReaderCapabilities decode_capabilities_response(
    std::span<const std::uint8_t> buffer) {
  const MessageHeader h = require_header(buffer);
  if (static_cast<std::uint16_t>(h.type) !=
      static_cast<std::uint16_t>(
          ControlType::kGetReaderCapabilitiesResponse)) {
    throw DecodeError("decode_capabilities_response: wrong type");
  }
  ByteReader r(buffer.subspan(10));
  const std::uint16_t status = r.u16();
  if (status != static_cast<std::uint16_t>(LlrpStatus::kSuccess)) {
    throw DecodeError("decode_capabilities_response: error status");
  }
  ReaderCapabilities caps;
  caps.max_antennas = r.u16();
  caps.model_code = r.u16();
  caps.firmware = r.u32();
  return caps;
}

ControlRequest decode_control_request(std::span<const std::uint8_t> buffer) {
  const MessageHeader h = require_header(buffer);
  const auto type = static_cast<ControlType>(h.type);
  if (!is_request(type)) {
    throw DecodeError("decode_control_request: not a request type");
  }
  ControlRequest req;
  req.type = type;
  req.message_id = h.message_id;
  ByteReader r(buffer.subspan(10));
  req.rospec.rospec_id = r.u32();
  req.rospec.antenna_port = r.u16();
  req.rospec.report_every_n_rounds = r.u32();
  return req;
}

ControlResponse decode_control_response(
    std::span<const std::uint8_t> buffer) {
  const MessageHeader h = require_header(buffer);
  ControlResponse resp;
  resp.type = static_cast<ControlType>(h.type);
  resp.message_id = h.message_id;
  ByteReader r(buffer.subspan(10));
  resp.status = static_cast<LlrpStatus>(r.u16());
  return resp;
}

std::vector<std::uint8_t> ReaderSession::handle(
    std::span<const std::uint8_t> request_bytes) {
  const ControlRequest req = decode_control_request(request_bytes);
  const ControlType resp_type = response_for(req.type);

  if (state_ == State::kClosed) {
    return encode_control_response(resp_type, req.message_id,
                                   LlrpStatus::kWrongState);
  }

  switch (req.type) {
    case ControlType::kGetReaderCapabilities:
      return encode_capabilities_response(req.message_id, caps_);

    case ControlType::kAddRospec:
      if (state_ != State::kIdle) {
        return encode_control_response(resp_type, req.message_id,
                                       LlrpStatus::kWrongState);
      }
      if (req.rospec.rospec_id == 0 ||
          req.rospec.antenna_port == 0 ||
          req.rospec.antenna_port > caps_.max_antennas) {
        return encode_control_response(resp_type, req.message_id,
                                       LlrpStatus::kInvalidRospec);
      }
      rospec_ = req.rospec;
      state_ = State::kConfigured;
      return encode_control_response(resp_type, req.message_id,
                                     LlrpStatus::kSuccess);

    case ControlType::kEnableRospec:
      if (state_ != State::kConfigured || !rospec_ ||
          rospec_->rospec_id != req.rospec.rospec_id) {
        return encode_control_response(resp_type, req.message_id,
                                       LlrpStatus::kWrongState);
      }
      state_ = State::kEnabled;
      return encode_control_response(resp_type, req.message_id,
                                     LlrpStatus::kSuccess);

    case ControlType::kStartRospec:
      if (state_ != State::kEnabled || !rospec_ ||
          rospec_->rospec_id != req.rospec.rospec_id) {
        return encode_control_response(resp_type, req.message_id,
                                       LlrpStatus::kWrongState);
      }
      state_ = State::kRunning;
      return encode_control_response(resp_type, req.message_id,
                                     LlrpStatus::kSuccess);

    case ControlType::kStopRospec:
      if (state_ != State::kRunning) {
        return encode_control_response(resp_type, req.message_id,
                                       LlrpStatus::kWrongState);
      }
      state_ = State::kEnabled;
      return encode_control_response(resp_type, req.message_id,
                                     LlrpStatus::kSuccess);

    case ControlType::kDeleteRospec:
      if (state_ == State::kRunning || !rospec_) {
        return encode_control_response(resp_type, req.message_id,
                                       LlrpStatus::kWrongState);
      }
      rospec_.reset();
      state_ = State::kIdle;
      return encode_control_response(resp_type, req.message_id,
                                     LlrpStatus::kSuccess);

    case ControlType::kCloseConnection:
      state_ = State::kClosed;
      return encode_control_response(resp_type, req.message_id,
                                     LlrpStatus::kSuccess);

    default:
      return encode_control_response(resp_type, req.message_id,
                                     LlrpStatus::kUnsupported);
  }
}

std::vector<std::uint8_t> ReaderSession::publish(
    const RoAccessReport& report) const {
  if (state_ != State::kRunning) {
    throw std::logic_error("ReaderSession::publish: not running");
  }
  return encode(report);
}

std::vector<std::uint8_t> ReaderSession::keepalive() {
  if (state_ == State::kClosed) {
    throw std::logic_error("ReaderSession::keepalive: closed");
  }
  return encode(Keepalive{keepalive_id_++});
}

bool perform_handshake(ReaderSession& session, const RoSpec& rospec) {
  std::uint32_t id = 1;
  // Capabilities.
  const auto caps_resp = session.handle(
      encode_control_request(ControlType::kGetReaderCapabilities, id++));
  try {
    (void)decode_capabilities_response(caps_resp);
  } catch (const DecodeError&) {
    return false;
  }
  for (const ControlType step :
       {ControlType::kAddRospec, ControlType::kEnableRospec,
        ControlType::kStartRospec}) {
    const auto resp =
        session.handle(encode_control_request(step, id++, rospec));
    if (decode_control_response(resp).status != LlrpStatus::kSuccess) {
      return false;
    }
  }
  return session.state() == ReaderSession::State::kRunning;
}

}  // namespace dwatch::rfid
