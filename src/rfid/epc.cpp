#include "rfid/epc.hpp"

#include <cctype>
#include <ostream>
#include <span>
#include <stdexcept>

#include "rfid/bytes.hpp"
#include "rfid/crc16.hpp"

namespace dwatch::rfid {

namespace {
int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Epc96 Epc96::from_hex(std::string_view hex) {
  if (hex.size() != 2 * kBytes) {
    throw std::invalid_argument("Epc96::from_hex: need 24 hex chars");
  }
  std::array<std::uint8_t, kBytes> out{};
  for (std::size_t i = 0; i < kBytes; ++i) {
    const int hi = hex_digit(hex[2 * i]);
    const int lo = hex_digit(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("Epc96::from_hex: invalid hex digit");
    }
    out[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return Epc96(out);
}

Epc96 Epc96::for_tag_index(std::uint32_t index) {
  // SGTIN-96-like layout with a fixed fantasy prefix; only the trailing
  // serial varies across simulated tags.
  std::array<std::uint8_t, kBytes> b{0x30, 0x14, 0xD0, 0x57, 0xA7, 0xC4,
                                     0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
  b[8] = static_cast<std::uint8_t>(index >> 24);
  b[9] = static_cast<std::uint8_t>(index >> 16);
  b[10] = static_cast<std::uint8_t>(index >> 8);
  b[11] = static_cast<std::uint8_t>(index);
  return Epc96(b);
}

std::string Epc96::to_hex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(2 * kBytes);
  for (const std::uint8_t byte : bytes_) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0x0F]);
  }
  return out;
}

std::uint32_t Epc96::serial() const noexcept {
  return (static_cast<std::uint32_t>(bytes_[8]) << 24) |
         (static_cast<std::uint32_t>(bytes_[9]) << 16) |
         (static_cast<std::uint32_t>(bytes_[10]) << 8) |
         static_cast<std::uint32_t>(bytes_[11]);
}

std::ostream& operator<<(std::ostream& os, const Epc96& epc) {
  return os << epc.to_hex();
}

std::vector<std::uint8_t> make_epc_reply(const Epc96& epc) {
  ByteWriter w;
  w.u16(kPcWordEpc96);
  w.bytes(epc.bytes());
  const std::uint16_t crc =
      crc16_gen2(std::span<const std::uint8_t>(w.data()));
  w.u16(crc);
  return std::move(w).take();
}

Epc96 parse_epc_reply(std::span<const std::uint8_t> frame) {
  if (frame.size() != 2 + Epc96::kBytes + 2) {
    throw std::invalid_argument("parse_epc_reply: bad frame length");
  }
  if (!crc16_gen2_check(frame)) {
    throw std::invalid_argument("parse_epc_reply: CRC mismatch");
  }
  ByteReader r(frame);
  const std::uint16_t pc = r.u16();
  if (pc != kPcWordEpc96) {
    throw std::invalid_argument("parse_epc_reply: unexpected PC word");
  }
  std::array<std::uint8_t, Epc96::kBytes> bytes{};
  const auto payload = r.bytes(Epc96::kBytes);
  std::copy(payload.begin(), payload.end(), bytes.begin());
  return Epc96(bytes);
}

}  // namespace dwatch::rfid
