// EPC-96 tag identifiers (the 96-bit electronic product code carried by
// the Alien ALN-9634 tags the paper deploys).
//
// A backscatter reply on the air is {PC word, EPC, CRC-16}; that framing
// is produced/checked by the Gen2 layer. Here we define the identifier
// value type, hex formatting, and a deterministic generator so simulated
// deployments get stable, distinct EPCs.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dwatch::rfid {

/// 96-bit EPC value type.
class Epc96 {
 public:
  static constexpr std::size_t kBytes = 12;

  /// All-zero EPC.
  Epc96() = default;

  explicit Epc96(const std::array<std::uint8_t, kBytes>& bytes)
      : bytes_(bytes) {}

  /// Parse 24 hex chars (case-insensitive); throws std::invalid_argument.
  [[nodiscard]] static Epc96 from_hex(std::string_view hex);

  /// Deterministic EPC for simulated tag `index`: a fixed company prefix
  /// with the index in the serial field.
  [[nodiscard]] static Epc96 for_tag_index(std::uint32_t index);

  [[nodiscard]] const std::array<std::uint8_t, kBytes>& bytes() const
      noexcept {
    return bytes_;
  }

  /// Lower-case hex string of length 24.
  [[nodiscard]] std::string to_hex() const;

  /// Serial field (last 4 bytes, big-endian) — the tag index for EPCs
  /// produced by for_tag_index.
  [[nodiscard]] std::uint32_t serial() const noexcept;

  auto operator<=>(const Epc96&) const = default;

 private:
  std::array<std::uint8_t, kBytes> bytes_{};
};

std::ostream& operator<<(std::ostream& os, const Epc96& epc);

/// The PC (protocol control) word for a plain 96-bit EPC: length field
/// 6 x 16-bit words, no extensions (EPC Gen2 spec 6.3.2.1.2.2).
inline constexpr std::uint16_t kPcWordEpc96 = 0x3000;

/// Air-frame payload {PC, EPC, CRC16} as transmitted by a tag.
[[nodiscard]] std::vector<std::uint8_t> make_epc_reply(const Epc96& epc);

/// Parse and CRC-check an air-frame; throws std::invalid_argument on bad
/// length/PC/CRC.
[[nodiscard]] Epc96 parse_epc_reply(std::span<const std::uint8_t> frame);

}  // namespace dwatch::rfid
