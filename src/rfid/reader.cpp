#include "rfid/reader.hpp"

#include <cmath>
#include <stdexcept>

#include "rf/geometry.hpp"

namespace dwatch::rfid {

Reader::Reader(ReaderConfig config, rf::Rng& rng) : config_(config) {
  if (config_.hub_elements < 2) {
    throw std::invalid_argument("Reader: hub_elements must be >= 2");
  }
  if (config_.num_rf_ports == 0) {
    throw std::invalid_argument("Reader: num_rf_ports must be >= 1");
  }
  if (config_.element_slot_us <= 0.0 || config_.report_interval_s <= 0.0) {
    throw std::invalid_argument("Reader: non-positive timing");
  }
  power_cycle(rng);
}

std::vector<double> Reader::relative_phase_offsets() const {
  std::vector<double> rel(phase_offsets_.size());
  for (std::size_t m = 0; m < phase_offsets_.size(); ++m) {
    rel[m] = rf::wrap_pi(phase_offsets_[m] - phase_offsets_[0]);
  }
  return rel;
}

void Reader::power_cycle(rf::Rng& rng) {
  phase_offsets_.resize(config_.hub_elements);
  for (auto& beta : phase_offsets_) {
    beta = rng.uniform(-rf::kPi, rf::kPi);
  }
}

double Reader::forward_power_dbm(double distance_m) const {
  if (distance_m <= 0.0) {
    throw std::invalid_argument("forward_power_dbm: distance must be > 0");
  }
  const double lambda = rf::wavelength(config_.carrier_hz);
  const double fspl_db =
      20.0 * std::log10(4.0 * rf::kPi * distance_m / lambda);
  return config_.tx_power_dbm + config_.antenna_gain_dbi - fspl_db;
}

double Reader::read_range_m(double tag_sensitivity_dbm) const {
  const double lambda = rf::wavelength(config_.carrier_hz);
  const double margin_db =
      config_.tx_power_dbm + config_.antenna_gain_dbi - tag_sensitivity_dbm;
  return lambda / (4.0 * rf::kPi) * std::pow(10.0, margin_db / 20.0);
}

}  // namespace dwatch::rfid
