// Client-side resilience for the LLRP control plane.
//
// The plain handshake in llrp_session.hpp assumes every request gets a
// response. Real links do not cooperate: responses time out, frames
// arrive truncated, and — the classic distributed-systems trap — a LOST
// RESPONSE does not mean the reader ignored the request. A retried
// ADD_ROSPEC whose first response was lost gets kWrongState back,
// because the reader already applied it. RobustSessionClient handles
// all of that:
//
//  * per-request timeouts with retry + exponential backoff;
//  * a reconnect state machine: when retries are exhausted or the
//    session state has desynchronized, tear the connection down
//    (reconnect hook = new TCP dial) and redo the handshake from
//    scratch, up to a bounded number of times;
//  * a deterministic virtual clock, so tests can assert exact backoff
//    schedules and two runs over the same lossy transport behave
//    bit-identically.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "rfid/llrp_session.hpp"
#include "rfid/report_stream.hpp"

namespace dwatch::rfid {

struct RetryPolicy {
  /// Attempts per request (first try + retries).
  std::size_t max_attempts = 4;
  /// Backoff before retry k is base * multiplier^(k-1), capped.
  std::uint64_t base_backoff_us = 500;
  double backoff_multiplier = 2.0;
  std::uint64_t max_backoff_us = 64'000;
  /// Virtual time charged for an attempt that never got a response.
  std::uint64_t request_timeout_us = 2'000;
  /// Virtual time charged for a successful round trip.
  std::uint64_t nominal_rtt_us = 150;
  /// Full reconnect cycles connect() may burn before giving up.
  std::size_t max_reconnects = 3;
};

/// Deterministic accounting of the transport's behaviour. Feed into
/// DWatchPipeline::note_transport() so fixes report their provenance.
struct TransportStats {
  std::size_t requests = 0;   ///< logical requests issued
  std::size_t attempts = 0;   ///< wire attempts (>= requests)
  std::size_t retries = 0;    ///< attempts beyond the first
  std::size_t timeouts = 0;   ///< attempts with no usable response
  std::size_t reconnects = 0; ///< full teardown + re-handshake cycles
  std::size_t giveups = 0;    ///< requests that exhausted all attempts
  std::uint64_t virtual_time_us = 0;  ///< deterministic elapsed time

  bool operator==(const TransportStats&) const = default;
};

class RobustSessionClient {
 public:
  /// Delivers one framed request, returns the framed response, or
  /// nullopt when the exchange was lost (either direction). A fault
  /// injector typically wraps ReaderSession::handle here.
  using Transport = std::function<std::optional<std::vector<std::uint8_t>>(
      std::span<const std::uint8_t>)>;

  /// Called on reconnect: tear down and redial (e.g. ReaderSession::
  /// reset() in tests; a real client would close and reopen the
  /// socket). May be null, in which case reconnects are disabled.
  using ReconnectHook = std::function<void()>;

  RobustSessionClient(Transport transport, RetryPolicy policy = {},
                      ReconnectHook reconnect = nullptr);

  /// Bind the data-plane assembler whose dedupe quarantine must be
  /// dropped on every reconnect cycle: a rebooted reader legitimately
  /// replays sequence numbers, and stale fingerprints from the previous
  /// connection would mass-quarantine its fresh reports. The pointer is
  /// not owned and must outlive the client (nullptr detaches).
  void attach_assembler(SnapshotAssembler* assembler) noexcept {
    assembler_ = assembler;
  }

  /// Serving-layer hook: decoded report stream, tagged with this
  /// client's reader identity so a fleet router (serve::SessionRouter)
  /// can demultiplex many sessions onto their zones.
  using ReportSink =
      std::function<void(std::uint64_t reader_id, const RoAccessReport&)>;

  /// Stable identity of the reader behind this session (what the
  /// router keys zone bindings on). Defaults to 0 = unassigned.
  void set_reader_id(std::uint64_t id) noexcept { reader_id_ = id; }
  [[nodiscard]] std::uint64_t reader_id() const noexcept {
    return reader_id_;
  }

  /// Install/replace the report sink (nullptr detaches).
  void set_report_sink(ReportSink sink) { report_sink_ = std::move(sink); }

  /// Forward one decoded report to the sink, stamped with reader_id().
  /// Counted even with no sink installed, so droppage is visible.
  void deliver_report(const RoAccessReport& report);

  /// Reports handed to deliver_report() over the client's lifetime.
  [[nodiscard]] std::size_t reports_delivered() const noexcept {
    return reports_delivered_;
  }

  /// One control request with retry + exponential backoff. Returns the
  /// decoded response, or nullopt when every attempt timed out or
  /// returned undecodable bytes.
  [[nodiscard]] std::optional<ControlResponse> request(
      ControlType type, const RoSpec& rospec = {});

  /// Full capabilities + ADD/ENABLE/START handshake with per-request
  /// retries; on failure (including state desync from lost responses)
  /// reconnects and retries the whole sequence, up to
  /// policy.max_reconnects times. Returns true once reports can flow.
  [[nodiscard]] bool connect(const RoSpec& rospec);

  [[nodiscard]] const TransportStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const RetryPolicy& policy() const noexcept {
    return policy_;
  }
  /// Deterministic virtual clock (µs since construction).
  [[nodiscard]] std::uint64_t now_us() const noexcept {
    return stats_.virtual_time_us;
  }

 private:
  /// Raw request bytes -> raw response bytes with timeout/retry/backoff.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> send_with_retry(
      const std::vector<std::uint8_t>& request_bytes);
  [[nodiscard]] std::uint64_t backoff_us(std::size_t retry_index) const;
  /// One pass of the handshake; false on any step failing.
  [[nodiscard]] bool try_handshake(const RoSpec& rospec);

  Transport transport_;
  RetryPolicy policy_;
  ReconnectHook reconnect_;
  SnapshotAssembler* assembler_ = nullptr;
  ReportSink report_sink_;
  std::uint64_t reader_id_ = 0;
  std::size_t reports_delivered_ = 0;
  TransportStats stats_;
  std::uint32_t next_message_id_ = 1;
};

}  // namespace dwatch::rfid
