#include "obs/metrics.hpp"

#include "obs/event_log.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dwatch::obs {

namespace {

/// Deterministic number formatting shared by both exporters: integral
/// values print without a decimal point, everything else with up to 12
/// significant digits (enough for µs sums, stable across platforms).
void write_number(std::ostream& os, double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
    return;
  }
  std::ostringstream tmp;
  tmp.precision(12);
  tmp << v;
  os << tmp.str();
}

/// Series keys carry pre-rendered label lists with raw double quotes
/// (`name{k="v"}`); as JSON object keys they must be escaped or the
/// /metrics.json document is invalid the moment a labelled series
/// exists (the telemetry endpoint test scrapes and strictly validates).
void write_json_key(std::ostream& os, const std::string& key) {
  std::string escaped;
  escaped.reserve(key.size() + 8);
  append_json_escaped(escaped, key);
  os << '"' << escaped << '"';
}

}  // namespace

void Gauge::add(double d) noexcept {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + d,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: no buckets");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument("Histogram: bounds not increasing");
    }
  }
}

void Histogram::observe(double value) noexcept {
  // Prometheus `le` semantics: bucket i counts value <= bounds_[i]; the
  // first bound >= value is exactly that bucket. Values above every
  // bound land in the +Inf overflow slot.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::upper_bound(std::size_t i) const {
  if (i >= counts_.size()) {
    throw std::out_of_range("Histogram: bad bucket index");
  }
  return i < bounds_.size() ? bounds_[i]
                            : std::numeric_limits<double>::infinity();
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  if (i >= counts_.size()) {
    throw std::out_of_range("Histogram: bad bucket index");
  }
  return counts_[i].load(std::memory_order_relaxed);
}

double Histogram::percentile(double p) const {
  std::vector<std::uint64_t> c(counts_.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    c[i] = counts_[i].load(std::memory_order_relaxed);
    total += c[i];
  }
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    const std::uint64_t before = cum;
    cum += c[i];
    if (static_cast<double>(cum) >= target && c[i] > 0) {
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      // The +Inf bucket has no width; report its lower edge (the last
      // finite bound) instead of inventing a value.
      const double upper = i < bounds_.size() ? bounds_[i] : bounds_.back();
      const double frac = std::clamp(
          (target - static_cast<double>(before)) / static_cast<double>(c[i]),
          0.0, 1.0);
      return lower + frac * (upper - lower);
    }
  }
  return bounds_.back();
}

void Histogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::exponential_bounds(double first, double factor,
                                                  std::size_t count) {
  if (!(first > 0.0) || !(factor > 1.0) || count == 0) {
    throw std::invalid_argument("exponential_bounds: bad parameters");
  }
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = first;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::default_latency_bounds_us() {
  // 1, 2, 4, ... 2^23 µs (~8.4 s): covers sub-µs stages up to a whole
  // multi-second calibration solve in 24 buckets.
  return exponential_bounds(1.0, 2.0, 24);
}

std::vector<double> Histogram::log_linear_bounds(double first, double last,
                                                 std::size_t steps_per_decade) {
  if (!(first > 0.0) || !(last > first) || steps_per_decade == 0) {
    throw std::invalid_argument("log_linear_bounds: bad parameters");
  }
  std::vector<double> bounds;
  for (double decade = first; decade < last; decade *= 10.0) {
    const double step = decade * 9.0 / static_cast<double>(steps_per_decade);
    for (std::size_t i = 0; i < steps_per_decade; ++i) {
      const double b = decade + static_cast<double>(i) * step;
      if (b >= last) break;
      bounds.push_back(b);
    }
  }
  bounds.push_back(last);
  return bounds;
}

std::vector<double> Histogram::stage_latency_bounds_us() {
  // 1..9, 10..90, ... 1e6..9e6, 1e7 µs: 64 bounds. Post-SIMD kernels
  // finish in 3–30 µs in a Release build — the doubling buckets put
  // that whole range into two buckets and p99 interpolation collapses;
  // nine linear steps per decade keep single-µs resolution at the low
  // end while still reaching 10 s for calibration solves.
  return log_linear_bounds(1.0, 1e7, 9);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

std::string MetricsRegistry::series_key(std::string_view name,
                                        std::string_view labels) {
  std::string key(name);
  if (!labels.empty()) {
    key += '{';
    key += labels;
    key += '}';
  }
  return key;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view labels) {
  const std::string key = series_key(name, labels);
  {
    std::shared_lock lock(mutex_);
    if (const auto it = counters_.find(key); it != counters_.end()) {
      return *it->second.second;
    }
  }
  std::unique_lock lock(mutex_);
  auto [it, inserted] = counters_.try_emplace(
      key, std::pair{Series{std::string(name), std::string(labels)},
                     std::make_unique<Counter>()});
  (void)inserted;
  return *it->second.second;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view labels) {
  const std::string key = series_key(name, labels);
  {
    std::shared_lock lock(mutex_);
    if (const auto it = gauges_.find(key); it != gauges_.end()) {
      return *it->second.second;
    }
  }
  std::unique_lock lock(mutex_);
  auto [it, inserted] = gauges_.try_emplace(
      key, std::pair{Series{std::string(name), std::string(labels)},
                     std::make_unique<Gauge>()});
  (void)inserted;
  return *it->second.second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> upper_bounds,
                                      std::string_view labels) {
  const std::string key = series_key(name, labels);
  {
    std::shared_lock lock(mutex_);
    if (const auto it = histograms_.find(key); it != histograms_.end()) {
      return *it->second.second;
    }
  }
  std::unique_lock lock(mutex_);
  if (const auto it = histograms_.find(key); it != histograms_.end()) {
    return *it->second.second;
  }
  auto [it, inserted] = histograms_.try_emplace(
      key, std::pair{Series{std::string(name), std::string(labels)},
                     std::make_unique<Histogram>(std::vector<double>(
                         upper_bounds.begin(), upper_bounds.end()))});
  (void)inserted;
  return *it->second.second;
}

std::size_t MetricsRegistry::size() const {
  std::shared_lock lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::for_each_histogram(
    const std::function<void(const std::string&, const std::string&,
                             const Histogram&)>& fn) const {
  std::shared_lock lock(mutex_);
  for (const auto& [key, entry] : histograms_) {
    fn(entry.first.name, entry.first.labels, *entry.second);
  }
}

void MetricsRegistry::reset() {
  std::shared_lock lock(mutex_);
  for (auto& [key, entry] : counters_) entry.second->reset();
  for (auto& [key, entry] : gauges_) entry.second->reset();
  for (auto& [key, entry] : histograms_) entry.second->reset();
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  std::shared_lock lock(mutex_);
  std::string last_type_name;
  const auto type_line = [&](const std::string& name, const char* kind) {
    if (name != last_type_name) {
      os << "# TYPE " << name << ' ' << kind << '\n';
      last_type_name = name;
    }
  };
  for (const auto& [key, entry] : counters_) {
    type_line(entry.first.name, "counter");
    os << key << ' ' << entry.second->value() << '\n';
  }
  for (const auto& [key, entry] : gauges_) {
    type_line(entry.first.name, "gauge");
    os << key << ' ';
    write_number(os, entry.second->value());
    os << '\n';
  }
  for (const auto& [key, entry] : histograms_) {
    const Series& s = entry.first;
    const Histogram& h = *entry.second;
    type_line(s.name, "histogram");
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.num_buckets(); ++i) {
      cum += h.bucket_count(i);
      os << s.name << "_bucket{";
      if (!s.labels.empty()) os << s.labels << ',';
      os << "le=\"";
      if (i + 1 == h.num_buckets()) {
        os << "+Inf";
      } else {
        write_number(os, h.upper_bound(i));
      }
      os << "\"} " << cum << '\n';
    }
    const std::string suffix =
        s.labels.empty() ? std::string() : '{' + s.labels + '}';
    os << s.name << "_sum" << suffix << ' ';
    write_number(os, h.sum());
    os << '\n';
    os << s.name << "_count" << suffix << ' ' << h.count() << '\n';
  }
}

std::string MetricsRegistry::prometheus_text() const {
  std::ostringstream os;
  write_prometheus(os);
  return os.str();
}

void MetricsRegistry::write_json(std::ostream& os) const {
  std::shared_lock lock(mutex_);
  os << '{';
  os << "\"counters\":{";
  bool first = true;
  for (const auto& [key, entry] : counters_) {
    if (!first) os << ',';
    first = false;
    write_json_key(os, key);
    os << ':' << entry.second->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [key, entry] : gauges_) {
    if (!first) os << ',';
    first = false;
    write_json_key(os, key);
    os << ':';
    write_number(os, entry.second->value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [key, entry] : histograms_) {
    const Histogram& h = *entry.second;
    if (!first) os << ',';
    first = false;
    write_json_key(os, key);
    os << ":{\"count\":" << h.count() << ",\"sum\":";
    write_number(os, h.sum());
    os << ",\"p50\":";
    write_number(os, h.percentile(50.0));
    os << ",\"p95\":";
    write_number(os, h.percentile(95.0));
    os << ",\"p99\":";
    write_number(os, h.percentile(99.0));
    os << ",\"buckets\":[";
    for (std::size_t i = 0; i < h.num_buckets(); ++i) {
      if (i > 0) os << ',';
      os << "{\"le\":";
      if (i + 1 == h.num_buckets()) {
        os << "\"+Inf\"";
      } else {
        write_number(os, h.upper_bound(i));
      }
      os << ",\"count\":" << h.bucket_count(i) << '}';
    }
    os << "]}";
  }
  os << "}}";
}

std::string MetricsRegistry::json_text() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

}  // namespace dwatch::obs
