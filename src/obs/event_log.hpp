// Structured event log: discrete, timestamped JSON Lines records for
// things that happen once (a calibration solve, an outlier rejection, a
// transport retry), as opposed to the continuous counters/histograms in
// metrics.hpp and the per-stage spans in trace.hpp.
//
// Usage at an instrumentation site (always behind the master switch —
// building an Event allocates):
//
//   if (obs::enabled()) {
//     obs::EventLog::global().emit(
//         obs::Event("calibration.solve")
//             .field("array", array_idx)
//             .field("residual", result.residual));
//   }
//
// Every line is one self-contained JSON object:
//   {"ts_us":1234,"type":"calibration.solve","array":0,"residual":0.01}
//
// String values are escaped so ARBITRARY bytes (hostile EPC contents,
// truncated wire garbage) can never break the line format: output is
// pure ASCII, non-printable and non-ASCII bytes become \u00XX. The log
// is a bounded in-memory ring (oldest lines dropped, never grown), the
// same memory discipline as the trace ring.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "obs/obs.hpp"

namespace dwatch::obs {

/// Append the JSON string-escaped form of `s` (no surrounding quotes)
/// to `out`. Handles arbitrary bytes: output is always valid ASCII JSON.
void append_json_escaped(std::string& out, std::string_view s);

/// Builder for one event line. Stamps ts_us from the shared obs clock
/// at construction so events and trace spans share a timeline.
class Event {
 public:
  explicit Event(std::string_view type);

  Event& field(std::string_view key, std::string_view value);
  Event& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }
  Event& field(std::string_view key, bool value);
  Event& field(std::string_view key, double value);
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T> &&
                                        !std::is_same_v<T, bool>>>
  Event& field(std::string_view key, T value) {
    if constexpr (std::is_signed_v<T>) {
      return signed_field(key, static_cast<std::int64_t>(value));
    } else {
      return unsigned_field(key, static_cast<std::uint64_t>(value));
    }
  }
  /// Lower-case hex string value (EPCs, raw frames).
  Event& field_bytes(std::string_view key, std::span<const std::uint8_t> b);

  /// The finished line, without a trailing newline.
  [[nodiscard]] std::string line() const;

 private:
  Event& signed_field(std::string_view key, std::int64_t value);
  Event& unsigned_field(std::string_view key, std::uint64_t value);
  void key_prefix(std::string_view key);

  std::string buf_;  ///< open JSON object, `{` written, `}` pending
};

/// Bounded, thread-safe JSON Lines buffer.
class EventLog {
 public:
  /// `mirror_drops` additionally counts every ring overwrite into the
  /// global metric `dwatch_obs_events_dropped_total` — silent event
  /// loss under overload must be visible to a scraper, not only to
  /// callers polling dropped(). Only the global() instance mirrors;
  /// ad-hoc logs in tests stay out of the process-wide counter.
  explicit EventLog(std::size_t capacity = 65536, bool mirror_drops = false);

  [[nodiscard]] static EventLog& global();

  /// Drops everything buffered when shrinking below the current size.
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const;

  void emit(const Event& event);
  void emit_line(std::string line);

  [[nodiscard]] std::size_t size() const;
  /// Lines discarded because the buffer was full.
  [[nodiscard]] std::uint64_t dropped() const;
  void clear();

  /// Oldest-to-newest copy of the buffered lines.
  [[nodiscard]] std::vector<std::string> snapshot() const;

  /// JSON Lines: one object per line, trailing newline each.
  void write_jsonl(std::ostream& os) const;
  [[nodiscard]] std::string text() const;

 private:
  mutable std::mutex mutex_;
  std::deque<std::string> lines_;
  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
  bool mirror_drops_ = false;
};

}  // namespace dwatch::obs
