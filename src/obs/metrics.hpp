// Lock-cheap metrics: counters, gauges and fixed-bucket histograms,
// registered by name and exportable as Prometheus text or JSON.
//
// Design constraints (DESIGN.md §9):
//  * the UPDATE path never takes an exclusive lock — counters and
//    histograms are relaxed atomics, safe to hammer from thread_pool
//    workers on the fix hot path;
//  * REGISTRATION (first lookup of a name) takes a writer lock, repeat
//    lookups a shared lock, and instrumented code caches the returned
//    reference so steady-state cost is one atomic add;
//  * metric objects never move once registered (stored behind
//    unique_ptr), so cached references stay valid for the registry's
//    lifetime;
//  * export walks a std::map, so the text output is deterministically
//    sorted — the golden-format test depends on that.
//
// Naming scheme: `dwatch_<area>_<what>_<unit|total>` with optional
// Prometheus labels passed as a pre-rendered `key="value"` list, e.g.
//   registry.counter("dwatch_transport_retries_total")
//   registry.histogram("dwatch_stage_latency_us", bounds,
//                      "stage=\"pmusic.spectrum\"")
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dwatch::obs {

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time value (last write wins).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept;
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with Prometheus `le` (inclusive upper bound)
/// semantics and an implicit +Inf overflow bucket. Percentiles are
/// estimated by linear interpolation inside the bucket holding the
/// requested rank.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing; throws
  /// std::invalid_argument otherwise.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Finite bounds plus the +Inf overflow bucket.
  [[nodiscard]] std::size_t num_buckets() const noexcept {
    return counts_.size();
  }
  /// Upper bound of bucket i (infinity for the last one).
  [[nodiscard]] double upper_bound(std::size_t i) const;
  /// Observations in bucket i alone (NOT cumulative).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const;
  /// Estimated value at percentile p in [0, 100]; 0 when empty.
  [[nodiscard]] double percentile(double p) const;
  void reset() noexcept;

  /// `count` bounds: first, first*factor, first*factor^2, ...
  [[nodiscard]] static std::vector<double> exponential_bounds(
      double first, double factor, std::size_t count);
  /// Default latency buckets: 1 µs .. ~8.4 s, doubling (24 bounds).
  [[nodiscard]] static std::vector<double> default_latency_bounds_us();
  /// Log-linear bounds: each decade [d, 10d) starting at `first` is cut
  /// into `steps_per_decade` equal linear steps, ending exactly at
  /// `last` (which is always the final bound). With steps_per_decade=9
  /// and first=1: 1,2,..,9,10,20,..,90,100,... — doubling buckets lose
  /// all p99 resolution once a Release-built stage runs in single-digit
  /// microseconds (everything lands in 1–2 buckets); linear low-decade
  /// steps keep percentile interpolation honest there. Throws
  /// std::invalid_argument unless 0 < first < last and steps >= 1.
  [[nodiscard]] static std::vector<double> log_linear_bounds(
      double first, double last, std::size_t steps_per_decade);
  /// Stage/fix latency buckets: log-linear 1 µs .. 10 s, 9 steps per
  /// decade (64 bounds). The canonical bounds for
  /// `dwatch_stage_latency_us` and `dwatch_serve_fix_latency_us` —
  /// every registration site must use THESE (first registration wins).
  [[nodiscard]] static std::vector<double> stage_latency_bounds_us();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  ///< bounds + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Name -> metric registry. Metrics are created on first lookup and
/// live as long as the registry; returned references stay valid.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide default registry used by the built-in instrumentation.
  [[nodiscard]] static MetricsRegistry& global();

  /// `labels` is a pre-rendered Prometheus label list WITHOUT braces,
  /// e.g. `stage="pmusic.spectrum"`; empty for an unlabelled series.
  [[nodiscard]] Counter& counter(std::string_view name,
                                 std::string_view labels = {});
  [[nodiscard]] Gauge& gauge(std::string_view name,
                             std::string_view labels = {});
  /// `upper_bounds` is consulted only when the series does not exist
  /// yet; later lookups of the same series ignore it.
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::span<const double> upper_bounds,
                                     std::string_view labels = {});

  /// Number of registered series across all kinds.
  [[nodiscard]] std::size_t size() const;

  /// Visit every histogram series in sorted key order (the bench
  /// exporter uses this to pull per-stage percentiles).
  void for_each_histogram(
      const std::function<void(const std::string& name,
                               const std::string& labels,
                               const Histogram& histogram)>& fn) const;

  /// Zero every registered metric (tests/benches); series stay
  /// registered so cached references remain valid.
  void reset();

  /// Prometheus text exposition format, deterministically sorted.
  void write_prometheus(std::ostream& os) const;
  [[nodiscard]] std::string prometheus_text() const;

  /// One JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{count,sum,p50,p95,p99,buckets:[...]}}}.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string json_text() const;

 private:
  struct Series {
    std::string name;    ///< metric name without labels
    std::string labels;  ///< pre-rendered label list, may be empty
  };
  template <typename T>
  using SeriesMap = std::map<std::string, std::pair<Series, std::unique_ptr<T>>,
                             std::less<>>;

  [[nodiscard]] static std::string series_key(std::string_view name,
                                              std::string_view labels);

  mutable std::shared_mutex mutex_;
  SeriesMap<Counter> counters_;
  SeriesMap<Gauge> gauges_;
  SeriesMap<Histogram> histograms_;
};

}  // namespace dwatch::obs
