#include "obs/event_log.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"

namespace dwatch::obs {

void append_json_escaped(std::string& out, std::string_view s) {
  static constexpr char kHex[] = "0123456789abcdef";
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        // Control bytes MUST be escaped per RFC 8259; bytes >= 0x7f are
        // escaped too so arbitrary (non-UTF-8) input still yields pure
        // ASCII, always-valid JSON.
        if (c < 0x20 || c >= 0x7f) {
          out += "\\u00";
          out += kHex[c >> 4];
          out += kHex[c & 0xf];
        } else {
          out += ch;
        }
    }
  }
}

Event::Event(std::string_view type) {
  buf_ = "{\"ts_us\":";
  buf_ += std::to_string(now_us());
  buf_ += ",\"type\":\"";
  append_json_escaped(buf_, type);
  buf_ += '"';
}

void Event::key_prefix(std::string_view key) {
  buf_ += ",\"";
  append_json_escaped(buf_, key);
  buf_ += "\":";
}

Event& Event::field(std::string_view key, std::string_view value) {
  key_prefix(key);
  buf_ += '"';
  append_json_escaped(buf_, value);
  buf_ += '"';
  return *this;
}

Event& Event::field(std::string_view key, bool value) {
  key_prefix(key);
  buf_ += value ? "true" : "false";
  return *this;
}

Event& Event::field(std::string_view key, double value) {
  key_prefix(key);
  if (!std::isfinite(value)) {
    // JSON has no Inf/NaN literals; stringify so the line stays valid.
    buf_ += '"';
    buf_ += std::isnan(value) ? "nan" : (value > 0 ? "inf" : "-inf");
    buf_ += '"';
    return *this;
  }
  std::ostringstream tmp;
  tmp.precision(12);
  tmp << value;
  buf_ += tmp.str();
  return *this;
}

Event& Event::signed_field(std::string_view key, std::int64_t value) {
  key_prefix(key);
  buf_ += std::to_string(value);
  return *this;
}

Event& Event::unsigned_field(std::string_view key, std::uint64_t value) {
  key_prefix(key);
  buf_ += std::to_string(value);
  return *this;
}

Event& Event::field_bytes(std::string_view key,
                          std::span<const std::uint8_t> b) {
  static constexpr char kHex[] = "0123456789abcdef";
  key_prefix(key);
  buf_ += '"';
  for (const std::uint8_t byte : b) {
    buf_ += kHex[byte >> 4];
    buf_ += kHex[byte & 0xf];
  }
  buf_ += '"';
  return *this;
}

std::string Event::line() const { return buf_ + '}'; }

namespace {

/// One cached reference: registration locks once, steady-state drop
/// accounting is a relaxed atomic add (same discipline as every other
/// instrumentation site).
Counter& events_dropped_counter() {
  static Counter& counter =
      MetricsRegistry::global().counter("dwatch_obs_events_dropped_total");
  return counter;
}

}  // namespace

EventLog::EventLog(std::size_t capacity, bool mirror_drops)
    : capacity_(capacity == 0 ? 1 : capacity), mirror_drops_(mirror_drops) {}

EventLog& EventLog::global() {
  static EventLog log(65536, /*mirror_drops=*/true);
  return log;
}

void EventLog::set_capacity(std::size_t capacity) {
  std::uint64_t overwritten = 0;
  {
    std::lock_guard lock(mutex_);
    capacity_ = capacity == 0 ? 1 : capacity;
    while (lines_.size() > capacity_) {
      lines_.pop_front();
      ++dropped_;
      ++overwritten;
    }
  }
  if (overwritten > 0 && mirror_drops_) {
    events_dropped_counter().inc(overwritten);
  }
}

std::size_t EventLog::capacity() const {
  std::lock_guard lock(mutex_);
  return capacity_;
}

void EventLog::emit(const Event& event) { emit_line(event.line()); }

void EventLog::emit_line(std::string line) {
  bool overwrote = false;
  {
    std::lock_guard lock(mutex_);
    if (lines_.size() == capacity_) {
      lines_.pop_front();
      ++dropped_;
      overwrote = true;
    }
    lines_.push_back(std::move(line));
  }
  // Outside the ring lock: the registry has its own locking and the
  // counter is a relaxed atomic — no nested lock order to maintain.
  if (overwrote && mirror_drops_) events_dropped_counter().inc();
}

std::size_t EventLog::size() const {
  std::lock_guard lock(mutex_);
  return lines_.size();
}

std::uint64_t EventLog::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

void EventLog::clear() {
  std::lock_guard lock(mutex_);
  lines_.clear();
  dropped_ = 0;
}

std::vector<std::string> EventLog::snapshot() const {
  std::lock_guard lock(mutex_);
  return std::vector<std::string>(lines_.begin(), lines_.end());
}

void EventLog::write_jsonl(std::ostream& os) const {
  for (const std::string& line : snapshot()) {
    os << line << '\n';
  }
}

std::string EventLog::text() const {
  std::ostringstream os;
  write_jsonl(os);
  return os.str();
}

}  // namespace dwatch::obs
