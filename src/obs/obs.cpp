#include "obs/obs.hpp"

#include <atomic>
#include <chrono>

namespace dwatch::obs {

#if DWATCH_OBS_ENABLED
namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

bool enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}
#endif

std::uint64_t now_us() noexcept {
  using clock = std::chrono::steady_clock;
  // The epoch is pinned by whichever thread calls first; a static local
  // is initialized exactly once and is thread-safe per the standard.
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                            epoch)
          .count());
}

}  // namespace dwatch::obs
