// Per-stage tracing: RAII spans into a bounded ring buffer, exported as
// Chrome trace-event JSON (open chrome://tracing or https://ui.perfetto.dev
// and load trace.json).
//
// Usage at an instrumentation site:
//
//   void DWatchPipeline::observe(...) {
//     DWATCH_SPAN("pipeline.observe");
//     ...
//   }
//
// The macro declares a Span whose constructor is a no-op unless the obs
// master switch is on (one relaxed atomic load); with the CMake option
// DWATCH_OBS=OFF it expands to nothing at all. On destruction an active
// span appends one fixed-size record to the global TraceRecorder's ring
// (memory is bounded: old records are overwritten, never grown) and
// feeds the span's duration into the per-stage latency histogram
// `dwatch_stage_latency_us{stage="<name>"}` in the global registry.
//
// Span names must be string literals (the recorder stores the pointer).
// Nesting depth is tracked per thread so exported traces can be checked
// for well-formed containment.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace dwatch::obs {

/// One completed span. `name` must point at a string literal.
struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
  std::uint32_t thread_id = 0;  ///< small per-process thread ordinal
  std::uint32_t depth = 0;      ///< nesting depth on that thread
};

/// Bounded ring buffer of completed spans.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 16384);

  [[nodiscard]] static TraceRecorder& global();

  /// Resize the ring (drops everything recorded so far).
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const;

  void record(const SpanRecord& span);
  void clear();

  /// Records currently held (<= capacity).
  [[nodiscard]] std::size_t size() const;
  /// Records overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const;
  /// Oldest-to-newest copy of the ring.
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;

  /// Chrome trace-event JSON: {"traceEvents":[{"ph":"X",...}]}.
  void write_chrome_json(std::ostream& os) const;
  [[nodiscard]] std::string chrome_json() const;

 private:
  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;
  std::size_t capacity_;
  std::size_t head_ = 0;   ///< next write slot
  std::size_t count_ = 0;  ///< valid records
  std::uint64_t dropped_ = 0;
};

/// RAII stage timer. Inert (no clock reads, no recording) when the obs
/// master switch is off at construction time.
class Span {
 public:
  explicit Span(const char* name) noexcept;
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when this span will record on destruction.
  [[nodiscard]] bool active() const noexcept { return name_ != nullptr; }

 private:
  const char* name_ = nullptr;  ///< null = inactive
  std::uint64_t start_us_ = 0;
  std::uint32_t depth_ = 0;
};

/// Small dense ordinal for the calling thread (assigned on first use).
[[nodiscard]] std::uint32_t thread_ordinal() noexcept;

}  // namespace dwatch::obs

#if DWATCH_OBS_ENABLED
#define DWATCH_OBS_CONCAT_INNER(a, b) a##b
#define DWATCH_OBS_CONCAT(a, b) DWATCH_OBS_CONCAT_INNER(a, b)
#define DWATCH_SPAN(name) \
  ::dwatch::obs::Span DWATCH_OBS_CONCAT(dwatch_span_, __LINE__) { name }
#else
#define DWATCH_SPAN(name) ((void)0)
#endif
