// Observability master switch and monotonic clock.
//
// The whole obs layer (metrics mirroring, trace spans, event log) hangs
// off ONE process-wide flag with two gates:
//
//  * compile time — the CMake option DWATCH_OBS (default ON) defines
//    DWATCH_OBS_ENABLED; with it OFF, enabled() is a constexpr false,
//    every `if (obs::enabled())` block is dead code, and DWATCH_SPAN
//    expands to nothing. The instrumented binaries are bit-identical in
//    behaviour AND in cost to an uninstrumented build.
//  * run time — enabled() reads one relaxed atomic bool, default OFF.
//    Localization results never depend on the flag (the obs layer only
//    observes), so flipping it cannot change a fix; it only decides
//    whether spans/events/mirrored counters are recorded.
//
// The data structures themselves (MetricsRegistry, TraceRecorder,
// EventLog) are plain thread-safe containers and work regardless of the
// flags — the gating lives at the instrumentation sites, so unit tests
// can always exercise the containers directly.
#pragma once

#include <cstdint>

#ifndef DWATCH_OBS_ENABLED
#define DWATCH_OBS_ENABLED 1
#endif

namespace dwatch::obs {

#if DWATCH_OBS_ENABLED
/// Runtime master switch (default off). Relaxed load; safe from any
/// thread.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;
#else
constexpr bool enabled() noexcept { return false; }
inline void set_enabled(bool) noexcept {}
#endif

/// Microseconds on the steady clock since the first obs call in this
/// process. Monotonic, shared by spans and events so a trace and an
/// event log line up on one timeline.
[[nodiscard]] std::uint64_t now_us() noexcept;

}  // namespace dwatch::obs
