#include "obs/trace.hpp"

#include <atomic>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace dwatch::obs {

namespace {

/// Per-thread nesting depth for spans (no synchronization needed).
thread_local std::uint32_t t_span_depth = 0;

}  // namespace

std::uint32_t thread_ordinal() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::set_capacity(std::size_t capacity) {
  std::lock_guard lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.assign(capacity_, SpanRecord{});
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
}

std::size_t TraceRecorder::capacity() const {
  std::lock_guard lock(mutex_);
  return capacity_;
}

void TraceRecorder::record(const SpanRecord& span) {
  std::lock_guard lock(mutex_);
  if (count_ == capacity_) ++dropped_;
  ring_[head_] = span;
  head_ = (head_ + 1) % capacity_;
  if (count_ < capacity_) ++count_;
}

void TraceRecorder::clear() {
  std::lock_guard lock(mutex_);
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
}

std::size_t TraceRecorder::size() const {
  std::lock_guard lock(mutex_);
  return count_;
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

std::vector<SpanRecord> TraceRecorder::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(count_);
  const std::size_t oldest = (head_ + capacity_ - count_) % capacity_;
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(oldest + i) % capacity_]);
  }
  return out;
}

void TraceRecorder::write_chrome_json(std::ostream& os) const {
  const std::vector<SpanRecord> spans = snapshot();
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    if (i > 0) os << ',';
    os << "{\"name\":\"" << s.name << "\",\"cat\":\"dwatch\",\"ph\":\"X\""
       << ",\"ts\":" << s.start_us << ",\"dur\":" << s.duration_us
       << ",\"pid\":1,\"tid\":" << s.thread_id << ",\"args\":{\"depth\":"
       << s.depth << "}}";
  }
  os << "]}";
}

std::string TraceRecorder::chrome_json() const {
  std::ostringstream os;
  write_chrome_json(os);
  return os.str();
}

Span::Span(const char* name) noexcept {
  if (!enabled()) return;
  name_ = name;
  depth_ = t_span_depth++;
  start_us_ = now_us();
}

Span::~Span() {
  if (name_ == nullptr) return;
  --t_span_depth;
  const std::uint64_t duration = now_us() - start_us_;
  TraceRecorder::global().record(SpanRecord{
      name_, start_us_, duration, thread_ordinal(), depth_});
  // Per-stage latency histogram so metrics.txt and BENCH_latency.json
  // carry p50/p95/p99 per stage. The label string is rebuilt per span
  // end; spans sit at stage granularity (per observation / per fix),
  // never inside per-sample loops, so the allocation is off the inner
  // hot path.
  static const std::vector<double> bounds =
      Histogram::stage_latency_bounds_us();
  std::string labels = "stage=\"";
  labels += name_;
  labels += '"';
  MetricsRegistry::global()
      .histogram("dwatch_stage_latency_us", bounds, labels)
      .observe(static_cast<double>(duration));
}

}  // namespace dwatch::obs
