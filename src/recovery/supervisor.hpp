// Epoch supervisor: per-stage deadline watchdog for the fix pipeline.
//
// A hung decode loop or a pathological optimizer run must cost ONE
// epoch, not the deployment: fixes arrive every ~100 ms, so an epoch
// that blows its time budget is worth less than the next epoch it is
// delaying. The supervisor tracks each pipeline stage (the DESIGN.md
// span taxonomy) against a time budget and declares the epoch aborted
// on the first overrun; the driver loop then skips to the next epoch
// with the pipeline state untouched.
//
// Two enforcement modes:
//  * cooperative — begin_stage()/end_stage() bracket stages on the
//    caller's thread and the overrun is detected at end_stage(). Cheap,
//    deterministic, catches "overlong"; cannot catch "hung".
//  * preemptive — run_guarded() executes a stage on a worker thread and
//    gives up waiting at the deadline. Catches "hung": the epoch is
//    abandoned while the stage still runs; the zombie is joined later
//    (next guarded call or destructor) so no detached thread outlives
//    the supervisor.
//
// The clock is injectable so tests drive deadlines deterministically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <thread>

namespace dwatch::recovery {

/// Per-stage time budgets [µs], keyed by span name. Derived from the
/// DESIGN.md stage taxonomy's envelope numbers (generous multiples of
/// the bench p99s, so a healthy run never trips).
[[nodiscard]] std::map<std::string, std::uint64_t> default_stage_budgets();

struct SupervisorStats {
  std::size_t epochs_supervised = 0;
  std::size_t stage_overruns = 0;
  std::size_t epochs_aborted = 0;

  bool operator==(const SupervisorStats&) const = default;
};

class EpochSupervisor {
 public:
  /// Microsecond monotonic clock; injectable for tests.
  using Clock = std::function<std::uint64_t()>;

  explicit EpochSupervisor(
      std::map<std::string, std::uint64_t> budgets = default_stage_budgets(),
      Clock clock = nullptr);
  ~EpochSupervisor();

  EpochSupervisor(const EpochSupervisor&) = delete;
  EpochSupervisor& operator=(const EpochSupervisor&) = delete;

  /// Arm supervision for a new epoch (clears the aborted flag).
  void begin_epoch(std::uint64_t epoch);

  /// Cooperative bracketing. end_stage() checks the elapsed time
  /// against the stage's budget (stages without a budget entry are
  /// unconstrained) and returns false — flagging the epoch aborted —
  /// on overrun.
  void begin_stage(std::string_view stage);
  bool end_stage(std::string_view stage);

  /// Preemptive guard: run `body` on a worker thread, wait at most
  /// `budget_us`. On timeout the epoch is flagged aborted and false is
  /// returned immediately; the still-running body is joined on the next
  /// run_guarded()/destructor (it must be side-effect-free on pipeline
  /// state or idempotent — observe() on a discarded epoch qualifies).
  bool run_guarded(std::string_view stage, std::uint64_t budget_us,
                   const std::function<void()>& body);

  /// The current epoch blew a deadline; skip its fix.
  [[nodiscard]] bool aborted() const noexcept { return aborted_; }
  [[nodiscard]] const SupervisorStats& stats() const noexcept {
    return stats_;
  }
  /// A previously guarded stage is still running (zombie not yet
  /// joined).
  [[nodiscard]] bool pending() const noexcept { return worker_.joinable(); }

 private:
  void note_overrun(std::string_view stage, std::uint64_t elapsed_us,
                    std::uint64_t budget_us);
  void reap();

  std::map<std::string, std::uint64_t> budgets_;
  Clock clock_;
  SupervisorStats stats_;
  std::uint64_t epoch_ = 0;
  bool aborted_ = false;
  std::string current_stage_;
  std::uint64_t stage_start_us_ = 0;
  std::thread worker_;
};

}  // namespace dwatch::recovery
