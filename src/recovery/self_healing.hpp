// RecoveryCoordinator: the self-healing control loop over a
// DWatchPipeline.
//
// Once per epoch (after the fix), the caller hands the coordinator the
// epoch index plus this epoch's anchor-tag measurements per array, and
// the coordinator:
//
//  1. scores each array's installed Γ̂ against the anchors (Eq. 11
//     residual) and feeds the drift watchdog;
//  2. on sustained drift, launches a background recalibration (on the
//     pipeline's worker pool when available) — the fix path keeps the
//     incumbent Γ̂ while the GA+GD solve runs;
//  3. collects finished recalibrations on the CALLER's thread: an
//     accepted candidate is atomically hot-swapped into the pipeline
//     and the array's reference spectra are invalidated (they were
//     captured under the superseded Γ̂); a worse candidate rolls back
//     and starts a cooldown;
//  4. writes a crash-safe checkpoint on its epoch cadence — AFTER any
//     swap, so the snapshot always carries the live calibration.
//
// The return value lists arrays whose baselines were invalidated; the
// caller re-captures reference spectra for them (the one step only the
// deployment can do, since it needs empty-scene traffic).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/calibration.hpp"
#include "core/kalman.hpp"
#include "core/pipeline.hpp"
#include "core/tracker.hpp"
#include "recovery/checkpoint.hpp"
#include "recovery/drift_watchdog.hpp"
#include "recovery/recalibration.hpp"
#include "rfid/report_stream.hpp"

namespace dwatch::recovery {

struct RecoveryOptions {
  DriftWatchdogOptions watchdog;
  RecalibrationOptions recalibration;
  /// Write a checkpoint every N completed epochs (0 disables).
  std::size_t checkpoint_every = 1;
  /// Epochs to wait after a rolled-back recalibration before the same
  /// array may trigger again (the anchors were probably corrupted; give
  /// the transport time to recover).
  std::size_t recalibration_cooldown = 2;
  /// Run recalibrations on the pipeline's worker pool when it has one.
  /// false = solve synchronously inside end_epoch() — slower epochs but
  /// fully deterministic swap timing (what the tests use).
  bool background = true;
};

class RecoveryCoordinator {
 public:
  /// `calibrators` must match the pipeline's arrays one-to-one (same
  /// geometry used to build each array's steering vectors); throws
  /// std::invalid_argument on a count mismatch. The pipeline reference
  /// must outlive the coordinator.
  RecoveryCoordinator(core::DWatchPipeline& pipeline,
                      std::vector<core::WirelessCalibrator> calibrators,
                      CheckpointStore store, RecoveryOptions options = {});

  /// Called whenever an array's drift-watchdog state changes (the
  /// observe path in end_epoch, and the forced re-learn after a
  /// swap/rollback). Runs on whatever thread drove the transition —
  /// end_epoch's caller — so a thread-safe consumer is required when
  /// epochs run on a pool. The telemetry plane uses this as a
  /// flight-recorder dump trigger.
  using StateChangeHook = std::function<void(
      std::size_t array_idx, DriftState from, DriftState to)>;
  void set_state_change_hook(StateChangeHook hook) {
    state_hook_ = std::move(hook);
  }

  /// Optional state joined into checkpoints (non-owning; nullptr
  /// detaches). Attach before the first end_epoch()/restore().
  void attach_kalman(core::KalmanTracker* tracker) noexcept {
    kalman_ = tracker;
  }
  void attach_tracker(core::AlphaBetaTracker* tracker) noexcept {
    alpha_beta_ = tracker;
  }
  void attach_assembler(rfid::SnapshotAssembler* assembler) noexcept {
    assembler_ = assembler;
  }

  /// The per-epoch healing pass (call after the epoch's fix).
  /// `anchors_per_array[a]` holds this epoch's measurements of array
  /// a's known-LoS anchor tags (empty = no probe this epoch, the
  /// watchdog simply skips the array). `crash` is forwarded to the
  /// checkpoint write (fault injection). Returns the arrays whose
  /// reference spectra were invalidated by a calibration swap.
  std::vector<std::size_t> end_epoch(
      std::uint64_t epoch,
      std::span<const std::vector<core::CalibrationMeasurement>>
          anchors_per_array,
      const CheckpointStore::CrashFilter& crash = nullptr);

  /// Load the last committed snapshot and reinstall it into the
  /// pipeline and every attached component. On any RestoreError the
  /// pipeline is untouched (cold start). The watchdog always restarts
  /// from scratch — it re-learns its healthy levels in a few epochs,
  /// which is cheaper than risking a poisoned reference.
  [[nodiscard]] RestoreError restore();

  /// The epoch recorded in the last written/restored snapshot.
  [[nodiscard]] std::uint64_t last_checkpoint_epoch() const noexcept {
    return last_checkpoint_epoch_;
  }

  [[nodiscard]] const RecoveryStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const DriftWatchdog& watchdog() const noexcept {
    return watchdog_;
  }
  [[nodiscard]] const CheckpointStore& store() const noexcept {
    return store_;
  }
  /// Block until any in-flight recalibration lands (applies the
  /// swap/rollback exactly as end_epoch() would). For shutdown/tests.
  void drain();

 private:
  [[nodiscard]] Snapshot build_snapshot(std::uint64_t epoch) const;
  void apply_outcome(const RecalibrationOutcome& outcome,
                     std::uint64_t epoch,
                     std::vector<std::size_t>& invalidated);
  /// Fire state_hook_ when the watchdog state of `array_idx` no longer
  /// equals `before` (captured by the caller before the mutation).
  void notify_state_change(std::size_t array_idx, DriftState before) const;

  core::DWatchPipeline& pipeline_;
  std::vector<core::WirelessCalibrator> calibrators_;
  CheckpointStore store_;
  RecoveryOptions options_;
  DriftWatchdog watchdog_;
  RecalibrationManager recalibration_;
  RecoveryStats stats_;
  StateChangeHook state_hook_;
  core::KalmanTracker* kalman_ = nullptr;
  core::AlphaBetaTracker* alpha_beta_ = nullptr;
  rfid::SnapshotAssembler* assembler_ = nullptr;
  /// Per-array: no new trigger before this epoch (rollback cooldown).
  std::vector<std::uint64_t> cooldown_until_;
  std::uint64_t last_checkpoint_epoch_ = 0;
};

}  // namespace dwatch::recovery
