#include "recovery/checkpoint.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdio>
#include <utility>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "rfid/crc16.hpp"

namespace dwatch::recovery {

namespace {

// ---------------------------------------------------------------------
// Wire primitives. Everything is little-endian except the section CRC,
// which is appended big-endian so rfid::crc16_gen2_check() validates a
// whole section slice directly (Gen2 convention).
// ---------------------------------------------------------------------

constexpr std::uint8_t kMagic[4] = {'D', 'W', 'C', 'P'};
constexpr std::uint16_t kEndSection = 0xFFFF;

enum SectionId : std::uint16_t {
  kSectionPipeline = 1,
  kSectionTrackers = 2,
  kSectionQuarantine = 3,
  kSectionRecovery = 4,
};

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-checked sequential reader over one section's payload. Any
/// overrun latches `ok = false`; values read after that are zeros.
struct Reader {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;
  bool ok = true;

  std::uint8_t u8() {
    if (pos + 1 > data.size()) {
      ok = false;
      return 0;
    }
    return data[pos++];
  }
  std::uint32_t u32() {
    if (pos + 4 > data.size()) {
      ok = false;
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data[pos + i]) << (8 * i);
    }
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    if (pos + 8 > data.size()) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
    }
    pos += 8;
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  [[nodiscard]] bool done() const { return ok && pos == data.size(); }
};

// ---------------------------------------------------------------------
// Section payload encoders.
// ---------------------------------------------------------------------

void encode_pipeline(std::vector<std::uint8_t>& p,
                     const core::PipelineState& s) {
  put_u64(p, s.watermark_us);
  put_u32(p, static_cast<std::uint32_t>(s.calibration.size()));
  for (std::size_t a = 0; a < s.calibration.size(); ++a) {
    const auto& cal = s.calibration[a];
    p.push_back(cal.has_value() ? 1 : 0);
    if (cal.has_value()) {
      put_u32(p, static_cast<std::uint32_t>(cal->size()));
      for (const double v : *cal) put_f64(p, v);
    }
    const auto& refs = s.baselines[a];
    put_u32(p, static_cast<std::uint32_t>(refs.size()));
    for (const auto& [epc, spectrum] : refs) {
      for (const std::uint8_t b : epc.bytes()) p.push_back(b);
      put_u32(p, static_cast<std::uint32_t>(spectrum.size()));
      for (const double v : spectrum.values()) put_f64(p, v);
    }
    p.push_back(s.excluded[a]);
  }
  const core::PipelineStats& st = s.stats;
  for (const std::size_t v :
       {st.baselines, st.epochs, st.observations, st.observations_skipped,
        st.drops_detected, st.stale_observations,
        st.low_snapshot_observations, st.malformed_observations,
        st.reports_dropped, st.transport_retries, st.transport_timeouts}) {
    put_u64(p, v);
  }
}

void encode_axis(std::vector<std::uint8_t>& p, const core::KalmanAxis& a) {
  put_f64(p, a.pos);
  put_f64(p, a.vel);
  put_f64(p, a.p_pp);
  put_f64(p, a.p_pv);
  put_f64(p, a.p_vv);
}

void encode_trackers(std::vector<std::uint8_t>& p, const Snapshot& snap) {
  p.push_back(snap.kalman.has_value() ? 1 : 0);
  if (snap.kalman) {
    encode_axis(p, snap.kalman->x);
    encode_axis(p, snap.kalman->y);
    p.push_back(snap.kalman->initialized ? 1 : 0);
    put_u64(p, snap.kalman->misses);
  }
  p.push_back(snap.alpha_beta.has_value() ? 1 : 0);
  if (snap.alpha_beta) {
    put_f64(p, snap.alpha_beta->position.x);
    put_f64(p, snap.alpha_beta->position.y);
    put_f64(p, snap.alpha_beta->velocity.x);
    put_f64(p, snap.alpha_beta->velocity.y);
    p.push_back(snap.alpha_beta->initialized ? 1 : 0);
    put_u64(p, snap.alpha_beta->misses);
  }
}

void encode_quarantine(std::vector<std::uint8_t>& p,
                       const std::vector<rfid::QuarantineEntry>& entries) {
  put_u32(p, static_cast<std::uint32_t>(entries.size()));
  for (const rfid::QuarantineEntry& e : entries) {
    for (const std::uint8_t b : e.epc.bytes()) p.push_back(b);
    put_u32(p, static_cast<std::uint32_t>(e.fingerprints.size()));
    for (const std::uint64_t f : e.fingerprints) put_u64(p, f);
  }
}

void encode_recovery(std::vector<std::uint8_t>& p, const Snapshot& snap) {
  put_u64(p, snap.epoch);
  const RecoveryStats& st = snap.stats;
  for (const std::uint64_t v :
       {st.checkpoints_written, st.checkpoint_crashes, st.restores,
        st.recalibrations_triggered, st.recalibrations_accepted,
        st.recalibrations_rolled_back, st.baselines_invalidated,
        st.drift_epochs, st.epochs_aborted}) {
    put_u64(p, v);
  }
}

/// Frame one section: [id u16][len u32][payload][crc16 over all of the
/// preceding, big-endian] — the Gen2 check convention.
void append_section(std::vector<std::uint8_t>& out, std::uint16_t id,
                    const std::vector<std::uint8_t>& payload) {
  const std::size_t start = out.size();
  put_u16(out, id);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint16_t crc = rfid::crc16_gen2(
      std::span<const std::uint8_t>(out.data() + start, out.size() - start));
  out.push_back(static_cast<std::uint8_t>(crc >> 8));
  out.push_back(static_cast<std::uint8_t>(crc & 0xFF));
}

// ---------------------------------------------------------------------
// Section payload decoders. Return false on inconsistency (the section
// CRC already passed, so false means kMalformed, not corruption).
// ---------------------------------------------------------------------

bool read_epc(Reader& r, rfid::Epc96& out) {
  std::array<std::uint8_t, rfid::Epc96::kBytes> bytes{};
  for (std::uint8_t& b : bytes) b = r.u8();
  if (!r.ok) return false;
  out = rfid::Epc96(bytes);
  return true;
}

bool decode_pipeline(Reader& r, core::PipelineState& s) {
  s.watermark_us = r.u64();
  const std::uint32_t num_arrays = r.u32();
  if (!r.ok || num_arrays > 4096) return false;
  s.calibration.resize(num_arrays);
  s.baselines.resize(num_arrays);
  s.excluded.resize(num_arrays);
  for (std::uint32_t a = 0; a < num_arrays; ++a) {
    if (r.u8() != 0) {
      const std::uint32_t m = r.u32();
      if (!r.ok || m == 0 || m > 4096) return false;
      std::vector<double> offsets(m);
      for (double& v : offsets) v = r.f64();
      s.calibration[a] = std::move(offsets);
    }
    const std::uint32_t num_refs = r.u32();
    if (!r.ok) return false;
    for (std::uint32_t i = 0; i < num_refs; ++i) {
      rfid::Epc96 epc;
      if (!read_epc(r, epc)) return false;
      const std::uint32_t n = r.u32();
      if (!r.ok || n < 2 || n > 1u << 20) return false;
      std::vector<double> values(n);
      for (double& v : values) v = r.f64();
      if (!r.ok) return false;
      s.baselines[a].insert_or_assign(epc,
                                      core::AngularSpectrum(std::move(values)));
    }
    s.excluded[a] = r.u8();
    if (!r.ok || s.excluded[a] > 1) return false;
  }
  core::PipelineStats& st = s.stats;
  for (std::size_t* v :
       {&st.baselines, &st.epochs, &st.observations, &st.observations_skipped,
        &st.drops_detected, &st.stale_observations,
        &st.low_snapshot_observations, &st.malformed_observations,
        &st.reports_dropped, &st.transport_retries, &st.transport_timeouts}) {
    *v = static_cast<std::size_t>(r.u64());
  }
  return r.done();
}

void decode_axis(Reader& r, core::KalmanAxis& a) {
  a.pos = r.f64();
  a.vel = r.f64();
  a.p_pp = r.f64();
  a.p_pv = r.f64();
  a.p_vv = r.f64();
}

bool decode_trackers(Reader& r, Snapshot& snap) {
  const std::uint8_t has_kalman = r.u8();
  if (has_kalman > 1) return false;
  if (has_kalman != 0) {
    core::KalmanState k;
    decode_axis(r, k.x);
    decode_axis(r, k.y);
    const std::uint8_t init = r.u8();
    if (init > 1) return false;
    k.initialized = init != 0;
    k.misses = static_cast<std::size_t>(r.u64());
    snap.kalman = k;
  }
  const std::uint8_t has_ab = r.u8();
  if (has_ab > 1) return false;
  if (has_ab != 0) {
    core::AlphaBetaState ab;
    ab.position.x = r.f64();
    ab.position.y = r.f64();
    ab.velocity.x = r.f64();
    ab.velocity.y = r.f64();
    const std::uint8_t init = r.u8();
    if (init > 1) return false;
    ab.initialized = init != 0;
    ab.misses = static_cast<std::size_t>(r.u64());
    snap.alpha_beta = ab;
  }
  return r.done();
}

bool decode_quarantine(Reader& r, std::vector<rfid::QuarantineEntry>& out) {
  const std::uint32_t num = r.u32();
  if (!r.ok) return false;
  for (std::uint32_t i = 0; i < num; ++i) {
    rfid::QuarantineEntry e;
    if (!read_epc(r, e.epc)) return false;
    const std::uint32_t n = r.u32();
    if (!r.ok) return false;
    e.fingerprints.resize(n);
    for (std::uint64_t& f : e.fingerprints) f = r.u64();
    if (!r.ok) return false;
    out.push_back(std::move(e));
  }
  return r.done();
}

bool decode_recovery(Reader& r, Snapshot& snap) {
  snap.epoch = r.u64();
  RecoveryStats& st = snap.stats;
  for (std::uint64_t* v :
       {&st.checkpoints_written, &st.checkpoint_crashes, &st.restores,
        &st.recalibrations_triggered, &st.recalibrations_accepted,
        &st.recalibrations_rolled_back, &st.baselines_invalidated,
        &st.drift_epochs, &st.epochs_aborted}) {
    *v = r.u64();
  }
  return r.done();
}

}  // namespace

std::string_view to_string(RestoreError error) noexcept {
  switch (error) {
    case RestoreError::kNone:
      return "none";
    case RestoreError::kMissing:
      return "missing";
    case RestoreError::kBadMagic:
      return "bad_magic";
    case RestoreError::kBadVersion:
      return "bad_version";
    case RestoreError::kTruncated:
      return "truncated";
    case RestoreError::kBadCrc:
      return "bad_crc";
    case RestoreError::kMalformed:
      return "malformed";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_snapshot(const Snapshot& snap) {
  std::vector<std::uint8_t> out;
  out.insert(out.end(), std::begin(kMagic), std::end(kMagic));
  put_u16(out, kCheckpointVersion);
  put_u16(out, 0);  // flags, reserved

  std::vector<std::uint8_t> payload;
  encode_pipeline(payload, snap.pipeline);
  append_section(out, kSectionPipeline, payload);

  payload.clear();
  encode_trackers(payload, snap);
  append_section(out, kSectionTrackers, payload);

  payload.clear();
  encode_quarantine(payload, snap.quarantine);
  append_section(out, kSectionQuarantine, payload);

  payload.clear();
  encode_recovery(payload, snap);
  append_section(out, kSectionRecovery, payload);

  // End marker: proves the image was written to completion. A snapshot
  // cut anywhere before this line decodes as kTruncated.
  append_section(out, kEndSection, {});
  return out;
}

RestoreError decode_snapshot(std::span<const std::uint8_t> bytes,
                             Snapshot& out) {
  if (bytes.size() < 8) return RestoreError::kTruncated;
  for (std::size_t i = 0; i < 4; ++i) {
    if (bytes[i] != kMagic[i]) return RestoreError::kBadMagic;
  }
  const std::uint16_t version =
      static_cast<std::uint16_t>(bytes[4] | (bytes[5] << 8));
  if (version != kCheckpointVersion) return RestoreError::kBadVersion;
  const std::uint16_t flags =
      static_cast<std::uint16_t>(bytes[6] | (bytes[7] << 8));
  // The header carries no CRC of its own, so strictness here is what
  // catches corruption in it: v1 defines no flags, any set bit is rot.
  if (flags != 0) return RestoreError::kMalformed;

  Snapshot snap;
  bool seen[5] = {};  // indexed by SectionId; [0] unused
  bool end_seen = false;
  std::size_t pos = 8;
  while (pos < bytes.size()) {
    if (end_seen) return RestoreError::kMalformed;  // trailing junk
    if (bytes.size() - pos < 8) return RestoreError::kTruncated;
    const std::uint16_t id =
        static_cast<std::uint16_t>(bytes[pos] | (bytes[pos + 1] << 8));
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(bytes[pos + 2 + i]) << (8 * i);
    }
    const std::size_t section_size = 2 + 4 + static_cast<std::size_t>(len) + 2;
    if (bytes.size() - pos < section_size) return RestoreError::kTruncated;
    const auto section = bytes.subspan(pos, section_size);
    if (!rfid::crc16_gen2_check(section)) return RestoreError::kBadCrc;
    Reader r{section.subspan(6, len)};
    switch (id) {
      case kSectionPipeline:
        if (seen[kSectionPipeline] || !decode_pipeline(r, snap.pipeline)) {
          return RestoreError::kMalformed;
        }
        seen[kSectionPipeline] = true;
        break;
      case kSectionTrackers:
        if (seen[kSectionTrackers] || !decode_trackers(r, snap)) {
          return RestoreError::kMalformed;
        }
        seen[kSectionTrackers] = true;
        break;
      case kSectionQuarantine:
        if (seen[kSectionQuarantine] ||
            !decode_quarantine(r, snap.quarantine)) {
          return RestoreError::kMalformed;
        }
        seen[kSectionQuarantine] = true;
        break;
      case kSectionRecovery:
        if (seen[kSectionRecovery] || !decode_recovery(r, snap)) {
          return RestoreError::kMalformed;
        }
        seen[kSectionRecovery] = true;
        break;
      case kEndSection:
        if (len != 0) return RestoreError::kMalformed;
        end_seen = true;
        break;
      default:
        // v1 is a closed format: an id we don't know means the image
        // was not written by this codec (CRC collisions aside).
        return RestoreError::kMalformed;
    }
    pos += section_size;
  }
  if (!end_seen) return RestoreError::kTruncated;
  for (const int id : {kSectionPipeline, kSectionTrackers, kSectionQuarantine,
                       kSectionRecovery}) {
    if (!seen[id]) return RestoreError::kMalformed;
  }
  out = std::move(snap);
  return RestoreError::kNone;
}

bool CheckpointStore::write(const Snapshot& snap, const CrashFilter& crash) {
  const std::vector<std::uint8_t> image = encode_snapshot(snap);
  std::size_t bytes_to_disk = image.size();
  bool crashed = false;
  if (crash) {
    if (const auto survived = crash(image.size())) {
      bytes_to_disk = std::min(*survived, image.size());
      crashed = true;
    }
  }
  const std::string tmp = path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written =
      bytes_to_disk == 0
          ? 0
          : std::fwrite(image.data(), 1, bytes_to_disk, f);
  const bool flushed = std::fclose(f) == 0 && written == bytes_to_disk;
  if (crashed || !flushed) {
    // Process "died" mid-write (or the filesystem failed us): the temp
    // wreckage stays behind exactly as a real crash would leave it, and
    // the previous committed snapshot at path_ is untouched.
    if (obs::enabled()) {
      obs::EventLog::global().emit(obs::Event("recovery.checkpoint_crashed")
                                       .field("bytes", bytes_to_disk)
                                       .field("of", image.size()));
    }
    return false;
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) return false;
  if (obs::enabled()) {
    obs::MetricsRegistry::global()
        .counter("dwatch_recovery_checkpoints_written_total")
        .inc();
    obs::EventLog::global().emit(obs::Event("recovery.checkpoint_written")
                                     .field("bytes", image.size())
                                     .field("epoch", snap.epoch));
  }
  return true;
}

RestoreError CheckpointStore::load(Snapshot& out) const {
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return RestoreError::kMissing;
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  const RestoreError err = decode_snapshot(bytes, out);
  if (obs::enabled()) {
    if (err == RestoreError::kNone) {
      obs::MetricsRegistry::global()
          .counter("dwatch_recovery_checkpoint_restores_total")
          .inc();
      obs::EventLog::global().emit(obs::Event("recovery.checkpoint_restored")
                                       .field("bytes", bytes.size())
                                       .field("epoch", out.epoch));
    } else {
      obs::EventLog::global().emit(
          obs::Event("recovery.checkpoint_rejected")
              .field("reason", to_string(err))
              .field("bytes", bytes.size()));
    }
  }
  return err;
}

}  // namespace dwatch::recovery
