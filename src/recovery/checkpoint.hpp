// Crash-safe checkpoint/restore of the pipeline's long-lived state.
//
// D-Watch accumulates state that is expensive or impossible to rebuild
// after a crash: per-array calibration offsets (a GA+GD solve each),
// reference spectra captured while the room was empty (re-capturing
// needs an empty room), tracker tracks, the dedupe quarantine, and the
// lifetime counters operators alert on. A Snapshot carries all of it;
// the codec frames it into a versioned binary image where every section
// is independently CRC16-protected (the same Gen2 CRC the RFID air
// protocol uses, rfid/crc16.hpp), and CheckpointStore writes the image
// atomically — temp file then rename — so a crash mid-write can corrupt
// at most the temp file, never the last good snapshot.
//
// Restore is strict: a truncated, bit-flipped, or version-skewed image
// is rejected with a specific RestoreError and the caller cold-starts.
// A restored pipeline resumes bit-identical to one that never stopped
// (tests/recovery/self_healing_test.cpp asserts this end to end).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/kalman.hpp"
#include "core/pipeline.hpp"
#include "core/tracker.hpp"
#include "rfid/report_stream.hpp"

namespace dwatch::recovery {

/// Lifetime counters of the self-healing layer itself (checkpointed so
/// a restore remembers how often it has healed).
struct RecoveryStats {
  std::uint64_t checkpoints_written = 0;
  std::uint64_t checkpoint_crashes = 0;  ///< injected mid-write crashes
  std::uint64_t restores = 0;
  std::uint64_t recalibrations_triggered = 0;
  std::uint64_t recalibrations_accepted = 0;
  std::uint64_t recalibrations_rolled_back = 0;
  std::uint64_t baselines_invalidated = 0;  ///< arrays whose refs were reset
  std::uint64_t drift_epochs = 0;     ///< epochs with >= 1 drifting array
  std::uint64_t epochs_aborted = 0;   ///< supervisor deadline aborts

  bool operator==(const RecoveryStats&) const = default;
};

/// Everything a crash must not lose.
struct Snapshot {
  core::PipelineState pipeline;
  std::optional<core::KalmanState> kalman;
  std::optional<core::AlphaBetaState> alpha_beta;
  std::vector<rfid::QuarantineEntry> quarantine;
  RecoveryStats stats;
  std::uint64_t epoch = 0;  ///< last fully completed epoch index
};

/// Why a restore refused an image. Anything but kNone means the caller
/// must cold-start (or try an older snapshot).
enum class RestoreError : std::uint8_t {
  kNone = 0,
  kMissing,     ///< no snapshot file at the path
  kBadMagic,    ///< not a DWCP image at all
  kBadVersion,  ///< written by an incompatible format version
  kTruncated,   ///< image ends mid-section / end marker absent
  kBadCrc,      ///< a section failed its CRC16 (bit rot, torn write)
  kMalformed,   ///< CRC passed but the payload is inconsistent
};

[[nodiscard]] std::string_view to_string(RestoreError error) noexcept;

/// Current on-disk format version. Bump on any layout change; old
/// images are then rejected with kBadVersion (no migration — the state
/// is a cache of recomputable-with-effort values, not a database).
inline constexpr std::uint16_t kCheckpointVersion = 1;

/// Serialize a snapshot into the framed binary image.
[[nodiscard]] std::vector<std::uint8_t> encode_snapshot(const Snapshot& snap);

/// Parse an image. On success returns kNone and fills `out`; on any
/// failure `out` is untouched.
[[nodiscard]] RestoreError decode_snapshot(
    std::span<const std::uint8_t> bytes, Snapshot& out);

/// Atomic on-disk snapshot storage: write() streams the image to
/// `path + ".tmp"` and renames over `path` only once complete, so the
/// previous snapshot survives any mid-write death.
class CheckpointStore {
 public:
  /// Crash injection hook for write(): given the full image size,
  /// return how many bytes "reach disk" before the process dies
  /// (the temp file is left as wreckage, the rename never happens), or
  /// nullopt to let the write complete. Wire FaultInjector::
  /// checkpoint_crash through this to test torn writes.
  using CrashFilter =
      std::function<std::optional<std::size_t>(std::size_t image_bytes)>;

  explicit CheckpointStore(std::string path) : path_(std::move(path)) {}

  /// Returns true when the snapshot was durably committed; false when
  /// the crash filter fired (previous snapshot intact) or the
  /// filesystem refused the write.
  bool write(const Snapshot& snap, const CrashFilter& crash = nullptr);

  /// Load and decode the last committed snapshot.
  [[nodiscard]] RestoreError load(Snapshot& out) const;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

}  // namespace dwatch::recovery
