#include "recovery/self_healing.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"

namespace dwatch::recovery {

RecoveryCoordinator::RecoveryCoordinator(
    core::DWatchPipeline& pipeline,
    std::vector<core::WirelessCalibrator> calibrators, CheckpointStore store,
    RecoveryOptions options)
    : pipeline_(pipeline),
      calibrators_(std::move(calibrators)),
      store_(std::move(store)),
      options_(options),
      watchdog_(pipeline.num_arrays(), options.watchdog),
      recalibration_(options.background ? pipeline.thread_pool() : nullptr,
                     options.recalibration),
      cooldown_until_(pipeline.num_arrays(), 0) {
  if (calibrators_.size() != pipeline_.num_arrays()) {
    throw std::invalid_argument(
        "RecoveryCoordinator: one calibrator per array required");
  }
}

Snapshot RecoveryCoordinator::build_snapshot(std::uint64_t epoch) const {
  Snapshot snap;
  snap.pipeline = pipeline_.export_state();
  if (kalman_ != nullptr) snap.kalman = kalman_->state();
  if (alpha_beta_ != nullptr) snap.alpha_beta = alpha_beta_->state();
  if (assembler_ != nullptr) {
    snap.quarantine = assembler_->quarantine_fingerprints();
  }
  snap.stats = stats_;
  snap.epoch = epoch;
  return snap;
}

void RecoveryCoordinator::apply_outcome(const RecalibrationOutcome& outcome,
                                        std::uint64_t epoch,
                                        std::vector<std::size_t>& invalidated) {
  if (outcome.accepted) {
    // Atomic from the fix path's perspective: both mutations happen
    // here on the caller's thread, between epochs.
    pipeline_.set_calibration(outcome.array_idx, outcome.offsets);
    pipeline_.clear_baselines(outcome.array_idx);
    ++stats_.recalibrations_accepted;
    ++stats_.baselines_invalidated;
    invalidated.push_back(outcome.array_idx);
  } else {
    ++stats_.recalibrations_rolled_back;
    cooldown_until_[outcome.array_idx] =
        epoch + options_.recalibration_cooldown;
  }
  // Either way the residual landscape changed (new Γ̂, or the drift is
  // still in place and the detection already fired): re-learn.
  const DriftState before = watchdog_.state(outcome.array_idx);
  watchdog_.reset(outcome.array_idx);
  notify_state_change(outcome.array_idx, before);
}

void RecoveryCoordinator::notify_state_change(std::size_t array_idx,
                                              DriftState before) const {
  if (!state_hook_) return;
  const DriftState now = watchdog_.state(array_idx);
  if (now != before) state_hook_(array_idx, before, now);
}

std::vector<std::size_t> RecoveryCoordinator::end_epoch(
    std::uint64_t epoch,
    std::span<const std::vector<core::CalibrationMeasurement>>
        anchors_per_array,
    const CheckpointStore::CrashFilter& crash) {
  std::vector<std::size_t> invalidated;

  // 1. Score the installed calibration on this epoch's anchors.
  bool any_drifting = false;
  const std::size_t n =
      std::min(anchors_per_array.size(), pipeline_.num_arrays());
  for (std::size_t a = 0; a < n; ++a) {
    const auto& anchors = anchors_per_array[a];
    const auto& incumbent = pipeline_.calibration(a);
    if (anchors.empty() || !incumbent.has_value()) continue;
    double score = 0.0;
    try {
      const core::CalibrationProbe probe =
          calibrators_[a].make_probe(anchors);
      score = calibrators_[a].residual(probe, *incumbent);
    } catch (const std::exception&) {
      continue;  // anchors too corrupted this epoch: no probe
    }
    if (obs::enabled()) {
      obs::MetricsRegistry::global()
          .gauge("dwatch_recovery_drift_residual")
          .set(score);
    }
    const DriftState before = watchdog_.state(a);
    const DriftState state = watchdog_.observe(a, score);
    notify_state_change(a, before);
    if (state != DriftState::kDrifting) continue;
    any_drifting = true;
    if (recalibration_.busy() || epoch < cooldown_until_[a]) continue;
    ++stats_.recalibrations_triggered;
    (void)recalibration_.launch(a, calibrators_[a], anchors, *incumbent);
  }
  if (any_drifting) ++stats_.drift_epochs;

  // 2. Collect a finished recalibration (if any) and swap/rollback on
  // this thread — the fix path never sees a half-installed Γ̂.
  if (const auto outcome = recalibration_.poll()) {
    apply_outcome(*outcome, epoch, invalidated);
  }

  // 3. Checkpoint cadence — after the swap, so the snapshot carries the
  // calibration the next epoch will actually run with.
  if (options_.checkpoint_every > 0 &&
      (epoch + 1) % options_.checkpoint_every == 0) {
    bool crashed = false;
    CheckpointStore::CrashFilter filter;
    if (crash) {
      filter = [&crash, &crashed](std::size_t bytes) {
        const auto cut = crash(bytes);
        crashed = cut.has_value();
        return cut;
      };
    }
    if (store_.write(build_snapshot(epoch), filter)) {
      ++stats_.checkpoints_written;
      last_checkpoint_epoch_ = epoch;
    } else if (crashed) {
      ++stats_.checkpoint_crashes;
    }
  }
  return invalidated;
}

RestoreError RecoveryCoordinator::restore() {
  Snapshot snap;
  const RestoreError err = store_.load(snap);
  if (err != RestoreError::kNone) return err;
  pipeline_.restore(snap.pipeline);
  if (kalman_ != nullptr && snap.kalman.has_value()) {
    kalman_->restore(*snap.kalman);
  }
  if (alpha_beta_ != nullptr && snap.alpha_beta.has_value()) {
    alpha_beta_->restore(*snap.alpha_beta);
  }
  if (assembler_ != nullptr) assembler_->restore_quarantine(snap.quarantine);
  stats_ = snap.stats;
  ++stats_.restores;
  last_checkpoint_epoch_ = snap.epoch;
  return RestoreError::kNone;
}

void RecoveryCoordinator::drain() {
  if (const auto outcome = recalibration_.wait()) {
    std::vector<std::size_t> invalidated;
    apply_outcome(*outcome, last_checkpoint_epoch_, invalidated);
  }
}

}  // namespace dwatch::recovery
