// Background recalibration: re-run the Section 4.1 hybrid GA+GD solve
// off the fix path and hot-swap the result only when it beats the
// incumbent.
//
// When the drift watchdog flags an array, the localization loop must
// not stall for a multi-second optimizer run. RecalibrationManager
// launches the solve on a worker (core::ThreadPool) against a COPY of
// the anchor measurements; the fix path keeps using the incumbent Γ̂
// until poll() observes the finished task and performs the swap on the
// caller's thread — the pipeline itself is never touched concurrently.
//
// Acceptance is residual-based: the candidate offsets must score a
// strictly better Eq. 11 residual than the incumbent on the SAME probe
// (same anchor measurements). A solve that converged to a worse basin,
// or ran against anchors corrupted by transport faults, is rolled back
// and the incumbent stays — a bad recalibration must never make the
// system worse than the drift it was meant to fix.
#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <vector>

#include "core/calibration.hpp"
#include "core/thread_pool.hpp"
#include "rf/noise.hpp"

namespace dwatch::recovery {

struct RecalibrationOptions {
  /// Accept the candidate only when
  /// candidate_residual < acceptance_margin * incumbent_residual.
  /// 1.0 = strictly better; < 1.0 demands a margin.
  double acceptance_margin = 1.0;
  /// Seed for the solver RNG. Each launch derives a fresh deterministic
  /// stream from (seed, array, generation), so repeated recalibrations
  /// of the same array explore different GA populations.
  std::uint64_t seed = 0x5245'4341ULL;  // "RECA"
};

/// What one finished recalibration decided.
struct RecalibrationOutcome {
  std::size_t array_idx = 0;
  bool accepted = false;
  std::vector<double> offsets;  ///< candidate (valid when accepted)
  double incumbent_residual = 0.0;
  double candidate_residual = 0.0;
  std::size_t evaluations = 0;
};

class RecalibrationManager {
 public:
  /// `pool` may be null: launches then run synchronously inside
  /// launch() and poll() returns the outcome immediately after —
  /// the mode deterministic tests use.
  RecalibrationManager(std::shared_ptr<core::ThreadPool> pool,
                       RecalibrationOptions options = {});

  /// Start a recalibration for one array. `calibrator` must outlive the
  /// task; `measurements` and `incumbent` are copied into it. Returns
  /// false (and does nothing) when a task is already in flight —
  /// recalibrations are serialized, the watchdog will still be tripped
  /// next epoch.
  bool launch(std::size_t array_idx,
              const core::WirelessCalibrator& calibrator,
              std::vector<core::CalibrationMeasurement> measurements,
              std::vector<double> incumbent);

  /// A launch is in flight and not yet collected.
  [[nodiscard]] bool busy() const noexcept { return future_.valid(); }

  /// Non-blocking collect: the finished outcome, or nullopt while the
  /// solve is still running (or nothing was launched). The caller
  /// performs the actual swap/rollback — on ITS thread.
  [[nodiscard]] std::optional<RecalibrationOutcome> poll();

  /// Blocking collect (tests, shutdown).
  [[nodiscard]] std::optional<RecalibrationOutcome> wait();

 private:
  std::shared_ptr<core::ThreadPool> pool_;
  RecalibrationOptions options_;
  std::future<RecalibrationOutcome> future_;
  std::uint64_t generation_ = 0;
};

}  // namespace dwatch::recovery
