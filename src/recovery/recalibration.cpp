#include "recovery/recalibration.hpp"

#include <chrono>
#include <utility>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"

namespace dwatch::recovery {

RecalibrationManager::RecalibrationManager(
    std::shared_ptr<core::ThreadPool> pool, RecalibrationOptions options)
    : pool_(std::move(pool)), options_(options) {}

bool RecalibrationManager::launch(
    std::size_t array_idx, const core::WirelessCalibrator& calibrator,
    std::vector<core::CalibrationMeasurement> measurements,
    std::vector<double> incumbent) {
  if (future_.valid()) return false;
  const std::uint64_t gen = ++generation_;
  const RecalibrationOptions options = options_;
  // The task owns copies of everything mutable; `calibrator` is
  // immutable and shared by pointer (the caller guarantees lifetime).
  auto task = [array_idx, options, gen, cal = &calibrator,
               measurements = std::move(measurements),
               incumbent = std::move(incumbent)]() -> RecalibrationOutcome {
    RecalibrationOutcome out;
    out.array_idx = array_idx;
    try {
      const core::CalibrationProbe probe = cal->make_probe(measurements);
      out.incumbent_residual = cal->residual(probe, incumbent);
      // Fresh deterministic stream per (seed, array, generation): a
      // second attempt on the same array explores a different GA
      // population instead of re-finding the same basin.
      rf::Rng rng(options.seed + array_idx * 1000003ULL + gen * 7919ULL);
      core::CalibrationResult result = cal->calibrate(measurements, rng);
      out.candidate_residual = cal->residual(probe, result.offsets);
      out.evaluations = result.evaluations;
      out.accepted = out.candidate_residual <
                     options.acceptance_margin * out.incumbent_residual;
      if (out.accepted) out.offsets = std::move(result.offsets);
    } catch (const std::exception&) {
      // Anchors too corrupted to even form a probe (all-fault epochs):
      // treat exactly like a worse candidate — keep the incumbent.
      out.accepted = false;
    }
    return out;
  };

  if (obs::enabled()) {
    obs::MetricsRegistry::global()
        .counter("dwatch_recovery_recalibrations_total")
        .inc();
    obs::EventLog::global().emit(obs::Event("recovery.recalibration_launched")
                                     .field("array", array_idx)
                                     .field("generation", gen)
                                     .field("background", pool_ != nullptr));
  }

  if (pool_) {
    auto promise = std::make_shared<std::promise<RecalibrationOutcome>>();
    future_ = promise->get_future();
    (void)pool_->submit([task = std::move(task), promise]() mutable {
      try {
        promise->set_value(task());
      } catch (...) {
        promise->set_exception(std::current_exception());
      }
    });
  } else {
    // Synchronous mode: run on this thread, park the result in the
    // future so poll()/wait() behave identically to background mode.
    std::promise<RecalibrationOutcome> promise;
    future_ = promise.get_future();
    promise.set_value(task());
  }
  return true;
}

std::optional<RecalibrationOutcome> RecalibrationManager::poll() {
  if (!future_.valid()) return std::nullopt;
  if (future_.wait_for(std::chrono::seconds(0)) !=
      std::future_status::ready) {
    return std::nullopt;
  }
  RecalibrationOutcome out = future_.get();
  if (obs::enabled()) {
    obs::EventLog::global().emit(
        obs::Event(out.accepted ? "recovery.recalibration_accepted"
                                : "recovery.recalibration_rolled_back")
            .field("array", out.array_idx)
            .field("incumbent_residual", out.incumbent_residual)
            .field("candidate_residual", out.candidate_residual)
            .field("evaluations", out.evaluations));
    if (!out.accepted) {
      obs::MetricsRegistry::global()
          .counter("dwatch_recovery_recalibrations_rolled_back_total")
          .inc();
    }
  }
  return out;
}

std::optional<RecalibrationOutcome> RecalibrationManager::wait() {
  if (!future_.valid()) return std::nullopt;
  future_.wait();
  return poll();
}

}  // namespace dwatch::recovery
