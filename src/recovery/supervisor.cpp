#include "recovery/supervisor.hpp"

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <utility>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace dwatch::recovery {

std::map<std::string, std::uint64_t> default_stage_budgets() {
  // Envelope numbers per stage (µs): generous multiples of the bench
  // p99s in DESIGN.md's stage taxonomy, so only a genuinely sick stage
  // trips.
  return {
      {"llrp.decode_report", 2'000},
      {"report_stream.ingest", 2'000},
      {"pmusic.power", 5'000},
      {"pmusic.spectrum", 10'000},
      {"music.spectrum", 10'000},
      {"change.detect", 2'000},
      {"pipeline.observe", 20'000},
      {"pipeline.observe_batch", 100'000},
      {"localize.grid", 50'000},
      {"localize.hill_climb", 10'000},
      {"localize.fix", 60'000},
      {"calibration.solve", 5'000'000},
  };
}

EpochSupervisor::EpochSupervisor(
    std::map<std::string, std::uint64_t> budgets, Clock clock)
    : budgets_(std::move(budgets)), clock_(std::move(clock)) {
  if (!clock_) clock_ = [] { return obs::now_us(); };
}

EpochSupervisor::~EpochSupervisor() { reap(); }

void EpochSupervisor::reap() {
  if (worker_.joinable()) worker_.join();
}

void EpochSupervisor::begin_epoch(std::uint64_t epoch) {
  epoch_ = epoch;
  aborted_ = false;
  current_stage_.clear();
  ++stats_.epochs_supervised;
}

void EpochSupervisor::begin_stage(std::string_view stage) {
  current_stage_.assign(stage);
  stage_start_us_ = clock_();
}

bool EpochSupervisor::end_stage(std::string_view stage) {
  const std::uint64_t elapsed = clock_() - stage_start_us_;
  current_stage_.clear();
  const auto it = budgets_.find(std::string(stage));
  if (it != budgets_.end() && elapsed > it->second) {
    note_overrun(stage, elapsed, it->second);
  }
  return !aborted_;
}

bool EpochSupervisor::run_guarded(std::string_view stage,
                                  std::uint64_t budget_us,
                                  const std::function<void()>& body) {
  // A zombie from a previous timed-out stage must finish before we
  // spend another thread (bounds resource use to one straggler).
  reap();

  struct GuardState {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
  };
  auto state = std::make_shared<GuardState>();
  worker_ = std::thread([body, state] {
    body();
    {
      const std::lock_guard<std::mutex> lock(state->m);
      state->done = true;
    }
    state->cv.notify_all();
  });

  std::unique_lock<std::mutex> lock(state->m);
  const bool finished =
      state->cv.wait_for(lock, std::chrono::microseconds(budget_us),
                         [&state] { return state->done; });
  lock.unlock();
  if (finished) {
    worker_.join();
    return true;
  }
  // The stage is hung (or just overlong): abandon the epoch now, let
  // the thread run to completion in the background and join it later.
  note_overrun(stage, budget_us, budget_us);
  return false;
}

void EpochSupervisor::note_overrun(std::string_view stage,
                                   std::uint64_t elapsed_us,
                                   std::uint64_t budget_us) {
  ++stats_.stage_overruns;
  if (obs::enabled()) {
    obs::MetricsRegistry::global()
        .counter("dwatch_recovery_stage_overruns_total")
        .inc();
    obs::EventLog::global().emit(obs::Event("recovery.stage_overrun")
                                     .field("stage", stage)
                                     .field("epoch", epoch_)
                                     .field("elapsed_us", elapsed_us)
                                     .field("budget_us", budget_us));
  }
  if (!aborted_) {
    aborted_ = true;
    ++stats_.epochs_aborted;
    if (obs::enabled()) {
      obs::MetricsRegistry::global()
          .counter("dwatch_recovery_epochs_aborted_total")
          .inc();
      obs::EventLog::global().emit(obs::Event("recovery.epoch_aborted")
                                       .field("epoch", epoch_)
                                       .field("stage", stage));
    }
  }
}

}  // namespace dwatch::recovery
