#include "recovery/drift_watchdog.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"

namespace dwatch::recovery {

DriftWatchdog::DriftWatchdog(std::size_t num_arrays,
                             DriftWatchdogOptions options)
    : options_(options), per_array_(num_arrays) {
  if (num_arrays == 0) {
    throw std::invalid_argument("DriftWatchdog: zero arrays");
  }
  if (options_.ewma_alpha <= 0.0 || options_.ewma_alpha > 1.0) {
    throw std::invalid_argument("DriftWatchdog: ewma_alpha out of (0, 1]");
  }
}

DriftState DriftWatchdog::observe(std::size_t array_idx, double residual) {
  PerArray& a = per_array_.at(array_idx);
  if (a.state == DriftState::kDrifting) return a.state;  // latched

  ++a.epochs;
  if (a.epochs <= options_.warmup_epochs) {
    // Learning phase: seed the EWMA with a plain running mean so the
    // first sample does not dominate.
    a.ewma += (residual - a.ewma) / static_cast<double>(a.epochs);
    a.state = a.epochs == options_.warmup_epochs ? DriftState::kHealthy
                                                 : DriftState::kLearning;
    return a.state;
  }

  // Scale-free exceedance above the learned healthy level.
  const double scale = std::max(a.ewma, options_.min_scale);
  const double z = (residual - a.ewma) / scale;
  a.cusum = std::max(0.0, a.cusum + z - options_.cusum_slack);

  if (a.cusum >= options_.cusum_threshold) {
    a.state = DriftState::kDrifting;
    if (obs::enabled()) {
      obs::MetricsRegistry::global()
          .counter("dwatch_recovery_drift_detections_total")
          .inc();
      obs::EventLog::global().emit(obs::Event("recovery.drift_detected")
                                       .field("array", array_idx)
                                       .field("residual", residual)
                                       .field("healthy_level", a.ewma)
                                       .field("cusum", a.cusum));
    }
    return a.state;
  }

  // Only a healthy residual may update the healthy reference —
  // otherwise a slow drift drags its own baseline along and never
  // accumulates enough exceedance to trip.
  if (z <= options_.cusum_slack) {
    a.ewma += options_.ewma_alpha * (residual - a.ewma);
  }
  a.state = DriftState::kHealthy;
  return a.state;
}

DriftState DriftWatchdog::state(std::size_t array_idx) const {
  return per_array_.at(array_idx).state;
}

double DriftWatchdog::healthy_level(std::size_t array_idx) const {
  return per_array_.at(array_idx).ewma;
}

double DriftWatchdog::cusum(std::size_t array_idx) const {
  return per_array_.at(array_idx).cusum;
}

void DriftWatchdog::reset(std::size_t array_idx) {
  per_array_.at(array_idx) = PerArray{};
}

}  // namespace dwatch::recovery
