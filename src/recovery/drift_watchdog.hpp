// Calibration-drift detection on known-LoS anchor tags.
//
// Section 4.1's wireless calibration leaves a residual
// ‖a(θ_LoS)ᴴ Γ̂ᴴ U_N‖² ≈ 0 on any tag whose line-of-sight angle is
// known: after de-rotating by the estimated phase offsets Γ̂, the LoS
// steering vector must lie in the signal subspace. When the hardware's
// true offsets creep away from Γ̂ (thermal drift, reader reboot), that
// orthogonality degrades EVERY epoch — which makes the calibration
// residual on a handful of fixed anchor tags a free, per-epoch health
// probe of the calibration itself.
//
// The watchdog tracks the residual per array with an EWMA of the
// healthy level plus a one-sided CUSUM on the normalized exceedance, so
// a slow 0.1 rad/epoch creep accumulates to a detection within a few
// epochs while a single noisy epoch does not trip it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dwatch::recovery {

enum class DriftState : std::uint8_t {
  kLearning = 0,  ///< still estimating the healthy residual level
  kHealthy,
  kDrifting,  ///< CUSUM crossed the threshold: recalibrate
};

struct DriftWatchdogOptions {
  /// EWMA smoothing of the healthy residual level (only updated while
  /// healthy, so a drifting residual cannot poison its own reference).
  double ewma_alpha = 0.2;
  /// CUSUM allowance: exceedances below `slack` standard units do not
  /// accumulate (absorbs residual noise around the healthy level).
  double cusum_slack = 0.5;
  /// Detection threshold on the accumulated exceedance.
  double cusum_threshold = 3.0;
  /// Epochs spent learning the healthy level before detection arms.
  std::size_t warmup_epochs = 2;
  /// Normalization floor: residuals are compared RELATIVE to the
  /// healthy mean, z = (r - mean) / max(mean, floor), so the detector
  /// is scale-free across array geometries and snapshot counts.
  double min_scale = 1e-9;
};

/// Per-array EWMA + CUSUM drift detector. Deliberately NOT checkpointed:
/// after a restore it re-learns the healthy level in warmup_epochs —
/// cheap, and immune to restoring a poisoned reference.
class DriftWatchdog {
 public:
  explicit DriftWatchdog(std::size_t num_arrays,
                         DriftWatchdogOptions options = {});

  /// Feed one epoch's anchor residual for one array; returns the state
  /// after the update. Transition to kDrifting latches until reset().
  DriftState observe(std::size_t array_idx, double residual);

  [[nodiscard]] DriftState state(std::size_t array_idx) const;
  /// The learned healthy residual level (EWMA).
  [[nodiscard]] double healthy_level(std::size_t array_idx) const;
  /// Current accumulated CUSUM exceedance.
  [[nodiscard]] double cusum(std::size_t array_idx) const;

  /// Forget one array's history (after a calibration swap or rollback:
  /// the residual scale has changed, re-learn from scratch).
  void reset(std::size_t array_idx);

  [[nodiscard]] std::size_t num_arrays() const noexcept {
    return per_array_.size();
  }

 private:
  struct PerArray {
    double ewma = 0.0;
    double cusum = 0.0;
    std::size_t epochs = 0;
    DriftState state = DriftState::kLearning;
  };

  DriftWatchdogOptions options_;
  std::vector<PerArray> per_array_;
};

}  // namespace dwatch::recovery
