// Applies a FaultPlan to live traffic at the two places real failures
// enter a deployment:
//
//  * the WIRE layer — framed LLRP byte messages can be truncated,
//    reordered within an epoch, or lost outright (timeout);
//  * the OBSERVATION layer — decoded TagObservations can vanish (tag
//    faded), lose one element's samples (element death), suffer a phase
//    jump mid-epoch (RF chain glitch), be replayed from the previous
//    epoch (stale retransmission), or be duplicated.
//
// The injector is deterministic: identical (plan, input sequence) pairs
// produce identical outputs and identical counters. All mutations are
// plausible hardware behaviours, not random bit noise — the point is to
// exercise the pipeline's degraded modes, not its decoder fuzz armor
// (truncation covers the latter).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "faults/fault_plan.hpp"
#include "rfid/llrp.hpp"

namespace dwatch::faults {

/// How many of each fault class actually struck (deterministic for a
/// fixed plan + input sequence).
struct FaultCounters {
  std::size_t frames_truncated = 0;
  std::size_t frames_reordered = 0;
  std::size_t frames_timed_out = 0;
  std::size_t observations_dropped = 0;
  std::size_t elements_killed = 0;
  std::size_t phase_jumps = 0;
  std::size_t stale_reports = 0;
  std::size_t duplicate_reports = 0;
  std::size_t phase_drifts = 0;       ///< observations with drift applied
  std::size_t reader_reboots = 0;     ///< per-(epoch, array) reboot events
  std::size_t checkpoint_crashes = 0; ///< mid-write crash decisions

  [[nodiscard]] std::size_t total() const noexcept {
    return frames_truncated + frames_reordered + frames_timed_out +
           observations_dropped + elements_killed + phase_jumps +
           stale_reports + duplicate_reports + phase_drifts +
           reader_reboots + checkpoint_crashes;
  }
  bool operator==(const FaultCounters&) const = default;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(plan) {}

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const FaultCounters& counters() const noexcept {
    return counters_;
  }
  void reset_counters() noexcept { counters_ = {}; }

  /// Wire layer: pass one framed message through the lossy link.
  /// Returns nullopt when the frame times out (never delivered), a
  /// shortened prefix when truncated, or the frame untouched.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> filter_frame(
      std::vector<std::uint8_t> frame, std::uint64_t epoch,
      std::uint64_t array, std::uint64_t frame_idx = 0);

  /// Wire layer: possibly swap one adjacent pair of an epoch's frames
  /// (in-flight reordering across a send queue).
  void maybe_reorder(std::vector<std::vector<std::uint8_t>>& frames,
                     std::uint64_t epoch, std::uint64_t array);

  /// Observation layer: mutate a decoded report in place. Applies, per
  /// observation: drop, stale replay, element death, mid-epoch phase
  /// jump, duplication, plus the STATE faults — slow calibration drift
  /// (per-element creep proportional to the epoch index, rate in
  /// rad/epoch) and the persistent per-element phase step a reader
  /// reboot leaves behind. Also records each surviving observation so a
  /// later epoch's stale fault can replay it.
  void corrupt_report(rfid::RoAccessReport& report, std::uint64_t epoch,
                      std::uint64_t array);

  /// Checkpoint-crash decision for this epoch's snapshot write. When
  /// the fault fires, returns the fraction of the snapshot that reaches
  /// disk before the "process dies" (feed into a CheckpointStore write
  /// filter); nullopt means the write completes normally. Deterministic
  /// in (plan, epoch) but counted, so call once per write.
  [[nodiscard]] std::optional<double> checkpoint_crash(std::uint64_t epoch);

 private:
  /// Apply per-observation faults; returns false when the observation is
  /// dropped entirely.
  bool corrupt_observation(rfid::TagObservation& obs, std::uint64_t epoch,
                           std::uint64_t array);

  FaultPlan plan_;
  FaultCounters counters_;
  /// Last observation seen per (array, EPC) — the stale-replay source.
  std::map<std::pair<std::uint64_t, rfid::Epc96>, rfid::TagObservation>
      history_;
  /// Epoch of the most recent reboot per array: the per-element phase
  /// step it caused persists until the NEXT reboot redraws it.
  std::map<std::uint64_t, std::uint64_t> reboot_epoch_;
};

}  // namespace dwatch::faults
