#include "faults/fault_plan.hpp"

namespace dwatch::faults {

namespace {

/// splitmix64 finalizer: a full-avalanche 64-bit mix (Steele et al.).
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Hash of (seed, kind, site, salt). Each coordinate passes through the
/// mixer before combining so low-entropy inputs (small epoch/array
/// indices) still decorrelate fully across sites.
std::uint64_t site_hash(std::uint64_t seed, FaultKind kind,
                        const FaultSite& site, std::uint64_t salt) noexcept {
  std::uint64_t h = mix64(seed ^ salt);
  h = mix64(h ^ (static_cast<std::uint64_t>(kind) + 1));
  h = mix64(h ^ site.epoch);
  h = mix64(h ^ site.array);
  h = mix64(h ^ site.tag);
  h = mix64(h ^ site.extra);
  return h;
}

/// Map a hash to uniform [0, 1) using the top 53 bits.
double to_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t kFireSalt = 0x46495245ULL;       // "FIRE"
constexpr std::uint64_t kMagnitudeSalt = 0x4D41474EULL;  // "MAGN"
constexpr std::uint64_t kPickSalt = 0x5049434BULL;       // "PICK"

}  // namespace

std::string_view to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kFrameTruncation:
      return "frame_truncation";
    case FaultKind::kFrameReorder:
      return "frame_reorder";
    case FaultKind::kFrameTimeout:
      return "frame_timeout";
    case FaultKind::kObservationDrop:
      return "observation_drop";
    case FaultKind::kElementDeath:
      return "element_death";
    case FaultKind::kPhaseJump:
      return "phase_jump";
    case FaultKind::kStaleReport:
      return "stale_report";
    case FaultKind::kDuplicateReport:
      return "duplicate_report";
    case FaultKind::kSlowPhaseDrift:
      return "slow_phase_drift";
    case FaultKind::kRebootPhaseStep:
      return "reboot_phase_step";
    case FaultKind::kCheckpointCrash:
      return "checkpoint_crash";
  }
  return "unknown";
}

FaultRates FaultRates::uniform(double rate) noexcept {
  FaultRates r;
  r.frame_truncation = rate;
  r.frame_reorder = rate;
  r.frame_timeout = rate;
  r.observation_drop = rate;
  r.element_death = rate;
  r.phase_jump = rate;
  r.stale_report = rate;
  r.duplicate_report = rate;
  return r;
}

FaultRates FaultRates::only(FaultKind kind, double rate) noexcept {
  FaultRates r;
  switch (kind) {
    case FaultKind::kFrameTruncation:
      r.frame_truncation = rate;
      break;
    case FaultKind::kFrameReorder:
      r.frame_reorder = rate;
      break;
    case FaultKind::kFrameTimeout:
      r.frame_timeout = rate;
      break;
    case FaultKind::kObservationDrop:
      r.observation_drop = rate;
      break;
    case FaultKind::kElementDeath:
      r.element_death = rate;
      break;
    case FaultKind::kPhaseJump:
      r.phase_jump = rate;
      break;
    case FaultKind::kStaleReport:
      r.stale_report = rate;
      break;
    case FaultKind::kDuplicateReport:
      r.duplicate_report = rate;
      break;
    case FaultKind::kSlowPhaseDrift:
      r.slow_phase_drift = rate;
      break;
    case FaultKind::kRebootPhaseStep:
      r.reboot_phase_step = rate;
      break;
    case FaultKind::kCheckpointCrash:
      r.checkpoint_crash = rate;
      break;
  }
  return r;
}

double FaultRates::rate(FaultKind kind) const noexcept {
  switch (kind) {
    case FaultKind::kFrameTruncation:
      return frame_truncation;
    case FaultKind::kFrameReorder:
      return frame_reorder;
    case FaultKind::kFrameTimeout:
      return frame_timeout;
    case FaultKind::kObservationDrop:
      return observation_drop;
    case FaultKind::kElementDeath:
      return element_death;
    case FaultKind::kPhaseJump:
      return phase_jump;
    case FaultKind::kStaleReport:
      return stale_report;
    case FaultKind::kDuplicateReport:
      return duplicate_report;
    case FaultKind::kSlowPhaseDrift:
      return slow_phase_drift;
    case FaultKind::kRebootPhaseStep:
      return reboot_phase_step;
    case FaultKind::kCheckpointCrash:
      return checkpoint_crash;
  }
  return 0.0;
}

bool FaultPlan::fires(FaultKind kind, const FaultSite& site) const noexcept {
  const double r = rates_.rate(kind);
  if (r <= 0.0) return false;
  if (r >= 1.0) return true;
  return to_unit(site_hash(seed_, kind, site, kFireSalt)) < r;
}

double FaultPlan::magnitude(FaultKind kind, const FaultSite& site) const
    noexcept {
  return to_unit(site_hash(seed_, kind, site, kMagnitudeSalt));
}

std::uint64_t FaultPlan::pick(FaultKind kind, const FaultSite& site,
                              std::uint64_t n) const noexcept {
  if (n == 0) return 0;
  return site_hash(seed_, kind, site, kPickSalt) % n;
}

}  // namespace dwatch::faults
