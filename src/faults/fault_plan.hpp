// Deterministic fault schedules for resilience testing.
//
// Real COTS deployments lose evidence constantly: LLRP sessions stall,
// frames arrive truncated or out of order, tags fade in deadzones,
// antenna elements die, RF chains glitch their phase mid-epoch, and
// readers retransmit stale or duplicate reports. A FaultPlan decides,
// reproducibly, WHERE each of those failures strikes: every decision is
// a pure function of (seed, fault kind, fault site), so two runs with
// the same seed inject byte-identical fault sequences regardless of
// evaluation order — the property the stress suite's bit-identical
// ConfidenceReport assertion rests on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dwatch::faults {

/// The failure taxonomy (DESIGN.md "Failure model & degraded modes").
enum class FaultKind : std::uint8_t {
  kFrameTruncation = 0,  ///< wire frame cut short mid-message
  kFrameReorder,         ///< adjacent frames swapped in flight
  kFrameTimeout,         ///< frame (or control response) never arrives
  kObservationDrop,      ///< one tag's report removed (tag faded)
  kElementDeath,         ///< one ULA element's samples vanish
  kPhaseJump,            ///< RF chain phase-offset jump mid-epoch
  kStaleReport,          ///< previous epoch's observation replayed
  kDuplicateReport,      ///< observation retransmitted twice
  // STATE faults (PR "self-healing"): they corrupt the pipeline's
  // long-lived state rather than a single epoch's traffic.
  kSlowPhaseDrift,   ///< per-port offsets creep epoch over epoch
  kRebootPhaseStep,  ///< reader reboot redraws its per-port offsets
  kCheckpointCrash,  ///< process dies mid-checkpoint-write
};

inline constexpr std::size_t kNumFaultKinds = 11;
/// The original transport/epoch-local taxonomy (everything before the
/// state faults) — the set uniform() sweeps.
inline constexpr std::size_t kNumTransportFaultKinds = 8;

[[nodiscard]] std::string_view to_string(FaultKind kind) noexcept;

/// Per-event injection probability for each fault class, in [0, 1].
struct FaultRates {
  double frame_truncation = 0.0;
  double frame_reorder = 0.0;
  double frame_timeout = 0.0;
  double observation_drop = 0.0;
  double element_death = 0.0;
  double phase_jump = 0.0;
  double stale_report = 0.0;
  double duplicate_report = 0.0;
  /// State-fault knobs. slow_phase_drift is NOT a probability: it is
  /// the drift RATE in rad/epoch (maximum per-element creep; 0 = off).
  /// reboot_phase_step and checkpoint_crash are per-site probabilities
  /// like the transport rates above.
  double slow_phase_drift = 0.0;
  double reboot_phase_step = 0.0;
  double checkpoint_crash = 0.0;

  /// Every TRANSPORT class at the same rate (the stress suite's 10%
  /// sweeps). The state-fault knobs are left at 0 — slow_phase_drift is
  /// a rad/epoch rate, not a probability, so sweeping it uniformly with
  /// the others would silently change its meaning; set them explicitly.
  [[nodiscard]] static FaultRates uniform(double rate) noexcept;

  /// Only `kind` at `rate`, everything else clean (per-class sweeps).
  [[nodiscard]] static FaultRates only(FaultKind kind, double rate) noexcept;

  [[nodiscard]] double rate(FaultKind kind) const noexcept;
};

/// Where a fault may strike. Unused coordinates stay 0; the pair
/// (kind, site) must be unique per potential injection point so
/// decisions are independent across sites.
struct FaultSite {
  std::uint64_t epoch = 0;
  std::uint64_t array = 0;
  std::uint64_t tag = 0;    ///< EPC serial (0 when not tag-scoped)
  std::uint64_t extra = 0;  ///< frame index / element id / round
};

/// Seeded, order-independent fault schedule.
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed, FaultRates rates = {})
      : seed_(seed), rates_(rates) {}

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] const FaultRates& rates() const noexcept { return rates_; }

  /// Does `kind` strike at `site`? Pure in (seed, kind, site): querying
  /// in any order, any number of times, gives the same answer.
  [[nodiscard]] bool fires(FaultKind kind, const FaultSite& site) const
      noexcept;

  /// Deterministic uniform [0, 1) severity draw for a firing fault
  /// (truncation point, phase-jump size, ...). Decorrelated from the
  /// fires() decision at the same site.
  [[nodiscard]] double magnitude(FaultKind kind, const FaultSite& site) const
      noexcept;

  /// Deterministic integer draw in [0, n); returns 0 when n == 0.
  /// Used to pick the dead element, the swapped frame pair, etc.
  [[nodiscard]] std::uint64_t pick(FaultKind kind, const FaultSite& site,
                                   std::uint64_t n) const noexcept;

 private:
  std::uint64_t seed_;
  FaultRates rates_;
};

}  // namespace dwatch::faults
