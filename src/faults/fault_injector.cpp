#include "faults/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace dwatch::faults {

namespace {

constexpr double kTau = 6.283185307179586476925287;

/// Convert a phase offset in radians (any sign) to the additive
/// wire quantization step (full turn = 2^16).
std::uint16_t to_phase_q(double rad) noexcept {
  double frac = rad / kTau;
  frac -= std::floor(frac);  // [0, 1)
  return static_cast<std::uint16_t>(
      static_cast<std::uint32_t>(std::lround(frac * 65536.0)) & 0xFFFFU);
}

}  // namespace

std::optional<std::vector<std::uint8_t>> FaultInjector::filter_frame(
    std::vector<std::uint8_t> frame, std::uint64_t epoch,
    std::uint64_t array, std::uint64_t frame_idx) {
  const FaultSite site{epoch, array, 0, frame_idx};
  if (plan_.fires(FaultKind::kFrameTimeout, site)) {
    ++counters_.frames_timed_out;
    return std::nullopt;
  }
  if (plan_.fires(FaultKind::kFrameTruncation, site) && frame.size() > 1) {
    // Keep a strict prefix: at least 1 byte survives, at least 1 is cut.
    const double m = plan_.magnitude(FaultKind::kFrameTruncation, site);
    const auto keep = static_cast<std::size_t>(
        1 + m * static_cast<double>(frame.size() - 1));
    frame.resize(std::min(keep, frame.size() - 1));
    ++counters_.frames_truncated;
  }
  return frame;
}

void FaultInjector::maybe_reorder(
    std::vector<std::vector<std::uint8_t>>& frames, std::uint64_t epoch,
    std::uint64_t array) {
  if (frames.size() < 2) return;
  const FaultSite site{epoch, array, 0, 0};
  if (!plan_.fires(FaultKind::kFrameReorder, site)) return;
  const std::uint64_t i =
      plan_.pick(FaultKind::kFrameReorder, site, frames.size() - 1);
  std::swap(frames[i], frames[i + 1]);
  ++counters_.frames_reordered;
}

bool FaultInjector::corrupt_observation(rfid::TagObservation& obs,
                                        std::uint64_t epoch,
                                        std::uint64_t array) {
  const FaultSite site{epoch, array, obs.epc.serial(), 0};

  if (plan_.fires(FaultKind::kObservationDrop, site)) {
    ++counters_.observations_dropped;
    return false;
  }

  if (plan_.fires(FaultKind::kStaleReport, site)) {
    const auto it = history_.find({array, obs.epc});
    if (it != history_.end()) {
      obs = it->second;  // replayed old data, old timestamp
      ++counters_.stale_reports;
      return true;  // replay is verbatim; no further corruption
    }
  }

  if (plan_.fires(FaultKind::kElementDeath, site) && !obs.samples.empty()) {
    std::uint16_t max_element = 0;
    for (const rfid::PhaseSample& s : obs.samples) {
      max_element = std::max(max_element, s.element_id);
    }
    const auto dead = static_cast<std::uint16_t>(
        1 + plan_.pick(FaultKind::kElementDeath, site, max_element));
    const auto removed = std::erase_if(
        obs.samples,
        [dead](const rfid::PhaseSample& s) { return s.element_id == dead; });
    if (removed > 0) ++counters_.elements_killed;
  }

  if (plan_.fires(FaultKind::kPhaseJump, site) && !obs.samples.empty()) {
    // The RF chain glitches partway through the epoch: all rounds at or
    // after a pivot carry an extra constant phase. Quantized phase wraps
    // naturally modulo 2^16.
    std::uint32_t min_round = obs.samples.front().round;
    std::uint32_t max_round = min_round;
    for (const rfid::PhaseSample& s : obs.samples) {
      min_round = std::min(min_round, s.round);
      max_round = std::max(max_round, s.round);
    }
    const std::uint64_t span = max_round - min_round + 1;
    const auto pivot = static_cast<std::uint32_t>(
        min_round + plan_.pick(FaultKind::kPhaseJump, site, span));
    // Jump in [1/8, 7/8] of a full turn: always a visible discontinuity.
    const double m = plan_.magnitude(FaultKind::kPhaseJump, site);
    const auto jump =
        static_cast<std::uint16_t>((0.125 + 0.75 * m) * 65536.0);
    for (rfid::PhaseSample& s : obs.samples) {
      if (s.round >= pivot) {
        s.phase_q = static_cast<std::uint16_t>(s.phase_q + jump);
      }
    }
    ++counters_.phase_jumps;
  }

  // STATE faults last — they model the hardware's calibration walking
  // away from Γ̂, so they sit on top of whatever the epoch-local faults
  // left behind.
  const double drift_rate = plan_.rates().slow_phase_drift;
  if (drift_rate > 0.0 && epoch > 0 && !obs.samples.empty()) {
    // Deterministic environmental creep: each element walks away from
    // its calibrated offset at its own rate in [-rate, +rate] rad/epoch
    // (direction drawn once per element, stable across epochs).
    for (rfid::PhaseSample& s : obs.samples) {
      const double dir =
          2.0 * plan_.magnitude(FaultKind::kSlowPhaseDrift,
                                {0, array, 0, s.element_id}) -
          1.0;
      s.phase_q = static_cast<std::uint16_t>(
          s.phase_q +
          to_phase_q(drift_rate * static_cast<double>(epoch) * dir));
    }
    ++counters_.phase_drifts;
  }

  if (const auto rb = reboot_epoch_.find(array); rb != reboot_epoch_.end()) {
    // A rebooted reader's RF chains power up with fresh random offsets;
    // the step persists until the next reboot redraws it.
    for (rfid::PhaseSample& s : obs.samples) {
      const double step =
          plan_.magnitude(FaultKind::kRebootPhaseStep,
                          {rb->second, array, 0, s.element_id});
      s.phase_q =
          static_cast<std::uint16_t>(s.phase_q + to_phase_q(kTau * step));
    }
  }

  return true;
}

void FaultInjector::corrupt_report(rfid::RoAccessReport& report,
                                   std::uint64_t epoch, std::uint64_t array) {
  if (plan_.fires(FaultKind::kRebootPhaseStep, {epoch, array, 0, 0})) {
    const auto it = reboot_epoch_.find(array);
    if (it == reboot_epoch_.end() || it->second != epoch) {
      reboot_epoch_[array] = epoch;
      ++counters_.reader_reboots;
    }
  }
  std::vector<rfid::TagObservation> out;
  out.reserve(report.observations.size());
  for (rfid::TagObservation& obs : report.observations) {
    if (!corrupt_observation(obs, epoch, array)) continue;
    const FaultSite site{epoch, array, obs.epc.serial(), 0};
    out.push_back(obs);
    if (plan_.fires(FaultKind::kDuplicateReport, site)) {
      out.push_back(obs);  // verbatim retransmission
      ++counters_.duplicate_reports;
    }
    history_.insert_or_assign({array, obs.epc}, std::move(obs));
  }
  report.observations = std::move(out);
}

std::optional<double> FaultInjector::checkpoint_crash(std::uint64_t epoch) {
  const FaultSite site{epoch, 0, 0, 0};
  if (!plan_.fires(FaultKind::kCheckpointCrash, site)) return std::nullopt;
  ++counters_.checkpoint_crashes;
  return plan_.magnitude(FaultKind::kCheckpointCrash, site);
}

}  // namespace dwatch::faults
