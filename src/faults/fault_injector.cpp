#include "faults/fault_injector.hpp"

#include <algorithm>
#include <cstddef>

namespace dwatch::faults {

std::optional<std::vector<std::uint8_t>> FaultInjector::filter_frame(
    std::vector<std::uint8_t> frame, std::uint64_t epoch,
    std::uint64_t array, std::uint64_t frame_idx) {
  const FaultSite site{epoch, array, 0, frame_idx};
  if (plan_.fires(FaultKind::kFrameTimeout, site)) {
    ++counters_.frames_timed_out;
    return std::nullopt;
  }
  if (plan_.fires(FaultKind::kFrameTruncation, site) && frame.size() > 1) {
    // Keep a strict prefix: at least 1 byte survives, at least 1 is cut.
    const double m = plan_.magnitude(FaultKind::kFrameTruncation, site);
    const auto keep = static_cast<std::size_t>(
        1 + m * static_cast<double>(frame.size() - 1));
    frame.resize(std::min(keep, frame.size() - 1));
    ++counters_.frames_truncated;
  }
  return frame;
}

void FaultInjector::maybe_reorder(
    std::vector<std::vector<std::uint8_t>>& frames, std::uint64_t epoch,
    std::uint64_t array) {
  if (frames.size() < 2) return;
  const FaultSite site{epoch, array, 0, 0};
  if (!plan_.fires(FaultKind::kFrameReorder, site)) return;
  const std::uint64_t i =
      plan_.pick(FaultKind::kFrameReorder, site, frames.size() - 1);
  std::swap(frames[i], frames[i + 1]);
  ++counters_.frames_reordered;
}

bool FaultInjector::corrupt_observation(rfid::TagObservation& obs,
                                        std::uint64_t epoch,
                                        std::uint64_t array) {
  const FaultSite site{epoch, array, obs.epc.serial(), 0};

  if (plan_.fires(FaultKind::kObservationDrop, site)) {
    ++counters_.observations_dropped;
    return false;
  }

  if (plan_.fires(FaultKind::kStaleReport, site)) {
    const auto it = history_.find({array, obs.epc});
    if (it != history_.end()) {
      obs = it->second;  // replayed old data, old timestamp
      ++counters_.stale_reports;
      return true;  // replay is verbatim; no further corruption
    }
  }

  if (plan_.fires(FaultKind::kElementDeath, site) && !obs.samples.empty()) {
    std::uint16_t max_element = 0;
    for (const rfid::PhaseSample& s : obs.samples) {
      max_element = std::max(max_element, s.element_id);
    }
    const auto dead = static_cast<std::uint16_t>(
        1 + plan_.pick(FaultKind::kElementDeath, site, max_element));
    const auto removed = std::erase_if(
        obs.samples,
        [dead](const rfid::PhaseSample& s) { return s.element_id == dead; });
    if (removed > 0) ++counters_.elements_killed;
  }

  if (plan_.fires(FaultKind::kPhaseJump, site) && !obs.samples.empty()) {
    // The RF chain glitches partway through the epoch: all rounds at or
    // after a pivot carry an extra constant phase. Quantized phase wraps
    // naturally modulo 2^16.
    std::uint32_t min_round = obs.samples.front().round;
    std::uint32_t max_round = min_round;
    for (const rfid::PhaseSample& s : obs.samples) {
      min_round = std::min(min_round, s.round);
      max_round = std::max(max_round, s.round);
    }
    const std::uint64_t span = max_round - min_round + 1;
    const auto pivot = static_cast<std::uint32_t>(
        min_round + plan_.pick(FaultKind::kPhaseJump, site, span));
    // Jump in [1/8, 7/8] of a full turn: always a visible discontinuity.
    const double m = plan_.magnitude(FaultKind::kPhaseJump, site);
    const auto jump =
        static_cast<std::uint16_t>((0.125 + 0.75 * m) * 65536.0);
    for (rfid::PhaseSample& s : obs.samples) {
      if (s.round >= pivot) {
        s.phase_q = static_cast<std::uint16_t>(s.phase_q + jump);
      }
    }
    ++counters_.phase_jumps;
  }

  return true;
}

void FaultInjector::corrupt_report(rfid::RoAccessReport& report,
                                   std::uint64_t epoch, std::uint64_t array) {
  std::vector<rfid::TagObservation> out;
  out.reserve(report.observations.size());
  for (rfid::TagObservation& obs : report.observations) {
    if (!corrupt_observation(obs, epoch, array)) continue;
    const FaultSite site{epoch, array, obs.epc.serial(), 0};
    out.push_back(obs);
    if (plan_.fires(FaultKind::kDuplicateReport, site)) {
      out.push_back(obs);  // verbatim retransmission
      ++counters_.duplicate_reports;
    }
    history_.insert_or_assign({array, obs.epc}, std::move(obs));
  }
  report.observations = std::move(out);
}

}  // namespace dwatch::faults
