#include "harness/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dwatch::harness {

double percentile(std::vector<double> sample, double p) {
  if (sample.empty()) {
    throw std::invalid_argument("percentile: empty sample");
  }
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile: p outside [0,100]");
  }
  std::sort(sample.begin(), sample.end());
  const double pos = p / 100.0 * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sample.size()) return sample.back();
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[lo + 1] * frac;
}

double median(std::vector<double> sample) {
  return percentile(std::move(sample), 50.0);
}

double mean(std::span<const double> sample) {
  if (sample.empty()) throw std::invalid_argument("mean: empty sample");
  double sum = 0.0;
  for (const double v : sample) sum += v;
  return sum / static_cast<double>(sample.size());
}

double stddev(std::span<const double> sample) {
  if (sample.size() < 2) return 0.0;
  const double mu = mean(sample);
  double acc = 0.0;
  for (const double v : sample) acc += (v - mu) * (v - mu);
  return std::sqrt(acc / static_cast<double>(sample.size() - 1));
}

std::vector<double> cdf_at(std::span<const double> sample,
                           std::span<const double> levels) {
  if (sample.empty()) throw std::invalid_argument("cdf_at: empty sample");
  std::vector<double> out;
  out.reserve(levels.size());
  for (const double level : levels) {
    std::size_t count = 0;
    for (const double v : sample) {
      if (v <= level) ++count;
    }
    out.push_back(static_cast<double>(count) /
                  static_cast<double>(sample.size()));
  }
  return out;
}

}  // namespace dwatch::harness
