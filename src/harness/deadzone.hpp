// Deadzone analysis (paper Section 8): a target is in a deadzone when it
// blocks no path at all, or blocks paths seen by fewer than two arrays.
//
// Given a deployment this computes, purely geometrically, how many
// arrays would observe a TRUE-angle blockage for a human standing at
// each grid cell — the coverage ceiling of the deployment before any
// signal processing. Use it to place tags/reflectors (the paper's
// suggested mitigation: cheap tags shrink the deadzones).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/scene.hpp"

namespace dwatch::harness {

struct DeadzoneMap {
  rf::Vec2 origin;
  double step = 0.0;
  std::size_t nx = 0;
  std::size_t ny = 0;
  /// Per cell: number of arrays with at least one true-angle-blockable
  /// path for a human at the cell.
  std::vector<std::uint8_t> arrays_observing;

  [[nodiscard]] std::uint8_t at(std::size_t ix, std::size_t iy) const {
    return arrays_observing.at(iy * nx + ix);
  }
  [[nodiscard]] rf::Vec2 point(std::size_t ix, std::size_t iy) const {
    return {origin.x + step * static_cast<double>(ix),
            origin.y + step * static_cast<double>(iy)};
  }

  /// Fraction of cells observed by at least `min_arrays` arrays.
  [[nodiscard]] double coverage_fraction(std::size_t min_arrays = 2) const;
};

/// Compute the deadzone map of a scene with the given grid step [m] and
/// target template (defaults to the paper's human cylinder). Throws
/// std::invalid_argument for non-positive step.
[[nodiscard]] DeadzoneMap compute_deadzone_map(
    const sim::Scene& scene, double step = 0.25,
    double target_radius = 0.18, double target_height = 1.7);

}  // namespace dwatch::harness
