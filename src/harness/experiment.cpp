#include "harness/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "obs/event_log.hpp"
#include "obs/trace.hpp"

namespace dwatch::harness {

double human_error(rf::Vec2 estimate, rf::Vec2 truth, double allowance) {
  return std::max(0.0, rf::distance(estimate, truth) - allowance);
}

double point_error(rf::Vec2 estimate, rf::Vec2 truth) {
  return rf::distance(estimate, truth);
}

std::vector<std::size_t> nearest_tags(const sim::Scene& scene,
                                      std::size_t array_idx,
                                      std::size_t count) {
  const auto& dep = scene.deployment();
  const rf::Vec3 c = dep.arrays.at(array_idx).center();
  std::vector<std::size_t> idx(dep.tags.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return rf::distance(dep.tags[a].position, c) <
           rf::distance(dep.tags[b].position, c);
  });
  idx.resize(std::min(count, idx.size()));
  return idx;
}

std::vector<core::CalibrationMeasurement> anchor_measurements(
    const sim::Scene& scene, std::size_t array_idx,
    const rfid::RoAccessReport& report,
    std::span<const std::size_t> anchor_tags) {
  const auto& dep = scene.deployment();
  const auto& array = dep.arrays.at(array_idx);
  const std::size_t m = array.num_elements();
  std::vector<core::CalibrationMeasurement> out;
  for (const std::size_t t : anchor_tags) {
    const rfid::Epc96& epc = dep.tags.at(t).epc;
    for (const rfid::TagObservation& obs : report.observations) {
      if (obs.epc != epc) continue;
      core::CalibrationMeasurement meas;
      try {
        meas.snapshots = core::observation_to_snapshots(obs, m);
      } catch (const std::invalid_argument&) {
        continue;  // no complete round survived the faults this epoch
      }
      meas.los_angle = array.arrival_angle(dep.tags[t].position);
      out.push_back(std::move(meas));
      break;  // first usable observation of this anchor wins
    }
  }
  return out;
}

namespace {

core::SearchBounds bounds_of(const sim::Scene& scene) {
  const auto& env = scene.deployment().env;
  return core::SearchBounds{{0.0, 0.0}, {env.width, env.depth}};
}

}  // namespace

ExperimentRunner::ExperimentRunner(const sim::Scene& scene,
                                   RunnerOptions options)
    : scene_(scene),
      options_(options),
      pipeline_(scene.deployment().arrays, bounds_of(scene),
                options.pipeline) {}

void ExperimentRunner::calibrate(rf::Rng& rng) {
  DWATCH_SPAN("experiment.calibrate");
  calibration_reports_.clear();
  if (!options_.calibrate) return;
  for (std::size_t a = 0; a < scene_.num_arrays(); ++a) {
    const auto& array = scene_.deployment().arrays[a];
    std::vector<core::CalibrationMeasurement> meas;
    for (const std::size_t t :
         nearest_tags(scene_, a, options_.calibration_tags)) {
      if (!scene_.tag_readable(a, t)) continue;
      core::CalibrationMeasurement m;
      m.snapshots = scene_.capture(a, t, {}, rng);
      for (std::size_t extra = 1; extra < options_.calibration_captures;
           ++extra) {
        const linalg::CMatrix more = scene_.capture(a, t, {}, rng);
        linalg::CMatrix joined(m.snapshots.rows(),
                               m.snapshots.cols() + more.cols());
        for (std::size_t r = 0; r < joined.rows(); ++r) {
          for (std::size_t c = 0; c < m.snapshots.cols(); ++c) {
            joined(r, c) = m.snapshots(r, c);
          }
          for (std::size_t c = 0; c < more.cols(); ++c) {
            joined(r, m.snapshots.cols() + c) = more(r, c);
          }
        }
        m.snapshots = std::move(joined);
      }
      m.los_angle =
          array.arrival_angle(scene_.deployment().tags[t].position);
      meas.push_back(std::move(m));
    }
    if (meas.empty()) continue;

    core::WirelessCalibrator calibrator(array.spacing(), array.lambda(),
                                        options_.calibration);
    const core::CalibrationResult result = calibrator.calibrate(meas, rng);

    CalibrationReport report;
    report.estimated = result.offsets;
    report.truth = scene_.reader(a).relative_phase_offsets();
    report.mean_error_rad =
        core::mean_phase_error(report.estimated, report.truth);
    report.residual = result.residual;
    calibration_reports_.push_back(report);
    // The core emits calibration.solve (residual, evaluations); the
    // harness knows the simulator's ground truth, so it adds the actual
    // phase error per array — the paper's Fig. 9 quality number.
    if (obs::enabled()) {
      obs::EventLog::global().emit(
          obs::Event("experiment.calibration")
              .field("array", a)
              .field("tags", meas.size())
              .field("mean_error_rad", report.mean_error_rad)
              .field("residual", report.residual));
    }

    pipeline_.set_calibration(a, result.offsets);
  }
}

std::size_t ExperimentRunner::collect_baselines(rf::Rng& rng) {
  DWATCH_SPAN("experiment.baselines");
  std::size_t stored = 0;
  for (std::size_t a = 0; a < scene_.num_arrays(); ++a) {
    for (std::size_t t = 0; t < scene_.num_tags(); ++t) {
      if (!scene_.tag_readable(a, t)) continue;
      if (options_.through_wire) {
        pipeline_.add_baseline(a, scene_.capture_observation(a, t, {}, rng));
      } else {
        pipeline_.add_baseline(a, scene_.deployment().tags[t].epc,
                               scene_.capture(a, t, {}, rng));
      }
      ++stored;
    }
  }
  return stored;
}

void ExperimentRunner::run_epoch(std::span<const sim::CylinderTarget> targets,
                                 rf::Rng& rng) {
  DWATCH_SPAN("experiment.epoch");
  pipeline_.begin_epoch();
  for (std::size_t a = 0; a < scene_.num_arrays(); ++a) {
    for (std::size_t t = 0; t < scene_.num_tags(); ++t) {
      if (!scene_.tag_readable(a, t)) continue;
      if (options_.through_wire) {
        (void)pipeline_.observe(
            a, scene_.capture_observation(a, t, targets, rng));
      } else {
        (void)pipeline_.observe(a, scene_.deployment().tags[t].epc,
                                scene_.capture(a, t, targets, rng));
      }
    }
  }
}

std::vector<core::BatchObservation> ExperimentRunner::capture_epoch(
    std::span<const sim::CylinderTarget> targets, rf::Rng& rng) {
  std::vector<core::BatchObservation> batch;
  for (std::size_t a = 0; a < scene_.num_arrays(); ++a) {
    const std::size_t m = scene_.deployment().arrays[a].num_elements();
    for (std::size_t t = 0; t < scene_.num_tags(); ++t) {
      if (!scene_.tag_readable(a, t)) continue;
      core::BatchObservation item;
      item.array_idx = a;
      if (options_.through_wire) {
        const rfid::TagObservation obs =
            scene_.capture_observation(a, t, targets, rng);
        item.epc = obs.epc;
        item.snapshots = core::observation_to_snapshots(obs, m);
      } else {
        item.epc = scene_.deployment().tags[t].epc;
        item.snapshots = scene_.capture(a, t, targets, rng);
      }
      batch.push_back(std::move(item));
    }
  }
  return batch;
}

void ExperimentRunner::run_epoch_batch(
    std::span<const sim::CylinderTarget> targets, rf::Rng& rng) {
  DWATCH_SPAN("experiment.epoch");
  const std::vector<core::BatchObservation> batch =
      capture_epoch(targets, rng);
  pipeline_.begin_epoch();
  (void)pipeline_.observe_batch(batch);
}

core::LocationEstimate ExperimentRunner::run_fix(
    std::span<const sim::CylinderTarget> targets, rf::Rng& rng) {
  run_epoch(targets, rng);
  return pipeline_.localize();
}

core::LocationEstimate ExperimentRunner::run_fix_best_effort(
    std::span<const sim::CylinderTarget> targets, rf::Rng& rng) {
  run_epoch(targets, rng);
  return pipeline_.localize_best_effort();
}

std::vector<core::LocationEstimate> ExperimentRunner::run_fix_multi(
    std::span<const sim::CylinderTarget> targets, std::size_t max_targets,
    double min_separation, rf::Rng& rng) {
  run_epoch(targets, rng);
  return pipeline_.localize_multi(max_targets, min_separation);
}

}  // namespace dwatch::harness
