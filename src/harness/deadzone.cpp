#include "harness/deadzone.hpp"

#include <cmath>
#include <stdexcept>

namespace dwatch::harness {

double DeadzoneMap::coverage_fraction(std::size_t min_arrays) const {
  if (arrays_observing.empty()) return 0.0;
  std::size_t covered = 0;
  for (const std::uint8_t n : arrays_observing) {
    if (n >= min_arrays) ++covered;
  }
  return static_cast<double>(covered) /
         static_cast<double>(arrays_observing.size());
}

DeadzoneMap compute_deadzone_map(const sim::Scene& scene, double step,
                                 double target_radius,
                                 double target_height) {
  if (step <= 0.0) {
    throw std::invalid_argument("compute_deadzone_map: step <= 0");
  }
  const auto& env = scene.deployment().env;
  DeadzoneMap map;
  map.origin = {0.0, 0.0};
  map.step = step;
  map.nx = static_cast<std::size_t>(std::floor(env.width / step)) + 1;
  map.ny = static_cast<std::size_t>(std::floor(env.depth / step)) + 1;
  map.arrays_observing.assign(map.nx * map.ny, 0);

  for (std::size_t iy = 0; iy < map.ny; ++iy) {
    for (std::size_t ix = 0; ix < map.nx; ++ix) {
      const rf::Vec2 p = map.point(ix, iy);
      sim::CylinderTarget target;
      target.position = p;
      target.radius = target_radius;
      target.z_lo = 0.0;
      target.z_hi = target_height;
      const std::vector<sim::CylinderTarget> targets{target};

      std::uint8_t arrays = 0;
      for (std::size_t a = 0; a < scene.num_arrays(); ++a) {
        bool observed = false;
        for (std::size_t t = 0; t < scene.num_tags() && !observed; ++t) {
          if (!scene.tag_readable(a, t)) continue;
          for (const auto& path : scene.paths(a, t)) {
            const sim::BlockingResult res =
                sim::evaluate_blocking(path, targets);
            if (res.blocked && res.gives_true_angle) {
              observed = true;
              break;
            }
          }
        }
        if (observed) ++arrays;
      }
      map.arrays_observing[iy * map.nx + ix] = arrays;
    }
  }
  return map;
}

}  // namespace dwatch::harness
