// Small statistics helpers for experiment harnesses: medians,
// percentiles, CDF series — the quantities the paper reports.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dwatch::harness {

/// p-th percentile (0..100) by linear interpolation of the sorted sample.
/// Throws std::invalid_argument on an empty sample or p outside [0,100].
[[nodiscard]] double percentile(std::vector<double> sample, double p);

[[nodiscard]] double median(std::vector<double> sample);

[[nodiscard]] double mean(std::span<const double> sample);

[[nodiscard]] double stddev(std::span<const double> sample);

/// CDF sampled at the given levels: fraction of values <= level.
[[nodiscard]] std::vector<double> cdf_at(std::span<const double> sample,
                                         std::span<const double> levels);

}  // namespace dwatch::harness
