// Experiment runner: glue between the simulator (sim::Scene) and the
// D-Watch pipeline (core::DWatchPipeline), shared by every figure bench,
// example application and integration test.
//
// Responsibilities:
//  * pick calibration tags and run the wireless calibration per array;
//  * collect the empty-scene baselines (workflow Step 1);
//  * run online fixes with targets present and score them with the
//    paper's error metrics;
//  * the paper's human-width error allowance (Section 6.2).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/calibration.hpp"
#include "core/localizer.hpp"
#include "core/pipeline.hpp"
#include "rf/noise.hpp"
#include "sim/scene.hpp"

namespace dwatch::harness {

/// Paper Section 6.2 error metric: a human is 32-40 cm wide, so any
/// estimate within `allowance` of the truth counts as zero error;
/// otherwise the error is the distance beyond the allowance.
[[nodiscard]] double human_error(rf::Vec2 estimate, rf::Vec2 truth,
                                 double allowance = 0.18);

/// Plain Euclidean error (bottles, fists).
[[nodiscard]] double point_error(rf::Vec2 estimate, rf::Vec2 truth);

struct RunnerOptions {
  core::PipelineOptions pipeline;
  core::CalibrationOptions calibration;
  /// Tags used for calibration per array (the paper needs >= 4 for
  /// <0.05 rad, Fig. 9). Chosen as the tags nearest each array (clear
  /// dominant LoS, footnote 1).
  std::size_t calibration_tags = 8;
  /// Use the wire path (LLRP encode/decode + quantization) for every
  /// capture instead of raw matrices.
  bool through_wire = true;
  /// Captures concatenated per calibration measurement (longer
  /// observation => steadier noise subspace).
  std::size_t calibration_captures = 2;
  /// Skip calibration entirely (e.g. for no-calibration ablations).
  bool calibrate = true;
};

/// One array's calibration quality (for the Fig. 9/10 benches).
struct CalibrationReport {
  std::vector<double> estimated;  ///< beta offsets incl. reference 0
  std::vector<double> truth;      ///< reader's relative offsets
  double mean_error_rad = 0.0;
  double residual = 0.0;
};

/// Scene + pipeline bound together.
class ExperimentRunner {
 public:
  /// Builds the pipeline over the scene's arrays and environment bounds.
  ExperimentRunner(const sim::Scene& scene, RunnerOptions options);

  [[nodiscard]] core::DWatchPipeline& pipeline() noexcept {
    return pipeline_;
  }
  [[nodiscard]] const std::vector<CalibrationReport>& calibration_reports()
      const noexcept {
    return calibration_reports_;
  }

  /// Workflow Step 2: calibrate every array from its nearest tags.
  /// No-op when options.calibrate is false.
  void calibrate(rf::Rng& rng);

  /// Workflow Step 1: capture empty-scene baselines for every readable
  /// (array, tag) pair. Returns the number of baselines stored.
  std::size_t collect_baselines(rf::Rng& rng);

  /// One online fix with `targets` in the scene.
  [[nodiscard]] core::LocationEstimate run_fix(
      std::span<const sim::CylinderTarget> targets, rf::Rng& rng);

  /// Always-report fix (Fig. 14 style).
  [[nodiscard]] core::LocationEstimate run_fix_best_effort(
      std::span<const sim::CylinderTarget> targets, rf::Rng& rng);

  /// Multi-target fix.
  [[nodiscard]] std::vector<core::LocationEstimate> run_fix_multi(
      std::span<const sim::CylinderTarget> targets, std::size_t max_targets,
      double min_separation, rf::Rng& rng);

  /// Feed one epoch of observations without localizing (exposes the
  /// evidence for custom consumers, e.g. heatmaps).
  void run_epoch(std::span<const sim::CylinderTarget> targets, rf::Rng& rng);

  /// Capture one epoch's observations as a batch WITHOUT feeding the
  /// pipeline — same capture order (array-major, then tag) and RNG
  /// consumption as run_epoch, so feeding the result to
  /// pipeline().observe_batch() reproduces run_epoch exactly.
  [[nodiscard]] std::vector<core::BatchObservation> capture_epoch(
      std::span<const sim::CylinderTarget> targets, rf::Rng& rng);

  /// run_epoch through the batched, multi-worker pipeline path.
  void run_epoch_batch(std::span<const sim::CylinderTarget> targets,
                       rf::Rng& rng);

 private:
  const sim::Scene& scene_;
  RunnerOptions options_;
  core::DWatchPipeline pipeline_;
  std::vector<CalibrationReport> calibration_reports_;
};

/// Tags nearest to an array (indices into scene tags), for calibration.
[[nodiscard]] std::vector<std::size_t> nearest_tags(const sim::Scene& scene,
                                                    std::size_t array_idx,
                                                    std::size_t count);

/// Extract calibration measurements for known-LoS anchor tags from one
/// decoded wire report — the per-epoch probe input of the recovery
/// drift watchdog. For each anchor tag index whose EPC appears in the
/// report, the observation is rebuilt into a snapshot matrix and paired
/// with the tag's true LoS angle at this array (which the deployment
/// knows: anchors are the same surveyed tags calibration used).
/// Observations that cannot form a complete round are skipped, not
/// thrown — faulted epochs must degrade the probe, not kill the loop.
[[nodiscard]] std::vector<core::CalibrationMeasurement> anchor_measurements(
    const sim::Scene& scene, std::size_t array_idx,
    const rfid::RoAccessReport& report,
    std::span<const std::size_t> anchor_tags);

}  // namespace dwatch::harness
