// Reflector models: vertical wall segments (specular, image method) and
// point scatterers (shelves, laptops, metal cabinets).
//
// These are the source of the "bad" multipaths D-Watch embraces: each
// reflector adds a tag->reflector->array path whose blockage reveals the
// target from an extra angle, increasing coverage (paper Fig. 16).
#pragma once

#include <optional>
#include <vector>

#include "rf/geometry.hpp"
#include "rf/path.hpp"

namespace dwatch::sim {

/// A vertical wall segment (bookshelf face, room wall) producing specular
/// first-order reflections via the image method.
struct WallReflector {
  rf::Segment2 footprint;  ///< in the floor plane
  double z_lo = 0.0;
  double z_hi = 3.0;
  double reflection = 0.45;  ///< amplitude reflection coefficient
};

/// A compact strong scatterer (laptop lid, metal chamber) re-radiating
/// energy from a point.
///
/// Real-world reflectors are DIRECTIONAL: a laptop lid reflects
/// specularly around its facing normal, so it contributes paths to some
/// (tag, array) links and not others. `facing`/`cone_half_angle` model
/// this: a path tag -> S -> array is accepted iff the specular reflection
/// of the incoming ray off a plate with normal `facing` is within
/// `cone_half_angle` of the outgoing ray. The default cone of pi keeps a
/// scatterer omnidirectional (corner reflectors, round poles).
struct PointScatterer {
  rf::Vec2 position;
  double z = 1.2;            ///< effective scattering height
  double aperture = 2.2;     ///< effective re-radiation aperture [m]
  rf::Vec2 facing{1.0, 0.0}; ///< plate normal (unit not required)
  double cone_half_angle = 3.141592653589793;  ///< pi = omnidirectional

  /// Does this scatterer bounce a ray from `from` to `to` (plan view)?
  [[nodiscard]] bool reflects(rf::Vec2 from, rf::Vec2 to) const;
};

/// Specular bounce point of tag -> wall -> receiver, if the mirror ray
/// actually crosses the wall's finite footprint (2-D image method; the
/// bounce z is interpolated along the unfolded path and must lie within
/// the wall's vertical extent).
[[nodiscard]] std::optional<rf::Vec3> specular_bounce(
    const WallReflector& wall, const rf::Vec3& from, const rf::Vec3& to);

}  // namespace dwatch::sim
