// Capture traces: record the observations of a measurement campaign to a
// binary file and replay them later without the simulator (or, on real
// hardware, without the reader infrastructure).
//
// This replaces the paper's ad-hoc capture tooling: their C# harness
// logged LLRP tag reports to disk and Matlab post-processed them. A
// DwatchTrace file stores framed LLRP messages verbatim, grouped into
// named epochs ("baseline", "fix-0001", ...), so a trace replays through
// the EXACT wire-decoding path the live system uses.
//
// File format (all integers big-endian, matching the LLRP payloads):
//   magic   "DWTRACE1"                       (8 bytes)
//   repeated epochs:
//     epoch header: u8 kind, u16 label_len, label bytes,
//                   u32 array_index, u32 message_count
//     messages:     u32 byte_len, bytes      (a framed LLRP message)
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "rfid/llrp.hpp"

namespace dwatch::sim {

/// What an epoch's observations are for.
enum class EpochKind : std::uint8_t {
  kBaseline = 0,  ///< empty-scene captures (workflow Step 1)
  kOnline = 1,    ///< captures with targets present
};

/// One recorded epoch: all LLRP messages one array produced.
struct TraceEpoch {
  EpochKind kind = EpochKind::kBaseline;
  std::string label;
  std::uint32_t array_index = 0;
  std::vector<std::vector<std::uint8_t>> messages;  ///< framed LLRP
};

/// In-memory trace; (de)serializable to a stream or file.
class Trace {
 public:
  static constexpr char kMagic[8] = {'D', 'W', 'T', 'R', 'A', 'C', 'E',
                                     '1'};

  [[nodiscard]] const std::vector<TraceEpoch>& epochs() const noexcept {
    return epochs_;
  }
  [[nodiscard]] bool empty() const noexcept { return epochs_.empty(); }

  /// Append an epoch (messages are framed LLRP byte vectors).
  void record(TraceEpoch epoch);

  /// Convenience: record one RO_ACCESS_REPORT worth of observations.
  void record_report(EpochKind kind, const std::string& label,
                     std::uint32_t array_index,
                     const rfid::RoAccessReport& report);

  /// Serialize; throws std::runtime_error on stream failure.
  void save(std::ostream& os) const;
  void save_file(const std::string& path) const;

  /// Parse; throws rfid::DecodeError on malformed input.
  [[nodiscard]] static Trace load(std::istream& is);
  [[nodiscard]] static Trace load_file(const std::string& path);

  /// Decode every message of an epoch back into tag observations (the
  /// replay path: bytes -> LlrpStreamDecoder -> observations). Non-report
  /// messages are skipped.
  [[nodiscard]] static std::vector<rfid::TagObservation> decode_epoch(
      const TraceEpoch& epoch);

 private:
  std::vector<TraceEpoch> epochs_;
};

}  // namespace dwatch::sim
