#include "sim/propagate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dwatch::sim {

std::vector<rf::PropagationPath> trace_paths(
    const rf::Vec3& tag_position, const rf::UniformLinearArray& array,
    const Environment& env, const TraceOptions& options) {
  const rf::Vec3 rx = array.center();
  const double direct_len = rf::distance(tag_position, rx);
  if (direct_len <= 0.0) {
    throw std::invalid_argument("trace_paths: tag coincides with array");
  }

  std::vector<rf::PropagationPath> paths;

  // Direct path.
  {
    rf::PropagationPath p;
    p.kind = rf::PathKind::kDirect;
    p.vertices = {tag_position, rx};
    p.length = direct_len;
    p.aoa = array.arrival_angle(tag_position);
    p.gain = options.link.direct_gain(direct_len);
    paths.push_back(std::move(p));
  }
  const double direct_amp = std::abs(paths.front().gain);

  // First-order specular wall bounces.
  for (const WallReflector& wall : env.walls) {
    const auto bounce = specular_bounce(wall, tag_position, rx);
    if (!bounce) continue;
    rf::PropagationPath p;
    p.kind = rf::PathKind::kWall;
    p.vertices = {tag_position, *bounce, rx};
    p.length =
        rf::distance(tag_position, *bounce) + rf::distance(*bounce, rx);
    p.aoa = array.arrival_angle(*bounce);
    p.gain = options.link.wall_gain(p.length, wall.reflection);
    paths.push_back(std::move(p));
  }

  // Point scatterers (directional ones only serve matching links).
  for (const PointScatterer& sc : env.scatterers) {
    if (!sc.reflects(tag_position.xy(), rx.xy())) continue;
    const rf::Vec3 sp = rf::lift(sc.position, sc.z);
    const double d1 = rf::distance(tag_position, sp);
    const double d2 = rf::distance(sp, rx);
    if (d1 <= 0.0 || d2 <= 0.0) continue;  // degenerate placement
    rf::PropagationPath p;
    p.kind = rf::PathKind::kScatterer;
    p.vertices = {tag_position, sp, rx};
    p.length = d1 + d2;
    p.aoa = array.arrival_angle(sp);
    p.gain = options.link.scatter_gain(d1, d2, sc.aperture);
    paths.push_back(std::move(p));
  }

  // Amplitude floor relative to the direct path.
  if (options.min_relative_amplitude > 0.0) {
    const double floor = direct_amp * options.min_relative_amplitude;
    paths.erase(std::remove_if(paths.begin() + 1, paths.end(),
                               [floor](const rf::PropagationPath& p) {
                                 return std::abs(p.gain) < floor;
                               }),
                paths.end());
  }

  // Keep the strongest `max_paths` (direct always survives).
  if (options.max_paths > 0 && paths.size() > options.max_paths) {
    std::sort(paths.begin() + 1, paths.end(),
              [](const rf::PropagationPath& a, const rf::PropagationPath& b) {
                return std::abs(a.gain) > std::abs(b.gain);
              });
    paths.resize(options.max_paths);
  }
  return paths;
}

}  // namespace dwatch::sim
