// Path tracing: enumerate the propagation paths from a tag to an array
// within an environment (direct + first-order wall bounces + point
// scatterers), with link-budget gains attached.
//
// First-order reflections are the right fidelity here: the paper's own
// model counts "no larger than five dominant paths" indoors (§4.1, citing
// ArrayTrack), and second-order bounces at UHF room scale fall below the
// noise floor of the backscatter link.
#pragma once

#include <vector>

#include "rf/array.hpp"
#include "rf/link_budget.hpp"
#include "rf/path.hpp"
#include "sim/environment.hpp"

namespace dwatch::sim {

/// Options for path tracing.
struct TraceOptions {
  rf::LinkBudget link;
  /// Drop reflected paths weaker than this fraction of the direct path's
  /// amplitude (0 keeps everything).
  double min_relative_amplitude = 0.0;
  /// Cap on the number of paths returned (strongest kept, direct always
  /// first if present). 0 = unlimited.
  std::size_t max_paths = 0;
};

/// All propagation paths tag -> array in `env`.
///
/// The returned paths have `length`, `aoa` and `gain` filled in. The
/// direct path is always first when geometry allows it (tag not exactly
/// at the array). Throws std::invalid_argument if the tag coincides with
/// the array centre.
[[nodiscard]] std::vector<rf::PropagationPath> trace_paths(
    const rf::Vec3& tag_position, const rf::UniformLinearArray& array,
    const Environment& env, const TraceOptions& options = {});

}  // namespace dwatch::sim
