#include "sim/reflector.hpp"

#include <cmath>

namespace dwatch::sim {

bool PointScatterer::reflects(rf::Vec2 from, rf::Vec2 to) const {
  if (cone_half_angle >= 3.14159) return true;  // omnidirectional
  const rf::Vec2 d_in = (position - from);
  const rf::Vec2 d_out = (to - position);
  const double lin = d_in.norm();
  const double lout = d_out.norm();
  if (lin <= 0.0 || lout <= 0.0) return false;
  const rf::Vec2 n = facing.normalized();
  const rf::Vec2 in_hat = d_in / lin;
  // Specular reflection of the incoming ray off a plate with normal n.
  const double proj = in_hat.dot(n);
  const rf::Vec2 reflected{in_hat.x - 2.0 * proj * n.x,
                           in_hat.y - 2.0 * proj * n.y};
  const double cos_dev = reflected.dot(d_out / lout);
  return cos_dev >= std::cos(cone_half_angle);
}

std::optional<rf::Vec3> specular_bounce(const WallReflector& wall,
                                        const rf::Vec3& from,
                                        const rf::Vec3& to) {
  const rf::Vec2 a = from.xy();
  const rf::Vec2 b = to.xy();

  // Both endpoints must be on the same side of the wall line for a
  // physical bounce (a reflection cannot pass through the wall).
  const rf::Vec2 d = wall.footprint.b - wall.footprint.a;
  const double side_a = d.cross(a - wall.footprint.a);
  const double side_b = d.cross(b - wall.footprint.a);
  if (side_a * side_b <= 0.0) return std::nullopt;

  // Image method: mirror `from` across the wall line; the bounce is where
  // image->to crosses the wall footprint.
  const rf::Vec2 image = rf::mirror_across(a, wall.footprint);
  const auto hit = rf::segment_intersection(image, b, wall.footprint.a,
                                            wall.footprint.b);
  if (!hit) return std::nullopt;

  // Unfolded geometry: the bounce z interpolates linearly with distance
  // along image->to.
  const double d1 = rf::distance(image, *hit);
  const double total = rf::distance(image, b);
  if (total <= 0.0) return std::nullopt;
  const double t = d1 / total;
  const double z = from.z + (to.z - from.z) * t;
  if (z < wall.z_lo || z > wall.z_hi) return std::nullopt;
  return rf::lift(*hit, z);
}

}  // namespace dwatch::sim
