// Scene: a deployment (environment + arrays + tags + readers) that can be
// "captured" — producing per-(array, tag) snapshot matrices with or
// without device-free targets present, either as raw complex matrices or
// as wire-quantized LLRP tag observations.
//
// This is the simulator's top-level stand-in for the paper's testbed: 4
// Impinj R420 readers each driving an 8-element ULA through an antenna
// hub, 21+ Alien tags scattered in the room, and students/bottles/fists
// acting as targets.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rf/array.hpp"
#include "rf/link_budget.hpp"
#include "rf/noise.hpp"
#include "rf/snapshot.hpp"
#include "rfid/llrp.hpp"
#include "rfid/reader.hpp"
#include "rfid/tag.hpp"
#include "sim/environment.hpp"
#include "sim/propagate.hpp"
#include "sim/target.hpp"

namespace dwatch::sim {

/// Static geometry of a deployment.
struct Deployment {
  Environment env;
  std::vector<rf::UniformLinearArray> arrays;
  std::vector<rfid::Tag> tags;
};

/// Knobs for the default deployment builders.
struct DeploymentOptions {
  std::size_t num_arrays = 4;
  std::size_t num_tags = 21;
  std::size_t antennas_per_array = 8;
  double array_height = 1.25;  ///< paper §5: arrays at 1.25 m
  double tag_height_lo = 1.0;  ///< tags on tables / held: 1..1.5 m
  double tag_height_hi = 1.5;
  double carrier_hz = rf::kDefaultCarrierHz;
};

/// Room deployment matching the paper's default setup: arrays centred on
/// the room edges facing inward, tags uniformly random inside with a
/// safety margin. Throws std::invalid_argument for >4 arrays or zero
/// tags.
[[nodiscard]] Deployment make_room_deployment(Environment env,
                                              const DeploymentOptions& opts,
                                              rf::Rng& rng);

/// Table deployment for the bottle/fist experiments (paper §6.7): two
/// small arrays at the midpoints of the bottom and right table edges,
/// `num_tags` tags along the top and left edges.
[[nodiscard]] Deployment make_table_deployment(std::size_t num_tags,
                                               std::size_t antennas_per_array,
                                               rf::Rng& rng);

/// Capture fidelity knobs.
struct CaptureOptions {
  std::size_t num_snapshots = 12;  ///< inventory rounds per fix
  double snr_db = 30.0;            ///< vs the strongest path per (array,tag)
  rf::WavefrontModel wavefront = rf::WavefrontModel::kPlanar;
  rf::LinkBudget link;
  /// Human blockage at UHF costs ~10-20 dB; 0.18 amplitude ~ -15 dB.
  double blockage_residual = 0.18;
  /// Attenuation profile for blocked legs. kBinary (the default) keeps
  /// existing goldens bit-identical; kFresnel applies the EM-body-shaped
  /// knife-edge model sized by each array's carrier wavelength.
  BlockageModel blockage_model = BlockageModel::kBinary;
  /// kFresnel only: per-leg shadow-depth cap [dB].
  double blockage_max_loss_db = 30.0;
  /// Keep only dominant paths: the paper's model assumes <= 5 dominant
  /// indoor paths per link (Section 4.1); an 8-element array cannot
  /// resolve more coherent arrivals anyway.
  double min_relative_amplitude = 0.06;
  std::size_t max_paths = 6;
};

/// A deployment bound to reader hardware state (per-element phase
/// offsets) and capture options; produces snapshots.
class Scene {
 public:
  /// Creates one Reader per array; phase offsets are drawn from
  /// `hardware_rng` (redraw with power_cycle()).
  Scene(Deployment deployment, CaptureOptions options,
        rfid::ReaderConfig reader_config, rf::Rng& hardware_rng);

  /// Convenience: default reader config.
  Scene(Deployment deployment, CaptureOptions options, rf::Rng& hardware_rng);

  [[nodiscard]] const Deployment& deployment() const noexcept {
    return deployment_;
  }
  [[nodiscard]] const CaptureOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] std::size_t num_arrays() const noexcept {
    return deployment_.arrays.size();
  }
  [[nodiscard]] std::size_t num_tags() const noexcept {
    return deployment_.tags.size();
  }
  [[nodiscard]] const rfid::Reader& reader(std::size_t array_idx) const;
  [[nodiscard]] std::vector<rfid::Reader>& readers() noexcept {
    return readers_;
  }

  /// Redraw all readers' phase offsets (a power cycle).
  void power_cycle(rf::Rng& rng);

  /// Ground-truth propagation paths for (array, tag), traced lazily and
  /// cached (geometry is static).
  [[nodiscard]] const std::vector<rf::PropagationPath>& paths(
      std::size_t array_idx, std::size_t tag_idx) const;

  /// True iff the reader's forward link can energize the tag.
  [[nodiscard]] bool tag_readable(std::size_t array_idx,
                                  std::size_t tag_idx) const;

  /// Raw M x N snapshot matrix for (array, tag) with `targets` present
  /// (empty span = baseline capture). Throws std::out_of_range on bad
  /// indices.
  [[nodiscard]] linalg::CMatrix capture(std::size_t array_idx,
                                        std::size_t tag_idx,
                                        std::span<const CylinderTarget> targets,
                                        rf::Rng& rng) const;

  /// Same capture, but wire-quantized into an LLRP TagObservation (one
  /// PhaseSample per element per round) as the reader would report it.
  [[nodiscard]] rfid::TagObservation capture_observation(
      std::size_t array_idx, std::size_t tag_idx,
      std::span<const CylinderTarget> targets, rf::Rng& rng,
      std::uint64_t first_seen_us = 0) const;

  /// One full inventory epoch of an array as the reader would report it:
  /// an RO_ACCESS_REPORT with one observation per readable tag
  /// (unreadable tags are silently absent, as on real hardware).
  [[nodiscard]] rfid::RoAccessReport capture_report(
      std::size_t array_idx, std::span<const CylinderTarget> targets,
      rf::Rng& rng, std::uint32_t message_id = 0,
      std::uint64_t first_seen_us = 0) const;

 private:
  void check_indices(std::size_t array_idx, std::size_t tag_idx) const;

  Deployment deployment_;
  CaptureOptions options_;
  std::vector<rfid::Reader> readers_;
  // Cache: paths_[array][tag], filled on demand.
  mutable std::vector<std::vector<std::vector<rf::PropagationPath>>> cache_;
  mutable std::vector<std::vector<bool>> cached_;
};

}  // namespace dwatch::sim
