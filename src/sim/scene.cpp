#include "sim/scene.hpp"

#include <cmath>
#include <stdexcept>

namespace dwatch::sim {

Deployment make_room_deployment(Environment env,
                                const DeploymentOptions& opts, rf::Rng& rng) {
  if (opts.num_arrays == 0 || opts.num_arrays > 4) {
    throw std::invalid_argument("make_room_deployment: need 1..4 arrays");
  }
  if (opts.num_tags == 0) {
    throw std::invalid_argument("make_room_deployment: need >= 1 tag");
  }
  Deployment dep;
  const double w = env.width;
  const double d = env.depth;
  dep.env = std::move(env);

  // Arrays centred on the room edges (bottom, top, left, right), ULA axis
  // along the edge so the boresight faces inward.
  struct EdgeSpec {
    rf::Vec2 center;
    rf::Vec2 axis;
  };
  const EdgeSpec edges[4] = {
      {{w / 2.0, 0.15}, {1.0, 0.0}},   // bottom
      {{w / 2.0, d - 0.15}, {1.0, 0.0}},  // top
      {{0.15, d / 2.0}, {0.0, 1.0}},   // left
      {{w - 0.15, d / 2.0}, {0.0, 1.0}},  // right
  };
  for (std::size_t i = 0; i < opts.num_arrays; ++i) {
    dep.arrays.emplace_back(rf::lift(edges[i].center, opts.array_height),
                            edges[i].axis, opts.antennas_per_array,
                            rf::kDefaultElementSpacing, opts.carrier_hz);
  }

  // Tags: uniformly random inside the room with a margin, at table/hand
  // heights. The paper stresses that tag positions need NOT be known for
  // localization (they are used only to define ground truth here).
  const double margin = 0.4;
  for (std::uint32_t i = 0; i < opts.num_tags; ++i) {
    const rf::Vec2 p{rng.uniform(margin, w - margin),
                     rng.uniform(margin, d - margin)};
    const double z = rng.uniform(opts.tag_height_lo, opts.tag_height_hi);
    dep.tags.push_back(rfid::Tag::at(i, rf::lift(p, z)));
  }
  return dep;
}

Deployment make_table_deployment(std::size_t num_tags,
                                 std::size_t antennas_per_array,
                                 rf::Rng& rng) {
  if (num_tags == 0) {
    throw std::invalid_argument("make_table_deployment: need >= 1 tag");
  }
  Deployment dep;
  dep.env = Environment::table_area();
  const double z = Environment::kTableHeight + 0.10;

  // Two small arrays: midpoint of the bottom and of the right table edge
  // (paper Fig. 20). Smaller aperture antennas -> same ULA model.
  dep.arrays.emplace_back(rf::Vec3{1.0, -0.12, z}, rf::Vec2{1.0, 0.0},
                          antennas_per_array);
  dep.arrays.emplace_back(rf::Vec3{2.12, 1.0, z}, rf::Vec2{0.0, 1.0},
                          antennas_per_array);

  // Tags along the top and left edges.
  const std::size_t top = (num_tags + 1) / 2;
  const std::size_t left = num_tags - top;
  std::uint32_t index = 0;
  for (std::size_t i = 0; i < top; ++i) {
    const double x =
        0.1 + 1.8 * static_cast<double>(i) / std::max<std::size_t>(top - 1, 1);
    dep.tags.push_back(rfid::Tag::at(
        index++, rf::Vec3{x, 2.0 + rng.uniform(0.02, 0.08), z}));
  }
  for (std::size_t i = 0; i < left; ++i) {
    const double y =
        0.1 + 1.8 * static_cast<double>(i) / std::max<std::size_t>(left - 1, 1);
    dep.tags.push_back(rfid::Tag::at(
        index++, rf::Vec3{-(2.0 + rng.uniform(2.0, 8.0)) / 100.0, y, z}));
  }
  return dep;
}

Scene::Scene(Deployment deployment, CaptureOptions options,
             rfid::ReaderConfig reader_config, rf::Rng& hardware_rng)
    : deployment_(std::move(deployment)), options_(options) {
  if (deployment_.arrays.empty()) {
    throw std::invalid_argument("Scene: deployment has no arrays");
  }
  readers_.reserve(deployment_.arrays.size());
  for (std::size_t i = 0; i < deployment_.arrays.size(); ++i) {
    rfid::ReaderConfig cfg = reader_config;
    cfg.reader_id = static_cast<std::uint32_t>(i);
    cfg.hub_elements = deployment_.arrays[i].num_elements();
    cfg.carrier_hz = deployment_.arrays[i].carrier_hz();
    readers_.emplace_back(cfg, hardware_rng);
  }
  cache_.assign(deployment_.arrays.size(),
                std::vector<std::vector<rf::PropagationPath>>(
                    deployment_.tags.size()));
  cached_.assign(deployment_.arrays.size(),
                 std::vector<bool>(deployment_.tags.size(), false));
}

Scene::Scene(Deployment deployment, CaptureOptions options,
             rf::Rng& hardware_rng)
    : Scene(std::move(deployment), options, rfid::ReaderConfig{},
            hardware_rng) {}

const rfid::Reader& Scene::reader(std::size_t array_idx) const {
  if (array_idx >= readers_.size()) {
    throw std::out_of_range("Scene::reader: bad array index");
  }
  return readers_[array_idx];
}

void Scene::power_cycle(rf::Rng& rng) {
  for (auto& r : readers_) r.power_cycle(rng);
}

void Scene::check_indices(std::size_t array_idx, std::size_t tag_idx) const {
  if (array_idx >= deployment_.arrays.size()) {
    throw std::out_of_range("Scene: bad array index");
  }
  if (tag_idx >= deployment_.tags.size()) {
    throw std::out_of_range("Scene: bad tag index");
  }
}

const std::vector<rf::PropagationPath>& Scene::paths(
    std::size_t array_idx, std::size_t tag_idx) const {
  check_indices(array_idx, tag_idx);
  if (!cached_[array_idx][tag_idx]) {
    TraceOptions trace;
    trace.link = options_.link;
    trace.min_relative_amplitude = options_.min_relative_amplitude;
    trace.max_paths = options_.max_paths;
    cache_[array_idx][tag_idx] =
        trace_paths(deployment_.tags[tag_idx].position,
                    deployment_.arrays[array_idx], deployment_.env, trace);
    cached_[array_idx][tag_idx] = true;
  }
  return cache_[array_idx][tag_idx];
}

bool Scene::tag_readable(std::size_t array_idx, std::size_t tag_idx) const {
  check_indices(array_idx, tag_idx);
  const double d = rf::distance(deployment_.tags[tag_idx].position,
                                deployment_.arrays[array_idx].center());
  const double incident = readers_[array_idx].forward_power_dbm(d);
  return deployment_.tags[tag_idx].energized(incident);
}

linalg::CMatrix Scene::capture(std::size_t array_idx, std::size_t tag_idx,
                               std::span<const CylinderTarget> targets,
                               rf::Rng& rng) const {
  const auto& pth = paths(array_idx, tag_idx);
  BlockageOptions blockage;
  blockage.model = options_.blockage_model;
  blockage.residual_amplitude = options_.blockage_residual;
  blockage.lambda =
      rf::wavelength(deployment_.arrays[array_idx].carrier_hz());
  blockage.max_loss_db = options_.blockage_max_loss_db;
  const std::vector<double> scales =
      blocking_amplitudes(pth, targets, blockage);

  rf::SnapshotOptions snap;
  snap.num_snapshots = options_.num_snapshots;
  snap.wavefront = options_.wavefront;
  snap.port_phase_offsets = readers_[array_idx].phase_offsets();
  snap.noise_sigma =
      rf::noise_sigma_for_snr(pth, snap.source_amplitude, options_.snr_db);
  return rf::synthesize_snapshots(deployment_.arrays[array_idx], pth, scales,
                                  snap, rng);
}

rfid::TagObservation Scene::capture_observation(
    std::size_t array_idx, std::size_t tag_idx,
    std::span<const CylinderTarget> targets, rf::Rng& rng,
    std::uint64_t first_seen_us) const {
  const linalg::CMatrix x = capture(array_idx, tag_idx, targets, rng);
  rfid::TagObservation obs;
  obs.epc = deployment_.tags[tag_idx].epc;
  obs.antenna_port = 1;
  obs.first_seen_us = first_seen_us;
  obs.samples.reserve(x.rows() * x.cols());
  for (std::size_t n = 0; n < x.cols(); ++n) {
    for (std::size_t m = 0; m < x.rows(); ++m) {
      const auto [phase_q, rssi_q] = rfid::quantize_sample(x(m, n));
      obs.samples.push_back(rfid::PhaseSample{
          .element_id = static_cast<std::uint16_t>(m + 1),
          .round = static_cast<std::uint32_t>(n),
          .phase_q = phase_q,
          .rssi_q = rssi_q,
      });
    }
  }
  return obs;
}

rfid::RoAccessReport Scene::capture_report(
    std::size_t array_idx, std::span<const CylinderTarget> targets,
    rf::Rng& rng, std::uint32_t message_id,
    std::uint64_t first_seen_us) const {
  if (array_idx >= deployment_.arrays.size()) {
    throw std::out_of_range("Scene::capture_report: bad array index");
  }
  rfid::RoAccessReport report;
  report.message_id = message_id;
  for (std::size_t t = 0; t < deployment_.tags.size(); ++t) {
    if (!tag_readable(array_idx, t)) continue;
    report.observations.push_back(
        capture_observation(array_idx, t, targets, rng, first_seen_us));
  }
  return report;
}

}  // namespace dwatch::sim
