#include "sim/trace.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "rfid/bytes.hpp"

namespace dwatch::sim {

namespace {

void write_u16(std::ostream& os, std::uint16_t v) {
  const std::array<char, 2> b{static_cast<char>(v >> 8),
                              static_cast<char>(v)};
  os.write(b.data(), b.size());
}

void write_u32(std::ostream& os, std::uint32_t v) {
  const std::array<char, 4> b{
      static_cast<char>(v >> 24), static_cast<char>(v >> 16),
      static_cast<char>(v >> 8), static_cast<char>(v)};
  os.write(b.data(), b.size());
}

std::uint16_t read_u16(std::istream& is) {
  std::array<unsigned char, 2> b{};
  is.read(reinterpret_cast<char*>(b.data()), b.size());
  if (!is) throw rfid::DecodeError("trace: truncated u16");
  return static_cast<std::uint16_t>((b[0] << 8) | b[1]);
}

std::uint32_t read_u32(std::istream& is) {
  std::array<unsigned char, 4> b{};
  is.read(reinterpret_cast<char*>(b.data()), b.size());
  if (!is) throw rfid::DecodeError("trace: truncated u32");
  return (static_cast<std::uint32_t>(b[0]) << 24) |
         (static_cast<std::uint32_t>(b[1]) << 16) |
         (static_cast<std::uint32_t>(b[2]) << 8) |
         static_cast<std::uint32_t>(b[3]);
}

}  // namespace

void Trace::record(TraceEpoch epoch) { epochs_.push_back(std::move(epoch)); }

void Trace::record_report(EpochKind kind, const std::string& label,
                          std::uint32_t array_index,
                          const rfid::RoAccessReport& report) {
  TraceEpoch epoch;
  epoch.kind = kind;
  epoch.label = label;
  epoch.array_index = array_index;
  epoch.messages.push_back(rfid::encode(report));
  record(std::move(epoch));
}

void Trace::save(std::ostream& os) const {
  os.write(kMagic, sizeof(kMagic));
  for (const TraceEpoch& epoch : epochs_) {
    os.put(static_cast<char>(epoch.kind));
    if (epoch.label.size() > 0xFFFF) {
      throw std::runtime_error("trace: label too long");
    }
    write_u16(os, static_cast<std::uint16_t>(epoch.label.size()));
    os.write(epoch.label.data(),
             static_cast<std::streamsize>(epoch.label.size()));
    write_u32(os, epoch.array_index);
    write_u32(os, static_cast<std::uint32_t>(epoch.messages.size()));
    for (const auto& msg : epoch.messages) {
      write_u32(os, static_cast<std::uint32_t>(msg.size()));
      os.write(reinterpret_cast<const char*>(msg.data()),
               static_cast<std::streamsize>(msg.size()));
    }
  }
  if (!os) throw std::runtime_error("trace: stream write failed");
}

void Trace::save_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("trace: cannot open " + path);
  save(os);
}

Trace Trace::load(std::istream& is) {
  char magic[sizeof(kMagic)] = {};
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw rfid::DecodeError("trace: bad magic");
  }
  Trace trace;
  while (true) {
    const int kind_byte = is.get();
    if (kind_byte == std::char_traits<char>::eof()) break;
    if (kind_byte != 0 && kind_byte != 1) {
      throw rfid::DecodeError("trace: unknown epoch kind");
    }
    TraceEpoch epoch;
    epoch.kind = static_cast<EpochKind>(kind_byte);
    const std::uint16_t label_len = read_u16(is);
    epoch.label.resize(label_len);
    is.read(epoch.label.data(), label_len);
    if (!is) throw rfid::DecodeError("trace: truncated label");
    epoch.array_index = read_u32(is);
    const std::uint32_t count = read_u32(is);
    epoch.messages.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t len = read_u32(is);
      if (len > 64u * 1024u * 1024u) {
        throw rfid::DecodeError("trace: implausible message length");
      }
      std::vector<std::uint8_t> msg(len);
      is.read(reinterpret_cast<char*>(msg.data()), len);
      if (!is) throw rfid::DecodeError("trace: truncated message");
      epoch.messages.push_back(std::move(msg));
    }
    trace.epochs_.push_back(std::move(epoch));
  }
  return trace;
}

Trace Trace::load_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("trace: cannot open " + path);
  return load(is);
}

std::vector<rfid::TagObservation> Trace::decode_epoch(
    const TraceEpoch& epoch) {
  rfid::LlrpStreamDecoder decoder;
  std::vector<rfid::TagObservation> out;
  for (const auto& msg : epoch.messages) {
    decoder.feed(msg);
    while (auto report = decoder.next_report()) {
      out.insert(out.end(), report->observations.begin(),
                 report->observations.end());
    }
  }
  return out;
}

}  // namespace dwatch::sim
