#include "sim/target.hpp"

#include <stdexcept>

namespace dwatch::sim {

CylinderTarget CylinderTarget::human(rf::Vec2 position, std::string label) {
  return CylinderTarget{position, 0.18, 0.0, 1.7, std::move(label)};
}

CylinderTarget CylinderTarget::bottle(rf::Vec2 position, double table_z,
                                      std::string label) {
  return CylinderTarget{position, 0.039, table_z, table_z + 0.22,
                        std::move(label)};
}

CylinderTarget CylinderTarget::fist(rf::Vec2 position, double z,
                                    std::string label) {
  return CylinderTarget{position, 0.05, z - 0.06, z + 0.06,
                        std::move(label)};
}

bool CylinderTarget::blocks_segment(const rf::Vec3& a,
                                    const rf::Vec3& b) const {
  return rf::segment_hits_vertical_cylinder(a, b, position, radius, z_lo,
                                            z_hi);
}

BlockingResult evaluate_blocking(const rf::PropagationPath& path,
                                 std::span<const CylinderTarget> targets,
                                 double residual_amplitude) {
  if (residual_amplitude < 0.0 || residual_amplitude > 1.0) {
    throw std::invalid_argument(
        "evaluate_blocking: residual_amplitude outside [0,1]");
  }
  BlockingResult result;
  for (std::size_t leg = 0; leg < path.num_legs(); ++leg) {
    const auto [a, b] = path.leg(leg);
    for (std::size_t t = 0; t < targets.size(); ++t) {
      if (!targets[t].blocks_segment(a, b)) continue;
      if (!result.blocked) {
        result.blocked = true;
        result.first_blocked_leg = leg;
        result.target_index = t;
        result.gives_true_angle = path.blocking_gives_true_angle(leg);
      }
      result.amplitude_scale *= residual_amplitude;
      break;  // one blockage per leg is enough; next leg may add more
    }
  }
  return result;
}

std::vector<double> blocking_scales(
    std::span<const rf::PropagationPath> paths,
    std::span<const CylinderTarget> targets, double residual_amplitude) {
  std::vector<double> scales;
  scales.reserve(paths.size());
  for (const auto& path : paths) {
    scales.push_back(
        evaluate_blocking(path, targets, residual_amplitude).amplitude_scale);
  }
  return scales;
}

}  // namespace dwatch::sim
