#include "sim/target.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace dwatch::sim {

CylinderTarget CylinderTarget::human(rf::Vec2 position, std::string label) {
  return CylinderTarget{position, 0.18, 0.0, 1.7, std::move(label)};
}

CylinderTarget CylinderTarget::bottle(rf::Vec2 position, double table_z,
                                      std::string label) {
  return CylinderTarget{position, 0.039, table_z, table_z + 0.22,
                        std::move(label)};
}

CylinderTarget CylinderTarget::fist(rf::Vec2 position, double z,
                                    std::string label) {
  return CylinderTarget{position, 0.05, z - 0.06, z + 0.06,
                        std::move(label)};
}

bool CylinderTarget::blocks_segment(const rf::Vec3& a,
                                    const rf::Vec3& b) const {
  return rf::segment_hits_vertical_cylinder(a, b, position, radius, z_lo,
                                            z_hi);
}

BlockingResult evaluate_blocking(const rf::PropagationPath& path,
                                 std::span<const CylinderTarget> targets,
                                 double residual_amplitude) {
  if (residual_amplitude < 0.0 || residual_amplitude > 1.0) {
    throw std::invalid_argument(
        "evaluate_blocking: residual_amplitude outside [0,1]");
  }
  BlockingResult result;
  for (std::size_t leg = 0; leg < path.num_legs(); ++leg) {
    const auto [a, b] = path.leg(leg);
    for (std::size_t t = 0; t < targets.size(); ++t) {
      if (!targets[t].blocks_segment(a, b)) continue;
      if (!result.blocked) {
        result.blocked = true;
        result.first_blocked_leg = leg;
        result.target_index = t;
        result.gives_true_angle = path.blocking_gives_true_angle(leg);
      }
      result.amplitude_scale *= residual_amplitude;
      break;  // one blockage per leg is enough; next leg may add more
    }
  }
  return result;
}

std::vector<double> blocking_scales(
    std::span<const rf::PropagationPath> paths,
    std::span<const CylinderTarget> targets, double residual_amplitude) {
  std::vector<double> scales;
  scales.reserve(paths.size());
  for (const auto& path : paths) {
    scales.push_back(
        evaluate_blocking(path, targets, residual_amplitude).amplitude_scale);
  }
  return scales;
}

namespace {

// A Fresnel-model leg counts as "blocked" (for BlockingResult bookkeeping)
// once it sheds more than ~1 dB — below that the peak survives intact.
constexpr double kFresnelBlockedAmplitude = 0.89;  // ~ -1 dB

// Lee's approximation of single knife-edge diffraction loss [dB] as a
// function of the Fresnel–Kirchhoff parameter v; 0 dB below v = -0.78.
double knife_edge_loss_db(double v) {
  if (v <= -0.78) return 0.0;
  const double u = v - 0.1;
  return 6.9 + 20.0 * std::log10(std::sqrt(u * u + 1.0) + u);
}

}  // namespace

double fresnel_leg_amplitude(const CylinderTarget& target, const rf::Vec3& a,
                             const rf::Vec3& b, double lambda,
                             double max_loss_db) {
  if (lambda <= 0.0) {
    throw std::invalid_argument("fresnel_leg_amplitude: lambda must be > 0");
  }
  // Restrict the leg to the parameter range inside the cylinder's z-slab;
  // outside of it the body cannot intrude into the Fresnel zone.
  double t_lo = 0.0;
  double t_hi = 1.0;
  const double dz = b.z - a.z;
  if (std::abs(dz) < 1e-12) {
    if (a.z < target.z_lo || a.z > target.z_hi) return 1.0;
  } else {
    const double t0 = (target.z_lo - a.z) / dz;
    const double t1 = (target.z_hi - a.z) / dz;
    t_lo = std::max(0.0, std::min(t0, t1));
    t_hi = std::min(1.0, std::max(t0, t1));
    if (t_lo > t_hi) return 1.0;
  }

  // Closest plan-view approach of the (z-restricted) leg to the axis.
  const rf::Vec2 pa = a.xy();
  const rf::Vec2 pb = b.xy();
  const double len_sq = (pb - pa).norm_sq();
  double t_star;
  if (len_sq < 1e-18) {
    t_star = t_lo;  // plan-degenerate (vertical or zero-length) leg
  } else {
    t_star = std::clamp(rf::closest_point_parameter(target.position, pa, pb),
                        t_lo, t_hi);
  }
  const double d_miss =
      rf::distance(pa + (pb - pa) * t_star, target.position);

  // Knife-edge obstruction height: how far the body edge reaches past the
  // line of sight (negative = clears the axis by more than the radius).
  const double h = target.radius - d_miss;

  // First Fresnel radius at the obstruction point, from the true 3-D
  // distances to the leg endpoints.
  const rf::Vec3 p_star = a + (b - a) * t_star;
  const double d1 = std::max(1e-3, rf::distance(a, p_star));
  const double d2 = std::max(1e-3, rf::distance(p_star, b));
  const double r_fresnel =
      std::max(1e-6, std::sqrt(lambda * d1 * d2 / (d1 + d2)));
  const double v = h * std::numbers::sqrt2 / r_fresnel;

  double loss_db = knife_edge_loss_db(v);
  if (loss_db <= 0.0) return 1.0;
  // A body wide relative to the Fresnel zone shadows from both edges;
  // deepen the single-edge loss by a bounded width factor (EM body model:
  // attenuation grows with the 2-D extent of the cross-section).
  loss_db *= 1.0 + 0.35 * std::min(2.0, 2.0 * target.radius / r_fresnel);
  loss_db = std::min(loss_db, max_loss_db);
  return std::pow(10.0, -loss_db / 20.0);
}

BlockingResult evaluate_blocking(const rf::PropagationPath& path,
                                 std::span<const CylinderTarget> targets,
                                 const BlockageOptions& options) {
  if (options.model == BlockageModel::kBinary) {
    return evaluate_blocking(path, targets, options.residual_amplitude);
  }
  BlockingResult result;
  for (std::size_t leg = 0; leg < path.num_legs(); ++leg) {
    const auto [a, b] = path.leg(leg);
    for (std::size_t t = 0; t < targets.size(); ++t) {
      const double amp = fresnel_leg_amplitude(targets[t], a, b,
                                               options.lambda,
                                               options.max_loss_db);
      if (amp >= 1.0) continue;
      if (!result.blocked && amp < kFresnelBlockedAmplitude) {
        result.blocked = true;
        result.first_blocked_leg = leg;
        result.target_index = t;
        result.gives_true_angle = path.blocking_gives_true_angle(leg);
      }
      // Unlike kBinary, overlapping bodies each shadow the leg: the
      // knife-edge losses compound instead of stopping at the first hit.
      result.amplitude_scale *= amp;
    }
  }
  return result;
}

std::vector<double> blocking_amplitudes(
    std::span<const rf::PropagationPath> paths,
    std::span<const CylinderTarget> targets, const BlockageOptions& options) {
  std::vector<double> scales;
  scales.reserve(paths.size());
  for (const auto& path : paths) {
    scales.push_back(
        evaluate_blocking(path, targets, options).amplitude_scale);
  }
  return scales;
}

}  // namespace dwatch::sim
