// Device-free targets and the path-blocking model.
//
// Targets are vertical cylinders: a standing human (~36 cm wide, 1.7 m
// tall), a water bottle on a table (7.8 cm diameter, 22 cm tall, paper
// Section 5), or a fist hovering over a table. A target blocks a
// propagation path iff any leg of the path's polyline clips the cylinder;
// the blocked path keeps only a residual diffraction amplitude. Which leg
// is blocked matters: only final-leg (or direct-path) blockage drops a
// spectrum peak at the target's true bearing (paper Fig. 1(b)).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "rf/geometry.hpp"
#include "rf/path.hpp"

namespace dwatch::sim {

/// A vertical cylindrical target.
struct CylinderTarget {
  rf::Vec2 position;
  double radius = 0.18;
  double z_lo = 0.0;
  double z_hi = 1.7;
  std::string label = "target";

  /// Standing person, 36 cm wide (paper's human-width allowance).
  [[nodiscard]] static CylinderTarget human(rf::Vec2 position,
                                            std::string label = "human");

  /// Water bottle on a table at height `table_z` (paper: 7.8 cm diameter,
  /// 22 cm tall).
  [[nodiscard]] static CylinderTarget bottle(rf::Vec2 position,
                                             double table_z = 0.75,
                                             std::string label = "bottle");

  /// A fist hovering at height `z` over the table (~10 cm across).
  [[nodiscard]] static CylinderTarget fist(rf::Vec2 position, double z = 0.9,
                                           std::string label = "fist");

  /// True iff 3-D segment [a,b] clips this cylinder.
  [[nodiscard]] bool blocks_segment(const rf::Vec3& a,
                                    const rf::Vec3& b) const;
};

/// Result of testing one path against a set of targets.
struct BlockingResult {
  bool blocked = false;
  /// Index of the first blocked leg (0-based) — meaningful iff blocked.
  std::size_t first_blocked_leg = 0;
  /// Index into the targets span of the first blocking target.
  std::size_t target_index = 0;
  /// Amplitude multiplier to apply to the path (1.0 if unblocked;
  /// residual^k for k legs blocked).
  double amplitude_scale = 1.0;
  /// True iff the drop this blockage causes appears at the target's true
  /// bearing from the array (final-leg or direct-path blockage).
  bool gives_true_angle = false;
};

/// Evaluate blocking of `path` by `targets`. `residual_amplitude` is the
/// per-blockage amplitude multiplier (paper-model default 0.25 ~ -12 dB).
[[nodiscard]] BlockingResult evaluate_blocking(
    const rf::PropagationPath& path, std::span<const CylinderTarget> targets,
    double residual_amplitude = 0.25);

/// Amplitude multipliers for a whole path set at once (convenience for
/// snapshot synthesis).
[[nodiscard]] std::vector<double> blocking_scales(
    std::span<const rf::PropagationPath> paths,
    std::span<const CylinderTarget> targets,
    double residual_amplitude = 0.25);

}  // namespace dwatch::sim
