// Device-free targets and the path-blocking model.
//
// Targets are vertical cylinders: a standing human (~36 cm wide, 1.7 m
// tall), a water bottle on a table (7.8 cm diameter, 22 cm tall, paper
// Section 5), or a fist hovering over a table. A target blocks a
// propagation path iff any leg of the path's polyline clips the cylinder;
// the blocked path keeps only a residual diffraction amplitude. Which leg
// is blocked matters: only final-leg (or direct-path) blockage drops a
// spectrum peak at the target's true bearing (paper Fig. 1(b)).
//
// Two attenuation models are provided:
//
//  * kBinary — the original paper-style model: a blocked leg keeps a
//    fixed residual amplitude, unblocked legs are untouched. Kept
//    bit-identical as the oracle for the golden spectra.
//  * kFresnel — an EM-body-model-shaped profile (after Rampa et al.,
//    "An EM Body Model for Device-Free Localization"): the attenuation
//    depends on how deeply the cylinder penetrates the leg's first
//    Fresnel zone, so it is smooth in the miss distance and depends on
//    carrier frequency (through the Fresnel radius) and on the body
//    width (wide bodies relative to the Fresnel zone shadow deeper).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "rf/constants.hpp"
#include "rf/geometry.hpp"
#include "rf/path.hpp"

namespace dwatch::sim {

/// A vertical cylindrical target.
struct CylinderTarget {
  rf::Vec2 position;
  double radius = 0.18;
  double z_lo = 0.0;
  double z_hi = 1.7;
  std::string label = "target";

  /// Standing person, 36 cm wide (paper's human-width allowance).
  [[nodiscard]] static CylinderTarget human(rf::Vec2 position,
                                            std::string label = "human");

  /// Water bottle on a table at height `table_z` (paper: 7.8 cm diameter,
  /// 22 cm tall).
  [[nodiscard]] static CylinderTarget bottle(rf::Vec2 position,
                                             double table_z = 0.75,
                                             std::string label = "bottle");

  /// A fist hovering at height `z` over the table (~10 cm across).
  [[nodiscard]] static CylinderTarget fist(rf::Vec2 position, double z = 0.9,
                                           std::string label = "fist");

  /// True iff 3-D segment [a,b] clips this cylinder.
  [[nodiscard]] bool blocks_segment(const rf::Vec3& a,
                                    const rf::Vec3& b) const;
};

/// Which per-leg attenuation profile `evaluate_blocking` applies.
enum class BlockageModel : std::uint8_t {
  /// Legacy paper-style model: each blocked leg multiplies the path by a
  /// fixed residual amplitude. Bit-identical oracle for golden spectra.
  kBinary,
  /// Knife-edge diffraction shaped by the first Fresnel zone: smooth in
  /// the miss distance, frequency-dependent, deeper for bodies wide
  /// relative to the Fresnel radius.
  kFresnel,
};

/// Knobs for `evaluate_blocking`/`blocking_amplitudes`.
struct BlockageOptions {
  BlockageModel model = BlockageModel::kBinary;
  /// kBinary: amplitude multiplier per blocked leg (0.25 ~ -12 dB).
  double residual_amplitude = 0.25;
  /// kFresnel: carrier wavelength sizing the first Fresnel zone.
  double lambda = rf::kDefaultWavelength;
  /// kFresnel: cap on per-leg shadow depth — beyond ~30 dB the residual
  /// is creeping-wave/multipath energy the knife-edge formula misses.
  double max_loss_db = 30.0;
};

/// kFresnel amplitude multiplier for one 3-D leg [a,b] against one
/// cylinder (1.0 when the leg clears the first Fresnel zone entirely).
[[nodiscard]] double fresnel_leg_amplitude(const CylinderTarget& target,
                                           const rf::Vec3& a,
                                           const rf::Vec3& b, double lambda,
                                           double max_loss_db = 30.0);

/// Result of testing one path against a set of targets.
struct BlockingResult {
  bool blocked = false;
  /// Index of the first blocked leg (0-based) — meaningful iff blocked.
  std::size_t first_blocked_leg = 0;
  /// Index into the targets span of the first blocking target.
  std::size_t target_index = 0;
  /// Amplitude multiplier to apply to the path (1.0 if unblocked;
  /// residual^k for k legs blocked).
  double amplitude_scale = 1.0;
  /// True iff the drop this blockage causes appears at the target's true
  /// bearing from the array (final-leg or direct-path blockage).
  bool gives_true_angle = false;
};

/// Evaluate blocking of `path` by `targets`. `residual_amplitude` is the
/// per-blockage amplitude multiplier (paper-model default 0.25 ~ -12 dB).
[[nodiscard]] BlockingResult evaluate_blocking(
    const rf::PropagationPath& path, std::span<const CylinderTarget> targets,
    double residual_amplitude = 0.25);

/// Amplitude multipliers for a whole path set at once (convenience for
/// snapshot synthesis).
[[nodiscard]] std::vector<double> blocking_scales(
    std::span<const rf::PropagationPath> paths,
    std::span<const CylinderTarget> targets,
    double residual_amplitude = 0.25);

/// Model-selectable overloads. With `BlockageOptions{.model = kBinary,
/// .residual_amplitude = r}` these reproduce the two-argument forms
/// bit-for-bit; kFresnel swaps in the smooth attenuation profile.
[[nodiscard]] BlockingResult evaluate_blocking(
    const rf::PropagationPath& path, std::span<const CylinderTarget> targets,
    const BlockageOptions& options);

[[nodiscard]] std::vector<double> blocking_amplitudes(
    std::span<const rf::PropagationPath> paths,
    std::span<const CylinderTarget> targets, const BlockageOptions& options);

}  // namespace dwatch::sim
