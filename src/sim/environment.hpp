// Indoor environments with controllable multipath richness.
//
// The paper evaluates three rooms — a library (rich multipath: metal/wood
// book shelves), a laboratory (medium: test chambers, displays) and an
// empty hall (low) — plus a 2 m x 2 m table for fine-grained experiments.
// The presets here are deterministic synthetic layouts matched to those
// descriptions: same room sizes, multipath richness ordered
// library > laboratory > hall. Experiments that sweep the number of
// reflectors (paper Fig. 16) start from `hall()` and call
// `add_scatterers`.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "rf/geometry.hpp"
#include "rf/noise.hpp"
#include "sim/reflector.hpp"

namespace dwatch::sim {

/// One simulated room.
struct Environment {
  std::string name;
  /// Room spans [0, width] x [0, depth] in the floor plane.
  double width = 0.0;
  double depth = 0.0;
  std::vector<WallReflector> walls;
  std::vector<PointScatterer> scatterers;

  /// Library: 7 m x 10 m, book-shelf walls + many strong scatterers
  /// (paper Fig. 6(b), HIGH multipath).
  [[nodiscard]] static Environment library();

  /// Laboratory: 9 m x 12 m, scattered equipment (MEDIUM multipath).
  [[nodiscard]] static Environment laboratory();

  /// Empty hall: 7.2 m x 10.4 m, weakly reflective perimeter only (LOW
  /// multipath).
  [[nodiscard]] static Environment hall();

  /// 2 m x 2 m table area used for bottle/fist experiments (paper §6.7,
  /// §6.8); origin at one table corner, table surface at z=0.75 m.
  [[nodiscard]] static Environment table_area();

  /// Table surface height used by table_area().
  static constexpr double kTableHeight = 0.75;

  [[nodiscard]] bool contains(rf::Vec2 p) const noexcept {
    return p.x >= 0.0 && p.x <= width && p.y >= 0.0 && p.y <= depth;
  }

  /// Add `count` deterministic-but-irregular point scatterers inside the
  /// room margin (used by the Fig. 16 reflector sweep). The added
  /// reflectors are DIRECTIONAL plates (laptop/metal sheet) with random
  /// facings, so each enriches some links without flooding all of them.
  void add_scatterers(std::size_t count, rf::Rng& rng, double aperture = 3.0,
                      double z = 1.2, double cone_half_angle = 0.5);

  [[nodiscard]] std::size_t reflector_count() const noexcept {
    return walls.size() + scatterers.size();
  }
};

}  // namespace dwatch::sim
