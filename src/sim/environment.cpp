#include "sim/environment.hpp"

namespace dwatch::sim {

namespace {

/// Perimeter walls for a room, with the given reflection coefficient.
std::vector<WallReflector> perimeter(double w, double d, double refl,
                                     double z_hi = 3.0) {
  using rf::Vec2;
  return {
      WallReflector{{Vec2{0, 0}, Vec2{w, 0}}, 0.0, z_hi, refl},
      WallReflector{{Vec2{w, 0}, Vec2{w, d}}, 0.0, z_hi, refl},
      WallReflector{{Vec2{w, d}, Vec2{0, d}}, 0.0, z_hi, refl},
      WallReflector{{Vec2{0, d}, Vec2{0, 0}}, 0.0, z_hi, refl},
  };
}

}  // namespace

Environment Environment::library() {
  using rf::Vec2;
  Environment env;
  env.name = "library";
  env.width = 7.0;
  env.depth = 10.0;
  env.walls = perimeter(env.width, env.depth, 0.30);
  // Book-shelf rows: shelves full of books scatter DIFFUSELY (no clean
  // specular mirror), so each shelf row is modelled as strong point
  // scatterers along its face rather than a specular wall — see
  // DESIGN.md ("ghost" discussion). Richness: library >> laboratory.
  env.scatterers = {
      PointScatterer{{1.6, 2.5}, 1.2, 3.2},  // shelf row 1
      PointScatterer{{4.6, 2.5}, 1.2, 3.2},
      PointScatterer{{2.6, 5.0}, 1.2, 3.2},  // shelf row 2
      PointScatterer{{5.4, 5.0}, 1.2, 3.2},
      PointScatterer{{1.6, 7.5}, 1.2, 3.2},  // shelf row 3
      PointScatterer{{4.6, 7.5}, 1.2, 3.2},
      PointScatterer{{6.3, 3.6}, 1.2, 3.0},  // trolley
      PointScatterer{{0.8, 6.1}, 1.2, 3.0},  // reading desk
  };
  return env;
}

Environment Environment::laboratory() {
  using rf::Vec2;
  Environment env;
  env.name = "laboratory";
  env.width = 9.0;
  env.depth = 12.0;
  env.walls = perimeter(env.width, env.depth, 0.25);
  // Test chambers / display racks: fewer strong scatterers than the
  // library (medium multipath).
  env.scatterers = {
      PointScatterer{{2.2, 3.0}, 1.1, 3.0},
      PointScatterer{{6.8, 4.0}, 1.1, 3.0},
      PointScatterer{{4.4, 8.2}, 1.0, 3.0},
      PointScatterer{{7.6, 9.6}, 1.1, 2.8},
      PointScatterer{{1.6, 7.0}, 1.1, 2.8},
      PointScatterer{{4.8, 5.2}, 1.2, 2.8},
  };
  return env;
}

Environment Environment::hall() {
  Environment env;
  env.name = "hall";
  env.width = 7.2;
  env.depth = 10.4;
  // Empty hall: bare, weakly reflective walls and nothing else.
  env.walls = perimeter(env.width, env.depth, 0.18);
  return env;
}

Environment Environment::table_area() {
  Environment env;
  env.name = "table";
  env.width = 2.0;
  env.depth = 2.0;
  // The table experiments rely on tag-dense geometry rather than room
  // reflections; a nearby monitor/divider supplies a couple of paths.
  env.scatterers = {
      PointScatterer{{-0.3, 1.0}, kTableHeight + 0.25, 1.8},
      PointScatterer{{2.3, 0.8}, kTableHeight + 0.25, 1.8},
  };
  return env;
}

void Environment::add_scatterers(std::size_t count, rf::Rng& rng,
                                 double aperture, double z,
                                 double cone_half_angle) {
  const double margin_x = 0.1 * width;
  const double margin_y = 0.1 * depth;
  for (std::size_t i = 0; i < count; ++i) {
    const double face = rng.uniform(0.0, rf::kTwoPi);
    scatterers.push_back(PointScatterer{
        {rng.uniform(margin_x, width - margin_x),
         rng.uniform(margin_y, depth - margin_y)},
        z,
        aperture,
        {std::cos(face), std::sin(face)},
        cone_half_angle,
    });
  }
}

}  // namespace dwatch::sim
