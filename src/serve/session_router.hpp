// SessionRouter: demultiplexes many reader report streams onto zones.
//
// A fleet deployment runs one RobustSessionClient per physical reader,
// and each reader belongs to exactly one (zone, array) slot — reader
// identity IS the routing key. The router owns that binding table:
// clients push decoded RoAccessReports through their ReportSink
// (RobustSessionClient::deliver_report stamps the reader id), the
// router resolves the id and forwards to whatever sink the service
// installed. Unknown readers are counted, not thrown — a reader that
// connects before its zone is provisioned (or after it is torn down)
// must not take the serving loop down.
//
// Deregistration is not instantaneous from the reader's point of view:
// reports already in flight when unbind() runs still arrive afterwards.
// Those are a different operational signal than a never-provisioned
// reader, so the router remembers every unbound id and counts its
// late reports under reason="draining" (vs reason="unknown") — the
// distinction that separates "zone teardown racing its readers"
// from "mis-cabled fleet".
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "rfid/llrp.hpp"
#include "rfid/robust_client.hpp"

namespace dwatch::serve {

/// Where a reader's reports go: array `array` of zone `zone`.
struct RouteTarget {
  std::size_t zone = 0;
  std::size_t array = 0;

  bool operator==(const RouteTarget&) const = default;
};

class SessionRouter {
 public:
  /// Receives every successfully routed report, already resolved to its
  /// (zone, array) slot.
  using Sink = std::function<void(RouteTarget, const rfid::RoAccessReport&)>;

  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Bind (or re-bind — readers get re-cabled) a reader id to a slot.
  /// Throws std::invalid_argument on reader_id == 0: that is the
  /// RobustSessionClient "unassigned" sentinel, and routing it would
  /// silently merge every unconfigured client into one zone.
  void bind(std::uint64_t reader_id, RouteTarget target);

  /// Remove a binding (no-op when absent). Subsequent reports from the
  /// reader count as unroutable with reason="draining" — the reader was
  /// provisioned once, so its late reports are a teardown race, not a
  /// configuration error. A later bind() clears the draining mark.
  void unbind(std::uint64_t reader_id);

  /// The slot a reader is bound to, if any.
  [[nodiscard]] std::optional<RouteTarget> resolve(
      std::uint64_t reader_id) const;

  /// Route one report: resolve and forward to the sink. Returns the
  /// target on success; nullopt (and counts unroutable) when the reader
  /// is unbound or no sink is installed.
  std::optional<RouteTarget> route(std::uint64_t reader_id,
                                   const rfid::RoAccessReport& report);

  /// Wire a client into the router: assigns `reader_id` to the client
  /// and installs a ReportSink that calls route(). The client must not
  /// outlive the router (the sink captures `this`).
  void attach(rfid::RobustSessionClient& client, std::uint64_t reader_id);

  [[nodiscard]] std::size_t num_bindings() const noexcept {
    return bindings_.size();
  }
  [[nodiscard]] std::size_t reports_routed() const noexcept {
    return reports_routed_;
  }
  [[nodiscard]] std::size_t reports_unroutable() const noexcept {
    return reports_unroutable_;
  }
  /// Subset of reports_unroutable() from readers that WERE bound and
  /// have since been unbound (zone mid-deregistration).
  [[nodiscard]] std::size_t reports_unroutable_draining() const noexcept {
    return reports_unroutable_draining_;
  }

 private:
  std::map<std::uint64_t, RouteTarget> bindings_;
  std::set<std::uint64_t> draining_;  ///< ids unbound at least once
  Sink sink_;
  std::size_t reports_routed_ = 0;
  std::size_t reports_unroutable_ = 0;
  std::size_t reports_unroutable_draining_ = 0;
};

}  // namespace dwatch::serve
