// LocalizationService: the zone-sharded serving layer.
//
// Glues the serving pieces into one front door:
//
//   readers ──RobustSessionClient──▶ SessionRouter ──▶ open epochs
//                                                        │ seal
//                                                        ▼
//            ZoneRegistry ◀── EpochScheduler (bounded, shedding)
//                 │                  │ run_pending(shared pool)
//                 ▼                  ▼
//            per-zone DWatchPipeline fix + RecoveryCoordinator heal
//
// The caller (the deployment's serving loop) drives time: it begins
// and seals epochs per zone, then calls run_pending() to batch every
// sealed epoch across zones onto the shared ThreadPool. Everything
// else — routing, admission control, per-zone obs labels — happens in
// here.
//
// Determinism contract (asserted by tests/serve/service_test.cpp):
// each zone's fixes are bit-identical to a standalone DWatchPipeline
// fed the same reports in the same order, for EVERY pool worker count.
// Two ingredients make that hold: a zone's epochs run serially in
// submission order (EpochScheduler), and the pipeline itself is
// bit-identical under any pool size (its own contract).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/calibration.hpp"
#include "core/pipeline.hpp"
#include "core/thread_pool.hpp"
#include "rfid/llrp.hpp"
#include "rfid/robust_client.hpp"
#include "serve/admission.hpp"
#include "serve/epoch_scheduler.hpp"
#include "serve/session_router.hpp"
#include "serve/zone_registry.hpp"

namespace dwatch::serve {

struct ServiceOptions {
  /// Workers in the fleet-shared pool: 0 = one per hardware thread,
  /// 1 = fully serial (no pool — zones then also run serially).
  std::size_t num_workers = 0;
  /// Sealed epochs a zone may have queued before a victim is shed.
  std::size_t max_queue_per_zone = 4;
  /// Consult the AdmissionController each run_pending() and apply its
  /// brownout tier (widening / coarsening / bulk shedding / bulk
  /// rejection). Off = the pre-admission serving loop, byte for byte.
  /// Note that even ON, the controller stays at tier 0 (and every fix
  /// is bit-identical to OFF) until a BudgetProvider reports pressure.
  bool admission_control = true;
  AdmissionOptions admission;
};

/// One completed fix, tagged with the epoch it came from.
struct ZoneFix {
  std::uint64_t seq = 0;           ///< service-wide submission sequence
  std::uint64_t watermark_us = 0;  ///< the epoch's staleness watermark
  core::ConfidentEstimate result;
  // Appended after `result` so existing ZoneFix{seq, wm, fix}
  // aggregate initializations keep compiling.
  /// Streaming mode: the fix was emitted on likelihood convergence
  /// before the epoch's report backlog was exhausted.
  bool early = false;
  /// Wall-clock time from epoch start to the fix being available
  /// (time-to-first-fix; 0 when neither obs nor an observer timed it).
  std::uint64_t ttff_us = 0;
  /// Reports left unprocessed by the early seal (0 on a full epoch).
  std::size_t reports_skipped = 0;
};

/// Everything the telemetry plane needs to know about one processed
/// epoch, captured on the zone's own task thread (so coordinator /
/// stats reads race with nothing). Purely observational: installing an
/// observer can never change a fix.
struct EpochObservation {
  std::size_t zone = 0;
  std::uint64_t seq = 0;
  std::uint64_t watermark_us = 0;
  /// Wall-clock fix latency. The ONLY non-deterministic field — SLO
  /// latency budgets consume it; deterministic consumers (the flight
  /// recorder) must ignore it.
  std::uint64_t fix_latency_us = 0;
  std::size_t reports = 0;  ///< reports folded into this epoch
  bool fix_valid = false;
  bool fix_degraded = false;
  core::ConfidenceReport confidence;
  /// Cumulative serving counters after this epoch.
  ZoneServingStats stats;
  /// Per-array recovery::DriftState (empty when the zone has no
  /// coordinator).
  std::vector<std::uint8_t> drift_states;
  /// Coordinator lifetime stats (zero-initialized when no coordinator).
  recovery::RecoveryStats recovery;
};

/// Service-wide roll-up of the per-zone serving counters.
struct ServiceStats {
  std::size_t zones = 0;
  std::size_t epochs_submitted = 0;
  std::size_t epochs_processed = 0;
  std::size_t epochs_shed = 0;
  std::size_t epochs_widened = 0;   ///< ticks absorbed by brownout widening
  std::size_t epochs_rejected = 0;  ///< refused at ingest (kRejectBulk)
  std::size_t reports_routed = 0;
  std::size_t reports_unroutable = 0;
  std::size_t fixes_valid = 0;
  std::size_t fixes_degraded = 0;
  /// Scheduler per-class admission/shed counters (indexed by
  /// TrafficClass; anchor-class sheds MUST stay 0 — asserted by the
  /// admission suite and the bench_fleet smoke gate).
  std::array<std::uint64_t, kNumTrafficClasses> submitted_by_class{};
  std::array<std::uint64_t, kNumTrafficClasses> shed_by_class{};
  /// Active brownout tier at roll-up time.
  BrownoutTier brownout_tier = BrownoutTier::kNormal;

  bool operator==(const ServiceStats&) const = default;
};

class LocalizationService {
 public:
  explicit LocalizationService(ServiceOptions options = {});

  /// Provision a zone; returns its id. Call before serving traffic
  /// (zones added mid-flight only see epochs begun after the add).
  std::size_t add_zone(ZoneConfig config);

  [[nodiscard]] std::size_t num_zones() const noexcept {
    return registry_.num_zones();
  }
  [[nodiscard]] Zone& zone(std::size_t id) { return registry_.zone(id); }
  [[nodiscard]] const Zone& zone(std::size_t id) const {
    return registry_.zone(id);
  }
  [[nodiscard]] SessionRouter& router() noexcept { return router_; }
  [[nodiscard]] const EpochScheduler& scheduler() const noexcept {
    return scheduler_;
  }
  [[nodiscard]] AdmissionController& admission() noexcept {
    return admission_;
  }
  [[nodiscard]] const AdmissionController& admission() const noexcept {
    return admission_;
  }
  /// Install the SLO budget source consulted by run_pending()'s
  /// admission evaluation (non-owning; typically the telemetry plane).
  void set_budget_provider(const BudgetProvider* provider) {
    admission_.set_budget_provider(provider);
  }
  /// Null when options.num_workers == 1.
  [[nodiscard]] const std::shared_ptr<core::ThreadPool>& thread_pool()
      const noexcept {
    return pool_;
  }

  /// Bind a reader identity to (zone, array); reports routed through
  /// the router then land in that zone's open epoch. Throws
  /// std::out_of_range / std::invalid_argument on a bad slot.
  void bind_reader(std::uint64_t reader_id, std::size_t zone,
                   std::size_t array);

  /// bind_reader + wire the client's ReportSink through the router.
  void attach_client(rfid::RobustSessionClient& client,
                     std::uint64_t reader_id, std::size_t zone,
                     std::size_t array);

  /// Open a new epoch for one zone. An already-open epoch is sealed
  /// (submitted) first — UNLESS brownout widening is active, in which
  /// case up to widen_factor consecutive ticks are absorbed into the
  /// open epoch (more reports per seal, fewer fixes; the epoch keeps
  /// its FIRST tick's watermark so none of its reports turn stale).
  /// An epoch carrying anchors is never widened: calibration cadence
  /// is part of the anchor-traffic-never-degrades guarantee. A
  /// fixed-cadence serving loop can just call begin_epoch every tick.
  /// `watermark_us` is forwarded to the zone pipeline's staleness
  /// rejection.
  void begin_epoch(std::size_t zone, std::uint64_t watermark_us = 0);

  /// Append one report to a zone's open epoch (throws std::logic_error
  /// when no epoch is open — begin_epoch first). The router's sink
  /// calls this; tests and replay drivers may call it directly.
  void add_report(std::size_t zone, std::size_t array,
                  const rfid::RoAccessReport& report);

  /// Attach this epoch's anchor-tag measurements for the zone's
  /// recovery coordinator (ignored when the zone has none).
  /// `anchors_per_array` must match the zone's array count.
  void add_anchors(
      std::size_t zone,
      std::vector<std::vector<core::CalibrationMeasurement>> anchors);

  /// Seal the zone's open epoch: classify it (anchor presence, then
  /// the zone's configured class), consult admission, and hand it to
  /// the scheduler (possibly shedding a lower-class victim). At
  /// kRejectBulk a bulk epoch is refused here — typed, counted, never
  /// queued. No-op (default decision) when no epoch is open. The
  /// returned decision carries the class, the active tier, and the
  /// number of epochs shed by backpressure (0 or 1).
  AdmissionDecision seal_epoch(std::size_t zone);

  /// One serving tick: evaluate admission (move the brownout tier,
  /// apply/clear pipeline coarsening, purge bulk backlog at
  /// kShedBulk+), seal every open epoch, then drain the scheduler:
  /// zones fan out across the shared pool, each zone's epochs run
  /// serially in order. Completed fixes append to that zone's
  /// fixes(). Returns the number of epochs processed.
  std::size_t run_pending();

  /// Telemetry taps. The epoch observer runs on the zone's scheduler
  /// task (distinct zones may call it CONCURRENTLY — it must be
  /// thread-safe; one zone's calls are always serial, in epoch order).
  /// The shed observer runs on the sealing thread. Both are purely
  /// observational: fixes are bit-identical with or without them.
  using EpochObserver = std::function<void(const EpochObservation&)>;
  using ShedObserver =
      std::function<void(std::size_t zone, std::uint64_t seq)>;
  void set_epoch_observer(EpochObserver observer) {
    epoch_observer_ = std::move(observer);
  }
  void set_shed_observer(ShedObserver observer) {
    shed_observer_ = std::move(observer);
  }
  /// Early-seal tap: fires on the zone's scheduler task the moment a
  /// streaming epoch converges and its fix exists — BEFORE run_pending
  /// returns — so a tracker can consume mid-epoch fixes with epoch
  /// latency out of the loop. Same thread-safety contract as the epoch
  /// observer (distinct zones may call it concurrently). The same fix
  /// still lands in fixes() with early = true.
  using EarlyFixObserver =
      std::function<void(std::size_t zone, const ZoneFix&)>;
  void set_early_fix_observer(EarlyFixObserver observer) {
    early_fix_observer_ = std::move(observer);
  }

  /// Every fix the zone has produced, in epoch order.
  [[nodiscard]] const std::vector<ZoneFix>& fixes(std::size_t zone) const;

  [[nodiscard]] const ZoneServingStats& zone_stats(std::size_t zone) const {
    return registry_.zone(zone).serving_stats();
  }
  [[nodiscard]] ServiceStats stats() const;

 private:
  /// The scheduler's processor: runs one epoch on its zone's pipeline.
  void process_epoch(PendingEpoch&& epoch);
  void note_shed(const PendingEpoch& epoch);
  /// Tier-transition side effects: apply/clear the coarsening profile
  /// on every zone pipeline when crossing the kCoarsen boundary, set
  /// the brownout gauge, emit the tier event.
  void apply_brownout(BrownoutTier from, BrownoutTier to);

  ServiceOptions options_;
  std::shared_ptr<core::ThreadPool> pool_;
  EpochObserver epoch_observer_;
  ShedObserver shed_observer_;
  EarlyFixObserver early_fix_observer_;
  ZoneRegistry registry_;
  SessionRouter router_;
  EpochScheduler scheduler_;
  AdmissionController admission_;
  /// Per-zone epoch under construction (nullopt = none open).
  std::vector<std::optional<PendingEpoch>> open_;
  /// Serving ticks absorbed into each zone's open epoch (brownout
  /// widening); equals 1 right after a fresh begin_epoch.
  std::vector<std::size_t> open_begins_;
  /// Per-zone completed fixes (each appended only by its own zone's
  /// scheduler task — disjoint writes, no locking needed).
  std::vector<std::vector<ZoneFix>> fixes_;
};

}  // namespace dwatch::serve
