#include "serve/zone_registry.hpp"

#include <stdexcept>
#include <utility>

namespace dwatch::serve {

Zone::Zone(std::size_t id, ZoneConfig config,
           std::shared_ptr<core::ThreadPool> pool)
    : id_(id),
      name_(std::move(config.name)),
      best_effort_(config.best_effort),
      traffic_class_(config.traffic_class) {
  if (name_.empty()) {
    throw std::invalid_argument("serve::Zone: zone name must be non-empty");
  }
  if (!config.calibration.empty() &&
      config.calibration.size() != config.arrays.size()) {
    throw std::invalid_argument(
        "serve::Zone: calibration count does not match array count");
  }
  if (!config.calibrators.empty() &&
      config.calibrators.size() != config.arrays.size()) {
    throw std::invalid_argument(
        "serve::Zone: calibrator count does not match array count");
  }

  // The zone never owns workers: construct serial, then inject the
  // fleet pool. Bit-identical either way (the pipeline's determinism
  // contract), and it keeps a 64-zone process at one pool instead of
  // 64 pools fighting the scheduler.
  core::PipelineOptions options = config.pipeline;
  options.num_workers = 1;
  pipeline_ = std::make_unique<core::DWatchPipeline>(
      std::move(config.arrays), config.bounds, options);
  pipeline_->set_thread_pool(std::move(pool));

  for (std::size_t a = 0; a < config.calibration.size(); ++a) {
    if (!config.calibration[a].empty()) {
      pipeline_->set_calibration(a, std::move(config.calibration[a]));
    }
  }

  if (!config.calibrators.empty()) {
    recovery::RecoveryOptions recovery = config.recovery;
    if (config.checkpoint_path.empty()) recovery.checkpoint_every = 0;
    coordinator_ = std::make_unique<recovery::RecoveryCoordinator>(
        *pipeline_, std::move(config.calibrators),
        recovery::CheckpointStore(config.checkpoint_path), recovery);
  }
}

std::size_t ZoneRegistry::add_zone(ZoneConfig config) {
  const std::size_t id = zones_.size();
  zones_.push_back(std::make_unique<Zone>(id, std::move(config), pool_));
  return id;
}

Zone& ZoneRegistry::zone(std::size_t id) {
  if (id >= zones_.size()) {
    throw std::out_of_range("serve::ZoneRegistry: no such zone");
  }
  return *zones_[id];
}

const Zone& ZoneRegistry::zone(std::size_t id) const {
  if (id >= zones_.size()) {
    throw std::out_of_range("serve::ZoneRegistry: no such zone");
  }
  return *zones_[id];
}

}  // namespace dwatch::serve
