#include "serve/service.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace dwatch::serve {

namespace {

[[nodiscard]] std::string zone_label(const std::string& name) {
  return "zone=\"" + name + "\"";
}

[[nodiscard]] std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

LocalizationService::LocalizationService(ServiceOptions options)
    : options_(options), scheduler_(0, options.max_queue_per_zone) {
  if (options_.num_workers != 1) {
    pool_ = std::make_shared<core::ThreadPool>(options_.num_workers);
  }
  registry_.set_thread_pool(pool_);
  router_.set_sink([this](RouteTarget target,
                          const rfid::RoAccessReport& report) {
    add_report(target.zone, target.array, report);
  });
  scheduler_.set_shed_hook(
      [this](const PendingEpoch& epoch) { note_shed(epoch); });
}

std::size_t LocalizationService::add_zone(ZoneConfig config) {
  const std::size_t id = registry_.add_zone(std::move(config));
  scheduler_.add_zone();
  open_.emplace_back();
  fixes_.emplace_back();
  return id;
}

void LocalizationService::bind_reader(std::uint64_t reader_id,
                                      std::size_t zone, std::size_t array) {
  Zone& z = registry_.zone(zone);  // validates the zone id
  if (array >= z.pipeline().num_arrays()) {
    throw std::out_of_range("serve::LocalizationService: no such array");
  }
  router_.bind(reader_id, RouteTarget{zone, array});
}

void LocalizationService::attach_client(rfid::RobustSessionClient& client,
                                        std::uint64_t reader_id,
                                        std::size_t zone, std::size_t array) {
  bind_reader(reader_id, zone, array);
  router_.attach(client, reader_id);
}

void LocalizationService::begin_epoch(std::size_t zone,
                                      std::uint64_t watermark_us) {
  (void)registry_.zone(zone);  // validates the zone id
  if (open_[zone].has_value()) (void)seal_epoch(zone);
  PendingEpoch epoch;
  epoch.zone = zone;
  epoch.watermark_us = watermark_us;
  open_[zone] = std::move(epoch);
}

void LocalizationService::add_report(std::size_t zone, std::size_t array,
                                     const rfid::RoAccessReport& report) {
  Zone& z = registry_.zone(zone);
  if (array >= z.pipeline().num_arrays()) {
    throw std::out_of_range("serve::LocalizationService: no such array");
  }
  if (!open_[zone].has_value()) {
    throw std::logic_error(
        "serve::LocalizationService: no open epoch for zone (begin_epoch "
        "first)");
  }
  open_[zone]->reports.emplace_back(array, report);
  ++z.serving_stats().reports_routed;
}

void LocalizationService::add_anchors(
    std::size_t zone,
    std::vector<std::vector<core::CalibrationMeasurement>> anchors) {
  Zone& z = registry_.zone(zone);
  if (anchors.size() != z.pipeline().num_arrays()) {
    throw std::invalid_argument(
        "serve::LocalizationService: anchors must match the zone's array "
        "count");
  }
  if (!open_[zone].has_value()) {
    throw std::logic_error(
        "serve::LocalizationService: no open epoch for zone (begin_epoch "
        "first)");
  }
  open_[zone]->anchors = std::move(anchors);
}

std::size_t LocalizationService::seal_epoch(std::size_t zone) {
  Zone& z = registry_.zone(zone);
  if (!open_[zone].has_value()) return 0;
  PendingEpoch epoch = std::move(*open_[zone]);
  open_[zone].reset();
  ++z.serving_stats().epochs_submitted;
  return scheduler_.submit(std::move(epoch));
}

std::size_t LocalizationService::run_pending() {
  for (std::size_t z = 0; z < registry_.num_zones(); ++z) {
    (void)seal_epoch(z);
  }
  return scheduler_.run_pending(
      pool_.get(), [this](PendingEpoch&& epoch) {
        process_epoch(std::move(epoch));
      });
}

void LocalizationService::process_epoch(PendingEpoch&& epoch) {
  DWATCH_SPAN("serve.zone_epoch");
  Zone& z = registry_.zone(epoch.zone);
  core::DWatchPipeline& pipeline = z.pipeline();

  const bool timed = obs::enabled() || static_cast<bool>(epoch_observer_);
  const std::uint64_t t0 = timed ? steady_now_us() : 0;

  // Exactly the standalone recipe: begin, observe in arrival order,
  // fix. Anything fancier here would break the bit-identical-to-
  // standalone contract the determinism test pins down.
  pipeline.begin_epoch(epoch.watermark_us);
  for (const auto& [array, report] : epoch.reports) {
    for (const rfid::TagObservation& obs : report.observations) {
      (void)pipeline.observe(array, obs);
    }
  }
  const core::ConfidentEstimate fix =
      pipeline.localize_with_confidence(z.best_effort());

  ZoneServingStats& stats = z.serving_stats();
  ++stats.epochs_processed;
  if (fix.estimate.valid) ++stats.fixes_valid;
  if (fix.confidence.degraded()) ++stats.fixes_degraded;
  fixes_[epoch.zone].push_back(
      ZoneFix{epoch.seq, epoch.watermark_us, fix});

  recovery::RecoveryCoordinator* coordinator = z.coordinator();
  if (coordinator != nullptr) {
    std::vector<std::vector<core::CalibrationMeasurement>> anchors =
        std::move(epoch.anchors);
    anchors.resize(pipeline.num_arrays());
    (void)coordinator->end_epoch(epoch.seq, anchors);
  }

  const std::uint64_t latency_us = timed ? steady_now_us() - t0 : 0;
  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    const std::string label = zone_label(z.name());
    reg.counter("dwatch_serve_epochs_total", label).inc();
    const auto bounds = obs::Histogram::stage_latency_bounds_us();
    reg.histogram("dwatch_serve_fix_latency_us", bounds, label)
        .observe(static_cast<double>(latency_us));
  }

  if (epoch_observer_) {
    // Built HERE, on the zone's task thread: stats / watchdog /
    // coordinator reads race with nothing, and the observer gets one
    // self-contained value it can hand across threads.
    EpochObservation observation;
    observation.zone = epoch.zone;
    observation.seq = epoch.seq;
    observation.watermark_us = epoch.watermark_us;
    observation.fix_latency_us = latency_us;
    observation.reports = epoch.reports.size();
    observation.fix_valid = fix.estimate.valid;
    observation.fix_degraded = fix.confidence.degraded();
    observation.confidence = fix.confidence;
    observation.stats = stats;
    if (coordinator != nullptr) {
      const recovery::DriftWatchdog& watchdog = coordinator->watchdog();
      observation.drift_states.reserve(watchdog.num_arrays());
      for (std::size_t a = 0; a < watchdog.num_arrays(); ++a) {
        observation.drift_states.push_back(
            static_cast<std::uint8_t>(watchdog.state(a)));
      }
      observation.recovery = coordinator->stats();
    }
    epoch_observer_(observation);
  }
}

void LocalizationService::note_shed(const PendingEpoch& epoch) {
  Zone& z = registry_.zone(epoch.zone);
  ++z.serving_stats().epochs_shed;
  if (obs::enabled()) {
    obs::MetricsRegistry::global()
        .counter("dwatch_serve_shed_total", zone_label(z.name()))
        .inc();
    obs::EventLog::global().emit(obs::Event("serve.epoch_shed")
                                     .field("zone", z.name())
                                     .field("seq", epoch.seq)
                                     .field("reports", epoch.reports.size()));
  }
  if (shed_observer_) shed_observer_(epoch.zone, epoch.seq);
}

const std::vector<ZoneFix>& LocalizationService::fixes(
    std::size_t zone) const {
  (void)registry_.zone(zone);  // validates the zone id
  return fixes_[zone];
}

ServiceStats LocalizationService::stats() const {
  ServiceStats total;
  total.zones = registry_.num_zones();
  total.reports_unroutable = router_.reports_unroutable();
  for (std::size_t z = 0; z < registry_.num_zones(); ++z) {
    const ZoneServingStats& s = registry_.zone(z).serving_stats();
    total.epochs_submitted += s.epochs_submitted;
    total.epochs_processed += s.epochs_processed;
    total.epochs_shed += s.epochs_shed;
    total.reports_routed += s.reports_routed;
    total.fixes_valid += s.fixes_valid;
    total.fixes_degraded += s.fixes_degraded;
  }
  return total;
}

}  // namespace dwatch::serve
