#include "serve/service.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace dwatch::serve {

namespace {

[[nodiscard]] std::string zone_label(const std::string& name) {
  return "zone=\"" + name + "\"";
}

[[nodiscard]] std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

LocalizationService::LocalizationService(ServiceOptions options)
    : options_(options),
      scheduler_(0, options.max_queue_per_zone),
      admission_(options.admission) {
  if (options_.num_workers != 1) {
    pool_ = std::make_shared<core::ThreadPool>(options_.num_workers);
  }
  registry_.set_thread_pool(pool_);
  router_.set_sink([this](RouteTarget target,
                          const rfid::RoAccessReport& report) {
    add_report(target.zone, target.array, report);
  });
  scheduler_.set_shed_hook(
      [this](const PendingEpoch& epoch) { note_shed(epoch); });
}

std::size_t LocalizationService::add_zone(ZoneConfig config) {
  const TrafficClass cls = config.traffic_class;
  const std::size_t id = registry_.add_zone(std::move(config));
  scheduler_.add_zone();
  admission_.set_zone_class(id, cls);
  open_.emplace_back();
  open_begins_.push_back(0);
  fixes_.emplace_back();
  return id;
}

void LocalizationService::bind_reader(std::uint64_t reader_id,
                                      std::size_t zone, std::size_t array) {
  Zone& z = registry_.zone(zone);  // validates the zone id
  if (array >= z.pipeline().num_arrays()) {
    throw std::out_of_range("serve::LocalizationService: no such array");
  }
  router_.bind(reader_id, RouteTarget{zone, array});
}

void LocalizationService::attach_client(rfid::RobustSessionClient& client,
                                        std::uint64_t reader_id,
                                        std::size_t zone, std::size_t array) {
  bind_reader(reader_id, zone, array);
  router_.attach(client, reader_id);
}

void LocalizationService::begin_epoch(std::size_t zone,
                                      std::uint64_t watermark_us) {
  Zone& z = registry_.zone(zone);  // validates the zone id
  if (open_[zone].has_value()) {
    // Brownout tier 1+: absorb this tick into the open epoch instead
    // of sealing, up to widen_factor ticks per seal. The epoch keeps
    // its FIRST tick's watermark — a later watermark would turn the
    // earlier ticks' reports stale inside their own epoch. An epoch
    // that already carries anchors seals on schedule: widening must
    // never delay the calibration cadence.
    const std::size_t widen =
        options_.admission_control ? admission_.epoch_widen_factor() : 1;
    if (widen > 1 && open_[zone]->anchors.empty() &&
        open_begins_[zone] < widen) {
      ++open_begins_[zone];
      ++z.serving_stats().epochs_widened;
      if (obs::enabled()) {
        obs::MetricsRegistry::global()
            .counter("dwatch_admission_widened_total", zone_label(z.name()))
            .inc();
      }
      return;
    }
    (void)seal_epoch(zone);
  }
  PendingEpoch epoch;
  epoch.zone = zone;
  epoch.watermark_us = watermark_us;
  open_[zone] = std::move(epoch);
  open_begins_[zone] = 1;
}

void LocalizationService::add_report(std::size_t zone, std::size_t array,
                                     const rfid::RoAccessReport& report) {
  Zone& z = registry_.zone(zone);
  if (array >= z.pipeline().num_arrays()) {
    throw std::out_of_range("serve::LocalizationService: no such array");
  }
  if (!open_[zone].has_value()) {
    throw std::logic_error(
        "serve::LocalizationService: no open epoch for zone (begin_epoch "
        "first)");
  }
  open_[zone]->reports.emplace_back(array, report);
  ++z.serving_stats().reports_routed;
}

void LocalizationService::add_anchors(
    std::size_t zone,
    std::vector<std::vector<core::CalibrationMeasurement>> anchors) {
  Zone& z = registry_.zone(zone);
  if (anchors.size() != z.pipeline().num_arrays()) {
    throw std::invalid_argument(
        "serve::LocalizationService: anchors must match the zone's array "
        "count");
  }
  if (!open_[zone].has_value()) {
    throw std::logic_error(
        "serve::LocalizationService: no open epoch for zone (begin_epoch "
        "first)");
  }
  open_[zone]->anchors = std::move(anchors);
}

AdmissionDecision LocalizationService::seal_epoch(std::size_t zone) {
  Zone& z = registry_.zone(zone);
  AdmissionDecision decision;
  if (!open_[zone].has_value()) return decision;
  PendingEpoch epoch = std::move(*open_[zone]);
  open_[zone].reset();
  open_begins_[zone] = 0;
  epoch.traffic_class = admission_.classify(zone, !epoch.anchors.empty());
  decision.traffic_class = epoch.traffic_class;
  decision.tier = admission_.tier();
  if (options_.admission_control) {
    decision = admission_.decide(epoch.traffic_class);
    if (obs::enabled()) {
      obs::MetricsRegistry::global()
          .counter(decision.admitted ? "dwatch_admission_admitted_total"
                                     : "dwatch_admission_rejected_total",
                   std::string("class=\"") +
                       to_string(epoch.traffic_class) + "\"")
          .inc();
    }
    if (!decision.admitted) {
      // Tier 4: the epoch is refused at ingest — typed, counted, never
      // queued. Distinct from a shed: its reports were never eligible
      // for a fix, so the shed observer does not fire.
      ++z.serving_stats().epochs_rejected;
      if (obs::enabled()) {
        obs::EventLog::global().emit(
            obs::Event("serve.epoch_rejected")
                .field("zone", z.name())
                .field("class", to_string(epoch.traffic_class))
                .field("reports", epoch.reports.size()));
      }
      return decision;
    }
  }
  ++z.serving_stats().epochs_submitted;
  decision.sheds = scheduler_.submit(std::move(epoch));
  return decision;
}

std::size_t LocalizationService::run_pending() {
  if (options_.admission_control) {
    const BrownoutTier before = admission_.tier();
    const BrownoutTier after = admission_.evaluate(registry_.num_zones());
    if (after != before) apply_brownout(before, after);
    if (admission_.shed_bulk_backlog_active()) {
      // Tier 3: drop the queued bulk backlog (oldest-first per zone)
      // before sealing this tick's epochs, so the capacity freed goes
      // to tracking/anchor traffic immediately.
      (void)scheduler_.purge_class(TrafficClass::kBulk);
    }
  }
  for (std::size_t z = 0; z < registry_.num_zones(); ++z) {
    (void)seal_epoch(z);
  }
  return scheduler_.run_pending(
      pool_.get(), [this](PendingEpoch&& epoch) {
        process_epoch(std::move(epoch));
      });
}

void LocalizationService::apply_brownout(BrownoutTier from, BrownoutTier to) {
  const bool was_coarse = from >= BrownoutTier::kCoarsen;
  const bool now_coarse = to >= BrownoutTier::kCoarsen;
  if (was_coarse != now_coarse) {
    core::BrownoutProfile profile;  // defaults = configured behaviour
    if (now_coarse) {
      profile.grid_stride = options_.admission.coarse_grid_stride;
      profile.max_signal_rank = options_.admission.coarse_max_signal_rank;
    }
    for (std::size_t z = 0; z < registry_.num_zones(); ++z) {
      registry_.zone(z).pipeline().set_brownout(profile);
    }
  }
  if (obs::enabled()) {
    obs::MetricsRegistry::global()
        .gauge("dwatch_admission_brownout_tier")
        .set(static_cast<double>(to));
    obs::EventLog::global().emit(
        obs::Event("serve.brownout_tier")
            .field("from", to_string(from))
            .field("to", to_string(to))
            .field("pressure", admission_.last_pressure()));
  }
}

void LocalizationService::process_epoch(PendingEpoch&& epoch) {
  DWATCH_SPAN("serve.zone_epoch");
  Zone& z = registry_.zone(epoch.zone);
  core::DWatchPipeline& pipeline = z.pipeline();

  const bool timed = obs::enabled() || static_cast<bool>(epoch_observer_) ||
                     static_cast<bool>(early_fix_observer_);
  const std::uint64_t t0 = timed ? steady_now_us() : 0;

  // Exactly the standalone recipe: begin, observe in arrival order,
  // fix. Anything fancier here would break the bit-identical-to-
  // standalone contract the determinism test pins down. In streaming
  // mode the pipeline may declare likelihood convergence mid-backlog
  // (early_fix_ready); the remaining reports are skipped and the fix
  // exists that much sooner — which is also exactly what a standalone
  // streaming pipeline fed the same reports would do.
  pipeline.begin_epoch(epoch.watermark_us);
  std::size_t reports_fed = 0;
  for (const auto& [array, report] : epoch.reports) {
    if (pipeline.early_fix_ready()) break;
    ++reports_fed;
    for (const rfid::TagObservation& obs : report.observations) {
      (void)pipeline.observe(array, obs);
      if (pipeline.early_fix_ready()) break;
    }
  }
  const core::ConfidentEstimate fix =
      pipeline.localize_with_confidence(z.best_effort());
  const bool early = pipeline.early_fix_ready();
  const std::size_t reports_skipped =
      early ? epoch.reports.size() - reports_fed : 0;
  const std::uint64_t ttff_us = timed ? steady_now_us() - t0 : 0;

  ZoneServingStats& stats = z.serving_stats();
  ++stats.epochs_processed;
  if (fix.estimate.valid) ++stats.fixes_valid;
  if (fix.confidence.degraded()) ++stats.fixes_degraded;
  if (early) {
    ++stats.epochs_early_sealed;
    stats.reports_skipped_early += reports_skipped;
  }
  fixes_[epoch.zone].push_back(ZoneFix{epoch.seq, epoch.watermark_us, fix,
                                       early, ttff_us, reports_skipped});
  if (early && early_fix_observer_) {
    // Fired HERE, on the zone's task thread, before run_pending
    // returns: the whole point of early sealing is that a consumer
    // sees the fix without waiting out the epoch.
    early_fix_observer_(epoch.zone, fixes_[epoch.zone].back());
  }
  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    const std::string label = zone_label(z.name());
    reg.histogram("dwatch_serve_ttff_us",
                  obs::Histogram::stage_latency_bounds_us(), label)
        .observe(static_cast<double>(ttff_us));
    if (early) {
      reg.counter("dwatch_serve_early_seal_total", label).inc();
      obs::EventLog::global().emit(
          obs::Event("serve.early_seal")
              .field("zone", z.name())
              .field("seq", epoch.seq)
              .field("reports_fed", reports_fed)
              .field("reports_skipped", reports_skipped)
              .field("ttff_us", ttff_us));
    }
  }

  recovery::RecoveryCoordinator* coordinator = z.coordinator();
  if (coordinator != nullptr) {
    std::vector<std::vector<core::CalibrationMeasurement>> anchors =
        std::move(epoch.anchors);
    anchors.resize(pipeline.num_arrays());
    (void)coordinator->end_epoch(epoch.seq, anchors);
  }

  const std::uint64_t latency_us = timed ? steady_now_us() - t0 : 0;
  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    const std::string label = zone_label(z.name());
    reg.counter("dwatch_serve_epochs_total", label).inc();
    const auto bounds = obs::Histogram::stage_latency_bounds_us();
    reg.histogram("dwatch_serve_fix_latency_us", bounds, label)
        .observe(static_cast<double>(latency_us));
  }

  if (epoch_observer_) {
    // Built HERE, on the zone's task thread: stats / watchdog /
    // coordinator reads race with nothing, and the observer gets one
    // self-contained value it can hand across threads.
    EpochObservation observation;
    observation.zone = epoch.zone;
    observation.seq = epoch.seq;
    observation.watermark_us = epoch.watermark_us;
    observation.fix_latency_us = latency_us;
    observation.reports = epoch.reports.size();
    observation.fix_valid = fix.estimate.valid;
    observation.fix_degraded = fix.confidence.degraded();
    observation.confidence = fix.confidence;
    observation.stats = stats;
    if (coordinator != nullptr) {
      const recovery::DriftWatchdog& watchdog = coordinator->watchdog();
      observation.drift_states.reserve(watchdog.num_arrays());
      for (std::size_t a = 0; a < watchdog.num_arrays(); ++a) {
        observation.drift_states.push_back(
            static_cast<std::uint8_t>(watchdog.state(a)));
      }
      observation.recovery = coordinator->stats();
    }
    epoch_observer_(observation);
  }
}

void LocalizationService::note_shed(const PendingEpoch& epoch) {
  Zone& z = registry_.zone(epoch.zone);
  ++z.serving_stats().epochs_shed;
  if (obs::enabled()) {
    obs::MetricsRegistry::global()
        .counter("dwatch_serve_shed_total", zone_label(z.name()))
        .inc();
    obs::MetricsRegistry::global()
        .counter("dwatch_admission_shed_total",
                 std::string("class=\"") + to_string(epoch.traffic_class) +
                     "\"")
        .inc();
    obs::EventLog::global().emit(obs::Event("serve.epoch_shed")
                                     .field("zone", z.name())
                                     .field("seq", epoch.seq)
                                     .field("class",
                                            to_string(epoch.traffic_class))
                                     .field("reports", epoch.reports.size()));
  }
  if (shed_observer_) shed_observer_(epoch.zone, epoch.seq);
}

const std::vector<ZoneFix>& LocalizationService::fixes(
    std::size_t zone) const {
  (void)registry_.zone(zone);  // validates the zone id
  return fixes_[zone];
}

ServiceStats LocalizationService::stats() const {
  ServiceStats total;
  total.zones = registry_.num_zones();
  total.reports_unroutable = router_.reports_unroutable();
  for (std::size_t z = 0; z < registry_.num_zones(); ++z) {
    const ZoneServingStats& s = registry_.zone(z).serving_stats();
    total.epochs_submitted += s.epochs_submitted;
    total.epochs_processed += s.epochs_processed;
    total.epochs_shed += s.epochs_shed;
    total.epochs_widened += s.epochs_widened;
    total.epochs_rejected += s.epochs_rejected;
    total.reports_routed += s.reports_routed;
    total.fixes_valid += s.fixes_valid;
    total.fixes_degraded += s.fixes_degraded;
  }
  for (std::size_t c = 0; c < kNumTrafficClasses; ++c) {
    const auto cls = static_cast<TrafficClass>(c);
    total.submitted_by_class[c] = scheduler_.submitted_by_class(cls);
    total.shed_by_class[c] = scheduler_.shed_by_class(cls);
  }
  total.brownout_tier = admission_.tier();
  return total;
}

}  // namespace dwatch::serve
