// EpochScheduler: cross-zone epoch batching with bounded backpressure.
//
// Zones produce sealed epochs faster than the fix path can drain them
// when the fleet is overloaded (16 zones sharing one pool, each epoch
// a multi-tag P-MUSIC + likelihood-search bill). The scheduler sits
// between sealing and fixing:
//
//  * per-zone FIFO queues with a hard depth cap — admission control is
//    per zone, so one hot zone cannot starve the others' memory;
//  * when a zone's queue is full a victim is shed to admit the new
//    epoch, chosen class-aware: anchor/calibration epochs are NEVER
//    victims, the lowest-priority class present goes first, and within
//    a class the OLDEST epoch goes (fresh fixes are worth more than
//    stale ones — the same newest-wins policy as the assembler's
//    dedupe window). The incoming epoch itself is a candidate: a bulk
//    epoch arriving at a queue full of tracking traffic sheds itself.
//    A queue of nothing but anchors admits over the cap rather than
//    drop calibration. Every shed is counted, never silent;
//  * run_pending() drains every queue in one pass: zones fan out
//    across the shared ThreadPool, but ONE zone's epochs always run
//    serially in submission order on a single task — that is what
//    keeps each zone's fixes bit-identical to a standalone pipeline
//    fed the same reports (the tests/serve determinism contract).
//
// Queues and counters are guarded by a mutex (the telemetry scrape
// thread reads pending()/shed_total() while the serving thread
// submits), and the shed hook is ALWAYS invoked outside that lock: a
// hook that scrapes metrics, re-enters the scheduler's accessors, or
// even submits must not deadlock.
//
// The scheduler is intentionally obs-free: it does not know zone
// names, so the LocalizationService (which does) emits the labelled
// metrics/events around it.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "core/calibration.hpp"
#include "core/thread_pool.hpp"
#include "rfid/llrp.hpp"
#include "serve/admission.hpp"

namespace dwatch::serve {

/// One sealed epoch waiting for its fix.
struct PendingEpoch {
  std::size_t zone = 0;
  /// Service-wide submission sequence number (shed reporting).
  std::uint64_t seq = 0;
  std::uint64_t watermark_us = 0;
  /// Shed/reject priority; kAnchor epochs are never victims.
  TrafficClass traffic_class = TrafficClass::kTracking;
  /// (array index, report) in arrival order.
  std::vector<std::pair<std::size_t, rfid::RoAccessReport>> reports;
  /// Per-array anchor-tag measurements for the recovery coordinator
  /// (empty when the zone has no coordinator or no probe this epoch).
  std::vector<std::vector<core::CalibrationMeasurement>> anchors;
};

class EpochScheduler {
 public:
  /// Runs one epoch to completion on the zone's pipeline. Called with
  /// epochs of a given zone strictly in submission order, exactly once
  /// each, never concurrently for the same zone.
  using Processor = std::function<void(PendingEpoch&&)>;

  /// Called (on the submitting thread, OUTSIDE the scheduler lock) for
  /// every epoch shed by backpressure or purged by brownout, before
  /// submit()/purge_class() returns.
  using ShedHook = std::function<void(const PendingEpoch&)>;

  /// `max_queue_per_zone` is clamped up to 1: a zone must always be
  /// able to hold its newest epoch.
  EpochScheduler(std::size_t num_zones, std::size_t max_queue_per_zone);

  /// Append one (empty) zone queue; returns the new zone's index.
  /// Mirrors ZoneRegistry::add_zone so the service can grow both in
  /// lockstep.
  std::size_t add_zone();

  void set_shed_hook(ShedHook hook);

  /// Admit one sealed epoch (epoch.zone indexes the queues; throws
  /// std::out_of_range on a bad zone). When the zone's queue is at
  /// capacity one victim is shed — class-aware, see the file comment —
  /// counted, and reported through the shed hook. Returns the number
  /// of epochs shed (0 or 1; the victim may be the incoming epoch).
  std::size_t submit(PendingEpoch epoch);

  /// Drop every queued epoch of exactly `cls` across all zones,
  /// oldest-first per zone, reporting each through the shed hook
  /// (outside the lock). The brownout kShedBulk tier calls this with
  /// kBulk before draining. Returns the number purged.
  std::size_t purge_class(TrafficClass cls);

  /// Drain every queue: each zone with pending epochs gets ONE task
  /// that runs its epochs serially in FIFO order; distinct zones run
  /// concurrently on `pool` (serially, in zone order, when pool is
  /// null). Epochs submitted from inside `processor` (it shouldn't)
  /// wait for the next call. Returns the number of epochs processed.
  std::size_t run_pending(core::ThreadPool* pool, const Processor& processor);

  [[nodiscard]] std::size_t num_zones() const;
  [[nodiscard]] std::size_t max_queue_per_zone() const noexcept {
    return max_queue_per_zone_;
  }
  /// Epochs currently queued for one zone / across all zones.
  [[nodiscard]] std::size_t pending(std::size_t zone) const;
  [[nodiscard]] std::size_t total_pending() const;

  [[nodiscard]] std::uint64_t submitted_total() const;
  [[nodiscard]] std::uint64_t processed_total() const;
  [[nodiscard]] std::uint64_t shed_total() const;
  [[nodiscard]] std::uint64_t submitted_by_class(TrafficClass cls) const;
  [[nodiscard]] std::uint64_t shed_by_class(TrafficClass cls) const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::deque<PendingEpoch>> queues_;  // guarded by mutex_
  std::size_t max_queue_per_zone_;
  ShedHook shed_hook_;  // guarded by mutex_ (copied out before invoking)
  std::uint64_t next_seq_ = 0;
  std::uint64_t submitted_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t shed_ = 0;
  std::array<std::uint64_t, kNumTrafficClasses> submitted_by_class_{};
  std::array<std::uint64_t, kNumTrafficClasses> shed_by_class_{};
};

}  // namespace dwatch::serve
