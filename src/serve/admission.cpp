#include "serve/admission.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace dwatch::serve {

const char* to_string(TrafficClass cls) noexcept {
  switch (cls) {
    case TrafficClass::kAnchor:
      return "anchor";
    case TrafficClass::kTracking:
      return "tracking";
    case TrafficClass::kBulk:
      return "bulk";
  }
  return "unknown";
}

const char* to_string(BrownoutTier tier) noexcept {
  switch (tier) {
    case BrownoutTier::kNormal:
      return "normal";
    case BrownoutTier::kWidenEpochs:
      return "widen_epochs";
    case BrownoutTier::kCoarsen:
      return "coarsen";
    case BrownoutTier::kShedBulk:
      return "shed_bulk";
    case BrownoutTier::kRejectBulk:
      return "reject_bulk";
  }
  return "unknown";
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(std::move(options)) {
  double prev = 0.0;
  for (double threshold : options_.escalate_pressure) {
    if (threshold <= 0.0 || threshold < prev) {
      throw std::invalid_argument(
          "AdmissionOptions::escalate_pressure must be positive and "
          "non-decreasing");
    }
    prev = threshold;
  }
  if (options_.deescalate_ratio <= 0.0 || options_.deescalate_ratio >= 1.0) {
    throw std::invalid_argument(
        "AdmissionOptions::deescalate_ratio must be in (0, 1)");
  }
  if (options_.hold_down_evals == 0) {
    throw std::invalid_argument(
        "AdmissionOptions::hold_down_evals must be >= 1");
  }
}

void AdmissionController::set_budget_provider(const BudgetProvider* provider) {
  std::lock_guard<std::mutex> lock(mutex_);
  provider_ = provider;
}

void AdmissionController::set_tier_change_hook(TierChangeHook hook) {
  std::lock_guard<std::mutex> lock(mutex_);
  tier_hook_ = std::move(hook);
}

void AdmissionController::set_zone_class(std::size_t zone, TrafficClass cls) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (zone >= zone_classes_.size()) {
    zone_classes_.resize(zone + 1, TrafficClass::kTracking);
  }
  zone_classes_[zone] = cls;
}

TrafficClass AdmissionController::zone_class(std::size_t zone) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return zone < zone_classes_.size() ? zone_classes_[zone]
                                     : TrafficClass::kTracking;
}

TrafficClass AdmissionController::classify(std::size_t zone,
                                           bool has_anchors) const {
  if (has_anchors) return TrafficClass::kAnchor;
  return zone_class(zone);
}

double AdmissionController::release_threshold_locked() const {
  if (tier_ == BrownoutTier::kNormal) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(tier_) - 1;
  return options_.escalate_pressure[idx] * options_.deescalate_ratio;
}

BrownoutTier AdmissionController::evaluate(std::size_t num_zones) {
  TierChangeHook hook_copy;
  BrownoutTier from;
  BrownoutTier to;
  double pressure = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++evaluations_;
    if (provider_ != nullptr) {
      for (std::size_t zone = 0; zone < num_zones; ++zone) {
        const BudgetSignal signal = provider_->zone_budget(zone);
        double zone_pressure = signal.fast_burn;
        // A latched alert means an objective already crossed the page
        // threshold; the slow burn then keeps the pressure from
        // collapsing the instant the fast window drains.
        if (signal.alert_latched) {
          zone_pressure = std::max(zone_pressure, signal.slow_burn);
        }
        if (signal.budget_remaining <= 0.0) {
          zone_pressure *= options_.exhausted_budget_boost;
        }
        pressure = std::max(pressure, zone_pressure);
      }
    }
    last_pressure_ = pressure;

    from = tier_;
    to = tier_;
    const std::size_t tier_idx = static_cast<std::size_t>(tier_);
    if (tier_idx + 1 < kNumBrownoutTiers &&
        pressure >= options_.escalate_pressure[tier_idx]) {
      to = static_cast<BrownoutTier>(tier_idx + 1);
      calm_evals_ = 0;
    } else if (tier_idx > 0 && pressure < release_threshold_locked()) {
      if (++calm_evals_ >= options_.hold_down_evals) {
        to = static_cast<BrownoutTier>(tier_idx - 1);
        calm_evals_ = 0;
      }
    } else {
      calm_evals_ = 0;
    }
    tier_ = to;
    if (to != from) hook_copy = tier_hook_;
  }
  if (hook_copy) hook_copy(from, to, pressure);
  return to;
}

BrownoutTier AdmissionController::tier() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tier_;
}

double AdmissionController::last_pressure() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_pressure_;
}

AdmissionDecision AdmissionController::decide(TrafficClass cls) {
  std::lock_guard<std::mutex> lock(mutex_);
  AdmissionDecision decision;
  decision.traffic_class = cls;
  decision.tier = tier_;
  decision.admitted = !(cls == TrafficClass::kBulk &&
                        tier_ >= BrownoutTier::kRejectBulk);
  const std::size_t idx = static_cast<std::size_t>(cls);
  if (decision.admitted) {
    ++admitted_[idx];
  } else {
    ++rejected_[idx];
  }
  return decision;
}

std::size_t AdmissionController::epoch_widen_factor() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (tier_ < BrownoutTier::kWidenEpochs) return 1;
  return std::max<std::size_t>(1, options_.widen_factor);
}

bool AdmissionController::coarsen_active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tier_ >= BrownoutTier::kCoarsen;
}

bool AdmissionController::shed_bulk_backlog_active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tier_ >= BrownoutTier::kShedBulk;
}

std::uint64_t AdmissionController::admitted_total(TrafficClass cls) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return admitted_[static_cast<std::size_t>(cls)];
}

std::uint64_t AdmissionController::rejected_total(TrafficClass cls) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_[static_cast<std::size_t>(cls)];
}

std::uint64_t AdmissionController::evaluations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evaluations_;
}

}  // namespace dwatch::serve
