#include "serve/session_router.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace dwatch::serve {

void SessionRouter::bind(std::uint64_t reader_id, RouteTarget target) {
  if (reader_id == 0) {
    throw std::invalid_argument(
        "serve::SessionRouter: reader_id 0 is the unassigned sentinel");
  }
  bindings_[reader_id] = target;
  draining_.erase(reader_id);
}

void SessionRouter::unbind(std::uint64_t reader_id) {
  if (bindings_.erase(reader_id) > 0) draining_.insert(reader_id);
}

std::optional<RouteTarget> SessionRouter::resolve(
    std::uint64_t reader_id) const {
  const auto it = bindings_.find(reader_id);
  if (it == bindings_.end()) return std::nullopt;
  return it->second;
}

std::optional<RouteTarget> SessionRouter::route(
    std::uint64_t reader_id, const rfid::RoAccessReport& report) {
  const auto target = resolve(reader_id);
  if (!target.has_value() || !sink_) {
    ++reports_unroutable_;
    const bool draining =
        !target.has_value() && draining_.count(reader_id) > 0;
    if (draining) ++reports_unroutable_draining_;
    const char* reason = draining ? "draining" : "unknown";
    if (obs::enabled()) {
      obs::MetricsRegistry::global()
          .counter("dwatch_serve_unroutable_total",
                   std::string("reason=\"") + reason + "\"")
          .inc();
      obs::EventLog::global().emit(obs::Event("serve.unroutable")
                                       .field("reader_id", reader_id)
                                       .field("message_id", report.message_id)
                                       .field("reason", reason));
    }
    return std::nullopt;
  }
  ++reports_routed_;
  if (obs::enabled()) {
    obs::MetricsRegistry::global()
        .counter("dwatch_serve_reports_routed_total")
        .inc();
  }
  sink_(*target, report);
  return target;
}

void SessionRouter::attach(rfid::RobustSessionClient& client,
                           std::uint64_t reader_id) {
  client.set_reader_id(reader_id);
  client.set_report_sink(
      [this](std::uint64_t id, const rfid::RoAccessReport& report) {
        (void)route(id, report);
      });
}

}  // namespace dwatch::serve
