// Zone registry: the per-zone state of a fleet deployment.
//
// The ROADMAP north star is one process serving MANY rooms ("zones") at
// once — the paper itself evaluates three distinct environments
// (office, corridor, table, §6), and a production deployment multiplies
// that by every floor of every building. One zone is everything a
// standalone deployment owns today: its arrays, its per-array phase
// calibration, its DWatchPipeline, and (optionally) its
// RecoveryCoordinator for self-healing. Zones are fully independent —
// no shared mutable state besides the injected worker pool — which is
// what lets the EpochScheduler run them in parallel while every zone's
// fixes stay bit-identical to a standalone pipeline fed the same
// reports (the tests/serve determinism contract).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/calibration.hpp"
#include "core/pipeline.hpp"
#include "core/thread_pool.hpp"
#include "recovery/self_healing.hpp"
#include "rf/array.hpp"
#include "serve/admission.hpp"

namespace dwatch::serve {

/// Everything needed to bring one zone up.
struct ZoneConfig {
  /// Metrics/event label for this zone (`zone="<name>"`). Keep it to
  /// plain identifier characters — it is embedded into Prometheus
  /// label lists verbatim.
  std::string name;
  std::vector<rf::UniformLinearArray> arrays;
  core::SearchBounds bounds;
  /// Pipeline knobs. `num_workers` is ignored: a zone pipeline never
  /// spawns its own pool — the service injects the fleet-shared one
  /// (results are bit-identical either way, the sharing just caps the
  /// process at one pool instead of one per zone).
  core::PipelineOptions pipeline;
  /// Per-array calibration offsets installed at construction (empty =
  /// uncalibrated; element count must match each array when present).
  std::vector<std::vector<double>> calibration;
  /// Use the always-report (Fig. 14) fix for this zone's epochs.
  bool best_effort = true;
  /// Non-empty enables self-healing: one WirelessCalibrator per array
  /// (count must match) builds a RecoveryCoordinator around the zone's
  /// pipeline.
  std::vector<core::WirelessCalibrator> calibrators;
  /// Checkpoint image path for the coordinator; empty disables
  /// checkpointing (recovery.checkpoint_every is forced to 0).
  std::string checkpoint_path;
  recovery::RecoveryOptions recovery;
  /// Admission priority of this zone's anchor-less epochs (an epoch
  /// carrying anchors is always kAnchor). Bulk zones are the first to
  /// brown out; see serve/admission.hpp.
  TrafficClass traffic_class = TrafficClass::kTracking;
};

/// Per-zone serving counters (mutated only by the zone's own epoch
/// task or by the serving thread between runs — never concurrently).
struct ZoneServingStats {
  std::size_t epochs_submitted = 0;
  std::size_t epochs_processed = 0;
  std::size_t epochs_shed = 0;       ///< dropped by backpressure/brownout
  std::size_t epochs_widened = 0;    ///< ticks absorbed into a wider epoch
  std::size_t epochs_rejected = 0;   ///< refused at ingest (kRejectBulk)
  std::size_t reports_routed = 0;    ///< reports folded into this zone's epochs
  std::size_t fixes_valid = 0;       ///< consensus fixes
  std::size_t fixes_degraded = 0;    ///< ConfidenceReport::degraded() fixes
  /// Streaming mode: epochs whose fix was emitted before the report
  /// backlog was exhausted, and the reports those epochs never fed.
  std::size_t epochs_early_sealed = 0;
  std::size_t reports_skipped_early = 0;

  bool operator==(const ZoneServingStats&) const = default;
};

/// One zone: pipeline + optional recovery, plus serving bookkeeping.
class Zone {
 public:
  /// Validates the config (throws std::invalid_argument on a
  /// calibration/calibrator count mismatch) and injects `pool` into
  /// the pipeline (nullptr = serial zone).
  Zone(std::size_t id, ZoneConfig config,
       std::shared_ptr<core::ThreadPool> pool);

  [[nodiscard]] std::size_t id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool best_effort() const noexcept { return best_effort_; }
  [[nodiscard]] TrafficClass traffic_class() const noexcept {
    return traffic_class_;
  }
  [[nodiscard]] core::DWatchPipeline& pipeline() noexcept {
    return *pipeline_;
  }
  [[nodiscard]] const core::DWatchPipeline& pipeline() const noexcept {
    return *pipeline_;
  }
  /// Null when the zone was configured without calibrators.
  [[nodiscard]] recovery::RecoveryCoordinator* coordinator() noexcept {
    return coordinator_.get();
  }

  [[nodiscard]] ZoneServingStats& serving_stats() noexcept { return stats_; }
  [[nodiscard]] const ZoneServingStats& serving_stats() const noexcept {
    return stats_;
  }

 private:
  std::size_t id_;
  std::string name_;
  bool best_effort_;
  TrafficClass traffic_class_;
  /// unique_ptr keeps Zone movable (DWatchPipeline holds a Localizer
  /// with internal references and is not move-assignable).
  std::unique_ptr<core::DWatchPipeline> pipeline_;
  std::unique_ptr<recovery::RecoveryCoordinator> coordinator_;
  ZoneServingStats stats_;
};

/// Owns the fleet's zones; zone ids are dense indices in add order.
class ZoneRegistry {
 public:
  /// Install the pool handed to every subsequently added zone
  /// (typically once, by the service, before any add_zone).
  void set_thread_pool(std::shared_ptr<core::ThreadPool> pool) noexcept {
    pool_ = std::move(pool);
  }

  /// Bring a zone up; returns its id. Throws std::invalid_argument on
  /// a bad config (empty arrays, mismatched calibration/calibrators).
  std::size_t add_zone(ZoneConfig config);

  [[nodiscard]] std::size_t num_zones() const noexcept {
    return zones_.size();
  }
  /// Throws std::out_of_range on a bad id.
  [[nodiscard]] Zone& zone(std::size_t id);
  [[nodiscard]] const Zone& zone(std::size_t id) const;

 private:
  std::shared_ptr<core::ThreadPool> pool_;
  std::vector<std::unique_ptr<Zone>> zones_;
};

}  // namespace dwatch::serve
