// AdmissionController: SLO-budget-driven overload protection with
// graceful brownout.
//
// Sits between the SessionRouter (traffic arriving) and the
// EpochScheduler (epochs queued for fixing). When the fleet's SLO
// budgets say the serving plane is falling behind, the right degraded
// behaviour is COARSER fixes, not dropped ones (the multipath-as-
// information tracking literature makes the same call): the controller
// therefore degrades in explicit ordered tiers, cheapest first —
//
//   tier 0  kNormal       admit everything, full resolution
//   tier 1  kWidenEpochs  batch `widen_factor` serving ticks into one
//                         sealed epoch (fewer fixes, each better fed)
//   tier 2  kCoarsen      + coarsen the likelihood grid and force
//                         truncated (max_signal_rank) P-MUSIC
//   tier 3  kShedBulk     + shed queued BULK-class epochs oldest-first
//   tier 4  kRejectBulk   + reject bulk at ingest with a typed
//                         AdmissionDecision (never even queued)
//
// Traffic is classified into priority classes: anchor/calibration
// traffic (the epochs that keep the §5 calibration and the drift
// watchdog alive) outranks tracking traffic, which outranks bulk
// replay/survey traffic. Anchor-class epochs are NEVER shed or
// rejected at any tier — losing them would poison the very recovery
// machinery that ends the overload.
//
// The budget signal comes through the BudgetProvider interface below:
// serve stays UNLINKED from telemetry (this whole header compiles with
// zero obs/telemetry includes); the telemetry plane implements the
// interface over its SloTracker and installs itself at attach() time.
// With no provider installed the controller reads zero pressure and
// stays at tier 0 — a fleet without telemetry behaves exactly as
// before this module existed.
//
// Tier transitions are hysteretic so the controller cannot flap:
// escalation is immediate (one tier per evaluate() while the pressure
// exceeds that tier's threshold — overload response must be fast), but
// de-escalation requires the pressure to sit below the CURRENT tier's
// release threshold (escalate * deescalate_ratio) for
// `hold_down_evals` consecutive evaluations, and steps down one tier
// at a time.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace dwatch::serve {

/// Priority classes, highest first. The numeric order IS the shed
/// order's inverse: on overflow the scheduler sheds the largest enum
/// value present, and kAnchor is never a victim.
enum class TrafficClass : std::uint8_t {
  kAnchor = 0,    ///< anchor-tag / calibration probes — never shed
  kTracking = 1,  ///< live localization traffic (the default)
  kBulk = 2,      ///< replay / survey / backfill — first against the wall
};
inline constexpr std::size_t kNumTrafficClasses = 3;

[[nodiscard]] const char* to_string(TrafficClass cls) noexcept;

/// Ordered brownout tiers; see the file comment for semantics.
enum class BrownoutTier : std::uint8_t {
  kNormal = 0,
  kWidenEpochs = 1,
  kCoarsen = 2,
  kShedBulk = 3,
  kRejectBulk = 4,
};
inline constexpr std::size_t kNumBrownoutTiers = 5;

[[nodiscard]] const char* to_string(BrownoutTier tier) noexcept;

/// What the budget provider knows about one zone, already rolled up
/// across its objectives (worst case): burn rates are normalized so
/// 1.0 means "spending the error budget exactly at the allowed rate".
struct BudgetSignal {
  double budget_remaining = 1.0;  ///< min across objectives, [0, 1]
  double fast_burn = 0.0;         ///< max across objectives
  double slow_burn = 0.0;         ///< max across objectives
  bool alert_latched = false;     ///< any objective's fast-burn latch
};

/// The seam between serve and telemetry: the plane implements this over
/// its SloTracker; serve only ever sees the interface. Implementations
/// must be safe to call from the serving thread while the telemetry
/// observers are firing (the SloTracker already is).
class BudgetProvider {
 public:
  virtual ~BudgetProvider() = default;
  [[nodiscard]] virtual BudgetSignal zone_budget(std::size_t zone) const = 0;
};

/// The typed verdict for one sealed epoch. `sheds` is filled in by the
/// service after the scheduler ran (an admitted epoch can still force a
/// lower-class victim out of its zone's queue).
struct AdmissionDecision {
  bool admitted = true;
  TrafficClass traffic_class = TrafficClass::kTracking;
  BrownoutTier tier = BrownoutTier::kNormal;
  std::size_t sheds = 0;

  bool operator==(const AdmissionDecision&) const = default;
};

struct AdmissionOptions {
  /// Fleet pressure needed to ESCALATE into tier (index + 1): index 0
  /// gates kNormal -> kWidenEpochs, index 3 gates kShedBulk ->
  /// kRejectBulk. Must be positive and non-decreasing.
  std::array<double, kNumBrownoutTiers - 1> escalate_pressure{2.0, 3.0, 4.0,
                                                              6.0};
  /// De-escalation threshold as a fraction of the CURRENT tier's
  /// escalation threshold; the band between them is the hysteresis
  /// dead zone. Must be in (0, 1).
  double deescalate_ratio = 0.5;
  /// Consecutive evaluate() calls the pressure must spend below the
  /// release threshold before stepping down ONE tier.
  std::size_t hold_down_evals = 3;
  /// Serving ticks batched into one sealed epoch at tier >= 1
  /// (clamped up to 1; 1 disables widening).
  std::size_t widen_factor = 2;
  /// Likelihood-grid step multiplier at tier >= 2.
  std::size_t coarse_grid_stride = 2;
  /// Forced truncated P-MUSIC signal rank at tier >= 2 (0 keeps each
  /// pipeline's configured rank).
  std::size_t coarse_max_signal_rank = 2;
  /// A zone whose budget is fully exhausted counts double: pressure is
  /// scaled by this factor when budget_remaining reaches 0.
  double exhausted_budget_boost = 2.0;
};

/// The controller proper. Single-writer: evaluate()/decide()/classify()
/// run on the serving thread; tier() and the counters may be read from
/// any thread (the telemetry scrape path does).
class AdmissionController {
 public:
  /// Fired (on the evaluating thread, outside the controller lock) on
  /// every tier transition. `pressure` is the fleet pressure that drove
  /// the move.
  using TierChangeHook = std::function<void(
      BrownoutTier from, BrownoutTier to, double pressure)>;

  /// Throws std::invalid_argument on a non-monotone threshold ladder,
  /// deescalate_ratio outside (0, 1), or hold_down_evals == 0.
  explicit AdmissionController(AdmissionOptions options = {});

  [[nodiscard]] const AdmissionOptions& options() const noexcept {
    return options_;
  }

  /// Install the budget signal source (non-owning; nullptr detaches —
  /// the controller then reads zero pressure and decays to tier 0).
  void set_budget_provider(const BudgetProvider* provider);

  void set_tier_change_hook(TierChangeHook hook);

  /// Default class for epochs of `zone` that carry no anchors
  /// (unregistered zones default to kTracking).
  void set_zone_class(std::size_t zone, TrafficClass cls);
  [[nodiscard]] TrafficClass zone_class(std::size_t zone) const;

  /// An epoch carrying anchor measurements is calibration traffic no
  /// matter what its zone defaults to.
  [[nodiscard]] TrafficClass classify(std::size_t zone,
                                      bool has_anchors) const;

  /// One control step: poll the provider across `num_zones` zones,
  /// fold the per-zone signals into the fleet pressure, and move the
  /// tier (at most one step, hysteresis applied). Returns the active
  /// tier after the step. Call once per serving tick, BEFORE sealing.
  BrownoutTier evaluate(std::size_t num_zones);

  [[nodiscard]] BrownoutTier tier() const;
  /// The fleet pressure computed by the last evaluate() (0 before any).
  [[nodiscard]] double last_pressure() const;

  /// The ingest verdict for one sealed epoch of `cls` at the current
  /// tier. Only bulk traffic is ever refused, and only at kRejectBulk.
  [[nodiscard]] AdmissionDecision decide(TrafficClass cls);

  /// Serving ticks to batch per sealed epoch at the current tier
  /// (1 below kWidenEpochs).
  [[nodiscard]] std::size_t epoch_widen_factor() const;
  /// True at kCoarsen and above.
  [[nodiscard]] bool coarsen_active() const;
  /// True at kShedBulk and above.
  [[nodiscard]] bool shed_bulk_backlog_active() const;

  [[nodiscard]] std::uint64_t admitted_total(TrafficClass cls) const;
  [[nodiscard]] std::uint64_t rejected_total(TrafficClass cls) const;
  [[nodiscard]] std::uint64_t evaluations() const;

 private:
  [[nodiscard]] double release_threshold_locked() const;

  const AdmissionOptions options_;
  mutable std::mutex mutex_;
  const BudgetProvider* provider_ = nullptr;  // guarded by mutex_
  TierChangeHook tier_hook_;                  // guarded by mutex_
  std::vector<TrafficClass> zone_classes_;    // guarded by mutex_
  BrownoutTier tier_ = BrownoutTier::kNormal;
  double last_pressure_ = 0.0;
  std::size_t calm_evals_ = 0;  ///< consecutive below-release evals
  std::uint64_t evaluations_ = 0;
  std::array<std::uint64_t, kNumTrafficClasses> admitted_{};
  std::array<std::uint64_t, kNumTrafficClasses> rejected_{};
};

}  // namespace dwatch::serve
