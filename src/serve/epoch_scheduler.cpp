#include "serve/epoch_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace dwatch::serve {

EpochScheduler::EpochScheduler(std::size_t num_zones,
                               std::size_t max_queue_per_zone)
    : queues_(num_zones),
      max_queue_per_zone_(std::max<std::size_t>(1, max_queue_per_zone)) {}

std::size_t EpochScheduler::add_zone() {
  std::lock_guard<std::mutex> lock(mutex_);
  queues_.emplace_back();
  return queues_.size() - 1;
}

void EpochScheduler::set_shed_hook(ShedHook hook) {
  std::lock_guard<std::mutex> lock(mutex_);
  shed_hook_ = std::move(hook);
}

std::size_t EpochScheduler::submit(PendingEpoch epoch) {
  // The victim (if any) is moved out here and its hook fired after the
  // lock is released: a hook may scrape this scheduler or even submit.
  PendingEpoch victim;
  bool have_victim = false;
  ShedHook hook_copy;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (epoch.zone >= queues_.size()) {
      throw std::out_of_range("serve::EpochScheduler: no such zone");
    }
    epoch.seq = next_seq_++;
    ++submitted_;
    ++submitted_by_class_[static_cast<std::size_t>(epoch.traffic_class)];
    auto& queue = queues_[epoch.zone];
    if (queue.size() >= max_queue_per_zone_) {
      // Pick the victim class-aware: never an anchor; lowest-priority
      // class present first; within a class the oldest seq (so for
      // uniform-class traffic this is exactly the old oldest-first
      // policy). The incoming epoch competes too — it has the newest
      // seq, so it only loses when it is the strictly lowest class.
      std::size_t victim_idx = queue.size();  // == incoming sentinel
      TrafficClass victim_cls = epoch.traffic_class;
      std::uint64_t victim_seq = epoch.seq;
      bool found = epoch.traffic_class != TrafficClass::kAnchor;
      for (std::size_t i = 0; i < queue.size(); ++i) {
        const PendingEpoch& cand = queue[i];
        if (cand.traffic_class == TrafficClass::kAnchor) continue;
        const bool worse_class =
            static_cast<std::uint8_t>(cand.traffic_class) >
            static_cast<std::uint8_t>(victim_cls);
        const bool same_class_older =
            cand.traffic_class == victim_cls && cand.seq < victim_seq;
        if (!found || worse_class || same_class_older) {
          victim_idx = i;
          victim_cls = cand.traffic_class;
          victim_seq = cand.seq;
          found = true;
        }
      }
      if (found) {
        ++shed_;
        ++shed_by_class_[static_cast<std::size_t>(victim_cls)];
        have_victim = true;
        if (victim_idx == queue.size()) {
          victim = std::move(epoch);
        } else {
          victim = std::move(queue[victim_idx]);
          queue.erase(queue.begin() +
                      static_cast<std::ptrdiff_t>(victim_idx));
          queue.push_back(std::move(epoch));
        }
        hook_copy = shed_hook_;
      } else {
        // Nothing sheddable: every queued epoch and the incoming one
        // are anchor class. Calibration must not be dropped — admit
        // over the cap and let the next drain absorb the burst.
        queue.push_back(std::move(epoch));
      }
    } else {
      queue.push_back(std::move(epoch));
    }
  }
  if (have_victim && hook_copy) hook_copy(victim);
  return have_victim ? 1 : 0;
}

std::size_t EpochScheduler::purge_class(TrafficClass cls) {
  std::vector<PendingEpoch> purged;
  ShedHook hook_copy;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& queue : queues_) {
      for (auto it = queue.begin(); it != queue.end();) {
        if (it->traffic_class == cls) {
          purged.push_back(std::move(*it));
          it = queue.erase(it);
        } else {
          ++it;
        }
      }
    }
    shed_ += purged.size();
    shed_by_class_[static_cast<std::size_t>(cls)] += purged.size();
    if (!purged.empty()) hook_copy = shed_hook_;
  }
  if (hook_copy) {
    for (const PendingEpoch& epoch : purged) hook_copy(epoch);
  }
  return purged.size();
}

std::size_t EpochScheduler::run_pending(core::ThreadPool* pool,
                                        const Processor& processor) {
  // Move the queues out under the lock, then drain with the lock
  // RELEASED: the processor runs pipelines for milliseconds and may
  // fire observers that scrape this scheduler. Moving out first also
  // keeps the drain loop stable if a processor (against the contract)
  // submits new epochs — they simply wait for the next call.
  std::vector<std::deque<PendingEpoch>> batches;
  std::vector<std::size_t> active;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batches.resize(queues_.size());
    for (std::size_t z = 0; z < queues_.size(); ++z) {
      if (queues_[z].empty()) continue;
      batches[z] = std::move(queues_[z]);
      queues_[z].clear();
      active.push_back(z);
    }
  }
  if (active.empty()) return 0;

  std::size_t count = 0;
  for (const std::size_t z : active) count += batches[z].size();

  const auto drain_zone = [&](std::size_t zone) {
    auto& batch = batches[zone];
    while (!batch.empty()) {
      PendingEpoch epoch = std::move(batch.front());
      batch.pop_front();
      processor(std::move(epoch));
    }
  };

  if (pool != nullptr && active.size() > 1) {
    pool->parallel_for(active.size(),
                       [&](std::size_t i) { drain_zone(active[i]); });
  } else {
    for (const std::size_t z : active) drain_zone(z);
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    processed_ += count;
  }
  return count;
}

std::size_t EpochScheduler::num_zones() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queues_.size();
}

std::size_t EpochScheduler::pending(std::size_t zone) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (zone >= queues_.size()) {
    throw std::out_of_range("serve::EpochScheduler: no such zone");
  }
  return queues_[zone].size();
}

std::size_t EpochScheduler::total_pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& q : queues_) total += q.size();
  return total;
}

std::uint64_t EpochScheduler::submitted_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return submitted_;
}

std::uint64_t EpochScheduler::processed_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return processed_;
}

std::uint64_t EpochScheduler::shed_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_;
}

std::uint64_t EpochScheduler::submitted_by_class(TrafficClass cls) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return submitted_by_class_[static_cast<std::size_t>(cls)];
}

std::uint64_t EpochScheduler::shed_by_class(TrafficClass cls) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_by_class_[static_cast<std::size_t>(cls)];
}

}  // namespace dwatch::serve
