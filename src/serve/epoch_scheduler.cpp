#include "serve/epoch_scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace dwatch::serve {

EpochScheduler::EpochScheduler(std::size_t num_zones,
                               std::size_t max_queue_per_zone)
    : queues_(num_zones),
      max_queue_per_zone_(std::max<std::size_t>(1, max_queue_per_zone)) {}

std::size_t EpochScheduler::add_zone() {
  queues_.emplace_back();
  return queues_.size() - 1;
}

std::size_t EpochScheduler::submit(PendingEpoch epoch) {
  if (epoch.zone >= queues_.size()) {
    throw std::out_of_range("serve::EpochScheduler: no such zone");
  }
  epoch.seq = next_seq_++;
  ++submitted_;
  auto& queue = queues_[epoch.zone];
  std::size_t shed = 0;
  if (queue.size() >= max_queue_per_zone_) {
    // Shed the OLDEST epoch: under sustained overload every fix the
    // zone does manage to run is then the freshest available, instead
    // of the queue serving an ever-staler backlog.
    ++shed_;
    shed = 1;
    if (shed_hook_) shed_hook_(queue.front());
    queue.pop_front();
  }
  queue.push_back(std::move(epoch));
  return shed;
}

std::size_t EpochScheduler::run_pending(core::ThreadPool* pool,
                                        const Processor& processor) {
  // Move the queues out first: the drain loop must see a stable batch
  // even if a processor (against the contract) submits new epochs.
  std::vector<std::deque<PendingEpoch>> batches(queues_.size());
  std::vector<std::size_t> active;
  for (std::size_t z = 0; z < queues_.size(); ++z) {
    if (queues_[z].empty()) continue;
    batches[z] = std::move(queues_[z]);
    queues_[z].clear();
    active.push_back(z);
  }
  if (active.empty()) return 0;

  std::size_t count = 0;
  for (const std::size_t z : active) count += batches[z].size();

  const auto drain_zone = [&](std::size_t zone) {
    auto& batch = batches[zone];
    while (!batch.empty()) {
      PendingEpoch epoch = std::move(batch.front());
      batch.pop_front();
      processor(std::move(epoch));
    }
  };

  if (pool != nullptr && active.size() > 1) {
    pool->parallel_for(active.size(),
                       [&](std::size_t i) { drain_zone(active[i]); });
  } else {
    for (const std::size_t z : active) drain_zone(z);
  }

  processed_ += count;
  return count;
}

std::size_t EpochScheduler::pending(std::size_t zone) const {
  if (zone >= queues_.size()) {
    throw std::out_of_range("serve::EpochScheduler: no such zone");
  }
  return queues_[zone].size();
}

std::size_t EpochScheduler::total_pending() const noexcept {
  std::size_t total = 0;
  for (const auto& q : queues_) total += q.size();
  return total;
}

}  // namespace dwatch::serve
