// Minimal loopback HTTP/1.0 client: one blocking request/response per
// call. This exists so the golden scrape tests and the example's
// --selfcheck mode exercise the REAL socket path (connect → request →
// parse status → read close-delimited body) without depending on curl
// being installed in the build environment.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace dwatch::telemetry {

struct HttpResult {
  /// False when the TCP connection or the status line failed; `status`
  /// and `body` are meaningless then.
  bool ok = false;
  int status = 0;
  std::string content_type;
  std::string body;
};

/// Blocking fetch of http://127.0.0.1:`port``path`. `path` may carry a
/// query string. The response body is read to EOF (the server closes
/// after each response).
[[nodiscard]] HttpResult http_fetch(std::uint16_t port,
                                    std::string_view method,
                                    std::string_view path,
                                    std::string_view body = {});

}  // namespace dwatch::telemetry
