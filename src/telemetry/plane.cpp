#include "telemetry/plane.hpp"

#include <algorithm>
#include <utility>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "recovery/drift_watchdog.hpp"
#include "recovery/self_healing.hpp"

namespace dwatch::telemetry {

namespace {

constexpr const char* kTextPlain = "text/plain; charset=utf-8";
constexpr const char* kJson = "application/json";
/// The content type Prometheus scrapers negotiate for text format.
constexpr const char* kPrometheus = "text/plain; version=0.0.4; charset=utf-8";

/// RMSE proxy for the quality objective: an epoch breaches when it
/// produced no usable fix, fell back to the RSS-only path (paper §6
/// shows roughly 3x the phase-path error), or its inter-element phase
/// coherence collapsed below 0.5.
[[nodiscard]] bool quality_breach(const serve::EpochObservation& o) {
  return !o.fix_valid || o.confidence.rss_mode ||
         o.confidence.phase_health < 0.5;
}

}  // namespace

TelemetryPlane::TelemetryPlane(TelemetryOptions options)
    : options_(options),
      slo_(options.slo),
      recorder_(options.recorder_ring_epochs) {
  slo_.set_burn_alert_hook(
      [this](std::size_t zone, SloObjective objective, double burn) {
        (void)burn;
        if (options_.dump_on_fast_burn) {
          auto_dump("slo.fast_burn zone=" + std::to_string(zone) +
                    " objective=" + to_string(objective));
        }
      });
  install_routes();
}

TelemetryPlane::~TelemetryPlane() { stop(); }

void TelemetryPlane::attach(serve::LocalizationService& service) {
  service_ = &service;
  service.set_epoch_observer(
      [this](const serve::EpochObservation& o) { on_epoch(o); });
  service.set_shed_observer(
      [this](std::size_t zone, std::uint64_t seq) { on_shed(zone, seq); });
  // Close the SLO feedback loop: the service's admission controller
  // polls this plane's budgets, and its tier moves land in the flight
  // recorder (dumping on every escalation).
  service.set_budget_provider(this);
  service.admission().set_tier_change_hook(
      [this](serve::BrownoutTier from, serve::BrownoutTier to,
             double /*pressure*/) { on_tier_change(from, to); });
  for (std::size_t z = 0; z < service.num_zones(); ++z) {
    recovery::RecoveryCoordinator* coordinator = service.zone(z).coordinator();
    if (coordinator == nullptr) continue;
    coordinator->set_state_change_hook(
        [this, z](std::size_t array_idx, recovery::DriftState from,
                  recovery::DriftState to) {
          on_drift(z, array_idx, static_cast<std::uint8_t>(from),
                   static_cast<std::uint8_t>(to));
        });
  }
}

void TelemetryPlane::start(std::uint16_t port) { server_.start(port); }

void TelemetryPlane::stop() { server_.stop(); }

void TelemetryPlane::on_epoch(const serve::EpochObservation& observation) {
  // Record BEFORE the SLO observe so a fast-burn dump triggered by this
  // very epoch already contains it.
  recorder_.record(observation);
  {
    std::lock_guard lock(mutex_);
    auto& zone = health_[observation.zone];
    ++zone.epochs;
    zone.last_seq = observation.seq;
    zone.last_fix_valid = observation.fix_valid;
    zone.last_fix_degraded = observation.fix_degraded;
    zone.drift_states = observation.drift_states;
  }
  slo_.observe_fix(observation.zone, observation.fix_latency_us,
                   quality_breach(observation));
}

void TelemetryPlane::on_shed(std::size_t zone, std::uint64_t seq) {
  recorder_.record_shed(zone, seq);
  {
    std::lock_guard lock(mutex_);
    auto& state = health_[zone];
    ++state.sheds;
    state.last_seq = seq;
  }
  slo_.observe_shed(zone);
  if (options_.dump_on_shed) {
    auto_dump("shed zone=" + std::to_string(zone));
  }
}

void TelemetryPlane::on_drift(std::size_t zone, std::size_t array_idx,
                              std::uint8_t from, std::uint8_t to) {
  recorder_.record_drift_transition(zone, array_idx, from, to);
  if (options_.dump_on_drift &&
      to == static_cast<std::uint8_t>(recovery::DriftState::kDrifting)) {
    auto_dump("drift zone=" + std::to_string(zone) +
              " array=" + std::to_string(array_idx));
  }
}

void TelemetryPlane::on_tier_change(serve::BrownoutTier from,
                                    serve::BrownoutTier to) {
  recorder_.record_tier_transition(static_cast<std::uint8_t>(from),
                                   static_cast<std::uint8_t>(to));
  // The trigger string is fully deterministic (tier names only — no
  // pressure float, no timestamps) so two identical runs produce
  // byte-identical escalation bundles.
  if (options_.dump_on_tier_escalation && to > from) {
    auto_dump(std::string("admission.tier from=") + serve::to_string(from) +
              " to=" + serve::to_string(to));
  }
}

serve::BudgetSignal TelemetryPlane::zone_budget(std::size_t zone) const {
  serve::BudgetSignal signal;
  for (std::size_t o = 0; o < kNumSloObjectives; ++o) {
    const auto objective = static_cast<SloObjective>(o);
    signal.budget_remaining = std::min(
        signal.budget_remaining, slo_.budget_remaining(zone, objective));
    signal.fast_burn =
        std::max(signal.fast_burn, slo_.fast_burn(zone, objective));
    signal.slow_burn =
        std::max(signal.slow_burn, slo_.slow_burn(zone, objective));
    signal.alert_latched =
        signal.alert_latched || slo_.alert_latched(zone, objective);
  }
  return signal;
}

serve::BrownoutTier TelemetryPlane::active_tier() const {
  return service_ == nullptr ? serve::BrownoutTier::kNormal
                             : service_->admission().tier();
}

void TelemetryPlane::auto_dump(const std::string& trigger) {
  {
    std::lock_guard lock(mutex_);
    if (auto_dumps_ >= options_.auto_dump_limit) return;
    ++auto_dumps_;
  }
  store_dump(recorder_.dump(trigger));
}

std::string TelemetryPlane::trigger_dump(std::string_view trigger) {
  std::string bundle = recorder_.dump(trigger);
  store_dump(bundle);
  return bundle;
}

void TelemetryPlane::store_dump(std::string bundle) {
  std::lock_guard lock(mutex_);
  if (options_.max_stored_dumps == 0) return;
  while (dumps_.size() >= options_.max_stored_dumps) dumps_.pop_front();
  dumps_.push_back(std::move(bundle));
}

std::size_t TelemetryPlane::stored_dumps() const {
  std::lock_guard lock(mutex_);
  return dumps_.size();
}

std::string TelemetryPlane::last_dump() const {
  std::lock_guard lock(mutex_);
  return dumps_.empty() ? std::string() : dumps_.back();
}

TelemetryPlane::HealthReport TelemetryPlane::health() const {
  HealthReport report;
  std::string zones_json;
  {
    std::lock_guard lock(mutex_);
    bool first = true;
    for (const auto& [zone, state] : health_) {
      const bool drifting = std::any_of(
          state.drift_states.begin(), state.drift_states.end(),
          [](std::uint8_t s) {
            return s == static_cast<std::uint8_t>(
                            recovery::DriftState::kDrifting);
          });
      bool latched = false;
      for (std::size_t o = 0; o < kNumSloObjectives; ++o) {
        if (slo_.alert_latched(zone, static_cast<SloObjective>(o))) {
          latched = true;
          break;
        }
      }
      const bool healthy = !drifting && !latched;
      report.healthy = report.healthy && healthy;
      if (!first) zones_json += ',';
      first = false;
      zones_json += "{\"zone\":";
      zones_json += std::to_string(zone);
      zones_json += ",\"healthy\":";
      zones_json += healthy ? "true" : "false";
      zones_json += ",\"epochs\":";
      zones_json += std::to_string(state.epochs);
      zones_json += ",\"sheds\":";
      zones_json += std::to_string(state.sheds);
      zones_json += ",\"last_seq\":";
      zones_json += std::to_string(state.last_seq);
      zones_json += ",\"last_fix_valid\":";
      zones_json += state.last_fix_valid ? "true" : "false";
      zones_json += ",\"last_fix_degraded\":";
      zones_json += state.last_fix_degraded ? "true" : "false";
      zones_json += ",\"drifting_array\":";
      zones_json += drifting ? "true" : "false";
      zones_json += ",\"slo_alert_latched\":";
      zones_json += latched ? "true" : "false";
      zones_json += '}';
    }
  }
  const serve::BrownoutTier tier = active_tier();
  report.json = "{\"status\":\"";
  report.json += report.healthy ? "ok" : "degraded";
  report.json += "\",\"brownout_tier\":";
  report.json += std::to_string(static_cast<unsigned>(tier));
  report.json += ",\"brownout_tier_name\":\"";
  report.json += serve::to_string(tier);
  report.json += "\",\"zones\":[";
  report.json += zones_json;
  report.json += "]}";
  return report;
}

void TelemetryPlane::install_routes() {
  server_.handle("GET", "/", [](const HttpRequest&) {
    return HttpResponse{200, kTextPlain,
                        "dwatch telemetry\n"
                        "  GET  /metrics       Prometheus text\n"
                        "  GET  /metrics.json  registry as JSON\n"
                        "  GET  /healthz       200 ok / 503 degraded\n"
                        "  GET  /slo           burn rates + budgets\n"
                        "  GET  /events        event tail (?n=)\n"
                        "  GET  /trace         Chrome trace JSON\n"
                        "  POST /dump          flight-recorder dump\n"
                        "  GET  /dump/last     last stored bundle\n"};
  });
  server_.handle("GET", "/metrics", [](const HttpRequest&) {
    return HttpResponse{200, kPrometheus,
                        obs::MetricsRegistry::global().prometheus_text()};
  });
  server_.handle("GET", "/metrics.json", [](const HttpRequest&) {
    return HttpResponse{200, kJson,
                        obs::MetricsRegistry::global().json_text()};
  });
  server_.handle("GET", "/healthz", [this](const HttpRequest&) {
    const HealthReport report = health();
    return HttpResponse{report.healthy ? 200 : 503, kJson, report.json};
  });
  server_.handle("GET", "/slo", [this](const HttpRequest&) {
    // Splice the live brownout tier in right after the opening brace so
    // operators see the admission response next to the burn rates that
    // drive it.
    std::string body = slo_.json_text();
    const serve::BrownoutTier tier = active_tier();
    std::string prefix = "\"brownout_tier\":";
    prefix += std::to_string(static_cast<unsigned>(tier));
    prefix += ",\"brownout_tier_name\":\"";
    prefix += serve::to_string(tier);
    prefix += "\",";
    body.insert(1, prefix);
    return HttpResponse{200, kJson, std::move(body)};
  });
  server_.handle("GET", "/events", [this](const HttpRequest& request) {
    std::size_t n = options_.events_tail_default;
    const std::string raw = query_param(request.query, "n", "");
    if (!raw.empty()) {
      n = 0;
      for (const char c : raw) {
        if (c < '0' || c > '9') {
          return HttpResponse{400, kTextPlain, "bad n\n"};
        }
        n = n * 10 + static_cast<std::size_t>(c - '0');
      }
    }
    const std::vector<std::string> lines = obs::EventLog::global().snapshot();
    const std::size_t start = lines.size() > n ? lines.size() - n : 0;
    std::string body;
    for (std::size_t i = start; i < lines.size(); ++i) {
      body += lines[i];
      body += '\n';
    }
    return HttpResponse{200, "application/x-ndjson", std::move(body)};
  });
  server_.handle("GET", "/trace", [](const HttpRequest&) {
    return HttpResponse{200, kJson,
                        obs::TraceRecorder::global().chrome_json()};
  });
  server_.handle("POST", "/dump", [this](const HttpRequest& request) {
    const std::string trigger =
        query_param(request.query, "trigger", "manual");
    return HttpResponse{200, kJson, trigger_dump(trigger)};
  });
  server_.handle("GET", "/dump/last", [this](const HttpRequest&) {
    std::string bundle = last_dump();
    if (bundle.empty()) {
      return HttpResponse{404, kTextPlain, "no dump stored\n"};
    }
    return HttpResponse{200, kJson, std::move(bundle)};
  });
}

}  // namespace dwatch::telemetry
