#include "telemetry/http_server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace dwatch::telemetry {

namespace {

constexpr std::size_t kMaxHeadBytes = 64 * 1024;
constexpr std::size_t kMaxBodyBytes = 1024 * 1024;

[[nodiscard]] const char* reason_phrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

/// Case-insensitive scan of the raw header block for `Content-Length`.
[[nodiscard]] std::size_t content_length(std::string_view head) {
  static constexpr std::string_view kKey = "content-length:";
  for (std::size_t pos = 0; pos < head.size();) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(pos, eol - pos);
    if (line.size() > kKey.size()) {
      bool match = true;
      for (std::size_t i = 0; i < kKey.size(); ++i) {
        const char c = line[i];
        const char lower =
            (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
        if (lower != kKey[i]) {
          match = false;
          break;
        }
      }
      if (match) {
        std::size_t value = 0;
        for (std::size_t i = kKey.size(); i < line.size(); ++i) {
          const char c = line[i];
          if (c == ' ' || c == '\t') continue;
          if (c < '0' || c > '9') return value;
          value = value * 10 + static_cast<std::size_t>(c - '0');
          if (value > kMaxBodyBytes) return kMaxBodyBytes + 1;
        }
        return value;
      }
    }
    pos = eol + 2;
    if (eol == head.size()) break;
  }
  return 0;
}

void send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return;  // peer gone; a scrape retry is the recovery
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::string query_param(std::string_view query, std::string_view key,
                        std::string_view fallback) {
  for (std::size_t pos = 0; pos < query.size();) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string_view::npos) amp = query.size();
    const std::string_view pair = query.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key &&
        eq + 1 < pair.size()) {
      return std::string(pair.substr(eq + 1));
    }
    pos = amp + 1;
  }
  return std::string(fallback);
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string method, std::string path,
                        Handler handler) {
  if (running()) {
    throw std::logic_error(
        "telemetry::HttpServer: routes are fixed once started");
  }
  routes_[{std::move(method), std::move(path)}] = std::move(handler);
}

void HttpServer::start(std::uint16_t port) {
  if (running()) {
    throw std::logic_error("telemetry::HttpServer: already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::system_error(errno, std::generic_category(),
                            "telemetry::HttpServer: socket");
  }
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    throw std::system_error(err, std::generic_category(),
                            "telemetry::HttpServer: bind 127.0.0.1");
  }
  if (::listen(fd, 16) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::system_error(err, std::generic_category(),
                            "telemetry::HttpServer: listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::system_error(err, std::generic_category(),
                            "telemetry::HttpServer: getsockname");
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { accept_loop(); });
}

void HttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // shutdown() on the listening socket makes the blocked accept()
  // return with an error on Linux — the portable-enough way to kick
  // the loop without a self-connect.
  (void)::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void HttpServer::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // shutdown() or a fatal socket error: loop is done
    }
    // A stalled client times out instead of wedging the (single)
    // accept thread. 5 s is generous for a loopback scrape.
    timeval tv{};
    tv.tv_sec = 5;
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    serve_connection(fd);
    ::close(fd);
  }
}

void HttpServer::serve_connection(int fd) {
  std::string head;
  head.reserve(1024);
  std::size_t header_end = std::string::npos;
  char buf[4096];
  while (head.size() < kMaxHeadBytes) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return;
    head.append(buf, static_cast<std::size_t>(n));
    header_end = head.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
  }
  if (header_end == std::string::npos) return;

  // Request line: METHOD SP PATH[?QUERY] SP VERSION.
  const std::size_t line_end = head.find("\r\n");
  const std::string_view line = std::string_view(head).substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  HttpResponse response;
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    response = HttpResponse{400, "text/plain; charset=utf-8",
                            "malformed request line\n"};
  } else {
    HttpRequest request;
    request.method = std::string(line.substr(0, sp1));
    std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t qmark = target.find('?');
    if (qmark != std::string_view::npos) {
      request.query = std::string(target.substr(qmark + 1));
      target = target.substr(0, qmark);
    }
    request.path = std::string(target);

    const std::size_t want =
        content_length(std::string_view(head).substr(0, header_end));
    if (want > kMaxBodyBytes) {
      response = HttpResponse{400, "text/plain; charset=utf-8",
                              "body too large\n"};
    } else {
      request.body = head.substr(header_end + 4);
      while (request.body.size() < want) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) break;
        request.body.append(buf, static_cast<std::size_t>(n));
      }
      const auto it = routes_.find({request.method, request.path});
      if (it == routes_.end()) {
        response = HttpResponse{404, "text/plain; charset=utf-8",
                                "no such endpoint\n"};
      } else {
        response = it->second(request);
      }
    }
  }

  requests_.fetch_add(1, std::memory_order_relaxed);
  std::string out = "HTTP/1.0 ";
  out += std::to_string(response.status);
  out += ' ';
  out += reason_phrase(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += response.body;
  send_all(fd, out);
}

}  // namespace dwatch::telemetry
