#include "telemetry/json_check.hpp"

namespace dwatch::telemetry {

namespace {

constexpr std::size_t kMaxDepth = 64;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string reason;

  [[nodiscard]] bool fail(const char* what) {
    reason = what;
    reason += " at byte ";
    reason += std::to_string(pos);
    return false;
  }

  [[nodiscard]] bool eof() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_ws() {
    while (!eof()) {
      const char c = text[pos];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos;
      } else {
        break;
      }
    }
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return fail("bad literal");
    pos += word.size();
    return true;
  }

  [[nodiscard]] bool string() {
    // Opening quote consumed by the caller check; pos sits on '"'.
    ++pos;  // '"'
    while (true) {
      if (eof()) return fail("unterminated string");
      const auto c = static_cast<unsigned char>(text[pos]);
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        ++pos;
        if (eof()) return fail("unterminated escape");
        const char e = text[pos];
        if (e == '"' || e == '\\' || e == '/' || e == 'b' || e == 'f' ||
            e == 'n' || e == 'r' || e == 't') {
          ++pos;
        } else if (e == 'u') {
          ++pos;
          for (int i = 0; i < 4; ++i) {
            if (eof()) return fail("short \\u escape");
            const char h = text[pos];
            const bool hex = (h >= '0' && h <= '9') ||
                             (h >= 'a' && h <= 'f') || (h >= 'A' && h <= 'F');
            if (!hex) return fail("bad \\u escape");
            ++pos;
          }
        } else {
          return fail("bad escape");
        }
      } else if (c < 0x20) {
        return fail("raw control byte in string");
      } else {
        ++pos;
      }
    }
  }

  [[nodiscard]] bool number() {
    if (peek() == '-') ++pos;
    if (eof()) return fail("truncated number");
    if (peek() == '0') {
      ++pos;
    } else if (peek() >= '1' && peek() <= '9') {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos;
    } else {
      return fail("bad number");
    }
    if (!eof() && peek() == '.') {
      ++pos;
      if (eof() || peek() < '0' || peek() > '9') return fail("bad fraction");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos;
      if (eof() || peek() < '0' || peek() > '9') return fail("bad exponent");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos;
    }
    return true;
  }

  [[nodiscard]] bool value(std::size_t depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (eof()) return fail("missing value");
    const char c = peek();
    switch (c) {
      case '{': {
        ++pos;
        skip_ws();
        if (!eof() && peek() == '}') {
          ++pos;
          return true;
        }
        while (true) {
          skip_ws();
          if (eof() || peek() != '"') return fail("expected object key");
          if (!string()) return false;
          skip_ws();
          if (eof() || peek() != ':') return fail("expected ':'");
          ++pos;
          if (!value(depth + 1)) return false;
          skip_ws();
          if (eof()) return fail("unterminated object");
          if (peek() == ',') {
            ++pos;
            continue;
          }
          if (peek() == '}') {
            ++pos;
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++pos;
        skip_ws();
        if (!eof() && peek() == ']') {
          ++pos;
          return true;
        }
        while (true) {
          if (!value(depth + 1)) return false;
          skip_ws();
          if (eof()) return fail("unterminated array");
          if (peek() == ',') {
            ++pos;
            continue;
          }
          if (peek() == ']') {
            ++pos;
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return number();
        return fail("unexpected byte");
    }
  }
};

}  // namespace

bool json_valid(std::string_view text, std::string* error) {
  Parser p{text};
  if (!p.value(0)) {
    if (error != nullptr) *error = p.reason;
    return false;
  }
  p.skip_ws();
  if (!p.eof()) {
    if (error != nullptr) {
      *error = "trailing bytes after value at byte " + std::to_string(p.pos);
    }
    return false;
  }
  return true;
}

bool json_lines_valid(std::string_view text, std::string* error) {
  std::size_t line_no = 0;
  for (std::size_t pos = 0; pos < text.size();) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    ++line_no;
    if (!line.empty() && !json_valid(line, error)) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": " + *error;
      }
      return false;
    }
    pos = eol + 1;
  }
  return true;
}

}  // namespace dwatch::telemetry
