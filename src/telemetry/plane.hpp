// TelemetryPlane: the operations front door for a serving fleet.
//
// Owns the scrape server, the SLO tracker and the flight recorder, and
// wires them into a LocalizationService through the serve/recovery
// observer hooks — strictly one-directional: telemetry observes serve,
// serve never calls telemetry by name (the whole directory compiles out
// under -DDWATCH_OBS=OFF and serve must not notice).
//
// Endpoints (HTTP/1.0, Connection: close, loopback only):
//   GET  /              tiny plain-text index
//   GET  /metrics       Prometheus text exposition
//   GET  /metrics.json  the same registry as one JSON object
//   GET  /healthz       aggregated fleet health; 200 ok / 503 degraded
//   GET  /slo           per-zone burn rates + budget remaining (JSON)
//   GET  /events        EventLog tail as JSON Lines (?n=, default 100)
//   GET  /trace         Chrome trace JSON of the span ring
//   POST /dump          trigger a flight-recorder dump, returns bundle
//   GET  /dump/last     most recent stored bundle (404 when none)
//
// Health policy: a zone is unhealthy while any of its arrays sits in
// DriftState::kDrifting or any SLO fast-burn alert is latched for it.
// /healthz answers 503 whenever at least one attached zone is
// unhealthy — the shape a load balancer or k8s probe expects.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "serve/service.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/http_server.hpp"
#include "telemetry/slo.hpp"

namespace dwatch::telemetry {

struct TelemetryOptions {
  SloConfig slo;
  /// Epoch snapshots retained per zone in the flight recorder.
  std::size_t recorder_ring_epochs = 64;
  /// Auto-dump triggers. Sheds are routine under deliberate overload,
  /// so they default to off; turn on for incident forensics.
  bool dump_on_fast_burn = true;
  bool dump_on_drift = true;
  bool dump_on_shed = false;
  /// Dump a bundle every time the admission controller ESCALATES its
  /// brownout tier (de-escalations are recorded but don't dump: the
  /// interesting forensics are on the way up).
  bool dump_on_tier_escalation = true;
  /// Bundles kept for /dump/last (oldest evicted).
  std::size_t max_stored_dumps = 4;
  /// Auto triggers stop dumping after this many bundles — a stuck
  /// fast-burn must not turn the recorder into a CPU sink. Manual
  /// POST /dump is never limited.
  std::size_t auto_dump_limit = 16;
  /// Default /events tail length when ?n= is absent.
  std::size_t events_tail_default = 100;
};

class TelemetryPlane : public serve::BudgetProvider {
 public:
  explicit TelemetryPlane(TelemetryOptions options = {});
  ~TelemetryPlane() override;

  TelemetryPlane(const TelemetryPlane&) = delete;
  TelemetryPlane& operator=(const TelemetryPlane&) = delete;

  /// Install the epoch/shed observers on `service`, the drift
  /// state-change hook on every zone coordinator, the admission
  /// tier-change hook, and this plane as the service's BudgetProvider
  /// (closing the SLO feedback loop: burn rates observed here drive
  /// the service's brownout tier). Call AFTER all add_zone calls and
  /// BEFORE serving traffic (the hooks are plain std::functions,
  /// unsynchronized against concurrent install). `service` must
  /// outlive this plane.
  void attach(serve::LocalizationService& service);

  /// serve::BudgetProvider: one zone's SLO signals rolled up across
  /// the three objectives, worst case (min budget remaining, max burn,
  /// any latch). Safe from the serving thread while observers fire —
  /// the SloTracker is internally locked.
  [[nodiscard]] serve::BudgetSignal zone_budget(
      std::size_t zone) const override;

  /// Bind + serve on 127.0.0.1:`port` (0 = ephemeral; read port()).
  void start(std::uint16_t port = 0);
  void stop();
  [[nodiscard]] bool running() const noexcept { return server_.running(); }
  [[nodiscard]] std::uint16_t port() const noexcept { return server_.port(); }

  [[nodiscard]] SloTracker& slo() noexcept { return slo_; }
  [[nodiscard]] FlightRecorder& recorder() noexcept { return recorder_; }
  [[nodiscard]] HttpServer& server() noexcept { return server_; }

  struct HealthReport {
    bool healthy = true;
    std::string json;  ///< the /healthz body
  };
  [[nodiscard]] HealthReport health() const;

  /// Manual dump (same path as POST /dump): stored and returned.
  std::string trigger_dump(std::string_view trigger);
  [[nodiscard]] std::size_t stored_dumps() const;
  /// Empty when no bundle has been stored yet.
  [[nodiscard]] std::string last_dump() const;

 private:
  struct ZoneHealth {
    std::uint64_t epochs = 0;
    std::uint64_t sheds = 0;
    std::uint64_t last_seq = 0;
    bool last_fix_valid = false;
    bool last_fix_degraded = false;
    std::vector<std::uint8_t> drift_states;
  };

  void on_epoch(const serve::EpochObservation& observation);
  void on_shed(std::size_t zone, std::uint64_t seq);
  void on_drift(std::size_t zone, std::size_t array_idx, std::uint8_t from,
                std::uint8_t to);
  void on_tier_change(serve::BrownoutTier from, serve::BrownoutTier to);
  void auto_dump(const std::string& trigger);
  void store_dump(std::string bundle);
  void install_routes();
  /// The attached service's active brownout tier (kNormal when no
  /// service is attached).
  [[nodiscard]] serve::BrownoutTier active_tier() const;

  TelemetryOptions options_;
  SloTracker slo_;
  FlightRecorder recorder_;
  HttpServer server_;
  /// Set by attach(); read by the scrape handlers for the brownout
  /// tier. The service outlives the plane per the attach() contract.
  serve::LocalizationService* service_ = nullptr;
  mutable std::mutex mutex_;  ///< health mirror + stored dumps
  std::map<std::size_t, ZoneHealth> health_;
  std::deque<std::string> dumps_;
  std::uint64_t auto_dumps_ = 0;
};

}  // namespace dwatch::telemetry
