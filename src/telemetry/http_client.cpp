#include "telemetry/http_client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dwatch::telemetry {

HttpResult http_fetch(std::uint16_t port, std::string_view method,
                      std::string_view path, std::string_view body) {
  HttpResult result;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return result;

  timeval tv{};
  tv.tv_sec = 5;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return result;
  }

  std::string request;
  request.reserve(128 + body.size());
  request.append(method);
  request += ' ';
  request.append(path);
  request += " HTTP/1.0\r\nHost: 127.0.0.1\r\nContent-Length: ";
  request += std::to_string(body.size());
  request += "\r\nConnection: close\r\n\r\n";
  request.append(body);
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::send(fd, request.data() + off, request.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) {
      ::close(fd);
      return result;
    }
    off += static_cast<std::size_t>(n);
  }

  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.0 200 OK\r\n...headers...\r\n\r\nbody"
  const std::size_t sp = raw.find(' ');
  const std::size_t header_end = raw.find("\r\n\r\n");
  if (sp == std::string::npos || header_end == std::string::npos ||
      sp + 4 > raw.size()) {
    return result;
  }
  result.status = 0;
  for (std::size_t i = sp + 1; i < raw.size() && raw[i] >= '0' &&
                               raw[i] <= '9';
       ++i) {
    result.status = result.status * 10 + (raw[i] - '0');
  }
  if (result.status == 0) return result;

  static constexpr std::string_view kCt = "content-type:";
  const std::string_view head = std::string_view(raw).substr(0, header_end);
  for (std::size_t pos = 0; pos < head.size();) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view hline = head.substr(pos, eol - pos);
    if (hline.size() > kCt.size()) {
      bool match = true;
      for (std::size_t i = 0; i < kCt.size(); ++i) {
        const char c = hline[i];
        const char lower =
            (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
        if (lower != kCt[i]) {
          match = false;
          break;
        }
      }
      if (match) {
        std::string_view value = hline.substr(kCt.size());
        while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
          value.remove_prefix(1);
        }
        result.content_type = std::string(value);
      }
    }
    pos = eol + 2;
    if (eol == head.size()) break;
  }

  result.body = raw.substr(header_end + 4);
  result.ok = true;
  return result;
}

}  // namespace dwatch::telemetry
